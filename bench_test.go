package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (regenerating the same rows/series the paper reports, at a
// reduced scale chosen to finish in seconds), plus micro-benchmarks for the
// expensive substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks report domain numbers via b.ReportMetric (e.g.
// coverage per suite) in addition to timing.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/ga"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/mica/ilp"
	"repro/internal/mica/ppm"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// benchConfig is the scale used by the table/figure benchmarks.
func benchConfig() core.Config {
	cfg := core.TestConfig()
	cfg.IntervalLength = 2500
	cfg.SamplesPerBenchmark = 10
	cfg.MaxIntervalsPerBenchmark = 16
	cfg.NumClusters = 80
	cfg.NumProminent = 40
	cfg.KeyCharacteristics = 8
	return cfg
}

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	return experiments.NewEnv(reg, benchConfig(), "", nil)
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	x, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		if _, err := x.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure --------------------------------

func BenchmarkTable1Inventory(b *testing.B)   { runExperiment(b, "table1") }
func BenchmarkTable2GASelection(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3IntervalCounts(b *testing.B) {
	runExperiment(b, "table3")
}
func BenchmarkFig1GASweep(b *testing.B)      { runExperiment(b, "fig1") }
func BenchmarkFig23KiviatPlots(b *testing.B) { runExperiment(b, "fig23") }

func BenchmarkFig4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		if _, err := experiments.Fig4(env); err != nil {
			b.Fatal(err)
		}
		res, err := env.Result()
		if err != nil {
			b.Fatal(err)
		}
		cov := res.SuiteCoverage()
		for _, s := range []bench.Suite{bench.SuiteBioPerf, bench.SuiteSPECfp2006, bench.SuiteMediaBench} {
			b.ReportMetric(float64(cov[s]), "clusters/"+string(s))
		}
	}
}

func BenchmarkFig5Diversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		if _, err := experiments.Fig5(env); err != nil {
			b.Fatal(err)
		}
		res, err := env.Result()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ClustersFor(bench.SuiteSPECfp2006, 0.8)), "c80/SPECfp2006")
		b.ReportMetric(float64(res.ClustersFor(bench.SuiteMediaBench, 0.8)), "c80/MediaBenchII")
	}
}

func BenchmarkFig6Uniqueness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		if _, err := experiments.Fig6(env); err != nil {
			b.Fatal(err)
		}
		res, err := env.Result()
		if err != nil {
			b.Fatal(err)
		}
		uf := res.UniqueFraction()
		b.ReportMetric(100*uf[bench.SuiteBioPerf], "%unique/BioPerf")
		b.ReportMetric(100*uf[bench.SuiteMediaBench], "%unique/MediaBenchII")
	}
}

func BenchmarkAblationAggregate(b *testing.B) { runExperiment(b, "ablation-aggregate") }
func BenchmarkAblationK(b *testing.B)         { runExperiment(b, "ablation-k") }
func BenchmarkAblationSampling(b *testing.B)  { runExperiment(b, "ablation-sampling") }

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkTraceGeneration measures raw synthetic-instruction throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := reg.Lookup("SPECfp2006/lbm")
	if err != nil {
		b.Fatal(err)
	}
	beh := bm.BehaviorAt(0, 10)
	g, err := trace.NewGenerator(beh, 1)
	if err != nil {
		b.Fatal(err)
	}
	var ins isa.Instruction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

// BenchmarkMICACharacterization measures generation + full 69-metric
// analysis, the pipeline's hot loop.
func BenchmarkMICACharacterization(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"SPECfp2006/lbm", "BioPerf/grappa", "SPECint2006/astar"} {
		bm, err := reg.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		beh := bm.BehaviorAt(0, 10)
		b.Run(name, func(b *testing.B) {
			a := mica.NewAnalyzer()
			g, err := trace.NewGenerator(beh, 1)
			if err != nil {
				b.Fatal(err)
			}
			var ins isa.Instruction
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Next(&ins)
				a.Record(&ins)
			}
		})
	}
}

func BenchmarkPPMGroup(b *testing.B) {
	g, err := ppm.NewGroup(ppm.Global, ppm.PerAddress, []int{4, 8, 12}, 0)
	if err != nil {
		b.Fatal(err)
	}
	x := uint64(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1
		g.Record(0x400000+uint64(i%32)*4, x>>63 == 1)
	}
}

func BenchmarkILPAnalyzer(b *testing.B) {
	a, err := ilp.NewAnalyzer(ilp.StandardWindows)
	if err != nil {
		b.Fatal(err)
	}
	ins := isa.Instruction{Op: isa.OpIntAdd, Dst: 5, Src: [isa.MaxSrcRegs]uint8{3, 7}, NSrc: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins.Dst = uint8(1 + i%60)
		a.Record(&ins)
	}
}

func BenchmarkPCA69Columns(b *testing.B) {
	rng := trace.NewRNG(1)
	data := stats.NewMatrix(500, mica.NumMetrics)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.ComputePCA(data, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansK300(b *testing.B) {
	rng := trace.NewRNG(2)
	data := stats.NewMatrix(3000, 15)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(data, 300, cluster.Options{Seed: 1, Restarts: 1, MaxIters: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGASelection(b *testing.B) {
	rng := trace.NewRNG(3)
	data := stats.NewMatrix(100, mica.NumMetrics)
	for i := 0; i < data.Rows; i++ {
		base := rng.Float64() * 10
		row := data.Row(i)
		for j := range row {
			row[j] = base*float64(j%5) + rng.Float64()
		}
	}
	fitness, err := ga.DistanceFitness(data, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ga.Run(mica.NumMetrics, fitness, ga.Config{
			TargetCount: 12, Seed: int64(i + 1),
			Populations: 2, PopulationSize: 12, MaxGenerations: 10, Patience: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// workerCounts returns the worker counts the parallel benchmarks compare:
// serial, and the machine's GOMAXPROCS when that differs.
func workerCounts() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// BenchmarkKMeansParallel measures the parallel k-means restarts and
// assignment kernel across worker counts; results are identical for all
// of them, so the comparison is pure speedup.
func BenchmarkKMeansParallel(b *testing.B) {
	rng := trace.NewRNG(2)
	data := stats.NewMatrix(3000, 15)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cluster.KMeans(data, 300, cluster.Options{
					Seed: 1, Restarts: 4, MaxIters: 20, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Inertia, "inertia")
			}
			rowsPerOp := float64(4 * data.Rows)
			b.ReportMetric(rowsPerOp*float64(b.N)/b.Elapsed().Seconds(), "restart-rows/s")
		})
	}
}

// BenchmarkGAFitnessParallel measures concurrent genome evaluation with a
// deliberately non-trivial fitness (the paper's distance objective).
func BenchmarkGAFitnessParallel(b *testing.B) {
	rng := trace.NewRNG(3)
	data := stats.NewMatrix(100, mica.NumMetrics)
	for i := 0; i < data.Rows; i++ {
		base := rng.Float64() * 10
		row := data.Row(i)
		for j := range row {
			row[j] = base*float64(j%5) + rng.Float64()
		}
	}
	fitness, err := ga.DistanceFitness(data, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			evals := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel, err := ga.Run(mica.NumMetrics, fitness, ga.Config{
					TargetCount: 12, Seed: 7, Workers: workers,
					Populations: 2, PopulationSize: 16, MaxGenerations: 12, Patience: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
				evals += sel.Evaluations
			}
			b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkSelectKSweep measures the concurrent k-range evaluation used by
// timeline phase detection.
func BenchmarkSelectKSweep(b *testing.B) {
	rng := trace.NewRNG(5)
	data := stats.NewMatrix(400, 8)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cluster.SelectK(data, 1, 12, 0.9, cluster.Options{
					Seed: 1, Restarts: 2, MaxIters: 30, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "chosen-k")
			}
			b.ReportMetric(12*float64(b.N)/b.Elapsed().Seconds(), "kmeans-fits/s")
		})
	}
}

// BenchmarkCharacterize measures the measurement substrate end to end —
// core.Characterize over the benchConfig sample, cache disabled — and
// reports ns/instruction and instructions/s, the numbers the paper's scale
// (77 benchmarks x 1,000 intervals x 100M instructions) multiplies.
func BenchmarkCharacterize(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	// An installed collector keeps every iteration on the real cold
	// path: observed runs bypass the in-process dataset memo, and this
	// benchmark exists to price the generate+measure substrate.
	cfg.Metrics = obs.New()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	refs := core.SampleRefs(reg, cfg)
	var instructions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.Characterize(refs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instructions += ds.Instructions
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instructions), "ns/instr")
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCharacterizeCached measures the cache-warm characterization
// path: one untimed cold run populates the interval-vector cache, then
// every timed iteration is served entirely from it (verified via
// CacheHits) — no interval is generated at all.
func BenchmarkCharacterizeCached(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	cfg.CacheDir = b.TempDir()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	refs := core.SampleRefs(reg, cfg)
	if _, err := core.Characterize(refs, cfg); err != nil { // warm the cache
		b.Fatal(err)
	}
	var instructions uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.Characterize(refs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ds.CacheHits != ds.UniqueIntervals {
			b.Fatalf("warm run generated %d intervals", ds.UniqueIntervals-ds.CacheHits)
		}
		instructions += ds.Instructions
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instructions), "ns/instr")
	b.ReportMetric(float64(instructions)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCharacterizeAppend prices the incremental extend-dataset
// path against its cold control, as an interleaved pair: "cold" runs
// the full-roster pipeline from nothing, "incremental" holds a cached
// baseline over all benchmarks but SPECint2006/mcf and each timed
// iteration appends mcf — delta characterize over the cached shard,
// frozen-basis projection and warm-started k-means, all inside the
// default tolerances (mcf's behavior is covered by its general-purpose
// siblings, so its appended rows reconstruct cleanly in the baseline's
// eigenbasis; appending a unique domain-specific benchmark would trip
// the drift gate instead, which is the paper's uniqueness result seen
// from the cache's side). The baseline is restored with the timer
// stopped before every iteration, so each one measures a true N-1 -> N
// append, and the delta counters are asserted so a silent fallback to
// the cold path cannot masquerade as a speedup.
func BenchmarkCharacterizeAppend(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	var keep []*bench.Benchmark
	for _, bm := range reg.All() {
		if bm.ID() != "SPECint2006/mcf" {
			keep = append(keep, bm)
		}
	}
	sub, err := bench.NewRegistry(keep)
	if err != nil {
		b.Fatal(err)
	}
	base := benchConfig()

	b.Run("cold", func(b *testing.B) {
		cfg := base
		// An installed collector keeps every iteration on the real cold
		// path (no in-process dataset memo).
		cfg.Metrics = obs.New()
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(reg, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		cfg := base
		cfg.CacheDir = b.TempDir()
		cfg.Incremental = core.IncrementalSpec{Enabled: true, MaxPCADrift: 0.05, MaxCentroidShift: 0.25}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg.Metrics = obs.New()
			if _, err := core.Run(sub, cfg, nil); err != nil { // restore the N-1 baseline
				b.Fatal(err)
			}
			m := obs.New()
			cfg.Metrics = m
			b.StartTimer()
			if _, err := core.Run(reg, cfg, nil); err != nil {
				b.Fatal(err)
			}
			if got := m.Counter("engine.delta.characterize").Value(); got != 1 {
				b.Fatalf("iteration did not take the delta characterize path (counter = %d)", got)
			}
			if got := m.Counter("engine.stages_delta").Value(); got != 4 {
				b.Fatalf("delta stages = %d, want 4 (characterize, pca, scores, kmeans)", got)
			}
			b.ReportMetric(float64(m.Counter("engine.delta_reused_rows").Value()), "reused-rows")
			b.ReportMetric(float64(m.Counter("engine.stages_delta").Value()), "delta-stages")
		}
	})
}

// BenchmarkFullPipeline measures an end-to-end run at the benchmark scale.
func BenchmarkFullPipeline(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	// Keep each iteration a true end-to-end run (see BenchmarkCharacterize).
	cfg.Metrics = obs.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(reg, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Dataset.Instructions), "instructions")
	}
}

var sinkString string

// BenchmarkKiviatRender measures SVG figure generation.
func BenchmarkKiviatRender(b *testing.B) {
	env := benchEnv(b)
	if _, err := env.Result(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig23(env)
		if err != nil {
			b.Fatal(err)
		}
		sinkString = out
	}
}

func BenchmarkUarchCPU(b *testing.B) {
	cpu, err := uarch.NewCPU(uarch.BigCore())
	if err != nil {
		b.Fatal(err)
	}
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := reg.Lookup("SPECint2006/astar")
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(bm.BehaviorAt(0, 10), 1)
	if err != nil {
		b.Fatal(err)
	}
	var ins isa.Instruction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
		cpu.Record(&ins)
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := reg.Lookup("SPECfp2006/lbm")
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(bm.BehaviorAt(0, 10), 1)
	if err != nil {
		b.Fatal(err)
	}
	w := trace.NewWriter(io.Discard)
	var ins isa.Instruction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
		if err := w.Write(&ins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusQuery prices the phase corpus's online queries on a
// paper-scale database: 77 benchmarks x 150 interval vectors = 11,550
// rows of 69 characteristics — the corpus a full-roster campaign at 150
// samples per benchmark would accumulate. The exact blocked scan is the
// baseline (the target is sub-millisecond); the probed variant is the
// IVF partition layer at a fraction of the rows.
func BenchmarkCorpusQuery(b *testing.B) {
	const (
		nBenches = 77
		perBench = 150
	)
	dir := b.TempDir()
	c, err := corpus.Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := trace.NewRNG(11)
	batch := corpus.Batch{Dataset: 0xC0FFEE, Params: 1, Seed: 1}
	for bi := 0; bi < nBenches; bi++ {
		suite := fmt.Sprintf("Suite%d", bi%7)
		name := fmt.Sprintf("%s/bench%02d", suite, bi)
		for s := 0; s < perBench; s++ {
			vec := make([]float64, mica.NumMetrics)
			for j := range vec {
				vec[j] = rng.Float64() + float64(bi%11)*0.1
			}
			batch.Entries = append(batch.Entries, corpus.Entry{
				Bench: name, Suite: suite, Kind: corpus.KindInterval,
				Index: s, Vector: vec,
			})
		}
	}
	if _, err := c.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	probe := make([]float64, mica.NumMetrics)
	for j := range probe {
		probe[j] = rng.Float64()
	}
	query := func(b *testing.B, req corpus.QueryRequest) {
		b.Helper()
		var rows int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := c.Query(req)
			if err != nil {
				b.Fatal(err)
			}
			rows += int64(resp.Scanned)
		}
		b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/s")
	}
	b.Run("nearest-exact", func(b *testing.B) {
		query(b, corpus.QueryRequest{Op: "nearest", Vector: probe, K: 10})
	})
	b.Run("nearest-probed", func(b *testing.B) {
		query(b, corpus.QueryRequest{Op: "nearest", Vector: probe, K: 10, Probe: 8})
	})
	b.Run("uniqueness", func(b *testing.B) {
		query(b, corpus.QueryRequest{Op: "uniqueness", Bench: "Suite0/bench00"})
	})
}

func BenchmarkHierarchicalClustering(b *testing.B) {
	rng := trace.NewRNG(9)
	data := stats.NewMatrix(77, 12)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Hierarchical(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudies(b *testing.B) { runExperiment(b, "casestudies") }
