// Command micastat characterizes one benchmark with the 69 MICA
// microarchitecture-independent characteristics: the aggregate vector over
// the whole (scaled) execution, and optionally the per-interval vectors
// that expose its time-varying phase behaviour.
//
// Usage:
//
//	micastat [-interval N] [-per-interval] [-list] <suite/benchmark | benchmark>
//
// Examples:
//
//	micastat -list
//	micastat BioPerf/grappa
//	micastat -per-interval SPECint2006/astar
//	micastat -timeline -cache .cache -incremental SPECint2006/astar
//
// With -incremental the timeline's interval vectors fold into the
// benchmark's cached running summary: reruns fold nothing, and a deeper
// timeline (larger -max-intervals) folds exactly the intervals it adds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "micastat:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		intervalLen  = flag.Int("interval", 20000, "instructions per interval")
		maxIntervals = flag.Int("max-intervals", 60, "cap on the benchmark's interval count")
		perInterval  = flag.Bool("per-interval", false, "print one row per interval (phase view)")
		timeline     = flag.Bool("timeline", false, "detect phases and print the execution timeline strip")
		workers      = flag.Int("workers", 0, "parallel workers for timeline analysis (0: GOMAXPROCS; result is worker-count independent)")
		kiviat       = flag.Bool("kiviat", false, "print an ASCII kiviat over the paper's 12 key characteristics")
		traceFile    = flag.String("trace", "", "characterize a binary trace file instead of a benchmark model")
		list         = flag.Bool("list", false, "list available benchmarks and exit")
		models       = flag.String("models", "", "workload-model file or directory of *.json files: loaded suites replace same-named built-in suites and append otherwise")
		cacheDir     = flag.String("cache", "", "interval-vector cache directory for -timeline analysis (empty: no cache)")
		resume       = flag.Bool("resume", false, "serve the whole -timeline analysis from its cached stage artifact when present and valid (requires -cache)")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file")
		obsFlags     = cliobs.RegisterObsFlags(flag.CommandLine)
		incremental  = cliobs.RegisterIncremental(flag.CommandLine)
	)
	flag.Parse()
	if *cacheDir != "" && !*timeline {
		// Refusing beats silently running uncached: the cache only holds
		// characterized interval vectors, which only -timeline consumes.
		return fmt.Errorf("-cache requires -timeline (the cache stores the timeline's characterized interval vectors)")
	}
	if *resume && *cacheDir == "" {
		return fmt.Errorf("-resume requires -cache (the timeline stage artifact is stored there)")
	}
	if *incremental && (!*timeline || *cacheDir == "") {
		return fmt.Errorf("-incremental requires -timeline and -cache (it folds the timeline's interval vectors into the benchmark's cached running summary)")
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		// A profile that fails to flush is a failed run, not a warning.
		if perr := stopProf(); perr != nil && err == nil {
			err = fmt.Errorf("profile: %w", perr)
		}
	}()

	m, finishObs, err := obsFlags.Setup("micastat")
	if err != nil {
		return err
	}
	defer finishObs(&err)

	if *traceFile != "" {
		return characterizeTrace(*traceFile)
	}

	reg, err := bench.StandardRegistry()
	if err != nil {
		return err
	}
	if *models != "" {
		mf, err := bench.ReadModelFiles(*models)
		if err != nil {
			return err
		}
		if reg, err = reg.WithModels(mf); err != nil {
			return err
		}
	}
	if *list {
		for _, s := range reg.SuiteNames() {
			for _, b := range reg.BySuite(s) {
				fmt.Printf("  %-30s %d phases, %d paper intervals\n", b.ID(), len(b.Phases), b.PaperIntervals)
			}
		}
		return nil
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one benchmark name")
	}
	b, err := reg.Lookup(flag.Arg(0))
	if err != nil {
		return err
	}

	total := b.ScaledIntervals(*maxIntervals)
	fmt.Printf("%s: %d intervals x %d instructions, %d phases\n\n", b.ID(), total, *intervalLen, len(b.Phases))

	if *timeline {
		cfg := core.DefaultConfig()
		cfg.IntervalLength = *intervalLen
		cfg.MaxIntervalsPerBenchmark = *maxIntervals
		cfg.Workers = *workers
		cfg.CacheDir = *cacheDir
		cfg.Resume = *resume
		cfg.Metrics = m
		tl, err := core.AnalyzeTimeline(b, cfg, 8)
		if err != nil {
			return err
		}
		fmt.Printf("detected %d phases, %d transitions:\n  %s\n", tl.NumPhases, tl.Transitions, tl.Strip())
		for p, share := range tl.PhaseShares() {
			fmt.Printf("  phase %c: %5.1f%% of execution\n", 'A'+p, 100*share)
		}
		if *incremental {
			folded, cum, err := core.FoldTimelineStats(b, cfg, tl)
			if err != nil {
				return err
			}
			fmt.Printf("cumulative statistics: folded %d new of %d intervals (%d observed across runs):\n",
				folded, tl.Vectors.Rows, cum.Count)
			cs := cum.Stats()
			for _, name := range []string{"mix_load", "mix_store", "mix_branch", "ilp_64"} {
				if met, ok := mica.MetricByName(name); ok {
					fmt.Printf("  %-22s %10.4f ± %.4f\n", name, cs.Mean[met.Index], cs.Std[met.Index])
				}
			}
		}
		fmt.Println()
	}

	agg := mica.NewAnalyzer()
	ia := mica.NewAnalyzer()
	names := mica.MetricNames()

	if *perInterval {
		fmt.Printf("%-4s %-28s %8s %8s %8s %8s %8s %8s\n",
			"ivl", "phase", "ld", "st", "br", "ilp64", "GAs_8b", "dfoot64")
	}
	buf := make([]isa.Instruction, trace.DefaultBatchSize)
	for i := 0; i < total; i++ {
		ia.Reset()
		beh := b.BehaviorAt(i, total)
		err := trace.GenerateIntervalBatches(beh, b.IntervalSeed(i), *intervalLen, buf, func(batch []isa.Instruction) {
			agg.RecordBatch(batch)
			ia.RecordBatch(batch)
		})
		if err != nil {
			return err
		}
		if *perInterval {
			v := ia.Vector()
			get := func(name string) float64 {
				m, ok := mica.MetricByName(name)
				if !ok {
					return 0
				}
				return v[m.Index]
			}
			fmt.Printf("%-4d %-28s %8.3f %8.3f %8.3f %8.2f %8.3f %8.0f\n",
				i, beh.Name, get("mix_load"), get("mix_store"), get("mix_branch"),
				get("ilp_64"), get("GAs_8bits"), get("data_footprint_64B"))
		}
	}

	fmt.Printf("\naggregate characterization (%d instructions):\n", agg.Total())
	v := agg.Vector()
	if *kiviat {
		if err := printKiviat(b.ID(), v); err != nil {
			return err
		}
	}
	for c := 0; c < mica.NumCategories; c++ {
		cat := mica.Category(c)
		fmt.Printf("\n%s:\n", cat)
		for _, m := range mica.ByCategory(cat) {
			fmt.Printf("  %-22s %12.5g\n", names[m.Index], v[m.Index])
		}
	}
	return nil
}

// characterizeTrace runs the 69-characteristic analysis over a stored
// binary trace (see the trace package's encoding) — the bring-your-own
// trace workflow.
func characterizeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	a := mica.NewAnalyzer()
	var ins isa.Instruction
	for {
		err := r.Next(&ins)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Record(&ins)
	}
	fmt.Printf("%s: %d instructions\n", path, a.Total())
	v := a.Vector()
	names := mica.MetricNames()
	for c := 0; c < mica.NumCategories; c++ {
		cat := mica.Category(c)
		fmt.Printf("\n%s:\n", cat)
		for _, m := range mica.ByCategory(cat) {
			fmt.Printf("  %-22s %12.5g\n", names[m.Index], v[m.Index])
		}
	}
	return nil
}

// printKiviat renders the benchmark's aggregate vector as an ASCII kiviat
// over the paper's Table 2 key characteristics, scaled against rough
// workload-space bounds.
func printKiviat(id string, v []float64) error {
	key := mica.PaperKeyCharacteristics()
	axes := make([]viz.Axis, len(key))
	values := make([]float64, len(key))
	for i, m := range key {
		val := v[m.Index]
		hi := 1.0
		switch m.Category {
		case mica.CatMemoryFootprint:
			hi = 20000
		case mica.CatRegisterTraffic:
			hi = 4
		}
		axes[i] = viz.Axis{Name: m.Name, Min: 0, Max: hi, Mean: hi / 2, Std: hi / 4}
		values[i] = val
	}
	k := viz.Kiviat{Title: id + " (paper Table 2 axes):", Axes: axes, Values: values}
	out, err := k.ASCII(44)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(out)
	return nil
}
