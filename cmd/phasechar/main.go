// Command phasechar runs the phase-level workload characterization
// pipeline of Hoste & Eeckhout (ISPASS 2008) over the five synthetic
// benchmark suites and regenerates the paper's tables and figures.
//
// Usage:
//
//	phasechar [flags] <experiment>|all|list
//
// Experiments: table1 table2 table3 fig1 fig23 fig4 fig5 fig6
// ablation-aggregate ablation-k ablation-sampling.
//
// Examples:
//
//	phasechar list
//	phasechar -out results fig4
//	phasechar -paper-scale -out results all
//
// The characterization stage can be split across processes and the
// analysis resumed from persisted stage artifacts:
//
//	phasechar -cache .cache -shard 0/3 shard     # one worker per shard
//	phasechar -cache .cache -shard 1/3 shard
//	phasechar -cache .cache -shard 2/3 shard
//	phasechar -cache .cache -merge 3 export      # merge + analysis
//	phasechar -cache .cache -resume export       # rerun: recomputes nothing
//
// Or split across machines with no shared filesystem: each worker runs a
// shard server, and the coordinator ships shards over HTTP (the result is
// byte-identical to a single-process run, whatever workers or faults the
// run sees):
//
//	phasechar -addr 10.0.0.2:8421 serve          # on each worker machine
//	phasechar -cache .cache \
//	    -workers-addr 10.0.0.2:8421,10.0.0.3:8421 export
//
// Growing a dataset reuses the previous run's cached work: a run with
// -incremental records a baseline manifest, and a later -incremental run
// over a superset roster characterizes only the new benchmarks — and,
// within the -max-pca-drift / -max-centroid-shift tolerances, keeps the
// cached PCA basis and warm-starts k-means from the cached centroids:
//
//	phasechar -cache .cache -incremental -suites BioPerf,BMW export  # baseline
//	phasechar -cache .cache -incremental export                      # delta only
//
// Or run as a long-lived characterization service: a front door that
// accepts analysis jobs over HTTP, runs them against a shared cache
// (with an in-memory hot tier, so repeat queries answer at memory
// speed), and streams status and byte-identical results back:
//
//	phasechar -cache .cache -addr 127.0.0.1:8430 service   # the server
//	phasechar -server http://127.0.0.1:8430 -tenant alice \
//	    -quick -suites BioPerf submit > result.json        # a client
//
// Suites are data: the roster can be exported as a declarative model
// file, edited or extended (models/ ships an emerging big-data suite),
// and loaded back — locally, or inline in a service job so tenants
// characterize their own workloads against the shared cache:
//
//	phasechar -export-models > roster.json               # dump the built-ins
//	phasechar -models models -suites BigData export      # run a loaded suite
//	phasechar -server http://127.0.0.1:8430 \
//	    -models models -suites BigData submit            # ship it inline
//
// Runs accumulate into a persistent phase corpus: -corpus ingests each
// completed run's interval vectors and cluster centroids (idempotently —
// re-running the same dataset is a no-op), and the corpus answers
// similarity and uniqueness questions offline or through the service:
//
//	phasechar -quick -corpus .corpus export > run.json   # run + ingest
//	phasechar -corpus .corpus query stats
//	phasechar -corpus .corpus -topk 3 query nearest BioPerf/blastp#12
//	phasechar -corpus .corpus -radius 1.5 query novelty BigData
//	phasechar -corpus .corpus compact
//	phasechar -cache .cache -corpus .corpus -corpus-ingest \
//	    -addr 127.0.0.1:8430 service     # + POST /corpus/query
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/shardnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phasechar:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		out         = flag.String("out", "", "directory for SVG/CSV artifacts (empty: text output only)")
		interval    = flag.Int("interval", 0, "instructions per interval (0: default)")
		samples     = flag.Int("samples", 0, "sampled intervals per benchmark (0: default)")
		clusters    = flag.Int("clusters", 0, "number of k-means clusters (0: default 300)")
		prominent   = flag.Int("prominent", 0, "number of prominent phases (0: default 100)")
		key         = flag.Int("key", 0, "number of GA-selected key characteristics (0: default 12)")
		seed        = flag.Int64("seed", 1, "pipeline seed")
		workers     = flag.Int("workers", 0, "parallel workers for every stage — characterization, k-means, GA, distance kernels (0: GOMAXPROCS; results are worker-count independent)")
		paperScale  = flag.Bool("paper-scale", false, "use larger, closer-to-paper parameters (slower)")
		quick       = flag.Bool("quick", false, "use small, fast parameters (for smoke runs)")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
		cacheDir    = flag.String("cache", "", "interval-vector cache directory: characterized vectors persist across runs and matching intervals skip regeneration entirely (empty: no cache)")
		shardSpec   = flag.String("shard", "", "with the 'shard' target: characterize only shard i/n of the benchmarks (e.g. 0/3) and persist it as a shard artifact in -cache")
		mergeN      = flag.Int("merge", 0, "assemble the characterization from n shard artifacts in -cache (computing any missing shard locally) before the analysis stages")
		resume      = flag.Bool("resume", false, "skip every pipeline stage whose artifact is already in -cache and valid (a rerun with the same config recomputes nothing)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file")
		serveAddr   = flag.String("addr", "127.0.0.1:0", "with the 'serve' target: address to serve shard requests on (port 0: ephemeral)")
		workersAddr = flag.String("workers-addr", "", "comma-separated shard-worker addresses (host:port): distribute the characterization shards over HTTP before the analysis (requires -cache; default shard count: one per worker)")
		rpcTimeout  = flag.Duration("rpc-timeout", 30*time.Second, "per-shard-request deadline for -workers-addr runs")
		rpcRetries  = flag.Int("rpc-retries", 2, "extra attempts per worker per shard before the worker is declared dead")
		rpcFaults   = flag.String("rpc-faults", "", "inject transport faults into -workers-addr runs, e.g. '0:5xx,corrupt;2:down' (workerIndex:kinds; kinds: drop delay corrupt 5xx hang down) — for testing; never changes results")
		suites      = flag.String("suites", "", "comma-separated suite filter (e.g. BioPerf,SPECint2000): run the pipeline over only these suites' benchmarks (empty: all loaded suites)")
		models      = flag.String("models", "", "workload-model file or directory of *.json files: loaded suites replace same-named built-in suites and append otherwise (see DESIGN.md 'Workload model format')")
		exportM     = flag.Bool("export-models", false, "print the loaded benchmark roster (after -models and -suites) as a model file on stdout and exit")
		serverURL   = flag.String("server", "", "with the 'submit' target: base URL of a running characterization service (e.g. http://127.0.0.1:8430)")
		tenant      = flag.String("tenant", "", "with the 'submit' target: tenant name sent as X-Tenant (empty: anonymous)")
		queueDepth  = flag.Int("queue-depth", 16, "with the 'service' target: max queued jobs beyond the running ones; submissions past it get 429")
		jobWorkers  = flag.Int("job-workers", 2, "with the 'service' target: jobs run concurrently")
		hotMB       = flag.Int("hot-mb", 256, "with the 'service' target: in-memory hot-tier byte budget in MiB in front of -cache (0: no hot tier)")
		quotaBurst  = flag.Float64("quota-burst", 0, "with the 'service' target: per-tenant token-bucket burst; 0 disables quotas")
		quotaRate   = flag.Float64("quota-rate", 1, "with the 'service' target: per-tenant token refill rate (submissions per second)")
		obsFlags    = cliobs.RegisterObsFlags(flag.CommandLine)
		incremental = cliobs.RegisterIncremental(flag.CommandLine)
		incTol      = cliobs.RegisterIncrementalTolerances(flag.CommandLine)
		corpusFlags = cliobs.RegisterCorpusFlags(flag.CommandLine)
	)
	flag.Parse()

	// The shard/merge/resume workflow lives in the cache; refusing early
	// beats a misleading in-memory run that persists nothing.
	if *shardSpec != "" && *mergeN > 0 {
		return fmt.Errorf("-shard and -merge are different halves of the workflow: shard in worker runs, merge in the final run")
	}
	if (*shardSpec != "" || *mergeN > 0 || *resume) && *cacheDir == "" {
		return fmt.Errorf("-shard, -merge and -resume need -cache (shard and stage artifacts are stored there)")
	}
	if *mergeN < 0 {
		return fmt.Errorf("-merge %d: shard count must be positive", *mergeN)
	}
	if *workersAddr != "" && *shardSpec != "" {
		return fmt.Errorf("-workers-addr and -shard are different roles: the coordinator distributes shards, a worker serves or computes one")
	}
	if *workersAddr != "" && *cacheDir == "" {
		return fmt.Errorf("-workers-addr needs -cache (fetched shard artifacts are stored there for the merge)")
	}
	if corpusFlags.Ingest && corpusFlags.Dir == "" {
		return fmt.Errorf("-corpus-ingest needs -corpus (the phase database completed jobs accumulate into)")
	}
	if *incremental {
		// A submitted job's cache lives server-side, so submit is exempt
		// from the local -cache requirement.
		if *cacheDir == "" && flag.Arg(0) != "submit" {
			return fmt.Errorf("-incremental needs -cache (the baseline manifest and its reusable artifacts live there)")
		}
		if *shardSpec != "" || *mergeN > 0 || *workersAddr != "" {
			return fmt.Errorf("-incremental tracks a single-process dataset; it cannot combine with -shard, -merge or -workers-addr")
		}
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		// A profile that fails to flush is a failed run, not a warning:
		// the caller asked for the file and must not get a bad one with
		// exit status 0.
		if perr := stopProf(); perr != nil && err == nil {
			err = fmt.Errorf("profile: %w", perr)
		}
	}()

	m, finishObs, err := obsFlags.Setup("phasechar")
	if err != nil {
		return err
	}
	defer finishObs(&err)
	if flag.NArg() < 1 && !*exportM {
		flag.Usage()
		return fmt.Errorf("expected an experiment id (or 'all' / 'list' / 'export' / 'simpoints <benchmark>')")
	}
	target := flag.Arg(0)
	if *shardSpec != "" && target != "shard" {
		return fmt.Errorf("-shard only characterizes (target 'shard'); run the analysis over the shards with -merge %s", *shardSpec)
	}

	cfg := core.DefaultConfig()
	switch {
	case *paperScale:
		cfg.IntervalLength = 100000
		cfg.SamplesPerBenchmark = 150
		cfg.MaxIntervalsPerBenchmark = 160
	case *quick:
		cfg = core.TestConfig()
		cfg.IntervalLength = 5000
		cfg.SamplesPerBenchmark = 20
		cfg.MaxIntervalsPerBenchmark = 40
		cfg.NumClusters = 150
		cfg.NumProminent = 50
	}
	if *interval > 0 {
		cfg.IntervalLength = *interval
	}
	if *samples > 0 {
		cfg.SamplesPerBenchmark = *samples
	}
	if *clusters > 0 {
		cfg.NumClusters = *clusters
	}
	if *prominent > 0 {
		cfg.NumProminent = *prominent
	}
	if *key > 0 {
		cfg.KeyCharacteristics = *key
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.CacheDir = *cacheDir
	cfg.Resume = *resume
	if *mergeN > 0 {
		cfg.Shard = core.ShardSpec{Index: 0, Count: *mergeN}
	}
	if *incremental {
		cfg.Incremental = core.IncrementalSpec{
			Enabled:          true,
			MaxPCADrift:      incTol.MaxPCADrift,
			MaxCentroidShift: incTol.MaxCentroidShift,
		}
	}
	cfg.Metrics = m
	// Run writes the report when the pipeline completes; the deferred
	// finish rewrites it at exit with the post-pipeline stages (GA
	// selection, sweeps) included.
	cfg.ReportPath = obsFlags.Report

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	if target == "list" {
		for _, x := range experiments.All() {
			fmt.Printf("  %-19s %s\n", x.ID, x.Title)
		}
		fmt.Printf("  %-19s %s\n", "export", "run the pipeline and dump a JSON summary to stdout")
		fmt.Printf("  %-19s %s\n", "simpoints <bench>", "select weighted simulation points for one benchmark (section 5.3)")
		fmt.Printf("  %-19s %s\n", "shard", "characterize one shard of the benchmarks (-shard i/n, requires -cache)")
		fmt.Printf("  %-19s %s\n", "serve", "serve shard computations over HTTP for a -workers-addr coordinator (-addr host:port)")
		fmt.Printf("  %-19s %s\n", "service", "run the long-lived characterization service: analysis jobs over HTTP against a shared -cache (-addr host:port)")
		fmt.Printf("  %-19s %s\n", "submit", "submit this invocation's parameters as a job to a running service (-server URL) and print the result JSON")
		fmt.Printf("  %-19s %s\n", "query <op> [arg]", "answer a phase-corpus question from -corpus: stats | nearest suite/bench#index | uniqueness suite/bench | novelty Suite")
		fmt.Printf("  %-19s %s\n", "compact", "merge the -corpus segments into one (queries answer identically before and after)")
		return nil
	}

	if target == "query" || target == "compact" {
		return runCorpus(target, corpusFlags, m)
	}

	reg, err := bench.StandardRegistry()
	if err != nil {
		return err
	}
	var modelFile *bench.ModelFile
	if *models != "" {
		if modelFile, err = bench.ReadModelFiles(*models); err != nil {
			return err
		}
		if reg, err = reg.WithModels(modelFile); err != nil {
			return err
		}
	}
	if *suites != "" {
		if reg, err = reg.FilterSuites(*suites); err != nil {
			return err
		}
	}
	cfg.Registry = reg

	if *exportM {
		data, err := reg.ExportModels()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}

	if target == "serve" {
		srv := &shardnet.Server{Reg: reg, Workers: *workers, CacheDir: *cacheDir, Metrics: m, Logf: logf}
		// SIGINT/SIGTERM drain in-flight shard requests instead of
		// killing them mid-frame; a clean drain exits 0.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return srv.Serve(ctx, *serveAddr, func(a net.Addr) {
			// The bound address goes to stdout so scripts starting workers on
			// ephemeral ports (-addr host:0) can scrape where to reach them.
			fmt.Printf("phasechar: listening at http://%s\n", a)
		})
	}

	if target == "service" {
		if *cacheDir == "" {
			return fmt.Errorf("the service target needs -cache (jobs share artifacts through it)")
		}
		if corpusFlags.TopK != 0 || corpusFlags.Radius != 0 || corpusFlags.Probe != 0 {
			return fmt.Errorf("-topk, -radius and -probe shape local 'query' runs; service clients send them in the /corpus/query body")
		}
		// The service always runs with a live collector: /metrics is part
		// of its API. The obs flags still control report/summary output.
		sm := m
		if sm == nil {
			sm = obs.New()
			sm.SetTool("phasechar")
		}
		srv, err := serve.New(serve.Config{
			CacheDir:    *cacheDir,
			QueueDepth:  *queueDepth,
			Workers:     *jobWorkers,
			HotBytes:    int64(*hotMB) << 20,
			QuotaPerSec: *quotaRate,
			QuotaBurst:  *quotaBurst,
			Metrics:     sm,
			Logf:        logf,
			CorpusDir:   corpusFlags.Dir,
			IngestJobs:  corpusFlags.Ingest,
		})
		if err != nil {
			return err
		}
		// SIGINT/SIGTERM shut down gracefully (drain requests, finish
		// running jobs) and exit 0; a dead listener exits nonzero.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return srv.Serve(ctx, *serveAddr, func(a net.Addr) {
			fmt.Printf("phasechar: characterization service at http://%s\n", a)
		})
	}

	if target == "submit" {
		if *serverURL == "" {
			return fmt.Errorf("the submit target needs -server http://host:port (a running 'service')")
		}
		spec := serve.JobSpec{
			Suites:      *suites,
			Seed:        *seed,
			Interval:    *interval,
			Samples:     *samples,
			Clusters:    *clusters,
			Prominent:   *prominent,
			Key:         *key,
			Workers:     *workers,
			Incremental: *incremental,
		}
		switch {
		case *paperScale:
			spec.Preset = "paper-scale"
		case *quick:
			spec.Preset = "quick"
		}
		if modelFile != nil {
			if spec.Models, err = json.Marshal(modelFile); err != nil {
				return err
			}
		}
		if *incremental {
			spec.MaxPCADrift = &incTol.MaxPCADrift
			spec.MaxCentroidShift = &incTol.MaxCentroidShift
		}
		client := &serve.Client{Base: *serverURL, Tenant: *tenant}
		st, err := client.Submit(spec)
		if err != nil {
			return err
		}
		last, err := client.Events(st.ID, func(s serve.Status) {
			if logf != nil {
				logf("phasechar: job %s %s", s.ID, s.State)
			}
		})
		if err != nil {
			return err
		}
		if last.State != serve.StateDone {
			return fmt.Errorf("job %s ended %s: %s", st.ID, last.State, last.Error)
		}
		result, err := client.Result(st.ID, false)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(result)
		return err
	}

	if *workersAddr != "" {
		urls, err := cliobs.ParseWorkers(*workersAddr)
		if err != nil {
			return err
		}
		if cfg.Shard.Count < 1 {
			// One shard per worker unless -merge chose a finer split.
			cfg.Shard = core.ShardSpec{Index: 0, Count: len(urls)}
		}
		coord := &shardnet.Coordinator{
			Workers: urls,
			Timeout: *rpcTimeout,
			Retries: *rpcRetries,
			Seed:    *seed,
			Metrics: m,
			Logf:    logf,
		}
		if *rpcFaults != "" {
			hosts := make([]string, len(urls))
			for i, u := range urls {
				_, hosts[i], _ = strings.Cut(u, "://")
			}
			faults := shardnet.NewFaults(nil, *seed)
			if err := faults.AddSpec(*rpcFaults, hosts); err != nil {
				return err
			}
			coord.Transport = faults
		}
		stats, err := coord.Distribute(reg, cfg)
		if err != nil {
			return err
		}
		if logf != nil {
			logf("distributed: %d/%d shards remote, %d local, %d retries, %d reassigned, %d dead workers",
				stats.Remote, stats.Shards, stats.Local, stats.Retries, stats.Reassigned, stats.DeadWorkers)
		}
	}

	env := experiments.NewEnv(reg, cfg, *out, logf)

	switch target {
	case "shard":
		if *shardSpec == "" {
			return fmt.Errorf("the shard target needs -shard i/n to pick which shard to characterize")
		}
		index, count, err := cliobs.ParseShard(*shardSpec)
		if err != nil {
			return err
		}
		cfg.Shard = core.ShardSpec{Index: index, Count: count}
		info, err := core.CharacterizeShard(reg, cfg, logf)
		if err != nil {
			return err
		}
		state := "characterized"
		if info.Resumed {
			state = "already present"
		}
		fmt.Printf("shard %d/%d %s: %d benchmarks, %d sampled rows, %d unique intervals, %d instructions\n",
			info.Index, info.Count, state, info.Benchmarks, info.Refs, info.UniqueIntervals, info.Instructions)
		return nil
	case "export":
		res, err := env.Result()
		if err != nil {
			return err
		}
		if err := ingestCorpus(env, corpusFlags, m, logf); err != nil {
			return err
		}
		return res.WriteJSON(os.Stdout)
	case "simpoints":
		if flag.NArg() != 2 {
			return fmt.Errorf("usage: phasechar simpoints <suite/benchmark>")
		}
		b, err := reg.Lookup(flag.Arg(1))
		if err != nil {
			return err
		}
		res, err := env.Result()
		if err != nil {
			return err
		}
		points, err := res.SimulationPoints(b.ID(), 10)
		if err != nil {
			return err
		}
		fmt.Printf("simulation points for %s (up to 10):\n", b.ID())
		for _, p := range points {
			fmt.Printf("  interval %4d  weight %5.1f%%  phase %-24s cluster %d\n",
				p.Ref.Index, 100*p.Weight, p.Ref.PhaseName(), p.Cluster)
		}
		acc, err := res.SimPointAccuracy(b.ID(), points)
		if err != nil {
			return err
		}
		fmt.Printf("mean relative characteristic error vs full run: %.1f%%\n", 100*acc)
		return ingestCorpus(env, corpusFlags, m, logf)
	}

	var todo []experiments.Experiment
	if target == "all" {
		todo = experiments.All()
	} else {
		x, ok := experiments.ByID(target)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'list')", target)
		}
		todo = []experiments.Experiment{x}
	}
	for i, x := range todo {
		if i > 0 {
			fmt.Println()
		}
		report, err := x.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", x.ID, err)
		}
		fmt.Print(report)
	}
	if target == "all" && *out != "" {
		if err := experiments.WriteGallery(*out); err != nil {
			return err
		}
	}
	return ingestCorpus(env, corpusFlags, m, logf)
}

// runCorpus answers the corpus-only targets — "query <op> [arg]" asks
// one question of the -corpus phase database, "compact" merges its
// segments — without building a benchmark registry: both work purely
// from what earlier runs persisted.
func runCorpus(target string, cf *cliobs.CorpusFlags, m *obs.Metrics) error {
	if cf.Dir == "" {
		return fmt.Errorf("the %s target needs -corpus <dir> (the phase database to answer from)", target)
	}
	c, err := corpus.Open(cf.Dir, m)
	if err != nil {
		return err
	}
	if target == "compact" {
		info, err := c.Compact()
		if err != nil {
			return err
		}
		fmt.Printf("compacted %s: %d segments -> %d, %d records\n", cf.Dir, info.Before, info.After, info.Records)
		return nil
	}
	if flag.NArg() < 2 {
		return fmt.Errorf("usage: phasechar -corpus <dir> query stats|nearest|uniqueness|novelty [arg]")
	}
	req := corpus.QueryRequest{
		Op:     flag.Arg(1),
		K:      cf.TopK,
		Radius: cf.Radius,
		Probe:  cf.Probe,
	}
	// An unknown op flows through to Query, which names the valid ones.
	switch arg := flag.Arg(2); req.Op {
	case "nearest":
		req.Ref = arg
	case "uniqueness":
		req.Bench = arg
	case "novelty":
		req.Suite = arg
	}
	resp, err := c.Query(req)
	if err != nil {
		return err
	}
	return corpus.WriteResponse(os.Stdout, resp)
}

// ingestCorpus adds a completed run's phases to the -corpus database;
// without -corpus it is a no-op. Ingestion is keyed by the dataset
// hash, so re-running an already-ingested dataset changes nothing.
func ingestCorpus(env *experiments.Env, cf *cliobs.CorpusFlags, m *obs.Metrics, logf func(string, ...any)) error {
	if cf.Dir == "" {
		return nil
	}
	res, err := env.Result()
	if err != nil {
		return err
	}
	c, err := corpus.Open(cf.Dir, m)
	if err != nil {
		return err
	}
	info, err := c.IngestResult(res)
	if err != nil {
		return err
	}
	if logf != nil {
		if info.Skipped {
			logf("corpus: dataset %016x already in %s; ingest skipped", info.Dataset, cf.Dir)
		} else {
			logf("corpus: ingested %d intervals + %d centroids into %s (dataset %016x)",
				info.Intervals, info.Centroids, cf.Dir, info.Dataset)
		}
	}
	return nil
}
