// Command tracegen dumps the synthetic instruction stream of one benchmark
// interval in a human-readable format — useful for inspecting what the
// workload generator actually emits — or, with -all -o, writes every
// interval of the benchmark to one binary trace file, generating intervals
// in parallel.
//
// Usage:
//
//	tracegen [-n N] [-interval-index I] [-all] [-workers W] <suite/benchmark | benchmark>
//
// Examples:
//
//	tracegen -n 40 BioPerf/grappa
//	tracegen -all -n 2000 -workers 8 -o grappa.trace BioPerf/grappa
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		n            = flag.Int("n", 50, "number of instructions to dump (per interval with -all)")
		intervalIdx  = flag.Int("interval-index", 0, "which interval of the benchmark to generate")
		maxIntervals = flag.Int("max-intervals", 60, "cap on the benchmark's interval count")
		all          = flag.Bool("all", false, "with -o: write every interval of the benchmark, in order, to one trace file")
		workers      = flag.Int("workers", 0, "parallel workers for -all generation (0: GOMAXPROCS; output is worker-count independent)")
		outFile      = flag.String("o", "", "write a binary trace to this file instead of text to stdout")
		cacheDir     = flag.String("cache", "", "with -all: also characterize each interval and store its vector in this cache directory, pre-warming later phasechar/micastat runs")
		models       = flag.String("models", "", "workload-model file or directory of *.json files: loaded suites replace same-named built-in suites and append otherwise")
		obsFlags     = cliobs.RegisterObsFlags(flag.CommandLine)
		incremental  = cliobs.RegisterIncremental(flag.CommandLine)
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one benchmark name")
	}
	if *incremental && (!*all || *cacheDir == "") {
		return fmt.Errorf("-incremental requires -all and -cache (it skips re-characterizing intervals whose vectors the cache already holds)")
	}

	m, finishObs, err := obsFlags.Setup("tracegen")
	if err != nil {
		return err
	}
	defer finishObs(&err)

	reg, err := bench.StandardRegistry()
	if err != nil {
		return err
	}
	if *models != "" {
		mf, err := bench.ReadModelFiles(*models)
		if err != nil {
			return err
		}
		if reg, err = reg.WithModels(mf); err != nil {
			return err
		}
	}
	b, err := reg.Lookup(flag.Arg(0))
	if err != nil {
		return err
	}
	total := b.ScaledIntervals(*maxIntervals)

	if *all {
		if *outFile == "" {
			return fmt.Errorf("-all requires -o (binary traces only)")
		}
		return writeAllIntervals(b, total, *n, *workers, *outFile, *cacheDir, *incremental, m)
	}
	if *cacheDir != "" {
		return fmt.Errorf("-cache requires -all (it caches whole characterized intervals)")
	}

	if *intervalIdx < 0 || *intervalIdx >= total {
		return fmt.Errorf("interval index %d out of [0,%d)", *intervalIdx, total)
	}
	beh := b.BehaviorAt(*intervalIdx, total)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw := trace.NewWriter(f)
		var werr error
		err = trace.GenerateInterval(beh, b.IntervalSeed(*intervalIdx), *n, func(ins *isa.Instruction) {
			if werr == nil {
				werr = tw.Write(ins)
			}
		})
		if err != nil {
			return err
		}
		if werr != nil {
			return werr
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d instructions of %s (%s) to %s\n", tw.Count(), b.ID(), beh.Name, *outFile)
		return f.Close()
	}

	fmt.Printf("%s interval %d/%d, phase %q:\n", b.ID(), *intervalIdx, total, beh.Name)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	return trace.GenerateInterval(beh, b.IntervalSeed(*intervalIdx), *n, func(ins *isa.Instruction) {
		fmt.Fprintln(w, ins.String())
	})
}

// writeAllIntervals generates every interval of the benchmark concurrently
// — each interval encodes into its own in-memory buffer — and concatenates
// the buffers in interval order, so the file is byte-identical for any
// worker count. With a cache directory, each interval is additionally run
// through the MICA analyzer and its 69-dim vector stored under the same
// key core.Characterize uses, so later pipeline runs start cache-warm.
// In incremental mode an interval whose vector the cache already holds
// skips the analysis pass entirely (the trace bytes are still written,
// so the file stays complete and byte-identical).
func writeAllIntervals(b *bench.Benchmark, total, perInterval, workers int, path, cacheDir string, incremental bool, m *obs.Metrics) error {
	var cache *fcache.Cache
	if cacheDir != "" {
		var err error
		if cache, err = fcache.Open(cacheDir); err != nil {
			return err
		}
		cache.SetMetrics(m)
	}
	bufs := make([]bytes.Buffer, total)
	counts := make([]uint64, total)
	errs := make([]error, total)
	reused := make([]bool, total)
	nw := par.Workers(workers)
	span := m.StartSpan("generate").SetRows(total).SetWorkers(nw)
	analyzers := make([]*mica.Analyzer, nw)
	par.ForWorker(nw, total, func(w, i int) {
		beh := b.BehaviorAt(i, total)
		seed := b.IntervalSeed(i)
		var analyzer *mica.Analyzer
		if cache != nil {
			if incremental {
				if _, ok := cache.GetVector(core.VectorKey(beh, seed, perInterval), mica.NumMetrics); ok {
					reused[i] = true
				}
			}
			if !reused[i] {
				analyzer = analyzers[w]
				if analyzer == nil {
					analyzer = mica.NewAnalyzer()
					analyzers[w] = analyzer
				}
				analyzer.Reset()
			}
		}
		tw := trace.NewWriter(&bufs[i])
		var werr error
		err := trace.GenerateInterval(beh, seed, perInterval,
			func(ins *isa.Instruction) {
				if werr == nil {
					werr = tw.Write(ins)
				}
				if analyzer != nil {
					analyzer.Record(ins)
				}
			})
		switch {
		case err != nil:
			errs[i] = fmt.Errorf("interval %d: %w", i, err)
		case werr != nil:
			errs[i] = fmt.Errorf("interval %d: %w", i, werr)
		default:
			errs[i] = tw.Flush()
			counts[i] = tw.Count()
			if analyzer != nil && errs[i] == nil {
				// Best-effort: a failed write only costs regeneration later.
				_ = cache.PutVector(core.VectorKey(beh, seed, perInterval), analyzer.Vector())
			}
		}
	})
	span.End()
	if err := par.FirstError(errs); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var written uint64
	for i := range bufs {
		if _, err := f.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		written += counts[i]
	}
	fmt.Printf("wrote %d instructions (%d intervals x %d) of %s to %s\n",
		written, total, perInterval, b.ID(), path)
	if incremental {
		hits := 0
		for _, r := range reused {
			if r {
				hits++
			}
		}
		fmt.Printf("incremental: reused %d cached interval vectors, characterized %d\n", hits, total-hits)
	}
	return f.Close()
}
