// Command tracegen dumps the synthetic instruction stream of one benchmark
// interval in a human-readable format — useful for inspecting what the
// workload generator actually emits.
//
// Usage:
//
//	tracegen [-n N] [-interval-index I] <suite/benchmark | benchmark>
//
// Example:
//
//	tracegen -n 40 BioPerf/grappa
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n            = flag.Int("n", 50, "number of instructions to dump")
		intervalIdx  = flag.Int("interval-index", 0, "which interval of the benchmark to generate")
		maxIntervals = flag.Int("max-intervals", 60, "cap on the benchmark's interval count")
		outFile      = flag.String("o", "", "write a binary trace to this file instead of text to stdout")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected one benchmark name")
	}
	reg, err := bench.StandardRegistry()
	if err != nil {
		return err
	}
	b, err := reg.Lookup(flag.Arg(0))
	if err != nil {
		return err
	}
	total := b.ScaledIntervals(*maxIntervals)
	if *intervalIdx < 0 || *intervalIdx >= total {
		return fmt.Errorf("interval index %d out of [0,%d)", *intervalIdx, total)
	}
	beh := b.BehaviorAt(*intervalIdx, total)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw := trace.NewWriter(f)
		var werr error
		err = trace.GenerateInterval(beh, b.IntervalSeed(*intervalIdx), *n, func(ins *isa.Instruction) {
			if werr == nil {
				werr = tw.Write(ins)
			}
		})
		if err != nil {
			return err
		}
		if werr != nil {
			return werr
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d instructions of %s (%s) to %s\n", tw.Count(), b.ID(), beh.Name, *outFile)
		return f.Close()
	}

	fmt.Printf("%s interval %d/%d, phase %q:\n", b.ID(), *intervalIdx, total, beh.Name)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	return trace.GenerateInterval(beh, b.IntervalSeed(*intervalIdx), *n, func(ins *isa.Instruction) {
		fmt.Fprintln(w, ins.String())
	})
}
