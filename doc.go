// Package repro reproduces Hoste & Eeckhout, "Characterizing the Unique
// and Diverse Behaviors in Existing and Emerging General-Purpose and
// Domain-Specific Benchmark Suites" (ISPASS 2008).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable surfaces are the commands under cmd/ and the
// programs under examples/:
//
//   - cmd/phasechar regenerates every table and figure of the paper,
//   - cmd/micastat characterizes one benchmark with the 69 MICA metrics,
//   - cmd/tracegen dumps the synthetic instruction streams,
//   - examples/quickstart, examples/suitecompare and
//     examples/customworkload exercise the library API on the paper's
//     scenarios.
//
// The root package itself holds the repository-level integration tests and
// benchmark harness (bench_test.go): one benchmark per paper table/figure.
package repro
