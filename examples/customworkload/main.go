// Customworkload: define a brand-new benchmark as a declarative workload
// model, drop it into the reference workload space, and ask the paper's
// practical question (section 5.3): does this workload exhibit behaviour
// the existing suites already cover — in which case simulating the
// matching phases suffices — or does it bring genuinely new behaviour?
//
// The custom benchmark lives in kvstore.json — pure data, no Go: a
// hash-probe phase (random accesses over a big table, hard-to-predict
// comparisons) and a log-flush phase (store-heavy sequential streaming).
// The same file works unchanged with the CLIs (`phasechar -models
// kvstore.json`) and inline in a service job spec.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
)

//go:embed kvstore.json
var kvstoreModel []byte

func main() {
	// The probe phase is classic pointer chasing over a big hash table —
	// behaviour SPEC's mcf exhibits too, so the analysis should find the
	// match. The log-flush phase (store-heavy sequential writer) is the
	// genuinely new part.
	mf, err := bench.DecodeModels(kvstoreModel)
	if err != nil {
		log.Fatal(err)
	}
	std, err := bench.StandardRegistry()
	if err != nil {
		log.Fatal(err)
	}
	reg, err := std.WithModels(mf)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.IntervalLength = 5000
	cfg.SamplesPerBenchmark = 20
	cfg.MaxIntervalsPerBenchmark = 40
	cfg.NumClusters = 150
	cfg.NumProminent = 150 // summarize every cluster so we can inspect kvstore's

	res, err := core.Run(reg, cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Where did kvstore's intervals land?
	type hit struct {
		cluster int
		frac    float64
		kind    core.PhaseKind
		with    []string
	}
	var hits []hit
	for _, p := range res.Prominent {
		for _, c := range p.Composition {
			if c.BenchID != "Custom/kvstore" {
				continue
			}
			var with []string
			for _, o := range p.Composition {
				if o.BenchID != "Custom/kvstore" && o.ClusterShare >= 0.05 {
					with = append(with, o.BenchID)
				}
			}
			hits = append(hits, hit{p.Cluster, c.BenchmarkFraction, p.Kind, with})
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].frac > hits[b].frac })

	fmt.Printf("\nCustom/kvstore phase placement (%d clusters touched):\n", len(hits))
	var unique float64
	for _, h := range hits {
		if h.frac < 0.02 {
			continue
		}
		fmt.Printf("  %5.1f%% of kvstore in cluster %3d [%s]", 100*h.frac, h.cluster, h.kind)
		if len(h.with) > 0 {
			fmt.Printf("  shared with: %v", h.with)
		}
		fmt.Println()
		if h.kind == core.BenchmarkSpecific {
			unique += h.frac
		}
	}
	fmt.Printf("\n%.0f%% of kvstore's execution is behaviour no reference benchmark exhibits.\n", 100*unique)
	fmt.Println("For the rest, the matching reference phases above can stand in during simulation —")
	fmt.Println("the cross-benchmark simulation-point reduction the paper discusses in section 5.3.")
}
