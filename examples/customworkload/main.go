// Customworkload: define a brand-new benchmark as a behaviour model, drop
// it into the reference workload space, and ask the paper's practical
// question (section 5.3): does this workload exhibit behaviour the existing
// suites already cover — in which case simulating the matching phases
// suffices — or does it bring genuinely new behaviour?
//
// The custom benchmark below sketches a key-value store: a hash-probe
// phase (random accesses over a big table, hard-to-predict comparisons)
// and a log-flush phase (store-heavy sequential streaming).
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

func customBenchmark() *bench.Benchmark {
	// The probe phase is classic pointer chasing over a big hash table —
	// behaviour SPEC's mcf exhibits too, so the analysis should find the
	// match. The log-flush phase (store-heavy sequential writer) is the
	// genuinely new part.
	var probeMix trace.MixSpec
	probeMix[isa.OpLoad] = 0.30
	probeMix[isa.OpStore] = 0.06
	probeMix[isa.OpBranchCond] = 0.13
	probeMix[isa.OpBranchJump] = 0.01
	probeMix[isa.OpCall] = 0.01
	probeMix[isa.OpReturn] = 0.01
	probeMix[isa.OpIntAdd] = 0.30
	probeMix[isa.OpCompare] = 0.11
	probeMix[isa.OpLogic] = 0.04
	probeMix[isa.OpMove] = 0.03

	var flushMix trace.MixSpec
	flushMix[isa.OpLoad] = 0.20
	flushMix[isa.OpStore] = 0.24
	flushMix[isa.OpBranchCond] = 0.08
	flushMix[isa.OpIntAdd] = 0.28
	flushMix[isa.OpLogic] = 0.10
	flushMix[isa.OpShift] = 0.06
	flushMix[isa.OpMove] = 0.04

	const MB = 1 << 20
	return &bench.Benchmark{
		Name:           "kvstore",
		Suite:          "Custom",
		PaperIntervals: 500,
		Layout:         bench.LayoutPeriodic,
		Phases: []bench.Phase{
			{Weight: 0.7, Behavior: trace.PhaseBehavior{
				Name:     "kvstore/probe",
				Mix:      probeMix,
				CodeSize: 6000,
				Branch:   trace.BranchSpec{TakenBias: 0.55, PatternPeriod: 8, NoiseLevel: 0.2},
				Reg:      trace.RegDepSpec{MeanDepDist: 3, AvgSrcRegs: 1.4, WriteFraction: 0.5},
				Loads:    []trace.AccessPattern{{Kind: trace.PatternChase, Weight: 0.7, Region: 28 * MB}, {Kind: trace.PatternRandom, Weight: 0.3, Region: 28 * MB}},
				Stores:   []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 7 * MB}},
				Jitter:   0.08,
			}},
			{Weight: 0.3, Behavior: trace.PhaseBehavior{
				Name:     "kvstore/logflush",
				Mix:      flushMix,
				CodeSize: 1500,
				Branch:   trace.BranchSpec{TakenBias: 0.9, PatternPeriod: 24, NoiseLevel: 0.03},
				Reg:      trace.RegDepSpec{MeanDepDist: 8, AvgSrcRegs: 1.5, WriteFraction: 0.75},
				Loads:    []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 8 * MB, Stride: 8}},
				Stores:   []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 16 * MB, Stride: 8}},
				Jitter:   0.08,
			}},
		},
	}
}

func main() {
	std, err := bench.StandardRegistry()
	if err != nil {
		log.Fatal(err)
	}
	custom := customBenchmark()
	reg, err := bench.NewRegistry(append(std.All(), custom))
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.IntervalLength = 5000
	cfg.SamplesPerBenchmark = 20
	cfg.MaxIntervalsPerBenchmark = 40
	cfg.NumClusters = 150
	cfg.NumProminent = 150 // summarize every cluster so we can inspect kvstore's

	res, err := core.Run(reg, cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Where did kvstore's intervals land?
	type hit struct {
		cluster int
		frac    float64
		kind    core.PhaseKind
		with    []string
	}
	var hits []hit
	for _, p := range res.Prominent {
		for _, c := range p.Composition {
			if c.BenchID != "Custom/kvstore" {
				continue
			}
			var with []string
			for _, o := range p.Composition {
				if o.BenchID != "Custom/kvstore" && o.ClusterShare >= 0.05 {
					with = append(with, o.BenchID)
				}
			}
			hits = append(hits, hit{p.Cluster, c.BenchmarkFraction, p.Kind, with})
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].frac > hits[b].frac })

	fmt.Printf("\nCustom/kvstore phase placement (%d clusters touched):\n", len(hits))
	var unique float64
	for _, h := range hits {
		if h.frac < 0.02 {
			continue
		}
		fmt.Printf("  %5.1f%% of kvstore in cluster %3d [%s]", 100*h.frac, h.cluster, h.kind)
		if len(h.with) > 0 {
			fmt.Printf("  shared with: %v", h.with)
		}
		fmt.Println()
		if h.kind == core.BenchmarkSpecific {
			unique += h.frac
		}
	}
	fmt.Printf("\n%.0f%% of kvstore's execution is behaviour no reference benchmark exhibits.\n", 100*unique)
	fmt.Println("For the rest, the matching reference phases above can stand in during simulation —")
	fmt.Println("the cross-benchmark simulation-point reduction the paper discusses in section 5.3.")
}
