// Quickstart: characterize one benchmark with the 69 MICA
// microarchitecture-independent characteristics and look at its
// time-varying (phase) behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/trace"
)

func main() {
	reg, err := bench.StandardRegistry()
	if err != nil {
		log.Fatal(err)
	}

	// Pick SPEC CPU2006's astar: the paper's showcase of a program whose
	// two phases behave very differently (section 4.2).
	b, err := reg.Lookup("SPECint2006/astar")
	if err != nil {
		log.Fatal(err)
	}

	const intervalLen = 20000
	total := b.ScaledIntervals(24)
	fmt.Printf("%s: %d phases, %d intervals of %d instructions\n\n", b.ID(), len(b.Phases), total, intervalLen)

	// Characterize every interval and print a few telling metrics.
	metric := func(v []float64, name string) float64 {
		m, ok := mica.MetricByName(name)
		if !ok {
			log.Fatalf("unknown metric %q", name)
		}
		return v[m.Index]
	}

	agg := mica.NewAnalyzer()
	ia := mica.NewAnalyzer()
	fmt.Printf("%-4s %-18s %7s %7s %9s %9s\n", "ivl", "phase", "loads", "ilp64", "GAs miss", "dfoot64B")
	for i := 0; i < total; i++ {
		ia.Reset()
		beh := b.BehaviorAt(i, total)
		err := trace.GenerateInterval(beh, b.IntervalSeed(i), intervalLen, func(ins *isa.Instruction) {
			agg.Record(ins)
			ia.Record(ins)
		})
		if err != nil {
			log.Fatal(err)
		}
		v := ia.Vector()
		fmt.Printf("%-4d %-18s %6.1f%% %7.2f %8.1f%% %9.0f\n",
			i, beh.Name,
			100*metric(v, "mix_load"), metric(v, "ilp_64"),
			100*metric(v, "GAs_8bits"), metric(v, "data_footprint_64B"))
	}

	// The aggregate view hides exactly this phase structure — the
	// paper's core argument for phase-level characterization.
	v := agg.Vector()
	fmt.Printf("\naggregate over the whole run: loads %.1f%%, ilp64 %.2f, GAs miss %.1f%%\n",
		100*metric(v, "mix_load"), metric(v, "ilp_64"), 100*metric(v, "GAs_8bits"))
	fmt.Println("note how the per-interval rows alternate between two behaviours the aggregate averages away.")
}
