// Suitecompare: run the full phase-level methodology and compare a
// domain-specific suite (BioPerf) against a general-purpose one (SPEC
// CPU2006) on the paper's three suite-level questions — workload-space
// coverage, diversity, and uniqueness.
//
// Run with:
//
//	go run ./examples/suitecompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	reg, err := bench.StandardRegistry()
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	// Keep the example snappy: smaller intervals and samples than the
	// paper-scale run, same methodology.
	cfg.IntervalLength = 5000
	cfg.SamplesPerBenchmark = 20
	cfg.MaxIntervalsPerBenchmark = 40
	cfg.NumClusters = 150
	cfg.NumProminent = 60

	res, err := core.Run(reg, cfg, func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	})
	if err != nil {
		log.Fatal(err)
	}

	cov := res.SuiteCoverage()
	uf := res.UniqueFraction()

	fmt.Printf("\n%-14s %12s %16s %14s\n", "suite", "coverage", "clusters to 80%", "unique")
	for _, s := range []bench.Suite{
		bench.SuiteBioPerf, bench.SuiteBMW, bench.SuiteMediaBench,
		bench.SuiteSPECint2006, bench.SuiteSPECfp2006,
	} {
		fmt.Printf("%-14s %9d/%d %16d %13.0f%%\n",
			s, cov[s], res.Clusters.K, res.ClustersFor(s, 0.8), 100*uf[s])
	}

	fmt.Println("\nreading the table like the paper does:")
	fmt.Println("  - coverage:   SPEC touches far more of the workload space than the domain suites;")
	fmt.Println("  - diversity:  SPEC needs more clusters to reach 80% of its execution;")
	fmt.Println("  - uniqueness: BioPerf stands out — most of its behaviour appears in no other suite,")
	fmt.Println("    which is why the paper recommends adding it to a simulation benchmark set while")
	fmt.Println("    BMW and MediaBench II add little beyond SPEC CPU2006.")
}
