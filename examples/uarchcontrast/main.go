// Uarchcontrast: the paper's reason for measuring microarchitecture-
// INDEPENDENT characteristics, demonstrated. The same benchmark is
// measured two ways:
//
//   - with the dependent metrics older studies used (IPC, cache and branch
//     miss rates) on two different machine configurations — the numbers
//     change with the machine;
//   - with a few MICA characteristics — the numbers are properties of the
//     program alone.
//
// Run with:
//
//	go run ./examples/uarchcontrast
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func main() {
	reg, err := bench.StandardRegistry()
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"SPECint2006/mcf", "SPECfp2006/lbm", "BioPerf/grappa"}
	const length = 100000

	fmt.Printf("%-22s | %-23s | %-23s | %-20s\n",
		"", "small-core (dependent)", "big-core (dependent)", "MICA (independent)")
	fmt.Printf("%-22s | %11s %11s | %11s %11s | %9s %10s\n",
		"benchmark", "IPC", "L1D miss", "IPC", "L1D miss", "ILP-64", "PPM miss")

	for _, name := range names {
		bm, err := reg.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		beh := bm.BehaviorAt(0, bm.ScaledIntervals(60))
		seed := bm.IntervalSeed(0)

		measure := func(cfg uarch.Config) uarch.Metrics {
			cpu, err := uarch.NewCPU(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.GenerateInterval(beh, seed, length, func(ins *isa.Instruction) {
				cpu.Record(ins)
			}); err != nil {
				log.Fatal(err)
			}
			return cpu.Metrics()
		}
		small := measure(uarch.SmallCore())
		big := measure(uarch.BigCore())

		analyzer := mica.NewAnalyzer()
		if err := trace.GenerateInterval(beh, seed, length, func(ins *isa.Instruction) {
			analyzer.Record(ins)
		}); err != nil {
			log.Fatal(err)
		}
		v := analyzer.Vector()
		ilp, _ := mica.MetricByName("ilp_64")
		ppm, _ := mica.MetricByName("GAs_12bits")

		fmt.Printf("%-22s | %11.3f %10.1f%% | %11.3f %10.1f%% | %9.2f %9.1f%%\n",
			name,
			small.IPC, 100*small.L1DMissRate,
			big.IPC, 100*big.L1DMissRate,
			v[ilp.Index], 100*v[ppm.Index])
	}

	fmt.Println("\nThe dependent columns disagree between machines — which one characterizes")
	fmt.Println("the workload? The MICA columns are measured once and hold for any machine;")
	fmt.Println("that is why the paper's methodology is built on them.")
}
