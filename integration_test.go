package repro

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// The integration tests check that the paper's headline findings hold in
// shape on the synthetic suites (see DESIGN.md: absolute numbers are not
// the target; orderings are). The pipeline runs once and is shared.

var (
	integOnce sync.Once
	integRes  *core.Result
	integErr  error
)

func integResult(t *testing.T) *core.Result {
	t.Helper()
	integOnce.Do(func() {
		reg, err := bench.StandardRegistry()
		if err != nil {
			integErr = err
			return
		}
		cfg := core.TestConfig()
		cfg.IntervalLength = 4000
		cfg.SamplesPerBenchmark = 40
		cfg.MaxIntervalsPerBenchmark = 56
		cfg.NumClusters = 110
		cfg.NumProminent = 60
		cfg.Seed = 1
		integRes, integErr = core.Run(reg, cfg, nil)
	})
	if integErr != nil {
		t.Fatal(integErr)
	}
	return integRes
}

var (
	specSuites   = []bench.Suite{bench.SuiteSPECint2000, bench.SuiteSPECfp2000, bench.SuiteSPECint2006, bench.SuiteSPECfp2006}
	domainSuites = []bench.Suite{bench.SuiteBioPerf, bench.SuiteBMW, bench.SuiteMediaBench}
)

// TestHeadlineBioPerfMostUnique: the paper's third headline conclusion —
// BioPerf exhibits by far the largest fraction of unique behaviour.
func TestHeadlineBioPerfMostUnique(t *testing.T) {
	res := integResult(t)
	uf := res.UniqueFraction()
	bio := uf[bench.SuiteBioPerf]
	if bio < 0.4 {
		t.Fatalf("BioPerf unique fraction %.2f, expected a large fraction", bio)
	}
	for s, f := range uf {
		if s == bench.SuiteBioPerf {
			continue
		}
		if f >= bio {
			t.Fatalf("suite %s unique fraction %.2f >= BioPerf's %.2f", s, f, bio)
		}
	}
}

// TestHeadlineGeneralPurposeCoverage: SPEC CPU covers a much broader part
// of the workload space than the domain-specific suites (Figure 4).
func TestHeadlineGeneralPurposeCoverage(t *testing.T) {
	res := integResult(t)
	cov := res.SuiteCoverage()
	var specSum, domSum float64
	for _, s := range specSuites {
		specSum += float64(cov[s])
	}
	for _, s := range domainSuites {
		domSum += float64(cov[s])
	}
	specMean := specSum / float64(len(specSuites))
	domMean := domSum / float64(len(domainSuites))
	if specMean <= 1.3*domMean {
		t.Fatalf("mean SPEC coverage %.1f not well above mean domain coverage %.1f", specMean, domMean)
	}
	// BMW and MediaBench individually sit below every SPEC sub-suite.
	for _, d := range []bench.Suite{bench.SuiteBMW, bench.SuiteMediaBench} {
		for _, s := range specSuites {
			if cov[d] >= cov[s] {
				t.Fatalf("domain suite %s coverage %d >= SPEC suite %s coverage %d", d, cov[d], s, cov[s])
			}
		}
	}
}

// TestHeadlineCPU2006BroaderThanCPU2000: SPEC CPU2006 covers more of the
// workload space than its predecessor (Figure 4, first conclusion).
func TestHeadlineCPU2006BroaderThanCPU2000(t *testing.T) {
	res := integResult(t)
	cov := res.SuiteCoverage()
	c2000 := cov[bench.SuiteSPECint2000] + cov[bench.SuiteSPECfp2000]
	c2006 := cov[bench.SuiteSPECint2006] + cov[bench.SuiteSPECfp2006]
	if c2006 <= c2000 {
		t.Fatalf("CPU2006 coverage %d not above CPU2000's %d", c2006, c2000)
	}
}

// TestHeadlineDomainSuitesLessDiverse: domain-specific suites need fewer
// clusters per unit coverage (Figure 5).
func TestHeadlineDomainSuitesLessDiverse(t *testing.T) {
	res := integResult(t)
	need := func(suites []bench.Suite) float64 {
		var sum float64
		for _, s := range suites {
			sum += float64(res.ClustersFor(s, 0.8))
		}
		return sum / float64(len(suites))
	}
	spec := need(specSuites)
	dom := need(domainSuites)
	if dom >= spec {
		t.Fatalf("domain suites need %.1f clusters for 80%%, SPEC %.1f — diversity ordering violated", dom, spec)
	}
}

// TestProminentPhasesCoverage: the top-N prominent phases must cover a
// large but not complete fraction of the workload, mirroring the paper's
// 87.8% for 100 of 300 clusters.
func TestProminentPhasesCoverage(t *testing.T) {
	res := integResult(t)
	cov := res.ProminentCoverage()
	if cov < 0.5 || cov >= 1 {
		t.Fatalf("top-%d coverage = %.3f, expected a large proper fraction", len(res.Prominent), cov)
	}
}

// TestPhaseKindsAllPresent: the clustering must produce benchmark-specific,
// suite-specific and mixed clusters (the three groups of Figures 2-3).
func TestPhaseKindsAllPresent(t *testing.T) {
	res := integResult(t)
	kb := res.KindBreakdown()
	for _, kind := range []core.PhaseKind{core.BenchmarkSpecific, core.SuiteSpecific, core.Mixed} {
		if kb[kind] == 0 {
			t.Fatalf("no %s clusters found: %v", kind, kb)
		}
	}
}

// TestSharedPhasesCoCluster: designed cross-suite twin phases must land in
// the same cluster often enough to create mixed clusters between their
// suites (e.g. the BMW speak / sphinx3 pairing of the paper).
func TestSharedPhasesCoCluster(t *testing.T) {
	res := integResult(t)
	// For each (cluster, suite) pair record membership, then verify that
	// sphinx3 shares at least one cluster with a BMW benchmark.
	sphinxClusters := map[int]bool{}
	for i, ref := range res.Dataset.Refs {
		if ref.Bench.Name == "sphinx3" {
			sphinxClusters[res.Clusters.Assignments[i]] = true
		}
	}
	shared := false
	for i, ref := range res.Dataset.Refs {
		if ref.Bench.Suite == bench.SuiteBMW && sphinxClusters[res.Clusters.Assignments[i]] {
			shared = true
			_ = i
			break
		}
	}
	if !shared {
		t.Fatal("sphinx3 shares no cluster with any BMW benchmark (speech-processing twin broken)")
	}
}

// TestKeyCharacteristicSelection: the GA must reach a solid distance
// correlation with a dozen characteristics, as in Figure 1.
func TestKeyCharacteristicSelection(t *testing.T) {
	res := integResult(t)
	sel, err := res.SelectKeyCharacteristics(12)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Fitness < 0.6 {
		t.Fatalf("12-characteristic correlation %.3f, expected >= 0.6", sel.Fitness)
	}
	if len(sel.Selected) != 12 {
		t.Fatalf("selected %d characteristics", len(sel.Selected))
	}
}
