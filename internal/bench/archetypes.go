package bench

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Size constants for working-set specifications.
const (
	KB uint64 = 1024
	MB uint64 = 1024 * 1024
)

// Pattern helpers.

func stridePat(weight float64, region, stride uint64) trace.AccessPattern {
	return trace.AccessPattern{Kind: trace.PatternStride, Weight: weight, Region: region, Stride: stride}
}

func randomPat(weight float64, region uint64) trace.AccessPattern {
	return trace.AccessPattern{Kind: trace.PatternRandom, Weight: weight, Region: region}
}

func chasePat(weight float64, region uint64) trace.AccessPattern {
	return trace.AccessPattern{Kind: trace.PatternChase, Weight: weight, Region: region}
}

// mod returns b after applying edits, for one-off per-benchmark tweaks to
// an archetype.
func mod(b trace.PhaseBehavior, edits ...func(*trace.PhaseBehavior)) trace.PhaseBehavior {
	for _, e := range edits {
		e(&b)
	}
	return b
}

// The archetype constructors below are the behavioural vocabulary the 77
// benchmark models are written in. Each returns a complete PhaseBehavior;
// callers tweak fields for benchmark-specific character. Parameters were
// chosen so the archetypes occupy distinct areas of the 69-characteristic
// space (mix, ILP, locality, predictability), with domain-specific
// archetypes (bio*, media*, dsp*) either deliberately distant from the
// general-purpose ones (BioPerf) or deliberately near them (BMW,
// MediaBench II) — see DESIGN.md.

// intControl models branchy general-purpose integer code (compilers,
// interpreters, place-and-route): moderate memory traffic over mixed
// random/strided working sets, short dependences, mediocre branch
// prediction.
func intControl(name string, codeSize int, ws uint64, takenBias float64, period int, noise float64) trace.PhaseBehavior {
	mix := trace.BaseMix().
		Set(isa.OpBranchCond, 0.16).
		Set(isa.OpLoad, 0.22).
		Set(isa.OpStore, 0.10)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: codeSize,
		Branch:   trace.BranchSpec{TakenBias: takenBias, PatternPeriod: period, NoiseLevel: noise},
		Reg:      trace.RegDepSpec{MeanDepDist: 6, AvgSrcRegs: 1.6, WriteFraction: 0.72},
		Loads:    []trace.AccessPattern{randomPat(0.5, ws), stridePat(0.5, ws/2+4*KB, 64)},
		Stores:   []trace.AccessPattern{randomPat(0.5, ws/2+4*KB), stridePat(0.5, ws/4+4*KB, 64)},
		Jitter:   0.08,
	}
}

// intStream models byte-stream integer kernels (compression): strided
// sequential processing with shifts and logic, well-predicted loop
// branches.
func intStream(name string, ws uint64, stride uint64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.26
	mix[isa.OpStore] = 0.13
	mix[isa.OpBranchCond] = 0.11
	mix[isa.OpBranchJump] = 0.01
	mix[isa.OpIntAdd] = 0.22
	mix[isa.OpLogic] = 0.10
	mix[isa.OpShift] = 0.08
	mix[isa.OpCompare] = 0.06
	mix[isa.OpMove] = 0.03
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 4000,
		Branch:   trace.BranchSpec{TakenBias: 0.85, PatternPeriod: 24, NoiseLevel: 0.05},
		Reg:      trace.RegDepSpec{MeanDepDist: 5, AvgSrcRegs: 1.5, WriteFraction: 0.75},
		Loads:    []trace.AccessPattern{stridePat(0.8, ws, stride), randomPat(0.2, ws/2+4*KB)},
		Stores:   []trace.AccessPattern{stridePat(0.9, ws/2+4*KB, stride), randomPat(0.1, ws/4+4*KB)},
		Jitter:   0.08,
	}
}

// pointerChase models pointer-intensive graph/queue codes (mcf, omnetpp):
// dependent loads over large sparse working sets, short dependence chains,
// data-dependent branches.
func pointerChase(name string, ws uint64, takenBias float64, period int) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.30
	mix[isa.OpStore] = 0.06
	mix[isa.OpBranchCond] = 0.13
	mix[isa.OpBranchJump] = 0.01
	mix[isa.OpCall] = 0.01
	mix[isa.OpReturn] = 0.01
	mix[isa.OpIntAdd] = 0.30
	mix[isa.OpCompare] = 0.11
	mix[isa.OpLogic] = 0.04
	mix[isa.OpMove] = 0.03
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 6000,
		Branch:   trace.BranchSpec{TakenBias: takenBias, PatternPeriod: period, NoiseLevel: 0.2},
		Reg:      trace.RegDepSpec{MeanDepDist: 3, AvgSrcRegs: 1.4, WriteFraction: 0.5},
		Loads:    []trace.AccessPattern{chasePat(0.7, ws), randomPat(0.3, ws)},
		Stores:   []trace.AccessPattern{randomPat(1, ws/4+4*KB)},
		Jitter:   0.08,
	}
}

// fpStream models streaming floating-point stencil/array kernels (swim,
// lbm, bwaves): unit-stride sweeps over very large arrays, long dependence
// distances (high ILP), nearly perfect loop branches.
func fpStream(name string, ws uint64, stride uint64) trace.PhaseBehavior {
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      trace.FPBaseMix(),
		CodeSize: 1500,
		Branch:   trace.BranchSpec{TakenBias: 0.96, PatternPeriod: 48, NoiseLevel: 0.01},
		Reg:      trace.RegDepSpec{MeanDepDist: 24, AvgSrcRegs: 2.0, WriteFraction: 0.92},
		Loads:    []trace.AccessPattern{stridePat(1, ws, stride)},
		Stores:   []trace.AccessPattern{stridePat(1, ws/2+4*KB, stride)},
		Jitter:   0.06,
	}
}

// fpMatrix models blocked/multi-stride dense linear algebra and
// multi-dimensional stencils (mgrid, applu): a mixture of unit and
// row-sized strides.
func fpMatrix(name string, ws uint64, rowStride uint64) trace.PhaseBehavior {
	mix := trace.FPBaseMix().
		Set(isa.OpFPMul, 0.22).
		Set(isa.OpIntAdd, 0.12)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 3000,
		Branch:   trace.BranchSpec{TakenBias: 0.93, PatternPeriod: 32, NoiseLevel: 0.02},
		Reg:      trace.RegDepSpec{MeanDepDist: 18, AvgSrcRegs: 2.1, WriteFraction: 0.85},
		Loads:    []trace.AccessPattern{stridePat(0.6, ws, 8), stridePat(0.4, ws, rowStride)},
		Stores:   []trace.AccessPattern{stridePat(1, ws/2+4*KB, 8)},
		Jitter:   0.07,
	}
}

// fpScalar models scalar floating-point codes with substantial control
// flow (quantum chemistry, ray tracing): FP arithmetic interleaved with
// branches and mixed-locality accesses, large code footprints.
func fpScalar(name string, codeSize int, ws uint64) trace.PhaseBehavior {
	mix := trace.FPBaseMix().
		Set(isa.OpBranchCond, 0.10).
		Set(isa.OpCall, 0.015).
		Set(isa.OpReturn, 0.015).
		Set(isa.OpFPDiv, 0.02).
		Set(isa.OpFPSqrt, 0.01).
		Set(isa.OpIntAdd, 0.12)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: codeSize,
		Branch:   trace.BranchSpec{TakenBias: 0.72, PatternPeriod: 12, NoiseLevel: 0.08},
		Reg:      trace.RegDepSpec{MeanDepDist: 8, AvgSrcRegs: 1.9, WriteFraction: 0.8},
		Loads:    []trace.AccessPattern{stridePat(0.5, ws, 8), randomPat(0.5, ws/2+4*KB)},
		Stores:   []trace.AccessPattern{stridePat(0.6, ws/4+4*KB, 8), randomPat(0.4, ws/4+4*KB)},
		Jitter:   0.08,
	}
}

// sparseFP models irregular floating-point codes (sparse solvers, lattice
// QCD): gather-dominated loads over large working sets.
func sparseFP(name string, ws uint64) trace.PhaseBehavior {
	mix := trace.FPBaseMix().
		Set(isa.OpLoad, 0.30).
		Set(isa.OpBranchCond, 0.06).
		Set(isa.OpIntAdd, 0.14)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 4000,
		Branch:   trace.BranchSpec{TakenBias: 0.88, PatternPeriod: 20, NoiseLevel: 0.05},
		Reg:      trace.RegDepSpec{MeanDepDist: 10, AvgSrcRegs: 1.9, WriteFraction: 0.8},
		Loads:    []trace.AccessPattern{randomPat(0.6, ws), stridePat(0.4, ws/2+4*KB, 8)},
		Stores:   []trace.AccessPattern{stridePat(0.7, ws/4+4*KB, 8), randomPat(0.3, ws/4+4*KB)},
		Jitter:   0.08,
	}
}

// gameTree models game-tree search and board evaluation (crafty, gobmk,
// sjeng): heavy hard-to-predict branching, logic/shift bit-board work,
// random accesses to mid-sized tables, deep call chains.
func gameTree(name string, codeSize int, ws uint64, noise float64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.24
	mix[isa.OpStore] = 0.07
	mix[isa.OpBranchCond] = 0.16
	mix[isa.OpBranchJump] = 0.02
	mix[isa.OpCall] = 0.025
	mix[isa.OpReturn] = 0.025
	mix[isa.OpIntAdd] = 0.20
	mix[isa.OpLogic] = 0.11
	mix[isa.OpShift] = 0.06
	mix[isa.OpCompare] = 0.09
	mix[isa.OpMove] = 0.04
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: codeSize,
		Branch:   trace.BranchSpec{TakenBias: 0.55, PatternPeriod: 8, NoiseLevel: noise},
		Reg:      trace.RegDepSpec{MeanDepDist: 5, AvgSrcRegs: 1.6, WriteFraction: 0.58},
		Loads:    []trace.AccessPattern{randomPat(0.7, ws), stridePat(0.3, ws/4+4*KB, 8)},
		Stores:   []trace.AccessPattern{randomPat(1, ws/4+4*KB)},
		Jitter:   0.08,
	}
}

// mediaKernel models integer multimedia kernels (DCT, motion estimation,
// entropy coding): multiply/shift-rich integer loops over small hot
// buffers, extremely regular branches — the MediaBench II vocabulary,
// shared (with parameter changes) by SPEC's h264ref.
func mediaKernel(name string, ws uint64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.24
	mix[isa.OpStore] = 0.10
	mix[isa.OpBranchCond] = 0.10
	mix[isa.OpBranchJump] = 0.01
	mix[isa.OpIntAdd] = 0.25
	mix[isa.OpIntMul] = 0.08
	mix[isa.OpLogic] = 0.07
	mix[isa.OpShift] = 0.09
	mix[isa.OpCompare] = 0.04
	mix[isa.OpMove] = 0.02
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 900,
		Branch:   trace.BranchSpec{TakenBias: 0.9, PatternPeriod: 16, NoiseLevel: 0.02},
		Reg:      trace.RegDepSpec{MeanDepDist: 6, AvgSrcRegs: 1.7, WriteFraction: 0.88},
		Loads:    []trace.AccessPattern{stridePat(0.85, ws, 8), randomPat(0.15, ws/2+4*KB)},
		Stores:   []trace.AccessPattern{stridePat(1, ws/2+4*KB, 8)},
		Jitter:   0.07,
	}
}

// dspFP models floating-point signal-processing pipelines (filters, FFTs,
// Gabor/wavelet transforms) — the BioMetricsWorkload vocabulary,
// deliberately adjacent to mediaKernel and fpStream.
func dspFP(name string, ws uint64) trace.PhaseBehavior {
	mix := trace.FPBaseMix().
		Set(isa.OpFPMul, 0.20).
		Set(isa.OpIntAdd, 0.12).
		Set(isa.OpShift, 0.03)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 1200,
		Branch:   trace.BranchSpec{TakenBias: 0.92, PatternPeriod: 24, NoiseLevel: 0.03},
		Reg:      trace.RegDepSpec{MeanDepDist: 14, AvgSrcRegs: 1.9, WriteFraction: 0.82},
		Loads:    []trace.AccessPattern{stridePat(0.8, ws, 8), stridePat(0.2, ws, 512)},
		Stores:   []trace.AccessPattern{stridePat(1, ws/2+4*KB, 8)},
		Jitter:   0.07,
	}
}

// bioScan models sequence-database scanning (BLAST, FASTA): an extreme
// load-dominated compare/logic mix with almost no stores and
// data-dependent branches — a corner of the workload space the
// general-purpose suites do not visit.
func bioScan(name string, ws uint64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.34
	mix[isa.OpStore] = 0.02
	mix[isa.OpBranchCond] = 0.15
	mix[isa.OpIntAdd] = 0.18
	mix[isa.OpLogic] = 0.12
	mix[isa.OpCompare] = 0.14
	mix[isa.OpShift] = 0.03
	mix[isa.OpMove] = 0.02
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 2500,
		Branch:   trace.BranchSpec{TakenBias: 0.6, PatternPeriod: 6, NoiseLevel: 0.2},
		Reg:      trace.RegDepSpec{MeanDepDist: 3, AvgSrcRegs: 1.3, WriteFraction: 0.85},
		Loads:    []trace.AccessPattern{stridePat(0.7, ws, 8), randomPat(0.3, ws/2+4*KB)},
		Stores:   []trace.AccessPattern{stridePat(1, 64*KB, 8)},
		Jitter:   0.09,
	}
}

// bioBitLogic models bit-vector genome-rearrangement kernels (grappa): a
// logic/shift-saturated mix with tiny-stride accesses to a compact working
// set and serial dependences — unique in the workload space.
func bioBitLogic(name string) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.18
	mix[isa.OpStore] = 0.05
	mix[isa.OpBranchCond] = 0.12
	mix[isa.OpIntAdd] = 0.17
	mix[isa.OpLogic] = 0.30
	mix[isa.OpShift] = 0.12
	mix[isa.OpCompare] = 0.05
	mix[isa.OpMove] = 0.01
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 1500,
		Branch:   trace.BranchSpec{TakenBias: 0.7, PatternPeriod: 10, NoiseLevel: 0.1},
		Reg:      trace.RegDepSpec{MeanDepDist: 2, AvgSrcRegs: 1.8, WriteFraction: 0.9},
		Loads:    []trace.AccessPattern{stridePat(0.9, 512*KB, 8), randomPat(0.1, 256*KB)},
		Stores:   []trace.AccessPattern{stridePat(1, 256*KB, 8)},
		Jitter:   0.08,
	}
}

// bioHMM models profile hidden-Markov-model scoring (hmmer): dynamic
// programming with integer multiply-accumulate over table lookups. SPEC
// CPU2006's hmmer is given a close variant of this archetype, reproducing
// the paper's shared hmmer cluster.
func bioHMM(name string, ws uint64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.28
	mix[isa.OpStore] = 0.12
	mix[isa.OpBranchCond] = 0.08
	mix[isa.OpIntAdd] = 0.30
	mix[isa.OpIntMul] = 0.06
	mix[isa.OpCompare] = 0.08
	mix[isa.OpLogic] = 0.04
	mix[isa.OpMove] = 0.04
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 1800,
		Branch:   trace.BranchSpec{TakenBias: 0.88, PatternPeriod: 20, NoiseLevel: 0.05},
		Reg:      trace.RegDepSpec{MeanDepDist: 4, AvgSrcRegs: 1.8, WriteFraction: 0.8},
		Loads:    []trace.AccessPattern{stridePat(0.5, ws, 8), randomPat(0.5, 1*MB)},
		Stores:   []trace.AccessPattern{stridePat(1, ws/2+4*KB, 8)},
		Jitter:   0.07,
	}
}

// bioTreeFP models phylogenetic tree evaluation (phylip, and the
// FP-over-pointers parts of t-coffee): floating-point arithmetic fed by
// pointer-chased traversals — an FP/irregular-memory combination rare in
// SPEC.
func bioTreeFP(name string, ws uint64) trace.PhaseBehavior {
	mix := trace.FPBaseMix().
		Set(isa.OpLoad, 0.30).
		Set(isa.OpBranchCond, 0.11).
		Set(isa.OpFPAdd, 0.18).
		Set(isa.OpFPMul, 0.12).
		Set(isa.OpIntAdd, 0.14)
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 3000,
		Branch:   trace.BranchSpec{TakenBias: 0.65, PatternPeriod: 7, NoiseLevel: 0.15},
		Reg:      trace.RegDepSpec{MeanDepDist: 4, AvgSrcRegs: 1.7, WriteFraction: 0.7},
		Loads:    []trace.AccessPattern{chasePat(0.55, ws), stridePat(0.45, ws/2+4*KB, 8)},
		Stores:   []trace.AccessPattern{randomPat(0.5, ws/4+4*KB), stridePat(0.5, ws/4+4*KB, 8)},
		Jitter:   0.09,
	}
}

// quantumStream models libquantum: a branch-dense but perfectly predicted
// streaming sweep over an enormous bit-vector register file.
func quantumStream(name string) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.25
	mix[isa.OpStore] = 0.13
	mix[isa.OpBranchCond] = 0.20
	mix[isa.OpIntAdd] = 0.25
	mix[isa.OpLogic] = 0.12
	mix[isa.OpCompare] = 0.03
	mix[isa.OpMove] = 0.02
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: 700,
		Branch:   trace.BranchSpec{TakenBias: 0.75, PatternPeriod: 4, NoiseLevel: 0.005},
		Reg:      trace.RegDepSpec{MeanDepDist: 10, AvgSrcRegs: 1.5, WriteFraction: 0.75},
		Loads:    []trace.AccessPattern{stridePat(1, 32*MB, 8)},
		Stores:   []trace.AccessPattern{stridePat(1, 32*MB, 8)},
		Jitter:   0.05,
	}
}

// objTraverse models object-oriented traversal/dispatch codes (xalancbmk,
// eon, omnetpp's event handling): call/return-rich pointer chasing with
// moderate predictability and big code footprints.
func objTraverse(name string, codeSize int, ws uint64) trace.PhaseBehavior {
	var mix trace.MixSpec
	mix[isa.OpLoad] = 0.27
	mix[isa.OpStore] = 0.10
	mix[isa.OpBranchCond] = 0.12
	mix[isa.OpBranchJump] = 0.03
	mix[isa.OpCall] = 0.04
	mix[isa.OpReturn] = 0.04
	mix[isa.OpIntAdd] = 0.22
	mix[isa.OpCompare] = 0.09
	mix[isa.OpLogic] = 0.04
	mix[isa.OpMove] = 0.05
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      mix,
		CodeSize: codeSize,
		Branch:   trace.BranchSpec{TakenBias: 0.62, PatternPeriod: 10, NoiseLevel: 0.12},
		Reg:      trace.RegDepSpec{MeanDepDist: 5, AvgSrcRegs: 1.5, WriteFraction: 0.7},
		Loads:    []trace.AccessPattern{chasePat(0.5, ws), randomPat(0.5, ws/2+4*KB)},
		Stores:   []trace.AccessPattern{randomPat(1, ws/4+4*KB)},
		Jitter:   0.08,
	}
}
