// Package bench defines the five benchmark suites the paper studies — SPEC
// CPU2000 (int/fp), SPEC CPU2006 (int/fp), BioPerf, BioMetricsWorkload and
// MediaBench II, 77 benchmarks in total — as synthetic behaviour models:
// every benchmark is a schedule of trace.PhaseBehavior specifications plus
// its (paper Table 3) dynamic-execution interval count.
//
// The behaviour models are constructed from the paper's qualitative
// workload descriptions and public knowledge of the real programs; they are
// substitutes for PIN-instrumented binaries (see DESIGN.md), engineered so
// that the *shape* of the paper's phase-level results reproduces.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Suite identifies one of the seven sub-suites of the paper's figures
// (SPEC CPU is split into its integer and floating-point halves, exactly
// as Figures 4–6 report them).
type Suite string

const (
	SuiteBioPerf     Suite = "BioPerf"
	SuiteBMW         Suite = "BMW" // BioMetricsWorkload
	SuiteMediaBench  Suite = "MediaBenchII"
	SuiteSPECint2000 Suite = "SPECint2000"
	SuiteSPECfp2000  Suite = "SPECfp2000"
	SuiteSPECint2006 Suite = "SPECint2006"
	SuiteSPECfp2006  Suite = "SPECfp2006"
)

// SuiteInfo is a suite's registry metadata: what used to be hard-coded
// enum switches (domain-specific or not, presentation order) plus a
// human-readable description. Suites are open — any registry may carry
// suites beyond the paper's seven, loaded from declarative model files.
type SuiteInfo struct {
	// Name is the suite identifier, e.g. "BioPerf".
	Name Suite
	// Description is a one-line human-readable summary.
	Description string
	// DomainSpecific marks suites targeting a specific application
	// domain rather than general-purpose computing.
	DomainSpecific bool
}

// standardSuiteInfos is the paper's seven sub-suites in presentation
// order — the metadata NewRegistry derives for benchmarks that use the
// canonical suite names without declaring SuiteInfo explicitly.
var standardSuiteInfos = []SuiteInfo{
	{SuiteBioPerf, "BioPerf: bio-informatics workloads", true},
	{SuiteBMW, "BioMetricsWorkload: biometric recognition workloads", true},
	{SuiteSPECint2000, "SPEC CPU2000 integer benchmarks", false},
	{SuiteSPECfp2000, "SPEC CPU2000 floating-point benchmarks", false},
	{SuiteSPECint2006, "SPEC CPU2006 integer benchmarks", false},
	{SuiteSPECfp2006, "SPEC CPU2006 floating-point benchmarks", false},
	{SuiteMediaBench, "MediaBench II: media encode/decode workloads", true},
}

// Suites lists the seven canonical sub-suites in the paper's
// presentation order.
//
// Deprecated: the suite world is open; enumerate a registry's actual
// suites with Registry.SuiteNames or Registry.SuiteInfos instead.
func Suites() []Suite {
	out := make([]Suite, len(standardSuiteInfos))
	for i, si := range standardSuiteInfos {
		out[i] = si.Name
	}
	return out
}

// IsStandardSuite reports whether s is one of the paper's seven 2008-era
// sub-suites (as opposed to a custom or emerging-era suite loaded from
// model files).
func IsStandardSuite(s Suite) bool {
	for _, si := range standardSuiteInfos {
		if si.Name == s {
			return true
		}
	}
	return false
}

// IsDomainSpecific reports whether the suite targets a specific application
// domain (BioPerf, BMW, MediaBench II) rather than general-purpose
// computing (SPEC CPU).
//
// Deprecated: this enum switch only knows the seven canonical suites.
// Registry.IsDomainSpecific answers from the registry's suite metadata
// and covers loaded suites too.
func (s Suite) IsDomainSpecific() bool {
	switch s {
	case SuiteBioPerf, SuiteBMW, SuiteMediaBench:
		return true
	}
	return false
}

// Layout selects how a benchmark's phases are laid out over its execution.
type Layout uint8

const (
	// LayoutSequential runs each phase as one contiguous stretch of
	// intervals, in order, sized by weight.
	LayoutSequential Layout = iota
	// LayoutPeriodic cycles through the phases repeatedly (block sizes
	// proportional to weight within a fixed period), modelling programs
	// that alternate between behaviours.
	LayoutPeriodic
)

// periodicPeriod is the cycle length, in intervals, of LayoutPeriodic.
const periodicPeriod = 16

// Phase is one scheduled program phase of a benchmark.
type Phase struct {
	// Weight is the fraction of the benchmark's execution spent in this
	// phase (weights are normalized over the benchmark).
	Weight float64
	// Behavior is the synthetic behaviour specification.
	Behavior trace.PhaseBehavior
}

// Benchmark is one benchmark's behaviour model.
type Benchmark struct {
	// Name is the benchmark's name, unique within its suite.
	Name string
	// Suite is the sub-suite the benchmark belongs to.
	Suite Suite
	// PaperIntervals is the number of 100M-instruction intervals the
	// paper's Table 3 reports for the benchmark (approximate where the
	// available copy of the table is ambiguous).
	PaperIntervals int
	// Layout arranges the phases over the execution.
	Layout Layout
	// Phases is the behaviour schedule; at least one.
	Phases []Phase
	// Inputs are the benchmark's reference inputs; empty means the
	// single DefaultInput. The execution is partitioned into one
	// contiguous run per input (paper section 2.4: intervals are sampled
	// "across all of its inputs").
	Inputs []Input

	deriveOnce sync.Once
	derived    [][]trace.PhaseBehavior // [input][phase]
}

// ID returns the globally unique "suite/name" identifier.
func (b *Benchmark) ID() string { return string(b.Suite) + "/" + b.Name }

// Validate checks the model for structural errors.
func (b *Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("bench: benchmark with empty name")
	}
	if b.PaperIntervals < 1 {
		return fmt.Errorf("bench: %s: non-positive paper interval count", b.ID())
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("bench: %s: no phases", b.ID())
	}
	var total float64
	for i := range b.Phases {
		if b.Phases[i].Weight <= 0 {
			return fmt.Errorf("bench: %s: phase %d has non-positive weight", b.ID(), i)
		}
		total += b.Phases[i].Weight
		if err := b.Phases[i].Behavior.Validate(); err != nil {
			return fmt.Errorf("bench: %s: %w", b.ID(), err)
		}
	}
	if total <= 0 {
		return fmt.Errorf("bench: %s: zero total phase weight", b.ID())
	}
	seen := map[string]bool{}
	for _, in := range b.Inputs {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("bench: %s: %w", b.ID(), err)
		}
		if seen[in.Name] {
			return fmt.Errorf("bench: %s: duplicate input %q", b.ID(), in.Name)
		}
		seen[in.Name] = true
	}
	return nil
}

// minScaledIntervals floors every benchmark's scaled interval count. The
// floor matters for clustering health: per-interval jitter makes each
// interval a distinct point, so sampling (with replacement) from a pool at
// least this large rarely duplicates rows — duplicate-row spikes would
// otherwise form artificial benchmark-specific micro-clusters. (The paper,
// with 256 rows per cluster, tolerates its duplicates; at this
// reproduction's scale they would dominate.)
const minScaledIntervals = 48

// ScaledIntervals maps the paper's Table 3 interval count into this
// reproduction's (much smaller) per-benchmark interval count:
// round(count^0.45), clamped to [minScaledIntervals, maxIntervals]. The
// sub-linear scaling preserves the ordering of benchmark lengths without
// requiring trillions of instructions.
func (b *Benchmark) ScaledIntervals(maxIntervals int) int {
	if maxIntervals < 4 {
		maxIntervals = 4
	}
	n := int(math.Round(math.Pow(float64(b.PaperIntervals), 0.45)))
	if n < minScaledIntervals {
		n = minScaledIntervals
	}
	if n > maxIntervals {
		n = maxIntervals
	}
	return n
}

// PhaseAt returns which phase interval index i (of total intervals)
// executes, honouring the benchmark's layout. With multiple inputs, each
// input's contiguous segment runs the full phase schedule.
func (b *Benchmark) PhaseAt(i, total int) int {
	if total <= 0 || i < 0 {
		return 0
	}
	if i >= total {
		i = total - 1
	}
	var sum float64
	for _, p := range b.Phases {
		sum += p.Weight
	}
	switch b.Layout {
	case LayoutPeriodic:
		pos := float64(i%periodicPeriod) / float64(periodicPeriod)
		var cum float64
		for j := range b.Phases {
			cum += b.Phases[j].Weight / sum
			if pos < cum {
				return j
			}
		}
		return len(b.Phases) - 1
	default: // LayoutSequential
		// Position within the interval's input segment.
		inputs := len(b.InputList())
		segLen := total / inputs
		if segLen < 1 {
			segLen = 1
		}
		local := i - b.InputAt(i, total)*segLen
		if local < 0 {
			local = 0
		}
		if local >= segLen {
			local = segLen - 1
		}
		pos := float64(local) / float64(segLen)
		var cum float64
		for j := range b.Phases {
			cum += b.Phases[j].Weight / sum
			if pos < cum {
				return j
			}
		}
		return len(b.Phases) - 1
	}
}

// BehaviorAt returns the behaviour of interval i (of total intervals),
// with the interval's input transformation applied.
func (b *Benchmark) BehaviorAt(i, total int) *trace.PhaseBehavior {
	b.deriveOnce.Do(func() {
		inputs := b.InputList()
		b.derived = make([][]trace.PhaseBehavior, len(inputs))
		for ii, in := range inputs {
			b.derived[ii] = make([]trace.PhaseBehavior, len(b.Phases))
			for pi := range b.Phases {
				b.derived[ii][pi] = in.apply(b.Phases[pi].Behavior)
			}
		}
	})
	return &b.derived[b.InputAt(i, total)][b.PhaseAt(i, total)]
}

// IntervalSeed returns the deterministic generator seed for interval i.
func (b *Benchmark) IntervalSeed(i int) uint64 {
	return trace.HashString(b.ID()) ^ trace.Hash64(uint64(i)+0x51ed)
}

// Registry is an ordered collection of benchmarks grouped by suite,
// carrying per-suite metadata (SuiteInfo) in display order.
type Registry struct {
	benchmarks []*Benchmark
	byID       map[string]*Benchmark
	suites     []SuiteInfo   // display order
	suiteIdx   map[Suite]int // suite name -> index into suites
}

// NewRegistry builds a registry, validating every benchmark and rejecting
// duplicate IDs. Suite metadata is derived: canonical suite names get the
// standard metadata in the paper's presentation order; any other suites
// follow, sorted by name, with empty descriptions.
func NewRegistry(benchmarks []*Benchmark) (*Registry, error) {
	present := map[Suite]bool{}
	for _, b := range benchmarks {
		present[b.Suite] = true
	}
	var infos []SuiteInfo
	for _, si := range standardSuiteInfos {
		if present[si.Name] {
			infos = append(infos, si)
			delete(present, si.Name)
		}
	}
	var rest []Suite
	for s := range present {
		rest = append(rest, s)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, s := range rest {
		infos = append(infos, SuiteInfo{Name: s})
	}
	return NewRegistryWithSuites(infos, benchmarks)
}

// NewRegistryWithSuites builds a registry with explicit suite metadata in
// display order. Every benchmark must belong to a declared suite, every
// declared suite must have at least one benchmark, and benchmark IDs must
// be unique.
//
// The registry's benchmark order is normalized to suite display order
// (stable within each suite). Registration order and display order
// therefore always agree — the invariant that makes a registry exported
// as a model file and reloaded reproduce the exact same dataset row
// order, and with it byte-identical pipeline exports.
func NewRegistryWithSuites(suites []SuiteInfo, benchmarks []*Benchmark) (*Registry, error) {
	r := &Registry{
		byID:     make(map[string]*Benchmark, len(benchmarks)),
		suiteIdx: make(map[Suite]int, len(suites)),
	}
	for _, si := range suites {
		if si.Name == "" {
			return nil, fmt.Errorf("bench: suite with empty name")
		}
		if _, dup := r.suiteIdx[si.Name]; dup {
			return nil, fmt.Errorf("bench: duplicate suite %q", si.Name)
		}
		r.suiteIdx[si.Name] = len(r.suites)
		r.suites = append(r.suites, si)
	}
	used := make(map[Suite]bool, len(suites))
	for _, b := range benchmarks {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if _, ok := r.suiteIdx[b.Suite]; !ok {
			return nil, fmt.Errorf("bench: benchmark %s belongs to undeclared suite %q", b.ID(), b.Suite)
		}
		if _, dup := r.byID[b.ID()]; dup {
			return nil, fmt.Errorf("bench: duplicate benchmark %s", b.ID())
		}
		used[b.Suite] = true
		r.byID[b.ID()] = b
		r.benchmarks = append(r.benchmarks, b)
	}
	for _, si := range r.suites {
		if !used[si.Name] {
			return nil, fmt.Errorf("bench: suite %q has no benchmarks", si.Name)
		}
	}
	sort.SliceStable(r.benchmarks, func(i, j int) bool {
		return r.suiteIdx[r.benchmarks[i].Suite] < r.suiteIdx[r.benchmarks[j].Suite]
	})
	return r, nil
}

// SuiteInfos returns the registry's suite metadata in display order.
func (r *Registry) SuiteInfos() []SuiteInfo {
	out := make([]SuiteInfo, len(r.suites))
	copy(out, r.suites)
	return out
}

// SuiteMeta returns one suite's metadata.
func (r *Registry) SuiteMeta(s Suite) (SuiteInfo, bool) {
	i, ok := r.suiteIdx[s]
	if !ok {
		return SuiteInfo{}, false
	}
	return r.suites[i], true
}

// IsDomainSpecific answers from the registry's suite metadata whether
// the suite targets a specific application domain. Unknown suites report
// false.
func (r *Registry) IsDomainSpecific(s Suite) bool {
	si, ok := r.SuiteMeta(s)
	return ok && si.DomainSpecific
}

// All returns all benchmarks in registration order.
func (r *Registry) All() []*Benchmark {
	out := make([]*Benchmark, len(r.benchmarks))
	copy(out, r.benchmarks)
	return out
}

// Len returns the number of benchmarks.
func (r *Registry) Len() int { return len(r.benchmarks) }

// BySuite returns the benchmarks of one suite, in registration order.
func (r *Registry) BySuite(s Suite) []*Benchmark {
	var out []*Benchmark
	for _, b := range r.benchmarks {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// Lookup finds a benchmark by "suite/name" ID or by bare name (the latter
// only if unambiguous).
func (r *Registry) Lookup(name string) (*Benchmark, error) {
	if b, ok := r.byID[name]; ok {
		return b, nil
	}
	var found *Benchmark
	for _, b := range r.benchmarks {
		if b.Name == name {
			if found != nil {
				return nil, fmt.Errorf("bench: benchmark name %q is ambiguous (%s, %s)", name, found.ID(), b.ID())
			}
			found = b
		}
	}
	if found == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return found, nil
}

// FilterSuites narrows the registry to the comma-separated suite names
// in spec — the roster contract shared by the phasechar CLI (-suites)
// and the characterization service's job spec, so a job submitted over
// HTTP selects exactly the roster the equivalent one-shot run would.
// Names match case-insensitively; an unknown or empty name is an error,
// never a silently smaller run.
func (r *Registry) FilterSuites(spec string) (*Registry, error) {
	want := map[Suite]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("bench: suite list %q has an empty entry", spec)
		}
		found := false
		for _, si := range r.suites {
			if strings.EqualFold(string(si.Name), name) {
				want[si.Name] = true
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, si := range r.suites {
				known = append(known, string(si.Name))
			}
			return nil, fmt.Errorf("bench: unknown suite %q (suites: %s)", name, strings.Join(known, ", "))
		}
	}
	var suites []SuiteInfo
	for _, si := range r.suites {
		if want[si.Name] {
			suites = append(suites, si)
		}
	}
	var keep []*Benchmark
	for _, b := range r.benchmarks {
		if want[b.Suite] {
			keep = append(keep, b)
		}
	}
	return NewRegistryWithSuites(suites, keep)
}

// SuiteNames returns the registry's suites in display order: canonical
// suites in the paper's presentation order, loaded suites in declaration
// order after them.
func (r *Registry) SuiteNames() []Suite {
	out := make([]Suite, len(r.suites))
	for i, si := range r.suites {
		out[i] = si.Name
	}
	return out
}
