package bench

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestStandardRegistryBuilds(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 77 {
		t.Fatalf("registry has %d benchmarks, want 77 (the paper's count)", reg.Len())
	}
}

func TestSuiteSizes(t *testing.T) {
	reg := MustStandardRegistry()
	want := map[Suite]int{
		SuiteBioPerf:     10,
		SuiteBMW:         5,
		SuiteMediaBench:  7,
		SuiteSPECint2000: 12,
		SuiteSPECfp2000:  14,
		SuiteSPECint2006: 12,
		SuiteSPECfp2006:  17,
	}
	for s, n := range want {
		if got := len(reg.BySuite(s)); got != n {
			t.Errorf("suite %s has %d benchmarks, want %d", s, got, n)
		}
	}
}

func TestAllBenchmarksValid(t *testing.T) {
	for _, b := range MustStandardRegistry().All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.ID(), err)
		}
	}
}

func TestPhaseNamesUnique(t *testing.T) {
	seen := map[string]string{}
	for _, b := range MustStandardRegistry().All() {
		for _, p := range b.Phases {
			// Shared phases (deliberate cross-suite twins) reuse a
			// PhaseBehavior but carry their own name; duplicate names
			// within ONE benchmark would break diagnostics.
			key := b.ID() + "|" + p.Behavior.Name
			if prev, ok := seen[key]; ok {
				t.Errorf("duplicate phase %q in %s (also %s)", p.Behavior.Name, b.ID(), prev)
			}
			seen[key] = b.ID()
		}
	}
}

func TestIsDomainSpecific(t *testing.T) {
	if !SuiteBioPerf.IsDomainSpecific() || !SuiteBMW.IsDomainSpecific() || !SuiteMediaBench.IsDomainSpecific() {
		t.Fatal("domain-specific suites misclassified")
	}
	for _, s := range []Suite{SuiteSPECint2000, SuiteSPECfp2000, SuiteSPECint2006, SuiteSPECfp2006} {
		if s.IsDomainSpecific() {
			t.Fatalf("%s misclassified as domain-specific", s)
		}
	}
}

func TestSuitesOrder(t *testing.T) {
	if len(Suites()) != 7 {
		t.Fatalf("Suites() has %d entries", len(Suites()))
	}
}

func TestScaledIntervals(t *testing.T) {
	b := &Benchmark{Name: "x", Suite: SuiteBMW, PaperIntervals: 4}
	if got := b.ScaledIntervals(160); got != 48 {
		t.Fatalf("tiny benchmark scaled to %d, want floor 48", got)
	}
	big := &Benchmark{Name: "y", Suite: SuiteBMW, PaperIntervals: 74590}
	if got := big.ScaledIntervals(160); got != 156 {
		t.Fatalf("huge benchmark scaled to %d, want 156", got)
	}
	if got := big.ScaledIntervals(120); got != 120 {
		t.Fatalf("huge benchmark with cap 120 scaled to %d", got)
	}
	mid := &Benchmark{Name: "z", Suite: SuiteBMW, PaperIntervals: 74590}
	// Monotone in paper intervals.
	if b.ScaledIntervals(160) > mid.ScaledIntervals(160) {
		t.Fatal("scaling not monotone")
	}
	// Cap wins over the floor, with an absolute minimum of 4.
	if got := big.ScaledIntervals(1); got != 4 {
		t.Fatalf("cap below 4 not clamped: %d", got)
	}
}

func TestPhaseAtSequential(t *testing.T) {
	b := &Benchmark{
		Name: "seq", Suite: SuiteBMW, PaperIntervals: 100,
		Phases: []Phase{
			{Weight: 0.25, Behavior: trace.PhaseBehavior{Name: "a"}},
			{Weight: 0.75, Behavior: trace.PhaseBehavior{Name: "b"}},
		},
	}
	const total = 100
	for i := 0; i < total; i++ {
		want := 0
		if i >= 25 {
			want = 1
		}
		if got := b.PhaseAt(i, total); got != want {
			t.Fatalf("PhaseAt(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPhaseAtPeriodic(t *testing.T) {
	b := &Benchmark{
		Name: "per", Suite: SuiteBMW, PaperIntervals: 100, Layout: LayoutPeriodic,
		Phases: []Phase{
			{Weight: 0.5, Behavior: trace.PhaseBehavior{Name: "a"}},
			{Weight: 0.5, Behavior: trace.PhaseBehavior{Name: "b"}},
		},
	}
	const total = 64
	// The phase pattern must repeat with the periodic period and include
	// both phases within one period.
	seenA, seenB := false, false
	for i := 0; i < 16; i++ {
		switch b.PhaseAt(i, total) {
		case 0:
			seenA = true
		case 1:
			seenB = true
		}
		if got, again := b.PhaseAt(i, total), b.PhaseAt(i+16, total); got != again {
			t.Fatalf("periodic layout not periodic at %d: %d vs %d", i, got, again)
		}
	}
	if !seenA || !seenB {
		t.Fatal("periodic layout did not alternate phases within a period")
	}
}

func TestPhaseAtEdgeCases(t *testing.T) {
	b := &Benchmark{
		Name: "edge", Suite: SuiteBMW, PaperIntervals: 10,
		Phases: []Phase{{Weight: 1, Behavior: trace.PhaseBehavior{Name: "only"}}},
	}
	if b.PhaseAt(-1, 10) != 0 || b.PhaseAt(99, 10) != 0 || b.PhaseAt(0, 0) != 0 {
		t.Fatal("edge-case interval indices mishandled")
	}
}

func TestIntervalSeedsDiffer(t *testing.T) {
	reg := MustStandardRegistry()
	a, _ := reg.Lookup("BioPerf/grappa")
	b, _ := reg.Lookup("BioPerf/hmmer")
	if a.IntervalSeed(0) == a.IntervalSeed(1) {
		t.Fatal("interval seeds within a benchmark collide")
	}
	if a.IntervalSeed(0) == b.IntervalSeed(0) {
		t.Fatal("interval seeds across benchmarks collide")
	}
	if a.IntervalSeed(3) != a.IntervalSeed(3) {
		t.Fatal("interval seeds not deterministic")
	}
}

func TestLookup(t *testing.T) {
	reg := MustStandardRegistry()
	if _, err := reg.Lookup("BioPerf/grappa"); err != nil {
		t.Fatalf("ID lookup failed: %v", err)
	}
	if _, err := reg.Lookup("grappa"); err != nil {
		t.Fatalf("bare-name lookup failed: %v", err)
	}
	// bzip2, gcc, mcf, hmmer exist in two suites: bare lookup must fail.
	for _, name := range []string{"bzip2", "gcc", "mcf", "hmmer"} {
		if _, err := reg.Lookup(name); err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Fatalf("ambiguous name %q lookup: %v", name, err)
		}
	}
	if _, err := reg.Lookup("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	b := func() *Benchmark {
		return &Benchmark{
			Name: "dup", Suite: SuiteBMW, PaperIntervals: 10,
			Phases: []Phase{{Weight: 1, Behavior: validPhase("p")}},
		}
	}
	if _, err := NewRegistry([]*Benchmark{b(), b()}); err == nil {
		t.Fatal("duplicate benchmark accepted")
	}
}

func TestRegistryValidates(t *testing.T) {
	bad := &Benchmark{Name: "", Suite: SuiteBMW, PaperIntervals: 10}
	if _, err := NewRegistry([]*Benchmark{bad}); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
	badW := &Benchmark{
		Name: "w", Suite: SuiteBMW, PaperIntervals: 10,
		Phases: []Phase{{Weight: -1, Behavior: validPhase("p")}},
	}
	if _, err := NewRegistry([]*Benchmark{badW}); err == nil {
		t.Fatal("negative phase weight accepted")
	}
}

func validPhase(name string) trace.PhaseBehavior {
	return trace.PhaseBehavior{
		Name:     name,
		Mix:      trace.BaseMix(),
		CodeSize: 100,
		Branch:   trace.BranchSpec{TakenBias: 0.5},
		Reg:      trace.RegDepSpec{MeanDepDist: 2, AvgSrcRegs: 1, WriteFraction: 0.5},
		Loads:    []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 4096}},
		Stores:   []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 4096}},
	}
}

func TestBehaviorAtMatchesPhaseAt(t *testing.T) {
	reg := MustStandardRegistry()
	b, _ := reg.Lookup("SPECint2006/astar")
	total := b.ScaledIntervals(40)
	for i := 0; i < total; i++ {
		want := b.Phases[b.PhaseAt(i, total)].Behavior.Name
		if got := b.BehaviorAt(i, total).Name; got != want {
			t.Fatalf("BehaviorAt(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestCrossSuiteTwinsIdentical(t *testing.T) {
	// The deliberate cross-suite twin phases must stay parameter-equal;
	// the headline uniqueness results depend on them (see DESIGN.md).
	reg := MustStandardRegistry()
	phase := func(benchID, phaseName string) *trace.PhaseBehavior {
		b, err := reg.Lookup(benchID)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.Phases {
			if b.Phases[i].Behavior.Name == phaseName {
				return &b.Phases[i].Behavior
			}
		}
		t.Fatalf("%s has no phase %q", benchID, phaseName)
		return nil
	}
	equalExceptName := func(a, b *trace.PhaseBehavior) bool {
		ca, cb := *a, *b
		ca.Name, cb.Name = "", ""
		// Compare scalar fields and pattern slices.
		if ca.Mix != cb.Mix || ca.CodeSize != cb.CodeSize || ca.Branch != cb.Branch ||
			ca.Reg != cb.Reg || ca.Jitter != cb.Jitter {
			return false
		}
		if len(ca.Loads) != len(cb.Loads) || len(ca.Stores) != len(cb.Stores) {
			return false
		}
		for i := range ca.Loads {
			if ca.Loads[i] != cb.Loads[i] {
				return false
			}
		}
		for i := range ca.Stores {
			if ca.Stores[i] != cb.Stores[i] {
				return false
			}
		}
		return true
	}
	twins := [][2][2]string{
		{{"BMW/speak", "speak/acoustic"}, {"SPECfp2006/sphinx3", "sphinx3/acoustic"}},
		{{"MediaBenchII/h264", "h264/motion"}, {"SPECint2006/h264ref", "h264ref/motion"}},
		{{"BioPerf/glimmer", "glimmer/icm"}, {"SPECint2006/hmmer", "hmmer_2006/viterbi"}},
		{{"BioPerf/fasta", "fasta/smithwaterman"}, {"SPECint2006/astar", "astar/regionway"}},
		{{"SPECint2000/gcc", "gcc_2000/parse"}, {"SPECint2006/gcc", "gcc_2006/parse"}},
		{{"SPECint2000/perlbmk", "perlbmk/interp"}, {"SPECint2006/perlbench", "perlbench/interp"}},
		{{"SPECint2000/eon", "eon/render"}, {"SPECfp2000/mesa", "mesa/rasterize"}},
	}
	for _, tw := range twins {
		a := phase(tw[0][0], tw[0][1])
		b := phase(tw[1][0], tw[1][1])
		if !equalExceptName(a, b) {
			t.Errorf("twin phases diverged: %s vs %s", tw[0][1], tw[1][1])
		}
	}
}

func TestSuiteNamesCanonicalOrder(t *testing.T) {
	reg := MustStandardRegistry()
	names := reg.SuiteNames()
	if len(names) != 7 {
		t.Fatalf("SuiteNames() = %v", names)
	}
	if names[0] != SuiteBioPerf {
		t.Fatalf("first suite = %s, want BioPerf", names[0])
	}
}
