package bench

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// TestNoPhaseTrapsThePC generates an interval for every phase of every
// benchmark model and checks the realized instruction mix stays near its
// specification. A large deviation historically meant the program counter
// was trapped in a degenerate static cycle (all-jump loops, self-calling
// functions), executing a handful of instructions forever.
func TestNoPhaseTrapsThePC(t *testing.T) {
	const n = 20000
	for _, bm := range MustStandardRegistry().All() {
		for pi := range bm.Phases {
			beh := bm.Phases[pi].Behavior
			beh.Jitter = 0
			mix, err := beh.Mix.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []uint64{1234, 987654321} {
				var counts [isa.NumOpClasses]int
				err := trace.GenerateInterval(&beh, seed, n, func(ins *isa.Instruction) {
					counts[ins.Op]++
				})
				if err != nil {
					t.Fatalf("%s: %v", beh.Name, err)
				}
				for c := 0; c < isa.NumOpClasses; c++ {
					got := float64(counts[c]) / n
					if d := math.Abs(got - mix[c]); d > 0.3 {
						t.Errorf("%s seed %d: class %v realized %.3f vs spec %.3f (PC trap?)",
							beh.Name, seed, isa.OpClass(c), got, mix[c])
					}
				}
			}
		}
	}
}

// TestEveryPhaseVisitsEnoughCode guards the same failure mode from the
// footprint side: a trapped PC touches almost no static instructions.
func TestEveryPhaseVisitsEnoughCode(t *testing.T) {
	const n = 20000
	for _, bm := range MustStandardRegistry().All() {
		beh := bm.Phases[0].Behavior
		beh.Jitter = 0
		pcs := map[uint64]bool{}
		if err := trace.GenerateInterval(&beh, 777, n, func(ins *isa.Instruction) {
			pcs[ins.PC] = true
		}); err != nil {
			t.Fatalf("%s: %v", beh.Name, err)
		}
		if len(pcs) < 20 {
			t.Errorf("%s: only %d static instructions executed in %d dynamic (PC trap?)",
				beh.Name, len(pcs), n)
		}
	}
}
