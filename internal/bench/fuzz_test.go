package bench

// Native fuzz target for the workload-model decoder. The contract:
// arbitrary bytes must produce an error or a valid model, never a panic
// — model files come from user disks and inline service payloads cross
// the HTTP trust boundary before they reach this decoder. Accepted
// payloads must build a registry and survive an export → decode round
// trip (the round-trip gate depends on that).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds returns the seed corpus: the full standard-roster export,
// a minimal hand-written model, and structurally hostile variants.
func fuzzSeeds(t interface{ Fatal(args ...any) }) map[string][][]byte {
	std, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	full, err := std.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	tiny := []byte(`{"version":1,"suites":[{"name":"S","benchmarks":[{"name":"b","paper_intervals":4,"phases":[{"name":"p","weight":1,"mix":{"load":0.4,"store":0.1,"int_add":0.5},"code_size":100,"branch":{"taken_bias":0.5},"reg":{"mean_dep_dist":2,"avg_src_regs":1,"write_fraction":0.5},"loads":[{"kind":"random","weight":1,"region":4096}],"stores":[{"kind":"stride","weight":1,"region":4096,"stride":8}]}]}]}]}`)
	return map[string][][]byte{
		"FuzzDecodeModels": {
			full,
			full[:len(full)/2],
			tiny,
			[]byte(`{"version":2,"suites":[]}`),
			[]byte(`{"version":1,"suites":[{"name":"","benchmarks":[]}]}`),
			[]byte(`{"version":1,"suites":[{"name":"S/x","benchmarks":[]}]}`),
			[]byte(`[]`),
			[]byte(`{`),
			{},
		},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing the codec.
func TestWriteFuzzCorpus(t *testing.T) {
	writeFuzzCorpus(t, fuzzSeeds(t))
}

// writeFuzzCorpus is shared by every package's corpus test (duplicated
// locally; test helpers cannot be imported across packages).
func writeFuzzCorpus(t *testing.T, seeds map[string][][]byte) {
	t.Helper()
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range seeds {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzDecodeModels(f *testing.F) {
	for _, s := range fuzzSeeds(f)["FuzzDecodeModels"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mf, err := DecodeModels(data)
		if err != nil {
			return
		}
		reg, err := mf.Registry()
		if err != nil {
			t.Fatalf("accepted model does not build a registry: %v", err)
		}
		out, err := reg.ExportModels()
		if err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if _, err := DecodeModels(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
