package bench

import (
	"fmt"

	"repro/internal/trace"
)

// Input models one reference input of a benchmark. The paper samples
// intervals "across all of its inputs": different inputs run the same
// code over differently sized data with slightly shifted phase balance
// (e.g. gcc compiling a small vs a large translation unit). An input
// transforms the benchmark's phase behaviours without touching their
// code-shaped parameters, so all inputs share the synthetic static code.
type Input struct {
	// Name identifies the input, e.g. "ref-1".
	Name string
	// WorkingSetScale multiplies every access-pattern region (1 = the
	// model's base working set). Must be positive.
	WorkingSetScale float64
	// BranchShift is added to every phase's taken bias (clamped to
	// [0.02, 0.98]) — different data, slightly different control flow.
	BranchShift float64
}

// DefaultInput is the implied input of benchmarks that declare none.
var DefaultInput = Input{Name: "ref", WorkingSetScale: 1}

// Validate checks the input's parameters.
func (in Input) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("bench: input with empty name")
	}
	if in.WorkingSetScale <= 0 {
		return fmt.Errorf("bench: input %s: non-positive working-set scale", in.Name)
	}
	if in.BranchShift < -0.5 || in.BranchShift > 0.5 {
		return fmt.Errorf("bench: input %s: branch shift %v out of [-0.5,0.5]", in.Name, in.BranchShift)
	}
	return nil
}

// apply transforms a phase behaviour for this input.
func (in Input) apply(b trace.PhaseBehavior) trace.PhaseBehavior {
	out := b
	if in.WorkingSetScale != 1 {
		out.Loads = scalePatterns(b.Loads, in.WorkingSetScale)
		out.Stores = scalePatterns(b.Stores, in.WorkingSetScale)
	}
	if in.BranchShift != 0 {
		bias := b.Branch.TakenBias + in.BranchShift
		if bias < 0.02 {
			bias = 0.02
		}
		if bias > 0.98 {
			bias = 0.98
		}
		out.Branch.TakenBias = bias
	}
	return out
}

func scalePatterns(ps []trace.AccessPattern, scale float64) []trace.AccessPattern {
	out := make([]trace.AccessPattern, len(ps))
	copy(out, ps)
	for i := range out {
		r := float64(out[i].Region) * scale
		if r < 64 {
			r = 64
		}
		out[i].Region = uint64(r)
	}
	return out
}

// Inputs returns the benchmark's inputs (the single DefaultInput when none
// are declared).
func (b *Benchmark) InputList() []Input {
	if len(b.Inputs) == 0 {
		return []Input{DefaultInput}
	}
	return b.Inputs
}

// InputAt returns which input interval i (of total) executes: the
// execution is partitioned into one contiguous run per input, mirroring
// the paper's concatenation of per-input interval streams.
func (b *Benchmark) InputAt(i, total int) int {
	inputs := len(b.InputList())
	if inputs == 1 || total <= 0 {
		return 0
	}
	if i < 0 {
		return 0
	}
	if i >= total {
		i = total - 1
	}
	idx := i * inputs / total
	if idx >= inputs {
		idx = inputs - 1
	}
	return idx
}
