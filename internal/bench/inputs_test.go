package bench

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestInputValidate(t *testing.T) {
	if err := (Input{Name: "x", WorkingSetScale: 1}).Validate(); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if err := (Input{Name: "", WorkingSetScale: 1}).Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := (Input{Name: "x", WorkingSetScale: 0}).Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := (Input{Name: "x", WorkingSetScale: 1, BranchShift: 0.9}).Validate(); err == nil {
		t.Fatal("huge branch shift accepted")
	}
}

func TestInputListDefaults(t *testing.T) {
	b := &Benchmark{Name: "x", Suite: SuiteBMW, PaperIntervals: 10,
		Phases: []Phase{{Weight: 1, Behavior: validPhase("p")}}}
	inputs := b.InputList()
	if len(inputs) != 1 || inputs[0].Name != "ref" {
		t.Fatalf("default inputs = %+v", inputs)
	}
}

func TestInputAtPartitions(t *testing.T) {
	b := &Benchmark{Name: "x", Suite: SuiteBMW, PaperIntervals: 10,
		Phases: []Phase{{Weight: 1, Behavior: validPhase("p")}},
		Inputs: []Input{
			{Name: "a", WorkingSetScale: 1},
			{Name: "b", WorkingSetScale: 2},
			{Name: "c", WorkingSetScale: 3},
		}}
	const total = 30
	counts := map[int]int{}
	prev := 0
	for i := 0; i < total; i++ {
		in := b.InputAt(i, total)
		if in < prev {
			t.Fatalf("input index went backwards at %d", i)
		}
		prev = in
		counts[in]++
	}
	for in := 0; in < 3; in++ {
		if counts[in] != 10 {
			t.Fatalf("input %d got %d intervals, want 10", in, counts[in])
		}
	}
	if b.InputAt(-1, total) != 0 || b.InputAt(999, total) != 2 {
		t.Fatal("edge indices mishandled")
	}
}

func TestBehaviorAtAppliesInputScale(t *testing.T) {
	reg := MustStandardRegistry()
	b, err := reg.Lookup("SPECint2000/gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Inputs) != 3 {
		t.Fatalf("gcc has %d inputs", len(b.Inputs))
	}
	const total = 90                // 3 inputs x 30 intervals
	first := b.BehaviorAt(0, total) // input "166" (scale 0.5), parse phase
	last := b.BehaviorAt(60, total) // input "expr" (scale 1.8), parse phase
	if first.Loads[0].Region >= last.Loads[0].Region {
		t.Fatalf("working set did not grow across inputs: %d vs %d",
			first.Loads[0].Region, last.Loads[0].Region)
	}
	// Inputs must not alter the code-shaped parameters.
	if first.CodeSize != last.CodeSize || first.Mix != last.Mix {
		t.Fatal("input transformation changed code-shaped parameters")
	}
}

func TestPhaseScheduleRepeatsPerInput(t *testing.T) {
	reg := MustStandardRegistry()
	b, err := reg.Lookup("SPECint2000/gcc")
	if err != nil {
		t.Fatal(err)
	}
	const total = 90 // 3 inputs x 30 intervals
	// Each input segment must start over at phase 0 (gcc_2000/parse).
	for _, start := range []int{0, 30, 60} {
		if got := b.PhaseAt(start, total); got != 0 {
			t.Fatalf("interval %d (input start) runs phase %d, want 0", start, got)
		}
	}
	// And each segment must reach the last phase before its end.
	for _, end := range []int{29, 59, 89} {
		if got := b.PhaseAt(end, total); got != len(b.Phases)-1 {
			t.Fatalf("interval %d (input end) runs phase %d, want %d", end, got, len(b.Phases)-1)
		}
	}
}

func TestInputsShareStaticCode(t *testing.T) {
	// Different inputs of one benchmark run the same binary: the
	// instruction-side behaviour (op class at each PC) must agree.
	reg := MustStandardRegistry()
	b, err := reg.Lookup("SPECint2000/gcc")
	if err != nil {
		t.Fatal(err)
	}
	const total = 90
	a := b.BehaviorAt(0, total)  // parse phase, input 166
	c := b.BehaviorAt(31, total) // parse phase, input 200
	if a.Name != c.Name {
		t.Skipf("intervals run different phases (%s vs %s)", a.Name, c.Name)
	}
	opsA := map[uint64]uint8{}
	collect := func(beh *trace.PhaseBehavior, check bool) {
		g, err := trace.NewGenerator(beh, 1)
		if err != nil {
			t.Fatal(err)
		}
		var ins isa.Instruction
		for i := 0; i < 20000; i++ {
			g.Next(&ins)
			if !check {
				opsA[ins.PC] = uint8(ins.Op)
				continue
			}
			if op, ok := opsA[ins.PC]; ok && op != uint8(ins.Op) {
				t.Fatalf("PC %#x decodes differently across inputs", ins.PC)
			}
		}
	}
	collect(a, false)
	collect(c, true)
}

func TestDuplicateInputNamesRejected(t *testing.T) {
	b := &Benchmark{Name: "x", Suite: SuiteBMW, PaperIntervals: 10,
		Phases: []Phase{{Weight: 1, Behavior: validPhase("p")}},
		Inputs: []Input{
			{Name: "a", WorkingSetScale: 1},
			{Name: "a", WorkingSetScale: 2},
		}}
	if err := b.Validate(); err == nil {
		t.Fatal("duplicate input names accepted")
	}
}
