package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
)

// This file is the declarative workload-model codec: suites as data.
// A model file is versioned JSON describing suites, their benchmarks and
// every phase-behaviour parameter the synthetic generator consumes. The
// codec is bit-exact — encoding/json round-trips float64 values through
// their shortest exact decimal representation and integers literally, so
// a decoded model reproduces the BehaviorHash of the model it was
// exported from, and with it every interval-vector and stage-artifact
// cache key. The golden invariant (pinned by tests and scripts/verify.sh):
// StandardRegistry -> ExportModels -> DecodeModels -> run is byte-identical
// to running the built-in registry directly.

const (
	// ModelSchemaVersion is the model-file format version. Decoders
	// reject any other version; additive format changes bump it.
	ModelSchemaVersion = 1

	// MaxModelBytes caps one model payload (a file on disk or an inline
	// blob in a service job spec). Workload models are a few hundred
	// bytes per phase; anything near the cap is garbage or abuse.
	MaxModelBytes = 1 << 20
)

// ModelFile is the root of one declarative workload-model payload.
type ModelFile struct {
	// Version must equal ModelSchemaVersion.
	Version int `json:"version"`
	// Suites declares the suites in display order.
	Suites []SuiteModel `json:"suites"`
}

// SuiteModel declares one suite and its benchmarks.
type SuiteModel struct {
	Name           string           `json:"name"`
	Description    string           `json:"description,omitempty"`
	DomainSpecific bool             `json:"domain_specific,omitempty"`
	Benchmarks     []BenchmarkModel `json:"benchmarks"`
}

// BenchmarkModel is the declarative form of Benchmark.
type BenchmarkModel struct {
	Name           string `json:"name"`
	PaperIntervals int    `json:"paper_intervals"`
	// Layout is "sequential" (the default, omitted on export) or
	// "periodic".
	Layout string       `json:"layout,omitempty"`
	Inputs []InputModel `json:"inputs,omitempty"`
	Phases []PhaseModel `json:"phases"`
}

// InputModel is the declarative form of Input.
type InputModel struct {
	Name            string  `json:"name"`
	WorkingSetScale float64 `json:"working_set_scale"`
	BranchShift     float64 `json:"branch_shift,omitempty"`
}

// PhaseModel is the declarative form of Phase plus its
// trace.PhaseBehavior.
type PhaseModel struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Mix maps operation-class names (isa.OpClass.String: "load",
	// "store", "branch", "int_add", ...) to relative weights; classes
	// absent from the map carry zero weight.
	Mix      map[string]float64 `json:"mix"`
	CodeSize int                `json:"code_size"`
	Branch   BranchModel        `json:"branch"`
	Reg      RegModel           `json:"reg"`
	Loads    []PatternModel     `json:"loads"`
	Stores   []PatternModel     `json:"stores"`
	Jitter   float64            `json:"jitter,omitempty"`
}

// BranchModel is the declarative form of trace.BranchSpec.
type BranchModel struct {
	TakenBias     float64 `json:"taken_bias"`
	PatternPeriod int     `json:"pattern_period,omitempty"`
	NoiseLevel    float64 `json:"noise_level,omitempty"`
}

// RegModel is the declarative form of trace.RegDepSpec.
type RegModel struct {
	MeanDepDist   float64 `json:"mean_dep_dist"`
	AvgSrcRegs    float64 `json:"avg_src_regs"`
	WriteFraction float64 `json:"write_fraction"`
}

// PatternModel is the declarative form of trace.AccessPattern. Kind is
// "stride", "random" or "chase" (trace.PatternKind.String).
type PatternModel struct {
	Kind   string  `json:"kind"`
	Weight float64 `json:"weight"`
	Region uint64  `json:"region"`
	Stride uint64  `json:"stride,omitempty"`
}

// layout name <-> Layout.
const (
	layoutSequentialName = "sequential"
	layoutPeriodicName   = "periodic"
)

// DecodeModels parses one model payload, rejecting oversized input,
// unknown fields, unknown versions, and any structurally or semantically
// invalid model (bad weights, unknown mix classes or pattern kinds,
// duplicate suite or benchmark names). A nil error means the file builds
// into valid benchmarks: every suite and benchmark passed the same
// validation NewRegistry applies.
func DecodeModels(data []byte) (*ModelFile, error) {
	if len(data) > MaxModelBytes {
		return nil, fmt.Errorf("bench: model payload is %d bytes (cap %d)", len(data), MaxModelBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var mf ModelFile
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("bench: model payload: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bench: model payload has trailing data")
	}
	if mf.Version != ModelSchemaVersion {
		return nil, fmt.Errorf("bench: model version %d (this build reads version %d)", mf.Version, ModelSchemaVersion)
	}
	if len(mf.Suites) == 0 {
		return nil, fmt.Errorf("bench: model declares no suites")
	}
	// Building the registry runs every structural and semantic check —
	// and proves the decoded models are usable, not just parseable.
	if _, err := mf.Registry(); err != nil {
		return nil, err
	}
	return &mf, nil
}

// Registry materializes the model file into a registry of exactly its
// suites, in declaration order.
func (mf *ModelFile) Registry() (*Registry, error) {
	var infos []SuiteInfo
	var benches []*Benchmark
	for si := range mf.Suites {
		sm := &mf.Suites[si]
		if err := validateModelName("suite", sm.Name); err != nil {
			return nil, err
		}
		infos = append(infos, SuiteInfo{
			Name:           Suite(sm.Name),
			Description:    sm.Description,
			DomainSpecific: sm.DomainSpecific,
		})
		if len(sm.Benchmarks) == 0 {
			return nil, fmt.Errorf("bench: suite %q declares no benchmarks", sm.Name)
		}
		for bi := range sm.Benchmarks {
			b, err := sm.Benchmarks[bi].benchmark(Suite(sm.Name))
			if err != nil {
				return nil, err
			}
			benches = append(benches, b)
		}
	}
	return NewRegistryWithSuites(infos, benches)
}

// benchmark converts one declarative benchmark into the executable form.
func (bm *BenchmarkModel) benchmark(suite Suite) (*Benchmark, error) {
	if err := validateModelName("benchmark", bm.Name); err != nil {
		return nil, fmt.Errorf("suite %s: %w", suite, err)
	}
	id := string(suite) + "/" + bm.Name
	b := &Benchmark{Name: bm.Name, Suite: suite, PaperIntervals: bm.PaperIntervals}
	switch bm.Layout {
	case "", layoutSequentialName:
		b.Layout = LayoutSequential
	case layoutPeriodicName:
		b.Layout = LayoutPeriodic
	default:
		return nil, fmt.Errorf("bench: %s: unknown layout %q (want %q or %q)",
			id, bm.Layout, layoutSequentialName, layoutPeriodicName)
	}
	for _, im := range bm.Inputs {
		b.Inputs = append(b.Inputs, Input{
			Name:            im.Name,
			WorkingSetScale: im.WorkingSetScale,
			BranchShift:     im.BranchShift,
		})
	}
	for pi := range bm.Phases {
		pm := &bm.Phases[pi]
		beh, err := pm.behavior(id)
		if err != nil {
			return nil, err
		}
		b.Phases = append(b.Phases, Phase{Weight: pm.Weight, Behavior: beh})
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// behavior converts one declarative phase into a trace.PhaseBehavior.
func (pm *PhaseModel) behavior(benchID string) (trace.PhaseBehavior, error) {
	beh := trace.PhaseBehavior{
		Name:     pm.Name,
		CodeSize: pm.CodeSize,
		Branch: trace.BranchSpec{
			TakenBias:     pm.Branch.TakenBias,
			PatternPeriod: pm.Branch.PatternPeriod,
			NoiseLevel:    pm.Branch.NoiseLevel,
		},
		Reg: trace.RegDepSpec{
			MeanDepDist:   pm.Reg.MeanDepDist,
			AvgSrcRegs:    pm.Reg.AvgSrcRegs,
			WriteFraction: pm.Reg.WriteFraction,
		},
		Jitter: pm.Jitter,
	}
	for name, w := range pm.Mix {
		c, ok := isa.OpClassByName(name)
		if !ok {
			return beh, fmt.Errorf("bench: %s phase %q: unknown mix class %q", benchID, pm.Name, name)
		}
		beh.Mix[c] = w
	}
	var err error
	if beh.Loads, err = decodePatterns(benchID, pm.Name, "loads", pm.Loads); err != nil {
		return beh, err
	}
	if beh.Stores, err = decodePatterns(benchID, pm.Name, "stores", pm.Stores); err != nil {
		return beh, err
	}
	return beh, nil
}

func decodePatterns(benchID, phase, which string, pms []PatternModel) ([]trace.AccessPattern, error) {
	var out []trace.AccessPattern
	for _, pm := range pms {
		var kind trace.PatternKind
		switch pm.Kind {
		case trace.PatternStride.String():
			kind = trace.PatternStride
		case trace.PatternRandom.String():
			kind = trace.PatternRandom
		case trace.PatternChase.String():
			kind = trace.PatternChase
		default:
			return nil, fmt.Errorf("bench: %s phase %q %s: unknown pattern kind %q (want stride, random or chase)",
				benchID, phase, which, pm.Kind)
		}
		out = append(out, trace.AccessPattern{Kind: kind, Weight: pm.Weight, Region: pm.Region, Stride: pm.Stride})
	}
	return out, nil
}

// validateModelName rejects names that would corrupt the "suite/name" ID
// scheme or the comma-separated -suites roster syntax.
func validateModelName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("bench: %s with empty name", kind)
	}
	if strings.ContainsAny(name, "/,") || strings.TrimSpace(name) != name {
		return fmt.Errorf("bench: %s name %q may not contain '/', ',' or surrounding spaces", kind, name)
	}
	return nil
}

// ExportModels renders the registry as a model file: suites in display
// order with their metadata, benchmarks in registration order, every
// behaviour parameter spelled out. The output is deterministic (map keys
// sort) and decodes back to an equivalent registry whose benchmarks hash
// identically — the round-trip invariant.
func (r *Registry) ExportModels() ([]byte, error) {
	mf := ModelFile{Version: ModelSchemaVersion}
	for _, si := range r.suites {
		sm := SuiteModel{
			Name:           string(si.Name),
			Description:    si.Description,
			DomainSpecific: si.DomainSpecific,
		}
		for _, b := range r.BySuite(si.Name) {
			sm.Benchmarks = append(sm.Benchmarks, benchmarkModel(b))
		}
		mf.Suites = append(mf.Suites, sm)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&mf); err != nil {
		return nil, fmt.Errorf("bench: export models: %w", err)
	}
	return buf.Bytes(), nil
}

// benchmarkModel converts one benchmark to its declarative form.
func benchmarkModel(b *Benchmark) BenchmarkModel {
	bm := BenchmarkModel{Name: b.Name, PaperIntervals: b.PaperIntervals}
	if b.Layout == LayoutPeriodic {
		bm.Layout = layoutPeriodicName
	}
	for _, in := range b.Inputs {
		bm.Inputs = append(bm.Inputs, InputModel{
			Name:            in.Name,
			WorkingSetScale: in.WorkingSetScale,
			BranchShift:     in.BranchShift,
		})
	}
	for i := range b.Phases {
		p := &b.Phases[i]
		beh := &p.Behavior
		pm := PhaseModel{
			Name:     beh.Name,
			Weight:   p.Weight,
			Mix:      map[string]float64{},
			CodeSize: beh.CodeSize,
			Branch: BranchModel{
				TakenBias:     beh.Branch.TakenBias,
				PatternPeriod: beh.Branch.PatternPeriod,
				NoiseLevel:    beh.Branch.NoiseLevel,
			},
			Reg: RegModel{
				MeanDepDist:   beh.Reg.MeanDepDist,
				AvgSrcRegs:    beh.Reg.AvgSrcRegs,
				WriteFraction: beh.Reg.WriteFraction,
			},
			Loads:  patternModels(beh.Loads),
			Stores: patternModels(beh.Stores),
			Jitter: beh.Jitter,
		}
		for c, w := range beh.Mix {
			if w != 0 {
				pm.Mix[isa.OpClass(c).String()] = w
			}
		}
		bm.Phases = append(bm.Phases, pm)
	}
	return bm
}

func patternModels(ps []trace.AccessPattern) []PatternModel {
	out := make([]PatternModel, len(ps))
	for i, p := range ps {
		out[i] = PatternModel{Kind: p.Kind.String(), Weight: p.Weight, Region: p.Region, Stride: p.Stride}
	}
	return out
}

// WithModels extends r with mf's suites: a loaded suite whose name
// matches an existing suite replaces that suite's benchmarks and
// metadata in place (so reloading an exported roster reproduces it
// exactly); new suites append after the existing ones in declaration
// order. r is unchanged; the result is a new registry.
func (r *Registry) WithModels(mf *ModelFile) (*Registry, error) {
	loaded, err := mf.Registry()
	if err != nil {
		return nil, err
	}
	replaced := map[Suite]bool{}
	for _, si := range loaded.SuiteInfos() {
		replaced[si.Name] = true
	}
	var suites []SuiteInfo
	for _, si := range r.suites {
		if replaced[si.Name] {
			li, _ := loaded.SuiteMeta(si.Name)
			suites = append(suites, li)
		} else {
			suites = append(suites, si)
		}
	}
	for _, si := range loaded.SuiteInfos() {
		if _, exists := r.suiteIdx[si.Name]; !exists {
			suites = append(suites, si)
		}
	}
	var benches []*Benchmark
	for _, b := range r.benchmarks {
		if !replaced[b.Suite] {
			benches = append(benches, b)
		}
	}
	benches = append(benches, loaded.All()...)
	return NewRegistryWithSuites(suites, benches)
}

// ReadModelFiles reads one model file, or every *.json file of a
// directory (in sorted name order), and returns the concatenation as a
// single ModelFile. Suites must be unique across the files read.
func ReadModelFiles(path string) (*ModelFile, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("bench: models: %w", err)
	}
	files := []string{path}
	if info.IsDir() {
		entries, err := filepath.Glob(filepath.Join(path, "*.json"))
		if err != nil {
			return nil, fmt.Errorf("bench: models: %w", err)
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("bench: models: no *.json model files in %s", path)
		}
		sort.Strings(entries)
		files = entries
	}
	merged := &ModelFile{Version: ModelSchemaVersion}
	seen := map[string]string{} // suite name -> file it came from
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("bench: models: %w", err)
		}
		mf, err := DecodeModels(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for _, sm := range mf.Suites {
			if prev, dup := seen[sm.Name]; dup {
				return nil, fmt.Errorf("bench: models: suite %q declared in both %s and %s", sm.Name, prev, f)
			}
			seen[sm.Name] = f
			merged.Suites = append(merged.Suites, sm)
		}
	}
	return merged, nil
}
