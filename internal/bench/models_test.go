package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModelRoundTripGolden pins the codec's golden invariant: the
// standard registry exported, decoded and re-exported is byte-identical,
// and the reloaded registry matches the built-in one benchmark for
// benchmark — same IDs in the same order, same behaviour hashes at every
// interval, same interval seeds.
func TestModelRoundTripGolden(t *testing.T) {
	std := MustStandardRegistry()
	data, err := std.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	mf, err := DecodeModels(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := mf.Registry()
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-export of reloaded registry is not byte-identical to the original export")
	}

	sb, lb := std.All(), loaded.All()
	if len(lb) != len(sb) {
		t.Fatalf("reloaded registry has %d benchmarks, want %d", len(lb), len(sb))
	}
	const maxIntervals = 16
	for i := range sb {
		a, b := sb[i], lb[i]
		if a.ID() != b.ID() {
			t.Fatalf("benchmark %d: reloaded ID %s, want %s", i, b.ID(), a.ID())
		}
		ta, tb := a.ScaledIntervals(maxIntervals), b.ScaledIntervals(maxIntervals)
		if ta != tb {
			t.Fatalf("%s: scaled intervals %d, want %d", a.ID(), tb, ta)
		}
		for k := 0; k < ta; k++ {
			if a.BehaviorAt(k, ta).BehaviorHash() != b.BehaviorAt(k, ta).BehaviorHash() {
				t.Fatalf("%s: behaviour hash differs at interval %d", a.ID(), k)
			}
			if a.IntervalSeed(k) != b.IntervalSeed(k) {
				t.Fatalf("%s: interval seed differs at interval %d", a.ID(), k)
			}
		}
	}

	for i, si := range std.SuiteInfos() {
		li := loaded.SuiteInfos()[i]
		if si != li {
			t.Fatalf("suite %d metadata changed across round-trip: %+v != %+v", i, li, si)
		}
	}
}

// validModelJSON returns a minimal valid single-suite model payload that
// mutate can deform before encoding.
func validModelJSON(t *testing.T, mutate func(mf *ModelFile)) []byte {
	t.Helper()
	mf := &ModelFile{
		Version: ModelSchemaVersion,
		Suites: []SuiteModel{{
			Name:           "Custom",
			DomainSpecific: true,
			Benchmarks: []BenchmarkModel{{
				Name:           "probe",
				PaperIntervals: 12,
				Phases: []PhaseModel{{
					Name:     "probe/main",
					Weight:   1,
					Mix:      map[string]float64{"load": 0.3, "store": 0.1, "branch": 0.1, "int_add": 0.5},
					CodeSize: 1000,
					Branch:   BranchModel{TakenBias: 0.6, NoiseLevel: 0.1},
					Reg:      RegModel{MeanDepDist: 3, AvgSrcRegs: 1.5, WriteFraction: 0.6},
					Loads:    []PatternModel{{Kind: "random", Weight: 1, Region: 1 << 20}},
					Stores:   []PatternModel{{Kind: "stride", Weight: 1, Region: 1 << 16, Stride: 64}},
				}},
			}},
		}},
	}
	if mutate != nil {
		mutate(mf)
	}
	data, err := json.Marshal(mf)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeModelsValid(t *testing.T) {
	mf, err := DecodeModels(validModelJSON(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := mf.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("Custom/probe"); err != nil {
		t.Fatal(err)
	}
	if !reg.IsDomainSpecific("Custom") {
		t.Fatal("Custom suite lost its domain-specific flag")
	}
}

func TestDecodeModelsRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("phases: everywhere"), "model payload"},
		{"unknown field", []byte(`{"version":1,"bonus":true,"suites":[]}`), "bonus"},
		{"trailing data", append(validModelJSON(t, nil), []byte("{}")...), "trailing"},
		{"wrong version", validModelJSON(t, func(mf *ModelFile) { mf.Version = 99 }), "version 99"},
		{"no suites", []byte(`{"version":1,"suites":[]}`), "no suites"},
		{"oversized", append(validModelJSON(t, nil), bytes.Repeat([]byte(" "), MaxModelBytes)...), "cap"},
		{"empty suite name", validModelJSON(t, func(mf *ModelFile) { mf.Suites[0].Name = "" }), "empty name"},
		{"suite name with comma", validModelJSON(t, func(mf *ModelFile) { mf.Suites[0].Name = "a,b" }), "may not contain"},
		{"bench name with slash", validModelJSON(t, func(mf *ModelFile) { mf.Suites[0].Benchmarks[0].Name = "a/b" }), "may not contain"},
		{"duplicate suites", validModelJSON(t, func(mf *ModelFile) { mf.Suites = append(mf.Suites, mf.Suites[0]) }), "duplicate suite"},
		{"duplicate benchmarks", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks = append(mf.Suites[0].Benchmarks, mf.Suites[0].Benchmarks[0])
		}), "duplicate benchmark"},
		{"suite without benchmarks", validModelJSON(t, func(mf *ModelFile) { mf.Suites[0].Benchmarks = nil }), "no benchmarks"},
		{"unknown mix class", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Mix["simd_gather"] = 0.1
		}), "unknown mix class"},
		{"negative mix weight", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Mix["load"] = -0.3
		}), ""},
		{"unknown pattern kind", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Loads[0].Kind = "teleport"
		}), "unknown pattern kind"},
		{"unknown layout", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Layout = "spiral"
		}), "unknown layout"},
		{"bad phase weight", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Weight = -1
		}), ""},
		{"zero pattern region", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Loads[0].Region = 0
		}), ""},
		{"stride without stride", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Stores[0].Stride = 0
		}), ""},
		{"bad write fraction", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Phases[0].Reg.WriteFraction = 1.5
		}), ""},
		{"bad input scale", validModelJSON(t, func(mf *ModelFile) {
			mf.Suites[0].Benchmarks[0].Inputs = []InputModel{{Name: "in", WorkingSetScale: -1}}
		}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeModels(tc.data)
			if err == nil {
				t.Fatal("DecodeModels accepted an invalid payload")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWithModels pins the merge semantics: new suites append after the
// existing ones, same-named suites replace benchmarks and metadata, and
// the receiver registry is left untouched.
func TestWithModels(t *testing.T) {
	std := MustStandardRegistry()
	mf, err := DecodeModels(validModelJSON(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := std.WithModels(mf)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != std.Len()+1 {
		t.Fatalf("merged registry has %d benchmarks, want %d", merged.Len(), std.Len()+1)
	}
	names := merged.SuiteNames()
	if names[len(names)-1] != "Custom" {
		t.Fatalf("appended suite is %s, want Custom last; names = %v", names[len(names)-1], names)
	}
	for i, s := range std.SuiteNames() {
		if names[i] != s {
			t.Fatalf("existing suite order disturbed: %v", names)
		}
	}
	if _, err := merged.Lookup("Custom/probe"); err != nil {
		t.Fatal(err)
	}
	if _, err := std.Lookup("Custom/probe"); err == nil {
		t.Fatal("WithModels mutated its receiver")
	}

	// Same-named suite: replaces wholesale.
	shadow, err := DecodeModels(validModelJSON(t, func(m *ModelFile) {
		m.Suites[0].Name = string(SuiteBioPerf)
		m.Suites[0].Description = "replaced"
	}))
	if err != nil {
		t.Fatal(err)
	}
	replaced, err := std.WithModels(shadow)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(replaced.BySuite(SuiteBioPerf)); got != 1 {
		t.Fatalf("shadowed BioPerf has %d benchmarks, want 1", got)
	}
	if si, _ := replaced.SuiteMeta(SuiteBioPerf); si.Description != "replaced" {
		t.Fatalf("shadowed BioPerf metadata not replaced: %+v", si)
	}
	if replaced.SuiteNames()[0] != SuiteBioPerf {
		t.Fatalf("shadowed suite lost its display position: %v", replaced.SuiteNames())
	}

	// Reloading a full exported roster over the standard registry is a
	// pure shadow: same suites, same benchmarks, same export.
	data, err := std.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeModels(data)
	if err != nil {
		t.Fatal(err)
	}
	self, err := std.WithModels(full)
	if err != nil {
		t.Fatal(err)
	}
	selfData, err := self.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(selfData, data) {
		t.Fatal("reloading the full exported roster changed the registry")
	}
}

// TestFilterSuitesCustom pins the satellite fix: suite selection works
// over whatever the registry holds, not the built-in enum.
func TestFilterSuitesCustom(t *testing.T) {
	std := MustStandardRegistry()
	mf, err := DecodeModels(validModelJSON(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := std.WithModels(mf)
	if err != nil {
		t.Fatal(err)
	}
	only, err := merged.FilterSuites("custom")
	if err != nil {
		t.Fatal(err)
	}
	if only.Len() != 1 || only.All()[0].ID() != "Custom/probe" {
		t.Fatalf("filtered registry = %v", only.All())
	}
	if _, err := std.FilterSuites("Custom"); err == nil {
		t.Fatal("standard registry accepted an unknown suite name")
	} else if !strings.Contains(err.Error(), "BioPerf") {
		t.Fatalf("unknown-suite error does not list known suites: %v", err)
	}
}

func TestReadModelFiles(t *testing.T) {
	dir := t.TempDir()
	a := validModelJSON(t, nil)
	b := validModelJSON(t, func(mf *ModelFile) {
		mf.Suites[0].Name = "Custom2"
		mf.Suites[0].Benchmarks[0].Name = "probe2"
	})
	if err := os.WriteFile(filepath.Join(dir, "a.json"), a, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	mf, err := ReadModelFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Suites) != 2 || mf.Suites[0].Name != "Custom" || mf.Suites[1].Name != "Custom2" {
		t.Fatalf("merged suites = %+v", mf.Suites)
	}
	single, err := ReadModelFiles(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Suites) != 1 {
		t.Fatalf("single file read %d suites", len(single.Suites))
	}

	// Duplicate suite across files: rejected with both file names.
	if err := os.WriteFile(filepath.Join(dir, "c.json"), a, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModelFiles(dir); err == nil {
		t.Fatal("duplicate suite across files accepted")
	} else if !strings.Contains(err.Error(), "a.json") || !strings.Contains(err.Error(), "c.json") {
		t.Fatalf("duplicate-suite error does not name both files: %v", err)
	}

	if _, err := ReadModelFiles(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing path accepted")
	}
}

// TestShippedModels loads the checked-in emerging-era suite files and
// verifies they merge and filter like any other suite.
func TestShippedModels(t *testing.T) {
	mf, err := ReadModelFiles("../../models")
	if err != nil {
		t.Fatal(err)
	}
	std := MustStandardRegistry()
	merged, err := std.WithModels(mf)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := merged.FilterSuites("BigData")
	if err != nil {
		t.Fatal(err)
	}
	if bd.Len() < 6 {
		t.Fatalf("BigData suite has %d benchmarks, want >= 6", bd.Len())
	}
	if !merged.IsDomainSpecific("BigData") {
		t.Fatal("BigData should be domain-specific")
	}
	if IsStandardSuite("BigData") {
		t.Fatal("BigData misclassified as a 2008 standard suite")
	}
	for _, b := range bd.All() {
		if b.PaperIntervals <= 0 {
			t.Fatalf("%s has no interval count", b.ID())
		}
	}
}
