package bench

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// bm assembles one benchmark model.
func bm(name string, suite Suite, paperIntervals int, layout Layout, phases ...Phase) *Benchmark {
	return &Benchmark{Name: name, Suite: suite, PaperIntervals: paperIntervals, Layout: layout, Phases: phases}
}

// ph assembles one weighted phase.
func ph(weight float64, b trace.PhaseBehavior) Phase {
	return Phase{Weight: weight, Behavior: b}
}

// StandardRegistry returns the 77-benchmark registry of the paper's five
// suites. Interval counts approximate the paper's Table 3 (the available
// copy of the table is partially garbled; magnitudes are preserved).
func StandardRegistry() (*Registry, error) {
	var all []*Benchmark
	all = append(all, bioPerf()...)
	all = append(all, bmw()...)
	all = append(all, mediaBench()...)
	all = append(all, specInt2000()...)
	all = append(all, specFp2000()...)
	all = append(all, specInt2006()...)
	all = append(all, specFp2006()...)
	return NewRegistry(all)
}

// MustStandardRegistry is StandardRegistry for static, known-good model
// tables; it panics on a construction error.
func MustStandardRegistry() *Registry {
	r, err := StandardRegistry()
	if err != nil {
		panic(err)
	}
	return r
}

// --- BioPerf (bio-informatics) -----------------------------------------
//
// The paper's headline suite: a large fraction of unique behaviour. The
// models live in corners of the characteristic space (extreme load/logic
// mixes, FP-over-pointers, serial bit kernels) that the general-purpose
// archetypes do not reach.

func bioPerf() []*Benchmark {
	s := SuiteBioPerf
	return []*Benchmark{
		bm("blast", s, 1903, LayoutSequential,
			ph(0.7, bioScan("blast/scan", 16*MB)),
			ph(0.3, mod(bioScan("blast/extend", 4*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntAdd, 0.26).Set(isa.OpCompare, 0.10)
				b.Branch.TakenBias = 0.7
				b.Reg.MeanDepDist = 5
			}))),
		bm("ce", s, 4, LayoutSequential,
			// Structural alignment: gather-style FP over distance
			// matrices, adjacent to SPEC's sparse FP codes.
			ph(1, mod(sparseFP("ce/align", 8*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 9
			}))),
		bm("clustalw", s, 1709, LayoutSequential,
			ph(0.6, mod(bioHMM("clustalw/pairalign", 8*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntMul, 0.02).Set(isa.OpCompare, 0.13)
				b.Branch.TakenBias = 0.58
				b.Branch.NoiseLevel = 0.18
			})),
			ph(0.4, bioScan("clustalw/progressive", 2*MB))),
		withInputs(bm("fasta", s, 69923, LayoutSequential,
			ph(0.55, mod(bioScan("fasta/dbscan", 32*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLoad, 0.38).Set(isa.OpStore, 0.01)
				b.Reg.MeanDepDist = 2.5
				b.Reg.AvgSrcRegs = 1.2
			})),
			// The banded Smith-Waterman pass is a strided integer
			// stream, shared with astar's region-way phase (the paper
			// shows fasta and astar together in mixed clusters).
			ph(0.45, bandedScan("fasta/smithwaterman"))),
			Input{Name: "ssearch-small", WorkingSetScale: 0.5},
			Input{Name: "ssearch-large", WorkingSetScale: 1.5, BranchShift: 0.02}),
		bm("glimmer", s, 8, LayoutSequential,
			// Interpolated Markov model scoring: essentially the same
			// dynamic-programming kernel as hmmer's viterbi.
			ph(1, bioHMM("glimmer/icm", 4*MB))),
		bm("grappa", s, 4012, LayoutSequential,
			ph(0.85, bioBitLogic("grappa/bitvector")),
			ph(0.15, mod(bioBitLogic("grappa/setup"), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLogic, 0.18).Set(isa.OpLoad, 0.26).Set(isa.OpStore, 0.12)
				b.Reg.MeanDepDist = 4
			}))),
		bm("hmmer", s, 5012, LayoutSequential,
			// The paper: 59.44% of BioPerf hmmer is benchmark-specific
			// (different branch predictability and register operand
			// counts), while a smaller part resembles CPU2006 hmmer.
			ph(0.6, mod(bioHMM("hmmer/calibrate", 2*MB), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.6
				b.Branch.PatternPeriod = 0 // Bernoulli: poorly predictable
				b.Reg.AvgSrcRegs = 1.2
				b.Reg.MeanDepDist = 3
			})),
			ph(0.4, bioHMM("hmmer/viterbi", 4*MB))),
		bm("phylip", s, 1070, LayoutSequential,
			ph(0.8, bioTreeFP("phylip/proml", 8*MB)),
			ph(0.2, mod(bioTreeFP("phylip/distance", 1*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPDiv, 0.03)
				b.Reg.MeanDepDist = 7
			}))),
		bm("predator", s, 7712, LayoutSequential,
			ph(0.65, mod(bioScan("predator/profile", 8*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntMul, 0.05).Set(isa.OpLogic, 0.06)
				b.Branch.TakenBias = 0.8
				b.Branch.PatternPeriod = 18
				b.Branch.NoiseLevel = 0.06
			})),
			ph(0.35, bioTreeFP("predator/secondary", 2*MB))),
		bm("tcoffee", s, 1740, LayoutSequential,
			ph(0.5, mod(bioScan("tcoffee/library", 12*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpStore, 0.08).Set(isa.OpLoad, 0.28)
			})),
			ph(0.5, mod(bioTreeFP("tcoffee/align", 4*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 5
			}))),
	}
}

// --- BioMetricsWorkload (biometrics) ------------------------------------
//
// Signal-processing pipelines: all five benchmarks share the dspFP
// vocabulary with nearby parameters, giving the suite its narrow coverage
// and low uniqueness; sphinx-like speech processing ties "speak" to SPEC
// CPU2006's sphinx3.

func bmw() []*Benchmark {
	s := SuiteBMW
	return []*Benchmark{
		bm("face", s, 1254, LayoutSequential,
			ph(0.75, dspFP("face/gabor", 2*MB)),
			// A small unique eigenface phase (the paper shows one
			// face-specific cluster).
			ph(0.25, mod(fpMatrix("face/eigen", 1*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPDiv, 0.03).Set(isa.OpConvert, 0.04)
				b.Reg.MeanDepDist = 9
			}))),
		bm("finger", s, 7960, LayoutSequential,
			ph(0.7, dspFP("finger/ridge", 1*MB)),
			ph(0.3, mod(mediaKernel("finger/minutiae", 512*KB), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.8
				b.Branch.NoiseLevel = 0.08
			}))),
		bm("gait", s, 1780, LayoutSequential,
			// Silhouette extraction is integer image morphology with a
			// store-heavy mask-writing mix — the suite's unique corner.
			ph(0.6, mod(mediaKernel("gait/morphology", 4*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpStore, 0.24).Set(isa.OpLogic, 0.20).
					Set(isa.OpIntMul, 0.0).Set(isa.OpCompare, 0.10).
					Set(isa.OpBranchCond, 0.05).Set(isa.OpLoad, 0.18)
				b.Reg.MeanDepDist = 2.5
				b.Reg.WriteFraction = 0.6
				b.Branch.TakenBias = 0.75
				b.Branch.NoiseLevel = 0.1
			})),
			ph(0.4, dspFP("gait/tracking", 4*MB))),
		bm("hand", s, 10789, LayoutSequential,
			ph(0.8, dspFP("hand/geometry", 2*MB)),
			ph(0.2, mod(dspFP("hand/segment", 8*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLoad, 0.30)
			}))),
		bm("speak", s, 1847, LayoutSequential,
			// Speech front-end: shares the sphinx3 acoustic-model
			// archetype (see SPECfp2006), per the paper's mixed cluster.
			ph(0.6, sphinxAcoustic("speak/acoustic")),
			ph(0.4, dspFP("speak/mfcc", 1*MB))),
	}
}

// sphinxAcoustic is the shared speech-recognition acoustic-scoring phase
// used by both SPECfp2006 sphinx3 and BMW speak.
func sphinxAcoustic(name string) trace.PhaseBehavior {
	return mod(dspFP(name, 8*MB), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpLoad, 0.30).Set(isa.OpFPMul, 0.22).Set(isa.OpFPAdd, 0.20)
		b.CodeSize = 2000
		b.Reg.MeanDepDist = 12
		b.Loads = []trace.AccessPattern{stridePat(0.7, 8*MB, 8), randomPat(0.3, 4*MB)}
	})
}

// --- MediaBench II (multimedia) -----------------------------------------
//
// Codec kernels: all seven benchmarks are mediaKernel variants; h264
// shares its motion-estimation phase with SPEC CPU2006's h264ref
// (reproducing the paper's h264ref/h263 mixed cluster).

func mediaBench() []*Benchmark {
	s := SuiteMediaBench
	return []*Benchmark{
		bm("h263", s, 4, LayoutSequential,
			ph(1, h264Motion("h263/encode", 256*KB))),
		bm("h264", s, 1505, LayoutSequential,
			ph(0.7, h264Motion("h264/motion", 512*KB)),
			ph(0.3, mod(mediaKernel("h264/deblock", 256*KB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLogic, 0.08).Set(isa.OpCompare, 0.07)
			}))),
		bm("jpeg2000", s, 4, LayoutSequential,
			ph(1, mediaKernel("jpeg2000/dwt", 512*KB))),
		bm("jpeg", s, 5, LayoutSequential,
			ph(1, mediaKernel("jpeg/dct", 512*KB))),
		bm("mpeg2", s, 77, LayoutSequential,
			ph(1, mediaKernel("mpeg2/codec", 512*KB))),
		bm("mpeg4", s, 12, LayoutSequential,
			ph(1, mediaKernel("mpeg4/codec", 512*KB))),
		bm("mpeg4mmx", s, 8, LayoutSequential,
			ph(1, mediaKernel("mpeg4mmx/simd", 512*KB))),
	}
}

// h264Motion is the shared H.26x motion-estimation phase (MediaBench II
// h263/h264 and SPECint2006 h264ref).
func h264Motion(name string, ws uint64) trace.PhaseBehavior {
	return mod(mediaKernel(name, ws), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpIntAdd, 0.28).Set(isa.OpCompare, 0.09)
		b.Branch.PatternPeriod = 12
		b.Reg.MeanDepDist = 7
	})
}

// --- SPEC CPU2000 integer ------------------------------------------------

func specInt2000() []*Benchmark {
	s := SuiteSPECint2000
	return []*Benchmark{
		withInputs(bm("bzip2", s, 1870, LayoutPeriodic,
			ph(0.5, intStream("bzip2_2000/compress", 8*MB, 8)),
			ph(0.3, mod(intStream("bzip2_2000/sort", 8*MB, 8), func(b *trace.PhaseBehavior) {
				b.Loads = []trace.AccessPattern{randomPat(0.6, 8*MB), stridePat(0.4, 8*MB, 8)}
				b.Branch.TakenBias = 0.6
				b.Branch.NoiseLevel = 0.15
			})),
			ph(0.2, mod(intStream("bzip2_2000/huffman", 1*MB, 8), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpShift, 0.12).Set(isa.OpLogic, 0.12)
			}))),
			Input{Name: "source", WorkingSetScale: 0.6, BranchShift: -0.03},
			Input{Name: "graphic", WorkingSetScale: 1},
			Input{Name: "program", WorkingSetScale: 1.4, BranchShift: 0.03}),
		bm("crafty", s, 1850, LayoutSequential,
			ph(1, gameTree("crafty/search", 45000, 2*MB, 0.25))),
		bm("eon", s, 1047, LayoutSequential,
			// A probabilistic ray tracer: scalar FP rasterization close
			// to mesa's (the two co-cluster).
			ph(1, rasterizer("eon/render", 2*MB))),
		bm("gap", s, 1020, LayoutSequential,
			ph(0.7, mod(intControl("gap/groups", 20000, 4*MB, 0.62, 9, 0.12), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntMul, 0.03)
			})),
			ph(0.3, pointerChase("gap/gc", 8*MB, 0.6, 10))),
		withInputs(bm("gcc", s, 1980, LayoutSequential,
			// gcc's phases are the same compiler phases as CPU2006's gcc
			// — the two generations co-cluster, as in the paper.
			ph(0.4, gccParse("gcc_2000/parse")),
			ph(0.35, gccTree("gcc_2000/rtl")),
			ph(0.25, gccRegalloc("gcc_2000/regalloc"))),
			Input{Name: "166", WorkingSetScale: 0.5, BranchShift: -0.02},
			Input{Name: "200", WorkingSetScale: 1},
			Input{Name: "expr", WorkingSetScale: 1.8, BranchShift: 0.02}),
		bm("gzip", s, 1500, LayoutPeriodic,
			ph(0.6, intStream("gzip/deflate", 2*MB, 8)),
			ph(0.4, mod(intStream("gzip/lz", 512*KB, 8), func(b *trace.PhaseBehavior) {
				b.Loads = []trace.AccessPattern{randomPat(0.5, 512*KB), stridePat(0.5, 2*MB, 8)}
				b.Branch.NoiseLevel = 0.12
			}))),
		bm("mcf", s, 590, LayoutSequential,
			ph(1, pointerChase("mcf_2000/simplex", 24*MB, 0.55, 8))),
		bm("parser", s, 1500, LayoutSequential,
			// Linkage-grammar parsing walks dictionary tries much like
			// gcc's tree passes walk their IR.
			ph(1, gccTree("parser/link"))),
		withInputs(bm("perlbmk", s, 1800, LayoutSequential,
			ph(0.7, perlInterpreter("perlbmk/interp", 45000)),
			ph(0.3, mod(intStream("perlbmk/regex", 1*MB, 8), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.7
			}))),
			Input{Name: "diffmail", WorkingSetScale: 1},
			Input{Name: "splitmail", WorkingSetScale: 1.6, BranchShift: 0.02}),
		bm("twolf", s, 1840, LayoutSequential,
			ph(1, mod(intControl("twolf/anneal", 10000, 2*MB, 0.6, 0, 0), func(b *trace.PhaseBehavior) {
				// Simulated annealing: essentially random accept/reject
				// branches — the classic hard-to-predict benchmark.
				b.Mix = b.Mix.Set(isa.OpIntMul, 0.03).Set(isa.OpIntDiv, 0.01)
				b.Loads = []trace.AccessPattern{randomPat(0.8, 2*MB), stridePat(0.2, 512*KB, 8)}
			}))),
		bm("vortex", s, 1960, LayoutSequential,
			// An OO database: the same event/object traversal behaviour
			// as omnetpp.
			ph(1, mod(objTraverse("vortex/oodb", 25000, 8*MB), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.65
			}))),
		bm("vpr", s, 1076, LayoutPeriodic,
			ph(0.5, mod(intControl("vpr/place", 9000, 1*MB, 0.6, 0, 0), func(b *trace.PhaseBehavior) {
				b.Loads = []trace.AccessPattern{randomPat(1, 1*MB)}
			})),
			ph(0.5, mod(pointerChase("vpr/route", 4*MB, 0.6, 9), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPAdd, 0.04).Set(isa.OpFPMul, 0.03)
			}))),
	}
}

// perlInterpreter is the shared Perl bytecode-dispatch phase (perlbmk in
// CPU2000 and perlbench in CPU2006 co-cluster in the paper's Figure 3).
func perlInterpreter(name string, codeSize int) trace.PhaseBehavior {
	return mod(objTraverse(name, codeSize, 2*MB), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpBranchJump, 0.05).Set(isa.OpLoad, 0.26)
		b.Branch.TakenBias = 0.6
		b.Branch.PatternPeriod = 9
		b.Branch.NoiseLevel = 0.14
	})
}

// rasterizer is the shared scalar-FP rasterization phase (mesa and eon
// co-cluster: both software renderers).
func rasterizer(name string, ws uint64) trace.PhaseBehavior {
	return mod(fpScalar(name, 20000, ws), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpConvert, 0.04).Set(isa.OpIntAdd, 0.16)
		b.Branch.TakenBias = 0.8
		b.Branch.PatternPeriod = 16
		b.Branch.NoiseLevel = 0.04
	})
}

// gccParse / gccTree / gccRegalloc are the shared compiler phases: both
// gcc generations (and parser's trie walking) execute them.
func gccParse(name string) trace.PhaseBehavior {
	return intControl(name, 70000, 8*MB, 0.6, 8, 0.15)
}

func gccTree(name string) trace.PhaseBehavior {
	return mod(intControl(name, 70000, 16*MB, 0.58, 8, 0.18), func(b *trace.PhaseBehavior) {
		b.Loads = []trace.AccessPattern{chasePat(0.45, 16*MB), randomPat(0.55, 8*MB)}
	})
}

func gccRegalloc(name string) trace.PhaseBehavior {
	return mod(intControl(name, 50000, 4*MB, 0.66, 10, 0.12), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpStore, 0.13)
	})
}

// bandedScan is the shared banded dynamic-programming stream (fasta's
// Smith-Waterman band and astar's region-way phase co-cluster, as in the
// paper's Figure 3).
func bandedScan(name string) trace.PhaseBehavior {
	return mod(intStream(name, 1*MB, 8), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpCompare, 0.09).Set(isa.OpShift, 0.05)
		b.Reg.MeanDepDist = 4.5
	})
}

// --- SPEC CPU2000 floating-point ------------------------------------------

func specFp2000() []*Benchmark {
	s := SuiteSPECfp2000
	return []*Benchmark{
		bm("ammp", s, 1578, LayoutSequential,
			// The paper shows a small benchmark-specific ammp cluster
			// (17.9%) plus a shared ammp/namd molecular-dynamics cluster.
			ph(0.2, mod(mdForce("ammp/nonbond", 4*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPDiv, 0.04).Set(isa.OpFPSqrt, 0.02)
				b.Reg.MeanDepDist = 5
			})),
			ph(0.8, mdForce("ammp/md", 8*MB))),
		bm("applu", s, 1495, LayoutSequential,
			ph(1, maxwellStencil("applu/ssor", 24*MB))),
		bm("apsi", s, 4548, LayoutSequential,
			// apsi co-clusters with wrf (both atmospheric models).
			ph(0.5, weatherDynamics("apsi/dynamics", 8*MB)),
			ph(0.3, weatherPhysics("apsi/physics", 4*MB)),
			ph(0.2, fpMatrix("apsi/fft", 2*MB, 1024))),
		bm("art", s, 1560, LayoutSequential,
			ph(1, mod(fpStream("art/neural", 4*MB, 8), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.24).Set(isa.OpCompare, 0.04)
				b.Reg.MeanDepDist = 8
			}))),
		bm("equake", s, 1550, LayoutSequential,
			ph(1, sparseFP("equake/smvp", 16*MB))),
		bm("facerec", s, 1660, LayoutSequential,
			// facerec co-clusters with BMW finger in the paper's mixed
			// clusters: share the dspFP vocabulary.
			ph(0.7, dspFP("facerec/gabor", 2*MB)),
			ph(0.3, fpMatrix("facerec/match", 1*MB, 2048))),
		bm("fma3d", s, 1000, LayoutSequential,
			ph(0.75, mod(fpScalar("fma3d/elements", 30000, 8*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 12
			})),
			ph(0.25, fpStream("fma3d/assembly", 24*MB, 8))),
		bm("galgel", s, 1689, LayoutSequential,
			ph(1, mod(fpMatrix("galgel/galerkin", 4*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 22
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.26)
			}))),
		bm("lucas", s, 1458, LayoutSequential,
			// The FFT butterfly is dense multi-stride FP with integer
			// index arithmetic — the same shape as tonto's density
			// kernels.
			ph(1, mod(fpMatrix("lucas/fft", 4*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntAdd, 0.14)
			}))),
		bm("mesa", s, 1880, LayoutSequential,
			ph(1, rasterizer("mesa/rasterize", 2*MB))),
		bm("mgrid", s, 4800, LayoutSequential,
			// 65.84% of mgrid is benchmark-specific in the paper.
			ph(0.66, mod(fpMatrix("mgrid/multigrid", 24*MB, 16384), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 28
				b.Reg.AvgSrcRegs = 2.3
			})),
			ph(0.34, fpStream("mgrid/smooth", 24*MB, 8))),
		bm("sixtrack", s, 7040, LayoutSequential,
			// 98.67% one benchmark-specific cluster: a single unusual
			// phase (tiny working set, very long dependences).
			ph(1, mod(fpStream("sixtrack/track", 256*KB, 8), func(b *trace.PhaseBehavior) {
				b.CodeSize = 8000
				b.Reg.MeanDepDist = 90
				b.Reg.AvgSrcRegs = 2.4
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.26).Set(isa.OpFPAdd, 0.28).Set(isa.OpLoad, 0.18).Set(isa.OpStore, 0.05)
				b.Branch.TakenBias = 0.99
			}))),
		bm("swim", s, 1850, LayoutSequential,
			ph(1, fpStream("swim/shallow", 24*MB, 8))),
		bm("wupwise", s, 4860, LayoutSequential,
			ph(1, mod(fpMatrix("wupwise/su3", 8*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 20
			}))),
	}
}

// mdForce is the shared molecular-dynamics force-loop phase (ammp, namd,
// gromacs variants).
func mdForce(name string, ws uint64) trace.PhaseBehavior {
	return mod(fpScalar(name, 5000, ws), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpFPMul, 0.20).Set(isa.OpFPAdd, 0.22).Set(isa.OpFPDiv, 0.015).
			Set(isa.OpFPSqrt, 0.015).Set(isa.OpBranchCond, 0.06)
		b.Branch.TakenBias = 0.85
		b.Branch.PatternPeriod = 20
		b.Branch.NoiseLevel = 0.05
		b.Reg.MeanDepDist = 14
		b.Loads = []trace.AccessPattern{randomPat(0.45, ws), stridePat(0.55, ws, 8)}
	})
}

// weatherDynamics / weatherPhysics are the shared atmospheric-model phases
// (apsi and wrf co-cluster repeatedly in the paper's Figure 3).
func weatherDynamics(name string, ws uint64) trace.PhaseBehavior {
	return mod(fpMatrix(name, ws, 8192), func(b *trace.PhaseBehavior) {
		b.Reg.MeanDepDist = 16
		b.Mix = b.Mix.Set(isa.OpFPDiv, 0.01)
	})
}

func weatherPhysics(name string, ws uint64) trace.PhaseBehavior {
	return mod(fpScalar(name, 40000, ws), func(b *trace.PhaseBehavior) {
		b.Branch.TakenBias = 0.78
		b.Mix = b.Mix.Set(isa.OpConvert, 0.03)
	})
}

// --- SPEC CPU2006 integer --------------------------------------------------

func specInt2006() []*Benchmark {
	s := SuiteSPECint2006
	return []*Benchmark{
		bm("astar", s, 1500, LayoutPeriodic,
			// Two prominent phases with different locality and branch
			// predictability (paper section 4.2): the benchmark-specific
			// pathfinding phase has the worst branch predictability
			// overall; the mixed-cluster phase has far better locality.
			ph(0.45, mod(pointerChase("astar/pathfind", 16*MB, 0.5, 0), func(b *trace.PhaseBehavior) {
				b.Branch.NoiseLevel = 0 // Bernoulli(0.5): maximally unpredictable
			})),
			ph(0.55, bandedScan("astar/regionway"))),
		bm("bzip2", s, 1440, LayoutPeriodic,
			ph(0.45, intStream("bzip2_2006/compress", 16*MB, 8)),
			ph(0.35, mod(intStream("bzip2_2006/sort", 16*MB, 8), func(b *trace.PhaseBehavior) {
				b.Loads = []trace.AccessPattern{randomPat(0.6, 16*MB), stridePat(0.4, 16*MB, 8)}
				b.Branch.TakenBias = 0.6
				b.Branch.NoiseLevel = 0.15
			})),
			ph(0.2, mod(intStream("bzip2_2006/decompress", 4*MB, 8), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpShift, 0.13).Set(isa.OpLogic, 0.13).Set(isa.OpStore, 0.16)
				b.Reg.MeanDepDist = 3.5
			}))),
		withInputs(bm("gcc", s, 1790, LayoutSequential,
			ph(0.35, gccParse("gcc_2006/parse")),
			ph(0.3, gccTree("gcc_2006/tree")),
			ph(0.35, gccRegalloc("gcc_2006/regalloc"))),
			Input{Name: "166", WorkingSetScale: 0.5, BranchShift: -0.02},
			Input{Name: "g23", WorkingSetScale: 1},
			Input{Name: "s04", WorkingSetScale: 2, BranchShift: 0.02}),
		bm("gobmk", s, 6970, LayoutSequential,
			// Two benchmark-specific clusters plus mixed behaviour.
			ph(0.3, mod(gameTree("gobmk/owl", 45000, 4*MB, 0.3), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLogic, 0.17).Set(isa.OpShift, 0.1)
				b.Reg.WriteFraction = 0.75
			})),
			ph(0.3, mod(gameTree("gobmk/pattern", 45000, 1*MB, 0.22), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 3.5
			})),
			ph(0.4, gameTree("gobmk/search", 45000, 2*MB, 0.25))),
		bm("h264ref", s, 6000, LayoutSequential,
			ph(0.5, h264Motion("h264ref/motion", 512*KB)),
			ph(0.5, mediaKernel("h264ref/rdopt", 512*KB))),
		bm("hmmer", s, 1765, LayoutSequential,
			// 68% of CPU2006 hmmer resembles a small part of BioPerf
			// hmmer: reuse the bioHMM viterbi archetype.
			ph(0.7, bioHMM("hmmer_2006/viterbi", 4*MB)),
			ph(0.3, mod(bioHMM("hmmer_2006/forward", 2*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntMul, 0.08)
				b.Branch.TakenBias = 0.92
			}))),
		bm("libquantum", s, 9490, LayoutPeriodic,
			// Two benchmark-specific clusters (46.76% and 12.9% weights).
			ph(0.65, quantumStream("libquantum/toffoli")),
			ph(0.35, mod(quantumStream("libquantum/sigma"), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLogic, 0.2).Set(isa.OpStore, 0.05)
				b.Reg.MeanDepDist = 18
			}))),
		bm("mcf", s, 1780, LayoutSequential,
			ph(1, pointerChase("mcf_2006/simplex", 32*MB, 0.55, 8))),
		bm("omnetpp", s, 7704, LayoutSequential,
			// 95.48% in a single (mixed) cluster.
			ph(1, mod(objTraverse("omnetpp/events", 25000, 8*MB), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.65
			}))),
		bm("perlbench", s, 1056, LayoutSequential,
			ph(0.65, perlInterpreter("perlbench/interp", 45000)),
			ph(0.35, mod(intStream("perlbench/regex", 2*MB, 8), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.7
			}))),
		bm("sjeng", s, 1500, LayoutSequential,
			// 99.79% one benchmark-specific cluster.
			ph(1, mod(gameTree("sjeng/search", 14000, 512*KB, 0.33), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpLogic, 0.13)
				b.Reg.MeanDepDist = 4.2
				b.Branch.TakenBias = 0.48
			}))),
		bm("xalancbmk", s, 1480, LayoutSequential,
			// 54.57% benchmark-specific DOM traversal.
			ph(0.55, mod(objTraverse("xalancbmk/dom", 60000, 4*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpCall, 0.05).Set(isa.OpReturn, 0.05).Set(isa.OpBranchJump, 0.04)
				b.Reg.MeanDepDist = 4
			})),
			ph(0.45, perlInterpreter("xalancbmk/template", 50000))),
	}
}

// --- SPEC CPU2006 floating-point --------------------------------------------

func specFp2006() []*Benchmark {
	s := SuiteSPECfp2006
	return []*Benchmark{
		bm("bwaves", s, 1860, LayoutSequential,
			// 78.48% + 12.97% benchmark-specific clusters.
			ph(0.78, mod(fpStream("bwaves/solver", 48*MB, 8), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 30
				b.Reg.AvgSrcRegs = 2.3
			})),
			ph(0.22, fpMatrix("bwaves/jacobian", 16*MB, 32768))),
		bm("cactusADM", s, 10466, LayoutSequential,
			// 99.49% one benchmark-specific cluster.
			ph(1, mod(fpStream("cactusADM/staggered", 32*MB, 8), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.24).Set(isa.OpFPAdd, 0.26).Set(isa.OpLoad, 0.30).Set(isa.OpBranchCond, 0.005)
				b.Reg.MeanDepDist = 26
				b.Reg.AvgSrcRegs = 2.4
				b.CodeSize = 12000
			}))),
		bm("calculix", s, 74590, LayoutSequential,
			// Three benchmark-specific clusters of decreasing weight.
			ph(0.6, mod(fpMatrix("calculix/spooles", 8*MB, 4096), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntAdd, 0.16)
				b.Reg.MeanDepDist = 12
			})),
			ph(0.25, fpScalar("calculix/elements", 35000, 4*MB)),
			ph(0.15, sparseFP("calculix/assembly", 8*MB))),
		bm("dealII", s, 1700, LayoutSequential,
			ph(0.4, mod(sparseFP("dealII/cg", 8*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 9
			})),
			ph(0.35, mod(objTraverse("dealII/dofs", 40000, 4*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPAdd, 0.08).Set(isa.OpFPMul, 0.06)
			})),
			ph(0.25, fpScalar("dealII/quadrature", 30000, 2*MB))),
		bm("gamess", s, 56550, LayoutSequential,
			// Many medium-weight clusters: quantum chemistry with
			// several integral/SCF phases.
			ph(0.3, fpScalar("gamess/twoel", 70000, 8*MB)),
			ph(0.25, mod(fpMatrix("gamess/scf", 8*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 20
			})),
			ph(0.25, mod(fpScalar("gamess/gradient", 70000, 4*MB), func(b *trace.PhaseBehavior) {
				b.Branch.TakenBias = 0.8
				b.Mix = b.Mix.Set(isa.OpFPDiv, 0.025)
			})),
			ph(0.2, weatherPhysics("gamess/guess", 2*MB))),
		bm("gemsfdtd", s, 9400, LayoutSequential,
			ph(0.6, maxwellStencil("gemsfdtd/update", 24*MB)),
			ph(0.4, mod(sparseFP("gemsfdtd/nearfar", 16*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.22)
			}))),
		bm("gromacs", s, 5597, LayoutSequential,
			// 40.46% benchmark-specific inner loop + shared MD behaviour.
			ph(0.45, mod(mdForce("gromacs/innerloop", 2*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 18
				b.Reg.AvgSrcRegs = 2.2
				b.Mix = b.Mix.Set(isa.OpFPSqrt, 0.025)
			})),
			ph(0.55, mdForce("gromacs/bonded", 4*MB))),
		bm("lbm", s, 8455, LayoutSequential,
			// 99.9% one benchmark-specific cluster.
			ph(1, mod(fpStream("lbm/collide", 64*MB, 8), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpStore, 0.16).Set(isa.OpLoad, 0.28).Set(isa.OpBranchCond, 0.01)
				b.Reg.MeanDepDist = 22
			}))),
		bm("leslie3d", s, 7870, LayoutSequential,
			// 99.99% in one suite-specific cluster shared with
			// GemsFDTD/zeusmp: the common stencil archetype.
			ph(1, maxwellStencil("leslie3d/flux", 24*MB))),
		bm("milc", s, 1500, LayoutSequential,
			ph(0.75, mod(sparseFP("milc/su3mult", 24*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 14
				b.Mix = b.Mix.Set(isa.OpFPMul, 0.24)
			})),
			ph(0.25, mod(sparseFP("milc/gather", 24*MB), func(b *trace.PhaseBehavior) {
				b.Loads = []trace.AccessPattern{randomPat(0.85, 24*MB), stridePat(0.15, 8*MB, 8)}
			}))),
		bm("namd", s, 1700, LayoutSequential,
			// 68.7% one benchmark-specific cluster + shared MD.
			ph(0.69, mod(mdForce("namd/selfpair", 4*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 16
				b.Reg.AvgSrcRegs = 2.1
				b.Branch.TakenBias = 0.9
			})),
			ph(0.31, mdForce("namd/excl", 8*MB))),
		bm("povray", s, 1400, LayoutSequential,
			// 99.99% one suite-specific cluster.
			ph(1, mod(fpScalar("povray/trace", 45000, 1*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpFPSqrt, 0.02).Set(isa.OpCall, 0.03).Set(isa.OpReturn, 0.03)
				b.Branch.TakenBias = 0.68
			}))),
		bm("soplex", s, 8900, LayoutSequential,
			// 48.4% + 26.57% clusters (one shared with GemsFDTD).
			ph(0.5, mod(sparseFP("soplex/pricing", 16*MB), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpBranchCond, 0.1).Set(isa.OpCompare, 0.06)
				b.Branch.TakenBias = 0.7
				b.Branch.NoiseLevel = 0.1
			})),
			ph(0.5, sparseFP("soplex/factor", 8*MB))),
		bm("sphinx3", s, 10460, LayoutSequential,
			// 99.90% one cluster, shared with BMW's speech benchmarks.
			ph(1, sphinxAcoustic("sphinx3/acoustic"))),
		bm("tonto", s, 5060, LayoutSequential,
			ph(0.47, mod(fpScalar("tonto/integrals", 80000, 8*MB), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 10
			})),
			ph(0.33, mod(fpMatrix("tonto/density", 4*MB, 2048), func(b *trace.PhaseBehavior) {
				b.Mix = b.Mix.Set(isa.OpIntAdd, 0.14)
			})),
			ph(0.2, perlInterpreter("tonto/dispatch", 60000))),
		bm("wrf", s, 1770, LayoutSequential,
			ph(0.4, weatherDynamics("wrf/dynamics", 16*MB)),
			ph(0.35, weatherPhysics("wrf/physics", 8*MB)),
			ph(0.25, fpStream("wrf/advection", 24*MB, 8))),
		bm("zeusmp", s, 1850, LayoutSequential,
			ph(0.55, maxwellStencil("zeusmp/mhd", 24*MB)),
			ph(0.45, mod(fpMatrix("zeusmp/transport", 16*MB, 8192), func(b *trace.PhaseBehavior) {
				b.Reg.MeanDepDist = 20
			}))),
	}
}

// maxwellStencil is the shared explicit-stencil phase of the CPU2006
// field solvers (GemsFDTD, leslie3d, zeusmp, wrf's advection).
func maxwellStencil(name string, ws uint64) trace.PhaseBehavior {
	return mod(fpMatrix(name, ws, 16384), func(b *trace.PhaseBehavior) {
		b.Mix = b.Mix.Set(isa.OpFPAdd, 0.26).Set(isa.OpFPMul, 0.20).Set(isa.OpLoad, 0.28)
		b.Reg.MeanDepDist = 24
		b.Reg.AvgSrcRegs = 2.2
		b.Branch.TakenBias = 0.95
	})
}

// withInputs attaches reference inputs to a benchmark model.
func withInputs(b *Benchmark, inputs ...Input) *Benchmark {
	b.Inputs = inputs
	return b
}
