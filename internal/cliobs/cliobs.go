// Package cliobs wires the observability layer into the command-line
// tools: one call turns the -report / -metrics / -metrics-addr flags into
// a configured obs.Metrics collector, installs the worker-pool hook, and
// returns the teardown that emits the requested artifacts at exit.
//
// It exists so the three CLIs (phasechar, micastat, tracegen) share one
// flag contract and one failure policy: a report or summary the user
// asked for that cannot be produced is an error and a nonzero exit,
// never a silent degradation.
package cliobs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// ObsFlags carries the values of the shared observability flags. Every
// CLI registers them through RegisterObsFlags so the three tools cannot
// drift apart in spelling, defaults or help text.
type ObsFlags struct {
	// Report is -report: the JSON run-report path.
	Report string
	// Summary is -metrics: print the human-readable summary at exit.
	Summary bool
	// Addr is -metrics-addr: serve live metrics for the run's duration.
	Addr string
}

// RegisterObsFlags registers the shared -report / -metrics /
// -metrics-addr flags on fs and returns the value struct to read after
// parsing.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.Report, "report", "", "write a machine-readable JSON run report (stage spans + counters) to this file at exit")
	fs.BoolVar(&f.Summary, "metrics", false, "print the run-metrics summary (stage spans + counters) to stderr at exit")
	fs.StringVar(&f.Addr, "metrics-addr", "", "serve live /metrics (JSON report), /debug/vars and /debug/pprof on this address for the duration of the run, e.g. localhost:6060")
	return f
}

// Setup is Setup(tool, f.Report, f.Summary, f.Addr).
func (f *ObsFlags) Setup(tool string) (*obs.Metrics, func(errp *error), error) {
	return Setup(tool, f.Report, f.Summary, f.Addr)
}

// RegisterIncremental registers the shared -incremental flag: like the
// observability flags, the spelling and help text live here so the three
// CLIs cannot drift apart. Each tool keeps its own compatibility rules
// (what -incremental may combine with), validated after parsing.
func RegisterIncremental(fs *flag.FlagSet) *bool {
	return fs.Bool("incremental", false, "incremental mode: reuse the cached baseline's artifacts and process only what it lacks (requires -cache)")
}

// IncrementalTolerances carries the incremental fast-path gate flags of
// the pipeline CLIs.
type IncrementalTolerances struct {
	// MaxPCADrift is -max-pca-drift: the frozen-basis reconstruction
	// drift gate (0 always refits PCA exactly).
	MaxPCADrift float64
	// MaxCentroidShift is -max-centroid-shift: the warm-start centroid
	// shift gate (0 always reruns full k-means).
	MaxCentroidShift float64
}

// RegisterIncrementalTolerances registers -max-pca-drift and
// -max-centroid-shift with the shared defaults.
func RegisterIncrementalTolerances(fs *flag.FlagSet) *IncrementalTolerances {
	f := &IncrementalTolerances{}
	fs.Float64Var(&f.MaxPCADrift, "max-pca-drift", 0.05, "incremental mode: reuse the cached PCA eigenbasis while the appended rows' mean reconstruction drift stays at or below this fraction; 0 always refits exactly")
	fs.Float64Var(&f.MaxCentroidShift, "max-centroid-shift", 0.25, "incremental mode: keep the warm-started k-means refinement while its normalized centroid shift stays at or below this value; 0 always reruns the full search")
	return f
}

// CorpusFlags carries the shared phase-corpus flags. As with the
// observability flags, the spelling, defaults and help text live here
// so every tool that grows a -corpus flag stays consistent.
type CorpusFlags struct {
	// Dir is -corpus: the phase-corpus directory.
	Dir string
	// TopK is -topk: how many neighbors `query nearest` returns.
	TopK int
	// Radius is -radius: the uniqueness/novelty neighbor radius in the
	// corpus-normalized characteristic space.
	Radius float64
	// Probe is -probe: IVF partitions to scan for `query nearest`
	// (0: exact full scan).
	Probe int
	// Ingest is -corpus-ingest: with the 'service' target, ingest every
	// completed job's result into -corpus.
	Ingest bool
}

// RegisterCorpusFlags registers the shared corpus flags on fs.
func RegisterCorpusFlags(fs *flag.FlagSet) *CorpusFlags {
	f := &CorpusFlags{}
	fs.StringVar(&f.Dir, "corpus", "", "phase-corpus directory: runs ingest their interval vectors and centroids into it (idempotently), and the 'query'/'compact' targets and the service's /corpus/query answer from it")
	fs.IntVar(&f.TopK, "topk", 0, "with 'query nearest': how many neighbors to return (0: default 5)")
	fs.Float64Var(&f.Radius, "radius", 0, "with 'query uniqueness'/'query novelty': neighbor radius in the corpus-normalized characteristic space (0: default 1.0)")
	fs.IntVar(&f.Probe, "probe", 0, "with 'query nearest': scan only this many IVF partitions instead of every row (0: exact scan; >= the quantizer size is identical to exact)")
	fs.BoolVar(&f.Ingest, "corpus-ingest", false, "with the 'service' target: ingest every completed job's result into -corpus")
	return f
}

// ParseWorkers parses a -workers-addr comma-separated worker list into
// normalized base URLs ("http://host:port"); a bare host:port gets the
// http scheme. Empty entries are rejected rather than skipped — a stray
// comma more likely means a mangled host list than an intentional gap.
func ParseWorkers(list string) ([]string, error) {
	var urls []string
	for _, w := range strings.Split(list, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			return nil, fmt.Errorf("worker list %q has an empty entry", list)
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		urls = append(urls, strings.TrimRight(w, "/"))
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("worker list is empty")
	}
	return urls, nil
}

// ParseShard parses a -shard "i/n" specification into a shard index and
// count, rejecting anything but 0 <= i < n with n >= 1. It lives here so
// every CLI that grows sharding shares one spelling and one error text.
func ParseShard(spec string) (index, count int, err error) {
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard spec %q is not of the form i/n", spec)
	}
	index, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad index: %v", spec, err)
	}
	count, err = strconv.Atoi(cnt)
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad count: %v", spec, err)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("shard spec %q: count %d < 1", spec, count)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("shard spec %q: index %d outside [0,%d)", spec, index, count)
	}
	return index, count, nil
}

// Setup builds the CLI's metrics collector from its observability flags.
// When none of the flags are set it returns a nil collector (the
// disabled, near-zero-overhead path) and a no-op finish.
//
// Otherwise it returns a live collector — already labelled with the tool
// name, installed as the par worker-pool sink, and served on addr if one
// was given — plus a finish func to defer: finish writes the JSON report
// to reportPath, prints the human-readable summary to stderr when
// summary is set, and promotes a report-write failure into *errp (unless
// an earlier error is already there) so the process exits nonzero.
func Setup(tool, reportPath string, summary bool, addr string) (*obs.Metrics, func(errp *error), error) {
	if reportPath == "" && !summary && addr == "" {
		return nil, func(*error) {}, nil
	}
	m := obs.New()
	m.SetTool(tool)
	par.Instrument(m)
	var stopServe func(context.Context) error
	if addr != "" {
		bound, shutdown, err := m.Serve(addr)
		if err != nil {
			par.Instrument(nil)
			return nil, nil, err
		}
		stopServe = shutdown
		fmt.Fprintf(os.Stderr, "%s: serving metrics at http://%s/metrics (and /debug/pprof)\n", tool, bound)
	}
	finish := func(errp *error) {
		par.Instrument(nil)
		if stopServe != nil {
			// Drain in-flight metrics scrapes instead of killing them with
			// the process; a scrape that cannot finish in time is dropped.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = stopServe(ctx)
			cancel()
		}
		if reportPath != "" {
			if werr := m.WriteReport(reportPath); werr != nil && *errp == nil {
				*errp = werr
			}
		}
		if summary {
			fmt.Fprint(os.Stderr, m.Summary())
		}
	}
	return m, finish, nil
}
