package cliobs

import "testing"

func TestParseShard(t *testing.T) {
	good := []struct {
		spec         string
		index, count int
	}{
		{"0/1", 0, 1},
		{"0/3", 0, 3},
		{"2/3", 2, 3},
		{"15/16", 15, 16},
	}
	for _, tt := range good {
		index, count, err := ParseShard(tt.spec)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", tt.spec, err)
		}
		if index != tt.index || count != tt.count {
			t.Fatalf("ParseShard(%q) = %d/%d, want %d/%d", tt.spec, index, count, tt.index, tt.count)
		}
	}

	bad := []string{"", "3", "a/b", "1/", "/3", "1/0", "3/3", "-1/3", "1/-3", "0/3/1 "}
	for _, spec := range bad {
		if _, _, err := ParseShard(spec); err == nil {
			t.Fatalf("ParseShard(%q) accepted", spec)
		}
	}
}
