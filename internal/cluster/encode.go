package cluster

// Binary serialization for fitted clustering results, so the k-means
// stage of the pipeline engine can persist and resume its output
// bit-identically. Integrity is the storage layer's job (internal/fcache
// checksums every entry); this decoder rejects structurally inconsistent
// payloads.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stats"
)

// MarshalBinary encodes the clustering result (encoding.BinaryMarshaler):
// k, assignments, centers, sizes, inertia and BIC, floats bit-exact.
func (r *Result) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4+4*len(r.Assignments)+8+8*len(r.Centers.Data)+4*len(r.Sizes)+16)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Assignments)))
	for _, a := range r.Assignments {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	buf = r.Centers.AppendBinary(buf)
	for _, s := range r.Sizes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Inertia))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.BIC))
	return buf, nil
}

// UnmarshalBinary decodes a result encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (r *Result) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("cluster: result header truncated (%d bytes)", len(data))
	}
	k := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if k < 1 || len(data) < 4*n {
		return fmt.Errorf("cluster: result with k=%d, %d assignments does not fit payload", k, n)
	}
	assign := make([]int, n)
	for i := range assign {
		a := int(binary.LittleEndian.Uint32(data[4*i:]))
		if a < 0 || a >= k {
			return fmt.Errorf("cluster: assignment %d = %d out of [0,%d)", i, a, k)
		}
		assign[i] = a
	}
	centers, rest, err := stats.DecodeMatrix(data[4*n:])
	if err != nil {
		return fmt.Errorf("cluster: centers: %w", err)
	}
	if centers.Rows != k {
		return fmt.Errorf("cluster: %d centers for k=%d", centers.Rows, k)
	}
	if len(rest) != 4*k+16 {
		return fmt.Errorf("cluster: result tail is %d bytes, want %d", len(rest), 4*k+16)
	}
	sizes := make([]int, k)
	for c := range sizes {
		sizes[c] = int(binary.LittleEndian.Uint32(rest[4*c:]))
	}
	r.K = k
	r.Assignments = assign
	r.Centers = centers
	r.Sizes = sizes
	r.Inertia = math.Float64frombits(binary.LittleEndian.Uint64(rest[4*k:]))
	r.BIC = math.Float64frombits(binary.LittleEndian.Uint64(rest[4*k+8:]))
	return nil
}
