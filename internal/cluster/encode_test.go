package cluster

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func fittedResult(t *testing.T) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := stats.NewMatrix(30, 3)
	for i := 0; i < m.Rows; i++ {
		center := float64(i % 3 * 10)
		for j := 0; j < m.Cols; j++ {
			m.Row(i)[j] = center + rng.NormFloat64()
		}
	}
	r, err := KMeans(m, 3, Options{Seed: 1, Restarts: 2, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResultBinaryRoundTripBitExact(t *testing.T) {
	r := fittedResult(t)
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	buf2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("clustering result does not round-trip byte-identically")
	}
	if got.K != r.K || len(got.Assignments) != len(r.Assignments) {
		t.Fatalf("shape k=%d/%d assignments, want k=%d/%d", got.K, len(got.Assignments), r.K, len(r.Assignments))
	}
	for i := range r.Assignments {
		if got.Assignments[i] != r.Assignments[i] {
			t.Fatalf("assignment %d: %d != %d", i, got.Assignments[i], r.Assignments[i])
		}
	}
	for i := range r.Centers.Data {
		if math.Float64bits(got.Centers.Data[i]) != math.Float64bits(r.Centers.Data[i]) {
			t.Fatalf("center element %d differs", i)
		}
	}
	if math.Float64bits(got.Inertia) != math.Float64bits(r.Inertia) ||
		math.Float64bits(got.BIC) != math.Float64bits(r.BIC) {
		t.Fatal("inertia/BIC not bit-exact")
	}
}

func TestResultDecodeRejectsDamage(t *testing.T) {
	r := fittedResult(t)
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	for _, n := range []int{0, 7, len(buf) / 2, len(buf) - 1} {
		if err := got.UnmarshalBinary(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if err := got.UnmarshalBinary(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	// An out-of-range assignment must be rejected, not clustered.
	bad := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[8:], uint32(r.K)) // first assignment = k
	if err := got.UnmarshalBinary(bad); err == nil {
		t.Fatal("assignment >= k accepted")
	}

	// k = 0 is structurally impossible for a fitted result.
	bad = append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[0:], 0)
	if err := got.UnmarshalBinary(bad); err == nil {
		t.Fatal("k=0 accepted")
	}
}
