package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// ExampleKMeans clusters two obvious groups of points and reads the
// cluster weights.
func ExampleKMeans() {
	data, err := stats.FromRows([][]float64{
		{0.0, 0.1}, {0.1, 0.0}, {0.1, 0.1},
		{9.0, 9.1}, {9.1, 9.0}, {9.1, 9.1}, {8.9, 9.0},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := cluster.KMeans(data, 2, cluster.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	weights := res.Weights()
	// One cluster holds 3 of 7 points, the other 4 of 7.
	small, big := weights[0], weights[1]
	if small > big {
		small, big = big, small
	}
	fmt.Printf("%.2f %.2f same=%v\n", small, big,
		res.Assignments[0] == res.Assignments[1] && res.Assignments[3] == res.Assignments[4])
	// Output: 0.43 0.57 same=true
}
