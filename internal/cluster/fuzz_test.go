package cluster

// Fuzz target for the clustering-result decoder: arbitrary bytes must
// error, never panic or over-allocate, and accepted payloads must
// round-trip (the k-means resume path depends on it).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

func fuzzSeeds() map[string][][]byte {
	centers := stats.NewMatrix(2, 3)
	for i := range centers.Data {
		centers.Data[i] = float64(i)
	}
	r := &Result{
		K:           2,
		Assignments: []int{0, 1, 1},
		Centers:     centers,
		Sizes:       []int{1, 2},
		Inertia:     1.5,
		BIC:         -2,
	}
	good, _ := r.MarshalBinary()
	// Hostile assignment count far beyond the payload.
	bomb := []byte{2, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3}
	return map[string][][]byte{
		"FuzzDecodeResult": {good, good[:9], bomb, {}},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing the codec.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range fuzzSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzDecodeResult(f *testing.F) {
	for _, s := range fuzzSeeds()["FuzzDecodeResult"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Result
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := new(Result).UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
