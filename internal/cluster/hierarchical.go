package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Agglomerative hierarchical clustering with average linkage — the
// technique the paper's precursor methodology (Eeckhout, Vandierendonck &
// De Bosschere, "Workload design", PACT 2002) uses to pick representative
// program-input pairs. Useful here for building benchmark dendrograms over
// the rescaled-PCA space.

// Merge records one agglomeration step. Nodes 0..n-1 are the input rows
// (leaves); node n+i is the cluster created by step i.
type Merge struct {
	// A and B are the node ids merged at this step.
	A, B int
	// Distance is the average-linkage distance between A and B.
	Distance float64
	// Size is the number of leaves under the new node.
	Size int
}

// Linkage is the full merge history of a hierarchical clustering.
type Linkage struct {
	// Leaves is the number of input rows.
	Leaves int
	// Merges holds the n-1 agglomeration steps in execution order
	// (non-decreasing distance).
	Merges []Merge
}

// Hierarchical builds an average-linkage hierarchy over the rows of data.
func Hierarchical(data *stats.Matrix) (*Linkage, error) {
	n := data.Rows
	if n < 2 {
		return nil, fmt.Errorf("cluster: hierarchical clustering needs at least 2 rows, have %d", n)
	}

	// Pairwise distance matrix between active nodes (Lance-Williams
	// update keeps average linkage exact).
	type node struct {
		id   int
		size int
	}
	active := make([]node, n)
	for i := range active {
		active[i] = node{id: i, size: 1}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stats.EuclideanDistance(data.Row(i), data.Row(j))
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	link := &Linkage{Leaves: n}
	nextID := n
	for len(active) > 1 {
		// Find the closest active pair.
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if dist[i][j] < best {
					best = dist[i][j]
					bi, bj = i, j
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := node{id: nextID, size: a.size + b.size}
		nextID++
		link.Merges = append(link.Merges, Merge{A: a.id, B: b.id, Distance: best, Size: merged.size})

		// Average-linkage distance from the merged node to every other:
		// weighted mean of the two constituents' distances.
		wa := float64(a.size) / float64(merged.size)
		wb := float64(b.size) / float64(merged.size)
		for k := 0; k < len(active); k++ {
			if k == bi || k == bj {
				continue
			}
			dist[bi][k] = wa*dist[bi][k] + wb*dist[bj][k]
			dist[k][bi] = dist[bi][k]
		}
		// Replace slot bi with the merged node, delete slot bj.
		active[bi] = merged
		last := len(active) - 1
		active[bj] = active[last]
		for k := 0; k < len(active); k++ {
			dist[bj][k] = dist[last][k]
			dist[k][bj] = dist[k][last]
		}
		active = active[:last]
	}
	return link, nil
}

// Cut slices the hierarchy at a distance threshold and returns the leaf
// partition: cluster ids in [0, #clusters) indexed by leaf.
func (l *Linkage) Cut(threshold float64) []int {
	parent := make([]int, l.Leaves+len(l.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range l.Merges {
		if m.Distance > threshold {
			continue
		}
		id := l.Leaves + i
		parent[find(m.A)] = id
		parent[find(m.B)] = id
	}
	labels := make([]int, l.Leaves)
	next := 0
	seen := map[int]int{}
	for leaf := 0; leaf < l.Leaves; leaf++ {
		root := find(leaf)
		id, ok := seen[root]
		if !ok {
			id = next
			next++
			seen[root] = id
		}
		labels[leaf] = id
	}
	return labels
}

// CutK cuts the hierarchy into exactly k clusters (1 <= k <= leaves) by
// undoing the last k-1 merges.
func (l *Linkage) CutK(k int) ([]int, error) {
	if k < 1 || k > l.Leaves {
		return nil, fmt.Errorf("cluster: cannot cut %d leaves into %d clusters", l.Leaves, k)
	}
	if k == l.Leaves {
		out := make([]int, l.Leaves)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	// Keep all merges except the final k-1.
	keep := len(l.Merges) - (k - 1)
	sub := &Linkage{Leaves: l.Leaves, Merges: l.Merges[:keep]}
	return sub.Cut(math.Inf(1)), nil
}

// LeafOrder returns the leaves in dendrogram display order (left-to-right
// traversal of the merge tree).
func (l *Linkage) LeafOrder() []int {
	children := map[int][2]int{}
	for i, m := range l.Merges {
		children[l.Leaves+i] = [2]int{m.A, m.B}
	}
	var out []int
	var walk func(int)
	walk = func(id int) {
		if id < l.Leaves {
			out = append(out, id)
			return
		}
		c := children[id]
		walk(c[0])
		walk(c[1])
	}
	if len(l.Merges) == 0 {
		for i := 0; i < l.Leaves; i++ {
			out = append(out, i)
		}
		return out
	}
	walk(l.Leaves + len(l.Merges) - 1)
	return out
}

// CopheneticDistances returns the pairwise merge heights (the distance at
// which each leaf pair first shares a cluster), in the same upper-triangle
// order as stats.PairwiseDistances — useful for validating the hierarchy
// against the original distances.
func (l *Linkage) CopheneticDistances() []float64 {
	members := make([][]int, l.Leaves+len(l.Merges))
	for i := 0; i < l.Leaves; i++ {
		members[i] = []int{i}
	}
	coph := make([][]float64, l.Leaves)
	for i := range coph {
		coph[i] = make([]float64, l.Leaves)
	}
	for i, m := range l.Merges {
		for _, a := range members[m.A] {
			for _, b := range members[m.B] {
				coph[a][b] = m.Distance
				coph[b][a] = m.Distance
			}
		}
		id := l.Leaves + i
		members[id] = append(append([]int{}, members[m.A]...), members[m.B]...)
		sort.Ints(members[id])
	}
	var out []float64
	for i := 0; i < l.Leaves; i++ {
		for j := i + 1; j < l.Leaves; j++ {
			out = append(out, coph[i][j])
		}
	}
	return out
}
