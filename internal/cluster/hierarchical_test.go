package cluster

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
)

func hierData(t *testing.T) *stats.Matrix {
	t.Helper()
	// Three tight groups at 0, 10 and 100 on a line.
	m, err := stats.FromRows([][]float64{
		{0}, {0.1}, {0.2},
		{10}, {10.1},
		{100}, {100.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHierarchicalMergeOrder(t *testing.T) {
	link, err := Hierarchical(hierData(t))
	if err != nil {
		t.Fatal(err)
	}
	if link.Leaves != 7 || len(link.Merges) != 6 {
		t.Fatalf("linkage shape: %d leaves, %d merges", link.Leaves, len(link.Merges))
	}
	// Average linkage on well-separated groups merges within groups
	// first: distances must be non-decreasing.
	for i := 1; i < len(link.Merges); i++ {
		if link.Merges[i].Distance < link.Merges[i-1].Distance-1e-9 {
			t.Fatalf("merge distances not monotone: %v", link.Merges)
		}
	}
	if last := link.Merges[len(link.Merges)-1]; last.Size != 7 {
		t.Fatalf("final merge covers %d leaves", last.Size)
	}
}

func TestHierarchicalCutRecoversGroups(t *testing.T) {
	link, err := Hierarchical(hierData(t))
	if err != nil {
		t.Fatal(err)
	}
	labels := link.Cut(5) // within-group distances < 1, between > 9
	groups := map[int][]int{}
	for leaf, c := range labels {
		groups[c] = append(groups[c], leaf)
	}
	if len(groups) != 3 {
		t.Fatalf("cut found %d groups: %v", len(groups), labels)
	}
	var sizes []int
	for _, g := range groups {
		sizes = append(sizes, len(g))
	}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 3 {
		t.Fatalf("group sizes %v, want [2 2 3]", sizes)
	}
}

func TestHierarchicalCutK(t *testing.T) {
	link, err := Hierarchical(hierData(t))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 7; k++ {
		labels, err := link.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[int]bool{}
		for _, c := range labels {
			distinct[c] = true
		}
		if len(distinct) != k {
			t.Fatalf("CutK(%d) produced %d clusters", k, len(distinct))
		}
	}
	if _, err := link.CutK(0); err == nil {
		t.Fatal("CutK(0) accepted")
	}
	if _, err := link.CutK(8); err == nil {
		t.Fatal("CutK beyond leaves accepted")
	}
}

func TestHierarchicalLeafOrder(t *testing.T) {
	link, err := Hierarchical(hierData(t))
	if err != nil {
		t.Fatal(err)
	}
	order := link.LeafOrder()
	if len(order) != 7 {
		t.Fatalf("leaf order has %d entries", len(order))
	}
	seen := map[int]bool{}
	for _, l := range order {
		if l < 0 || l >= 7 || seen[l] {
			t.Fatalf("leaf order invalid: %v", order)
		}
		seen[l] = true
	}
	// Dendrogram order keeps each tight group contiguous.
	pos := map[int]int{}
	for i, l := range order {
		pos[l] = i
	}
	groups := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	for _, g := range groups {
		lo, hi := 7, -1
		for _, leaf := range g {
			if pos[leaf] < lo {
				lo = pos[leaf]
			}
			if pos[leaf] > hi {
				hi = pos[leaf]
			}
		}
		if hi-lo != len(g)-1 {
			t.Fatalf("group %v not contiguous in order %v", g, order)
		}
	}
}

func TestCopheneticCorrelation(t *testing.T) {
	data := hierData(t)
	link, err := Hierarchical(data)
	if err != nil {
		t.Fatal(err)
	}
	coph := link.CopheneticDistances()
	orig := stats.PairwiseDistances(data)
	if len(coph) != len(orig) {
		t.Fatalf("cophenetic length %d vs %d", len(coph), len(orig))
	}
	// For clean group structure the cophenetic correlation is very high.
	if r := stats.Pearson(coph, orig); r < 0.95 {
		t.Fatalf("cophenetic correlation %v", r)
	}
}

func TestHierarchicalNeedsTwoRows(t *testing.T) {
	if _, err := Hierarchical(stats.NewMatrix(1, 2)); err == nil {
		t.Fatal("single-row hierarchy accepted")
	}
}

func TestHierarchicalTwoRows(t *testing.T) {
	m, _ := stats.FromRows([][]float64{{0, 0}, {3, 4}})
	link, err := Hierarchical(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(link.Merges) != 1 || math.Abs(link.Merges[0].Distance-5) > 1e-9 {
		t.Fatalf("two-row linkage wrong: %+v", link.Merges)
	}
}
