// Package cluster implements the phase-clustering step of the methodology:
// k-means (with k-means++ seeding and multiple random restarts) scored by
// the Bayesian Information Criterion, plus cluster representatives, weights
// and coverage accounting.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// Options configures a k-means run.
type Options struct {
	// MaxIters bounds Lloyd iterations per restart (default 100).
	MaxIters int
	// Restarts is how many random initializations to evaluate; the
	// clustering with the highest BIC is kept (default 3).
	Restarts int
	// Seed makes the run deterministic.
	Seed int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxIters <= 0 {
		out.MaxIters = 100
	}
	if out.Restarts <= 0 {
		out.Restarts = 3
	}
	return out
}

// Result is a fitted clustering.
type Result struct {
	// K is the number of clusters.
	K int
	// Assignments maps each data row to its cluster.
	Assignments []int
	// Centers is the K x dims matrix of cluster centroids.
	Centers *stats.Matrix
	// Sizes is the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// BIC is the Bayesian Information Criterion score of the clustering
	// under a spherical-Gaussian mixture model (higher is better).
	BIC float64
}

// KMeans clusters the rows of data into k clusters.
func KMeans(data *stats.Matrix, k int, opts Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d < 1", k)
	}
	if data.Rows < k {
		return nil, fmt.Errorf("cluster: %d rows cannot form %d clusters", data.Rows, k)
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	var best *Result
	for r := 0; r < o.Restarts; r++ {
		res := lloyd(data, k, o.MaxIters, rng)
		res.BIC = bic(data, res)
		if best == nil || res.BIC > best.BIC {
			best = res
		}
	}
	return best, nil
}

// lloyd runs one k-means fit with k-means++ seeding.
func lloyd(data *stats.Matrix, k, maxIters int, rng *rand.Rand) *Result {
	n, d := data.Rows, data.Cols
	centers := seedPlusPlus(data, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	sums := stats.NewMatrix(k, d)

	for iter := 0; iter < maxIters; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			c := nearestCenter(data.Row(i), centers)
			if c != assign[i] {
				assign[i] = c
				changed++
			}
		}
		if changed == 0 && iter > 0 {
			break
		}
		// Recompute centers.
		for i := range sums.Data {
			sums.Data[i] = 0
		}
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			sizes[c]++
			row := data.Row(i)
			dst := sums.Row(c)
			for j, v := range row {
				dst[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest
				// from its current center.
				far, farDist := 0, -1.0
				for i := 0; i < n; i++ {
					dd := stats.EuclideanDistance(data.Row(i), centers.Row(assign[i]))
					if dd > farDist {
						far, farDist = i, dd
					}
				}
				copy(centers.Row(c), data.Row(far))
				continue
			}
			src := sums.Row(c)
			dst := centers.Row(c)
			inv := 1 / float64(sizes[c])
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
	}

	// Final assignment pass and inertia.
	for i := range sizes {
		sizes[i] = 0
	}
	var inertia float64
	for i := 0; i < n; i++ {
		c := nearestCenter(data.Row(i), centers)
		assign[i] = c
		sizes[c]++
		dd := stats.EuclideanDistance(data.Row(i), centers.Row(c))
		inertia += dd * dd
	}
	return &Result{K: k, Assignments: assign, Centers: centers, Sizes: sizes, Inertia: inertia}
}

// seedPlusPlus selects k initial centers with the k-means++ D² weighting.
func seedPlusPlus(data *stats.Matrix, k int, rng *rand.Rand) *stats.Matrix {
	n, d := data.Rows, data.Cols
	centers := stats.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), data.Row(first))

	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dd := stats.EuclideanDistance(data.Row(i), centers.Row(0))
		dist2[i] = dd * dd
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		idx := 0
		if total > 0 {
			x := rng.Float64() * total
			for i, v := range dist2 {
				if x < v {
					idx = i
					break
				}
				x -= v
			}
		} else {
			idx = rng.Intn(n)
		}
		copy(centers.Row(c), data.Row(idx))
		for i := 0; i < n; i++ {
			dd := stats.EuclideanDistance(data.Row(i), centers.Row(c))
			if d2 := dd * dd; d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centers
}

func nearestCenter(x []float64, centers *stats.Matrix) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < centers.Rows; c++ {
		row := centers.Row(c)
		var s float64
		for j := range x {
			d := x[j] - row[j]
			s += d * d
			if s >= bestD {
				break
			}
		}
		if s < bestD {
			best, bestD = c, s
		}
	}
	return best
}

// bic scores a clustering with the spherical-Gaussian Bayesian Information
// Criterion (Pelleg & Moore's X-means formulation): higher is better. The
// score trades goodness of fit against the number of clusters, as the
// paper's section 2.6 describes.
func bic(data *stats.Matrix, res *Result) float64 {
	r := float64(data.Rows)
	m := float64(data.Cols)
	k := float64(res.K)
	if data.Rows <= res.K {
		return math.Inf(-1)
	}
	sigma2 := res.Inertia / (m * (r - k))
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	var loglik float64
	for _, size := range res.Sizes {
		if size > 0 {
			rn := float64(size)
			loglik += rn * math.Log(rn/r)
		}
	}
	loglik += -(r*m/2)*math.Log(2*math.Pi*sigma2) - m*(r-k)/2
	params := (k - 1) + m*k + 1
	return loglik - params/2*math.Log(r)
}

// Representatives returns, for each cluster, the index of the data row
// closest to the cluster center — the paper's per-cluster representative
// instruction interval.
func (r *Result) Representatives(data *stats.Matrix) []int {
	reps := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range reps {
		reps[c] = -1
		best[c] = math.Inf(1)
	}
	for i := 0; i < data.Rows; i++ {
		c := r.Assignments[i]
		d := stats.EuclideanDistance(data.Row(i), r.Centers.Row(c))
		if d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}

// Weights returns each cluster's fraction of the data set.
func (r *Result) Weights() []float64 {
	out := make([]float64, r.K)
	total := float64(len(r.Assignments))
	if total == 0 {
		return out
	}
	for c, s := range r.Sizes {
		out[c] = float64(s) / total
	}
	return out
}

// ByWeight returns cluster indices sorted by decreasing weight.
func (r *Result) ByWeight() []int {
	idx := make([]int, r.K)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.Sizes[idx[a]] > r.Sizes[idx[b]] })
	return idx
}

// AvgWithinClusterDistance returns the mean distance of points to their
// cluster center — the "variability within each cluster" of the paper's
// coverage/variability trade-off.
func (r *Result) AvgWithinClusterDistance(data *stats.Matrix) float64 {
	if data.Rows == 0 {
		return 0
	}
	var total float64
	for i := 0; i < data.Rows; i++ {
		total += stats.EuclideanDistance(data.Row(i), r.Centers.Row(r.Assignments[i]))
	}
	return total / float64(data.Rows)
}

// SelectK runs k-means for every k in [kmin, kmax] and picks the result
// with the SimPoint heuristic (Sherwood et al.): the smallest k whose BIC
// score reaches at least frac (typically 0.9) of the way from the worst to
// the best BIC observed. Raw BIC maximization is too conservative on small
// samples; the heuristic trades a little fit for far fewer clusters.
func SelectK(data *stats.Matrix, kmin, kmax int, frac float64, opts Options) (*Result, error) {
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("cluster: invalid k range [%d,%d]", kmin, kmax)
	}
	if kmax >= data.Rows {
		kmax = data.Rows - 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("cluster: BIC fraction %v out of [0,1]", frac)
	}
	results := make([]*Result, 0, kmax-kmin+1)
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := kmin; k <= kmax; k++ {
		res, err := KMeans(data, k, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
		if res.BIC < lo {
			lo = res.BIC
		}
		if res.BIC > hi {
			hi = res.BIC
		}
	}
	if hi <= lo {
		return results[0], nil // all scores equal: smallest k
	}
	threshold := lo + frac*(hi-lo)
	for _, res := range results {
		if res.BIC >= threshold {
			return res, nil
		}
	}
	return results[len(results)-1], nil
}
