// Package cluster implements the phase-clustering step of the methodology:
// k-means (with k-means++ seeding and multiple random restarts) scored by
// the Bayesian Information Criterion, plus cluster representatives, weights
// and coverage accounting.
//
// Clustering is parallel and worker-count deterministic: restarts, Lloyd
// assignment passes and the SelectK model sweep spread over par workers,
// with per-restart seeds derived by hashing (never a shared *rand.Rand)
// and floating-point reductions performed in a fixed chunk order, so the
// Result is byte-identical whether Options.Workers is 1 or 64.
//
// The assignment inner loop — the O(n·k·d) cost center of the whole
// analysis — runs on the shared internal/kernel primitives and a
// Hamerly-style bounded Lloyd iteration: each row carries an upper bound
// on the distance to its assigned center and a lower bound on the
// distance to every other center, both widened by how far the centers
// moved, and rows whose bounds prove the assignment unchanged skip the
// scan over centers entirely. Bound decisions are per-row (never shared
// across rows or workers) and the first and final passes are always
// exact full scans, so the fit stays deterministic at any worker count.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

// Options configures a k-means run.
type Options struct {
	// MaxIters bounds Lloyd iterations per restart (default 100).
	MaxIters int
	// Restarts is how many random initializations to evaluate; the
	// clustering with the highest BIC is kept (default 3).
	Restarts int
	// Seed makes the run deterministic. Every seed — including 0 — is a
	// valid, distinct seed: per-restart randomness is derived from it
	// with a SplitMix64-style hash (par.DeriveSeed), so there is no
	// "unseeded" sentinel at this layer. (core.Config.Validate treats a
	// zero Options.Seed as "inherit the pipeline seed" before the value
	// reaches this package; that inheritance is documented there.)
	Seed int64
	// Workers bounds clustering parallelism; values < 1 mean GOMAXPROCS.
	// The result is identical for any worker count.
	Workers int
	// Metrics, when non-nil, receives clustering counters
	// (kmeans.restarts, kmeans.lloyd_iters, kmeans.selectk_fits).
	// Metrics never influence the fit, so determinism is unaffected.
	Metrics *obs.Metrics `json:"-"`
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxIters <= 0 {
		out.MaxIters = 100
	}
	if out.Restarts <= 0 {
		out.Restarts = 3
	}
	out.Workers = par.Workers(out.Workers)
	return out
}

// Result is a fitted clustering.
type Result struct {
	// K is the number of clusters.
	K int
	// Assignments maps each data row to its cluster.
	Assignments []int
	// Centers is the K x dims matrix of cluster centroids.
	Centers *stats.Matrix
	// Sizes is the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// BIC is the Bayesian Information Criterion score of the clustering
	// under a spherical-Gaussian mixture model (higher is better).
	BIC float64
}

// lloydScratch is the pooled per-restart working set: assignment and
// bound arrays, the center matrices and the accumulator matrix. Every
// field is fully (re)initialized by lloyd before it is read, so a
// recycled scratch can never leak state between restarts — which is
// what keeps pooled runs bit-identical to fresh-allocation runs.
type lloydScratch struct {
	assign     []int
	dist2      []float64 // exact d² to the assigned center where known
	upper      []float64 // Hamerly upper bound on d(x, assigned center)
	lower      []float64 // Hamerly lower bound on d(x, any other center)
	centerNorm []float64
	delta      []float64 // per-center move distance of the last update
	centersT   []float64 // centers transposed to column-major for DotCols
	sizes      []int
	sums       *stats.Matrix
	centers    *stats.Matrix
	prev       *stats.Matrix // centers before the last update
}

var scratchPool sync.Pool

// dotsPool recycles the k-sized per-worker dot-product scratch used by
// the column scans; each ForChunks chunk takes one for its rows. The
// pool stores *dotsBuf so the Get/Put round trip never allocates.
var dotsPool sync.Pool

type dotsBuf struct{ s []float64 }

func getDots(k int) *dotsBuf {
	db, _ := dotsPool.Get().(*dotsBuf)
	if db == nil {
		db = &dotsBuf{}
	}
	db.s = growF64(db.s, k)
	return db
}

// The grow helpers live in internal/kernel (slices) and stats
// (matrices) — shared with the stats workspace instead of duplicated
// here. Thin aliases keep the call sites short.
func growF64(s []float64, n int) []float64 { return kernel.GrowFloats(s, n) }

func growInts(s []int, n int) []int { return kernel.GrowInts(s, n) }

func growMatrix(m *stats.Matrix, rows, cols int) *stats.Matrix {
	return stats.GrowMatrix(m, rows, cols)
}

// getScratch returns a pooled scratch resized for an (n rows, k
// clusters, d dims) restart. Contents are unspecified.
func getScratch(n, k, d int) *lloydScratch {
	sc, _ := scratchPool.Get().(*lloydScratch)
	if sc == nil {
		sc = &lloydScratch{}
	}
	sc.assign = growInts(sc.assign, n)
	sc.dist2 = growF64(sc.dist2, n)
	sc.upper = growF64(sc.upper, n)
	sc.lower = growF64(sc.lower, n)
	sc.centerNorm = growF64(sc.centerNorm, k)
	sc.delta = growF64(sc.delta, k)
	sc.centersT = growF64(sc.centersT, k*d)
	sc.sizes = growInts(sc.sizes, k)
	sc.sums = growMatrix(sc.sums, k, d)
	sc.centers = growMatrix(sc.centers, k, d)
	sc.prev = growMatrix(sc.prev, k, d)
	return sc
}

// KMeans clusters the rows of data into k clusters. Restarts run
// concurrently, each on a sub-seed derived from Options.Seed, and the
// best-BIC restart wins with ties broken by restart index — so the result
// does not depend on Options.Workers.
func KMeans(data *stats.Matrix, k int, opts Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d < 1", k)
	}
	if data.Rows < k {
		return nil, fmt.Errorf("cluster: %d rows cannot form %d clusters", data.Rows, k)
	}
	o := opts.withDefaults()

	o.Metrics.Add("kmeans.restarts", int64(o.Restarts))
	iters := o.Metrics.Counter("kmeans.lloyd_iters")

	// |x|² per data row, identical across restarts: computed once and
	// shared read-only by every restart's assignment passes.
	dataNorm := make([]float64, data.Rows)
	kernel.RowSquaredNorms(data.Data, data.Rows, data.Cols, dataNorm)

	results := make([]*Result, o.Restarts)
	scratches := make([]*lloydScratch, o.Restarts)
	par.For(o.Workers, o.Restarts, func(r int) {
		rng := rand.New(rand.NewSource(par.DeriveSeed(o.Seed, uint64(r))))
		sc := getScratch(data.Rows, k, data.Cols)
		scratches[r] = sc
		res := lloyd(data, k, o.MaxIters, o.Workers, rng, iters, dataNorm, sc)
		res.BIC = bic(data, res)
		results[r] = res
	})

	best := results[0]
	for _, res := range results[1:] {
		if res.BIC > best.BIC {
			best = res
		}
	}
	// The winning restart's buffers belong to a pooled scratch; copy them
	// out before every scratch goes back to the pool.
	out := &Result{
		K:           best.K,
		Assignments: append([]int(nil), best.Assignments...),
		Centers:     best.Centers.Clone(),
		Sizes:       append([]int(nil), best.Sizes...),
		Inertia:     best.Inertia,
		BIC:         best.BIC,
	}
	for _, sc := range scratches {
		scratchPool.Put(sc)
	}
	return out, nil
}

// Refine warm-starts a single bounded Lloyd fit from the given initial
// centroids (k = initial.Rows) instead of k-means++ seeding and random
// restarts — the incremental engine's "the dataset grew a little, the
// old centroids are almost right" path. The fit runs the exact same
// lloydIterate core as KMeans (Hamerly bounds, deterministic
// empty-cluster reseeding, pooled scratch), so it is deterministic and
// worker-count independent.
//
// The second return value is the centroid shift: the largest distance
// any centroid moved from its initial position, normalized by the root
// mean squared row norm of data (so it is comparable across datasets;
// un-normalized when that scale is zero). Callers use it as the
// warm-start trust gate — a shift above their tolerance means the
// cached centroids no longer describe the grown dataset and a full
// restart-searched KMeans is warranted.
func Refine(data *stats.Matrix, initial *stats.Matrix, opts Options) (*Result, float64, error) {
	if initial == nil || initial.Rows < 1 {
		return nil, 0, fmt.Errorf("cluster: refine needs at least 1 initial centroid")
	}
	k := initial.Rows
	if initial.Cols != data.Cols {
		return nil, 0, fmt.Errorf("cluster: refining %d-dim data from %d-dim centroids", data.Cols, initial.Cols)
	}
	if data.Rows < k {
		return nil, 0, fmt.Errorf("cluster: %d rows cannot form %d clusters", data.Rows, k)
	}
	o := opts.withDefaults()
	o.Metrics.Add("kmeans.refines", 1)
	iters := o.Metrics.Counter("kmeans.lloyd_iters")

	dataNorm := make([]float64, data.Rows)
	kernel.RowSquaredNorms(data.Data, data.Rows, data.Cols, dataNorm)

	sc := getScratch(data.Rows, k, data.Cols)
	copy(sc.centers.Data, initial.Data)
	res := lloydIterate(data, k, o.MaxIters, o.Workers, iters, dataNorm, sc)
	res.BIC = bic(data, res)

	var maxMove float64
	for c := 0; c < k; c++ {
		if dc := kernel.Distance(initial.Row(c), res.Centers.Row(c)); dc > maxMove {
			maxMove = dc
		}
	}
	var scale float64
	for _, v := range dataNorm {
		scale += v
	}
	scale = math.Sqrt(scale / float64(data.Rows))
	shift := maxMove
	if scale > 0 {
		shift = maxMove / scale
	}

	out := &Result{
		K:           res.K,
		Assignments: append([]int(nil), res.Assignments...),
		Centers:     res.Centers.Clone(),
		Sizes:       append([]int(nil), res.Sizes...),
		Inertia:     res.Inertia,
		BIC:         res.BIC,
	}
	scratchPool.Put(sc)
	return out, shift, nil
}

// assignFull is the exact Lloyd assignment pass: every row scans every
// center (kernel.Nearest2Centers, first center wins ties), records its
// assignment, exact squared distance, and the Hamerly bounds (exact
// distance to the winner, exact distance to the runner-up). It returns
// how many assignments changed. Rows are processed in fixed-grain
// chunks, each row writing only its own slots, so the output is
// identical for any worker count.
func assignFull(data, centers *stats.Matrix, dataNorm, centerNorm []float64, sc *lloydScratch, workers int) int {
	n := data.Rows
	changedParts := make([]int, par.Chunks(n, 0))
	par.ForChunks(workers, n, 0, func(chunk, lo, hi int) {
		db := getDots(len(centerNorm))
		changed := 0
		for i := lo; i < hi; i++ {
			x := data.Row(i)
			best, bestG, secondG := kernel.Nearest2CentersCols(x, sc.centersT, centerNorm, db.s)
			// g differs from |x-c|² by the constant |x|²; the argmin is
			// the same and the subtraction is deferred. Cancellation can
			// push an exact 0 slightly negative, hence the clamps.
			d2 := dataNorm[i] + bestG
			if d2 < 0 {
				d2 = 0
			}
			s2 := dataNorm[i] + secondG
			if s2 < 0 {
				s2 = 0
			}
			if best != sc.assign[i] {
				sc.assign[i] = best
				changed++
			}
			sc.dist2[i] = d2
			sc.upper[i] = math.Sqrt(d2)
			sc.lower[i] = math.Sqrt(s2)
		}
		changedParts[chunk] = changed
		dotsPool.Put(db)
	})
	total := 0
	for _, c := range changedParts {
		total += c
	}
	return total
}

// assignBounded is the Hamerly-bounded assignment pass. Each row first
// widens its bounds by the center movement (upper by the assigned
// center's move, lower by the largest move anywhere); if the upper
// bound stays below the lower bound the assignment provably cannot
// change and the row skips the scan. Otherwise the upper bound is
// tightened to the exact current distance and re-tested, and only rows
// that still overlap pay for the full scan. Every decision is a pure
// per-row function of that row's own state, so the pass is
// deterministic for any worker count.
func assignBounded(data, centers *stats.Matrix, dataNorm, centerNorm []float64, sc *lloydScratch, deltaMax float64, workers int) int {
	n, d := data.Rows, data.Cols
	changedParts := make([]int, par.Chunks(n, 0))
	cdata := centers.Data
	par.ForChunks(workers, n, 0, func(chunk, lo, hi int) {
		db := getDots(len(centerNorm))
		changed := 0
		for i := lo; i < hi; i++ {
			c := sc.assign[i]
			u := sc.upper[i] + sc.delta[c]
			l := sc.lower[i] - deltaMax
			if u <= l {
				sc.upper[i], sc.lower[i] = u, l
				continue
			}
			x := data.Row(i)
			// Tighten the upper bound to the exact distance and re-test.
			g := centerNorm[c] - 2*kernel.Dot(x, cdata[c*d:(c+1)*d])
			d2 := dataNorm[i] + g
			if d2 < 0 {
				d2 = 0
			}
			u = math.Sqrt(d2)
			if u <= l {
				sc.upper[i], sc.lower[i] = u, l
				sc.dist2[i] = d2
				continue
			}
			best, bestG, secondG := kernel.Nearest2CentersCols(x, sc.centersT, centerNorm, db.s)
			bd2 := dataNorm[i] + bestG
			if bd2 < 0 {
				bd2 = 0
			}
			s2 := dataNorm[i] + secondG
			if s2 < 0 {
				s2 = 0
			}
			if best != c {
				sc.assign[i] = best
				changed++
			}
			sc.dist2[i] = bd2
			sc.upper[i] = math.Sqrt(bd2)
			sc.lower[i] = math.Sqrt(s2)
		}
		changedParts[chunk] = changed
		dotsPool.Put(db)
	})
	total := 0
	for _, c := range changedParts {
		total += c
	}
	return total
}

// exactAssignedDist2 refreshes dist2 with the exact squared distance of
// every row to its currently assigned center — needed before an
// empty-cluster reseed, where bounded rows may hold stale values.
func exactAssignedDist2(data, centers *stats.Matrix, dataNorm, centerNorm []float64, sc *lloydScratch, workers int) {
	n, d := data.Rows, data.Cols
	cdata := centers.Data
	par.ForChunks(workers, n, 0, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := sc.assign[i]
			x := data.Row(i)
			d2 := dataNorm[i] + centerNorm[c] - 2*kernel.Dot(x, cdata[c*d:(c+1)*d])
			if d2 < 0 {
				d2 = 0
			}
			sc.dist2[i] = d2
		}
	})
}

// lloyd runs one k-means fit with k-means++ seeding. Seeding and center
// updates are serial (they are O(n·d), dwarfed by the O(n·k·d) assignment
// passes, and seeding is inherently sequential in rng consumption); the
// assignment and inertia passes fan out over workers. iters (possibly a
// nil no-op sink) receives the number of Lloyd iterations executed.
// dataNorm carries the shared row-norm cache; sc supplies every working
// buffer, and the returned Result aliases sc (KMeans copies the winner
// out before recycling).
func lloyd(data *stats.Matrix, k, maxIters, workers int, rng *rand.Rand, iters *obs.Counter, dataNorm []float64, sc *lloydScratch) *Result {
	seedPlusPlus(data, k, rng, sc.centers, sc.dist2)
	return lloydIterate(data, k, maxIters, workers, iters, dataNorm, sc)
}

// lloydIterate is the seeding-independent core of lloyd: it iterates to
// convergence from whatever centers sc.centers already holds. Sharing it
// between the cold k-means++ path and the warm-start Refine path keeps
// the two bit-identical whenever they start from the same centers.
func lloydIterate(data *stats.Matrix, k, maxIters, workers int, iters *obs.Counter, dataNorm []float64, sc *lloydScratch) *Result {
	n, d := data.Rows, data.Cols
	centers := sc.centers
	for i := range sc.assign {
		sc.assign[i] = -1
	}
	centerNorm := sc.centerNorm
	// The column scans need the centers' norms and the transposed
	// (column-major) layout refreshed together after every move.
	updateCenterNorms := func() {
		kernel.RowSquaredNorms(centers.Data, k, d, centerNorm)
		kernel.Transpose(centers.Data, k, d, sc.centersT)
	}
	updateCenterNorms()

	var deltaMax float64
	for iter := 0; iter < maxIters; iter++ {
		var changed int
		if iter == 0 {
			changed = assignFull(data, centers, dataNorm, centerNorm, sc, workers)
		} else {
			changed = assignBounded(data, centers, dataNorm, centerNorm, sc, deltaMax, workers)
		}
		iters.Inc()
		if changed == 0 && iter > 0 {
			break
		}
		// Recompute centers.
		for i := range sc.sums.Data {
			sc.sums.Data[i] = 0
		}
		for i := range sc.sizes {
			sc.sizes[i] = 0
		}
		for i := 0; i < n; i++ {
			c := sc.assign[i]
			sc.sizes[c]++
			kernel.Add(sc.sums.Row(c), data.Row(i))
		}
		hasEmpty := false
		for _, s := range sc.sizes {
			if s == 0 {
				hasEmpty = true
				break
			}
		}
		if hasEmpty {
			// Reseeds pick the point farthest from its assigned center;
			// bounded rows may hold stale distances, so refresh them
			// against the centers the assignment pass used.
			exactAssignedDist2(data, centers, dataNorm, centerNorm, sc, workers)
		}
		copy(sc.prev.Data, centers.Data)
		for c := 0; c < k; c++ {
			if sc.sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its assigned center. Zeroing the winner keeps a second
				// empty cluster from grabbing the same point.
				far, farDist := 0, -1.0
				for i, dd := range sc.dist2 {
					if dd > farDist {
						far, farDist = i, dd
					}
				}
				copy(centers.Row(c), data.Row(far))
				sc.dist2[far] = 0
				continue
			}
			src := sc.sums.Row(c)
			dst := centers.Row(c)
			inv := 1 / float64(sc.sizes[c])
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
		// How far every center moved, for the next pass's bound updates.
		deltaMax = 0
		for c := 0; c < k; c++ {
			dc := kernel.Distance(sc.prev.Row(c), centers.Row(c))
			sc.delta[c] = dc
			if dc > deltaMax {
				deltaMax = dc
			}
		}
		updateCenterNorms()
	}

	// Final exact assignment pass and inertia, the latter reduced from
	// per-chunk partials in chunk order (worker-count independent). The
	// full scan also guarantees the returned assignments and distances
	// are exact regardless of how the bounds steered the iteration.
	assignFull(data, centers, dataNorm, centerNorm, sc, workers)
	for i := range sc.sizes {
		sc.sizes[i] = 0
	}
	for _, c := range sc.assign {
		sc.sizes[c]++
	}
	inertiaParts := make([]float64, par.Chunks(n, 0))
	par.ForChunks(workers, n, 0, func(chunk, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += sc.dist2[i]
		}
		inertiaParts[chunk] = s
	})
	var inertia float64
	for _, p := range inertiaParts {
		inertia += p
	}
	return &Result{K: k, Assignments: sc.assign, Centers: centers, Sizes: sc.sizes, Inertia: inertia}
}

// seedPlusPlus selects k initial centers with the k-means++ D² weighting,
// writing them into centers and using dist2 as its D² working array.
func seedPlusPlus(data *stats.Matrix, k int, rng *rand.Rand, centers *stats.Matrix, dist2 []float64) {
	n := data.Rows
	first := rng.Intn(n)
	copy(centers.Row(0), data.Row(first))

	for i := 0; i < n; i++ {
		dist2[i] = kernel.SquaredDistance(data.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2[:n] {
			total += v
		}
		idx := 0
		if total > 0 {
			x := rng.Float64() * total
			for i, v := range dist2[:n] {
				if x < v {
					idx = i
					break
				}
				x -= v
			}
		} else {
			idx = rng.Intn(n)
		}
		copy(centers.Row(c), data.Row(idx))
		for i := 0; i < n; i++ {
			if d2 := kernel.SquaredDistance(data.Row(i), centers.Row(c)); d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
}

// bic scores a clustering with the spherical-Gaussian Bayesian Information
// Criterion (Pelleg & Moore's X-means formulation): higher is better. The
// score trades goodness of fit against the number of clusters, as the
// paper's section 2.6 describes.
func bic(data *stats.Matrix, res *Result) float64 {
	r := float64(data.Rows)
	m := float64(data.Cols)
	k := float64(res.K)
	if data.Rows <= res.K {
		return math.Inf(-1)
	}
	sigma2 := res.Inertia / (m * (r - k))
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	var loglik float64
	for _, size := range res.Sizes {
		if size > 0 {
			rn := float64(size)
			loglik += rn * math.Log(rn/r)
		}
	}
	loglik += -(r*m/2)*math.Log(2*math.Pi*sigma2) - m*(r-k)/2
	params := (k - 1) + m*k + 1
	return loglik - params/2*math.Log(r)
}

// Representatives returns, for each cluster, the index of the data row
// closest to the cluster center — the paper's per-cluster representative
// instruction interval. It uses the same cached-norm expansion as the
// assignment kernel (|x-c|² = |x|² - 2·x·c + |c|², squared distances
// compare monotonically) instead of a per-row euclid call.
func (r *Result) Representatives(data *stats.Matrix) []int {
	reps := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range reps {
		reps[c] = -1
		best[c] = math.Inf(1)
	}
	centerNorm := make([]float64, r.K)
	kernel.RowSquaredNorms(r.Centers.Data, r.K, r.Centers.Cols, centerNorm)
	for i := 0; i < data.Rows; i++ {
		c := r.Assignments[i]
		row := data.Row(i)
		d2 := kernel.SquaredNorm(row) + centerNorm[c] - 2*kernel.Dot(row, r.Centers.Row(c))
		if d2 < 0 {
			d2 = 0
		}
		if d2 < best[c] {
			best[c] = d2
			reps[c] = i
		}
	}
	return reps
}

// Weights returns each cluster's fraction of the data set.
func (r *Result) Weights() []float64 {
	out := make([]float64, r.K)
	total := float64(len(r.Assignments))
	if total == 0 {
		return out
	}
	for c, s := range r.Sizes {
		out[c] = float64(s) / total
	}
	return out
}

// ByWeight returns cluster indices sorted by decreasing weight.
func (r *Result) ByWeight() []int {
	idx := make([]int, r.K)
	for i := range idx {
		idx[i] = i
	}
	// sort.Slice is unstable, so equal-size clusters need an explicit
	// tie-break on the cluster index to keep the prominent-phase order
	// (and everything derived from it) deterministic.
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := r.Sizes[idx[a]], r.Sizes[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// AvgWithinClusterDistance returns the mean distance of points to their
// cluster center — the "variability within each cluster" of the paper's
// coverage/variability trade-off. Like Representatives, it reuses cached
// center norms rather than recomputing a euclid difference per row.
func (r *Result) AvgWithinClusterDistance(data *stats.Matrix) float64 {
	if data.Rows == 0 {
		return 0
	}
	centerNorm := make([]float64, r.K)
	kernel.RowSquaredNorms(r.Centers.Data, r.K, r.Centers.Cols, centerNorm)
	var total float64
	for i := 0; i < data.Rows; i++ {
		c := r.Assignments[i]
		row := data.Row(i)
		d2 := kernel.SquaredNorm(row) + centerNorm[c] - 2*kernel.Dot(row, r.Centers.Row(c))
		if d2 < 0 {
			d2 = 0
		}
		total += math.Sqrt(d2)
	}
	return total / float64(data.Rows)
}

// SelectK runs k-means for every k in [kmin, kmax] and picks the result
// with the SimPoint heuristic (Sherwood et al.): the smallest k whose BIC
// score reaches at least frac (typically 0.9) of the way from the worst to
// the best BIC observed. Raw BIC maximization is too conservative on small
// samples; the heuristic trades a little fit for far fewer clusters.
//
// The k range is evaluated concurrently (this is the inner loop of the
// per-benchmark timeline analyses); each k's fit is independent and
// deterministic, and the winner is chosen by a serial scan in ascending k,
// so the selection does not depend on opts.Workers.
func SelectK(data *stats.Matrix, kmin, kmax int, frac float64, opts Options) (*Result, error) {
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("cluster: invalid k range [%d,%d]", kmin, kmax)
	}
	if kmax >= data.Rows {
		kmax = data.Rows - 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("cluster: BIC fraction %v out of [0,1]", frac)
	}
	results := make([]*Result, kmax-kmin+1)
	errs := make([]error, len(results))
	opts.Metrics.Add("kmeans.selectk_fits", int64(len(results)))
	par.For(par.Workers(opts.Workers), len(results), func(i int) {
		results[i], errs[i] = KMeans(data, kmin+i, opts)
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, res := range results {
		if res.BIC < lo {
			lo = res.BIC
		}
		if res.BIC > hi {
			hi = res.BIC
		}
	}
	if hi <= lo {
		return results[0], nil // all scores equal: smallest k
	}
	threshold := lo + frac*(hi-lo)
	for _, res := range results {
		if res.BIC >= threshold {
			return res, nil
		}
	}
	return results[len(results)-1], nil
}
