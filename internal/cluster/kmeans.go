// Package cluster implements the phase-clustering step of the methodology:
// k-means (with k-means++ seeding and multiple random restarts) scored by
// the Bayesian Information Criterion, plus cluster representatives, weights
// and coverage accounting.
//
// Clustering is parallel and worker-count deterministic: restarts, Lloyd
// assignment passes and the SelectK model sweep spread over par workers,
// with per-restart seeds derived by hashing (never a shared *rand.Rand)
// and floating-point reductions performed in a fixed chunk order, so the
// Result is byte-identical whether Options.Workers is 1 or 64.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

// Options configures a k-means run.
type Options struct {
	// MaxIters bounds Lloyd iterations per restart (default 100).
	MaxIters int
	// Restarts is how many random initializations to evaluate; the
	// clustering with the highest BIC is kept (default 3).
	Restarts int
	// Seed makes the run deterministic. Every seed — including 0 — is a
	// valid, distinct seed: per-restart randomness is derived from it
	// with a SplitMix64-style hash (par.DeriveSeed), so there is no
	// "unseeded" sentinel at this layer. (core.Config.Validate treats a
	// zero Options.Seed as "inherit the pipeline seed" before the value
	// reaches this package; that inheritance is documented there.)
	Seed int64
	// Workers bounds clustering parallelism; values < 1 mean GOMAXPROCS.
	// The result is identical for any worker count.
	Workers int
	// Metrics, when non-nil, receives clustering counters
	// (kmeans.restarts, kmeans.lloyd_iters, kmeans.selectk_fits).
	// Metrics never influence the fit, so determinism is unaffected.
	Metrics *obs.Metrics `json:"-"`
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxIters <= 0 {
		out.MaxIters = 100
	}
	if out.Restarts <= 0 {
		out.Restarts = 3
	}
	out.Workers = par.Workers(out.Workers)
	return out
}

// Result is a fitted clustering.
type Result struct {
	// K is the number of clusters.
	K int
	// Assignments maps each data row to its cluster.
	Assignments []int
	// Centers is the K x dims matrix of cluster centroids.
	Centers *stats.Matrix
	// Sizes is the number of points per cluster.
	Sizes []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// BIC is the Bayesian Information Criterion score of the clustering
	// under a spherical-Gaussian mixture model (higher is better).
	BIC float64
}

// KMeans clusters the rows of data into k clusters. Restarts run
// concurrently, each on a sub-seed derived from Options.Seed, and the
// best-BIC restart wins with ties broken by restart index — so the result
// does not depend on Options.Workers.
func KMeans(data *stats.Matrix, k int, opts Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d < 1", k)
	}
	if data.Rows < k {
		return nil, fmt.Errorf("cluster: %d rows cannot form %d clusters", data.Rows, k)
	}
	o := opts.withDefaults()

	o.Metrics.Add("kmeans.restarts", int64(o.Restarts))
	iters := o.Metrics.Counter("kmeans.lloyd_iters")
	results := make([]*Result, o.Restarts)
	par.For(o.Workers, o.Restarts, func(r int) {
		rng := rand.New(rand.NewSource(par.DeriveSeed(o.Seed, uint64(r))))
		res := lloyd(data, k, o.MaxIters, o.Workers, rng, iters)
		res.BIC = bic(data, res)
		results[r] = res
	})

	best := results[0]
	for _, res := range results[1:] {
		if res.BIC > best.BIC {
			best = res
		}
	}
	return best, nil
}

// rowNorms caches the squared L2 norm of every row of m, the |x|² term of
// the expansion |x-c|² = |x|² - 2·x·c + |c|² used by the assignment kernel.
func rowNorms(m *stats.Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// assignRows is the parallel Lloyd assignment kernel: for every row it
// finds the nearest center (cached-squared-norms fast path, first center
// wins ties) and records the squared distance to it. It returns how many
// assignments changed. Rows are processed in fixed-grain chunks, each row
// writing only its own assign/dist2 slot, so the output is identical for
// any worker count.
func assignRows(data, centers *stats.Matrix, dataNorm, centerNorm []float64, assign []int, dist2 []float64, workers int) int {
	n := data.Rows
	changedParts := make([]int, par.Chunks(n, 0))
	par.ForChunks(workers, n, 0, func(chunk, lo, hi int) {
		changed := 0
		for i := lo; i < hi; i++ {
			x := data.Row(i)
			best, bestG := 0, math.Inf(1)
			for c := 0; c < centers.Rows; c++ {
				row := centers.Row(c)
				var dot float64
				for j, v := range x {
					dot += v * row[j]
				}
				// g differs from |x-c|² by the constant |x|²; the
				// argmin is the same and the subtraction is deferred.
				if g := centerNorm[c] - 2*dot; g < bestG {
					best, bestG = c, g
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed++
			}
			d2 := dataNorm[i] + bestG
			if d2 < 0 {
				d2 = 0 // cancellation can push an exact 0 slightly negative
			}
			dist2[i] = d2
		}
		changedParts[chunk] = changed
	})
	total := 0
	for _, c := range changedParts {
		total += c
	}
	return total
}

// lloyd runs one k-means fit with k-means++ seeding. Seeding and center
// updates are serial (they are O(n·d), dwarfed by the O(n·k·d) assignment
// passes, and seeding is inherently sequential in rng consumption); the
// assignment and inertia passes fan out over workers. iters (possibly a
// nil no-op sink) receives the number of Lloyd iterations executed.
func lloyd(data *stats.Matrix, k, maxIters, workers int, rng *rand.Rand, iters *obs.Counter) *Result {
	n, d := data.Rows, data.Cols
	centers := seedPlusPlus(data, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	dist2 := make([]float64, n)
	dataNorm := rowNorms(data)
	centerNorm := make([]float64, k)
	updateCenterNorms := func() {
		for c := 0; c < k; c++ {
			row := centers.Row(c)
			var s float64
			for _, v := range row {
				s += v * v
			}
			centerNorm[c] = s
		}
	}
	sizes := make([]int, k)
	sums := stats.NewMatrix(k, d)

	for iter := 0; iter < maxIters; iter++ {
		updateCenterNorms()
		changed := assignRows(data, centers, dataNorm, centerNorm, assign, dist2, workers)
		iters.Inc()
		if changed == 0 && iter > 0 {
			break
		}
		// Recompute centers.
		for i := range sums.Data {
			sums.Data[i] = 0
		}
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			sizes[c]++
			row := data.Row(i)
			dst := sums.Row(c)
			for j, v := range row {
				dst[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its assigned center, reusing the assignment pass's
				// cached distances instead of recomputing n distances
				// per empty cluster. Zeroing the winner keeps a second
				// empty cluster from grabbing the same point.
				far, farDist := 0, -1.0
				for i, dd := range dist2 {
					if dd > farDist {
						far, farDist = i, dd
					}
				}
				copy(centers.Row(c), data.Row(far))
				dist2[far] = 0
				continue
			}
			src := sums.Row(c)
			dst := centers.Row(c)
			inv := 1 / float64(sizes[c])
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
	}

	// Final assignment pass and inertia, the latter reduced from
	// per-chunk partials in chunk order (worker-count independent).
	updateCenterNorms()
	assignRows(data, centers, dataNorm, centerNorm, assign, dist2, workers)
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	inertiaParts := make([]float64, par.Chunks(n, 0))
	par.ForChunks(workers, n, 0, func(chunk, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += dist2[i]
		}
		inertiaParts[chunk] = s
	})
	var inertia float64
	for _, p := range inertiaParts {
		inertia += p
	}
	return &Result{K: k, Assignments: assign, Centers: centers, Sizes: sizes, Inertia: inertia}
}

// seedPlusPlus selects k initial centers with the k-means++ D² weighting.
func seedPlusPlus(data *stats.Matrix, k int, rng *rand.Rand) *stats.Matrix {
	n, d := data.Rows, data.Cols
	centers := stats.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), data.Row(first))

	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dd := stats.EuclideanDistance(data.Row(i), centers.Row(0))
		dist2[i] = dd * dd
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		idx := 0
		if total > 0 {
			x := rng.Float64() * total
			for i, v := range dist2 {
				if x < v {
					idx = i
					break
				}
				x -= v
			}
		} else {
			idx = rng.Intn(n)
		}
		copy(centers.Row(c), data.Row(idx))
		for i := 0; i < n; i++ {
			dd := stats.EuclideanDistance(data.Row(i), centers.Row(c))
			if d2 := dd * dd; d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centers
}

// bic scores a clustering with the spherical-Gaussian Bayesian Information
// Criterion (Pelleg & Moore's X-means formulation): higher is better. The
// score trades goodness of fit against the number of clusters, as the
// paper's section 2.6 describes.
func bic(data *stats.Matrix, res *Result) float64 {
	r := float64(data.Rows)
	m := float64(data.Cols)
	k := float64(res.K)
	if data.Rows <= res.K {
		return math.Inf(-1)
	}
	sigma2 := res.Inertia / (m * (r - k))
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	var loglik float64
	for _, size := range res.Sizes {
		if size > 0 {
			rn := float64(size)
			loglik += rn * math.Log(rn/r)
		}
	}
	loglik += -(r*m/2)*math.Log(2*math.Pi*sigma2) - m*(r-k)/2
	params := (k - 1) + m*k + 1
	return loglik - params/2*math.Log(r)
}

// Representatives returns, for each cluster, the index of the data row
// closest to the cluster center — the paper's per-cluster representative
// instruction interval.
func (r *Result) Representatives(data *stats.Matrix) []int {
	reps := make([]int, r.K)
	best := make([]float64, r.K)
	for c := range reps {
		reps[c] = -1
		best[c] = math.Inf(1)
	}
	for i := 0; i < data.Rows; i++ {
		c := r.Assignments[i]
		d := stats.EuclideanDistance(data.Row(i), r.Centers.Row(c))
		if d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}

// Weights returns each cluster's fraction of the data set.
func (r *Result) Weights() []float64 {
	out := make([]float64, r.K)
	total := float64(len(r.Assignments))
	if total == 0 {
		return out
	}
	for c, s := range r.Sizes {
		out[c] = float64(s) / total
	}
	return out
}

// ByWeight returns cluster indices sorted by decreasing weight.
func (r *Result) ByWeight() []int {
	idx := make([]int, r.K)
	for i := range idx {
		idx[i] = i
	}
	// sort.Slice is unstable, so equal-size clusters need an explicit
	// tie-break on the cluster index to keep the prominent-phase order
	// (and everything derived from it) deterministic.
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := r.Sizes[idx[a]], r.Sizes[idx[b]]
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// AvgWithinClusterDistance returns the mean distance of points to their
// cluster center — the "variability within each cluster" of the paper's
// coverage/variability trade-off.
func (r *Result) AvgWithinClusterDistance(data *stats.Matrix) float64 {
	if data.Rows == 0 {
		return 0
	}
	var total float64
	for i := 0; i < data.Rows; i++ {
		total += stats.EuclideanDistance(data.Row(i), r.Centers.Row(r.Assignments[i]))
	}
	return total / float64(data.Rows)
}

// SelectK runs k-means for every k in [kmin, kmax] and picks the result
// with the SimPoint heuristic (Sherwood et al.): the smallest k whose BIC
// score reaches at least frac (typically 0.9) of the way from the worst to
// the best BIC observed. Raw BIC maximization is too conservative on small
// samples; the heuristic trades a little fit for far fewer clusters.
//
// The k range is evaluated concurrently (this is the inner loop of the
// per-benchmark timeline analyses); each k's fit is independent and
// deterministic, and the winner is chosen by a serial scan in ascending k,
// so the selection does not depend on opts.Workers.
func SelectK(data *stats.Matrix, kmin, kmax int, frac float64, opts Options) (*Result, error) {
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("cluster: invalid k range [%d,%d]", kmin, kmax)
	}
	if kmax >= data.Rows {
		kmax = data.Rows - 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("cluster: BIC fraction %v out of [0,1]", frac)
	}
	results := make([]*Result, kmax-kmin+1)
	errs := make([]error, len(results))
	opts.Metrics.Add("kmeans.selectk_fits", int64(len(results)))
	par.For(par.Workers(opts.Workers), len(results), func(i int) {
		results[i], errs[i] = KMeans(data, kmin+i, opts)
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, res := range results {
		if res.BIC < lo {
			lo = res.BIC
		}
		if res.BIC > hi {
			hi = res.BIC
		}
	}
	if hi <= lo {
		return results[0], nil // all scores equal: smallest k
	}
	threshold := lo + frac*(hi-lo)
	for _, res := range results {
		if res.BIC >= threshold {
			return res, nil
		}
	}
	return results[len(results)-1], nil
}
