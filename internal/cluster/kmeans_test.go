package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// blobs generates n points around each of the given centers.
func blobs(centers [][]float64, n int, spread float64, seed int64) (*stats.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	dim := len(centers[0])
	m := stats.NewMatrix(n*len(centers), dim)
	truth := make([]int, m.Rows)
	for c, center := range centers {
		for i := 0; i < n; i++ {
			row := m.Row(c*n + i)
			for j := 0; j < dim; j++ {
				row[j] = center[j] + spread*rng.NormFloat64()
			}
			truth[c*n+i] = c
		}
	}
	return m, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data, truth := blobs(centers, 50, 0.5, 1)
	res, err := KMeans(data, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to exactly one cluster.
	mapping := map[int]map[int]int{}
	for i, c := range res.Assignments {
		if mapping[truth[i]] == nil {
			mapping[truth[i]] = map[int]int{}
		}
		mapping[truth[i]][c]++
	}
	used := map[int]bool{}
	for blob, counts := range mapping {
		best, bestN := -1, 0
		total := 0
		for c, n := range counts {
			total += n
			if n > bestN {
				best, bestN = c, n
			}
		}
		if float64(bestN)/float64(total) < 0.98 {
			t.Fatalf("blob %d split across clusters: %v", blob, counts)
		}
		if used[best] {
			t.Fatalf("two blobs mapped to cluster %d", best)
		}
		used[best] = true
	}
}

func TestKMeansValidation(t *testing.T) {
	data := stats.NewMatrix(5, 2)
	if _, err := KMeans(data, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(data, 6, Options{}); err == nil {
		t.Fatal("k > rows accepted")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {5, 5}}, 40, 1, 2)
	a, err := KMeans(data, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.BIC != b.BIC || a.Inertia != b.Inertia {
		t.Fatal("same seed produced different scores")
	}
}

// TestKMeansWorkerCountInvariance is the tentpole contract: the fitted
// clustering must be byte-identical whatever Options.Workers is, because
// restart seeds are derived by hashing and all floating-point reductions
// run in a fixed chunk order.
func TestKMeansWorkerCountInvariance(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {7, 1}, {2, 9}, {8, 8}}, 60, 0.8, 21)
	ref, err := KMeans(data, 4, Options{Seed: 5, Restarts: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := KMeans(data, 4, Options{Seed: 5, Restarts: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.BIC != ref.BIC || got.Inertia != ref.Inertia {
			t.Fatalf("workers=%d scores differ: BIC %v vs %v, inertia %v vs %v",
				workers, got.BIC, ref.BIC, got.Inertia, ref.Inertia)
		}
		for i := range ref.Assignments {
			if got.Assignments[i] != ref.Assignments[i] {
				t.Fatalf("workers=%d assignment %d differs", workers, i)
			}
		}
		for i := range ref.Centers.Data {
			if got.Centers.Data[i] != ref.Centers.Data[i] {
				t.Fatalf("workers=%d center element %d differs", workers, i)
			}
		}
	}
}

func TestSelectKWorkerCountInvariance(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {15, 0}, {0, 15}}, 30, 0.5, 22)
	ref, err := SelectK(data, 1, 8, 0.9, Options{Seed: 3, Restarts: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SelectK(data, 1, 8, 0.9, Options{Seed: 3, Restarts: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.K != ref.K || got.BIC != ref.BIC {
			t.Fatalf("workers=%d picked k=%d (BIC %v), workers=1 picked k=%d (BIC %v)",
				workers, got.K, got.BIC, ref.K, ref.BIC)
		}
		for i := range ref.Assignments {
			if got.Assignments[i] != ref.Assignments[i] {
				t.Fatalf("workers=%d assignment %d differs", workers, i)
			}
		}
	}
}

// TestKMeansSeedZeroValid pins the Seed == 0 semantics: 0 is an ordinary
// seed (deterministic, distinct from seed 1), not an "unseeded" sentinel.
func TestKMeansSeedZeroValid(t *testing.T) {
	// One diffuse blob: distinct seeds land in distinct local optima.
	data, _ := blobs([][]float64{{0, 0}}, 200, 5.0, 23)
	a, err := KMeans(data, 6, Options{Seed: 0, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, 6, Options{Seed: 0, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.BIC != b.BIC || a.Inertia != b.Inertia {
		t.Fatal("seed 0 not deterministic")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("seed 0 not deterministic")
		}
	}
	// Seed 0 must drive a different restart stream than seed 1 (it would
	// not if 0 were collapsed into another value somewhere).
	c, err := KMeans(data, 6, Options{Seed: 1, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Inertia == c.Inertia && a.BIC == c.BIC
	for i := range a.Assignments {
		if a.Assignments[i] != c.Assignments[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 0 and seed 1 produced identical clusterings; 0 looks like a sentinel")
	}
}

func TestWeightsSumToOne(t *testing.T) {
	data, _ := blobs([][]float64{{0}, {4}, {9}}, 30, 0.3, 3)
	res, err := KMeans(data, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range res.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	var sizes int
	for _, s := range res.Sizes {
		sizes += s
	}
	if sizes != data.Rows {
		t.Fatalf("sizes sum to %d, want %d", sizes, data.Rows)
	}
}

func TestRepresentativesAreClosest(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {8, 8}}, 25, 0.7, 4)
	res, err := KMeans(data, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Representatives(data)
	for c, rep := range reps {
		if rep < 0 || rep >= data.Rows {
			t.Fatalf("representative %d out of range", rep)
		}
		if res.Assignments[rep] != c {
			t.Fatalf("representative of cluster %d belongs to cluster %d", c, res.Assignments[rep])
		}
		repDist := stats.EuclideanDistance(data.Row(rep), res.Centers.Row(c))
		for i := 0; i < data.Rows; i++ {
			if res.Assignments[i] != c {
				continue
			}
			if d := stats.EuclideanDistance(data.Row(i), res.Centers.Row(c)); d < repDist-1e-9 {
				t.Fatalf("row %d closer to center %d than representative", i, c)
			}
		}
	}
}

func TestByWeightSorted(t *testing.T) {
	data, _ := blobs([][]float64{{0}, {5}}, 20, 0.2, 5)
	// Unbalanced: add extra points to blob 0.
	extra, _ := blobs([][]float64{{0}}, 30, 0.2, 6)
	all := stats.NewMatrix(data.Rows+extra.Rows, 1)
	copy(all.Data, data.Data)
	copy(all.Data[data.Rows:], extra.Data)
	res, err := KMeans(all, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	order := res.ByWeight()
	if res.Sizes[order[0]] < res.Sizes[order[1]] {
		t.Fatal("ByWeight not sorted descending")
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {12, 0}, {0, 12}, {12, 12}}, 40, 0.4, 7)
	bic := func(k int) float64 {
		res, err := KMeans(data, k, Options{Seed: 1, Restarts: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.BIC
	}
	b1, b4, b12 := bic(1), bic(4), bic(12)
	if b4 <= b1 {
		t.Fatalf("BIC(k=4)=%v not better than BIC(k=1)=%v on 4 blobs", b4, b1)
	}
	if b4 <= b12 {
		t.Fatalf("BIC(k=4)=%v not better than BIC(k=12)=%v on 4 blobs", b4, b12)
	}
}

func TestAvgWithinClusterDistanceShrinksWithK(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {6, 6}}, 60, 1.5, 8)
	r2, err := KMeans(data, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r12, err := KMeans(data, 12, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r12.AvgWithinClusterDistance(data) >= r2.AvgWithinClusterDistance(data) {
		t.Fatal("within-cluster distance did not shrink with larger k")
	}
}

func TestKMeansHandlesDuplicatePoints(t *testing.T) {
	// Many identical rows (the sampling-with-replacement case) must not
	// break clustering or produce NaNs.
	m := stats.NewMatrix(40, 2)
	for i := 0; i < 40; i++ {
		if i >= 20 {
			m.Set(i, 0, 5)
			m.Set(i, 1, 5)
		}
	}
	res, err := KMeans(m, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.BIC) || math.IsInf(res.Inertia, 0) {
		t.Fatalf("degenerate scores: BIC=%v inertia=%v", res.BIC, res.Inertia)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("two point-masses should cluster exactly; inertia=%v", res.Inertia)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	data, _ := blobs([][]float64{{3, 3}}, 30, 0.5, 9)
	res, err := KMeans(data, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 30 {
		t.Fatalf("k=1 cluster size %d", res.Sizes[0])
	}
	center := res.Centers.Row(0)
	if math.Abs(center[0]-3) > 0.3 || math.Abs(center[1]-3) > 0.3 {
		t.Fatalf("k=1 center = %v", center)
	}
}

func TestSelectKPrefersCompactModels(t *testing.T) {
	// Two crisp blobs: the SimPoint heuristic must pick k=2, not the
	// maximum k (raw BIC maximization often overfits small samples).
	data, _ := blobs([][]float64{{0, 0}, {20, 20}}, 30, 0.4, 11)
	res, err := SelectK(data, 1, 8, 0.9, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 || res.K > 3 {
		t.Fatalf("SelectK picked k=%d on two blobs", res.K)
	}
}

func TestSelectKSingleBlob(t *testing.T) {
	data, _ := blobs([][]float64{{5, 5}}, 40, 0.5, 12)
	res, err := SelectK(data, 1, 6, 0.9, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Fatalf("SelectK split a homogeneous blob into %d clusters", res.K)
	}
}

func TestSelectKValidation(t *testing.T) {
	data, _ := blobs([][]float64{{0}}, 10, 0.1, 13)
	if _, err := SelectK(data, 0, 3, 0.9, Options{}); err == nil {
		t.Fatal("kmin=0 accepted")
	}
	if _, err := SelectK(data, 3, 2, 0.9, Options{}); err == nil {
		t.Fatal("kmax<kmin accepted")
	}
	if _, err := SelectK(data, 1, 3, 1.5, Options{}); err == nil {
		t.Fatal("fraction out of range accepted")
	}
	// kmax beyond rows-1 must be clamped, not rejected.
	res, err := SelectK(data, 1, 50, 0.9, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K >= data.Rows {
		t.Fatalf("SelectK returned k=%d for %d rows", res.K, data.Rows)
	}
}

// TestByWeightTieBreak builds a clustering with one dominant cluster and
// many exactly equal-size ones. sort.Slice is unstable, so without the
// explicit index tie-break the tied clusters could order arbitrarily; the
// contract is descending size, then ascending cluster index.
func TestByWeightTieBreak(t *testing.T) {
	const k = 16
	sizes := make([]int, k)
	for c := range sizes {
		sizes[c] = 5
	}
	sizes[9] = 50
	r := &Result{K: k, Sizes: sizes}
	order := r.ByWeight()
	if order[0] != 9 {
		t.Fatalf("heaviest cluster = %d, want 9", order[0])
	}
	next := 0
	for _, c := range order[1:] {
		if c == 9 {
			t.Fatal("cluster 9 listed twice")
		}
		if c < next {
			t.Fatalf("tied clusters out of index order: %v", order)
		}
		next = c
	}
}
