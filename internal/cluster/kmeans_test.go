package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// blobs generates n points around each of the given centers.
func blobs(centers [][]float64, n int, spread float64, seed int64) (*stats.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	dim := len(centers[0])
	m := stats.NewMatrix(n*len(centers), dim)
	truth := make([]int, m.Rows)
	for c, center := range centers {
		for i := 0; i < n; i++ {
			row := m.Row(c*n + i)
			for j := 0; j < dim; j++ {
				row[j] = center[j] + spread*rng.NormFloat64()
			}
			truth[c*n+i] = c
		}
	}
	return m, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data, truth := blobs(centers, 50, 0.5, 1)
	res, err := KMeans(data, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every true blob must map to exactly one cluster.
	mapping := map[int]map[int]int{}
	for i, c := range res.Assignments {
		if mapping[truth[i]] == nil {
			mapping[truth[i]] = map[int]int{}
		}
		mapping[truth[i]][c]++
	}
	used := map[int]bool{}
	for blob, counts := range mapping {
		best, bestN := -1, 0
		total := 0
		for c, n := range counts {
			total += n
			if n > bestN {
				best, bestN = c, n
			}
		}
		if float64(bestN)/float64(total) < 0.98 {
			t.Fatalf("blob %d split across clusters: %v", blob, counts)
		}
		if used[best] {
			t.Fatalf("two blobs mapped to cluster %d", best)
		}
		used[best] = true
	}
}

func TestKMeansValidation(t *testing.T) {
	data := stats.NewMatrix(5, 2)
	if _, err := KMeans(data, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(data, 6, Options{}); err == nil {
		t.Fatal("k > rows accepted")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {5, 5}}, 40, 1, 2)
	a, err := KMeans(data, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.BIC != b.BIC || a.Inertia != b.Inertia {
		t.Fatal("same seed produced different scores")
	}
}

func TestWeightsSumToOne(t *testing.T) {
	data, _ := blobs([][]float64{{0}, {4}, {9}}, 30, 0.3, 3)
	res, err := KMeans(data, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range res.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	var sizes int
	for _, s := range res.Sizes {
		sizes += s
	}
	if sizes != data.Rows {
		t.Fatalf("sizes sum to %d, want %d", sizes, data.Rows)
	}
}

func TestRepresentativesAreClosest(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {8, 8}}, 25, 0.7, 4)
	res, err := KMeans(data, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Representatives(data)
	for c, rep := range reps {
		if rep < 0 || rep >= data.Rows {
			t.Fatalf("representative %d out of range", rep)
		}
		if res.Assignments[rep] != c {
			t.Fatalf("representative of cluster %d belongs to cluster %d", c, res.Assignments[rep])
		}
		repDist := stats.EuclideanDistance(data.Row(rep), res.Centers.Row(c))
		for i := 0; i < data.Rows; i++ {
			if res.Assignments[i] != c {
				continue
			}
			if d := stats.EuclideanDistance(data.Row(i), res.Centers.Row(c)); d < repDist-1e-9 {
				t.Fatalf("row %d closer to center %d than representative", i, c)
			}
		}
	}
}

func TestByWeightSorted(t *testing.T) {
	data, _ := blobs([][]float64{{0}, {5}}, 20, 0.2, 5)
	// Unbalanced: add extra points to blob 0.
	extra, _ := blobs([][]float64{{0}}, 30, 0.2, 6)
	all := stats.NewMatrix(data.Rows+extra.Rows, 1)
	copy(all.Data, data.Data)
	copy(all.Data[data.Rows:], extra.Data)
	res, err := KMeans(all, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	order := res.ByWeight()
	if res.Sizes[order[0]] < res.Sizes[order[1]] {
		t.Fatal("ByWeight not sorted descending")
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {12, 0}, {0, 12}, {12, 12}}, 40, 0.4, 7)
	bic := func(k int) float64 {
		res, err := KMeans(data, k, Options{Seed: 1, Restarts: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.BIC
	}
	b1, b4, b12 := bic(1), bic(4), bic(12)
	if b4 <= b1 {
		t.Fatalf("BIC(k=4)=%v not better than BIC(k=1)=%v on 4 blobs", b4, b1)
	}
	if b4 <= b12 {
		t.Fatalf("BIC(k=4)=%v not better than BIC(k=12)=%v on 4 blobs", b4, b12)
	}
}

func TestAvgWithinClusterDistanceShrinksWithK(t *testing.T) {
	data, _ := blobs([][]float64{{0, 0}, {6, 6}}, 60, 1.5, 8)
	r2, err := KMeans(data, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r12, err := KMeans(data, 12, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r12.AvgWithinClusterDistance(data) >= r2.AvgWithinClusterDistance(data) {
		t.Fatal("within-cluster distance did not shrink with larger k")
	}
}

func TestKMeansHandlesDuplicatePoints(t *testing.T) {
	// Many identical rows (the sampling-with-replacement case) must not
	// break clustering or produce NaNs.
	m := stats.NewMatrix(40, 2)
	for i := 0; i < 40; i++ {
		if i >= 20 {
			m.Set(i, 0, 5)
			m.Set(i, 1, 5)
		}
	}
	res, err := KMeans(m, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.BIC) || math.IsInf(res.Inertia, 0) {
		t.Fatalf("degenerate scores: BIC=%v inertia=%v", res.BIC, res.Inertia)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("two point-masses should cluster exactly; inertia=%v", res.Inertia)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	data, _ := blobs([][]float64{{3, 3}}, 30, 0.5, 9)
	res, err := KMeans(data, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 30 {
		t.Fatalf("k=1 cluster size %d", res.Sizes[0])
	}
	center := res.Centers.Row(0)
	if math.Abs(center[0]-3) > 0.3 || math.Abs(center[1]-3) > 0.3 {
		t.Fatalf("k=1 center = %v", center)
	}
}

func TestSelectKPrefersCompactModels(t *testing.T) {
	// Two crisp blobs: the SimPoint heuristic must pick k=2, not the
	// maximum k (raw BIC maximization often overfits small samples).
	data, _ := blobs([][]float64{{0, 0}, {20, 20}}, 30, 0.4, 11)
	res, err := SelectK(data, 1, 8, 0.9, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 || res.K > 3 {
		t.Fatalf("SelectK picked k=%d on two blobs", res.K)
	}
}

func TestSelectKSingleBlob(t *testing.T) {
	data, _ := blobs([][]float64{{5, 5}}, 40, 0.5, 12)
	res, err := SelectK(data, 1, 6, 0.9, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Fatalf("SelectK split a homogeneous blob into %d clusters", res.K)
	}
}

func TestSelectKValidation(t *testing.T) {
	data, _ := blobs([][]float64{{0}}, 10, 0.1, 13)
	if _, err := SelectK(data, 0, 3, 0.9, Options{}); err == nil {
		t.Fatal("kmin=0 accepted")
	}
	if _, err := SelectK(data, 3, 2, 0.9, Options{}); err == nil {
		t.Fatal("kmax<kmin accepted")
	}
	if _, err := SelectK(data, 1, 3, 1.5, Options{}); err == nil {
		t.Fatal("fraction out of range accepted")
	}
	// kmax beyond rows-1 must be clamped, not rejected.
	res, err := SelectK(data, 1, 50, 0.9, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K >= data.Rows {
		t.Fatalf("SelectK returned k=%d for %d rows", res.K, data.Rows)
	}
}
