package cluster

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// refineTestData builds three tight, well-separated blobs of 20 rows
// each in 4-D — easy enough that k-means and a warm start agree on the
// partition.
func refineTestData() *stats.Matrix {
	m := stats.NewMatrix(60, 4)
	for i := 0; i < m.Rows; i++ {
		blob := i / 20
		row := m.Row(i)
		for j := range row {
			row[j] = 10*float64(blob) + 0.01*float64((i*7+j*3)%11)
		}
	}
	return m
}

// TestRefineFromFittedCentersIsStable pins the warm-start contract: a
// refinement seeded with an already-converged fit's centers must keep
// the partition, report a tiny centroid shift, and match the full fit's
// inertia.
func TestRefineFromFittedCentersIsStable(t *testing.T) {
	data := refineTestData()
	full, err := KMeans(data, 3, Options{Seed: 1, Restarts: 2, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	ref, shift, err := Refine(data, full.Centers, Options{Seed: 1, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if shift > 1e-9 {
		t.Fatalf("refining converged centers moved them by %g", shift)
	}
	if ref.Inertia != full.Inertia {
		t.Fatalf("inertia %g, want %g", ref.Inertia, full.Inertia)
	}
	for i, a := range ref.Assignments {
		if a != full.Assignments[i] {
			t.Fatalf("row %d reassigned %d -> %d", i, full.Assignments[i], a)
		}
	}
}

// TestRefineDeterministicAcrossWorkers pins that the warm-started fit,
// like KMeans, is worker-count independent.
func TestRefineDeterministicAcrossWorkers(t *testing.T) {
	data := refineTestData()
	initial := stats.NewMatrix(3, 4)
	for c := 0; c < 3; c++ {
		row := initial.Row(c)
		for j := range row {
			row[j] = 10*float64(c) + 1.5 // deliberately off-center
		}
	}
	var first *Result
	var firstShift float64
	for _, workers := range []int{1, 4} {
		res, shift, err := Refine(data, initial, Options{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first, firstShift = res, shift
			continue
		}
		if shift != firstShift || res.Inertia != first.Inertia {
			t.Fatalf("workers=%d: shift/inertia %g/%g, want %g/%g",
				workers, shift, res.Inertia, firstShift, first.Inertia)
		}
		for i := range res.Assignments {
			if res.Assignments[i] != first.Assignments[i] {
				t.Fatalf("workers=%d row %d: assignment diverged", workers, i)
			}
		}
		for i := range res.Centers.Data {
			if res.Centers.Data[i] != first.Centers.Data[i] {
				t.Fatalf("workers=%d: centers diverged", workers)
			}
		}
	}
	if firstShift <= 0 {
		t.Fatalf("off-center seeds reported shift %g, want > 0", firstShift)
	}
}

// TestRefineReportsShift pins that perturbed seeds converge back to the
// real centroids and the reported shift reflects the move, and that the
// refine counter fires.
func TestRefineReportsShift(t *testing.T) {
	data := refineTestData()
	full, err := KMeans(data, 3, Options{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	moved := full.Centers.Clone()
	for j := 0; j < moved.Cols; j++ {
		moved.Row(0)[j] += 2
	}
	m := obs.New()
	ref, shift, err := Refine(data, moved, Options{Seed: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if shift <= 0 {
		t.Fatalf("shift = %g, want > 0 for perturbed seeds", shift)
	}
	if ref.Inertia != full.Inertia {
		t.Fatalf("refined inertia %g, want %g (blobs are unambiguous)", ref.Inertia, full.Inertia)
	}
	if got := m.Counter("kmeans.refines").Value(); got != 1 {
		t.Fatalf("kmeans.refines = %d, want 1", got)
	}
}

func TestRefineRejects(t *testing.T) {
	data := refineTestData()
	if _, _, err := Refine(data, nil, Options{}); err == nil {
		t.Fatal("nil initial centers accepted")
	}
	if _, _, err := Refine(data, stats.NewMatrix(3, 2), Options{}); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
	if _, _, err := Refine(stats.NewMatrix(2, 4), stats.NewMatrix(3, 4), Options{}); err == nil {
		t.Fatal("k > rows accepted")
	}
}
