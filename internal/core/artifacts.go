package core

// Stage artifacts: the serializable outputs of the pipeline engine's
// stages, their binary codecs, and the content-addressed cache keys that
// name them.
//
// Every key is a chain: a stage's key hash folds its own parameters into
// the hash of the stage it consumes, so the key of (say) the clustering
// artifact changes whenever anything upstream — a benchmark behaviour, a
// sampling parameter, the PC retention threshold, the k-means seed —
// changes. Worker counts are deliberately excluded everywhere: every
// stage is worker-count deterministic, so the same key must be produced
// (and reused) at any parallelism.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/fcache"
	"repro/internal/mica"
	"repro/internal/stats"
	"repro/internal/trace"
)

// engineSchemaVersion versions the stage decomposition and the artifact
// encodings. Bump it whenever a stage's output format or semantics
// change, so stale artifacts miss instead of decoding into garbage.
// v2: shard artifacts carry their producing artifactVersion in the
// payload itself, so a shard produced under a different schema is
// rejected by the decoder even when it arrives outside the keyed cache
// (e.g. over the shardnet wire).
// v3: analysis kernels moved to internal/kernel's blocked reductions
// (fixed four-lane and serial-column orders), which reorders
// floating-point sums in k-means, PCA projection and distance
// computations; matrices encode with the self-aligning padded layout.
// Values derived under v2 are numerically equivalent but not bit-equal,
// so they must miss.
const engineSchemaVersion = 3

// artifactVersion combines the measurement-kernel schema with the engine
// schema: a change to either invalidates every stage artifact.
func artifactVersion() uint32 {
	return uint32(mica.SchemaVersion)<<8 | engineSchemaVersion
}

// foldHash mixes v into the running hash h (order-sensitive).
func foldHash(h, v uint64) uint64 {
	return trace.Hash64(h*0x100000001b3 ^ v)
}

// foldF64 mixes a float64 into the hash by its IEEE-754 bits.
func foldF64(h uint64, v float64) uint64 {
	return foldHash(h, math.Float64bits(v))
}

// benchHash identifies one benchmark's full characterization input: its
// ID, interval count, and every interval's behaviour hash and generator
// seed. Two benchmarks with equal hashes produce identical interval
// vectors at the same interval length.
func benchHash(b *bench.Benchmark, total int) uint64 {
	h := foldHash(0x9e3779b97f4a7c15, trace.HashString(b.ID()))
	h = foldHash(h, uint64(total))
	for i := 0; i < total; i++ {
		h = foldHash(h, b.BehaviorAt(i, total).BehaviorHash())
		h = foldHash(h, b.IntervalSeed(i))
	}
	return h
}

// artifactKeys precomputes the key-hash chain for one (registry, config)
// pair. Built once per engine, only when a cache is configured.
type artifactKeys struct {
	// params folds every sampling parameter that shapes the dataset.
	params uint64
	// bench[i] is the benchHash of registry benchmark i.
	bench []uint64
	// dataset folds params with every benchmark hash: the identity of the
	// full characterized dataset.
	dataset uint64
	// rows is the sampled dataset's row count.
	rows int
	seed uint64
}

func newArtifactKeys(reg *bench.Registry, cfg Config, rows int) *artifactKeys {
	k := &artifactKeys{rows: rows, seed: uint64(cfg.Seed)}
	h := uint64(0xa0761d6478bd642f)
	h = foldHash(h, uint64(cfg.IntervalLength))
	h = foldHash(h, uint64(cfg.SamplesPerBenchmark))
	h = foldHash(h, uint64(cfg.MaxIntervalsPerBenchmark))
	var sampled uint64
	if cfg.SampleByBenchmark {
		sampled = 1
	}
	h = foldHash(h, sampled)
	h = foldHash(h, uint64(cfg.Seed))
	k.params = h

	k.bench = make([]uint64, reg.Len())
	d := k.params
	for i, b := range reg.All() {
		k.bench[i] = benchHash(b, b.ScaledIntervals(cfg.MaxIntervalsPerBenchmark))
		d = foldHash(d, k.bench[i])
	}
	k.dataset = d
	return k
}

// shardKey names one characterization shard's dataset artifact.
func (k *artifactKeys) shardKey(index, count int, benches []int, refCount int) fcache.Key {
	h := k.params
	for _, bi := range benches {
		h = foldHash(h, k.bench[bi])
	}
	return fcache.Key{
		Kind:     fcache.KindShard,
		Version:  artifactVersion(),
		Behavior: h,
		Seed:     uint64(index)<<32 | uint64(count),
		Length:   int64(refCount),
	}
}

// pcaHash is the chain value for the fitted PCA model: it depends only on
// the dataset (the model ignores retention thresholds).
func (k *artifactKeys) pcaHash() uint64 {
	return foldHash(k.dataset, uint64(k.rows))
}

func (k *artifactKeys) pcaKey() fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindPCA,
		Version:  artifactVersion(),
		Behavior: k.pcaHash(),
		Seed:     k.seed,
		Length:   int64(k.rows),
	}
}

// scoresHash extends the PCA chain with the retention threshold that
// selects how many components the score matrix keeps.
func (k *artifactKeys) scoresHash(cfg Config) uint64 {
	return foldF64(k.pcaHash(), cfg.MinPCStd)
}

func (k *artifactKeys) scoresKey(cfg Config) fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindScores,
		Version:  artifactVersion(),
		Behavior: k.scoresHash(cfg),
		Seed:     k.seed,
		Length:   int64(k.rows),
	}
}

// clusterHash extends the scores chain with every clustering parameter.
func (k *artifactKeys) clusterHash(cfg Config) uint64 {
	h := foldHash(k.scoresHash(cfg), uint64(cfg.NumClusters))
	h = foldHash(h, uint64(cfg.KMeans.Seed))
	h = foldHash(h, uint64(cfg.KMeans.Restarts))
	h = foldHash(h, uint64(cfg.KMeans.MaxIters))
	return h
}

func (k *artifactKeys) clusterKey(cfg Config) fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindCluster,
		Version:  artifactVersion(),
		Behavior: k.clusterHash(cfg),
		Seed:     k.seed,
		Length:   int64(k.rows),
	}
}

func (k *artifactKeys) summaryKey(cfg Config) fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindSummary,
		Version:  artifactVersion(),
		Behavior: foldHash(k.clusterHash(cfg), uint64(cfg.NumProminent)),
		Seed:     k.seed,
		Length:   int64(k.rows),
	}
}

// timelineKey names one benchmark's phase-timeline artifact (the
// per-benchmark SimPoint-style analysis of AnalyzeTimeline).
func timelineKey(b *bench.Benchmark, cfg Config, maxPhases, total int) fcache.Key {
	h := foldHash(0xe7037ed1a0b428db, benchHash(b, total))
	h = foldHash(h, uint64(cfg.IntervalLength))
	h = foldHash(h, uint64(maxPhases))
	h = foldF64(h, cfg.MinPCStd)
	h = foldHash(h, uint64(cfg.Seed))
	return fcache.Key{
		Kind:     fcache.KindTimeline,
		Version:  artifactVersion(),
		Behavior: h,
		Seed:     uint64(cfg.Seed),
		Length:   int64(total),
	}
}

// --- small encoding helpers shared by the core artifact codecs ---

func appendU32(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

func appendString(buf []byte, s string) []byte {
	buf = appendU32(buf, len(s))
	return append(buf, s...)
}

func decodeU32(buf []byte) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("core: artifact truncated (u32)")
	}
	return int(binary.LittleEndian.Uint32(buf)), buf[4:], nil
}

func decodeString(buf []byte) (string, []byte, error) {
	n, buf, err := decodeU32(buf)
	if err != nil {
		return "", nil, err
	}
	if n < 0 || len(buf) < n {
		return "", nil, fmt.Errorf("core: artifact truncated (%d-byte string)", n)
	}
	return string(buf[:n]), buf[n:], nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func decodeF64(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("core: artifact truncated (f64)")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}

// --- shard artifact ---

// shardBench is one benchmark's slice of a shard artifact: the interval
// indices characterized (first-appearance order) and their vectors.
type shardBench struct {
	id      string
	indices []int
	vectors *stats.Matrix // len(indices) x mica.NumMetrics
}

// shardArtifact is the persisted output of characterizing one shard's
// benchmarks: every unique sampled interval's 69-characteristic vector,
// plus the instruction total the characterization accounts for.
type shardArtifact struct {
	benches      []shardBench
	instructions uint64
}

// uniqueCount is the number of unique intervals the shard holds.
func (a *shardArtifact) uniqueCount() int {
	n := 0
	for i := range a.benches {
		n += len(a.benches[i].indices)
	}
	return n
}

// MarshalBinary encodes the shard (encoding.BinaryMarshaler). The
// payload leads with the producing artifactVersion: a shard artifact is
// the one artifact that crosses process (and machine) boundaries, so it
// must be rejectable on version skew even without its cache key.
func (a *shardArtifact) MarshalBinary() ([]byte, error) {
	size := 4 + 4 + 8
	for i := range a.benches {
		size += 8 + len(a.benches[i].id) + 4*len(a.benches[i].indices) + 8 + 8*len(a.benches[i].vectors.Data)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, artifactVersion())
	buf = appendU32(buf, len(a.benches))
	for i := range a.benches {
		sb := &a.benches[i]
		buf = appendString(buf, sb.id)
		buf = appendU32(buf, len(sb.indices))
		for _, idx := range sb.indices {
			buf = appendU32(buf, idx)
		}
		buf = sb.vectors.AppendBinary(buf)
	}
	buf = binary.LittleEndian.AppendUint64(buf, a.instructions)
	return buf, nil
}

// UnmarshalBinary decodes a shard encoded by MarshalBinary
// (encoding.BinaryUnmarshaler), rejecting payloads produced under any
// other artifact schema version.
func (a *shardArtifact) UnmarshalBinary(data []byte) error {
	ver, data, err := decodeU32(data)
	if err != nil {
		return err
	}
	if uint32(ver) != artifactVersion() {
		return fmt.Errorf("core: shard artifact schema version %#x, want %#x", ver, artifactVersion())
	}
	nb, data, err := decodeU32(data)
	if err != nil {
		return err
	}
	// Each benchmark needs at least its id length, index count and matrix
	// header; a count that cannot fit the payload is rejected before the
	// slice allocation, not after it OOMs.
	if nb < 0 || nb > len(data)/16 {
		return fmt.Errorf("core: shard with %d benchmarks does not fit %d bytes", nb, len(data))
	}
	benches := make([]shardBench, nb)
	for i := range benches {
		sb := &benches[i]
		if sb.id, data, err = decodeString(data); err != nil {
			return fmt.Errorf("core: shard benchmark %d: %w", i, err)
		}
		var n int
		if n, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: shard %s: %w", sb.id, err)
		}
		if n < 0 || len(data) < 4*n {
			return fmt.Errorf("core: shard %s: %d indices do not fit payload", sb.id, n)
		}
		sb.indices = make([]int, n)
		for j := range sb.indices {
			sb.indices[j] = int(binary.LittleEndian.Uint32(data[4*j:]))
		}
		data = data[4*n:]
		if sb.vectors, data, err = stats.DecodeMatrix(data); err != nil {
			return fmt.Errorf("core: shard %s vectors: %w", sb.id, err)
		}
		if sb.vectors.Rows != n || sb.vectors.Cols != mica.NumMetrics {
			return fmt.Errorf("core: shard %s: %dx%d vector matrix for %d intervals",
				sb.id, sb.vectors.Rows, sb.vectors.Cols, n)
		}
	}
	if len(data) != 8 {
		return fmt.Errorf("core: shard tail is %d bytes, want 8", len(data))
	}
	a.benches = benches
	a.instructions = binary.LittleEndian.Uint64(data)
	return nil
}

// --- prominent-phase summary artifact ---

// summaryArtifact persists the prominent-phase summaries. Decoding needs
// the registry to restore each representative's *bench.Benchmark.
type summaryArtifact struct {
	reg    *bench.Registry
	phases []PhaseSummary
}

// MarshalBinary encodes the summaries (encoding.BinaryMarshaler).
func (a *summaryArtifact) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = appendU32(buf, len(a.phases))
	for i := range a.phases {
		p := &a.phases[i]
		buf = appendU32(buf, p.Cluster)
		buf = appendF64(buf, p.Weight)
		buf = append(buf, byte(p.Kind))
		repID := ""
		if p.Representative.Bench != nil {
			repID = p.Representative.Bench.ID()
		}
		buf = appendString(buf, repID)
		buf = appendU32(buf, p.Representative.Index)
		buf = appendU32(buf, p.Representative.Total)
		buf = appendU32(buf, len(p.RepVector))
		for _, v := range p.RepVector {
			buf = appendF64(buf, v)
		}
		buf = appendU32(buf, len(p.Composition))
		for _, c := range p.Composition {
			buf = appendString(buf, c.BenchID)
			buf = appendString(buf, string(c.Suite))
			buf = appendF64(buf, c.ClusterShare)
			buf = appendF64(buf, c.BenchmarkFraction)
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes summaries encoded by MarshalBinary, resolving
// representative benchmarks against the configured registry
// (encoding.BinaryUnmarshaler).
func (a *summaryArtifact) UnmarshalBinary(data []byte) error {
	n, data, err := decodeU32(data)
	if err != nil {
		return err
	}
	// A phase needs at least its fixed fields (cluster, weight, kind,
	// rep id/index/total, two counts); bound the allocation by the bytes
	// actually present.
	if n < 0 || n > len(data)/29 {
		return fmt.Errorf("core: summary with %d phases does not fit %d bytes", n, len(data))
	}
	phases := make([]PhaseSummary, n)
	for i := range phases {
		p := &phases[i]
		if p.Cluster, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if p.Weight, data, err = decodeF64(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if len(data) < 1 {
			return fmt.Errorf("core: summary phase %d truncated", i)
		}
		p.Kind = PhaseKind(data[0])
		data = data[1:]
		var repID string
		if repID, data, err = decodeString(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		var idx, total int
		if idx, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if total, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if repID != "" {
			b, lerr := a.reg.Lookup(repID)
			if lerr != nil {
				return fmt.Errorf("core: summary phase %d: %w", i, lerr)
			}
			p.Representative = IntervalRef{Bench: b, Index: idx, Total: total}
		}
		var nv int
		if nv, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if nv < 0 || len(data) < 8*nv {
			return fmt.Errorf("core: summary phase %d: %d-element vector does not fit", i, nv)
		}
		if nv > 0 {
			p.RepVector = make([]float64, nv)
			for j := range p.RepVector {
				p.RepVector[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*j:]))
			}
		}
		data = data[8*nv:]
		var nc int
		if nc, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: summary phase %d: %w", i, err)
		}
		if nc < 0 || nc > len(data)/24 {
			return fmt.Errorf("core: summary phase %d: %d composition entries do not fit %d bytes", i, nc, len(data))
		}
		if nc > 0 {
			p.Composition = make([]BenchShare, nc)
		}
		for j := range p.Composition {
			c := &p.Composition[j]
			if c.BenchID, data, err = decodeString(data); err != nil {
				return fmt.Errorf("core: summary phase %d share %d: %w", i, j, err)
			}
			var suite string
			if suite, data, err = decodeString(data); err != nil {
				return fmt.Errorf("core: summary phase %d share %d: %w", i, j, err)
			}
			c.Suite = bench.Suite(suite)
			if c.ClusterShare, data, err = decodeF64(data); err != nil {
				return fmt.Errorf("core: summary phase %d share %d: %w", i, j, err)
			}
			if c.BenchmarkFraction, data, err = decodeF64(data); err != nil {
				return fmt.Errorf("core: summary phase %d share %d: %w", i, j, err)
			}
		}
	}
	if len(data) != 0 {
		return fmt.Errorf("core: %d trailing bytes after summary", len(data))
	}
	a.phases = phases
	return nil
}

// --- timeline artifact ---

// timelineArtifact persists one benchmark's AnalyzeTimeline result.
type timelineArtifact struct {
	t Timeline
}

// MarshalBinary encodes the timeline (encoding.BinaryMarshaler).
func (a *timelineArtifact) MarshalBinary() ([]byte, error) {
	buf := appendString(nil, a.t.BenchID)
	buf = appendU32(buf, a.t.NumPhases)
	buf = appendU32(buf, a.t.Transitions)
	buf = appendU32(buf, len(a.t.Phases))
	for _, p := range a.t.Phases {
		buf = appendU32(buf, p)
	}
	buf = a.t.Vectors.AppendBinary(buf)
	return buf, nil
}

// UnmarshalBinary decodes a timeline encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (a *timelineArtifact) UnmarshalBinary(data []byte) error {
	var t Timeline
	var err error
	if t.BenchID, data, err = decodeString(data); err != nil {
		return fmt.Errorf("core: timeline: %w", err)
	}
	if t.NumPhases, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: timeline %s: %w", t.BenchID, err)
	}
	var n int
	if n, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: timeline %s: %w", t.BenchID, err)
	}
	t.Transitions = n
	if n, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: timeline %s: %w", t.BenchID, err)
	}
	if n < 0 || len(data) < 4*n {
		return fmt.Errorf("core: timeline %s: %d phases do not fit payload", t.BenchID, n)
	}
	t.Phases = make([]int, n)
	for i := range t.Phases {
		p := int(binary.LittleEndian.Uint32(data[4*i:]))
		if p < 0 || p >= t.NumPhases {
			return fmt.Errorf("core: timeline %s: phase %d = %d out of [0,%d)", t.BenchID, i, p, t.NumPhases)
		}
		t.Phases[i] = p
	}
	data = data[4*n:]
	var rest []byte
	if t.Vectors, rest, err = stats.DecodeMatrix(data); err != nil {
		return fmt.Errorf("core: timeline %s vectors: %w", t.BenchID, err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: timeline %s: %d trailing bytes", t.BenchID, len(rest))
	}
	if t.Vectors.Rows != len(t.Phases) || t.Vectors.Cols != mica.NumMetrics {
		return fmt.Errorf("core: timeline %s: %dx%d vectors for %d intervals",
			t.BenchID, t.Vectors.Rows, t.Vectors.Cols, len(t.Phases))
	}
	a.t = t
	return nil
}
