package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// cacheTestSetup builds a small sample over the standard registry.
func cacheTestSetup(t *testing.T) ([]IntervalRef, Config) {
	t.Helper()
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.SamplesPerBenchmark = 2
	cfg.MaxIntervalsPerBenchmark = 4
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, cfg)[:40]
	return refs, cfg
}

func datasetsBitIdentical(t *testing.T, a, b *Dataset, ctx string) {
	t.Helper()
	if a.Instructions != b.Instructions {
		t.Fatalf("%s: Instructions %d != %d", ctx, a.Instructions, b.Instructions)
	}
	if a.UniqueIntervals != b.UniqueIntervals {
		t.Fatalf("%s: UniqueIntervals %d != %d", ctx, a.UniqueIntervals, b.UniqueIntervals)
	}
	if len(a.Raw.Data) != len(b.Raw.Data) {
		t.Fatalf("%s: matrix sizes differ", ctx)
	}
	for i := range a.Raw.Data {
		if math.Float64bits(a.Raw.Data[i]) != math.Float64bits(b.Raw.Data[i]) {
			t.Fatalf("%s: matrix element %d: %v != %v (bit-exact)", ctx, i, a.Raw.Data[i], b.Raw.Data[i])
		}
	}
}

// TestCharacterizeCacheBitIdentical runs the same sample uncached, cache-
// cold, and cache-warm, and requires all three datasets bit-identical —
// the cache may only change speed, never a single stored bit.
func TestCharacterizeCacheBitIdentical(t *testing.T) {
	refs, cfg := cacheTestSetup(t)

	plain, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CacheHits != 0 {
		t.Fatalf("uncached run reported %d cache hits", plain.CacheHits)
	}

	cfg.CacheDir = t.TempDir()
	cold, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold cache run reported %d hits", cold.CacheHits)
	}
	cfg.Metrics = obs.New()
	warm, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.UniqueIntervals {
		t.Fatalf("warm run hit %d of %d unique intervals", warm.CacheHits, warm.UniqueIntervals)
	}
	// The observability layer must agree with the Dataset's own
	// accounting, hit for hit.
	if got := cfg.Metrics.Counter("fcache.hits").Value(); got != int64(warm.CacheHits) {
		t.Fatalf("fcache.hits counter = %d, want CacheHits = %d", got, warm.CacheHits)
	}
	cfg.Metrics = nil

	datasetsBitIdentical(t, plain, cold, "plain vs cold")
	datasetsBitIdentical(t, plain, warm, "plain vs warm")
}

// TestCharacterizeCorruptCacheRegenerates damages every cached entry and
// verifies the next run detects the damage, regenerates bit-identical
// results, and leaves the cache healed.
func TestCharacterizeCorruptCacheRegenerates(t *testing.T) {
	refs, cfg := cacheTestSetup(t)
	cfg.CacheDir = t.TempDir()

	cold, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in every entry file.
	var entries []string
	filepath.Walk(cfg.CacheDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			entries = append(entries, path)
		}
		return nil
	})
	if len(entries) == 0 {
		t.Fatal("cold run produced no cache entries")
	}
	for _, p := range entries {
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg.Metrics = obs.New()
	damaged, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if damaged.CacheHits != 0 {
		t.Fatalf("corrupt cache produced %d hits — corrupt entries were trusted", damaged.CacheHits)
	}
	// Every damaged entry's deletion must be visible, not silent.
	if got := cfg.Metrics.Counter("fcache.corrupt_deleted").Value(); got != int64(len(entries)) {
		t.Fatalf("fcache.corrupt_deleted = %d, want %d damaged entries", got, len(entries))
	}
	cfg.Metrics = nil
	datasetsBitIdentical(t, cold, damaged, "cold vs regenerated")

	// The regenerating run must also have healed the cache.
	healed, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if healed.CacheHits != healed.UniqueIntervals {
		t.Fatalf("healed cache hit %d of %d", healed.CacheHits, healed.UniqueIntervals)
	}
	datasetsBitIdentical(t, cold, healed, "cold vs healed")
}

// TestCharacterizeMemoBitIdentical pins the in-process dataset memo: a
// repeat Characterize of the same sample must return a bit-identical
// dataset, report its rows as cache-served when a cache directory is
// configured (and as uncached when not), and never let a caller's view
// of Refs alias the memoized entry.
func TestCharacterizeMemoBitIdentical(t *testing.T) {
	refs, cfg := cacheTestSetup(t)
	// The fresh cache directory is part of the memo key, so the first
	// run here is a guaranteed memo miss even though other tests
	// characterize the same sample.
	cfg.CacheDir = t.TempDir()

	cold, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	datasetsBitIdentical(t, cold, warm, "cold vs memo-warm")
	if warm.CacheHits != warm.UniqueIntervals {
		t.Fatalf("memo-warm run reported %d of %d hits", warm.CacheHits, warm.UniqueIntervals)
	}
	if len(warm.Refs) > 0 && &warm.Refs[0] == &cold.Refs[0] {
		t.Fatal("memo hit aliases the stored Refs slice")
	}

	// Without a cache directory the CacheHits contract is "0 without a
	// cache", memo hit or not.
	cfg.CacheDir = ""
	first, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	datasetsBitIdentical(t, first, second, "uncached repeat")
	if first.CacheHits != 0 || second.CacheHits != 0 {
		t.Fatalf("uncached runs reported %d and %d hits", first.CacheHits, second.CacheHits)
	}
}

// TestTimelineCacheBitIdentical pins the cached timeline path the same
// way: cold and warm runs must agree bit for bit with the uncached run.
func TestTimelineCacheBitIdentical(t *testing.T) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	b := reg.All()[0]
	cfg := TestConfig()
	cfg.MaxIntervalsPerBenchmark = 6

	plain, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheDir = t.TempDir()
	cold, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*Timeline{cold, warm} {
		if plain.Strip() != other.Strip() {
			t.Fatalf("timeline strips differ: %q vs %q", plain.Strip(), other.Strip())
		}
		for i := range plain.Vectors.Data {
			if math.Float64bits(plain.Vectors.Data[i]) != math.Float64bits(other.Vectors.Data[i]) {
				t.Fatalf("timeline vector element %d differs", i)
			}
		}
	}
}
