// Package core wires the paper's six-step phase-level characterization
// methodology end to end: microarchitecture-independent characterization of
// instruction intervals, per-benchmark interval sampling, PCA, k-means
// clustering with BIC, prominent-phase extraction, genetic-algorithm key
// characteristic selection, and the suite-level coverage / diversity /
// uniqueness analyses of section 5.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/ga"
	"repro/internal/obs"
)

// ShardSpec splits the characterization stage across processes: shard
// Index of Count characterizes the benchmarks whose registry position i
// satisfies i % Count == Index, and persists the resulting vectors as one
// shard artifact in the cache. The partition depends only on the registry
// order and Count, so any process can compute any shard independently and
// a merge run reassembles the exact single-process dataset.
type ShardSpec struct {
	// Index is the shard's 0-based index in [0, Count).
	Index int
	// Count is the total number of shards; 0 or 1 means unsharded.
	Count int
}

// IncrementalSpec configures the incremental "extend dataset" mode: a
// run whose benchmark roster is a superset of the latest cached run
// reuses the cached shard vectors and only characterizes the new rows,
// and — within the drift/shift tolerances below — reuses the cached PCA
// eigenbasis (frozen-basis projection) and warm-starts k-means from the
// cached centroids. With both tolerances at zero the analysis stages
// always recompute exactly, so the run is byte-identical to a cold full
// run (only the characterize stage takes the — also exact — delta path).
type IncrementalSpec struct {
	// Enabled turns the incremental mode on. Requires Config.CacheDir;
	// incompatible with sharded (merge) runs.
	Enabled bool
	// MaxPCADrift is the frozen-basis gate: the appended rows' mean
	// relative reconstruction error against the cached eigenbasis
	// (stats.PCA.ProjectionDrift, in [0,1]). At or below the threshold
	// the cached basis is reused; above it — or when the threshold is 0,
	// its zero value — PCA is refit from scratch.
	MaxPCADrift float64
	// MaxCentroidShift is the warm-start trust gate: the normalized
	// centroid movement of a warm-started Lloyd refinement away from the
	// cached centroids (cluster.Refine's shift). At or below the
	// threshold the refined clustering is kept; above it — or when the
	// threshold is 0 — the full restart-searched k-means reruns.
	MaxCentroidShift float64
}

// Config holds every knob of the pipeline. DefaultConfig returns the
// scaled-down equivalents of the paper's settings (see DESIGN.md for the
// mapping); zero-valued fields of a hand-built Config are filled with the
// defaults by Validate.
type Config struct {
	// IntervalLength is the number of synthetic instructions per
	// interval (the paper's 100M-instruction granularity, scaled down).
	IntervalLength int
	// SamplesPerBenchmark is how many intervals are sampled (with
	// replacement) per benchmark — the paper's 1,000.
	SamplesPerBenchmark int
	// MaxIntervalsPerBenchmark caps each benchmark's scaled interval
	// count.
	MaxIntervalsPerBenchmark int
	// SampleByBenchmark selects the paper's equal-weight-per-benchmark
	// sampling (true). False disables sampling and uses every interval
	// once — the ablation of section 2.4.
	SampleByBenchmark bool
	// NumClusters is k for the k-means step (the paper's 300).
	NumClusters int
	// NumProminent is how many top-weight clusters become "prominent
	// phases" (the paper's 100).
	NumProminent int
	// MinPCStd is the principal-component retention threshold (the
	// paper keeps components with standard deviation > 1).
	MinPCStd float64
	// KeyCharacteristics is the GA target cardinality (the paper's 12).
	KeyCharacteristics int
	// Workers bounds the pipeline's parallelism — characterization,
	// clustering, GA fitness evaluation and the distance kernels; 0 =
	// GOMAXPROCS. Every stage is worker-count deterministic: a run's
	// Result (and its JSON export) is byte-identical for any Workers.
	Workers int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Metrics, when non-nil, receives the run's observability data:
	// per-stage spans (characterize, pca, kmeans, prominent, ga.select,
	// timeline.*) and the cache/pool/cluster/GA counters documented in
	// DESIGN.md. Nil disables observability at near-zero cost; metrics
	// never feed back into the pipeline, so results stay byte-identical
	// either way.
	Metrics *obs.Metrics `json:"-"`
	// ReportPath, when non-empty, makes Run write the machine-readable
	// JSON run report (obs.Report: spans + counters) to this file when
	// the run completes. If Metrics is nil, Validate creates a collector
	// so the report has something to say.
	ReportPath string
	// CacheDir, when non-empty, enables the persistent interval-vector
	// cache (internal/fcache) rooted at that directory: characterized
	// interval vectors are stored keyed by (behavior hash, seed, length,
	// kernel schema version) and later runs reuse them instead of
	// regenerating the interval, with bit-identical results. Empty
	// disables caching.
	CacheDir string
	// Shard, when Count > 1, makes Run a merge run: instead of
	// characterizing everything in-process, each shard's dataset artifact
	// is loaded from the cache (shards computed elsewhere via
	// CharacterizeShard / `phasechar -shard i/n`), any missing shard is
	// characterized locally, and the analysis stages run over the merged
	// dataset. Requires CacheDir. The merged result is byte-identical to
	// the single-process run at any worker count and any cache state.
	Shard ShardSpec
	// Incremental configures the extend-dataset mode (see
	// IncrementalSpec). Requires CacheDir when enabled.
	Incremental IncrementalSpec
	// MemoBudget bounds the in-process dataset memo (memo.go) by
	// approximate payload bytes: 0 means the 64 MiB default, a negative
	// value disables memoization entirely.
	MemoBudget int64
	// Resume, when true (requires CacheDir), makes every pipeline stage
	// check the cache for its own output artifact first: a rerun with the
	// same config skips each completed stage and recomputes only what is
	// missing or fails validation. Off by default so cache counters keep
	// their cold/warm interval-vector semantics.
	Resume bool
	// KMeans configures the clustering step. A zero KMeans.Seed means
	// "inherit Config.Seed" and a zero KMeans.Workers means "inherit
	// Config.Workers" — Validate resolves both, so a caller who wants
	// the clustering stage decoupled from the pipeline seed must set
	// KMeans.Seed to a nonzero value. (Inside the cluster package
	// itself, seed 0 is an ordinary seed: sub-seeds are derived with a
	// SplitMix64-style hash, never compared against 0.)
	KMeans cluster.Options
	// GA configures the key-characteristic search. Zero GA.Seed /
	// GA.Workers inherit Config.Seed / Config.Workers exactly as for
	// KMeans above.
	GA ga.Config
	// Registry, when non-nil, names the benchmark roster the run is
	// over; Run falls back to it when called with a nil registry
	// argument. The registry never feeds the artifact key chain directly
	// — dataset and stage keys fold each benchmark's behavior hashes, so
	// two registries with identical rosters share cache entries and a
	// roster change (loaded models, filtered suites) re-keys exactly the
	// affected artifacts.
	Registry *bench.Registry `json:"-"`
}

// DefaultConfig returns the default, laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		IntervalLength:           20000,
		SamplesPerBenchmark:      150,
		MaxIntervalsPerBenchmark: 160,
		SampleByBenchmark:        true,
		NumClusters:              300,
		NumProminent:             100,
		MinPCStd:                 1.0,
		KeyCharacteristics:       12,
		Seed:                     1,
		KMeans:                   cluster.Options{Restarts: 3, MaxIters: 60},
		GA:                       ga.Config{},
	}
}

// TestConfig returns a tiny configuration for fast tests: a few seconds of
// work end to end.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.IntervalLength = 2000
	cfg.SamplesPerBenchmark = 8
	cfg.MaxIntervalsPerBenchmark = 16
	cfg.NumClusters = 40
	cfg.NumProminent = 20
	cfg.KMeans = cluster.Options{Restarts: 2, MaxIters: 25}
	cfg.GA = ga.Config{Populations: 2, PopulationSize: 10, MaxGenerations: 12, Patience: 5}
	return cfg
}

// Validate fills zero fields with defaults and rejects inconsistent
// settings.
func (c *Config) Validate() error {
	def := DefaultConfig()
	if c.IntervalLength == 0 {
		c.IntervalLength = def.IntervalLength
	}
	if c.SamplesPerBenchmark == 0 {
		c.SamplesPerBenchmark = def.SamplesPerBenchmark
	}
	if c.MaxIntervalsPerBenchmark == 0 {
		c.MaxIntervalsPerBenchmark = def.MaxIntervalsPerBenchmark
	}
	if c.NumClusters == 0 {
		c.NumClusters = def.NumClusters
	}
	if c.NumProminent == 0 {
		c.NumProminent = def.NumProminent
	}
	if c.MinPCStd == 0 {
		c.MinPCStd = def.MinPCStd
	}
	if c.KeyCharacteristics == 0 {
		c.KeyCharacteristics = def.KeyCharacteristics
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ReportPath != "" && c.Metrics == nil {
		c.Metrics = obs.New()
	}
	// Resolve the documented zero-field inheritance of the per-stage
	// knobs: clustering and GA follow the pipeline seed and worker count
	// (and the observability collector) unless explicitly overridden.
	if c.KMeans.Metrics == nil {
		c.KMeans.Metrics = c.Metrics
	}
	if c.GA.Metrics == nil {
		c.GA.Metrics = c.Metrics
	}
	if c.KMeans.Seed == 0 {
		c.KMeans.Seed = c.Seed
	}
	if c.KMeans.Workers == 0 {
		c.KMeans.Workers = c.Workers
	}
	if c.GA.Seed == 0 {
		c.GA.Seed = c.Seed
	}
	if c.GA.Workers == 0 {
		c.GA.Workers = c.Workers
	}
	if c.IntervalLength < 100 {
		return fmt.Errorf("core: interval length %d too small (min 100)", c.IntervalLength)
	}
	if c.SamplesPerBenchmark < 1 {
		return fmt.Errorf("core: samples per benchmark %d < 1", c.SamplesPerBenchmark)
	}
	if c.NumProminent > c.NumClusters {
		return fmt.Errorf("core: %d prominent phases exceed %d clusters", c.NumProminent, c.NumClusters)
	}
	if c.MinPCStd < 0 {
		return fmt.Errorf("core: negative PC retention threshold")
	}
	if c.Shard.Count < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shard.Count)
	}
	if c.Shard.Count > 1 && (c.Shard.Index < 0 || c.Shard.Index >= c.Shard.Count) {
		return fmt.Errorf("core: shard index %d outside [0,%d)", c.Shard.Index, c.Shard.Count)
	}
	if c.Shard.Count > 1 && c.CacheDir == "" {
		return fmt.Errorf("core: sharded runs need a cache directory (shard artifacts live there)")
	}
	if c.Resume && c.CacheDir == "" {
		return fmt.Errorf("core: resume needs a cache directory (stage artifacts live there)")
	}
	if c.Incremental.Enabled && c.CacheDir == "" {
		return fmt.Errorf("core: incremental runs need a cache directory (baseline artifacts live there)")
	}
	if c.Incremental.Enabled && c.Shard.Count > 1 {
		return fmt.Errorf("core: incremental mode is incompatible with sharded runs (the baseline manifest describes a single-process dataset)")
	}
	if c.Incremental.MaxPCADrift < 0 {
		return fmt.Errorf("core: negative PCA drift threshold %v", c.Incremental.MaxPCADrift)
	}
	if c.Incremental.MaxCentroidShift < 0 {
		return fmt.Errorf("core: negative centroid shift threshold %v", c.Incremental.MaxCentroidShift)
	}
	return nil
}
