package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/mica"
	"repro/internal/trace"
)

// miniRegistry builds a small registry with two clearly distinct suites,
// fast enough for unit tests.
func miniRegistry(t *testing.T) *bench.Registry {
	t.Helper()
	mk := func(name string, suite bench.Suite, intervals int, phases ...bench.Phase) *bench.Benchmark {
		return &bench.Benchmark{Name: name, Suite: suite, PaperIntervals: intervals, Phases: phases}
	}
	serial := func(name string) trace.PhaseBehavior {
		return trace.PhaseBehavior{
			Name: name, Mix: trace.BaseMix(), CodeSize: 800,
			Branch: trace.BranchSpec{TakenBias: 0.5, PatternPeriod: 0},
			Reg:    trace.RegDepSpec{MeanDepDist: 2, AvgSrcRegs: 1.4, WriteFraction: 0.7},
			Loads:  []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 22}},
			Stores: []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 20}},
			Jitter: 0.05,
		}
	}
	stream := func(name string) trace.PhaseBehavior {
		return trace.PhaseBehavior{
			Name: name, Mix: trace.FPBaseMix(), CodeSize: 800,
			Branch: trace.BranchSpec{TakenBias: 0.95, PatternPeriod: 32, NoiseLevel: 0.01},
			Reg:    trace.RegDepSpec{MeanDepDist: 20, AvgSrcRegs: 2, WriteFraction: 0.9},
			Loads:  []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 22, Stride: 8}},
			Stores: []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 20, Stride: 8}},
			Jitter: 0.05,
		}
	}
	reg, err := bench.NewRegistry([]*bench.Benchmark{
		mk("s1", "SuiteA", 100, bench.Phase{Weight: 1, Behavior: serial("s1/p")}),
		mk("s2", "SuiteA", 200, bench.Phase{Weight: 0.5, Behavior: serial("s2/a")},
			bench.Phase{Weight: 0.5, Behavior: stream("s2/b")}),
		mk("f1", "SuiteB", 100, bench.Phase{Weight: 1, Behavior: stream("f1/p")}),
		mk("f2", "SuiteB", 300, bench.Phase{Weight: 1, Behavior: stream("f2/p")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func miniConfig() Config {
	cfg := TestConfig()
	cfg.IntervalLength = 1500
	cfg.SamplesPerBenchmark = 10
	cfg.MaxIntervalsPerBenchmark = 12
	cfg.NumClusters = 6
	cfg.NumProminent = 6
	return cfg
}

func TestConfigValidateFillsDefaults(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.IntervalLength != def.IntervalLength || cfg.NumClusters != def.NumClusters {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Workers < 1 {
		t.Fatal("workers not defaulted")
	}
}

func TestConfigValidateRejects(t *testing.T) {
	tests := []struct {
		mut  func(*Config)
		want string
	}{
		{func(c *Config) { c.IntervalLength = 10 }, "interval length"},
		{func(c *Config) { c.SamplesPerBenchmark = -1 }, "samples"},
		{func(c *Config) { c.NumProminent = 500; c.NumClusters = 100 }, "prominent"},
		{func(c *Config) { c.MinPCStd = -1 }, "threshold"},
	}
	for _, tt := range tests {
		cfg := DefaultConfig()
		tt.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("expected error mentioning %q, got %v", tt.want, err)
		}
	}
}

func TestSampleRefsEqualWeight(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, cfg)
	if len(refs) != reg.Len()*cfg.SamplesPerBenchmark {
		t.Fatalf("sampled %d refs, want %d", len(refs), reg.Len()*cfg.SamplesPerBenchmark)
	}
	perBench := map[string]int{}
	for _, r := range refs {
		perBench[r.Bench.ID()]++
		if r.Index < 0 || r.Index >= r.Total {
			t.Fatalf("ref index %d out of [0,%d)", r.Index, r.Total)
		}
	}
	for id, n := range perBench {
		if n != cfg.SamplesPerBenchmark {
			t.Fatalf("benchmark %s sampled %d times", id, n)
		}
	}
}

func TestSampleRefsRaw(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.SampleByBenchmark = false
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, cfg)
	seen := map[string]bool{}
	for _, r := range refs {
		key := r.String()
		if seen[key] {
			t.Fatalf("raw sampling duplicated %s", key)
		}
		seen[key] = true
	}
	var want int
	for _, b := range reg.All() {
		want += b.ScaledIntervals(cfg.MaxIntervalsPerBenchmark)
	}
	if len(refs) != want {
		t.Fatalf("raw sampling yielded %d refs, want %d", len(refs), want)
	}
}

func TestSampleRefsDeterministic(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	a := SampleRefs(reg, cfg)
	b := SampleRefs(reg, cfg)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestCharacterizeDedupsWork(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, cfg)
	ds, err := Characterize(refs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Raw.Rows != len(refs) {
		t.Fatalf("dataset has %d rows for %d refs", ds.Raw.Rows, len(refs))
	}
	if ds.Raw.Cols != mica.NumMetrics {
		t.Fatalf("dataset has %d columns", ds.Raw.Cols)
	}
	if ds.UniqueIntervals >= len(refs) {
		t.Fatalf("no dedup: %d unique of %d refs (sampling with replacement must repeat)", ds.UniqueIntervals, len(refs))
	}
	wantInstr := uint64(ds.UniqueIntervals) * uint64(cfg.IntervalLength)
	if ds.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", ds.Instructions, wantInstr)
	}
	// Duplicate refs must carry identical vectors.
	byKey := map[string][]float64{}
	for i, r := range refs {
		key := r.String()
		if prev, ok := byKey[key]; ok {
			row := ds.Raw.Row(i)
			for j := range row {
				if row[j] != prev[j] {
					t.Fatalf("duplicate ref %s has differing vectors", key)
				}
			}
		} else {
			byKey[key] = ds.Raw.Row(i)
		}
	}
}

func TestCharacterizeEmptyFails(t *testing.T) {
	cfg := miniConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Characterize(nil, cfg); err == nil {
		t.Fatal("empty ref list accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if res.NumPCs < 1 || res.NumPCs > mica.NumMetrics {
		t.Fatalf("retained %d PCs", res.NumPCs)
	}
	if res.Scores.Rows != len(res.Dataset.Refs) || res.Scores.Cols != res.NumPCs {
		t.Fatalf("scores shape %dx%d", res.Scores.Rows, res.Scores.Cols)
	}
	if res.Clusters.K != 6 {
		t.Fatalf("clusters = %d", res.Clusters.K)
	}

	// Prominent phases sorted by weight, weights in (0,1], coverage sane.
	if len(res.Prominent) != 6 {
		t.Fatalf("prominent = %d", len(res.Prominent))
	}
	for i, p := range res.Prominent {
		if p.Weight <= 0 || p.Weight > 1 {
			t.Fatalf("phase %d weight %v", i, p.Weight)
		}
		if i > 0 && p.Weight > res.Prominent[i-1].Weight+1e-12 {
			t.Fatal("prominent phases not sorted by weight")
		}
		if len(p.RepVector) != mica.NumMetrics {
			t.Fatalf("representative vector length %d", len(p.RepVector))
		}
		var shares float64
		for _, c := range p.Composition {
			shares += c.ClusterShare
		}
		if math.Abs(shares-1) > 1e-9 {
			t.Fatalf("phase %d composition sums to %v", i, shares)
		}
	}
	if cov := res.ProminentCoverage(); math.Abs(cov-1) > 1e-9 {
		// All 6 clusters are prominent here, so coverage must be 100%.
		t.Fatalf("full prominent coverage = %v", cov)
	}
}

func TestRunSuiteAnalyses(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	cov := res.SuiteCoverage()
	for s, n := range cov {
		if n < 1 || n > res.Clusters.K {
			t.Fatalf("suite %s coverage %d", s, n)
		}
	}

	for _, s := range []bench.Suite{"SuiteA", "SuiteB"} {
		curve := res.CumulativeCoverage(s)
		if len(curve) == 0 {
			t.Fatalf("no coverage curve for %s", s)
		}
		prev := 0.0
		for _, c := range curve {
			if c < prev-1e-12 {
				t.Fatalf("coverage curve not monotone for %s: %v", s, curve)
			}
			prev = c
		}
		if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
			t.Fatalf("coverage curve for %s ends at %v", s, curve[len(curve)-1])
		}
		if res.ClustersFor(s, 0.8) < 1 || res.ClustersFor(s, 0.8) > len(curve) {
			t.Fatalf("ClustersFor out of range")
		}
	}

	uf := res.UniqueFraction()
	for s, f := range uf {
		if f < 0 || f > 1 {
			t.Fatalf("unique fraction for %s = %v", s, f)
		}
	}

	kb := res.KindBreakdown()
	total := kb[BenchmarkSpecific] + kb[SuiteSpecific] + kb[Mixed]
	nonEmpty := 0
	for _, s := range res.Clusters.Sizes {
		if s > 0 {
			nonEmpty++
		}
	}
	if total != nonEmpty {
		t.Fatalf("kind breakdown covers %d clusters, want %d non-empty", total, nonEmpty)
	}
}

func TestPhaseKindClassification(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Prominent {
		benches := map[string]bool{}
		suites := map[bench.Suite]bool{}
		for _, c := range p.Composition {
			benches[c.BenchID] = true
			suites[c.Suite] = true
		}
		want := Mixed
		switch {
		case len(benches) == 1:
			want = BenchmarkSpecific
		case len(suites) == 1:
			want = SuiteSpecific
		}
		if p.Kind != want {
			t.Fatalf("cluster %d kind %v, want %v (benches=%d suites=%d)",
				p.Cluster, p.Kind, want, len(benches), len(suites))
		}
	}
}

func TestPhaseKindString(t *testing.T) {
	if BenchmarkSpecific.String() != "benchmark-specific" ||
		SuiteSpecific.String() != "suite-specific" || Mixed.String() != "mixed" {
		t.Fatal("phase kind names wrong")
	}
}

func TestRunDeterministic(t *testing.T) {
	reg := miniRegistry(t)
	a, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clusters.Assignments {
		if a.Clusters.Assignments[i] != b.Clusters.Assignments[i] {
			t.Fatal("pipeline not deterministic")
		}
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	reg := miniRegistry(t)
	cfg1 := miniConfig()
	cfg1.Workers = 1
	cfg4 := miniConfig()
	cfg4.Workers = 4
	a, err := Run(reg, cfg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(reg, cfg4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dataset.Raw.Data {
		if a.Dataset.Raw.Data[i] != b.Dataset.Raw.Data[i] {
			t.Fatal("worker count changed the characterization")
		}
	}
}

func TestRunRejectsTooManyClusters(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.NumClusters = 10000
	cfg.NumProminent = 10
	if _, err := Run(reg, cfg, nil); err == nil {
		t.Fatal("k > intervals accepted")
	}
}

func TestSelectKeyCharacteristics(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.NumClusters = 12
	cfg.NumProminent = 12
	cfg.SamplesPerBenchmark = 15
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := res.SelectKeyCharacteristics(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 5 {
		t.Fatalf("selected %d characteristics", len(sel.Selected))
	}
	if sel.Fitness <= 0 {
		t.Fatalf("selection fitness %v", sel.Fitness)
	}
	sweep, err := res.SweepKeyCharacteristics([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 || sweep[0].Count != 2 || sweep[1].Count != 5 {
		t.Fatalf("sweep malformed: %+v", sweep)
	}
}

func TestBenchmarkFractionInCluster(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for c := 0; c < res.Clusters.K; c++ {
		total += res.BenchmarkFractionInCluster("SuiteA/s1", c)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("benchmark fractions sum to %v", total)
	}
	if res.BenchmarkFractionInCluster("nope/x", 0) != 0 {
		t.Fatal("unknown benchmark fraction nonzero")
	}
}

func TestIntervalRefString(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s1")
	if err != nil {
		t.Fatal(err)
	}
	r := IntervalRef{Bench: b, Index: 3, Total: 10}
	if r.String() != "SuiteA/s1#3" {
		t.Fatalf("ref string = %q", r.String())
	}
	if r.PhaseName() != "s1/p" {
		t.Fatalf("phase name = %q", r.PhaseName())
	}
}
