package core

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/fcache"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/trace"
)

// IntervalRef identifies one instruction interval of one benchmark.
type IntervalRef struct {
	// Bench is the benchmark the interval belongs to.
	Bench *bench.Benchmark
	// Index is the interval's position in the benchmark's execution.
	Index int
	// Total is the benchmark's total (scaled) interval count.
	Total int
}

// PhaseName returns the name of the scheduled phase the interval executes.
func (r IntervalRef) PhaseName() string {
	return r.Bench.BehaviorAt(r.Index, r.Total).Name
}

// String renders "suite/bench#index".
func (r IntervalRef) String() string {
	return fmt.Sprintf("%s#%d", r.Bench.ID(), r.Index)
}

// Dataset is the sampled, characterized interval population: one row of 69
// MICA characteristics per sampled interval (rows may repeat an interval —
// sampling is with replacement, exactly as in the paper).
type Dataset struct {
	// Refs identifies each row's interval.
	Refs []IntervalRef
	// Raw is the len(Refs) x 69 characteristic matrix.
	Raw *stats.Matrix
	// UniqueIntervals is how many distinct intervals were characterized.
	UniqueIntervals int
	// Instructions is the total number of synthetic instructions the
	// characterization accounts for. Intervals served from the vector
	// cache contribute their interval length without being regenerated,
	// so the total is identical whether a run was cold or cache-warm.
	Instructions uint64
	// CacheHits is how many unique intervals were served from the
	// interval-vector cache (0 without a cache).
	CacheHits int
}

// VectorKey builds the interval-vector cache key for one interval: the
// behaviour's full content hash, the interval seed and length, plus the
// kernel's schema version. Everything that can change a single generated
// or measured bit is in the key, so a hit is exactly equivalent to
// regenerating.
func VectorKey(beh *trace.PhaseBehavior, seed uint64, length int) fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindVector,
		Version:  mica.SchemaVersion,
		Behavior: beh.BehaviorHash(),
		Seed:     seed,
		Length:   int64(length),
	}
}

// SampleRefs draws the per-benchmark interval sample. With
// cfg.SampleByBenchmark (the paper's design) every benchmark contributes
// exactly cfg.SamplesPerBenchmark rows, drawn with replacement from its
// intervals; otherwise every interval of every benchmark appears exactly
// once (the section 2.4 ablation).
func SampleRefs(reg *bench.Registry, cfg Config) []IntervalRef {
	var refs []IntervalRef
	for _, b := range reg.All() {
		total := b.ScaledIntervals(cfg.MaxIntervalsPerBenchmark)
		if cfg.SampleByBenchmark {
			rng := trace.NewRNG(uint64(cfg.Seed)*0x9e37 + trace.HashString(b.ID()))
			for s := 0; s < cfg.SamplesPerBenchmark; s++ {
				refs = append(refs, IntervalRef{Bench: b, Index: rng.Intn(total), Total: total})
			}
		} else {
			for i := 0; i < total; i++ {
				refs = append(refs, IntervalRef{Bench: b, Index: i, Total: total})
			}
		}
	}
	return refs
}

// Characterize generates and characterizes the sampled intervals, sharing
// work between duplicate samples. It is the pipeline's step 1+2 (paper
// sections 2.3–2.4) and by far its most expensive stage; work is spread
// over cfg.Workers goroutines.
func Characterize(refs []IntervalRef, cfg Config) (*Dataset, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("core: no intervals to characterize")
	}

	// Repeat characterizations of the same sample in one process are
	// served from the in-process memo (see memo.go for what a hit may
	// and may not shortcut). Observed runs always take the real path.
	memoKey := datasetKey(refs, cfg)
	if cfg.Metrics == nil {
		if ds, ok := lookupDataset(memoKey); ok {
			return ds, nil
		}
	}

	type key struct {
		id    string
		index int
	}
	unique := make(map[key]int) // -> slot in vectors
	var work []IntervalRef
	for _, r := range refs {
		k := key{r.Bench.ID(), r.Index}
		if _, ok := unique[k]; !ok {
			unique[k] = len(work)
			work = append(work, r)
		}
	}

	var cache *fcache.Cache
	if cfg.CacheDir != "" {
		var err error
		if cache, err = fcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
		cache.SetMetrics(cfg.Metrics)
	}
	vectors, instructions, cacheHits, err := characterizeUnique(work, cfg, cache)
	if err != nil {
		return nil, err
	}

	raw := stats.NewMatrix(len(refs), mica.NumMetrics)
	for i, r := range refs {
		copy(raw.Row(i), vectors[unique[key{r.Bench.ID(), r.Index}]])
	}
	ds := &Dataset{
		Refs:            append([]IntervalRef(nil), refs...),
		Raw:             raw,
		UniqueIntervals: len(work),
		Instructions:    instructions,
		CacheHits:       cacheHits,
	}
	storeDataset(memoKey, ds, cfg.MemoBudget)
	return ds, nil
}

// characterizeUnique is the characterization kernel shared by the
// whole-dataset path (Characterize) and the engine's shard path: it
// generates and measures the given already-deduplicated intervals and
// returns one vector per interval, the instruction total, and the
// vector-cache hit count.
func characterizeUnique(work []IntervalRef, cfg Config, cache *fcache.Cache) ([][]float64, uint64, int, error) {
	span := cfg.Metrics.StartSpan("characterize").SetRows(len(work)).SetWorkers(par.Workers(cfg.Workers))
	defer span.End()

	// Fan the unique intervals out over the par worker pool. Analyzers
	// are heavy, so each worker keeps one (plus a reusable generation
	// batch buffer) and resets it per interval; every interval writes
	// only its own vectors/errs slot and the per-worker instruction and
	// cache-hit counts are integers, so the dataset is identical for any
	// worker count — and, because a cached vector is the bit-exact stored
	// output of the same kernel, for any cache state.
	workers := par.Workers(cfg.Workers)
	vectors := make([][]float64, len(work))
	errs := make([]error, len(work))
	analyzers := make([]*mica.Analyzer, workers)
	buffers := make([][]isa.Instruction, workers)
	instrParts := make([]uint64, workers)
	hitParts := make([]int, workers)
	par.ForWorker(workers, len(work), func(w, i int) {
		r := work[i]
		beh := r.Bench.BehaviorAt(r.Index, r.Total)
		seed := r.Bench.IntervalSeed(r.Index)
		var key fcache.Key
		if cache != nil {
			key = VectorKey(beh, seed, cfg.IntervalLength)
			if v, ok := cache.GetVector(key, mica.NumMetrics); ok {
				vectors[i] = v
				instrParts[w] += uint64(cfg.IntervalLength)
				hitParts[w]++
				return
			}
		}
		analyzer := analyzers[w]
		if analyzer == nil {
			analyzer = mica.NewAnalyzer()
			analyzers[w] = analyzer
			buffers[w] = make([]isa.Instruction, trace.DefaultBatchSize)
		}
		analyzer.Reset()
		err := trace.GenerateIntervalBatches(beh, seed, cfg.IntervalLength, buffers[w], analyzer.RecordBatch)
		if err != nil {
			errs[i] = fmt.Errorf("core: interval %s: %w", r, err)
			return
		}
		vectors[i] = analyzer.Vector()
		instrParts[w] += analyzer.Total()
		if cache != nil {
			// Best-effort: a failed write only costs regeneration later.
			_ = cache.PutVector(key, vectors[i])
		}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, 0, 0, err
	}
	var instructions uint64
	var cacheHits int
	for w := range instrParts {
		instructions += instrParts[w]
		cacheHits += hitParts[w]
	}
	return vectors, instructions, cacheHits, nil
}
