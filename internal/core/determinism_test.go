package core

import (
	"bytes"
	"testing"
)

// Worker-count invariance is the contract the parallel analysis stages
// must keep: the entire pipeline output — clustering, prominent phases,
// GA selections, JSON export — is byte-identical whether it ran on one
// worker or many. These tests exercise the contract end to end; the
// per-stage variants live in the cluster, ga and stats packages.

func runAtWorkers(t *testing.T, workers int) *Result {
	t.Helper()
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.Workers = workers
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunExportWorkerCountInvariance(t *testing.T) {
	ref := runAtWorkers(t, 1)
	var refJSON bytes.Buffer
	if err := ref.WriteJSON(&refJSON); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got := runAtWorkers(t, workers)
		var gotJSON bytes.Buffer
		if err := got.WriteJSON(&gotJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON.Bytes(), gotJSON.Bytes()) {
			t.Fatalf("workers=%d JSON export differs from workers=1", workers)
		}
		// The export summarizes; also compare the underlying state
		// bit-for-bit.
		if got.Clusters.BIC != ref.Clusters.BIC || got.Clusters.Inertia != ref.Clusters.Inertia {
			t.Fatalf("workers=%d clustering scores differ", workers)
		}
		for i := range ref.Clusters.Assignments {
			if got.Clusters.Assignments[i] != ref.Clusters.Assignments[i] {
				t.Fatalf("workers=%d assignment %d differs", workers, i)
			}
		}
		for i := range ref.Scores.Data {
			if got.Scores.Data[i] != ref.Scores.Data[i] {
				t.Fatalf("workers=%d PCA score %d differs", workers, i)
			}
		}
	}
}

func TestSelectKeyCharacteristicsWorkerCountInvariance(t *testing.T) {
	mk := func(workers int) (sel []int, fitness float64, evals int) {
		t.Helper()
		reg := miniRegistry(t)
		cfg := miniConfig()
		cfg.NumClusters = 12
		cfg.NumProminent = 12
		cfg.SamplesPerBenchmark = 15
		cfg.Workers = workers
		res, err := Run(reg, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := res.SelectKeyCharacteristics(5)
		if err != nil {
			t.Fatal(err)
		}
		return s.Selected, s.Fitness, s.Evaluations
	}
	refSel, refFit, refEvals := mk(1)
	gotSel, gotFit, gotEvals := mk(8)
	if gotFit != refFit || gotEvals != refEvals {
		t.Fatalf("GA diverged across worker counts: fitness %v vs %v, evals %d vs %d",
			gotFit, refFit, gotEvals, refEvals)
	}
	for i := range refSel {
		if gotSel[i] != refSel[i] {
			t.Fatalf("selected %v at 8 workers, %v at 1", gotSel, refSel)
		}
	}
}

func TestAnalyzeTimelineWorkerCountInvariance(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s2")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *Timeline {
		cfg := miniConfig()
		cfg.Workers = workers
		tl, err := AnalyzeTimeline(b, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	ref := mk(1)
	got := mk(8)
	if got.NumPhases != ref.NumPhases || got.Transitions != ref.Transitions {
		t.Fatalf("timeline shape diverged: %d/%d phases, %d/%d transitions",
			got.NumPhases, ref.NumPhases, got.Transitions, ref.Transitions)
	}
	if got.Strip() != ref.Strip() {
		t.Fatalf("timeline strip diverged: %q vs %q", got.Strip(), ref.Strip())
	}
	for i := range ref.Vectors.Data {
		if got.Vectors.Data[i] != ref.Vectors.Data[i] {
			t.Fatalf("characterization vector element %d differs", i)
		}
	}
}

// TestSeedZeroPipelineValid pins the documented Seed == 0 behavior at the
// core layer: the pipeline itself accepts seed 0 and stays deterministic
// (per-stage zero seeds inherit it, and the stages treat 0 as an ordinary
// seed).
func TestSeedZeroPipelineValid(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.Seed = 0
	a, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := miniConfig()
	cfg2.Seed = 0
	b, err := Run(reg, cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clusters.Assignments {
		if a.Clusters.Assignments[i] != b.Clusters.Assignments[i] {
			t.Fatal("seed 0 pipeline not deterministic")
		}
	}
}
