package core

// The stage engine behind Run: each analysis stage (characterize, pca,
// scores, kmeans, prominent) declares its output as a serializable
// artifact with a content-addressed key (see artifacts.go), persisted
// through internal/fcache. The engine gives Run three properties the old
// monolith lacked:
//
//   - persistable intermediates: with a cache configured, every stage's
//     output is written as a checksummed artifact;
//   - resume: with Config.Resume, a rerun with the same config loads each
//     completed stage's artifact instead of recomputing it (a corrupt or
//     stale artifact misses and the stage recomputes — never fails);
//   - sharded characterization: with Config.Shard.Count > 1, the dominant
//     characterize stage is assembled from per-shard dataset artifacts
//     computed independently (CharacterizeShard / `phasechar -shard`).
//
// The load-bearing invariant: loading an artifact is bit-for-bit
// equivalent to recomputing it, so any mix of computed, resumed and
// merged stages yields a byte-identical Result at any worker count.

import (
	"encoding"
	"fmt"

	"repro/internal/bench"
	"repro/internal/fcache"
	"repro/internal/mica"
	"repro/internal/obs"
	"repro/internal/stats"
)

// stageArtifact is what the engine persists and restores per stage.
type stageArtifact interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// engine carries one run's stage-execution state.
type engine struct {
	reg   *bench.Registry
	cfg   Config
	cache *fcache.Cache // nil when no cache directory is configured
	keys  *artifactKeys // nil iff cache is nil
	delta *deltaPlan    // non-nil iff an extend-dataset plan applies
	logf  func(format string, args ...any)
}

// newEngine opens the cache (when configured) and precomputes the
// artifact key chain. refs must be the run's sampled dataset. With
// incremental mode enabled it also resolves the extend-dataset plan
// against the cached baseline manifest (see incremental.go).
func newEngine(reg *bench.Registry, cfg Config, refs []IntervalRef, logf func(string, ...any)) (*engine, error) {
	e := &engine{reg: reg, cfg: cfg, logf: logf}
	if cfg.CacheDir != "" {
		cache, err := fcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		cache.SetMetrics(cfg.Metrics)
		e.cache = cache
		e.keys = newArtifactKeys(reg, cfg, len(refs))
		if cfg.Incremental.Enabled && cfg.Shard.Count <= 1 {
			e.delta = e.planDelta()
			if e.delta == nil {
				cfg.Metrics.Add("engine.delta_inapplicable", 1)
			}
		}
	}
	return e, nil
}

// Key accessors tolerate cache-less runs: without a cache there is no
// key chain (e.keys is nil) and the zero Key is never used, because
// stage() only touches keys when e.cache is non-nil.

func (e *engine) pcaKey() fcache.Key {
	if e.keys == nil {
		return fcache.Key{}
	}
	return e.keys.pcaKey()
}

func (e *engine) scoresKey() fcache.Key {
	if e.keys == nil {
		return fcache.Key{}
	}
	return e.keys.scoresKey(e.cfg)
}

func (e *engine) clusterKey() fcache.Key {
	if e.keys == nil {
		return fcache.Key{}
	}
	return e.keys.clusterKey(e.cfg)
}

func (e *engine) summaryKey() fcache.Key {
	if e.keys == nil {
		return fcache.Key{}
	}
	return e.keys.summaryKey(e.cfg)
}

// markStage counts one stage completion in the engine counters; mode is
// "computed", "resumed" or "delta".
func (e *engine) markStage(name, mode string) {
	e.cfg.Metrics.Add("engine.stages_"+mode, 1)
	e.cfg.Metrics.Add("engine."+mode+"."+name, 1)
}

// stage runs one persisted pipeline stage. With resume enabled it first
// tries to load the stage's artifact (a hit fills art and records a
// zero-cost resumed span); otherwise compute must fill art, and the
// result is persisted when a cache is configured. Returns whether the
// stage was resumed.
func (e *engine) stage(name string, key fcache.Key, art stageArtifact, rows int, compute func() error) (bool, error) {
	if e.cache != nil && e.cfg.Resume {
		if e.cache.GetBinary(key, art) {
			e.cfg.Metrics.StartSpan(name).SetRows(rows).SetResumed(true).End()
			e.markStage(name, "resumed")
			e.logf("%s: resumed from stage artifact", name)
			return true, nil
		}
	}
	if err := compute(); err != nil {
		return false, err
	}
	if e.cache != nil {
		// Best-effort: a failed artifact write only costs recomputation on
		// the next resume attempt.
		_ = e.cache.PutBinary(key, art)
	}
	e.markStage(name, "computed")
	return false, nil
}

// shardPlan is one shard's slice of the sampled dataset.
type shardPlan struct {
	index, count int
	// benches lists the shard's registry benchmark indices.
	benches []int
	// refs are the shard's sampled rows (registry/sample order).
	refs []IntervalRef
}

// planShards partitions the sampled refs into cfg.Shard.Count shards by
// registry position (benchmark i goes to shard i % count). The partition
// depends only on the registry order and the count, never on workers or
// cache state, so every process plans identically.
func (e *engine) planShards(refs []IntervalRef) []shardPlan {
	count := e.cfg.Shard.Count
	if count < 1 {
		count = 1
	}
	plans := make([]shardPlan, count)
	idx := make(map[string]int, e.reg.Len())
	for i, b := range e.reg.All() {
		idx[b.ID()] = i
		s := i % count
		plans[s].benches = append(plans[s].benches, i)
	}
	for i := range plans {
		plans[i].index, plans[i].count = i, count
	}
	for _, r := range refs {
		s := idx[r.Bench.ID()] % count
		plans[s].refs = append(plans[s].refs, r)
	}
	return plans
}

// computeShard characterizes one shard's unique intervals and packages
// them as a shard artifact, plus the vector-cache hit count.
func (e *engine) computeShard(p shardPlan) (*shardArtifact, int, error) {
	type ik struct {
		id    string
		index int
	}
	seen := make(map[ik]bool, len(p.refs))
	var work []IntervalRef
	for _, r := range p.refs {
		k := ik{r.Bench.ID(), r.Index}
		if !seen[k] {
			seen[k] = true
			work = append(work, r)
		}
	}
	vectors, instructions, hits, err := characterizeUnique(work, e.cfg, e.cache)
	if err != nil {
		return nil, 0, err
	}
	art := &shardArtifact{instructions: instructions}
	// refs are contiguous per benchmark, and dedup preserves first
	// appearance, so work is grouped by benchmark too.
	for i := 0; i < len(work); {
		id := work[i].Bench.ID()
		j := i
		for j < len(work) && work[j].Bench.ID() == id {
			j++
		}
		sb := shardBench{id: id, indices: make([]int, 0, j-i), vectors: stats.NewMatrix(j-i, mica.NumMetrics)}
		for r := i; r < j; r++ {
			sb.indices = append(sb.indices, work[r].Index)
			copy(sb.vectors.Row(r-i), vectors[r])
		}
		art.benches = append(art.benches, sb)
		i = j
	}
	return art, hits, nil
}

// loadOrComputeShard serves one shard from its artifact when allowed
// (merge runs always look, single-shard runs only under resume) and
// characterizes it otherwise. Returns the artifact, whether it was
// loaded, and the characterize-stage vector-cache hits.
//
// On the artifact-eligible path the compute runs under the cache's
// singleflight (see fcache.GetOrCompute): concurrent service jobs — or
// worker processes sharing the cache directory — needing the same shard
// elect one computer, and the rest read its entry instead of burning a
// duplicate characterization. The plain cold path (single shard, no
// resume) is unchanged: it never consulted the cache before computing
// and still does not.
func (e *engine) loadOrComputeShard(p shardPlan) (*shardArtifact, bool, int, error) {
	if e.cache != nil && (p.count > 1 || e.cfg.Resume) {
		key := e.keys.shardKey(p.index, p.count, p.benches, len(p.refs))
		var computedArt *shardArtifact
		var computedHits int
		payload, computed, err := e.cache.GetOrCompute(key, func() ([]byte, error) {
			a, h, cerr := e.computeShard(p)
			if cerr != nil {
				return nil, cerr
			}
			computedArt, computedHits = a, h
			return a.MarshalBinary()
		})
		if err != nil {
			if computedArt != nil {
				// The shard computed fine but refused to encode for the
				// cache; a persistence failure never fails the run (same
				// contract as the ignored PutBinary error before).
				e.cfg.Metrics.Add("engine.shards_computed", 1)
				return computedArt, false, computedHits, nil
			}
			return nil, false, 0, err
		}
		if computed {
			e.cfg.Metrics.Add("engine.shards_computed", 1)
			return computedArt, false, computedHits, nil
		}
		art := &shardArtifact{}
		if uerr := art.UnmarshalBinary(payload); uerr == nil {
			e.cfg.Metrics.Add("engine.shards_resumed", 1)
			return art, true, 0, nil
		}
		// The entry passed the cache checksum but not the artifact
		// decoder (a schema bump raced this run): discard it so it is
		// never trusted again, and recompute below.
		e.cache.Discard(key)
	}
	art, hits, err := e.computeShard(p)
	if err != nil {
		return nil, false, 0, err
	}
	if e.cache != nil {
		_ = e.cache.PutBinary(e.keys.shardKey(p.index, p.count, p.benches, len(p.refs)), art)
	}
	e.cfg.Metrics.Add("engine.shards_computed", 1)
	return art, false, hits, nil
}

// characterize runs the (possibly sharded) characterization stage and
// merges the shard artifacts into the run's Dataset. Returns whether the
// whole stage was served from artifacts.
func (e *engine) characterize(refs []IntervalRef) (*Dataset, bool, error) {
	if len(refs) == 0 {
		return nil, false, fmt.Errorf("core: no intervals to characterize")
	}
	// Unsharded, uncached, unobserved runs share the in-process dataset
	// memo with Characterize (see memo.go): repeat pipeline runs over
	// the same sample in one process skip the substrate regeneration.
	// Any cache, shard or metrics involvement takes the real path so
	// artifact, resume and observability semantics stay exact.
	memoable := e.cache == nil && e.cfg.Metrics == nil && e.cfg.Shard.Count <= 1
	var memoKey datasetMemoKey
	if memoable {
		memoKey = datasetKey(refs, e.cfg)
		if ds, ok := lookupDataset(memoKey); ok {
			e.markStage("characterize", "computed")
			return ds, false, nil
		}
	}
	if e.delta != nil {
		ds, ok, err := e.characterizeDelta(refs)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return ds, false, nil
		}
		// A baseline artifact could not be served: abandon the whole delta
		// plan (the analysis fast path depends on the same baseline) and
		// recompute cold — cache trouble recomputes, it never fails.
		e.delta = nil
		e.cfg.Metrics.Add("engine.delta_fallback.characterize", 1)
	}
	plans := e.planShards(refs)
	arts := make([]*shardArtifact, len(plans))
	resumed := true
	var instructions uint64
	cacheHits := 0
	for i := range plans {
		art, loaded, hits, err := e.loadOrComputeShard(plans[i])
		if err != nil {
			return nil, false, err
		}
		if loaded {
			// Every interval the artifact holds was served from the cache.
			cacheHits += art.uniqueCount()
		} else {
			resumed = false
			cacheHits += hits
		}
		instructions += art.instructions
		arts[i] = art
	}

	unique := 0
	for _, art := range arts {
		unique += art.uniqueCount()
	}
	if resumed {
		e.cfg.Metrics.StartSpan("characterize").SetRows(unique).SetResumed(true).End()
		e.logf("characterize: resumed %d shard artifact(s)", len(arts))
		e.markStage("characterize", "resumed")
	} else {
		e.markStage("characterize", "computed")
	}

	var mergeSpan *obs.Span // only recorded for merge runs
	if len(plans) > 1 {
		mergeSpan = e.cfg.Metrics.StartSpan("merge").SetRows(len(refs))
	}
	type ik struct {
		id    string
		index int
	}
	vecs := make(map[ik][]float64, unique)
	for _, art := range arts {
		for bi := range art.benches {
			sb := &art.benches[bi]
			for j, idx := range sb.indices {
				vecs[ik{sb.id, idx}] = sb.vectors.Row(j)
			}
		}
	}
	raw := stats.NewMatrix(len(refs), mica.NumMetrics)
	for i, r := range refs {
		v, ok := vecs[ik{r.Bench.ID(), r.Index}]
		if !ok {
			return nil, false, fmt.Errorf("core: shard artifacts are missing interval %s", r)
		}
		copy(raw.Row(i), v)
	}
	mergeSpan.End()
	ds := &Dataset{
		Refs:            append([]IntervalRef(nil), refs...),
		Raw:             raw,
		UniqueIntervals: unique,
		Instructions:    instructions,
		CacheHits:       cacheHits,
	}
	if memoable {
		storeDataset(memoKey, ds, e.cfg.MemoBudget)
	}
	return ds, resumed, nil
}

// ShardInfo summarizes one CharacterizeShard invocation.
type ShardInfo struct {
	// Index / Count echo the shard coordinates.
	Index, Count int
	// Benchmarks is how many registry benchmarks the shard covers.
	Benchmarks int
	// Refs is the shard's sampled row count.
	Refs int
	// UniqueIntervals is how many distinct intervals the artifact holds.
	UniqueIntervals int
	// Instructions is the shard's characterized instruction total.
	Instructions uint64
	// Resumed reports that a valid artifact was already present and the
	// shard was not recomputed.
	Resumed bool
}

// CharacterizeShard characterizes exactly one shard of the sampled
// dataset and persists it as a shard artifact in the cache — the worker
// half of the shard→merge workflow (`phasechar -shard i/n`). A shard
// whose artifact is already present and valid is skipped. Requires
// cfg.CacheDir; cfg.Shard selects the shard.
func CharacterizeShard(reg *bench.Registry, cfg Config, logf func(string, ...any)) (*ShardInfo, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("core: shard characterization needs a cache directory to write the artifact to")
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("core: empty benchmark registry")
	}
	count := cfg.Shard.Count
	if count < 1 {
		count = 1
	}
	if cfg.Shard.Index < 0 || cfg.Shard.Index >= count {
		return nil, fmt.Errorf("core: shard index %d outside [0,%d)", cfg.Shard.Index, count)
	}
	refs := SampleRefs(reg, cfg)
	eng, err := newEngine(reg, cfg, refs, logf)
	if err != nil {
		return nil, err
	}
	p := eng.planShards(refs)[cfg.Shard.Index]
	logf("shard %d/%d: %d benchmarks, %d sampled intervals",
		p.index, p.count, len(p.benches), len(p.refs))
	art, loaded, _, err := eng.loadOrComputeShard(p)
	if err != nil {
		return nil, err
	}
	if loaded {
		logf("shard %d/%d: artifact already present (%d unique intervals), nothing to do", p.index, p.count, art.uniqueCount())
	} else {
		logf("shard %d/%d: characterized %d unique intervals (%d instructions)",
			p.index, p.count, art.uniqueCount(), art.instructions)
	}
	return &ShardInfo{
		Index:           p.index,
		Count:           p.count,
		Benchmarks:      len(p.benches),
		Refs:            len(p.refs),
		UniqueIntervals: art.uniqueCount(),
		Instructions:    art.instructions,
		Resumed:         loaded,
	}, nil
}
