package core

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func exportJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptCacheEntries flips one payload byte in every cache entry file and
// returns how many entries it damaged.
func corruptCacheEntries(t *testing.T, dir string) int {
	t.Helper()
	var entries []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			entries = append(entries, path)
		}
		return nil
	})
	if len(entries) == 0 {
		t.Fatal("cache holds no entries to corrupt")
	}
	for _, p := range entries {
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(entries)
}

// TestShardMergeByteIdentical is the engine's load-bearing invariant: an
// n-shard run — shards characterized in separate invocations, then merged
// by the analysis run — must equal the plain single-process run byte for
// byte, for n in {1, 3}, at two worker counts (merging at a third), both
// on the first merge and on a repeat over the same cache.
func TestShardMergeByteIdentical(t *testing.T) {
	reg := miniRegistry(t)
	ref, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := exportJSON(t, ref)

	for _, n := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			cacheDir := t.TempDir()
			// Worker half: one CharacterizeShard invocation per shard,
			// like `phasechar -shard i/n shard` in n processes.
			for i := 0; i < n; i++ {
				cfg := miniConfig()
				cfg.Workers = workers
				cfg.CacheDir = cacheDir
				cfg.Shard = ShardSpec{Index: i, Count: n}
				info, err := CharacterizeShard(reg, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if info.Resumed {
					t.Fatalf("shard %d/%d claimed an artifact in a cold cache", i, n)
				}
				if info.UniqueIntervals == 0 {
					t.Fatalf("shard %d/%d characterized nothing", i, n)
				}
			}
			// Merge half, twice over the same cache: the first merge reads
			// the fresh shard artifacts, the repeat reads them again.
			for _, state := range []string{"first", "repeat"} {
				ctx := fmt.Sprintf("%d shards, %d workers, %s merge", n, workers, state)
				cfg := miniConfig()
				cfg.Workers = 5 - workers // merge at a different parallelism than the shards
				cfg.CacheDir = cacheDir
				cfg.Shard = ShardSpec{Index: 0, Count: n}
				cfg.Metrics = obs.New()
				got, err := Run(reg, cfg, nil)
				if err != nil {
					t.Fatalf("%s: %v", ctx, err)
				}
				datasetsBitIdentical(t, ref.Dataset, got.Dataset, ctx)
				if !bytes.Equal(refJSON, exportJSON(t, got)) {
					t.Fatalf("%s: exported JSON differs from the single-process run", ctx)
				}
				if n > 1 {
					if resumed := cfg.Metrics.Counter("engine.shards_resumed").Value(); resumed != int64(n) {
						t.Fatalf("%s: served %d of %d shards from artifacts", ctx, resumed, n)
					}
				}
			}
		}
	}
}

// TestMergeComputesMissingShards drops one worker invocation from the
// shard half and requires the merge run to compute the hole itself — a
// partial shard fleet degrades to local work, never to failure.
func TestMergeComputesMissingShards(t *testing.T) {
	reg := miniRegistry(t)
	ref, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	cacheDir := t.TempDir()
	for _, i := range []int{0, 2} { // shard 1 never runs
		cfg := miniConfig()
		cfg.CacheDir = cacheDir
		cfg.Shard = ShardSpec{Index: i, Count: 3}
		if _, err := CharacterizeShard(reg, cfg, nil); err != nil {
			t.Fatal(err)
		}
	}

	cfg := miniConfig()
	cfg.CacheDir = cacheDir
	cfg.Shard = ShardSpec{Index: 0, Count: 3}
	cfg.Metrics = obs.New()
	got, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed := cfg.Metrics.Counter("engine.shards_resumed").Value(); resumed != 2 {
		t.Fatalf("engine.shards_resumed = %d, want the 2 prebuilt shards", resumed)
	}
	if computed := cfg.Metrics.Counter("engine.shards_computed").Value(); computed != 1 {
		t.Fatalf("engine.shards_computed = %d, want the 1 missing shard", computed)
	}
	datasetsBitIdentical(t, ref.Dataset, got.Dataset, "partial shard fleet")
	if !bytes.Equal(exportJSON(t, ref), exportJSON(t, got)) {
		t.Fatal("merge over a partial shard fleet changed the exported result")
	}
}

// TestResumeSkipsStages reruns the pipeline with the same config over a
// populated cache and requires that zero stages recompute: every stage is
// served from its artifact, visibly (resumed counters and spans), and the
// result stays byte-identical.
func TestResumeSkipsStages(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Resume = true
	cfg.Metrics = obs.New()
	first, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	firstRep := cfg.Metrics.Snapshot()
	if got := firstRep.Counters["engine.stages_computed"]; got != 5 {
		t.Fatalf("cold run computed %d stages, want 5 (characterize pca scores kmeans prominent)", got)
	}
	if got := firstRep.Counters["engine.stages_resumed"]; got != 0 {
		t.Fatalf("cold run resumed %d stages from an empty cache", got)
	}

	warm := miniConfig()
	warm.CacheDir = cfg.CacheDir
	warm.Resume = true
	warm.Metrics = obs.New()
	second, err := Run(reg, warm, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := warm.Metrics.Snapshot()
	if got := rep.Counters["engine.stages_computed"]; got != 0 {
		t.Fatalf("resumed run recomputed %d stages", got)
	}
	if got := rep.Counters["engine.stages_resumed"]; got != 5 {
		t.Fatalf("resumed run resumed %d stages, want all 5", got)
	}
	resumedSpans := map[string]bool{}
	for _, s := range rep.Spans {
		if s.Resumed {
			resumedSpans[s.Stage] = true
		}
	}
	for _, stage := range []string{"characterize", "pca", "scores", "kmeans", "prominent"} {
		if !resumedSpans[stage] {
			t.Fatalf("stage %q has no resumed span in %v", stage, rep.Spans)
		}
	}
	datasetsBitIdentical(t, first.Dataset, second.Dataset, "computed vs resumed")
	if !bytes.Equal(exportJSON(t, first), exportJSON(t, second)) {
		t.Fatal("resume changed the exported result")
	}
}

// TestCorruptStageArtifactRegenerates damages every cached artifact —
// interval vectors and stage artifacts alike — and requires the resumed
// rerun to recompute everything (visibly deleting the bad entries),
// reproduce the result bit for bit, and heal the cache for the run after.
func TestCorruptStageArtifactRegenerates(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Resume = true
	first, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	damagedEntries := corruptCacheEntries(t, cfg.CacheDir)

	damaged := miniConfig()
	damaged.CacheDir = cfg.CacheDir
	damaged.Resume = true
	damaged.Metrics = obs.New()
	redone, err := Run(reg, damaged, nil)
	if err != nil {
		t.Fatalf("corrupt stage artifacts must regenerate, not fail: %v", err)
	}
	rep := damaged.Metrics.Snapshot()
	if got := rep.Counters["engine.stages_resumed"]; got != 0 {
		t.Fatalf("run trusted %d corrupt stage artifacts", got)
	}
	if got := rep.Counters["engine.stages_computed"]; got != 5 {
		t.Fatalf("run recomputed %d stages, want 5", got)
	}
	if got := rep.Counters["fcache.corrupt_deleted"]; got != int64(damagedEntries) {
		t.Fatalf("fcache.corrupt_deleted = %d, want %d damaged entries", got, damagedEntries)
	}
	datasetsBitIdentical(t, first.Dataset, redone.Dataset, "computed vs regenerated")
	if !bytes.Equal(exportJSON(t, first), exportJSON(t, redone)) {
		t.Fatal("regeneration changed the exported result")
	}

	// The regenerating run rewrote every artifact: the next resume is whole.
	healed := miniConfig()
	healed.CacheDir = cfg.CacheDir
	healed.Resume = true
	healed.Metrics = obs.New()
	if _, err := Run(reg, healed, nil); err != nil {
		t.Fatal(err)
	}
	if got := healed.Metrics.Counter("engine.stages_resumed").Value(); got != 5 {
		t.Fatalf("healed cache resumed %d stages, want 5", got)
	}
}

// TestTimelineResume pins the per-benchmark analogue: a second
// AnalyzeTimeline with Resume set serves the whole analysis from its
// stage artifact, bit-identically.
func TestTimelineResume(t *testing.T) {
	reg := miniRegistry(t)
	b := reg.All()[1] // the two-phase benchmark
	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	first, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	cfg.Metrics = obs.New()
	resumed, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.Metrics.Snapshot()
	if got := rep.Counters["engine.resumed.timeline"]; got != 1 {
		t.Fatalf("engine.resumed.timeline = %d, want 1", got)
	}
	if got := rep.Counters["kmeans.selectk_fits"]; got != 0 {
		t.Fatalf("resumed timeline still ran %d SelectK fits", got)
	}
	if first.Strip() != resumed.Strip() {
		t.Fatalf("timeline strips differ: %q vs %q", first.Strip(), resumed.Strip())
	}
	if first.NumPhases != resumed.NumPhases || first.Transitions != resumed.Transitions {
		t.Fatalf("timeline shape differs: %d/%d vs %d/%d phases/transitions",
			first.NumPhases, first.Transitions, resumed.NumPhases, resumed.Transitions)
	}
	for i := range first.Vectors.Data {
		if math.Float64bits(first.Vectors.Data[i]) != math.Float64bits(resumed.Vectors.Data[i]) {
			t.Fatalf("timeline vector element %d differs after resume", i)
		}
	}
}

// TestShardArtifactRoundTrip pins the shard codec directly: encode,
// decode, and re-encode must agree, and a truncated payload must be
// rejected rather than decoded into garbage.
func TestShardArtifactRoundTrip(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Shard = ShardSpec{Index: 0, Count: 3}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, cfg)
	eng, err := newEngine(reg, cfg, refs, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	art, _, err := eng.computeShard(eng.planShards(refs)[0])
	if err != nil {
		t.Fatal(err)
	}
	buf, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back shardArtifact
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	buf2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("shard artifact does not round-trip byte-identically")
	}
	if back.uniqueCount() != art.uniqueCount() || back.instructions != art.instructions {
		t.Fatalf("round trip changed totals: %d/%d vs %d/%d",
			back.uniqueCount(), back.instructions, art.uniqueCount(), art.instructions)
	}
	for cut := 0; cut < len(buf); cut += 7 {
		var bad shardArtifact
		if err := bad.UnmarshalBinary(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}

// TestShardValidation pins the config-level guard rails of the workflow.
func TestShardValidation(t *testing.T) {
	cfg := miniConfig()
	cfg.Shard = ShardSpec{Index: 3, Count: 3}
	cfg.CacheDir = "x"
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range shard index validated")
	}
	cfg = miniConfig()
	cfg.Shard = ShardSpec{Index: 0, Count: 3}
	if err := cfg.Validate(); err == nil {
		t.Fatal("sharded run without a cache directory validated")
	}
	cfg = miniConfig()
	cfg.Resume = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("resume without a cache directory validated")
	}
	cfg = miniConfig()
	if _, err := CharacterizeShard(miniRegistry(t), cfg, nil); err == nil {
		t.Fatal("CharacterizeShard without a cache directory succeeded")
	}
}
