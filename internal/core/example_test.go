package core_test

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// Example runs the full phase-level characterization pipeline at a tiny
// scale and reads the headline suite analyses.
func Example() {
	reg := bench.MustStandardRegistry()
	cfg := core.TestConfig()
	cfg.SamplesPerBenchmark = 6
	cfg.IntervalLength = 1000
	cfg.NumClusters = 30
	cfg.NumProminent = 10

	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	cov := res.SuiteCoverage()
	uf := res.UniqueFraction()
	fmt.Println(len(res.Prominent) == 10,
		cov[bench.SuiteSPECfp2006] > cov[bench.SuiteMediaBench],
		uf[bench.SuiteBioPerf] > uf[bench.SuiteMediaBench])
	// Output: true true true
}
