package core

import (
	"encoding/json"
	"io"

	"repro/internal/mica"
)

// Export is the JSON-serializable summary of a pipeline run: everything a
// downstream consumer (plotting scripts, CI trend tracking) needs without
// the raw per-interval matrices.
type Export struct {
	// Parameters echoes the run configuration.
	Parameters ExportParams `json:"parameters"`
	// MetricNames lists the 69 characteristic names in vector order.
	MetricNames []string `json:"metric_names"`
	// NumPCs is how many principal components were retained.
	NumPCs int `json:"num_pcs"`
	// ExplainedVariance is the variance fraction the retained PCs carry.
	ExplainedVariance float64 `json:"explained_variance"`
	// Suites holds the per-suite analyses (Figures 4-6).
	Suites []ExportSuite `json:"suites"`
	// Prominent holds the prominent phases (Figures 2-3).
	Prominent []ExportPhase `json:"prominent_phases"`
	// ProminentCoverage is the summed weight of the prominent phases.
	ProminentCoverage float64 `json:"prominent_coverage"`
}

// ExportParams echoes the key configuration values.
type ExportParams struct {
	IntervalLength      int   `json:"interval_length"`
	SamplesPerBenchmark int   `json:"samples_per_benchmark"`
	NumClusters         int   `json:"num_clusters"`
	NumProminent        int   `json:"num_prominent"`
	Seed                int64 `json:"seed"`
}

// ExportSuite is one suite's coverage/diversity/uniqueness summary.
type ExportSuite struct {
	Suite              string    `json:"suite"`
	Benchmarks         int       `json:"benchmarks"`
	Coverage           int       `json:"coverage_clusters"`
	ClustersFor80      int       `json:"clusters_for_80pct"`
	UniqueFraction     float64   `json:"unique_fraction"`
	CumulativeCoverage []float64 `json:"cumulative_coverage"`
}

// ExportPhase is one prominent phase.
type ExportPhase struct {
	Cluster        int                `json:"cluster"`
	Weight         float64            `json:"weight"`
	Kind           string             `json:"kind"`
	Representative string             `json:"representative"`
	PhaseName      string             `json:"phase_name"`
	Composition    map[string]float64 `json:"composition"` // benchmark -> cluster share
}

// BuildExport assembles the exportable summary.
func (r *Result) BuildExport() Export {
	out := Export{
		Parameters: ExportParams{
			IntervalLength:      r.Config.IntervalLength,
			SamplesPerBenchmark: r.Config.SamplesPerBenchmark,
			NumClusters:         r.Config.NumClusters,
			NumProminent:        r.Config.NumProminent,
			Seed:                r.Config.Seed,
		},
		MetricNames:       mica.MetricNames(),
		NumPCs:            r.NumPCs,
		ExplainedVariance: r.PCA.ExplainedVariance(r.NumPCs),
		ProminentCoverage: r.ProminentCoverage(),
	}
	cov := r.SuiteCoverage()
	uf := r.UniqueFraction()
	for _, s := range r.Registry.SuiteNames() {
		out.Suites = append(out.Suites, ExportSuite{
			Suite:              string(s),
			Benchmarks:         len(r.Registry.BySuite(s)),
			Coverage:           cov[s],
			ClustersFor80:      r.ClustersFor(s, 0.8),
			UniqueFraction:     uf[s],
			CumulativeCoverage: r.CumulativeCoverage(s),
		})
	}
	for _, p := range r.Prominent {
		comp := map[string]float64{}
		for _, c := range p.Composition {
			comp[c.BenchID] = c.ClusterShare
		}
		out.Prominent = append(out.Prominent, ExportPhase{
			Cluster:        p.Cluster,
			Weight:         p.Weight,
			Kind:           p.Kind.String(),
			Representative: p.Representative.String(),
			PhaseName:      p.Representative.PhaseName(),
			Composition:    comp,
		})
	}
	return out
}

// WriteJSON writes the export as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.BuildExport())
}
