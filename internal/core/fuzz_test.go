package core

// Fuzz targets for the engine's persisted-artifact decoders. These
// payloads cross trust boundaries — disk (fcache entries) and network
// (shard RPC payloads) — so the decoders must error on arbitrary bytes,
// never panic or allocate unboundedly, and accepted payloads must
// round-trip bit-identically.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/mica"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fuzzRegistry is miniRegistry without the *testing.T, usable from seed
// construction in fuzz targets.
func fuzzRegistry() *bench.Registry {
	reg, err := bench.NewRegistry([]*bench.Benchmark{{
		Name: "s1", Suite: "SuiteA", PaperIntervals: 100,
		Phases: []bench.Phase{{Weight: 1, Behavior: trace.PhaseBehavior{
			Name: "s1/p", Mix: trace.BaseMix(), CodeSize: 800,
			Branch: trace.BranchSpec{TakenBias: 0.5},
			Reg:    trace.RegDepSpec{MeanDepDist: 2, AvgSrcRegs: 1.4, WriteFraction: 0.7},
			Loads:  []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 22}},
			Stores: []trace.AccessPattern{{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 20}},
			Jitter: 0.05,
		}}},
	}})
	if err != nil {
		panic(err)
	}
	return reg
}

func artifactFuzzSeeds() map[string][][]byte {
	reg := fuzzRegistry()
	b := reg.All()[0]

	vectors := stats.NewMatrix(2, mica.NumMetrics)
	for i := range vectors.Data {
		vectors.Data[i] = float64(i) / 3
	}
	shard := &shardArtifact{
		benches:      []shardBench{{id: b.ID(), indices: []int{0, 1}, vectors: vectors}},
		instructions: 3000,
	}
	shardBytes, _ := shard.MarshalBinary()

	summary := &summaryArtifact{reg: reg, phases: []PhaseSummary{{
		Cluster: 1, Weight: 0.5, Kind: 0,
		Representative: IntervalRef{Bench: b, Index: 1, Total: 12},
		RepVector:      []float64{1, 2, 3},
		Composition: []BenchShare{{
			BenchID: b.ID(), Suite: b.Suite, ClusterShare: 1, BenchmarkFraction: 0.2,
		}},
	}}}
	summaryBytes, _ := summary.MarshalBinary()

	timeline := &timelineArtifact{t: Timeline{
		BenchID: b.ID(), NumPhases: 2, Transitions: 1,
		Phases: []int{0, 1}, Vectors: vectors,
	}}
	timelineBytes, _ := timeline.MarshalBinary()

	// A version-correct shard header advertising 2^30 benchmarks: the
	// count must be rejected against the payload size, not allocated.
	bomb := append([]byte(nil), shardBytes[:4]...)
	bomb = append(bomb, 0, 0, 0, 0x40, 1, 2, 3)
	return map[string][][]byte{
		"FuzzShardArtifact":    {shardBytes, shardBytes[:11], bomb, {}},
		"FuzzSummaryArtifact":  {summaryBytes, summaryBytes[:7], {0, 0, 0, 0x40, 1}, {}},
		"FuzzTimelineArtifact": {timelineBytes, timelineBytes[:6], {}},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing a codec.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range artifactFuzzSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzShardArtifact(f *testing.F) {
	for _, s := range artifactFuzzSeeds()["FuzzShardArtifact"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var a shardArtifact
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := new(shardArtifact).UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}

func FuzzSummaryArtifact(f *testing.F) {
	for _, s := range artifactFuzzSeeds()["FuzzSummaryArtifact"] {
		f.Add(s)
	}
	reg := fuzzRegistry()
	f.Fuzz(func(t *testing.T, data []byte) {
		a := summaryArtifact{reg: reg}
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		b := summaryArtifact{reg: reg}
		if err := b.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}

func FuzzTimelineArtifact(f *testing.F) {
	for _, s := range artifactFuzzSeeds()["FuzzTimelineArtifact"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var a timelineArtifact
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := new(timelineArtifact).UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
