package core

// Incremental ("extend dataset") mode: the delta machinery that lets a
// run whose benchmark roster is a superset of the latest cached run
// reuse that run's artifacts instead of starting cold.
//
// The cache cannot express "extend" with the standard key chain alone:
// adding one benchmark changes the dataset hash and with it every
// downstream key, so a superset run misses everywhere even though almost
// all of its inputs are already characterized. The bridge is a baseline
// manifest (fcache.KindBaseline) written after every unsharded
// incremental-mode run (enabling Incremental both records baselines and
// consumes them — a cold `-incremental` run is how a baseline is born):
// the benchmark roster (IDs + content hashes + sampled row counts),
// the shard layout, and the identities of the run's eigenbasis and
// clustering artifacts. An incremental run loads the manifest, checks
// that every baseline benchmark is still present with an identical
// content hash ("extend dataset"; any mismatch means "new dataset" and
// the run proceeds cold), re-derives the baseline's shard keys, and
// reuses the cached vectors row for row.
//
// Reuse comes in two regimes with very different guarantees:
//
//   - The delta characterize path is EXACT: baseline rows are copied from
//     shard artifacts whose loading is bit-for-bit equivalent to
//     recomputation, new rows are characterized normally, and the merged
//     full-roster shard artifact is written back under its standard key
//     (it is exact content, and it lets the next append chain).
//
//   - The frozen-basis analysis path is APPROXIMATE: the baseline's PCA
//     eigenbasis is reused for projection (gated by the appended rows'
//     reconstruction drift) and k-means is warm-started from the
//     baseline centroids (gated by the refined centroids' shift).
//     Approximate results never live under standard keys — the warm
//     clustering is persisted only under a delta-tagged key, and the
//     frozen basis is never re-persisted — so the engine invariant
//     ("loading an artifact is bit-for-bit equivalent to recomputing
//     it") holds for every standard artifact. With both gates at zero
//     the frozen path is disabled and the run is byte-identical to cold.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/fcache"
	"repro/internal/mica"
	"repro/internal/stats"
	"repro/internal/trace"
)

// manifestBench is one benchmark's row in the baseline manifest.
type manifestBench struct {
	// id is the "suite/name" benchmark identifier.
	id string
	// hash is the benchmark's benchHash — its full characterization input.
	hash uint64
	// rows is how many sampled dataset rows the benchmark contributed.
	rows int
}

// baselineManifest describes the latest cached run under one set of
// sampling parameters: what was characterized and where its analysis
// artifacts live. It is keyed by the parameter fold alone (last write
// wins), so "the baseline" is always the most recent cached run.
type baselineManifest struct {
	// rows is the baseline's sampled dataset row count.
	rows int
	// shardCount is how many shard artifacts hold the baseline vectors.
	shardCount int
	// benches lists the baseline roster in its registry order.
	benches []manifestBench
	// basisBehavior / basisRows identify the exact PCA artifact whose
	// eigenbasis frozen-basis projection may reuse. A frozen-regime run
	// carries its predecessor's basis forward unchanged (it fitted no new
	// basis of its own).
	basisBehavior uint64
	basisRows     int
	// clusterBehavior / clusterRows identify the clustering artifact to
	// warm-start from: the standard cluster artifact after an exact run,
	// a delta-tagged one after a frozen-regime run.
	clusterBehavior uint64
	clusterRows     int
}

// MarshalBinary encodes the manifest (encoding.BinaryMarshaler).
func (m *baselineManifest) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = appendU32(buf, m.rows)
	buf = appendU32(buf, m.shardCount)
	buf = appendU32(buf, len(m.benches))
	for i := range m.benches {
		mb := &m.benches[i]
		buf = appendString(buf, mb.id)
		buf = binary.LittleEndian.AppendUint64(buf, mb.hash)
		buf = appendU32(buf, mb.rows)
	}
	buf = binary.LittleEndian.AppendUint64(buf, m.basisBehavior)
	buf = appendU32(buf, m.basisRows)
	buf = binary.LittleEndian.AppendUint64(buf, m.clusterBehavior)
	buf = appendU32(buf, m.clusterRows)
	return buf, nil
}

// UnmarshalBinary decodes a manifest encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (m *baselineManifest) UnmarshalBinary(data []byte) error {
	var err error
	if m.rows, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: baseline manifest: %w", err)
	}
	if m.shardCount, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: baseline manifest: %w", err)
	}
	var n int
	if n, data, err = decodeU32(data); err != nil {
		return fmt.Errorf("core: baseline manifest: %w", err)
	}
	// Each bench needs at least its id length, hash and row count.
	if n < 0 || n > len(data)/16 {
		return fmt.Errorf("core: baseline manifest with %d benchmarks does not fit %d bytes", n, len(data))
	}
	m.benches = make([]manifestBench, n)
	for i := range m.benches {
		mb := &m.benches[i]
		if mb.id, data, err = decodeString(data); err != nil {
			return fmt.Errorf("core: baseline manifest bench %d: %w", i, err)
		}
		if len(data) < 8 {
			return fmt.Errorf("core: baseline manifest bench %s truncated", mb.id)
		}
		mb.hash = binary.LittleEndian.Uint64(data)
		data = data[8:]
		if mb.rows, data, err = decodeU32(data); err != nil {
			return fmt.Errorf("core: baseline manifest bench %s: %w", mb.id, err)
		}
	}
	if len(data) != 8+4+8+4 {
		return fmt.Errorf("core: baseline manifest tail is %d bytes, want 24", len(data))
	}
	m.basisBehavior = binary.LittleEndian.Uint64(data)
	if m.basisRows, data, err = decodeU32(data[8:]); err != nil {
		return err
	}
	m.clusterBehavior = binary.LittleEndian.Uint64(data)
	m.clusterRows = int(binary.LittleEndian.Uint32(data[8:]))
	if m.shardCount < 1 || m.rows < 0 || m.basisRows < 0 || m.clusterRows < 0 {
		return fmt.Errorf("core: baseline manifest with invalid dimensions")
	}
	return nil
}

// manifestKey names the baseline manifest slot: one per sampling
// parameter set (the params fold already covers the pipeline seed).
func (k *artifactKeys) manifestKey() fcache.Key {
	return fcache.Key{
		Kind:     fcache.KindBaseline,
		Version:  artifactVersion(),
		Behavior: k.params,
		Seed:     k.seed,
	}
}

// deltaPlan is an applicable extend-dataset plan: the baseline manifest
// plus the set of benchmarks the current roster adds on top of it.
type deltaPlan struct {
	man *baselineManifest
	// newBench holds the IDs of benchmarks absent from the baseline.
	newBench map[string]bool
}

// planDelta loads the baseline manifest and checks the extend-dataset
// precondition: every baseline benchmark must still be present with an
// identical content hash. Any missing or changed benchmark means the
// current roster is a different dataset, not an extension, and the run
// proceeds cold (nil plan).
func (e *engine) planDelta() *deltaPlan {
	man := &baselineManifest{}
	if !e.cache.GetBinary(e.keys.manifestKey(), man) {
		e.logf("incremental: no baseline manifest for these parameters, running cold")
		return nil
	}
	idx := make(map[string]int, e.reg.Len())
	for i, b := range e.reg.All() {
		idx[b.ID()] = i
	}
	inBaseline := make(map[string]bool, len(man.benches))
	for i := range man.benches {
		mb := &man.benches[i]
		bi, ok := idx[mb.id]
		if !ok || e.keys.bench[bi] != mb.hash {
			e.logf("incremental: baseline benchmark %s missing or changed, running cold", mb.id)
			return nil
		}
		inBaseline[mb.id] = true
	}
	newBench := make(map[string]bool)
	for id := range idx {
		if !inBaseline[id] {
			newBench[id] = true
		}
	}
	e.logf("incremental: baseline covers %d of %d benchmarks (%d new)",
		len(man.benches), e.reg.Len(), len(newBench))
	return &deltaPlan{man: man, newBench: newBench}
}

// baselineShardKey re-derives the key of baseline shard s from the
// manifest: the baseline partitioned benchmark i to shard i % count in
// its own registry order, and the shard key folds the member benchmarks'
// hashes in that order over the (shared) parameter fold.
func (e *engine) baselineShardKey(man *baselineManifest, s int) fcache.Key {
	h := e.keys.params
	refCount := 0
	for i := s; i < len(man.benches); i += man.shardCount {
		h = foldHash(h, man.benches[i].hash)
		refCount += man.benches[i].rows
	}
	return fcache.Key{
		Kind:     fcache.KindShard,
		Version:  artifactVersion(),
		Behavior: h,
		Seed:     uint64(s)<<32 | uint64(man.shardCount),
		Length:   int64(refCount),
	}
}

// characterizeDelta is the exact extend-dataset characterize path:
// baseline rows come from the cached shard artifacts, only the new
// benchmarks' intervals are characterized, and the merged full-roster
// dataset is persisted under its standard shard key so the next append
// can chain. ok=false (without error) means a baseline artifact could
// not be served and the caller must fall back to the cold path — cache
// trouble recomputes, it never fails.
func (e *engine) characterizeDelta(refs []IntervalRef) (*Dataset, bool, error) {
	man := e.delta.man
	span := e.cfg.Metrics.StartSpan("characterize.delta").SetRows(len(refs)).SetDelta(true)

	type ik struct {
		id    string
		index int
	}
	vecs := make(map[ik][]float64, man.rows)
	var instructions uint64
	reused := 0
	for s := 0; s < man.shardCount; s++ {
		art := &shardArtifact{}
		if !e.cache.GetBinary(e.baselineShardKey(man, s), art) {
			e.logf("incremental: baseline shard %d/%d unavailable, running cold", s, man.shardCount)
			span.End()
			return nil, false, nil
		}
		for bi := range art.benches {
			sb := &art.benches[bi]
			for j, idx := range sb.indices {
				vecs[ik{sb.id, idx}] = sb.vectors.Row(j)
			}
		}
		instructions += art.instructions
		reused += art.uniqueCount()
	}

	// Characterize only the appended benchmarks' unique intervals.
	seen := make(map[ik]bool)
	var work []IntervalRef
	for _, r := range refs {
		if !e.delta.newBench[r.Bench.ID()] {
			continue
		}
		k := ik{r.Bench.ID(), r.Index}
		if !seen[k] {
			seen[k] = true
			work = append(work, r)
		}
	}
	hits := 0
	if len(work) > 0 {
		vectors, instr, h, err := characterizeUnique(work, e.cfg, e.cache)
		if err != nil {
			span.End()
			return nil, false, err
		}
		for i, r := range work {
			vecs[ik{r.Bench.ID(), r.Index}] = vectors[i]
		}
		instructions += instr
		hits = h
	}

	raw := stats.NewMatrix(len(refs), mica.NumMetrics)
	for i, r := range refs {
		v, ok := vecs[ik{r.Bench.ID(), r.Index}]
		if !ok {
			// The baseline artifact decoded but does not hold a row the
			// deterministic sampler says it must: treat like any other
			// cache defect and recompute cold.
			e.logf("incremental: baseline shard is missing interval %s, running cold", r)
			span.End()
			return nil, false, nil
		}
		copy(raw.Row(i), v)
	}

	// Persist the merged full-roster artifact under the standard key: its
	// content is exact (copied baseline rows + freshly characterized new
	// rows), so it is a legal resident of the standard key space and the
	// baseline for the next append.
	merged := &shardArtifact{instructions: instructions}
	for i := 0; i < len(refs); {
		id := refs[i].Bench.ID()
		j := i
		uniq := make([]int, 0, 8)
		seenIdx := make(map[int]bool)
		for j < len(refs) && refs[j].Bench.ID() == id {
			if !seenIdx[refs[j].Index] {
				seenIdx[refs[j].Index] = true
				uniq = append(uniq, refs[j].Index)
			}
			j++
		}
		sb := shardBench{id: id, indices: uniq, vectors: stats.NewMatrix(len(uniq), mica.NumMetrics)}
		for r, idx := range uniq {
			copy(sb.vectors.Row(r), vecs[ik{id, idx}])
		}
		merged.benches = append(merged.benches, sb)
		i = j
	}
	all := make([]int, e.reg.Len())
	for i := range all {
		all[i] = i
	}
	_ = e.cache.PutBinary(e.keys.shardKey(0, 1, all, len(refs)), merged)

	span.End()
	e.cfg.Metrics.Add("engine.delta_reused_rows", int64(reused))
	e.markStage("characterize", "delta")
	e.logf("characterize: reused %d baseline interval(s), characterized %d new", reused, len(work))
	return &Dataset{
		Refs:            append([]IntervalRef(nil), refs...),
		Raw:             raw,
		UniqueIntervals: reused + len(work),
		Instructions:    instructions,
		CacheHits:       reused + hits,
	}, true, nil
}

// frozenAnalysis is the analysis-stage output of the frozen-basis fast
// path: the reused eigenbasis, the recomputed (exact, cheap) projection
// scores, and the warm-started clustering.
type frozenAnalysis struct {
	pca      stats.PCA
	scores   stats.Matrix
	clusters cluster.Result
	// clusterBehavior is the delta-tagged key fold the clustering was
	// persisted under, recorded in the manifest for the next append.
	clusterBehavior uint64
}

// deltaClusterBehavior is the key fold for a warm-started (frozen-
// regime) clustering: the standard cluster chain, the basis it was
// projected through, and a tag that keeps it disjoint from every exact
// key — approximate artifacts must never shadow exact ones.
func (e *engine) deltaClusterBehavior(man *baselineManifest) uint64 {
	h := foldHash(e.keys.clusterHash(e.cfg), man.basisBehavior)
	return foldHash(h, 0x64656c7461) // "delta"
}

// tryFrozen attempts the frozen-basis analysis fast path over a
// delta-characterized dataset. nil (without error) means the exact
// stages must run: no applicable plan, gates disabled (zero), basis
// unavailable, or appended-row drift beyond the threshold.
func (e *engine) tryFrozen(ds *Dataset) (*frozenAnalysis, error) {
	if e.delta == nil || !e.cfg.Incremental.Enabled {
		return nil, nil
	}
	spec := e.cfg.Incremental
	man := e.delta.man
	if spec.MaxPCADrift <= 0 {
		e.cfg.Metrics.Add("engine.delta_fallback.pca", 1)
		e.logf("incremental: frozen basis disabled (drift threshold 0), refitting PCA")
		return nil, nil
	}
	var basis stats.PCA
	basisKey := fcache.Key{
		Kind:     fcache.KindPCA,
		Version:  artifactVersion(),
		Behavior: man.basisBehavior,
		Seed:     e.keys.seed,
		Length:   int64(man.basisRows),
	}
	if !e.cache.GetBinary(basisKey, &basis) || basis.Components == nil || basis.Components.Cols != ds.Raw.Cols {
		e.cfg.Metrics.Add("engine.delta_fallback.pca", 1)
		e.logf("incremental: baseline eigenbasis unavailable, refitting PCA")
		return nil, nil
	}
	kRet := basis.NumRetained(e.cfg.MinPCStd)
	var newRows []int
	for i, r := range ds.Refs {
		if e.delta.newBench[r.Bench.ID()] {
			newRows = append(newRows, i)
		}
	}
	drift, err := basis.ProjectionDrift(ds.Raw, newRows, kRet)
	if err != nil || drift > spec.MaxPCADrift {
		e.cfg.Metrics.Add("engine.delta_fallback.pca", 1)
		e.logf("incremental: appended-row drift %.4f exceeds %.4f, refitting PCA", drift, spec.MaxPCADrift)
		return nil, nil
	}
	fa := &frozenAnalysis{pca: basis}
	e.cfg.Metrics.StartSpan("pca").SetRows(ds.Raw.Rows).SetDelta(true).End()
	e.markStage("pca", "delta")
	e.logf("pca: frozen basis reused (drift %.4f over %d appended rows)", drift, len(newRows))

	// The projection itself is recomputed over every row — it is the
	// cheap O(n·k·d) tail of the stage, and recomputing keeps the scores
	// exact with respect to the (frozen) basis.
	sspan := e.cfg.Metrics.StartSpan("scores").SetRows(ds.Raw.Rows).SetDelta(true)
	scores, err := fa.pca.RescaledScores(ds.Raw, kRet)
	sspan.End()
	if err != nil {
		return nil, fmt.Errorf("core: frozen-basis scores: %w", err)
	}
	fa.scores = *scores
	e.markStage("scores", "delta")

	k := e.cfg.NumClusters
	kspan := e.cfg.Metrics.StartSpan("kmeans").SetRows(fa.scores.Rows).SetWorkers(e.cfg.Workers)
	warm := false
	var fitted *cluster.Result
	var base cluster.Result
	baseKey := fcache.Key{
		Kind:     fcache.KindCluster,
		Version:  artifactVersion(),
		Behavior: man.clusterBehavior,
		Seed:     e.keys.seed,
		Length:   int64(man.clusterRows),
	}
	if spec.MaxCentroidShift > 0 && e.cache.GetBinary(baseKey, &base) &&
		base.K == k && base.Centers != nil && base.Centers.Cols == fa.scores.Cols {
		refined, shift, rerr := cluster.Refine(&fa.scores, base.Centers, e.cfg.KMeans)
		if rerr == nil && shift <= spec.MaxCentroidShift {
			fitted = refined
			warm = true
			e.logf("kmeans: warm-started from baseline centroids (shift %.4f)", shift)
		} else if rerr == nil {
			e.logf("kmeans: centroid shift %.4f exceeds %.4f, running full k-means", shift, spec.MaxCentroidShift)
		}
	}
	if fitted == nil {
		e.cfg.Metrics.Add("engine.delta_fallback.kmeans", 1)
		full, kerr := cluster.KMeans(&fa.scores, k, e.cfg.KMeans)
		if kerr != nil {
			kspan.End()
			return nil, fmt.Errorf("core: clustering: %w", kerr)
		}
		fitted = full
	}
	kspan.SetDelta(warm).End()
	fa.clusters = *fitted
	if warm {
		e.markStage("kmeans", "delta")
	} else {
		e.markStage("kmeans", "computed")
	}
	// Persist under the delta-tagged key only: the warm clustering (and
	// even the full one — it was fitted over frozen-basis scores) is not
	// the exact artifact the standard key promises.
	fa.clusterBehavior = e.deltaClusterBehavior(man)
	_ = e.cache.PutBinary(fcache.Key{
		Kind:     fcache.KindCluster,
		Version:  artifactVersion(),
		Behavior: fa.clusterBehavior,
		Seed:     e.keys.seed,
		Length:   int64(e.keys.rows),
	}, &fa.clusters)
	return fa, nil
}

// writeManifest records this run as the new baseline for its sampling
// parameters. Exact runs point the basis and clustering at their own
// standard artifacts; frozen-regime runs carry the inherited basis
// forward and point the clustering at the delta-tagged artifact.
func (e *engine) writeManifest(ds *Dataset, frozen *frozenAnalysis) {
	if e.cache == nil || !e.cfg.Incremental.Enabled || e.cfg.Shard.Count > 1 {
		return
	}
	rowsByID := make(map[string]int, e.reg.Len())
	for _, r := range ds.Refs {
		rowsByID[r.Bench.ID()]++
	}
	man := &baselineManifest{rows: len(ds.Refs), shardCount: 1}
	for i, b := range e.reg.All() {
		man.benches = append(man.benches, manifestBench{id: b.ID(), hash: e.keys.bench[i], rows: rowsByID[b.ID()]})
	}
	if frozen != nil {
		man.basisBehavior, man.basisRows = e.delta.man.basisBehavior, e.delta.man.basisRows
		man.clusterBehavior, man.clusterRows = frozen.clusterBehavior, e.keys.rows
	} else {
		man.basisBehavior, man.basisRows = e.keys.pcaHash(), e.keys.rows
		man.clusterBehavior, man.clusterRows = e.keys.clusterHash(e.cfg), e.keys.rows
	}
	_ = e.cache.PutBinary(e.keys.manifestKey(), man)
}

// --- cumulative timeline statistics ---

// runningArtifact persists one benchmark's cumulative interval
// statistics: the merge-able accumulator plus the identity hash of every
// interval already folded, so reruns fold nothing and deeper timelines
// fold exactly the intervals they add.
type runningArtifact struct {
	run  *stats.Running
	seen []uint64 // sorted for a canonical encoding
}

// MarshalBinary encodes the artifact (encoding.BinaryMarshaler).
func (a *runningArtifact) MarshalBinary() ([]byte, error) {
	buf := a.run.AppendBinary(make([]byte, 0, 16+16*a.run.Cols()+8*len(a.seen)))
	buf = appendU32(buf, len(a.seen))
	for _, id := range a.seen {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	return buf, nil
}

// UnmarshalBinary decodes an artifact encoded by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (a *runningArtifact) UnmarshalBinary(data []byte) error {
	run, data, err := stats.DecodeRunning(data)
	if err != nil {
		return fmt.Errorf("core: running stats: %w", err)
	}
	n, data, err := decodeU32(data)
	if err != nil {
		return fmt.Errorf("core: running stats ledger: %w", err)
	}
	if n < 0 || len(data) != 8*n {
		return fmt.Errorf("core: running stats ledger of %d entries does not fit %d bytes", n, len(data))
	}
	a.run = run
	a.seen = make([]uint64, n)
	for i := range a.seen {
		a.seen[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return nil
}

// runningKey names one benchmark's cumulative-statistics accumulator.
// The interval total is deliberately NOT part of the key: the whole
// point is that timelines of different depths fold into one slot.
func runningKey(b *bench.Benchmark, cfg Config) fcache.Key {
	h := foldHash(0x52554e53544154, trace.HashString(b.ID())) // "RUNSTAT"
	h = foldHash(h, uint64(cfg.IntervalLength))
	return fcache.Key{
		Kind:     fcache.KindRunning,
		Version:  artifactVersion(),
		Behavior: h,
		Seed:     uint64(cfg.Seed),
	}
}

// FoldTimelineStats folds a benchmark timeline's interval vectors into
// the benchmark's persisted cumulative-statistics accumulator and
// returns how many intervals were newly folded plus the updated
// accumulator. Intervals are identified by content (behavior hash +
// generator seed), so re-running the same timeline folds nothing, while
// a deeper timeline folds exactly the intervals whose behavior it adds.
// Folding happens in interval order, which keeps the accumulator bytes
// deterministic for a given fold history. Requires cfg.CacheDir.
func FoldTimelineStats(b *bench.Benchmark, cfg Config, tl *Timeline) (int, *stats.Running, error) {
	if err := cfg.Validate(); err != nil {
		return 0, nil, err
	}
	if cfg.CacheDir == "" {
		return 0, nil, fmt.Errorf("core: cumulative timeline statistics need a cache directory")
	}
	if tl == nil || tl.Vectors == nil {
		return 0, nil, fmt.Errorf("core: no timeline vectors to fold")
	}
	cache, err := fcache.Open(cfg.CacheDir)
	if err != nil {
		return 0, nil, err
	}
	cache.SetMetrics(cfg.Metrics)

	key := runningKey(b, cfg)
	art := &runningArtifact{}
	if !cache.GetBinary(key, art) || art.run.Cols() != tl.Vectors.Cols {
		art = &runningArtifact{run: stats.NewRunning(tl.Vectors.Cols)}
	}
	seen := make(map[uint64]bool, len(art.seen)+tl.Vectors.Rows)
	for _, id := range art.seen {
		seen[id] = true
	}
	total := tl.Vectors.Rows
	folded := 0
	for i := 0; i < total; i++ {
		id := foldHash(b.BehaviorAt(i, total).BehaviorHash(), b.IntervalSeed(i))
		if seen[id] {
			continue
		}
		seen[id] = true
		if err := art.run.Observe(tl.Vectors.Row(i)); err != nil {
			return folded, art.run, err
		}
		folded++
	}
	if folded > 0 {
		art.seen = make([]uint64, 0, len(seen))
		for id := range seen {
			art.seen = append(art.seen, id)
		}
		sort.Slice(art.seen, func(i, j int) bool { return art.seen[i] < art.seen[j] })
		if err := cache.PutBinary(key, art); err != nil {
			return folded, art.run, fmt.Errorf("core: persisting running stats: %w", err)
		}
	}
	return folded, art.run, nil
}
