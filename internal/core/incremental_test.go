package core

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/stats"
)

// subRegistry returns miniRegistry minus the named benchmark — the
// "dataset before the append" in the incremental tests.
func subRegistry(t *testing.T, reg *bench.Registry, drop string) *bench.Registry {
	t.Helper()
	var keep []*bench.Benchmark
	for _, b := range reg.All() {
		if b.Name != drop {
			keep = append(keep, b)
		}
	}
	if len(keep) == reg.Len() {
		t.Fatalf("benchmark %q not in registry", drop)
	}
	sub, err := bench.NewRegistry(keep)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestIncrementalAppendByteIdentical is the incremental mode's golden
// invariant: with both tolerances at zero, extending a cached baseline
// by one benchmark must export byte-identically to the cold full-roster
// run — the delta path may only change where the rows come from, never
// what they are. It also pins that the append actually took the delta
// characterize path and that a re-run over the refreshed baseline
// (zero new benchmarks) stays identical.
func TestIncrementalAppendByteIdentical(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.NumClusters = 4 // the sub-roster has fewer sampled rows
	cfg.NumProminent = 4

	cold, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, cold)

	inc := cfg
	inc.CacheDir = t.TempDir()
	inc.Incremental = IncrementalSpec{Enabled: true} // thresholds 0: exact
	if _, err := Run(subRegistry(t, reg, "f2"), inc, nil); err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	inc.Metrics = m
	res, err := Run(reg, inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := exportJSON(t, res); !bytes.Equal(want, got) {
		t.Fatal("incremental append export differs from the cold run")
	}
	if got := m.Counter("engine.delta.characterize").Value(); got != 1 {
		t.Fatalf("engine.delta.characterize = %d, want 1", got)
	}
	if got := m.Counter("engine.delta_fallback.pca").Value(); got != 1 {
		t.Fatalf("engine.delta_fallback.pca = %d, want 1 (zero drift threshold disables the frozen basis)", got)
	}
	if got := m.Counter("engine.delta_reused_rows").Value(); got == 0 {
		t.Fatal("append reused no baseline rows")
	}

	// The append refreshed the baseline; a rerun extends by nothing and
	// must reuse every row.
	m2 := obs.New()
	inc.Metrics = m2
	res2, err := Run(reg, inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := exportJSON(t, res2); !bytes.Equal(want, got) {
		t.Fatal("rerun over the refreshed baseline export differs")
	}
	if got := m2.Counter("engine.delta_reused_rows").Value(); got != int64(len(res2.Dataset.Refs)) {
		// delta_reused_rows counts unique intervals, which can be fewer
		// than refs; it must at least cover every unique row.
		if got != int64(res2.Dataset.UniqueIntervals) {
			t.Fatalf("rerun reused %d rows, want %d", got, res2.Dataset.UniqueIntervals)
		}
	}
}

// TestIncrementalFrozenFastPath pins the approximate regime: with
// generous tolerances the append keeps the cached eigenbasis, projects
// through it, and warm-starts k-means from the cached centroids — every
// analysis stage reports the delta path.
func TestIncrementalFrozenFastPath(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.NumClusters = 4
	cfg.NumProminent = 4
	cfg.CacheDir = t.TempDir()
	cfg.Incremental = IncrementalSpec{Enabled: true, MaxPCADrift: 1e6, MaxCentroidShift: 1e6}
	if _, err := Run(subRegistry(t, reg, "f2"), cfg, nil); err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	cfg.Metrics = m
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"engine.delta.characterize", "engine.delta.pca", "engine.delta.scores", "engine.delta.kmeans"} {
		if got := m.Counter(c).Value(); got != 1 {
			t.Fatalf("%s = %d, want 1", c, got)
		}
	}
	if got := m.Counter("kmeans.refines").Value(); got != 1 {
		t.Fatalf("kmeans.refines = %d, want 1", got)
	}
	if got := m.Counter("engine.stages_delta").Value(); got != 4 {
		t.Fatalf("engine.stages_delta = %d, want 4", got)
	}
	if res.NumPCs < 1 || res.Clusters.K != cfg.NumClusters {
		t.Fatalf("frozen-path result malformed: %d PCs, k=%d", res.NumPCs, res.Clusters.K)
	}
	if len(res.Clusters.Assignments) != len(res.Dataset.Refs) {
		t.Fatal("frozen-path clustering does not cover the extended dataset")
	}
}

// TestIncrementalDriftFallback pins the drift detector: a vanishing
// drift tolerance rejects the frozen basis for any genuinely new rows,
// the exact stages run instead, and the result is byte-identical to the
// cold run — the tolerance gates performance, never correctness.
func TestIncrementalDriftFallback(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.NumClusters = 4
	cfg.NumProminent = 4

	cold, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, cold)

	inc := cfg
	inc.CacheDir = t.TempDir()
	inc.Incremental = IncrementalSpec{Enabled: true, MaxPCADrift: 1e-12, MaxCentroidShift: 1e6}
	if _, err := Run(subRegistry(t, reg, "f2"), inc, nil); err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	inc.Metrics = m
	res, err := Run(reg, inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("engine.delta_fallback.pca").Value(); got != 1 {
		t.Fatalf("engine.delta_fallback.pca = %d, want 1", got)
	}
	if got := m.Counter("engine.delta.pca").Value(); got != 0 {
		t.Fatalf("engine.delta.pca = %d, want 0 after drift fallback", got)
	}
	if got := exportJSON(t, res); !bytes.Equal(want, got) {
		t.Fatal("drift-fallback export differs from the cold run")
	}
}

// TestIncrementalShrinkRunsCold pins the extend-dataset precondition: a
// roster missing a baseline benchmark is a different dataset, not an
// extension, so the run proceeds cold (and correct) with the plan
// reported inapplicable.
func TestIncrementalShrinkRunsCold(t *testing.T) {
	reg := miniRegistry(t)
	sub := subRegistry(t, reg, "f2")
	cfg := miniConfig()
	cfg.NumClusters = 4
	cfg.NumProminent = 4
	cfg.CacheDir = t.TempDir()
	cfg.Incremental = IncrementalSpec{Enabled: true}
	if _, err := Run(reg, cfg, nil); err != nil {
		t.Fatal(err)
	}

	coldCfg := miniConfig()
	coldCfg.NumClusters = 4
	coldCfg.NumProminent = 4
	cold, err := Run(sub, coldCfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	cfg.Metrics = m
	res, err := Run(sub, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("engine.delta_inapplicable").Value(); got != 1 {
		t.Fatalf("engine.delta_inapplicable = %d, want 1", got)
	}
	if got := m.Counter("engine.delta.characterize").Value(); got != 0 {
		t.Fatalf("engine.delta.characterize = %d, want 0 for a shrunken roster", got)
	}
	if !bytes.Equal(exportJSON(t, cold), exportJSON(t, res)) {
		t.Fatal("cold-fallback export differs from the plain run")
	}
}

// TestIncrementalRejectsSharding pins the config contract: incremental
// mode describes a single-process dataset and must refuse to combine
// with sharding, and it needs a cache to live in.
func TestIncrementalRejectsSharding(t *testing.T) {
	cfg := miniConfig()
	cfg.Incremental = IncrementalSpec{Enabled: true}
	if err := cfg.Validate(); err == nil {
		t.Fatal("incremental without a cache directory validated")
	}
	cfg.CacheDir = t.TempDir()
	cfg.Shard = ShardSpec{Index: 0, Count: 2}
	if err := cfg.Validate(); err == nil {
		t.Fatal("incremental with sharding validated")
	}
	cfg.Shard = ShardSpec{}
	cfg.Incremental.MaxPCADrift = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative drift tolerance validated")
	}
}

// TestBaselineManifestCodec round-trips the manifest and rejects the
// classic decoder traps: truncation and trailing garbage.
func TestBaselineManifestCodec(t *testing.T) {
	in := &baselineManifest{
		rows:       123,
		shardCount: 3,
		benches: []manifestBench{
			{id: "SuiteA/s1", hash: 0xdeadbeef, rows: 40},
			{id: "SuiteB/f1", hash: 0xfeedface, rows: 83},
		},
		basisBehavior:   0x1111,
		basisRows:       120,
		clusterBehavior: 0x2222,
		clusterRows:     123,
	}
	buf, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out := &baselineManifest{}
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if out.rows != in.rows || out.shardCount != in.shardCount ||
		len(out.benches) != len(in.benches) ||
		out.benches[1] != in.benches[1] ||
		out.basisBehavior != in.basisBehavior || out.basisRows != in.basisRows ||
		out.clusterBehavior != in.clusterBehavior || out.clusterRows != in.clusterRows {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	for cut := 1; cut < len(buf); cut += 7 {
		if err := (&baselineManifest{}).UnmarshalBinary(buf[:len(buf)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes decoded", cut)
		}
	}
	if err := (&baselineManifest{}).UnmarshalBinary(append(buf, 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

// TestMemoBudgetEviction pins the memo's byte-budget behavior: FIFO
// eviction under pressure, oversized datasets never stored, negative
// budgets disabling storage entirely.
func TestMemoBudgetEviction(t *testing.T) {
	mk := func(rows int) *Dataset {
		return &Dataset{Raw: stats.NewMatrix(rows, 10)}
	}
	key := func(i int) datasetMemoKey {
		return datasetMemoKey{hash: uint64(i), rows: i, dir: t.Name()}
	}
	size := datasetBytes(mk(10)) // 10 rows x 10 cols

	budget := 2*size + size/2 // fits two datasets, not three
	storeDataset(key(1), mk(10), budget)
	storeDataset(key(2), mk(10), budget)
	storeDataset(key(3), mk(10), budget)
	if _, ok := lookupDataset(key(1)); ok {
		t.Fatal("oldest entry not evicted under budget pressure")
	}
	for _, i := range []int{2, 3} {
		if _, ok := lookupDataset(key(i)); !ok {
			t.Fatalf("entry %d evicted, want resident", i)
		}
	}

	storeDataset(key(4), mk(1000), budget) // larger than the whole budget
	if _, ok := lookupDataset(key(4)); ok {
		t.Fatal("dataset larger than the budget was stored")
	}
	for _, i := range []int{2, 3} {
		if _, ok := lookupDataset(key(i)); !ok {
			t.Fatalf("oversized store evicted resident entry %d", i)
		}
	}

	storeDataset(key(5), mk(10), -1)
	if _, ok := lookupDataset(key(5)); ok {
		t.Fatal("negative budget stored a dataset")
	}
}

// TestFoldTimelineStats pins the merge-able interval statistics: a fold
// is idempotent per interval identity, a deeper timeline folds exactly
// the intervals it adds, and the accumulator matches a direct pass over
// the union of observed rows.
func TestFoldTimelineStats(t *testing.T) {
	b := miniRegistry(t).All()[1] // s2: two phases, 200 paper intervals
	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()

	tl, err := AnalyzeTimeline(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	folded, run, err := FoldTimelineStats(b, cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	if folded == 0 || int64(folded) != run.Count {
		t.Fatalf("first fold: folded %d, accumulator holds %d", folded, run.Count)
	}

	again, run2, err := FoldTimelineStats(b, cfg, tl)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 || run2.Count != run.Count {
		t.Fatalf("refold: folded %d (want 0), count %d (want %d)", again, run2.Count, run.Count)
	}

	// A deeper timeline re-derives every interval's behavior at the new
	// total, so its identities are (in general) fresh; the accumulator
	// must grow by exactly the unseen ones and keep the old mass.
	deep := cfg
	deep.MaxIntervalsPerBenchmark = 2 * cfg.MaxIntervalsPerBenchmark
	dtl, err := AnalyzeTimeline(b, deep, 4)
	if err != nil {
		t.Fatal(err)
	}
	more, run3, err := FoldTimelineStats(b, deep, dtl)
	if err != nil {
		t.Fatal(err)
	}
	if run3.Count != run.Count+int64(more) {
		t.Fatalf("deep fold: count %d, want %d+%d", run3.Count, run.Count, more)
	}

	want := stats.NewRunning(tl.Vectors.Cols)
	for i := 0; i < tl.Vectors.Rows; i++ {
		if err := want.Observe(tl.Vectors.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := run.Stats()
	ref := want.Stats()
	for j := range ref.Mean {
		if got.Mean[j] != ref.Mean[j] {
			t.Fatalf("col %d mean %g != direct %g", j, got.Mean[j], ref.Mean[j])
		}
	}

	if _, _, err := FoldTimelineStats(b, miniConfig(), tl); err == nil {
		t.Fatal("fold without a cache directory succeeded")
	}
}
