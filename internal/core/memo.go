package core

import (
	"sync"
)

// In-process dataset memo.
//
// The experiment and benchmark drivers re-run Characterize over the very
// same sampled refs many times per process (every figure re-derives the
// dataset it analyzes), and the disk vector cache still pays a file read
// per unique interval on each of those runs. A dataset is a pure
// function of the sampled refs, the interval length and the mica schema
// version, so the process can keep the last few characterized datasets
// and serve repeats directly.
//
// The memo is deliberately conservative about what it may shortcut:
//
//   - Lookups are skipped when cfg.Metrics is installed: an observed run
//     must exercise the real path so its spans and cache counters mean
//     what they say (the cache tests pin fcache.hits == CacheHits).
//   - cfg.Workers is part of the key, so the worker-count determinism
//     tests still characterize at every worker count and compare real
//     outputs instead of memo copies.
//   - cfg.CacheDir is part of the key, so runs against different disk
//     caches (cold/corrupt-cache tests) never observe each other.
//
// A hit returns a Dataset sharing the memoized Raw matrix; every caller
// treats Raw as read-only (the analysis stages normalize into copies).
// CacheHits on a hit reports UniqueIntervals when a cache is configured
// (the rows were served from a cache tier — this process — rather than
// regenerated) and 0 when no cache is, matching the field's contract.

// datasetMemoKey identifies one Characterize input exactly: a fold of
// every unique interval's (behavior hash, seed) in sample order plus the
// dimensions and knobs that shape the result.
type datasetMemoKey struct {
	hash    uint64
	rows    int
	length  int
	workers int
	dir     string
}

// defaultMemoBudget is the approximate byte budget the memo holds when
// Config.MemoBudget is 0 — enough for a handful of test-scale datasets
// without letting a large appended dataset pin memory.
const defaultMemoBudget = 64 << 20

var datasetMemo struct {
	mu      sync.Mutex
	entries map[datasetMemoKey]*Dataset
	order   []datasetMemoKey // FIFO eviction
	sizes   map[datasetMemoKey]int64
	total   int64
}

// datasetBytes approximates a dataset's memo footprint: the raw matrix
// payload plus the ref slice headers (the dominant retained allocations).
func datasetBytes(ds *Dataset) int64 {
	return 8*int64(len(ds.Raw.Data)) + 48*int64(len(ds.Refs))
}

// foldKey mixes v into h with the SplitMix64 finalizer (the same mix the
// fcache key uses), so refs that differ in any interval land far apart.
func foldKey(h, v uint64) uint64 {
	h ^= v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// datasetKey builds the memo key for one Characterize call. It hashes
// exactly what VectorKey covers per interval — the behavior content
// hash and interval seed — in ref order, so any change that could alter
// a single dataset bit changes the key.
func datasetKey(refs []IntervalRef, cfg Config) datasetMemoKey {
	h := uint64(0x9e3779b97f4a7c15)
	for _, r := range refs {
		h = foldKey(h, r.Bench.BehaviorAt(r.Index, r.Total).BehaviorHash())
		h = foldKey(h, r.Bench.IntervalSeed(r.Index))
	}
	return datasetMemoKey{
		hash:    h,
		rows:    len(refs),
		length:  cfg.IntervalLength,
		workers: cfg.Workers,
		dir:     cfg.CacheDir,
	}
}

// lookupDataset returns a memoized dataset for k, as a fresh Dataset
// value sharing the read-only Raw matrix.
func lookupDataset(k datasetMemoKey) (*Dataset, bool) {
	datasetMemo.mu.Lock()
	defer datasetMemo.mu.Unlock()
	ds, ok := datasetMemo.entries[k]
	if !ok {
		return nil, false
	}
	cp := *ds
	cp.Refs = append([]IntervalRef(nil), ds.Refs...)
	if k.dir == "" {
		cp.CacheHits = 0
	} else {
		cp.CacheHits = cp.UniqueIntervals
	}
	return &cp, true
}

// storeDataset memoizes a freshly characterized dataset, evicting the
// oldest entries (FIFO) until the memo fits the byte budget. budget 0
// means defaultMemoBudget; a negative budget disables storing. A single
// dataset larger than the whole budget is not stored at all — evicting
// everything else to make room for it would defeat the memo.
func storeDataset(k datasetMemoKey, ds *Dataset, budget int64) {
	if budget == 0 {
		budget = defaultMemoBudget
	}
	size := datasetBytes(ds)
	if budget < 0 || size > budget {
		return
	}
	datasetMemo.mu.Lock()
	defer datasetMemo.mu.Unlock()
	if datasetMemo.entries == nil {
		datasetMemo.entries = make(map[datasetMemoKey]*Dataset)
		datasetMemo.sizes = make(map[datasetMemoKey]int64)
	}
	if old, ok := datasetMemo.sizes[k]; ok {
		datasetMemo.total -= old
	} else {
		datasetMemo.order = append(datasetMemo.order, k)
	}
	datasetMemo.entries[k] = ds
	datasetMemo.sizes[k] = size
	datasetMemo.total += size
	for datasetMemo.total > budget && len(datasetMemo.order) > 1 {
		victim := datasetMemo.order[0]
		datasetMemo.order = datasetMemo.order[1:]
		datasetMemo.total -= datasetMemo.sizes[victim]
		delete(datasetMemo.entries, victim)
		delete(datasetMemo.sizes, victim)
	}
}
