package core

import (
	"testing"

	"repro/internal/bench"
)

// TestArtifactKeysModelRoundTrip pins the cache-key half of the
// suites-as-data invariant: a registry reloaded from its own exported
// model file produces exactly the artifact key chain of the built-in
// registry (so loaded rosters share every cached artifact), while a
// roster whose behaviour differs re-keys the dataset.
func TestArtifactKeysModelRoundTrip(t *testing.T) {
	std, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	data, err := std.ExportModels()
	if err != nil {
		t.Fatal(err)
	}
	mf, err := bench.DecodeModels(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := mf.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != std.Len() {
		t.Fatalf("reloaded registry has %d benchmarks, want %d", loaded.Len(), std.Len())
	}

	cfg := TestConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := len(SampleRefs(std, cfg))
	want := newArtifactKeys(std, cfg, rows)
	got := newArtifactKeys(loaded, cfg, rows)
	if got.params != want.params {
		t.Fatalf("params key changed across model round-trip: %#x != %#x", got.params, want.params)
	}
	if got.dataset != want.dataset {
		t.Fatalf("dataset key changed across model round-trip: %#x != %#x", got.dataset, want.dataset)
	}
	for i := range want.bench {
		if got.bench[i] != want.bench[i] {
			t.Fatalf("benchmark %d (%s) re-keyed across model round-trip", i, std.All()[i].ID())
		}
	}

	// A genuinely different roster must not collide: nudge one phase's
	// branch bias through the model layer and require a new dataset key.
	mf.Suites[0].Benchmarks[0].Phases[0].Branch.TakenBias = 0.123
	changed, err := mf.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if k := newArtifactKeys(changed, cfg, rows); k.dataset == want.dataset {
		t.Fatal("modified roster kept the standard dataset key")
	}
}

// TestRunUsesConfigRegistry pins the Config.Registry fallback: Run with
// a nil registry argument uses cfg.Registry, and fails cleanly when
// neither is set.
func TestRunUsesConfigRegistry(t *testing.T) {
	std, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := std.FilterSuites("BioPerf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.Registry = reg
	res, err := Run(nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Registry != reg {
		t.Fatal("result does not carry the config registry")
	}

	cfg.Registry = nil
	if _, err := Run(nil, cfg, nil); err == nil {
		t.Fatal("Run with no registry anywhere succeeded")
	}
}
