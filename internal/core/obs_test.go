package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// TestRunReport drives the full pipeline with observability enabled and
// checks the emitted run report: the stage spans must exist, their wall
// times must account for (nearly) the whole run, the cache counters must
// agree with the Dataset's own accounting, and enabling metrics must not
// change a single result bit.
func TestRunReport(t *testing.T) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.CacheDir = t.TempDir()
	cfg.ReportPath = filepath.Join(t.TempDir(), "report.json")
	// Leave cfg.Metrics nil: Validate must create the collector when a
	// report is requested.

	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(cfg.ReportPath)
	if err != nil {
		t.Fatalf("run report not written: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("run report is not valid JSON: %v", err)
	}

	spans := map[string]obs.SpanRecord{}
	var sum float64
	for _, s := range rep.Spans {
		spans[s.Stage] = s
		sum += s.WallSeconds
	}
	for _, stage := range []string{"characterize", "pca", "kmeans", "prominent"} {
		if _, ok := spans[stage]; !ok {
			t.Fatalf("report missing span %q (have %v)", stage, rep.Spans)
		}
	}
	if got := spans["characterize"].Rows; got != res.Dataset.UniqueIntervals {
		t.Fatalf("characterize span rows = %d, want %d unique intervals", got, res.Dataset.UniqueIntervals)
	}
	if spans["kmeans"].Workers < 1 {
		t.Fatalf("kmeans span lost its worker count: %+v", spans["kmeans"])
	}
	// The four stages are the run; unaccounted wall time (sampling,
	// logging, report writing) must be a sliver. The acceptance bound is
	// 10%; allow 20% here because CI machines stall unpredictably.
	if rep.WallSeconds <= 0 {
		t.Fatalf("report wall = %v", rep.WallSeconds)
	}
	if sum < 0.8*rep.WallSeconds || sum > 1.2*rep.WallSeconds {
		t.Fatalf("stage spans sum to %.3fs of a %.3fs run — the report does not account for the runtime",
			sum, rep.WallSeconds)
	}

	if got := rep.Counters["kmeans.restarts"]; got <= 0 {
		t.Fatalf("kmeans.restarts = %d", got)
	}
	if got := rep.Counters["kmeans.lloyd_iters"]; got <= 0 {
		t.Fatalf("kmeans.lloyd_iters = %d", got)
	}
	// Cold run: every unique interval was a miss and then a write.
	if got := rep.Counters["fcache.misses"]; got != int64(res.Dataset.UniqueIntervals) {
		t.Fatalf("fcache.misses = %d, want %d", got, res.Dataset.UniqueIntervals)
	}
	if got := rep.Counters["fcache.hits"]; got != 0 {
		t.Fatalf("cold fcache.hits = %d", got)
	}

	// Warm run with its own collector: hits must match the Dataset's
	// CacheHits accounting exactly.
	// Run received cfg by value, so the test's copy still has nil
	// sub-config collectors; the fresh one inherits cleanly.
	warmCfg := cfg
	warmCfg.Metrics = obs.New()
	warmCfg.ReportPath = filepath.Join(t.TempDir(), "warm.json")
	warm, err := Run(reg, warmCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmRep := warmCfg.Metrics.Snapshot()
	if warmRep.Counters["fcache.hits"] != int64(warm.Dataset.CacheHits) ||
		warm.Dataset.CacheHits != warm.Dataset.UniqueIntervals {
		t.Fatalf("fcache.hits = %d, Dataset.CacheHits = %d, unique = %d — counters disagree",
			warmRep.Counters["fcache.hits"], warm.Dataset.CacheHits, warm.Dataset.UniqueIntervals)
	}

	// Observability must be free of observable effect: an uninstrumented
	// run exports byte-identical results.
	plainCfg := TestConfig()
	plain, err := Run(reg, plainCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("enabling observability changed the exported result")
	}
}

// TestTimelineReportSpans checks AnalyzeTimeline records its stage spans
// and SelectK counters.
func TestTimelineReportSpans(t *testing.T) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.MaxIntervalsPerBenchmark = 6
	cfg.Metrics = obs.New()
	if _, err := AnalyzeTimeline(reg.All()[0], cfg, 4); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Metrics.Snapshot()
	seen := map[string]bool{}
	for _, s := range rep.Spans {
		seen[s.Stage] = true
	}
	for _, stage := range []string{"timeline.characterize", "timeline.pca", "timeline.selectk"} {
		if !seen[stage] {
			t.Fatalf("missing span %q in %v", stage, rep.Spans)
		}
	}
	if rep.Counters["kmeans.selectk_fits"] <= 0 {
		t.Fatalf("kmeans.selectk_fits = %d", rep.Counters["kmeans.selectk_fits"])
	}
}
