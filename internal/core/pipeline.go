package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/ga"
	"repro/internal/stats"
)

// PhaseKind classifies a cluster by the provenance of its member
// intervals, following section 4.2 of the paper.
type PhaseKind uint8

const (
	// BenchmarkSpecific clusters hold intervals of a single benchmark:
	// unique behaviour not observed elsewhere.
	BenchmarkSpecific PhaseKind = iota
	// SuiteSpecific clusters hold intervals of multiple benchmarks, all
	// from one suite.
	SuiteSpecific
	// Mixed clusters hold intervals from multiple suites.
	Mixed
)

// String names the kind as in the paper's figure groups.
func (k PhaseKind) String() string {
	switch k {
	case BenchmarkSpecific:
		return "benchmark-specific"
	case SuiteSpecific:
		return "suite-specific"
	default:
		return "mixed"
	}
}

// BenchShare is one benchmark's participation in a cluster.
type BenchShare struct {
	// BenchID is the "suite/name" benchmark identifier.
	BenchID string
	// Suite is the benchmark's suite.
	Suite bench.Suite
	// ClusterShare is the fraction of the cluster made of this
	// benchmark's intervals (the pie-chart slice).
	ClusterShare float64
	// BenchmarkFraction is the fraction of this benchmark's sampled
	// execution that the cluster represents (the percentage in the
	// paper's benchmark lists).
	BenchmarkFraction float64
}

// PhaseSummary describes one prominent phase (cluster).
type PhaseSummary struct {
	// Cluster is the cluster's index in Result.Clusters.
	Cluster int
	// Weight is the cluster's fraction of the entire sampled workload.
	Weight float64
	// Kind classifies the cluster's provenance.
	Kind PhaseKind
	// Representative is the interval closest to the cluster center.
	Representative IntervalRef
	// RepVector is the representative's raw 69-characteristic vector.
	RepVector []float64
	// Composition lists the represented benchmarks, largest share first.
	Composition []BenchShare
}

// Result is a completed pipeline run.
type Result struct {
	Config   Config
	Registry *bench.Registry
	Dataset  *Dataset

	// PCA holds the principal components analysis of the raw data.
	PCA *stats.PCA
	// NumPCs is how many components were retained (std > MinPCStd).
	NumPCs int
	// Scores is the dataset in rescaled-PCA space (rows parallel to
	// Dataset.Refs).
	Scores *stats.Matrix

	// Clusters is the k-means clustering of Scores.
	Clusters *cluster.Result
	// Prominent are the top-weight clusters, heaviest first.
	Prominent []PhaseSummary

	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Run executes the full methodology over the registry's benchmarks.
// logf, if non-nil, receives progress lines.
func Run(reg *bench.Registry, cfg Config, logf func(format string, args ...any)) (*Result, error) {
	start := time.Now()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("core: empty benchmark registry")
	}

	refs := SampleRefs(reg, cfg)
	logf("characterizing %d sampled intervals (%d benchmarks, %d instructions each)...",
		len(refs), reg.Len(), cfg.IntervalLength)
	ds, err := Characterize(refs, cfg)
	if err != nil {
		return nil, err
	}
	logf("characterized %d unique intervals (%d instructions total)", ds.UniqueIntervals, ds.Instructions)

	span := cfg.Metrics.StartSpan("pca").SetRows(ds.Raw.Rows)
	pca, err := stats.ComputePCA(ds.Raw, true)
	if err != nil {
		return nil, fmt.Errorf("core: PCA: %w", err)
	}
	numPCs := pca.NumRetained(cfg.MinPCStd)
	logf("PCA: retaining %d components (%.1f%% of variance)", numPCs, 100*pca.ExplainedVariance(numPCs))
	scores, err := pca.RescaledScores(ds.Raw, numPCs)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("core: rescaled scores: %w", err)
	}

	k := cfg.NumClusters
	if k >= scores.Rows {
		return nil, fmt.Errorf("core: %d clusters need more than %d intervals", k, scores.Rows)
	}
	// cfg.KMeans already carries the inherited pipeline seed and worker
	// count (Validate resolved them above).
	logf("k-means: k=%d over %d intervals in %d dimensions (%d restarts, %d workers)...",
		k, scores.Rows, scores.Cols, max(1, cfg.KMeans.Restarts), cfg.Workers)
	span = cfg.Metrics.StartSpan("kmeans").SetRows(scores.Rows).SetWorkers(cfg.Workers)
	cl, err := cluster.KMeans(scores, k, cfg.KMeans)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	logf("clustering BIC %.1f, avg within-cluster distance %.3f", cl.BIC, cl.AvgWithinClusterDistance(scores))

	res := &Result{
		Config:   cfg,
		Registry: reg,
		Dataset:  ds,
		PCA:      pca,
		NumPCs:   numPCs,
		Scores:   scores,
		Clusters: cl,
	}
	span = cfg.Metrics.StartSpan("prominent").SetRows(len(cl.Assignments))
	res.Prominent = res.summarizeProminent(cfg.NumProminent)
	span.End()
	res.Elapsed = time.Since(start)
	logf("top-%d prominent phases cover %.1f%% of the workload (%.1fs)",
		len(res.Prominent), 100*res.ProminentCoverage(), res.Elapsed.Seconds())
	if cfg.ReportPath != "" {
		if err := cfg.Metrics.WriteReport(cfg.ReportPath); err != nil {
			return nil, fmt.Errorf("core: run report: %w", err)
		}
		logf("wrote run report %s", cfg.ReportPath)
	}
	return res, nil
}

// summarizeProminent builds PhaseSummary values for the n heaviest
// clusters.
func (r *Result) summarizeProminent(n int) []PhaseSummary {
	order := r.Clusters.ByWeight()
	if n > len(order) {
		n = len(order)
	}
	reps := r.Clusters.Representatives(r.Scores)
	weights := r.Clusters.Weights()

	// Per-benchmark sampled row counts, for BenchmarkFraction.
	benchRows := map[string]int{}
	for _, ref := range r.Dataset.Refs {
		benchRows[ref.Bench.ID()]++
	}

	out := make([]PhaseSummary, 0, n)
	for _, c := range order[:n] {
		out = append(out, r.summarizeCluster(c, weights[c], reps[c], benchRows))
	}
	return out
}

func (r *Result) summarizeCluster(c int, weight float64, rep int, benchRows map[string]int) PhaseSummary {
	counts := map[string]int{}
	suites := map[bench.Suite]bool{}
	suiteOf := map[string]bench.Suite{}
	total := 0
	for i, ref := range r.Dataset.Refs {
		if r.Clusters.Assignments[i] != c {
			continue
		}
		id := ref.Bench.ID()
		counts[id]++
		suites[ref.Bench.Suite] = true
		suiteOf[id] = ref.Bench.Suite
		total++
	}
	kind := Mixed
	switch {
	case len(counts) == 1:
		kind = BenchmarkSpecific
	case len(suites) == 1:
		kind = SuiteSpecific
	}
	var comp []BenchShare
	for id, cnt := range counts {
		comp = append(comp, BenchShare{
			BenchID:           id,
			Suite:             suiteOf[id],
			ClusterShare:      float64(cnt) / float64(max(total, 1)),
			BenchmarkFraction: float64(cnt) / float64(max(benchRows[id], 1)),
		})
	}
	sort.Slice(comp, func(a, b int) bool {
		if comp[a].ClusterShare != comp[b].ClusterShare {
			return comp[a].ClusterShare > comp[b].ClusterShare
		}
		return comp[a].BenchID < comp[b].BenchID
	})
	ps := PhaseSummary{
		Cluster:     c,
		Weight:      weight,
		Kind:        kind,
		Composition: comp,
	}
	if rep >= 0 {
		ps.Representative = r.Dataset.Refs[rep]
		ps.RepVector = append([]float64(nil), r.Dataset.Raw.Row(rep)...)
	}
	return ps
}

// ProminentCoverage returns the summed weight of the prominent phases (the
// paper reports 87.8% for its top 100 of 300).
func (r *Result) ProminentCoverage() float64 {
	var s float64
	for _, p := range r.Prominent {
		s += p.Weight
	}
	return s
}

// ProminentRawMatrix returns the prominent phases' representative raw
// characteristic vectors as a matrix (one row per prominent phase), the
// input to the genetic algorithm and the kiviat plots.
func (r *Result) ProminentRawMatrix() *stats.Matrix {
	m := stats.NewMatrix(len(r.Prominent), r.Dataset.Raw.Cols)
	for i, p := range r.Prominent {
		copy(m.Row(i), p.RepVector)
	}
	return m
}

// SelectKeyCharacteristics runs the genetic algorithm over the prominent
// phases to select `count` key characteristics (section 2.7, Table 2).
func (r *Result) SelectKeyCharacteristics(count int) (ga.Selection, error) {
	fitness, err := ga.DistanceFitness(r.ProminentRawMatrix(), r.Config.MinPCStd)
	if err != nil {
		return ga.Selection{}, err
	}
	// r.Config was validated by Run, so cfg already carries the
	// inherited pipeline seed, worker count and metrics collector.
	cfg := r.Config.GA
	cfg.TargetCount = count
	span := r.Config.Metrics.StartSpan("ga.select").SetRows(len(r.Prominent)).SetWorkers(cfg.Workers)
	sel, err := ga.Run(r.Dataset.Raw.Cols, fitness, cfg)
	span.End()
	return sel, err
}

// SweepKeyCharacteristics reproduces Figure 1: the best distance
// correlation at each retained-characteristic count.
func (r *Result) SweepKeyCharacteristics(counts []int) ([]ga.SweepResult, error) {
	fitness, err := ga.DistanceFitness(r.ProminentRawMatrix(), r.Config.MinPCStd)
	if err != nil {
		return nil, err
	}
	span := r.Config.Metrics.StartSpan("ga.sweep").SetRows(len(counts)).SetWorkers(r.Config.GA.Workers)
	out, err := ga.Sweep(r.Dataset.Raw.Cols, fitness, counts, r.Config.GA)
	span.End()
	return out, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
