package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/ga"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// PhaseKind classifies a cluster by the provenance of its member
// intervals, following section 4.2 of the paper.
type PhaseKind uint8

const (
	// BenchmarkSpecific clusters hold intervals of a single benchmark:
	// unique behaviour not observed elsewhere.
	BenchmarkSpecific PhaseKind = iota
	// SuiteSpecific clusters hold intervals of multiple benchmarks, all
	// from one suite.
	SuiteSpecific
	// Mixed clusters hold intervals from multiple suites.
	Mixed
)

// String names the kind as in the paper's figure groups.
func (k PhaseKind) String() string {
	switch k {
	case BenchmarkSpecific:
		return "benchmark-specific"
	case SuiteSpecific:
		return "suite-specific"
	default:
		return "mixed"
	}
}

// BenchShare is one benchmark's participation in a cluster.
type BenchShare struct {
	// BenchID is the "suite/name" benchmark identifier.
	BenchID string
	// Suite is the benchmark's suite.
	Suite bench.Suite
	// ClusterShare is the fraction of the cluster made of this
	// benchmark's intervals (the pie-chart slice).
	ClusterShare float64
	// BenchmarkFraction is the fraction of this benchmark's sampled
	// execution that the cluster represents (the percentage in the
	// paper's benchmark lists).
	BenchmarkFraction float64
}

// PhaseSummary describes one prominent phase (cluster).
type PhaseSummary struct {
	// Cluster is the cluster's index in Result.Clusters.
	Cluster int
	// Weight is the cluster's fraction of the entire sampled workload.
	Weight float64
	// Kind classifies the cluster's provenance.
	Kind PhaseKind
	// Representative is the interval closest to the cluster center.
	Representative IntervalRef
	// RepVector is the representative's raw 69-characteristic vector.
	RepVector []float64
	// Composition lists the represented benchmarks, largest share first.
	Composition []BenchShare
}

// Result is a completed pipeline run.
type Result struct {
	Config   Config
	Registry *bench.Registry
	Dataset  *Dataset

	// PCA holds the principal components analysis of the raw data.
	PCA *stats.PCA
	// NumPCs is how many components were retained (std > MinPCStd).
	NumPCs int
	// Scores is the dataset in rescaled-PCA space (rows parallel to
	// Dataset.Refs).
	Scores *stats.Matrix

	// Clusters is the k-means clustering of Scores.
	Clusters *cluster.Result
	// Prominent are the top-weight clusters, heaviest first.
	Prominent []PhaseSummary

	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Run executes the full methodology over the registry's benchmarks as a
// sequence of engine stages (sample → characterize → pca → scores →
// kmeans → prominent; see engine.go). logf, if non-nil, receives
// progress lines. With cfg.Shard.Count > 1 the characterize stage merges
// per-shard dataset artifacts; with cfg.Resume every stage whose
// artifact is present and valid is loaded instead of recomputed. Both
// paths produce results byte-identical to the plain in-process run.
func Run(reg *bench.Registry, cfg Config, logf func(format string, args ...any)) (*Result, error) {
	start := time.Now()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = cfg.Registry
	}
	if reg == nil {
		return nil, fmt.Errorf("core: no benchmark registry (nil argument and nil Config.Registry)")
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("core: empty benchmark registry")
	}

	span := cfg.Metrics.StartSpan("sample")
	refs := SampleRefs(reg, cfg)
	span.SetRows(len(refs)).End()
	if cfg.NumClusters >= len(refs) {
		return nil, fmt.Errorf("core: %d clusters need more than %d intervals", cfg.NumClusters, len(refs))
	}
	eng, err := newEngine(reg, cfg, refs, logf)
	if err != nil {
		return nil, err
	}

	logf("characterizing %d sampled intervals (%d benchmarks, %d instructions each)...",
		len(refs), reg.Len(), cfg.IntervalLength)
	ds, _, err := eng.characterize(refs)
	if err != nil {
		return nil, err
	}
	logf("characterized %d unique intervals (%d instructions total)", ds.UniqueIntervals, ds.Instructions)

	// The frozen-basis fast path (incremental mode, drift within
	// tolerance) produces approximate pca/scores/kmeans outside the
	// standard stage keys; everything else runs the exact stage chain.
	var pca stats.PCA
	var scores stats.Matrix
	var cl cluster.Result
	frozen, err := eng.tryFrozen(ds)
	if err != nil {
		return nil, err
	}
	if frozen != nil {
		pca, scores, cl = frozen.pca, frozen.scores, frozen.clusters
	} else {
		if _, err := eng.stage("pca", eng.pcaKey(), &pca, ds.Raw.Rows, func() error {
			span := cfg.Metrics.StartSpan("pca").SetRows(ds.Raw.Rows)
			defer span.End()
			p, err := stats.ComputePCA(ds.Raw, true)
			if err != nil {
				return fmt.Errorf("core: PCA: %w", err)
			}
			pca = *p
			return nil
		}); err != nil {
			return nil, err
		}

		if _, err := eng.stage("scores", eng.scoresKey(), &scores, ds.Raw.Rows, func() error {
			span := cfg.Metrics.StartSpan("scores").SetRows(ds.Raw.Rows)
			defer span.End()
			s, err := pca.RescaledScores(ds.Raw, pca.NumRetained(cfg.MinPCStd))
			if err != nil {
				return fmt.Errorf("core: rescaled scores: %w", err)
			}
			scores = *s
			return nil
		}); err != nil {
			return nil, err
		}
	}
	numPCs := scores.Cols
	logf("PCA: retaining %d components (%.1f%% of variance)", numPCs, 100*pca.ExplainedVariance(numPCs))

	// cfg.KMeans already carries the inherited pipeline seed and worker
	// count (Validate resolved them above).
	k := cfg.NumClusters
	if frozen == nil {
		if _, err := eng.stage("kmeans", eng.clusterKey(), &cl, scores.Rows, func() error {
			logf("k-means: k=%d over %d intervals in %d dimensions (%d restarts, %d workers)...",
				k, scores.Rows, scores.Cols, max(1, cfg.KMeans.Restarts), cfg.Workers)
			span := cfg.Metrics.StartSpan("kmeans").SetRows(scores.Rows).SetWorkers(cfg.Workers)
			defer span.End()
			c, err := cluster.KMeans(&scores, k, cfg.KMeans)
			if err != nil {
				return fmt.Errorf("core: clustering: %w", err)
			}
			cl = *c
			return nil
		}); err != nil {
			return nil, err
		}
	}
	logf("clustering BIC %.1f, avg within-cluster distance %.3f", cl.BIC, cl.AvgWithinClusterDistance(&scores))

	res := &Result{
		Config:   cfg,
		Registry: reg,
		Dataset:  ds,
		PCA:      &pca,
		NumPCs:   numPCs,
		Scores:   &scores,
		Clusters: &cl,
	}
	sum := &summaryArtifact{reg: reg}
	if frozen != nil {
		// The summary derives from the approximate clustering, so it must
		// not occupy the standard summary key; it is cheap, so it is
		// simply recomputed and not persisted at all.
		span := cfg.Metrics.StartSpan("prominent").SetRows(len(cl.Assignments))
		sum.phases = res.summarizeProminent(cfg.NumProminent)
		span.End()
		eng.markStage("prominent", "computed")
	} else if _, err := eng.stage("prominent", eng.summaryKey(), sum, len(cl.Assignments), func() error {
		span := cfg.Metrics.StartSpan("prominent").SetRows(len(cl.Assignments))
		defer span.End()
		sum.phases = res.summarizeProminent(cfg.NumProminent)
		return nil
	}); err != nil {
		return nil, err
	}
	res.Prominent = sum.phases
	eng.writeManifest(ds, frozen)
	res.Elapsed = time.Since(start)
	logf("top-%d prominent phases cover %.1f%% of the workload (%.1fs)",
		len(res.Prominent), 100*res.ProminentCoverage(), res.Elapsed.Seconds())
	if cfg.ReportPath != "" {
		if err := cfg.Metrics.WriteReport(cfg.ReportPath); err != nil {
			return nil, fmt.Errorf("core: run report: %w", err)
		}
		logf("wrote run report %s", cfg.ReportPath)
	}
	return res, nil
}

// summarizeProminent builds PhaseSummary values for the n heaviest
// clusters. All per-cluster compositions come from a single pass over
// the assignments (one K x B count table), instead of rescanning every
// dataset row once per prominent cluster.
func (r *Result) summarizeProminent(n int) []PhaseSummary {
	order := r.Clusters.ByWeight()
	if n > len(order) {
		n = len(order)
	}
	reps := r.Clusters.Representatives(r.Scores)
	weights := r.Clusters.Weights()

	// Dense benchmark indices in first-appearance order over Refs.
	benchIdx := make(map[string]int)
	var benchIDs []string
	var benchSuites []bench.Suite
	rowBench := make([]int, len(r.Dataset.Refs))
	for i, ref := range r.Dataset.Refs {
		id := ref.Bench.ID()
		bi, ok := benchIdx[id]
		if !ok {
			bi = len(benchIDs)
			benchIdx[id] = bi
			benchIDs = append(benchIDs, id)
			benchSuites = append(benchSuites, ref.Bench.Suite)
		}
		rowBench[i] = bi
	}
	// cells[c*B+b] counts cluster c's rows from benchmark b; benchRows[b]
	// is benchmark b's sampled row total (for BenchmarkFraction).
	nb := len(benchIDs)
	cells := make([]int, r.Clusters.K*nb)
	benchRows := make([]int, nb)
	for i, c := range r.Clusters.Assignments {
		cells[c*nb+rowBench[i]]++
		benchRows[rowBench[i]]++
	}

	out := make([]PhaseSummary, 0, n)
	for _, c := range order[:n] {
		out = append(out, r.summarizeCluster(c, weights[c], reps[c],
			cells[c*nb:(c+1)*nb], benchIDs, benchSuites, benchRows))
	}
	return out
}

// summarizeCluster renders one cluster's summary from its row of the
// precomputed composition table (counts[b] = rows from benchmark b).
func (r *Result) summarizeCluster(c int, weight float64, rep int, counts []int,
	benchIDs []string, benchSuites []bench.Suite, benchRows []int) PhaseSummary {
	total := 0
	members := 0
	suites := map[bench.Suite]bool{}
	for bi, cnt := range counts {
		if cnt == 0 {
			continue
		}
		total += cnt
		members++
		suites[benchSuites[bi]] = true
	}
	kind := Mixed
	switch {
	case members == 1:
		kind = BenchmarkSpecific
	case len(suites) == 1:
		kind = SuiteSpecific
	}
	comp := make([]BenchShare, 0, members)
	for bi, cnt := range counts {
		if cnt == 0 {
			continue
		}
		comp = append(comp, BenchShare{
			BenchID:           benchIDs[bi],
			Suite:             benchSuites[bi],
			ClusterShare:      float64(cnt) / float64(max(total, 1)),
			BenchmarkFraction: float64(cnt) / float64(max(benchRows[bi], 1)),
		})
	}
	sort.Slice(comp, func(a, b int) bool {
		if comp[a].ClusterShare != comp[b].ClusterShare {
			return comp[a].ClusterShare > comp[b].ClusterShare
		}
		return comp[a].BenchID < comp[b].BenchID
	})
	ps := PhaseSummary{
		Cluster:     c,
		Weight:      weight,
		Kind:        kind,
		Composition: comp,
	}
	if rep >= 0 {
		ps.Representative = r.Dataset.Refs[rep]
		ps.RepVector = append([]float64(nil), r.Dataset.Raw.Row(rep)...)
	}
	return ps
}

// ProminentCoverage returns the summed weight of the prominent phases (the
// paper reports 87.8% for its top 100 of 300).
func (r *Result) ProminentCoverage() float64 {
	var s float64
	for _, p := range r.Prominent {
		s += p.Weight
	}
	return s
}

// ProminentRawMatrix returns the prominent phases' representative raw
// characteristic vectors as a matrix (one row per prominent phase), the
// input to the genetic algorithm and the kiviat plots.
func (r *Result) ProminentRawMatrix() *stats.Matrix {
	m := stats.NewMatrix(len(r.Prominent), r.Dataset.Raw.Cols)
	for i, p := range r.Prominent {
		copy(m.Row(i), p.RepVector)
	}
	return m
}

// RawCentroids maps the clustering back into the raw characteristic
// space: row c is the mean of the raw vectors assigned to cluster c
// (zero for an empty cluster), counts[c] its member count. The k-means
// itself runs in rescaled-PCA space, so these are the centroids a
// cross-run phase database can compare against — same 69 columns as
// every interval vector. Accumulation is serial in row order, so the
// result is bit-identical at any worker count.
func (r *Result) RawCentroids() (centroids *stats.Matrix, counts []int) {
	k := r.Clusters.Centers.Rows
	centroids = stats.NewMatrix(k, r.Dataset.Raw.Cols)
	counts = make([]int, k)
	for i, a := range r.Clusters.Assignments {
		kernel.Add(centroids.Row(a), r.Dataset.Raw.Row(i))
		counts[a]++
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		row := centroids.Row(c)
		for j := range row {
			row[j] *= inv
		}
	}
	return centroids, counts
}

// SelectKeyCharacteristics runs the genetic algorithm over the prominent
// phases to select `count` key characteristics (section 2.7, Table 2).
func (r *Result) SelectKeyCharacteristics(count int) (ga.Selection, error) {
	fitness, err := ga.DistanceFitness(r.ProminentRawMatrix(), r.Config.MinPCStd)
	if err != nil {
		return ga.Selection{}, err
	}
	// r.Config was validated by Run, so cfg already carries the
	// inherited pipeline seed, worker count and metrics collector.
	cfg := r.Config.GA
	cfg.TargetCount = count
	span := r.Config.Metrics.StartSpan("ga.select").SetRows(len(r.Prominent)).SetWorkers(cfg.Workers)
	sel, err := ga.Run(r.Dataset.Raw.Cols, fitness, cfg)
	span.End()
	return sel, err
}

// SweepKeyCharacteristics reproduces Figure 1: the best distance
// correlation at each retained-characteristic count.
func (r *Result) SweepKeyCharacteristics(counts []int) ([]ga.SweepResult, error) {
	fitness, err := ga.DistanceFitness(r.ProminentRawMatrix(), r.Config.MinPCStd)
	if err != nil {
		return nil, err
	}
	span := r.Config.Metrics.StartSpan("ga.sweep").SetRows(len(counts)).SetWorkers(r.Config.GA.Workers)
	out, err := ga.Sweep(r.Dataset.Raw.Cols, fitness, counts, r.Config.GA)
	span.End()
	return out, err
}
