package core

// Remote-shard entry points: the pieces of the engine that the
// distributed shard service (internal/shardnet) needs across a process
// or machine boundary. A shardnet worker characterizes one shard and
// ships the encoded artifact back (EncodeShard); the coordinator
// verifies it against its own registry and configuration and stores it
// through the ordinary fcache shard kind (PutShardArtifact), so a
// networked run and a local run share one cache and one merge path —
// and therefore one byte-identical result.

import (
	"fmt"

	"repro/internal/bench"
)

// ShardArtifactVersion is the schema version of encoded shard artifacts
// (the combined measurement-kernel + engine version). Both ends of a
// shard RPC must agree on it; a mismatch means the two binaries would
// not produce bit-identical vectors and the transfer must be refused.
func ShardArtifactVersion() uint32 { return artifactVersion() }

// DatasetHash fingerprints the full characterization input for (reg,
// cfg): every sampling parameter and every benchmark's content hash.
// Two processes with equal hashes plan identical shards and produce
// bit-identical shard artifacts, so the hash is exchanged on every
// shard RPC to detect registry or configuration divergence.
func DatasetHash(reg *bench.Registry, cfg Config) (uint64, error) {
	cfg.Shard, cfg.CacheDir, cfg.Resume = ShardSpec{}, "", false
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return newArtifactKeys(reg, cfg, 0).dataset, nil
}

// normalizeShard bounds-checks cfg.Shard and returns the effective
// (index, count) with count >= 1.
func normalizeShard(cfg Config) (int, int, error) {
	count := cfg.Shard.Count
	if count < 1 {
		count = 1
	}
	if cfg.Shard.Index < 0 || cfg.Shard.Index >= count {
		return 0, 0, fmt.Errorf("core: shard index %d outside [0,%d)", cfg.Shard.Index, count)
	}
	return cfg.Shard.Index, count, nil
}

// EncodeShard characterizes shard cfg.Shard of the sampled dataset and
// returns the encoded shard artifact — the worker half of a distributed
// run. Unlike CharacterizeShard it does not require a cache directory:
// a stateless worker computes the shard in memory and ships the bytes;
// a worker with cfg.CacheDir set additionally persists (and on a rerun
// reuses) the artifact locally.
func EncodeShard(reg *bench.Registry, cfg Config, logf func(string, ...any)) ([]byte, *ShardInfo, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Validate with the shard spec detached: Validate ties Shard.Count > 1
	// to a cache directory because a local sharded *run* merges through
	// the cache, but a worker only computes and encodes.
	shard := cfg.Shard
	cfg.Shard = ShardSpec{}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	cfg.Shard = shard
	index, count, err := normalizeShard(cfg)
	if err != nil {
		return nil, nil, err
	}
	if reg.Len() == 0 {
		return nil, nil, fmt.Errorf("core: empty benchmark registry")
	}
	refs := SampleRefs(reg, cfg)
	eng, err := newEngine(reg, cfg, refs, logf)
	if err != nil {
		return nil, nil, err
	}
	p := eng.planShards(refs)[index]
	art, loaded, _, err := eng.loadOrComputeShard(p)
	if err != nil {
		return nil, nil, err
	}
	payload, err := art.MarshalBinary()
	if err != nil {
		return nil, nil, err
	}
	return payload, &ShardInfo{
		Index:           index,
		Count:           count,
		Benchmarks:      len(p.benches),
		Refs:            len(p.refs),
		UniqueIntervals: art.uniqueCount(),
		Instructions:    art.instructions,
		Resumed:         loaded,
	}, nil
}

// PutShardArtifact verifies an encoded shard artifact against the local
// registry and configuration and stores it in cfg.CacheDir under the
// shard's content-addressed key — the coordinator half of a distributed
// run. Verification is strict: the payload must decode under the current
// schema version and must hold exactly the intervals the local shard
// plan expects, in plan order. A payload that fails is rejected (the
// shard stays uncached and the merge run recomputes it locally); it is
// never stored.
func PutShardArtifact(reg *bench.Registry, cfg Config, payload []byte) (*ShardInfo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("core: storing a shard artifact needs a cache directory")
	}
	index, count, err := normalizeShard(cfg)
	if err != nil {
		return nil, err
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("core: empty benchmark registry")
	}
	var art shardArtifact
	if err := art.UnmarshalBinary(payload); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d artifact rejected: %w", index, count, err)
	}
	refs := SampleRefs(reg, cfg)
	eng, err := newEngine(reg, cfg, refs, func(string, ...any) {})
	if err != nil {
		return nil, err
	}
	p := eng.planShards(refs)[index]
	if err := verifyShardCoverage(&art, p); err != nil {
		return nil, fmt.Errorf("core: shard %d/%d artifact rejected: %w", index, count, err)
	}
	key := eng.keys.shardKey(p.index, p.count, p.benches, len(p.refs))
	// Store the payload bytes as received: the codec round-trips
	// bit-identically, and keeping the wire bytes means the cache entry
	// checksum covers exactly what the worker produced.
	if err := eng.cache.Put(key, payload); err != nil {
		return nil, err
	}
	return &ShardInfo{
		Index:           p.index,
		Count:           p.count,
		Benchmarks:      len(p.benches),
		Refs:            len(p.refs),
		UniqueIntervals: art.uniqueCount(),
		Instructions:    art.instructions,
	}, nil
}

// verifyShardCoverage checks that the artifact holds exactly the shard
// plan's unique intervals in first-appearance order — the structure
// computeShard produces, and the structure the merge stage depends on.
func verifyShardCoverage(art *shardArtifact, p shardPlan) error {
	type ik struct {
		id    string
		index int
	}
	seen := make(map[ik]bool, len(p.refs))
	var want []ik
	for _, r := range p.refs {
		k := ik{r.Bench.ID(), r.Index}
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
		}
	}
	if got := art.uniqueCount(); got != len(want) {
		return fmt.Errorf("holds %d unique intervals, want %d", got, len(want))
	}
	pos := 0
	for bi := range art.benches {
		sb := &art.benches[bi]
		for _, idx := range sb.indices {
			if want[pos].id != sb.id || want[pos].index != idx {
				return fmt.Errorf("interval %d is %s#%d, want %s#%d", pos, sb.id, idx, want[pos].id, want[pos].index)
			}
			pos++
		}
	}
	return nil
}
