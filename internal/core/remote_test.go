package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/obs"
)

// noLog discards engine progress output in tests.
func noLog(string, ...any) {}

// TestEncodePutRoundTrip moves both shards of a 2-shard run through the
// remote path — EncodeShard on a cacheless "worker", PutShardArtifact on
// the "coordinator" — and pins that the merge run resumes every shard
// from the transferred artifacts and matches the plain run byte for
// byte.
func TestEncodePutRoundTrip(t *testing.T) {
	reg := miniRegistry(t)
	plain, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, plain)

	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Shard = ShardSpec{Index: 0, Count: 2}
	for s := 0; s < 2; s++ {
		workerCfg := miniConfig() // stateless: no cache directory
		workerCfg.Shard = ShardSpec{Index: s, Count: 2}
		payload, info, err := EncodeShard(reg, workerCfg, noLog)
		if err != nil {
			t.Fatalf("EncodeShard %d: %v", s, err)
		}
		if info.Index != s || info.Count != 2 || info.UniqueIntervals == 0 {
			t.Fatalf("EncodeShard %d info = %+v", s, info)
		}
		putCfg := cfg
		putCfg.Shard = ShardSpec{Index: s, Count: 2}
		if _, err := PutShardArtifact(reg, putCfg, payload); err != nil {
			t.Fatalf("PutShardArtifact %d: %v", s, err)
		}
	}

	m := obs.New()
	cfg.Metrics = m
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := exportJSON(t, res); !bytes.Equal(got, want) {
		t.Error("merge over transferred shards differs from plain run")
	}
	if got := m.Counter("engine.shards_computed").Value(); got != 0 {
		t.Errorf("engine.shards_computed = %d, want 0 (all shards transferred)", got)
	}
	if got := m.Counter("engine.shards_resumed").Value(); got != 2 {
		t.Errorf("engine.shards_resumed = %d, want 2", got)
	}
}

// TestPutShardArtifactRejects pins the coordinator-side verification:
// payloads with a skewed schema version, damaged bytes, or the wrong
// shard's intervals are rejected and never stored.
func TestPutShardArtifactRejects(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.Shard = ShardSpec{Index: 0, Count: 2}
	payload, _, err := EncodeShard(reg, cfg, noLog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheDir = t.TempDir()

	stale := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(stale, artifactVersion()-1)
	if _, err := PutShardArtifact(reg, cfg, stale); err == nil {
		t.Error("stale-version payload accepted")
	}

	// Structural damage (truncation) must be rejected here; bit flips in
	// float data are the transport checksum's job, not coverage checking.
	if _, err := PutShardArtifact(reg, cfg, payload[:len(payload)-5]); err == nil {
		t.Error("truncated payload accepted")
	}

	wrongShard := cfg
	wrongShard.Shard = ShardSpec{Index: 1, Count: 2}
	if _, err := PutShardArtifact(reg, wrongShard, payload); err == nil {
		t.Error("shard 0 payload accepted as shard 1")
	}
}

// TestStaleShardArtifactRecomputes plants a shard artifact whose payload
// carries an older schema version under the current cache key — what an
// out-of-date worker binary would produce — and pins that the merge run
// detects it, recomputes the shard, and still matches the plain run.
// Before shard payloads became self-describing this was undetectable
// through the key alone.
func TestStaleShardArtifactRecomputes(t *testing.T) {
	reg := miniRegistry(t)
	plain, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exportJSON(t, plain)

	cfg := miniConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Shard = ShardSpec{Index: 0, Count: 2}
	payload, _, err := EncodeShard(reg, cfg, noLog)
	if err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(stale, artifactVersion()-1)

	// Plant the stale payload at the shard's current content-addressed
	// key, bypassing PutShardArtifact's verification the way a buggy or
	// out-of-date writer would.
	vcfg := cfg
	if err := vcfg.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := SampleRefs(reg, vcfg)
	eng, err := newEngine(reg, vcfg, refs, noLog)
	if err != nil {
		t.Fatal(err)
	}
	p := eng.planShards(refs)[0]
	key := eng.keys.shardKey(p.index, p.count, p.benches, len(p.refs))
	if err := eng.cache.Put(key, stale); err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	cfg.Metrics = m
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatalf("merge over stale shard artifact: %v", err)
	}
	if got := exportJSON(t, res); !bytes.Equal(got, want) {
		t.Error("recomputed run differs from plain run")
	}
	if got := m.Counter("fcache.corrupt_deleted").Value(); got != 1 {
		t.Errorf("fcache.corrupt_deleted = %d, want 1 (the stale shard entry)", got)
	}
}
