package core

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/stats"
)

// Suite-to-suite similarity and benchmark-drift analyses. These extend the
// paper's section 5 analyses along the lines of its related work: Joshi,
// Phansalkar, Eeckhout & John measure benchmark similarity from inherent
// characteristics; Yi, Vandierendonck, Eeckhout & Lilja study benchmark
// drift between suite generations. Both drop out of the phase clustering
// almost for free.

// SharedCoverage returns the fraction of suite a's sampled execution that
// lives in clusters also containing intervals of suite b. It is
// directional: a niche suite can be fully covered by a broad one while
// covering little of it in return.
func (r *Result) SharedCoverage(a, b bench.Suite) float64 {
	hasB := map[int]bool{}
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.Suite == b {
			hasB[r.Clusters.Assignments[i]] = true
		}
	}
	shared, total := 0, 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.Suite != a {
			continue
		}
		total++
		if hasB[r.Clusters.Assignments[i]] {
			shared++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}

// SimilarityMatrix returns the directional shared-coverage matrix over the
// given suites: element (i, j) is SharedCoverage(suites[i], suites[j]).
// Diagonal entries are 1 by construction.
func (r *Result) SimilarityMatrix(suites []bench.Suite) *stats.Matrix {
	m := stats.NewMatrix(len(suites), len(suites))
	for i, a := range suites {
		for j, b := range suites {
			if i == j {
				m.Set(i, j, 1)
				continue
			}
			m.Set(i, j, r.SharedCoverage(a, b))
		}
	}
	return m
}

// SuiteCentroidDistance returns the Euclidean distance between two suites'
// centroids in the rescaled-PCA space — a coarse single-number dissimilarity.
func (r *Result) SuiteCentroidDistance(a, b bench.Suite) float64 {
	ca, na := r.suiteCentroid(a)
	cb, nb := r.suiteCentroid(b)
	if na == 0 || nb == 0 {
		return math.NaN()
	}
	return stats.EuclideanDistance(ca, cb)
}

func (r *Result) suiteCentroid(s bench.Suite) ([]float64, int) {
	c := make([]float64, r.Scores.Cols)
	n := 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.Suite != s {
			continue
		}
		row := r.Scores.Row(i)
		for j := range c {
			c[j] += row[j]
		}
		n++
	}
	if n > 0 {
		for j := range c {
			c[j] /= float64(n)
		}
	}
	return c, n
}

// Drift quantifies behaviour change between two suite generations (e.g.
// SPECint2000 → SPECint2006), following the "benchmark drift" notion of
// the paper's reference [27]:
//
//   - Retained: fraction of the old suite's behaviour still exercised by
//     the new suite (old intervals in clusters shared with the new suite);
//   - New: fraction of the new suite's behaviour absent from the old one.
type Drift struct {
	Old, New bench.Suite
	// Retained is SharedCoverage(Old, New).
	Retained float64
	// NewBehavior is 1 - SharedCoverage(New, Old).
	NewBehavior float64
	// CentroidShift is the distance between the suites' centroids in the
	// rescaled-PCA space.
	CentroidShift float64
}

// DriftBetween computes the drift from an old to a new suite generation.
func (r *Result) DriftBetween(old, niu bench.Suite) (Drift, error) {
	for _, s := range []bench.Suite{old, niu} {
		if _, n := r.suiteCentroid(s); n == 0 {
			return Drift{}, fmt.Errorf("core: suite %q not in the dataset", s)
		}
	}
	return Drift{
		Old:           old,
		New:           niu,
		Retained:      r.SharedCoverage(old, niu),
		NewBehavior:   1 - r.SharedCoverage(niu, old),
		CentroidShift: r.SuiteCentroidDistance(old, niu),
	}, nil
}
