package core

import (
	"math"
	"testing"

	"repro/internal/bench"
)

func similarityResult(t *testing.T) *Result {
	t.Helper()
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.SamplesPerBenchmark = 16
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSharedCoverageBounds(t *testing.T) {
	res := similarityResult(t)
	for _, a := range []bench.Suite{"SuiteA", "SuiteB"} {
		for _, b := range []bench.Suite{"SuiteA", "SuiteB"} {
			v := res.SharedCoverage(a, b)
			if v < 0 || v > 1 {
				t.Fatalf("SharedCoverage(%s,%s) = %v", a, b, v)
			}
		}
	}
	// Self-coverage is 1 by definition.
	if got := res.SharedCoverage("SuiteA", "SuiteA"); got != 1 {
		t.Fatalf("self shared coverage = %v", got)
	}
	// Unknown suites share nothing.
	if got := res.SharedCoverage("nope", "SuiteA"); got != 0 {
		t.Fatalf("unknown suite coverage = %v", got)
	}
}

func TestSharedCoverageAsymmetry(t *testing.T) {
	// SuiteB (pure streaming) is largely covered by SuiteA (which has a
	// streaming phase in s2), while SuiteA's serial phases are foreign to
	// SuiteB: coverage must be directional.
	res := similarityResult(t)
	ab := res.SharedCoverage("SuiteA", "SuiteB")
	ba := res.SharedCoverage("SuiteB", "SuiteA")
	if ba < ab {
		t.Fatalf("expected SuiteB more covered by SuiteA than vice versa: a->b %v, b->a %v", ab, ba)
	}
	if ba < 0.2 {
		t.Fatalf("streaming suite barely covered (%v) despite shared streaming phase", ba)
	}
}

func TestSimilarityMatrix(t *testing.T) {
	res := similarityResult(t)
	suites := []bench.Suite{"SuiteA", "SuiteB"}
	m := res.SimilarityMatrix(suites)
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Fatal("diagonal not 1")
	}
	if m.At(0, 1) != res.SharedCoverage("SuiteA", "SuiteB") {
		t.Fatal("off-diagonal mismatch")
	}
}

func TestSuiteCentroidDistance(t *testing.T) {
	res := similarityResult(t)
	d := res.SuiteCentroidDistance("SuiteA", "SuiteB")
	if math.IsNaN(d) || d <= 0 {
		t.Fatalf("centroid distance = %v", d)
	}
	if res.SuiteCentroidDistance("SuiteA", "SuiteA") != 0 {
		t.Fatal("self centroid distance nonzero")
	}
	if !math.IsNaN(res.SuiteCentroidDistance("SuiteA", "nope")) {
		t.Fatal("unknown suite centroid distance not NaN")
	}
}

func TestDriftBetween(t *testing.T) {
	res := similarityResult(t)
	d, err := res.DriftBetween("SuiteA", "SuiteB")
	if err != nil {
		t.Fatal(err)
	}
	if d.Retained < 0 || d.Retained > 1 || d.NewBehavior < 0 || d.NewBehavior > 1 {
		t.Fatalf("drift out of range: %+v", d)
	}
	if d.CentroidShift <= 0 {
		t.Fatalf("centroid shift %v", d.CentroidShift)
	}
	if _, err := res.DriftBetween("SuiteA", "nope"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestExportJSON(t *testing.T) {
	res := similarityResult(t)
	export := res.BuildExport()
	if len(export.MetricNames) != 69 {
		t.Fatalf("export has %d metric names", len(export.MetricNames))
	}
	if len(export.Suites) != 2 {
		t.Fatalf("export has %d suites", len(export.Suites))
	}
	if len(export.Prominent) != len(res.Prominent) {
		t.Fatalf("export has %d prominent phases, result %d", len(export.Prominent), len(res.Prominent))
	}
	for _, s := range export.Suites {
		if s.Coverage < 1 || s.UniqueFraction < 0 || s.UniqueFraction > 1 {
			t.Fatalf("export suite malformed: %+v", s)
		}
	}
	var buf testWriter
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if len(buf) < 200 {
		t.Fatalf("JSON suspiciously short: %d bytes", len(buf))
	}
}

type testWriter []byte

func (w *testWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
