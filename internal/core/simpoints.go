package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// The paper's practical implication (section 5.3): because phases recur
// within and across benchmarks, simulating one representative interval per
// phase-cluster — weighted by the cluster's share of the benchmark —
// approximates the benchmark's full behaviour at a fraction of the cost
// (the SimPoint idea of Sherwood et al., and the cross-benchmark variant of
// Eeckhout et al., both discussed in section 6).

// SimPoint is one selected simulation point for a benchmark.
type SimPoint struct {
	// Ref is the selected representative interval.
	Ref IntervalRef
	// Cluster is the global phase cluster the point represents.
	Cluster int
	// Weight is the fraction of the benchmark's sampled execution the
	// point stands for.
	Weight float64
}

// SimulationPoints selects up to maxPoints representative intervals for a
// benchmark from the global clustering: the benchmark's most-populated
// clusters, each represented by the benchmark's own interval closest to
// the cluster center, weighted by the cluster's share of the benchmark.
// Weights are renormalized over the selected points.
func (r *Result) SimulationPoints(benchID string, maxPoints int) ([]SimPoint, error) {
	if maxPoints < 1 {
		return nil, fmt.Errorf("core: maxPoints %d < 1", maxPoints)
	}
	// Collect the benchmark's rows per cluster.
	rows := map[int][]int{}
	total := 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.ID() != benchID {
			continue
		}
		c := r.Clusters.Assignments[i]
		rows[c] = append(rows[c], i)
		total++
	}
	if total == 0 {
		return nil, fmt.Errorf("core: benchmark %q not in the dataset", benchID)
	}

	clusters := make([]int, 0, len(rows))
	for c := range rows {
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(a, b int) bool {
		if len(rows[clusters[a]]) != len(rows[clusters[b]]) {
			return len(rows[clusters[a]]) > len(rows[clusters[b]])
		}
		return clusters[a] < clusters[b]
	})
	if len(clusters) > maxPoints {
		clusters = clusters[:maxPoints]
	}

	var points []SimPoint
	var covered float64
	for _, c := range clusters {
		// The benchmark's own row closest to the cluster center.
		best, bestD := -1, math.Inf(1)
		center := r.Clusters.Centers.Row(c)
		for _, i := range rows[c] {
			d := stats.EuclideanDistance(r.Scores.Row(i), center)
			if d < bestD {
				best, bestD = i, d
			}
		}
		w := float64(len(rows[c])) / float64(total)
		covered += w
		points = append(points, SimPoint{Ref: r.Dataset.Refs[best], Cluster: c, Weight: w})
	}
	// Renormalize over the selected points so weights sum to 1.
	if covered > 0 {
		for i := range points {
			points[i].Weight /= covered
		}
	}
	return points, nil
}

// SimPointAccuracy compares the weighted characteristic estimate from the
// simulation points against the benchmark's true average over all sampled
// intervals. It returns the mean relative error across characteristics
// (characteristics whose true average is ~0 are compared absolutely).
func (r *Result) SimPointAccuracy(benchID string, points []SimPoint) (float64, error) {
	cols := r.Dataset.Raw.Cols
	truth := make([]float64, cols)
	n := 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.ID() != benchID {
			continue
		}
		row := r.Dataset.Raw.Row(i)
		for j := range truth {
			truth[j] += row[j]
		}
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("core: benchmark %q not in the dataset", benchID)
	}
	for j := range truth {
		truth[j] /= float64(n)
	}

	est := make([]float64, cols)
	for _, p := range points {
		// Locate the row index of the representative.
		found := false
		for i, ref := range r.Dataset.Refs {
			if ref.Bench.ID() == p.Ref.Bench.ID() && ref.Index == p.Ref.Index {
				row := r.Dataset.Raw.Row(i)
				for j := range est {
					est[j] += p.Weight * row[j]
				}
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("core: simulation point %s not in the dataset", p.Ref)
		}
	}

	var errSum float64
	for j := range truth {
		diff := math.Abs(est[j] - truth[j])
		if math.Abs(truth[j]) > 1e-6 {
			errSum += diff / math.Abs(truth[j])
		} else {
			errSum += diff
		}
	}
	return errSum / float64(cols), nil
}
