package core

import (
	"math"
	"testing"
)

func TestSimulationPoints(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// s2 has two distinct phases; its simulation points should cover both.
	points, err := res.SimulationPoints("SuiteA/s2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no simulation points selected")
	}
	var total float64
	phases := map[string]bool{}
	for _, p := range points {
		if p.Ref.Bench.ID() != "SuiteA/s2" {
			t.Fatalf("simulation point from foreign benchmark %s", p.Ref.Bench.ID())
		}
		if p.Weight <= 0 || p.Weight > 1 {
			t.Fatalf("point weight %v", p.Weight)
		}
		total += p.Weight
		phases[p.Ref.PhaseName()] = true
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
	if len(phases) < 2 {
		t.Fatalf("simulation points cover only phases %v; s2 has two distinct ones", phases)
	}
}

func TestSimulationPointsMaxPointsRespected(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	points, err := res.SimulationPoints("SuiteA/s2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("maxPoints=1 returned %d points", len(points))
	}
	if math.Abs(points[0].Weight-1) > 1e-9 {
		t.Fatalf("single point weight %v, want 1 after renormalization", points[0].Weight)
	}
}

func TestSimulationPointsValidation(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.SimulationPoints("nope/x", 3); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := res.SimulationPoints("SuiteA/s1", 0); err == nil {
		t.Fatal("zero maxPoints accepted")
	}
}

func TestSimPointAccuracyImprovesWithPoints(t *testing.T) {
	reg := miniRegistry(t)
	cfg := miniConfig()
	cfg.SamplesPerBenchmark = 20
	cfg.NumClusters = 10
	cfg.NumProminent = 10
	res, err := Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := res.SimulationPoints("SuiteA/s2", 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := res.SimulationPoints("SuiteA/s2", 8)
	if err != nil {
		t.Fatal(err)
	}
	errOne, err := res.SimPointAccuracy("SuiteA/s2", one)
	if err != nil {
		t.Fatal(err)
	}
	errMany, err := res.SimPointAccuracy("SuiteA/s2", many)
	if err != nil {
		t.Fatal(err)
	}
	// s2 alternates between two very different phases: a single point
	// cannot represent both, several points can.
	if errMany > errOne {
		t.Fatalf("more simulation points worsened accuracy: %v -> %v", errOne, errMany)
	}
	if errMany > 0.5 {
		t.Fatalf("multi-point estimate error %v suspiciously high", errMany)
	}
}

func TestSimPointAccuracyValidation(t *testing.T) {
	reg := miniRegistry(t)
	res, err := Run(reg, miniConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.SimPointAccuracy("nope/x", nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	points, err := res.SimulationPoints("SuiteA/s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	// A point referencing an interval outside the dataset must error.
	bad := points
	bad[0].Ref.Index = 99999
	if _, err := res.SimPointAccuracy("SuiteA/s1", bad); err == nil {
		t.Fatal("foreign simulation point accepted")
	}
}
