package core

import (
	"sort"

	"repro/internal/bench"
)

// The suite-level analyses of section 5 operate on all clusters (not just
// the prominent ones), exactly as the paper does.

// SuiteCoverage returns, per suite, how many of the clusters contain at
// least one of the suite's sampled intervals — the workload-space coverage
// of Figure 4.
func (r *Result) SuiteCoverage() map[bench.Suite]int {
	seen := map[bench.Suite]map[int]bool{}
	for i, ref := range r.Dataset.Refs {
		s := ref.Bench.Suite
		if seen[s] == nil {
			seen[s] = map[int]bool{}
		}
		seen[s][r.Clusters.Assignments[i]] = true
	}
	out := map[bench.Suite]int{}
	for s, m := range seen {
		out[s] = len(m)
	}
	return out
}

// CumulativeCoverage returns, for one suite, the cumulative fraction of the
// suite's sampled intervals represented by its 1, 2, 3, ... most-populated
// clusters — one curve of Figure 5. A lower curve means more clusters are
// needed for a given coverage, i.e. higher diversity.
func (r *Result) CumulativeCoverage(s bench.Suite) []float64 {
	counts := map[int]int{}
	total := 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.Suite != s {
			continue
		}
		counts[r.Clusters.Assignments[i]]++
		total++
	}
	if total == 0 {
		return nil
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	out := make([]float64, len(sizes))
	cum := 0
	for i, c := range sizes {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// ClustersFor returns how many clusters are needed to reach the given
// cumulative coverage of the suite (e.g. 0.8 -> "about 20 clusters cover
// 80% of SPECfp2006").
func (r *Result) ClustersFor(s bench.Suite, coverage float64) int {
	curve := r.CumulativeCoverage(s)
	for i, c := range curve {
		if c >= coverage {
			return i + 1
		}
	}
	return len(curve)
}

// UniqueFraction returns, per suite, the fraction of the suite's sampled
// execution that lives in clusters containing data from that suite only
// (benchmark-specific or suite-specific clusters) — Figure 6.
func (r *Result) UniqueFraction() map[bench.Suite]float64 {
	clusterSuites := map[int]map[bench.Suite]bool{}
	for i, ref := range r.Dataset.Refs {
		c := r.Clusters.Assignments[i]
		if clusterSuites[c] == nil {
			clusterSuites[c] = map[bench.Suite]bool{}
		}
		clusterSuites[c][ref.Bench.Suite] = true
	}
	uniqueRows := map[bench.Suite]int{}
	totalRows := map[bench.Suite]int{}
	for i, ref := range r.Dataset.Refs {
		s := ref.Bench.Suite
		totalRows[s]++
		if len(clusterSuites[r.Clusters.Assignments[i]]) == 1 {
			uniqueRows[s]++
		}
	}
	out := map[bench.Suite]float64{}
	for s, total := range totalRows {
		out[s] = float64(uniqueRows[s]) / float64(total)
	}
	return out
}

// BenchmarkFractionInCluster returns the fraction of a benchmark's sampled
// execution represented by cluster c.
func (r *Result) BenchmarkFractionInCluster(benchID string, c int) float64 {
	in, total := 0, 0
	for i, ref := range r.Dataset.Refs {
		if ref.Bench.ID() != benchID {
			continue
		}
		total++
		if r.Clusters.Assignments[i] == c {
			in++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// KindBreakdown counts all clusters (not only prominent ones) by kind.
func (r *Result) KindBreakdown() map[PhaseKind]int {
	clusterBenches := map[int]map[string]bool{}
	clusterSuites := map[int]map[bench.Suite]bool{}
	for i, ref := range r.Dataset.Refs {
		c := r.Clusters.Assignments[i]
		if clusterBenches[c] == nil {
			clusterBenches[c] = map[string]bool{}
			clusterSuites[c] = map[bench.Suite]bool{}
		}
		clusterBenches[c][ref.Bench.ID()] = true
		clusterSuites[c][ref.Bench.Suite] = true
	}
	out := map[PhaseKind]int{}
	for c, benches := range clusterBenches {
		switch {
		case len(benches) == 1:
			out[BenchmarkSpecific]++
		case len(clusterSuites[c]) == 1:
			out[SuiteSpecific]++
		default:
			out[Mixed]++
		}
	}
	return out
}
