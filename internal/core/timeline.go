package core

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/fcache"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Per-benchmark phase detection (the SimPoint-style analysis of the
// paper's section 6.1 related work): characterize every interval of one
// benchmark in execution order, cluster the intervals with BIC-selected k,
// and read the time-varying phase structure off the assignments.

// Timeline is a benchmark's detected phase structure over time.
type Timeline struct {
	// BenchID is the analyzed benchmark.
	BenchID string
	// Phases[i] is the detected phase of interval i (0-based, in order
	// of first appearance).
	Phases []int
	// NumPhases is the BIC-selected number of distinct phases.
	NumPhases int
	// Transitions counts phase changes between consecutive intervals.
	Transitions int
	// Vectors holds the per-interval 69-characteristic vectors.
	Vectors *stats.Matrix
}

// AnalyzeTimeline detects phases in one benchmark's execution. maxPhases
// bounds the BIC model search (the paper-adjacent SimPoint tooling uses a
// small maximum, typically 10).
func AnalyzeTimeline(b *bench.Benchmark, cfg Config, maxPhases int) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxPhases < 1 {
		return nil, fmt.Errorf("core: maxPhases %d < 1", maxPhases)
	}
	var cache *fcache.Cache
	if cfg.CacheDir != "" {
		var err error
		if cache, err = fcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
		cache.SetMetrics(cfg.Metrics)
	}
	total := b.ScaledIntervals(cfg.MaxIntervalsPerBenchmark)
	var tKey fcache.Key
	if cache != nil {
		tKey = timelineKey(b, cfg, maxPhases, total)
		if cfg.Resume {
			// Resume: the whole analysis is one persisted artifact. A
			// corrupt or missing entry just falls through to recompute.
			art := &timelineArtifact{}
			if cache.GetBinary(tKey, art) {
				cfg.Metrics.StartSpan("timeline.resume").SetRows(total).SetResumed(true).End()
				cfg.Metrics.Add("engine.resumed.timeline", 1)
				return &art.t, nil
			}
		}
	}
	// Characterize the intervals over the worker pool (one analyzer per
	// worker, one matrix row per interval — worker-count deterministic),
	// reusing cached interval vectors when a cache is configured.
	vectors := stats.NewMatrix(total, mica.NumMetrics)
	workers := par.Workers(cfg.Workers)
	span := cfg.Metrics.StartSpan("timeline.characterize").SetRows(total).SetWorkers(workers)
	analyzers := make([]*mica.Analyzer, workers)
	buffers := make([][]isa.Instruction, workers)
	errs := make([]error, total)
	par.ForWorker(workers, total, func(w, i int) {
		beh := b.BehaviorAt(i, total)
		seed := b.IntervalSeed(i)
		var key fcache.Key
		if cache != nil {
			key = VectorKey(beh, seed, cfg.IntervalLength)
			if v, ok := cache.GetVector(key, mica.NumMetrics); ok {
				copy(vectors.Row(i), v)
				return
			}
		}
		analyzer := analyzers[w]
		if analyzer == nil {
			analyzer = mica.NewAnalyzer()
			analyzers[w] = analyzer
			buffers[w] = make([]isa.Instruction, trace.DefaultBatchSize)
		}
		analyzer.Reset()
		if err := trace.GenerateIntervalBatches(beh, seed, cfg.IntervalLength, buffers[w], analyzer.RecordBatch); err != nil {
			errs[i] = err
			return
		}
		copy(vectors.Row(i), analyzer.Vector())
		if cache != nil {
			_ = cache.PutVector(key, vectors.Row(i))
		}
	})
	span.End()
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}

	span = cfg.Metrics.StartSpan("timeline.pca").SetRows(total)
	pca, err := stats.ComputePCA(vectors, true)
	span.End()
	if err != nil {
		return nil, err
	}
	// Unlike the cross-benchmark pipeline (which rescales components to
	// weigh all underlying characteristics equally), phase detection
	// keeps the variance weighting: within one benchmark the dominant
	// components ARE the phase structure, and rescaling would drown them
	// in jitter noise. This matches SimPoint's use of raw projections.
	scores, err := pca.Project(vectors, pca.NumRetained(cfg.MinPCStd))
	if err != nil {
		return nil, err
	}

	// SimPoint-style model selection: smallest k reaching 90% of the
	// BIC range.
	span = cfg.Metrics.StartSpan("timeline.selectk").SetRows(total).SetWorkers(workers)
	best, err := cluster.SelectK(scores, 1, maxPhases, 0.9,
		cluster.Options{Seed: cfg.Seed, Restarts: 2, MaxIters: 50, Workers: cfg.Workers, Metrics: cfg.Metrics})
	span.End()
	if err != nil {
		return nil, err
	}

	// Relabel phases by first appearance so timelines read naturally.
	relabel := map[int]int{}
	phases := make([]int, total)
	transitions := 0
	for i, c := range best.Assignments {
		id, ok := relabel[c]
		if !ok {
			id = len(relabel)
			relabel[c] = id
		}
		phases[i] = id
		if i > 0 && phases[i] != phases[i-1] {
			transitions++
		}
	}
	tl := &Timeline{
		BenchID:     b.ID(),
		Phases:      phases,
		NumPhases:   len(relabel),
		Transitions: transitions,
		Vectors:     vectors,
	}
	if cache != nil {
		// Best-effort, like every artifact write: a failure only costs a
		// future recompute.
		_ = cache.PutBinary(tKey, &timelineArtifact{t: *tl})
	}
	return tl, nil
}

// Strip renders the timeline as a one-character-per-interval strip, e.g.
// "AAAABBBBAAAA", using letters in order of first appearance.
func (t *Timeline) Strip() string {
	var b strings.Builder
	for _, p := range t.Phases {
		if p < 26 {
			b.WriteByte(byte('A' + p))
		} else {
			b.WriteByte('+')
		}
	}
	return b.String()
}

// PhaseShares returns each detected phase's fraction of the execution.
func (t *Timeline) PhaseShares() []float64 {
	if len(t.Phases) == 0 {
		return nil
	}
	shares := make([]float64, t.NumPhases)
	for _, p := range t.Phases {
		shares[p]++
	}
	for i := range shares {
		shares[i] /= float64(len(t.Phases))
	}
	return shares
}

// PhaseMeans returns the mean characteristic vector of each detected phase.
func (t *Timeline) PhaseMeans() *stats.Matrix {
	means := stats.NewMatrix(t.NumPhases, t.Vectors.Cols)
	counts := make([]int, t.NumPhases)
	for i, p := range t.Phases {
		row := t.Vectors.Row(i)
		dst := means.Row(p)
		for j := range row {
			dst[j] += row[j]
		}
		counts[p]++
	}
	for p := 0; p < t.NumPhases; p++ {
		if counts[p] == 0 {
			continue
		}
		dst := means.Row(p)
		for j := range dst {
			dst[j] /= float64(counts[p])
		}
	}
	return means
}
