package core

import (
	"math"
	"strings"
	"testing"
)

func timelineConfig() Config {
	cfg := miniConfig()
	cfg.IntervalLength = 2500
	cfg.MaxIntervalsPerBenchmark = 24
	return cfg
}

func TestTimelineDetectsTwoPhases(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s2") // half serial, half streaming
	if err != nil {
		t.Fatal(err)
	}
	tl, err := AnalyzeTimeline(b, timelineConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumPhases < 2 {
		t.Fatalf("detected %d phases in a two-phase benchmark (strip %s)", tl.NumPhases, tl.Strip())
	}
	// Sequential layout: whatever sub-phases BIC carves out, the halves
	// must not share them — the serial and streaming behaviours are far
	// apart. Check that no detected phase spans both halves much.
	half := len(tl.Phases) / 2
	first := map[int]int{}
	second := map[int]int{}
	for i, p := range tl.Phases {
		if i < half {
			first[p]++
		} else {
			second[p]++
		}
	}
	for p, n1 := range first {
		n2 := second[p]
		if n1 >= 3 && n2 >= 3 {
			t.Fatalf("phase %d spans both halves (%d/%d): %s", p, n1, n2, tl.Strip())
		}
	}
}

func TestTimelineSinglePhaseBenchmark(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteB/f1") // one homogeneous phase
	if err != nil {
		t.Fatal(err)
	}
	tl, err := AnalyzeTimeline(b, timelineConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// BIC should not shatter a homogeneous benchmark into many phases.
	if tl.NumPhases > 3 {
		t.Fatalf("homogeneous benchmark split into %d phases: %s", tl.NumPhases, tl.Strip())
	}
}

func TestTimelineStripAndShares(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := AnalyzeTimeline(b, timelineConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	strip := tl.Strip()
	if len(strip) != len(tl.Phases) {
		t.Fatalf("strip length %d for %d intervals", len(strip), len(tl.Phases))
	}
	if !strings.HasPrefix(strip, "A") {
		t.Fatalf("strip must start with phase A: %s", strip)
	}
	shares := tl.PhaseShares()
	var sum float64
	for _, s := range shares {
		if s <= 0 {
			t.Fatalf("empty phase in shares %v", shares)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestTimelinePhaseMeansDiffer(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := AnalyzeTimeline(b, timelineConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumPhases < 2 {
		t.Skip("needs at least two detected phases")
	}
	means := tl.PhaseMeans()
	// The serial and streaming phases differ hugely; their mean vectors
	// must be far apart in at least some metric.
	var maxDiff float64
	for j := 0; j < means.Cols; j++ {
		d := math.Abs(means.At(0, j) - means.At(1, j))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.05 {
		t.Fatalf("phase means indistinguishable (max diff %v)", maxDiff)
	}
}

func TestTimelineValidation(t *testing.T) {
	reg := miniRegistry(t)
	b, err := reg.Lookup("SuiteA/s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTimeline(b, timelineConfig(), 0); err == nil {
		t.Fatal("zero maxPhases accepted")
	}
	bad := timelineConfig()
	bad.IntervalLength = 1
	if _, err := AnalyzeTimeline(b, bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}
