package corpus

// Binary codecs for the two persisted corpus file kinds: segments (the
// append-only record batches) and the manifest (the root that names the
// live segments). Both follow the fcache entry discipline — a magic
// number, a schema version, and an FNV-1a trailer checksum over
// everything before it — and both decoders must survive arbitrary bytes:
// these files cross a trust boundary (shared corpus directories), so a
// hostile or truncated payload must produce an error, never a panic or
// an unbounded allocation. Element counts are bounded against the bytes
// actually present before anything is allocated, exactly like the
// artifact decoders in internal/core.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/stats"
)

const (
	// segMagic/manMagic open every segment and manifest file ("CPS1",
	// "CPM1" little-endian).
	segMagic = 0x31535043
	manMagic = 0x314d5043
	// schemaVersion is the corpus wire schema. A bump invalidates every
	// corpus directory written by older code; Open reports the skew
	// instead of guessing at the old layout.
	schemaVersion = 1
	// checksumSeed/checksumPrime are the FNV-1a constants.
	checksumSeed  = 0xcbf29ce484222325
	checksumPrime = 0x100000001b3
)

// checksum is FNV-1a over b, the same integrity primitive fcache trails
// its entries with.
func checksum(b []byte) uint64 {
	h := uint64(checksumSeed)
	for _, c := range b {
		h ^= uint64(c)
		h *= checksumPrime
	}
	return h
}

// ingestEntry is one ingested run's provenance, shared by every record
// the ingest contributed.
type ingestEntry struct {
	// dataset is the core.DatasetHash of the ingested run — the
	// idempotence-ledger key.
	dataset uint64
	// params is a digest of the analysis-shaping configuration knobs.
	params uint64
	// seed is the run's pipeline seed.
	seed uint64
}

// benchEntry names one benchmark in a segment's string table.
type benchEntry struct {
	id    string // "suite/name", or "" for run-level centroid records
	suite string
}

// record is one phase entry: an interval vector or a cluster centroid,
// with its provenance references and global ingest sequence number.
type record struct {
	benchRef  uint32
	ingestRef uint32
	kind      Kind
	index     uint32
	seq       uint64
}

// segment is one decoded segment file: provenance tables, records, and
// the records' vectors (one matrix row per record, in record order).
type segment struct {
	ingests []ingestEntry
	benches []benchEntry
	recs    []record
	vecs    *stats.Matrix
}

// wire sizes used by the allocation-bomb bounds: the minimum bytes one
// element of each table occupies.
const (
	ingestWireSize = 24 // 3 x u64
	benchWireSize  = 8  // two empty length-prefixed strings
	recordWireSize = 21 // u32 + u32 + u8 + u32 + u64
)

func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = appendU32(buf, uint32(len(s)))
	return append(buf, s...)
}

func decodeU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("corpus: truncated u32")
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}

func decodeU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("corpus: truncated u64")
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}

// decodeString consumes a length-prefixed string, bounding the length
// against the bytes present before allocating.
func decodeString(buf []byte) (string, []byte, error) {
	n, rest, err := decodeU32(buf)
	if err != nil {
		return "", nil, err
	}
	if int(n) > len(rest) {
		return "", nil, fmt.Errorf("corpus: %d-byte string in %d remaining bytes", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

// openPayload verifies the trailer checksum and the magic/version header
// and returns the body between them.
func openPayload(buf []byte, magic uint32, what string) ([]byte, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("corpus: %s truncated (%d bytes)", what, len(buf))
	}
	body, trailer := buf[:len(buf)-8], buf[len(buf)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), checksum(body); got != want {
		return nil, fmt.Errorf("corpus: %s checksum mismatch", what)
	}
	if got := binary.LittleEndian.Uint32(body); got != magic {
		return nil, fmt.Errorf("corpus: %s has magic %08x, want %08x", what, got, magic)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != schemaVersion {
		return nil, fmt.Errorf("corpus: %s has schema version %d, this build reads %d", what, v, schemaVersion)
	}
	return body[8:], nil
}

// sealPayload appends the trailer checksum over everything in buf.
func sealPayload(buf []byte) []byte { return appendU64(buf, checksum(buf)) }

// encodeSegment serializes s.
func encodeSegment(s *segment) []byte {
	size := 16 + len(s.ingests)*ingestWireSize + len(s.recs)*recordWireSize + 8*len(s.vecs.Data) + 64
	for _, b := range s.benches {
		size += benchWireSize + len(b.id) + len(b.suite)
	}
	buf := make([]byte, 0, size)
	buf = appendU32(buf, segMagic)
	buf = appendU32(buf, schemaVersion)
	buf = appendU32(buf, uint32(len(s.ingests)))
	for _, in := range s.ingests {
		buf = appendU64(buf, in.dataset)
		buf = appendU64(buf, in.params)
		buf = appendU64(buf, in.seed)
	}
	buf = appendU32(buf, uint32(len(s.benches)))
	for _, b := range s.benches {
		buf = appendString(buf, b.id)
		buf = appendString(buf, b.suite)
	}
	buf = appendU32(buf, uint32(len(s.recs)))
	for _, r := range s.recs {
		buf = appendU32(buf, r.benchRef)
		buf = appendU32(buf, r.ingestRef)
		buf = append(buf, byte(r.kind))
		buf = appendU32(buf, r.index)
		buf = appendU64(buf, r.seq)
	}
	buf = s.vecs.AppendBinary(buf)
	return sealPayload(buf)
}

// decodeSegment parses and validates one segment file. Accepted
// segments are internally consistent: every reference resolves, the
// sequence numbers strictly increase, and the vector matrix matches the
// record count.
func decodeSegment(buf []byte) (*segment, error) {
	body, err := openPayload(buf, segMagic, "segment")
	if err != nil {
		return nil, err
	}
	s := &segment{}
	nIng, body, err := decodeU32(body)
	if err != nil {
		return nil, err
	}
	if int(nIng) > len(body)/ingestWireSize {
		return nil, fmt.Errorf("corpus: %d ingest entries in %d bytes", nIng, len(body))
	}
	s.ingests = make([]ingestEntry, nIng)
	for i := range s.ingests {
		in := &s.ingests[i]
		if in.dataset, body, err = decodeU64(body); err != nil {
			return nil, err
		}
		if in.params, body, err = decodeU64(body); err != nil {
			return nil, err
		}
		if in.seed, body, err = decodeU64(body); err != nil {
			return nil, err
		}
	}
	nBench, body, err := decodeU32(body)
	if err != nil {
		return nil, err
	}
	if int(nBench) > len(body)/benchWireSize {
		return nil, fmt.Errorf("corpus: %d bench entries in %d bytes", nBench, len(body))
	}
	s.benches = make([]benchEntry, nBench)
	for i := range s.benches {
		b := &s.benches[i]
		if b.id, body, err = decodeString(body); err != nil {
			return nil, err
		}
		if b.suite, body, err = decodeString(body); err != nil {
			return nil, err
		}
	}
	nRec, body, err := decodeU32(body)
	if err != nil {
		return nil, err
	}
	if int(nRec) > len(body)/recordWireSize {
		return nil, fmt.Errorf("corpus: %d records in %d bytes", nRec, len(body))
	}
	s.recs = make([]record, nRec)
	for i := range s.recs {
		r := &s.recs[i]
		if r.benchRef, body, err = decodeU32(body); err != nil {
			return nil, err
		}
		if r.ingestRef, body, err = decodeU32(body); err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, fmt.Errorf("corpus: truncated record kind")
		}
		r.kind, body = Kind(body[0]), body[1:]
		if r.index, body, err = decodeU32(body); err != nil {
			return nil, err
		}
		if r.seq, body, err = decodeU64(body); err != nil {
			return nil, err
		}
		if r.kind > KindCentroid {
			return nil, fmt.Errorf("corpus: record %d has unknown kind %d", i, r.kind)
		}
		if r.benchRef >= nBench || r.ingestRef >= nIng {
			return nil, fmt.Errorf("corpus: record %d references bench %d/%d, ingest %d/%d",
				i, r.benchRef, nBench, r.ingestRef, nIng)
		}
		if i > 0 && r.seq <= s.recs[i-1].seq {
			return nil, fmt.Errorf("corpus: record sequence not strictly increasing (%d after %d)",
				r.seq, s.recs[i-1].seq)
		}
	}
	if s.vecs, body, err = stats.DecodeMatrix(body); err != nil {
		return nil, err
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("corpus: %d trailing bytes after segment", len(body))
	}
	if s.vecs.Rows != int(nRec) {
		return nil, fmt.Errorf("corpus: %d records with %d vector rows", nRec, s.vecs.Rows)
	}
	if nRec > 0 && s.vecs.Cols < 1 {
		return nil, fmt.Errorf("corpus: records with %d-dimensional vectors", s.vecs.Cols)
	}
	return s, nil
}

// manifest is the corpus root: the live segment list, the next global
// sequence and file numbers, the vector dimensionality, and the sorted
// dataset-hash ledger that makes re-ingesting a run a no-op.
type manifest struct {
	nextSeq  uint64
	nextFile uint64
	dim      uint32
	segments []string
	ledger   []uint64
}

// encodeManifest serializes m.
func encodeManifest(m *manifest) []byte {
	size := 48 + 8*len(m.ledger)
	for _, s := range m.segments {
		size += 4 + len(s)
	}
	buf := make([]byte, 0, size)
	buf = appendU32(buf, manMagic)
	buf = appendU32(buf, schemaVersion)
	buf = appendU64(buf, m.nextSeq)
	buf = appendU64(buf, m.nextFile)
	buf = appendU32(buf, m.dim)
	buf = appendU32(buf, uint32(len(m.segments)))
	for _, s := range m.segments {
		buf = appendString(buf, s)
	}
	buf = appendU32(buf, uint32(len(m.ledger)))
	for _, h := range m.ledger {
		buf = appendU64(buf, h)
	}
	return sealPayload(buf)
}

// decodeManifest parses and validates one manifest. Segment names must
// be plain file names (the sweep and the loader join them onto the
// corpus directory), and the ledger must be strictly increasing — its
// canonical, binary-searchable form.
func decodeManifest(buf []byte) (*manifest, error) {
	body, err := openPayload(buf, manMagic, "manifest")
	if err != nil {
		return nil, err
	}
	m := &manifest{}
	if m.nextSeq, body, err = decodeU64(body); err != nil {
		return nil, err
	}
	if m.nextFile, body, err = decodeU64(body); err != nil {
		return nil, err
	}
	if m.dim, body, err = decodeU32(body); err != nil {
		return nil, err
	}
	nSeg, body, err := decodeU32(body)
	if err != nil {
		return nil, err
	}
	if int(nSeg) > len(body)/4 {
		return nil, fmt.Errorf("corpus: %d segment names in %d bytes", nSeg, len(body))
	}
	m.segments = make([]string, nSeg)
	for i := range m.segments {
		if m.segments[i], body, err = decodeString(body); err != nil {
			return nil, err
		}
		if !validSegmentName(m.segments[i]) {
			return nil, fmt.Errorf("corpus: manifest names invalid segment %q", m.segments[i])
		}
	}
	nLed, body, err := decodeU32(body)
	if err != nil {
		return nil, err
	}
	if int(nLed) > len(body)/8 {
		return nil, fmt.Errorf("corpus: %d ledger entries in %d bytes", nLed, len(body))
	}
	m.ledger = make([]uint64, nLed)
	for i := range m.ledger {
		if m.ledger[i], body, err = decodeU64(body); err != nil {
			return nil, err
		}
		if i > 0 && m.ledger[i] <= m.ledger[i-1] {
			return nil, fmt.Errorf("corpus: ledger not strictly increasing")
		}
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("corpus: %d trailing bytes after manifest", len(body))
	}
	return m, nil
}

// validSegmentName accepts exactly the names newSegmentName mints:
// "seg-" + 16 hex digits + ".seg". Anything else in a manifest —
// path separators in particular — is rejected, because these names are
// joined onto the corpus directory and unlinked by the sweep.
func validSegmentName(name string) bool {
	const pre, suf = "seg-", ".seg"
	if len(name) != len(pre)+16+len(suf) || name[:len(pre)] != pre || name[len(name)-len(suf):] != suf {
		return false
	}
	for i := len(pre); i < len(pre)+16; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newSegmentName mints the file name for segment number n.
func newSegmentName(n uint64) string { return fmt.Sprintf("seg-%016x.seg", n) }
