package corpus

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/stats"
)

// testSegment builds a small internally-consistent segment.
func testSegment() *segment {
	b := Batch{
		Dataset: 0x1111, Params: 0x2222, Seed: 7,
		Entries: []Entry{
			{Bench: "SuiteA/one", Suite: "SuiteA", Kind: KindInterval, Index: 3, Vector: []float64{1, 2, 3}},
			{Bench: "SuiteA/one", Suite: "SuiteA", Kind: KindInterval, Index: 5, Vector: []float64{4, 5, 6}},
			{Bench: "SuiteB/two", Suite: "SuiteB", Kind: KindInterval, Index: 0, Vector: []float64{7, 8, 9}},
			{Kind: KindCentroid, Index: 1, Vector: []float64{2.5, 3.5, 4.5}},
		},
	}
	return buildSegment(b, 100)
}

func TestSegmentRoundTrip(t *testing.T) {
	s := testSegment()
	buf := encodeSegment(s)
	got, err := decodeSegment(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.recs) != len(s.recs) || len(got.benches) != len(s.benches) || len(got.ingests) != len(s.ingests) {
		t.Fatalf("decoded %d recs / %d benches / %d ingests, want %d / %d / %d",
			len(got.recs), len(got.benches), len(got.ingests), len(s.recs), len(s.benches), len(s.ingests))
	}
	for i := range s.recs {
		if got.recs[i] != s.recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.recs[i], s.recs[i])
		}
	}
	for i := range s.benches {
		if got.benches[i] != s.benches[i] {
			t.Fatalf("bench %d = %+v, want %+v", i, got.benches[i], s.benches[i])
		}
	}
	if got.ingests[0] != s.ingests[0] {
		t.Fatalf("ingest = %+v, want %+v", got.ingests[0], s.ingests[0])
	}
	for i, v := range s.vecs.Data {
		if got.vecs.Data[i] != v {
			t.Fatalf("vector data %d = %g, want %g", i, got.vecs.Data[i], v)
		}
	}
	// The encoding is deterministic: same segment, same bytes.
	if string(encodeSegment(got)) != string(buf) {
		t.Fatal("re-encoding a decoded segment changed the bytes")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &manifest{
		nextSeq: 42, nextFile: 3, dim: 69,
		segments: []string{newSegmentName(0), newSegmentName(2)},
		ledger:   []uint64{5, 9, 100},
	}
	buf := encodeManifest(m)
	got, err := decodeManifest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.nextSeq != m.nextSeq || got.nextFile != m.nextFile || got.dim != m.dim {
		t.Fatalf("decoded header %+v, want %+v", got, m)
	}
	if len(got.segments) != 2 || got.segments[0] != m.segments[0] || got.segments[1] != m.segments[1] {
		t.Fatalf("segments = %v, want %v", got.segments, m.segments)
	}
	if len(got.ledger) != 3 || got.ledger[2] != 100 {
		t.Fatalf("ledger = %v, want %v", got.ledger, m.ledger)
	}
}

// TestCodecRejectsCorruption: any flipped byte fails the trailer
// checksum (or a validation downstream of it) — never decodes silently.
func TestCodecRejectsCorruption(t *testing.T) {
	buf := encodeSegment(testSegment())
	for _, i := range []int{0, 4, len(buf) / 2, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, err := decodeSegment(bad); err == nil {
			t.Fatalf("flipping byte %d decoded cleanly", i)
		}
	}
	man := encodeManifest(&manifest{dim: 3})
	man[len(man)/2] ^= 1
	if _, err := decodeManifest(man); err == nil {
		t.Fatal("corrupt manifest decoded cleanly")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	buf := encodeSegment(testSegment())
	for n := 0; n < len(buf); n += 7 {
		if _, err := decodeSegment(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
}

// reseal recomputes the trailer over a patched body so the payload
// reaches the structural validators instead of dying at the checksum.
func reseal(buf []byte) []byte {
	return sealPayload(append([]byte(nil), buf[:len(buf)-8]...))
}

// TestSegmentRejectsCountBombs: a checksum-valid header advertising
// billions of elements must be rejected against the bytes present, not
// allocated.
func TestSegmentRejectsCountBombs(t *testing.T) {
	base := encodeSegment(testSegment())
	// The ingest count is the first u32 after magic+version.
	for _, off := range []int{8} {
		bomb := append([]byte(nil), base...)
		binary.LittleEndian.PutUint32(bomb[off:], 1<<30)
		bomb = reseal(bomb)
		if _, err := decodeSegment(bomb); err == nil {
			t.Fatalf("count bomb at offset %d decoded cleanly", off)
		} else if !strings.Contains(err.Error(), "ingest entries") {
			t.Fatalf("count bomb error = %v, want the bounded-count rejection", err)
		}
	}
	// nSeg sits after magic+version (8) + nextSeq/nextFile (16) + dim (4).
	man := encodeManifest(&manifest{dim: 3})
	binary.LittleEndian.PutUint32(man[28:], 1<<30)
	man = reseal(man)
	if _, err := decodeManifest(man); err == nil {
		t.Fatal("manifest count bomb decoded cleanly")
	}
}

// TestSegmentRejectsInconsistency covers the structural validators:
// dangling references, unknown kinds, non-increasing sequences, row
// mismatches and trailing bytes.
func TestSegmentRejectsInconsistency(t *testing.T) {
	cases := map[string]func(s *segment){
		"dangling benchRef":  func(s *segment) { s.recs[0].benchRef = 99 },
		"dangling ingestRef": func(s *segment) { s.recs[0].ingestRef = 99 },
		"unknown kind":       func(s *segment) { s.recs[0].kind = 7 },
		"seq not increasing": func(s *segment) { s.recs[1].seq = s.recs[0].seq },
	}
	for name, mutate := range cases {
		s := testSegment()
		mutate(s)
		if _, err := decodeSegment(encodeSegment(s)); err == nil {
			t.Fatalf("%s decoded cleanly", name)
		}
	}

	s := testSegment()
	s.vecs = stats.NewMatrix(len(s.recs)+1, 3)
	if _, err := decodeSegment(encodeSegment(s)); err == nil {
		t.Fatal("vector-row/record-count mismatch decoded cleanly")
	}

	enc := encodeSegment(testSegment())
	body := append([]byte(nil), enc[:len(enc)-8]...)
	trailing := sealPayload(append(body, 0xAB))
	if _, err := decodeSegment(trailing); err == nil {
		t.Fatal("trailing bytes decoded cleanly")
	}
}

func TestManifestRejectsBadSegmentNames(t *testing.T) {
	for _, name := range []string{
		"", "seg-.seg", "seg-0000000000000000", "0000000000000000.seg",
		"seg-000000000000000G.seg", "seg-0000000000000000.seg/..",
		"../seg-0000000000000000.seg", "seg-0000000000000000.segx",
		"seg-00000000000000000.seg", "seg-ABCDEF0000000000.seg",
	} {
		if validSegmentName(name) {
			t.Fatalf("validSegmentName(%q) = true", name)
		}
		m := &manifest{segments: []string{name}}
		if _, err := decodeManifest(encodeManifest(m)); err == nil {
			t.Fatalf("manifest naming %q decoded cleanly", name)
		}
	}
	if !validSegmentName(newSegmentName(0)) || !validSegmentName(newSegmentName(1<<40)) {
		t.Fatal("minted segment names must validate")
	}
}

func TestManifestRejectsUnsortedLedger(t *testing.T) {
	for _, ledger := range [][]uint64{{2, 1}, {3, 3}} {
		m := &manifest{ledger: ledger}
		if _, err := decodeManifest(encodeManifest(m)); err == nil {
			t.Fatalf("ledger %v decoded cleanly", ledger)
		}
	}
}

// TestSchemaVersionSkew: payloads from a future schema are reported as
// such, not misparsed.
func TestSchemaVersionSkew(t *testing.T) {
	buf := encodeSegment(testSegment())
	binary.LittleEndian.PutUint32(buf[4:], schemaVersion+1)
	buf = reseal(buf)
	_, err := decodeSegment(buf)
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("future-schema decode error = %v, want a version-skew report", err)
	}
}
