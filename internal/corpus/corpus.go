// Package corpus is the persistent cross-run phase database: every
// characterization run's interval vectors and cluster centroids, with
// full provenance, accumulated in one directory and queryable online.
// It turns the paper's batch uniqueness analysis into a standing
// question — "how similar is this workload to everything measured so
// far?" — answered in milliseconds against the whole history.
//
// On disk a corpus is a manifest plus append-only segments, written in
// the fcache idiom: every file is schema-versioned and trailer-
// checksummed, every write goes to a temp name and becomes visible by
// atomic rename, and a crash between the two leaves an unreferenced
// file that the next Open sweeps. Ingest appends one segment and swaps
// the manifest; Compact merges the live segments into one and swaps the
// manifest; at every instant the manifest on disk names a complete,
// consistent corpus. Re-ingesting a run is a no-op: the manifest
// carries a sorted ledger of dataset hashes (core.DatasetHash — the
// same fingerprint the artifact cache keys on), like the seen-hash
// ledger in stats.Running.
//
// Queries are served by an in-memory index rebuilt from the segments
// whenever the manifest changes; see index.go. One process must own
// writes to a corpus directory at a time (the service serializes its
// own ingests; concurrent CLI writers are not coordinated), but readers
// are always safe: they only ever see a fully written manifest.
package corpus

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Kind classifies a corpus record.
type Kind uint8

const (
	// KindInterval is one sampled interval's 69-characteristic vector.
	KindInterval Kind = iota
	// KindCentroid is one run-level cluster centroid, averaged in the
	// raw characteristic space over the cluster's member intervals.
	KindCentroid
)

// String names the kind in query output.
func (k Kind) String() string {
	if k == KindCentroid {
		return "centroid"
	}
	return "interval"
}

// manifestName is the corpus root file, swapped atomically on every
// mutation.
const manifestName = "MANIFEST"

// sweepAge is how old an unreferenced segment or temp file must be
// before Open removes it: young strays may belong to a writer that is
// mid-swap right now. Tests shrink it to exercise the sweep.
var sweepAge = time.Hour

// Entry is one record offered for ingest.
type Entry struct {
	// Bench is the "suite/name" benchmark ID ("" for run-level
	// centroids, which aggregate across benchmarks).
	Bench string
	// Suite is the benchmark's suite ("" for centroids).
	Suite string
	// Kind classifies the vector.
	Kind Kind
	// Index is the interval's position in its benchmark (KindInterval)
	// or the cluster number (KindCentroid).
	Index int
	// Vector is the raw characteristic vector. Every entry of a batch
	// (and every batch of a corpus) must share one dimensionality.
	Vector []float64
}

// Batch is one run's worth of entries with shared provenance.
type Batch struct {
	// Dataset is the run's core.DatasetHash — the idempotence key. A
	// batch whose hash is already in the ledger is skipped whole.
	Dataset uint64
	// Params digests the analysis-shaping configuration.
	Params uint64
	// Seed is the run's pipeline seed.
	Seed uint64
	// Entries are the records, in a deterministic run-derived order
	// (they receive consecutive global sequence numbers).
	Entries []Entry
}

// IngestInfo reports one IngestBatch outcome.
type IngestInfo struct {
	// Skipped means the batch's dataset hash was already in the ledger
	// and nothing was written.
	Skipped bool
	// Records is how many records were appended (0 when skipped).
	Records int
	// Intervals/Centroids split Records by kind.
	Intervals int
	Centroids int
	// Segment is the file name of the appended segment ("" when skipped).
	Segment string
	// Dataset echoes the batch's ledger key.
	Dataset uint64
}

// CompactInfo reports one Compact outcome.
type CompactInfo struct {
	// Before/After are the live segment counts around the compaction.
	Before, After int
	// Records is the record count of the compacted corpus.
	Records int
}

// Stats is the corpus summary served by the "stats" query.
type Stats struct {
	Records   int    `json:"records"`
	Intervals int    `json:"intervals"`
	Centroids int    `json:"centroids"`
	Benches   int    `json:"benchmarks"`
	Suites    int    `json:"suites"`
	Segments  int    `json:"segments"`
	Ingests   int    `json:"ingests"`
	Dim       int    `json:"dim"`
	NextSeq   uint64 `json:"next_seq"`
}

// Corpus is an open phase database. It is safe for concurrent use
// within one process; see the package comment for the cross-process
// single-writer rule.
type Corpus struct {
	dir string
	m   *obs.Metrics

	mu   sync.Mutex
	man  *manifest
	idx  *index // built lazily, dropped whenever man changes
	segN int    // last segment count reported to the segments counter

	ingested    *obs.Counter
	skipped     *obs.Counter
	segments    *obs.Counter
	queries     *obs.Counter
	scanRows    *obs.Counter
	compactions *obs.Counter

	// fail, when non-nil, is consulted at named crash points inside
	// ingest and compaction (in the shardnet.Faults spirit: a scripted
	// fault schedule, injected by tests, that never exists in
	// production). Returning an error aborts the operation exactly
	// there, leaving the disk as a kill at that instant would.
	fail func(point string) error
}

// Open opens (creating if necessary) the corpus directory. m may be
// nil. Open validates the manifest, sweeps stale temp files and
// unreferenced segments older than an hour, and reports — rather than
// repairs — a corrupt or version-skewed manifest: a phase database is
// authoritative state, not a cache that may be silently dropped.
func Open(dir string, m *obs.Metrics) (*Corpus, error) {
	if dir == "" {
		return nil, fmt.Errorf("corpus: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	c := &Corpus{
		dir:         dir,
		m:           m,
		ingested:    m.Counter("corpus.ingested"),
		skipped:     m.Counter("corpus.ingest_skipped"),
		segments:    m.Counter("corpus.segments"),
		queries:     m.Counter("corpus.queries"),
		scanRows:    m.Counter("corpus.scan_rows"),
		compactions: m.Counter("corpus.compactions"),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reloadLocked(); err != nil {
		return nil, err
	}
	c.sweepLocked()
	return c, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// reloadLocked (re)reads the manifest from disk, dropping the cached
// index when the on-disk state moved past the in-memory one. A missing
// manifest is an empty corpus.
func (c *Corpus) reloadLocked() error {
	buf, err := os.ReadFile(filepath.Join(c.dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		if c.man == nil {
			c.man = &manifest{}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	man, err := decodeManifest(buf)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", manifestName, err)
	}
	if c.man == nil || c.man.nextFile != man.nextFile || c.man.nextSeq != man.nextSeq {
		c.idx = nil
	}
	c.man = man
	c.segments.Add(int64(len(man.segments) - c.segN))
	c.segN = len(man.segments)
	return nil
}

// sweepLocked removes leftovers no live manifest references: temp files
// from interrupted writes and segments whose manifest swap never
// happened (or that a compaction replaced but could not unlink). The
// age gate keeps it from racing a writer that is mid-swap.
func (c *Corpus) sweepLocked() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(c.man.segments))
	for _, s := range c.man.segments {
		live[s] = true
	}
	cutoff := time.Now().Add(-sweepAge)
	for _, e := range entries {
		name := e.Name()
		stray := sweepCandidate(name) && !live[name]
		if !stray {
			continue
		}
		if info, err := e.Info(); err != nil || info.ModTime().After(cutoff) {
			continue
		}
		os.Remove(filepath.Join(c.dir, name))
	}
}

// sweepCandidate reports whether name is a corpus-owned transient: a
// temp file or a segment. Only these are sweep candidates — foreign
// files in the directory are never touched.
func sweepCandidate(name string) bool {
	return validSegmentName(name) || (len(name) > 5 && name[:5] == ".tmp-")
}

// writeFileAtomic writes data as name via a temp file and rename, the
// only mutation primitive the store uses: a reader never observes a
// partial file, and a crash leaves only a swept-later temp.
func (c *Corpus) writeFileAtomic(name string, data []byte) error {
	f, err := os.CreateTemp(c.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// failAt consults the injected fault schedule.
func (c *Corpus) failAt(point string) error {
	if c.fail == nil {
		return nil
	}
	return c.fail(point)
}

// ledgerHas binary-searches the sorted dataset-hash ledger.
func ledgerHas(ledger []uint64, h uint64) bool {
	i := sort.Search(len(ledger), func(i int) bool { return ledger[i] >= h })
	return i < len(ledger) && ledger[i] == h
}

// ledgerInsert returns a new sorted ledger including h.
func ledgerInsert(ledger []uint64, h uint64) []uint64 {
	i := sort.Search(len(ledger), func(i int) bool { return ledger[i] >= h })
	out := make([]uint64, 0, len(ledger)+1)
	out = append(out, ledger[:i]...)
	out = append(out, h)
	return append(out, ledger[i:]...)
}

// IngestBatch appends one run's records as a new segment and swaps the
// manifest. A batch whose dataset hash is already in the ledger is
// skipped whole — re-running an identical characterization never
// duplicates corpus rows, however many times it is ingested.
func (c *Corpus) IngestBatch(b Batch) (IngestInfo, error) {
	if b.Dataset == 0 {
		return IngestInfo{}, fmt.Errorf("corpus: batch has no dataset hash")
	}
	if len(b.Entries) == 0 {
		return IngestInfo{}, fmt.Errorf("corpus: empty batch")
	}
	dim := len(b.Entries[0].Vector)
	if dim == 0 {
		return IngestInfo{}, fmt.Errorf("corpus: zero-dimensional vectors")
	}
	for i := range b.Entries {
		if len(b.Entries[i].Vector) != dim {
			return IngestInfo{}, fmt.Errorf("corpus: entry %d has dim %d, batch has %d", i, len(b.Entries[i].Vector), dim)
		}
		if b.Entries[i].Kind > KindCentroid {
			return IngestInfo{}, fmt.Errorf("corpus: entry %d has unknown kind %d", i, b.Entries[i].Kind)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-read the manifest first: another process may have advanced the
	// corpus since we loaded it, and appending from a stale root would
	// reuse sequence numbers.
	if err := c.reloadLocked(); err != nil {
		return IngestInfo{}, err
	}
	if c.man.dim != 0 && int(c.man.dim) != dim {
		return IngestInfo{}, fmt.Errorf("corpus: batch has %d-dimensional vectors, corpus holds %d", dim, c.man.dim)
	}
	if ledgerHas(c.man.ledger, b.Dataset) {
		c.skipped.Inc()
		return IngestInfo{Skipped: true, Dataset: b.Dataset}, nil
	}

	seg := buildSegment(b, c.man.nextSeq)
	name := newSegmentName(c.man.nextFile)
	if err := c.writeFileAtomic(name, encodeSegment(seg)); err != nil {
		return IngestInfo{}, err
	}
	// Crash point: the segment exists but no manifest references it.
	// Reopening sees the pre-ingest corpus; the orphan is swept later.
	if err := c.failAt("ingest.segment-written"); err != nil {
		return IngestInfo{}, err
	}
	man := &manifest{
		nextSeq:  c.man.nextSeq + uint64(len(b.Entries)),
		nextFile: c.man.nextFile + 1,
		dim:      uint32(dim),
		segments: append(append([]string{}, c.man.segments...), name),
		ledger:   ledgerInsert(c.man.ledger, b.Dataset),
	}
	if err := c.writeFileAtomic(manifestName, encodeManifest(man)); err != nil {
		return IngestInfo{}, err
	}
	c.man, c.idx = man, nil
	c.ingested.Add(int64(len(b.Entries)))
	c.segments.Add(int64(len(man.segments) - c.segN))
	c.segN = len(man.segments)

	info := IngestInfo{Records: len(b.Entries), Segment: name, Dataset: b.Dataset}
	for i := range b.Entries {
		if b.Entries[i].Kind == KindCentroid {
			info.Centroids++
		} else {
			info.Intervals++
		}
	}
	return info, nil
}

// buildSegment assembles b into a segment whose records start at
// sequence number baseSeq, deduplicating the bench and ingest tables.
func buildSegment(b Batch, baseSeq uint64) *segment {
	seg := &segment{
		ingests: []ingestEntry{{dataset: b.Dataset, params: b.Params, seed: b.Seed}},
		recs:    make([]record, len(b.Entries)),
		vecs:    stats.NewMatrix(len(b.Entries), len(b.Entries[0].Vector)),
	}
	benchRef := make(map[benchEntry]uint32)
	for i := range b.Entries {
		e := &b.Entries[i]
		key := benchEntry{id: e.Bench, suite: e.Suite}
		ref, ok := benchRef[key]
		if !ok {
			ref = uint32(len(seg.benches))
			seg.benches = append(seg.benches, key)
			benchRef[key] = ref
		}
		seg.recs[i] = record{
			benchRef: ref, ingestRef: 0,
			kind: e.Kind, index: uint32(e.Index), seq: baseSeq + uint64(i),
		}
		copy(seg.vecs.Row(i), e.Vector)
	}
	return seg
}

// loadSegmentsLocked reads and decodes every live segment.
func (c *Corpus) loadSegmentsLocked() ([]*segment, error) {
	segs := make([]*segment, 0, len(c.man.segments))
	for _, name := range c.man.segments {
		buf, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		s, err := decodeSegment(buf)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		segs = append(segs, s)
	}
	return segs, nil
}

// Compact merges the live segments into one and swaps the manifest.
// The record set, its sequence numbers and the ledger are unchanged —
// every query answers byte-identically before and after — only the file
// layout collapses. The replaced segments are unlinked afterwards; if
// that is interrupted they are unreferenced and swept by a later Open.
func (c *Corpus) Compact() (CompactInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reloadLocked(); err != nil {
		return CompactInfo{}, err
	}
	records := 0
	segs, err := c.loadSegmentsLocked()
	if err != nil {
		return CompactInfo{}, err
	}
	for _, s := range segs {
		records += len(s.recs)
	}
	info := CompactInfo{Before: len(c.man.segments), After: len(c.man.segments), Records: records}
	if len(c.man.segments) <= 1 {
		return info, nil
	}

	merged := mergeSegments(segs)
	name := newSegmentName(c.man.nextFile)
	if err := c.writeFileAtomic(name, encodeSegment(merged)); err != nil {
		return CompactInfo{}, err
	}
	// Crash point: old and new segments coexist; the manifest still
	// names the old set, so nothing is lost and the new file is swept.
	if err := c.failAt("compact.segment-written"); err != nil {
		return CompactInfo{}, err
	}
	man := &manifest{
		nextSeq:  c.man.nextSeq,
		nextFile: c.man.nextFile + 1,
		dim:      c.man.dim,
		segments: []string{name},
		ledger:   c.man.ledger,
	}
	if err := c.writeFileAtomic(manifestName, encodeManifest(man)); err != nil {
		return CompactInfo{}, err
	}
	old := c.man.segments
	c.man, c.idx = man, nil
	c.compactions.Inc()
	c.segments.Add(int64(len(man.segments) - c.segN))
	c.segN = len(man.segments)
	// Crash point: the swap is durable; only the unlink of the replaced
	// segments remains, and the sweep covers an interruption here.
	if err := c.failAt("compact.manifest-swapped"); err != nil {
		info.After = 1
		return info, err
	}
	for _, s := range old {
		os.Remove(filepath.Join(c.dir, s))
	}
	info.After = 1
	return info, nil
}

// mergeSegments concatenates segments into one, rebuilding the shared
// tables and keeping records in global sequence order. Live segments
// hold disjoint ascending sequence ranges in manifest order, so the
// stable sort is a formality that also defends against a manifest
// listing segments out of ingest order.
func mergeSegments(segs []*segment) *segment {
	total, dim := 0, 0
	for _, s := range segs {
		total += len(s.recs)
		if s.vecs.Cols > dim {
			dim = s.vecs.Cols
		}
	}
	type row struct {
		rec record
		vec []float64
	}
	rows := make([]row, 0, total)
	out := &segment{vecs: stats.NewMatrix(total, dim)}
	ingestRef := make(map[ingestEntry]uint32)
	benchRef := make(map[benchEntry]uint32)
	for _, s := range segs {
		for i := range s.recs {
			r := s.recs[i]
			ing := s.ingests[r.ingestRef]
			iRef, ok := ingestRef[ing]
			if !ok {
				iRef = uint32(len(out.ingests))
				out.ingests = append(out.ingests, ing)
				ingestRef[ing] = iRef
			}
			b := s.benches[r.benchRef]
			bRef, ok := benchRef[b]
			if !ok {
				bRef = uint32(len(out.benches))
				out.benches = append(out.benches, b)
				benchRef[b] = bRef
			}
			r.ingestRef, r.benchRef = iRef, bRef
			rows = append(rows, row{rec: r, vec: s.vecs.Row(i)})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].rec.seq < rows[j].rec.seq })
	out.recs = make([]record, total)
	for i := range rows {
		out.recs[i] = rows[i].rec
		copy(out.vecs.Row(i), rows[i].vec)
	}
	return out
}

// Stats summarizes the corpus as of the manifest on disk.
func (c *Corpus) Stats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reloadLocked(); err != nil {
		return Stats{}, err
	}
	ix, err := c.indexLocked()
	if err != nil {
		return Stats{}, err
	}
	return c.statsLocked(ix), nil
}
