package corpus

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// testVec derives a deterministic dim-dimensional vector from a scalar
// key, spread out enough that distinct keys are far apart.
func testVec(key float64, dim int) []float64 {
	v := make([]float64, dim)
	for j := range v {
		v[j] = key + float64(j)*0.25 + key*float64(j%3)
	}
	return v
}

// makeBatch builds one suite's batch: perBench intervals for each of n
// benchmarks, plus one centroid, all at distinct keyed positions.
func makeBatch(dataset uint64, suite string, n, perBench, dim int, shift float64) Batch {
	b := Batch{Dataset: dataset, Params: dataset * 31, Seed: 1}
	for bi := 0; bi < n; bi++ {
		id := fmt.Sprintf("%s/b%d", suite, bi)
		for i := 0; i < perBench; i++ {
			b.Entries = append(b.Entries, Entry{
				Bench: id, Suite: suite, Kind: KindInterval, Index: i,
				Vector: testVec(shift+float64(bi)*10+float64(i), dim),
			})
		}
	}
	b.Entries = append(b.Entries, Entry{
		Kind: KindCentroid, Index: 0, Vector: testVec(shift+1000, dim),
	})
	return b
}

// queryBytes renders one query answer the way the CLI and service do.
func queryBytes(t *testing.T, c *Corpus, req QueryRequest) []byte {
	t.Helper()
	resp, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestReopenStats(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.IngestBatch(makeBatch(0xA, "SuiteA", 2, 3, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped || info.Records != 7 || info.Intervals != 6 || info.Centroids != 1 {
		t.Fatalf("ingest info = %+v", info)
	}

	// A fresh handle sees the same corpus.
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Records: 7, Intervals: 6, Centroids: 1, Benches: 2,
		Suites: 1, Segments: 1, Ingests: 1, Dim: 4, NextSeq: 7}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

// TestIngestIdempotent: the dataset-hash ledger makes re-ingesting the
// same run a no-op — via the same handle or a fresh one.
func TestIngestIdempotent(t *testing.T) {
	dir := t.TempDir()
	m := obs.New()
	c, err := Open(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	b := makeBatch(0xA, "SuiteA", 2, 3, 4, 0)
	if _, err := c.IngestBatch(b); err != nil {
		t.Fatal(err)
	}
	before := queryBytes(t, c, QueryRequest{Op: "stats"})

	info, err := c.IngestBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Skipped || info.Records != 0 {
		t.Fatalf("re-ingest info = %+v, want skipped", info)
	}
	c2, err := Open(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c2.IngestBatch(b); err != nil || !info.Skipped {
		t.Fatalf("re-ingest via fresh handle: info = %+v, err = %v", info, err)
	}
	if after := queryBytes(t, c, QueryRequest{Op: "stats"}); !bytes.Equal(before, after) {
		t.Fatalf("stats changed across a skipped ingest:\n%s\nvs\n%s", before, after)
	}
	if got := m.Counter("corpus.ingest_skipped").Value(); got != 2 {
		t.Fatalf("corpus.ingest_skipped = %d, want 2", got)
	}
}

func TestIngestValidation(t *testing.T) {
	c, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Batch{
		"no dataset hash": {Entries: []Entry{{Vector: []float64{1}}}},
		"empty batch":     {Dataset: 1},
		"zero dim":        {Dataset: 1, Entries: []Entry{{Kind: KindInterval}}},
		"ragged dims": {Dataset: 1, Entries: []Entry{
			{Vector: []float64{1, 2}}, {Vector: []float64{1}},
		}},
		"unknown kind": {Dataset: 1, Entries: []Entry{{Kind: 9, Vector: []float64{1}}}},
	}
	for name, b := range cases {
		if _, err := c.IngestBatch(b); err == nil {
			t.Fatalf("%s ingested cleanly", name)
		}
	}

	// Dimensionality is pinned by the first accepted batch.
	if _, err := c.IngestBatch(makeBatch(0xA, "S", 1, 1, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xB, "S", 1, 1, 5, 0)); err == nil {
		t.Fatal("dim-5 batch entered a dim-4 corpus")
	}
}

// TestCompactPreservesAnswers is the tentpole invariant at store level:
// every query answers byte-identically before and after compaction, and
// the replaced segments are gone.
func TestCompactPreservesAnswers(t *testing.T) {
	dir := t.TempDir()
	m := obs.New()
	c, err := Open(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range []Batch{
		makeBatch(0xA, "SuiteA", 2, 4, 5, 0),
		makeBatch(0xB, "SuiteB", 3, 2, 5, 100),
		makeBatch(0xC, "SuiteC", 1, 5, 5, 200),
	} {
		if _, err := c.IngestBatch(b); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	queries := []QueryRequest{
		{Op: "stats"},
		{Op: "nearest", Ref: "SuiteA/b0#1", K: 4},
		{Op: "nearest", Vector: testVec(105, 5), K: 3},
		{Op: "uniqueness", Bench: "SuiteB/b1"},
		{Op: "novelty", Suite: "SuiteC", Radius: 2},
	}
	before := make([][]byte, len(queries))
	for i, q := range queries {
		before[i] = queryBytes(t, c, q)
	}

	info, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if info.Before != 3 || info.After != 1 || info.Records != 3*1+2*4+3*2+1*5 {
		t.Fatalf("compact info = %+v", info)
	}
	// Stats reports the collapsed layout, so compare it against the
	// expected segment-count change; everything else must be identical.
	for i, q := range queries {
		after := queryBytes(t, c, q)
		if q.Op == "stats" {
			continue
		}
		if !bytes.Equal(before[i], after) {
			t.Fatalf("query %+v changed across compaction:\n%s\nvs\n%s", q, before[i], after)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 1 || st.Ingests != 3 || st.Records != 22 || st.NextSeq != 22 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	if got := m.Counter("corpus.compactions").Value(); got != 1 {
		t.Fatalf("corpus.compactions = %d, want 1", got)
	}

	// A fresh handle answers identically too, and the directory holds
	// exactly the manifest and the one compacted segment.
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[1:] {
		if got := queryBytes(t, c2, q); !bytes.Equal(before[i+1], got) {
			t.Fatalf("fresh handle answers %+v differently", q)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("post-compact directory = %v, want MANIFEST + 1 segment", names)
	}

	// Compacting a single segment is a no-op.
	if info, err := c.Compact(); err != nil || info.Before != 1 || info.After != 1 {
		t.Fatalf("second compact: info = %+v, err = %v", info, err)
	}

	// Ingest after compaction keeps minting fresh segment names (the
	// persisted nextFile counter prevents collisions with swept files).
	if _, err := c.IngestBatch(makeBatch(0xD, "SuiteD", 1, 2, 5, 300)); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 2 || st.Records != 25 {
		t.Fatalf("post-compact ingest stats = %+v", st)
	}
}

// TestSweep: Open removes old unreferenced segments and temp files, and
// leaves live segments, young strays and foreign files alone.
func TestSweep(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "S", 1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}

	old := time.Now().Add(-2 * sweepAge)
	backdated := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("stray"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldSeg := backdated(newSegmentName(99))
	oldTmp := backdated(".tmp-MANIFEST-123")
	youngSeg := filepath.Join(dir, newSegmentName(98))
	if err := os.WriteFile(youngSeg, []byte("young"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := backdated("NOTES.txt")

	if _, err := Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{oldSeg, oldTmp} {
		if _, err := os.Stat(p); err == nil {
			t.Fatalf("%s survived the sweep", filepath.Base(p))
		}
	}
	for _, p := range []string{youngSeg, foreign, filepath.Join(dir, newSegmentName(0)), filepath.Join(dir, manifestName)} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sweep removed %s: %v", filepath.Base(p), err)
		}
	}
}

// TestOpenReportsCorruptManifest: a damaged root is an error, not a
// silently emptied database.
func TestOpenReportsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "S", 1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, manifestName)
	buf, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 1
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("corrupt manifest opened cleanly")
	}
}

func TestCounters(t *testing.T) {
	m := obs.New()
	c, err := Open(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "S", 2, 3, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xB, "S", 1, 1, 4, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(QueryRequest{Op: "nearest", Vector: testVec(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("corpus.ingested").Value(); got != 9 {
		t.Fatalf("corpus.ingested = %d, want 9", got)
	}
	if got := m.Counter("corpus.segments").Value(); got != 2 {
		t.Fatalf("corpus.segments = %d, want 2", got)
	}
	if got := m.Counter("corpus.queries").Value(); got != 1 {
		t.Fatalf("corpus.queries = %d, want 1", got)
	}
	if got := m.Counter("corpus.scan_rows").Value(); got != 9 {
		t.Fatalf("corpus.scan_rows = %d, want 9", got)
	}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("corpus.segments").Value(); got != 1 {
		t.Fatalf("corpus.segments after compact = %d, want 1", got)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", nil); err == nil {
		t.Fatal("empty directory opened cleanly")
	}
}
