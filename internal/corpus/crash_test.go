package corpus

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Crash-safety tests: a scripted fault (the shardnet.Faults idiom —
// injected via the unexported fail hook, never present in production)
// aborts ingest or compaction at each of its crash points, exactly as a
// kill there would. Reopening must observe a complete, consistent
// corpus with nothing lost, and the sweep must clear the strays.

// crashAt arms c to fail once at the named point.
func crashAt(c *Corpus, point string) {
	c.fail = func(p string) error {
		if p == point {
			c.fail = nil
			return fmt.Errorf("injected crash at %s", point)
		}
		return nil
	}
}

// backdateStrays ages every file in dir past the sweep gate so the next
// Open treats interrupted-write leftovers as sweepable.
func backdateStrays(t *testing.T, dir string) {
	t.Helper()
	old := time.Now().Add(-2 * sweepAge)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Chtimes(filepath.Join(dir, e.Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}
}

// segmentFiles lists the segment files present on disk.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if validSegmentName(e.Name()) {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// TestCrashDuringIngest: a kill after the segment write but before the
// manifest swap loses the ingest (the caller sees the error) but
// nothing else: the corpus reopens at its pre-ingest state, the ledger
// does not claim the batch, re-ingest succeeds, and the orphan segment
// is swept.
func TestCrashDuringIngest(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "SuiteA", 2, 3, 4, 0)); err != nil {
		t.Fatal(err)
	}
	before := queryBytes(t, c, QueryRequest{Op: "stats"})

	crashAt(c, "ingest.segment-written")
	b := makeBatch(0xB, "SuiteB", 1, 2, 4, 50)
	if _, err := c.IngestBatch(b); err == nil {
		t.Fatal("ingest survived the injected crash")
	}
	if got := len(segmentFiles(t, dir)); got != 2 {
		t.Fatalf("%d segment files after crash, want 2 (1 live + 1 orphan)", got)
	}

	// Reopen: pre-ingest corpus, orphan swept once it ages out.
	backdateStrays(t, dir)
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := queryBytes(t, c2, QueryRequest{Op: "stats"}); !bytes.Equal(before, got) {
		t.Fatalf("reopened corpus differs from pre-crash state:\n%s\nvs\n%s", before, got)
	}
	if got := len(segmentFiles(t, dir)); got != 1 {
		t.Fatalf("%d segment files after sweep, want 1", got)
	}

	// The interrupted batch was never ledgered: re-ingest is real.
	info, err := c2.IngestBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped || info.Records != 3 {
		t.Fatalf("post-crash re-ingest info = %+v, want a real append", info)
	}
	if st, err := c2.Stats(); err != nil || st.Records != 10 || st.Ingests != 2 {
		t.Fatalf("final stats = %+v, err = %v", st, err)
	}
}

// TestCrashDuringCompactBeforeSwap: a kill after the merged segment is
// written but before the manifest swap changes nothing: the old
// segments stay live, every query answers identically, and the merged
// orphan is swept.
func TestCrashDuringCompactBeforeSwap(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "SuiteA", 2, 3, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xB, "SuiteB", 1, 2, 4, 50)); err != nil {
		t.Fatal(err)
	}
	queries := []QueryRequest{
		{Op: "stats"},
		{Op: "nearest", Ref: "SuiteA/b1#0", K: 3},
		{Op: "uniqueness", Bench: "SuiteB/b0"},
	}
	before := make([][]byte, len(queries))
	for i, q := range queries {
		before[i] = queryBytes(t, c, q)
	}

	crashAt(c, "compact.segment-written")
	if _, err := c.Compact(); err == nil {
		t.Fatal("compaction survived the injected crash")
	}
	if got := len(segmentFiles(t, dir)); got != 3 {
		t.Fatalf("%d segment files after crash, want 3 (2 live + merged orphan)", got)
	}

	backdateStrays(t, dir)
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if got := queryBytes(t, c2, q); !bytes.Equal(before[i], got) {
			t.Fatalf("query %+v changed across the crash:\n%s\nvs\n%s", q, before[i], got)
		}
	}
	if got := len(segmentFiles(t, dir)); got != 2 {
		t.Fatalf("%d segment files after sweep, want the 2 live ones", got)
	}
	// And a retried compaction completes.
	if info, err := c2.Compact(); err != nil || info.After != 1 {
		t.Fatalf("retried compact: info = %+v, err = %v", info, err)
	}
}

// TestCrashDuringCompactAfterSwap: a kill after the manifest swap but
// before the old segments are unlinked leaves the compaction durable —
// queries answer from the merged segment, identically — and the
// replaced segments are unreferenced strays for the sweep.
func TestCrashDuringCompactAfterSwap(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "SuiteA", 2, 3, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xB, "SuiteB", 1, 2, 4, 50)); err != nil {
		t.Fatal(err)
	}
	queries := []QueryRequest{
		{Op: "nearest", Ref: "SuiteA/b1#0", K: 3},
		{Op: "uniqueness", Bench: "SuiteB/b0"},
		{Op: "novelty", Suite: "SuiteA", Radius: 2},
	}
	before := make([][]byte, len(queries))
	for i, q := range queries {
		before[i] = queryBytes(t, c, q)
	}

	crashAt(c, "compact.manifest-swapped")
	if _, err := c.Compact(); err == nil {
		t.Fatal("compaction reported success across the injected crash")
	}
	if got := len(segmentFiles(t, dir)); got != 3 {
		t.Fatalf("%d segment files after crash, want 3 (merged + 2 replaced)", got)
	}

	backdateStrays(t, dir)
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 1 || st.Records != 10 || st.Ingests != 2 {
		t.Fatalf("post-swap-crash stats = %+v, want the compacted corpus", st)
	}
	for i, q := range queries {
		if got := queryBytes(t, c2, q); !bytes.Equal(before[i], got) {
			t.Fatalf("query %+v changed across the crash:\n%s\nvs\n%s", q, before[i], got)
		}
	}
	if got := len(segmentFiles(t, dir)); got != 1 {
		t.Fatalf("%d segment files after sweep, want only the merged one", got)
	}
}

// TestCrashedWriterDoesNotBlockOthers: after any crash, a completely
// fresh handle (no fault hook) ingests and compacts normally — the
// store carries no cross-process lock state to leak.
func TestCrashedWriterDoesNotBlockOthers(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestBatch(makeBatch(0xA, "S", 1, 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	crashAt(c, "ingest.segment-written")
	if _, err := c.IngestBatch(makeBatch(0xB, "S", 1, 2, 3, 10)); err == nil {
		t.Fatal("ingest survived the injected crash")
	}

	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.IngestBatch(makeBatch(0xC, "S", 1, 2, 3, 20)); err != nil {
		t.Fatalf("fresh handle cannot ingest after a crash elsewhere: %v", err)
	}
	if st, err := c2.Stats(); err != nil || st.Ingests != 2 {
		t.Fatalf("stats = %+v, err = %v", st, err)
	}
}
