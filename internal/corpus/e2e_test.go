package corpus

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// End-to-end corpus test: two sequential characterization runs — the
// standard seven-suite roster, then the emerging BigData suite loaded
// from models/bigdata.json — ingested into one corpus directory, then
// queried the way the CLI and the service do. This pins the paper-level
// property the corpus exists for (an emerging domain-specific suite
// shows more novel behaviour against the installed base than the
// suites already in it) and the engineering invariants (idempotent
// re-ingest, worker-count invariance, compaction transparency).

// e2eRuns executes both runs at the given worker count and ingests
// them into dir, returning the two results.
func e2eRuns(t *testing.T, dir string, workers int) (*core.Result, *core.Result) {
	t.Helper()
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.TestConfig()
	cfg.Seed = 1
	cfg.Workers = workers
	res1, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	mf, err := bench.ReadModelFiles("../../models/bigdata.json")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := reg.WithModels(mf)
	if err != nil {
		t.Fatal(err)
	}
	big, err := merged.FilterSuites("BigData")
	if err != nil {
		t.Fatal(err)
	}
	bigCfg := core.TestConfig()
	bigCfg.Seed = 1
	bigCfg.Workers = workers
	// Six benchmarks sample far fewer intervals than the full roster;
	// the cluster count must stay below the interval count.
	bigCfg.NumClusters = 12
	bigCfg.NumProminent = 6
	res2, err := core.Run(big, bigCfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*core.Result{res1, res2} {
		info, err := c.IngestResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if info.Skipped || info.Records == 0 {
			t.Fatalf("ingest info = %+v, want a real append", info)
		}
	}
	return res1, res2
}

// e2eQueries is the query set compared across worker counts and across
// compaction. The nearest probe uses an inline vector (the first
// sampled interval of the standard run — Result is worker-invariant,
// so the probe itself is too).
func e2eQueries(probe []float64) []QueryRequest {
	return []QueryRequest{
		{Op: "nearest", Vector: probe, K: 7},
		{Op: "uniqueness", Bench: "BigData/graphtraverse"},
		{Op: "uniqueness", Bench: "SPECint2000/gzip"},
		{Op: "novelty", Suite: "BigData"},
		{Op: "novelty", Suite: "SPECint2000"},
	}
}

func TestCorpusEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs")
	}
	dir := t.TempDir()
	res1, _ := e2eRuns(t, dir, 1)
	probe := res1.Dataset.Raw.Row(0)

	c, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingests != 2 || st.Segments != 2 || st.Suites != 8 {
		t.Fatalf("corpus stats after both runs = %+v, want 2 ingests / 2 segments / 8 suites", st)
	}

	// The emerging suite is more novel against the installed base than
	// the general-purpose suites already in it (the paper's emerging-
	// suite conclusion, as a corpus query).
	resp, err := c.Query(QueryRequest{Op: "novelty", Suite: "BigData"})
	if err != nil {
		t.Fatal(err)
	}
	bigNovelty := resp.Novelty.Novelty
	for _, suite := range []string{"SPECint2000", "SPECfp2000", "SPECint2006", "SPECfp2006"} {
		resp, err := c.Query(QueryRequest{Op: "novelty", Suite: suite})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Novelty.Novelty >= bigNovelty {
			t.Fatalf("suite %s novelty %.3f >= BigData's %.3f — emerging suite should be the more novel",
				suite, resp.Novelty.Novelty, bigNovelty)
		}
	}

	// Re-running and re-ingesting the first characterization is a no-op:
	// the ledger keys on the dataset hash, not on run identity.
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.TestConfig()
	cfg.Seed = 1
	rerun, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.IngestResult(rerun)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Skipped {
		t.Fatalf("re-ingest of run 1 info = %+v, want Skipped", info)
	}
	if st2, err := c.Stats(); err != nil || st2 != st {
		t.Fatalf("stats changed across a skipped ingest: %+v -> %+v (err %v)", st, st2, err)
	}

	// Worker-count invariance: a corpus built at Workers=4 answers every
	// query with byte-identical responses.
	dir4 := t.TempDir()
	e2eRuns(t, dir4, 4)
	c4, err := Open(dir4, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := e2eQueries(probe)
	before := make([][]byte, len(queries))
	for i, q := range queries {
		before[i] = queryBytes(t, c, q)
		if got := queryBytes(t, c4, q); !bytes.Equal(before[i], got) {
			t.Fatalf("query %+v differs between Workers=1 and Workers=4 corpora:\n%s\nvs\n%s", q, before[i], got)
		}
	}

	// Compaction transparency: merging the two segments into one changes
	// no answer.
	cinfo, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cinfo.Before != 2 || cinfo.After != 1 {
		t.Fatalf("compact info = %+v, want 2 segments -> 1", cinfo)
	}
	for i, q := range queries {
		if got := queryBytes(t, c, q); !bytes.Equal(before[i], got) {
			t.Fatalf("query %+v changed across compaction:\n%s\nvs\n%s", q, before[i], got)
		}
	}
}
