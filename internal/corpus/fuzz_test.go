package corpus

// Fuzz targets for the corpus codecs. Corpus files cross a trust
// boundary — a corpus directory may be shared between machines and
// users — so the decoders must error on arbitrary bytes, never panic or
// allocate unboundedly, and accepted payloads must re-encode and
// re-decode cleanly.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func corpusFuzzSeeds() map[string][][]byte {
	segBytes := encodeSegment(testSegment())
	manBytes := encodeManifest(&manifest{
		nextSeq: 104, nextFile: 2, dim: 3,
		segments: []string{newSegmentName(0), newSegmentName(1)},
		ledger:   []uint64{0x1111, 0x9999},
	})

	// Checksum-valid headers advertising 2^30 elements: the counts must
	// be rejected against the payload size, never allocated.
	segBomb := append([]byte(nil), segBytes[:len(segBytes)-8]...)
	binary.LittleEndian.PutUint32(segBomb[8:], 1<<30)
	segBomb = sealPayload(segBomb)
	manBomb := append([]byte(nil), manBytes[:len(manBytes)-8]...)
	binary.LittleEndian.PutUint32(manBomb[28:], 1<<30) // the segment-name count
	manBomb = sealPayload(manBomb)

	return map[string][][]byte{
		"FuzzCorpusSegment":  {segBytes, segBytes[:12], segBomb, {}},
		"FuzzCorpusManifest": {manBytes, manBytes[:9], manBomb, {}},
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. Run with WRITE_FUZZ_CORPUS=1 after changing a codec.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	for target, entries := range corpusFuzzSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range entries {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func FuzzCorpusSegment(f *testing.F) {
	for _, s := range corpusFuzzSeeds()["FuzzCorpusSegment"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSegment(data)
		if err != nil {
			return
		}
		out := encodeSegment(s)
		if _, err := decodeSegment(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}

func FuzzCorpusManifest(f *testing.F) {
	for _, s := range corpusFuzzSeeds()["FuzzCorpusManifest"] {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		out := encodeManifest(m)
		if _, err := decodeManifest(out); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
