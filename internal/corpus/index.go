package corpus

// The in-memory query index: every corpus record, in global sequence
// order, normalized per-column over the whole corpus and laid out as
// transposed blocks for kernel.DotCols — the same column-scan kernel
// (and the same determinism contract: serial per-column sums, ties to
// the lowest index) the k-means assignment runs on. The exact scan
// visits every row; the optional IVF layer (Probe > 0) partitions the
// rows under a deterministic coarse k-means quantizer and visits only
// the nearest partitions. Everything derived here is a pure function of
// the manifest's record set, so query answers are byte-identical across
// worker counts, before and after compaction, and via CLI or service.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// idxEntry is one indexed record with resolved provenance.
type idxEntry struct {
	bench   string
	suite   string
	kind    Kind
	index   int
	seq     uint64
	dataset uint64
	params  uint64
	seed    uint64
}

// scanBlock is a run of consecutive index rows in the transposed
// column-major layout DotCols consumes, with precomputed squared norms.
const scanBlockRows = 256

type scanBlock struct {
	start, n int
	ct       []float64 // dim x n, column-major
	norms    []float64 // squared norms of the n normalized rows
}

// index is the queryable in-memory corpus image.
type index struct {
	dim     int
	entries []idxEntry
	norm    *stats.Matrix // normalized rows, entry order
	cs      stats.ColumnStats
	blocks  []scanBlock
	byBench map[string][]int // interval rows per benchmark ID
	bySuite map[string][]int // interval rows per suite
	ivf     *ivfIndex        // built on first probed query
}

// indexLocked returns the index for the current manifest, building it
// if the manifest changed since the last build. Caller holds c.mu.
func (c *Corpus) indexLocked() (*index, error) {
	if c.idx != nil {
		return c.idx, nil
	}
	segs, err := c.loadSegmentsLocked()
	if err != nil {
		return nil, err
	}
	ix, err := buildIndex(segs, int(c.man.dim))
	if err != nil {
		return nil, err
	}
	c.idx = ix
	return ix, nil
}

// buildIndex assembles the segments into one index. Rows land in
// global sequence order whatever the segment layout, which is what
// makes the scan's tie-break (lowest row index = oldest record) stable
// across compaction.
func buildIndex(segs []*segment, dim int) (*index, error) {
	total := 0
	for _, s := range segs {
		total += len(s.recs)
		if len(s.recs) > 0 && s.vecs.Cols != dim {
			return nil, fmt.Errorf("corpus: segment dim %d, manifest dim %d", s.vecs.Cols, dim)
		}
	}
	ix := &index{
		dim:     dim,
		entries: make([]idxEntry, 0, total),
		byBench: make(map[string][]int),
		bySuite: make(map[string][]int),
	}
	type row struct {
		e   idxEntry
		vec []float64
	}
	rows := make([]row, 0, total)
	for _, s := range segs {
		for i := range s.recs {
			r := s.recs[i]
			b, ing := s.benches[r.benchRef], s.ingests[r.ingestRef]
			rows = append(rows, row{
				e: idxEntry{
					bench: b.id, suite: b.suite, kind: r.kind, index: int(r.index),
					seq: r.seq, dataset: ing.dataset, params: ing.params, seed: ing.seed,
				},
				vec: s.vecs.Row(i),
			})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].e.seq < rows[j].e.seq })

	raw := stats.NewMatrix(total, dim)
	for i := range rows {
		ix.entries = append(ix.entries, rows[i].e)
		copy(raw.Row(i), rows[i].vec)
		if rows[i].e.kind == KindInterval {
			ix.byBench[rows[i].e.bench] = append(ix.byBench[rows[i].e.bench], i)
			ix.bySuite[rows[i].e.suite] = append(ix.bySuite[rows[i].e.suite], i)
		}
	}
	if total == 0 {
		ix.norm = raw
		return ix, nil
	}

	// Normalize per column over the whole corpus (zero-variance columns
	// collapse to zero, as in the pipeline's pre-PCA normalization), so
	// distances weight each characteristic by its corpus-wide spread
	// rather than its unit of measure.
	ix.norm, ix.cs = raw.Normalize()

	for start := 0; start < total; start += scanBlockRows {
		n := total - start
		if n > scanBlockRows {
			n = scanBlockRows
		}
		blk := scanBlock{
			start: start, n: n,
			ct:    make([]float64, dim*n),
			norms: make([]float64, n),
		}
		kernel.Transpose(ix.norm.Data[start*dim:(start+n)*dim], n, dim, blk.ct)
		kernel.RowSquaredNorms(ix.norm.Data[start*dim:(start+n)*dim], n, dim, blk.norms)
		ix.blocks = append(ix.blocks, blk)
	}
	return ix, nil
}

// normalize maps a raw vector into the index's normalized space.
func (ix *index) normalize(raw []float64) []float64 {
	q := make([]float64, ix.dim)
	for j := 0; j < ix.dim; j++ {
		if ix.cs.Std[j] > 0 {
			q[j] = (raw[j] - ix.cs.Mean[j]) / ix.cs.Std[j]
		}
	}
	return q
}

// Neighbor is one query answer row.
type Neighbor struct {
	// Bench/Suite identify the record's benchmark ("" for centroids).
	Bench string `json:"bench,omitempty"`
	Suite string `json:"suite,omitempty"`
	// Kind is "interval" or "centroid".
	Kind string `json:"kind"`
	// Index is the interval index or cluster number.
	Index int `json:"index"`
	// Seq is the record's global ingest sequence number.
	Seq uint64 `json:"seq"`
	// Dataset is the ingest's dataset hash (provenance).
	Dataset uint64 `json:"dataset"`
	// Distance is the Euclidean distance in the corpus-normalized
	// characteristic space.
	Distance float64 `json:"distance"`
}

// candidate is a scan hit ordered by (distance², row).
type candidate struct {
	d2  float64
	row int
}

// pushCandidate inserts c into the ascending top-k list. Rows are
// offered in ascending order, so equal distances resolve to the oldest
// record deterministically.
func pushCandidate(cand []candidate, k int, c candidate) []candidate {
	if len(cand) == k && c.d2 >= cand[k-1].d2 {
		return cand
	}
	i := sort.Search(len(cand), func(i int) bool {
		return cand[i].d2 > c.d2 || (cand[i].d2 == c.d2 && cand[i].row > c.row)
	})
	if len(cand) < k {
		cand = append(cand, candidate{})
	}
	copy(cand[i+1:], cand[i:])
	cand[i] = c
	return cand
}

// nearest returns the k nearest rows to the normalized query qn,
// skipping rows for which skip returns true. It reports how many rows
// it scanned. probe > 0 routes through the IVF layer.
func (ix *index) nearest(qn []float64, k, probe int, skip func(int) bool) ([]candidate, int) {
	if probe > 0 {
		if ivf := ix.ivfLayer(); ivf != nil {
			return ix.nearestIVF(ivf, qn, k, probe, skip)
		}
	}
	qq := kernel.SquaredNorm(qn)
	var cand []candidate
	scanned := 0
	dots := make([]float64, scanBlockRows)
	for _, blk := range ix.blocks {
		kernel.DotCols(qn, blk.ct, dots, blk.n)
		scanned += blk.n
		for i := 0; i < blk.n; i++ {
			row := blk.start + i
			if skip != nil && skip(row) {
				continue
			}
			d2 := qq + blk.norms[i] - 2*dots[i]
			if d2 < 0 {
				d2 = 0
			}
			cand = pushCandidate(cand, k, candidate{d2: d2, row: row})
		}
	}
	return cand, scanned
}

// hasNeighborWithin reports whether any non-skipped row lies within
// radius of index row r (in normalized space), with block-level early
// exit. It reports how many rows it scanned.
func (ix *index) hasNeighborWithin(r int, radius float64, skip func(int) bool) (bool, int) {
	qn := ix.norm.Row(r)
	qq := kernel.SquaredNorm(qn)
	r2 := radius * radius
	scanned := 0
	dots := make([]float64, scanBlockRows)
	for _, blk := range ix.blocks {
		kernel.DotCols(qn, blk.ct, dots, blk.n)
		scanned += blk.n
		for i := 0; i < blk.n; i++ {
			row := blk.start + i
			if skip != nil && skip(row) {
				continue
			}
			if qq+blk.norms[i]-2*dots[i] <= r2 {
				return true, scanned
			}
		}
	}
	return false, scanned
}

// UniquenessResult is one benchmark's corpus-uniqueness: the paper's
// "fraction of sampled execution in benchmark-specific clusters"
// recast against the whole corpus — the fraction of the benchmark's
// interval records with no foreign interval within the radius.
type UniquenessResult struct {
	Bench      string  `json:"bench"`
	Rows       int     `json:"rows"`
	Unique     int     `json:"unique"`
	Uniqueness float64 `json:"uniqueness"`
}

// NoveltyResult is one suite's corpus-novelty: the fraction of its
// interval records with no interval from any other suite within the
// radius, with the per-benchmark split.
type NoveltyResult struct {
	Suite   string             `json:"suite"`
	Rows    int                `json:"rows"`
	Novel   int                `json:"novel"`
	Novelty float64            `json:"novelty"`
	Benches []UniquenessResult `json:"benches,omitempty"`
}

// uniqueness computes the corpus-uniqueness of one benchmark.
func (ix *index) uniqueness(bench string, radius float64) (UniquenessResult, int, error) {
	rows := ix.byBench[bench]
	if len(rows) == 0 {
		return UniquenessResult{}, 0, fmt.Errorf("corpus: benchmark %q has no intervals in the corpus", bench)
	}
	res := UniquenessResult{Bench: bench, Rows: len(rows)}
	scanned := 0
	skip := func(i int) bool {
		return ix.entries[i].kind != KindInterval || ix.entries[i].bench == bench
	}
	for _, r := range rows {
		hit, n := ix.hasNeighborWithin(r, radius, skip)
		scanned += n
		if !hit {
			res.Unique++
		}
	}
	res.Uniqueness = float64(res.Unique) / float64(res.Rows)
	return res, scanned, nil
}

// novelty computes the corpus-novelty of one suite. The per-benchmark
// split uses the same other-suite exclusion, so a benchmark that only
// resembles its suite siblings still counts as novel here (and not in
// uniqueness) — exactly the suite-specific vs benchmark-specific
// distinction of the paper's cluster taxonomy.
func (ix *index) novelty(suite string, radius float64) (NoveltyResult, int, error) {
	rows := ix.bySuite[suite]
	if len(rows) == 0 {
		return NoveltyResult{}, 0, fmt.Errorf("corpus: suite %q has no intervals in the corpus", suite)
	}
	res := NoveltyResult{Suite: suite, Rows: len(rows)}
	scanned := 0
	skip := func(i int) bool {
		return ix.entries[i].kind != KindInterval || ix.entries[i].suite == suite
	}
	perBench := make(map[string]*UniquenessResult)
	var order []string
	for _, r := range rows {
		hit, n := ix.hasNeighborWithin(r, radius, skip)
		scanned += n
		id := ix.entries[r].bench
		ur := perBench[id]
		if ur == nil {
			ur = &UniquenessResult{Bench: id}
			perBench[id] = ur
			order = append(order, id)
		}
		ur.Rows++
		if !hit {
			res.Novel++
			ur.Unique++
		}
	}
	res.Novelty = float64(res.Novel) / float64(res.Rows)
	sort.Strings(order)
	for _, id := range order {
		ur := perBench[id]
		ur.Uniqueness = float64(ur.Unique) / float64(ur.Rows)
		res.Benches = append(res.Benches, *ur)
	}
	return res, scanned, nil
}

// --- IVF partition layer (sub-linear nearest-neighbor queries) ---

// ivfNlistCap bounds the coarse-quantizer size; sqrt(N) lists keep both
// the center scan and the probed lists around sqrt(N) rows.
const ivfNlistCap = 256

type ivfIndex struct {
	nlist    int
	centersT []float64 // dim x nlist, column-major
	norms    []float64 // squared norms of the centers
	lists    [][]int32 // member rows per list, ascending
}

// ivfLayer lazily builds the coarse partition. A corpus too small to
// profit (fewer than two rows per would-be list) stays exact-only.
func (ix *index) ivfLayer() *ivfIndex {
	if ix.ivf != nil {
		return ix.ivf
	}
	n := len(ix.entries)
	nlist := int(math.Sqrt(float64(n)))
	if nlist > ivfNlistCap {
		nlist = ivfNlistCap
	}
	if nlist < 1 || n < 2*nlist {
		return nil
	}
	// The coarse quantizer is a small deterministic k-means over the
	// normalized corpus — fixed seed, fixed options, worker-independent
	// by the cluster package's contract — so the partition (and with it
	// every probed answer) is a pure function of the record set.
	res, err := cluster.KMeans(ix.norm, nlist, cluster.Options{
		MaxIters: 25, Restarts: 1, Seed: 1,
	})
	if err != nil {
		return nil
	}
	ivf := &ivfIndex{
		nlist:    nlist,
		centersT: make([]float64, ix.dim*nlist),
		norms:    make([]float64, nlist),
		lists:    make([][]int32, nlist),
	}
	kernel.Transpose(res.Centers.Data, nlist, ix.dim, ivf.centersT)
	kernel.RowSquaredNorms(res.Centers.Data, nlist, ix.dim, ivf.norms)
	for row, a := range res.Assignments {
		ivf.lists[a] = append(ivf.lists[a], int32(row))
	}
	ix.ivf = ivf
	return ivf
}

// nearestIVF scans only the probe nearest partitions. Candidate rows
// are visited in ascending row order so ties resolve exactly as the
// exact scan does; with probe >= nlist the answer is identical to it.
func (ix *index) nearestIVF(ivf *ivfIndex, qn []float64, k, probe int, skip func(int) bool) ([]candidate, int) {
	if probe > ivf.nlist {
		probe = ivf.nlist
	}
	dots := make([]float64, ivf.nlist)
	kernel.DotCols(qn, ivf.centersT, dots, ivf.nlist)
	order := make([]candidate, ivf.nlist)
	for c := 0; c < ivf.nlist; c++ {
		order[c] = candidate{d2: ivf.norms[c] - 2*dots[c], row: c}
	}
	sort.Slice(order, func(i, j int) bool {
		return order[i].d2 < order[j].d2 || (order[i].d2 == order[j].d2 && order[i].row < order[j].row)
	})
	var rows []int32
	for _, o := range order[:probe] {
		rows = append(rows, ivf.lists[o.row]...)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })

	qq := kernel.SquaredNorm(qn)
	var cand []candidate
	for _, r := range rows {
		row := int(r)
		if skip != nil && skip(row) {
			continue
		}
		// Bit-identical to the exact scan's arithmetic: the same stored
		// block norm, and the dot in strictly ascending coordinate order
		// (DotCols' per-column sum order on both its paths).
		blk := &ix.blocks[row/scanBlockRows]
		rv := ix.norm.Row(row)
		dot := 0.0
		for j, q := range qn {
			dot += q * rv[j]
		}
		d2 := qq + blk.norms[row-blk.start] - 2*dot
		if d2 < 0 {
			d2 = 0
		}
		cand = pushCandidate(cand, k, candidate{d2: d2, row: row})
	}
	return cand, len(rows)
}
