package corpus

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"testing"
)

// openWith builds a corpus in a temp dir from the given batches.
func openWith(t *testing.T, batches ...Batch) *Corpus {
	t.Helper()
	c, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := c.IngestBatch(b); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	return c
}

// testIndex exposes the in-memory index of c.
func testIndex(t *testing.T, c *Corpus) *index {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reloadLocked(); err != nil {
		t.Fatal(err)
	}
	ix, err := c.indexLocked()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// naiveNearest is the obviously-correct reference: full scan with
// per-row squared distances, sorted by (d2, row).
func naiveNearest(ix *index, qn []float64, k int, skip func(int) bool) []candidate {
	var all []candidate
	for row := 0; row < len(ix.entries); row++ {
		if skip != nil && skip(row) {
			continue
		}
		rv := ix.norm.Row(row)
		d2 := 0.0
		for j, q := range qn {
			d := q - rv[j]
			d2 += d * d
		}
		all = append(all, candidate{d2: d2, row: row})
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].d2 < all[j].d2 || (all[i].d2 == all[j].d2 && all[i].row < all[j].row)
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// lcg is a tiny deterministic generator for test vectors.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

// randomBatch fills a batch with n interval rows of PRNG noise.
func randomBatch(dataset uint64, n, dim int, g *lcg) Batch {
	b := Batch{Dataset: dataset, Seed: 1}
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = g.next() * 10
		}
		b.Entries = append(b.Entries, Entry{
			Bench: fmt.Sprintf("S/b%d", i%7), Suite: "S",
			Kind: KindInterval, Index: i, Vector: v,
		})
	}
	return b
}

// TestNearestMatchesNaiveScan: the blocked kernel scan returns exactly
// the rows (and order) of the brute-force reference, across block
// boundaries and skip filters.
func TestNearestMatchesNaiveScan(t *testing.T) {
	g := lcg(7)
	// 600 rows spans 3 scan blocks of 256.
	c := openWith(t, randomBatch(0xA, 600, 9, &g))
	ix := testIndex(t, c)
	skips := map[string]func(int) bool{
		"none":    nil,
		"by-rows": func(i int) bool { return i%3 == 0 },
	}
	for name, skip := range skips {
		for q := 0; q < 5; q++ {
			qn := make([]float64, 9)
			for j := range qn {
				qn[j] = g.next()*4 - 2
			}
			for _, k := range []int{1, 5, 17} {
				got, scanned := ix.nearest(qn, k, 0, skip)
				if scanned != 600 {
					t.Fatalf("exact scan visited %d rows, want 600", scanned)
				}
				want := naiveNearest(ix, qn, k, skip)
				if len(got) != len(want) {
					t.Fatalf("skip=%s k=%d: %d hits, want %d", name, k, len(got), len(want))
				}
				for i := range want {
					if got[i].row != want[i].row {
						t.Fatalf("skip=%s k=%d hit %d: row %d, want %d", name, k, i, got[i].row, want[i].row)
					}
					if math.Abs(got[i].d2-want[i].d2) > 1e-9*(1+want[i].d2) {
						t.Fatalf("skip=%s k=%d hit %d: d2 %g, want %g", name, k, i, got[i].d2, want[i].d2)
					}
				}
			}
		}
	}
}

// TestNearestTieBreak: identical vectors resolve to the oldest record
// (lowest sequence number), deterministically.
func TestNearestTieBreak(t *testing.T) {
	b := Batch{Dataset: 0xA, Seed: 1}
	for i := 0; i < 6; i++ {
		b.Entries = append(b.Entries, Entry{
			Bench: "S/dup", Suite: "S", Kind: KindInterval, Index: i,
			Vector: []float64{1, 2, 3}, // all identical
		})
	}
	b.Entries = append(b.Entries, Entry{
		Bench: "S/far", Suite: "S", Kind: KindInterval, Index: 0,
		Vector: []float64{100, 200, 300},
	})
	c := openWith(t, b)
	ix := testIndex(t, c)
	got, _ := ix.nearest(ix.normalize([]float64{1, 2, 3}), 4, 0, nil)
	for i, cd := range got {
		if cd.row != i {
			t.Fatalf("tie hit %d is row %d, want %d (oldest-first)", i, cd.row, i)
		}
	}
}

// TestUniquenessGeometry: a benchmark alone in its region is fully
// unique; two overlapping benchmarks erase each other's uniqueness; a
// benchmark's own duplicate rows must not count as neighbors.
func TestUniquenessGeometry(t *testing.T) {
	b := Batch{Dataset: 0xA, Seed: 1}
	add := func(bench, suite string, idx int, v []float64) {
		b.Entries = append(b.Entries, Entry{Bench: bench, Suite: suite, Kind: KindInterval, Index: idx, Vector: v})
	}
	// "lonely" sits far away; "twinA"/"twinB" coincide; lonely's rows
	// also coincide with each other (self-similarity is not a neighbor).
	add("X/lonely", "X", 0, []float64{100, 100})
	add("X/lonely", "X", 1, []float64{100, 100})
	add("Y/twinA", "Y", 0, []float64{0, 0})
	add("Y/twinB", "Y", 0, []float64{0, 0})
	c := openWith(t, b)

	u, err := c.Query(QueryRequest{Op: "uniqueness", Bench: "X/lonely", Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if u.Uniqueness.Uniqueness != 1 || u.Uniqueness.Rows != 2 {
		t.Fatalf("lonely uniqueness = %+v, want 1.0 over 2 rows", u.Uniqueness)
	}
	for _, bench := range []string{"Y/twinA", "Y/twinB"} {
		u, err := c.Query(QueryRequest{Op: "uniqueness", Bench: bench, Radius: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if u.Uniqueness.Uniqueness != 0 {
			t.Fatalf("%s uniqueness = %+v, want 0 (its twin is within radius)", bench, u.Uniqueness)
		}
	}

	// Novelty excludes same-suite neighbors: the twins share suite Y, so
	// against the rest of the corpus both are novel.
	nv, err := c.Query(QueryRequest{Op: "novelty", Suite: "Y", Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if nv.Novelty.Novelty != 1 || nv.Novelty.Rows != 2 {
		t.Fatalf("suite Y novelty = %+v, want 1.0 over 2 rows", nv.Novelty)
	}
	if len(nv.Novelty.Benches) != 2 || nv.Novelty.Benches[0].Bench != "Y/twinA" {
		t.Fatalf("novelty breakdown = %+v, want both benches sorted", nv.Novelty.Benches)
	}

	// Centroids never count as uniqueness neighbors: add one exactly on
	// top of lonely and re-check.
	b2 := Batch{Dataset: 0xB, Seed: 1, Entries: []Entry{
		{Kind: KindCentroid, Index: 0, Vector: []float64{100, 100}},
	}}
	if _, err := c.IngestBatch(b2); err != nil {
		t.Fatal(err)
	}
	u, err = c.Query(QueryRequest{Op: "uniqueness", Bench: "X/lonely", Radius: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if u.Uniqueness.Uniqueness != 1 {
		t.Fatalf("a centroid neighbor broke uniqueness: %+v", u.Uniqueness)
	}
}

func TestQueryErrors(t *testing.T) {
	c := openWith(t, makeBatch(0xA, "S", 2, 2, 3, 0))
	for name, req := range map[string]QueryRequest{
		"unknown op":        {Op: "teleport"},
		"negative k":        {Op: "nearest", K: -1, Vector: []float64{1, 2, 3}},
		"huge k":            {Op: "nearest", K: maxK + 1, Vector: []float64{1, 2, 3}},
		"negative radius":   {Op: "uniqueness", Bench: "S/b0", Radius: -1},
		"negative probe":    {Op: "nearest", Probe: -2, Vector: []float64{1, 2, 3}},
		"ref and vector":    {Op: "nearest", Ref: "S/b0#0", Vector: []float64{1, 2, 3}},
		"neither ref nor v": {Op: "nearest"},
		"malformed ref":     {Op: "nearest", Ref: "S/b0"},
		"unknown ref":       {Op: "nearest", Ref: "S/b0#999"},
		"wrong dim":         {Op: "nearest", Vector: []float64{1}},
		"uniqueness no arg": {Op: "uniqueness"},
		"novelty no arg":    {Op: "novelty"},
		"unknown bench":     {Op: "uniqueness", Bench: "S/ghost"},
		"unknown suite":     {Op: "novelty", Suite: "Ghost"},
	} {
		if _, err := c.Query(req); err == nil {
			t.Fatalf("%s answered cleanly", name)
		}
	}

	empty, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Query(QueryRequest{Op: "stats"}); err != nil {
		t.Fatalf("stats on an empty corpus: %v", err)
	}
	if _, err := empty.Query(QueryRequest{Op: "nearest", Vector: []float64{1}}); err == nil {
		t.Fatal("nearest on an empty corpus answered cleanly")
	}
}

// TestNearestRefExcludesOwnBenchmark: a ref query never returns the
// query benchmark's own records.
func TestNearestRefExcludesOwnBenchmark(t *testing.T) {
	c := openWith(t, makeBatch(0xA, "S", 3, 4, 5, 0))
	resp, err := c.Query(QueryRequest{Op: "nearest", Ref: "S/b0#0", K: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range resp.Neighbors {
		if n.Bench == "S/b0" {
			t.Fatalf("neighbor %+v is the query's own benchmark", n)
		}
	}
	if len(resp.Neighbors) == 0 {
		t.Fatal("no neighbors at all")
	}
}

// TestIVFProbeFullIsExact: probing every partition must reproduce the
// exact scan bit for bit — same rows, same distances, same JSON.
func TestIVFProbeFullIsExact(t *testing.T) {
	g := lcg(3)
	c := openWith(t, randomBatch(0xA, 700, 8, &g))
	ix := testIndex(t, c)
	ivf := ix.ivfLayer()
	if ivf == nil {
		t.Fatal("700-row corpus built no IVF layer")
	}
	for q := 0; q < 8; q++ {
		vec := make([]float64, 8)
		for j := range vec {
			vec[j] = g.next() * 10
		}
		probed, err := c.Query(QueryRequest{Op: "nearest", Vector: vec, K: 10, Probe: ivf.nlist})
		if err != nil {
			t.Fatal(err)
		}
		// The echoed probe and scanned-row figures legitimately differ;
		// the answer rows must not.
		exactResp, err := c.Query(QueryRequest{Op: "nearest", Vector: vec, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(probed.Neighbors) != len(exactResp.Neighbors) {
			t.Fatalf("query %d: %d probed vs %d exact neighbors", q, len(probed.Neighbors), len(exactResp.Neighbors))
		}
		for i := range probed.Neighbors {
			if probed.Neighbors[i] != exactResp.Neighbors[i] {
				t.Fatalf("query %d neighbor %d: probed %+v != exact %+v",
					q, i, probed.Neighbors[i], exactResp.Neighbors[i])
			}
		}
	}
}

// TestIVFPartialProbeScansLess: a small probe visits a strict subset of
// the rows and still finds its neighbors in the probed lists.
func TestIVFPartialProbeScansLess(t *testing.T) {
	g := lcg(11)
	c := openWith(t, randomBatch(0xA, 700, 8, &g))
	vec := make([]float64, 8)
	for j := range vec {
		vec[j] = g.next() * 10
	}
	probed, err := c.Query(QueryRequest{Op: "nearest", Vector: vec, K: 5, Probe: 2})
	if err != nil {
		t.Fatal(err)
	}
	if probed.Scanned >= 700 {
		t.Fatalf("probe=2 scanned %d of 700 rows", probed.Scanned)
	}
	if len(probed.Neighbors) != 5 {
		t.Fatalf("probe=2 returned %d neighbors, want 5", len(probed.Neighbors))
	}
	// Determinism: the same probed query answers byte-identically.
	a := queryBytes(t, c, QueryRequest{Op: "nearest", Vector: vec, K: 5, Probe: 2})
	b := queryBytes(t, c, QueryRequest{Op: "nearest", Vector: vec, K: 5, Probe: 2})
	if !bytes.Equal(a, b) {
		t.Fatal("probed query is not deterministic")
	}
}

// TestIVFSmallCorpusFallsBack: a corpus too small for partitioning
// answers probed queries through the exact scan.
func TestIVFSmallCorpusFallsBack(t *testing.T) {
	c := openWith(t, makeBatch(0xA, "S", 2, 3, 4, 0))
	resp, err := c.Query(QueryRequest{Op: "nearest", Vector: testVec(1, 4), K: 3, Probe: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scanned != 7 {
		t.Fatalf("small-corpus probed query scanned %d, want the full 7", resp.Scanned)
	}
}
