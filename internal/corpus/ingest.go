package corpus

// The pipeline adapter: turning a completed core.Result into a Batch.
// The ledger key is core.DatasetHash — the exact fingerprint the
// artifact cache keys stage results on, covering the registry content
// and every input-shaping knob while excluding worker counts and cache
// placement — so "the same characterization" means the same thing to
// the corpus as it does to the resume path, and re-ingesting any
// equivalent re-run is a no-op.

import (
	"fmt"

	"repro/internal/core"
)

// FromResult assembles a completed run into an ingestable batch: every
// distinct sampled interval once (first appearance order — sampling is
// with replacement, and duplicate draws carry identical vectors), then
// the non-empty clusters' centroids mapped back to raw space.
func FromResult(res *core.Result) (Batch, error) {
	if res == nil || res.Dataset == nil || res.Clusters == nil {
		return Batch{}, fmt.Errorf("corpus: incomplete result")
	}
	dataset, err := core.DatasetHash(res.Registry, res.Config)
	if err != nil {
		return Batch{}, err
	}
	b := Batch{
		Dataset: dataset,
		Params:  paramsDigest(res.Config),
		Seed:    uint64(res.Config.Seed),
	}

	type key struct {
		bench string
		index int
	}
	seen := make(map[key]bool, len(res.Dataset.Refs))
	for i, ref := range res.Dataset.Refs {
		k := key{bench: ref.Bench.ID(), index: ref.Index}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Entries = append(b.Entries, Entry{
			Bench:  k.bench,
			Suite:  string(ref.Bench.Suite),
			Kind:   KindInterval,
			Index:  ref.Index,
			Vector: res.Dataset.Raw.Row(i),
		})
	}

	centroids, counts := res.RawCentroids()
	for c := 0; c < centroids.Rows; c++ {
		if counts[c] == 0 {
			continue
		}
		b.Entries = append(b.Entries, Entry{
			Kind:   KindCentroid,
			Index:  c,
			Vector: centroids.Row(c),
		})
	}
	return b, nil
}

// IngestResult ingests a completed run (FromResult + IngestBatch).
func (c *Corpus) IngestResult(res *core.Result) (IngestInfo, error) {
	b, err := FromResult(res)
	if err != nil {
		return IngestInfo{}, err
	}
	return c.IngestBatch(b)
}

// paramsDigest folds the analysis-shaping configuration into the
// config/params provenance hash — informational (the ledger key is the
// dataset hash), answering "what settings produced this record?".
func paramsDigest(cfg core.Config) uint64 {
	h := uint64(checksumSeed)
	fold := func(v uint64) {
		h ^= v
		h *= checksumPrime
	}
	fold(uint64(cfg.IntervalLength))
	fold(uint64(cfg.SamplesPerBenchmark))
	fold(uint64(cfg.MaxIntervalsPerBenchmark))
	if cfg.SampleByBenchmark {
		fold(1)
	} else {
		fold(2)
	}
	fold(uint64(cfg.NumClusters))
	fold(uint64(cfg.NumProminent))
	fold(uint64(cfg.KeyCharacteristics))
	fold(uint64(cfg.Seed))
	return h
}
