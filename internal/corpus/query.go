package corpus

// The query front end shared by the phasechar CLI ("phasechar query")
// and the service (POST /corpus/query): one request/response pair, one
// Query entry point, one JSON rendering. Both callers marshal the same
// QueryResponse with the same two-space-indented encoder, which is what
// makes the CLI and service answers byte-identical — an invariant the
// verify gate cmp's.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Query defaults: a handful of neighbors, and a radius of 1.0 in the
// corpus-normalized space (one corpus-wide standard deviation of
// combined characteristic drift).
const (
	DefaultK      = 5
	DefaultRadius = 1.0
	maxK          = 1000
)

// QueryRequest is one corpus question. Op selects the question:
//
//	"stats"       corpus summary (no other fields)
//	"nearest"     k nearest records to Ref or Vector
//	"uniqueness"  one benchmark's corpus-uniqueness (Bench)
//	"novelty"     one suite's corpus-novelty (Suite)
type QueryRequest struct {
	Op string `json:"op"`
	// Ref names a corpus interval "suite/bench#index" as the nearest
	// query point; its own benchmark's records are excluded from the
	// answer (a record is trivially nearest to itself).
	Ref string `json:"ref,omitempty"`
	// Vector is an inline raw query point for "nearest" (the corpus
	// dimensionality, normally 69 MICA characteristics).
	Vector []float64 `json:"vector,omitempty"`
	// Bench is the "suite/name" benchmark for "uniqueness".
	Bench string `json:"bench,omitempty"`
	// Suite is the suite for "novelty".
	Suite string `json:"suite,omitempty"`
	// K is how many neighbors "nearest" returns (0: 5).
	K int `json:"k,omitempty"`
	// Radius is the neighbor radius for "uniqueness"/"novelty" in the
	// corpus-normalized space (0: 1.0).
	Radius float64 `json:"radius,omitempty"`
	// Probe, when positive, answers "nearest" through the IVF partition
	// layer, scanning only the Probe nearest coarse lists instead of
	// every row. Probe >= the quantizer size is identical to the exact
	// scan; 0 is the exact scan.
	Probe int `json:"probe,omitempty"`
}

// QueryResponse is the answer to one QueryRequest. Exactly one of the
// payload fields is set, matching Op.
type QueryResponse struct {
	Op string `json:"op"`
	// Ref/K/Radius/Probe echo the effective question parameters.
	Ref    string  `json:"ref,omitempty"`
	K      int     `json:"k,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	Probe  int     `json:"probe,omitempty"`
	// Scanned is how many index rows the answer visited.
	Scanned int `json:"scanned"`

	Stats      *Stats            `json:"stats,omitempty"`
	Neighbors  []Neighbor        `json:"neighbors,omitempty"`
	Uniqueness *UniquenessResult `json:"uniqueness,omitempty"`
	Novelty    *NoveltyResult    `json:"novelty,omitempty"`
}

// Query answers one request against the corpus as currently on disk
// (the manifest is re-read, so ingests by other processes are visible).
// Request errors — unknown op, missing argument, a benchmark the corpus
// has never seen — are the caller's to map (the service turns them into
// 400s); they never panic.
func (c *Corpus) Query(req QueryRequest) (*QueryResponse, error) {
	t0 := time.Now()
	if req.K == 0 {
		req.K = DefaultK
	}
	if req.Radius == 0 {
		req.Radius = DefaultRadius
	}
	if req.K < 0 || req.K > maxK {
		return nil, fmt.Errorf("corpus: k = %d outside [1,%d]", req.K, maxK)
	}
	if req.Radius < 0 {
		return nil, fmt.Errorf("corpus: negative radius %g", req.Radius)
	}
	if req.Probe < 0 {
		return nil, fmt.Errorf("corpus: negative probe %d", req.Probe)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.reloadLocked(); err != nil {
		return nil, err
	}
	ix, err := c.indexLocked()
	if err != nil {
		return nil, err
	}
	if req.Op != "stats" && len(ix.entries) == 0 {
		return nil, fmt.Errorf("corpus: empty corpus at %s (ingest a run first: phasechar -corpus %s ... export)", c.dir, c.dir)
	}

	resp := &QueryResponse{Op: req.Op}
	switch req.Op {
	case "stats":
		st := c.statsLocked(ix)
		resp.Stats = &st

	case "nearest":
		qn, skip, ref, err := ix.nearestQueryPoint(req)
		if err != nil {
			return nil, err
		}
		resp.Ref, resp.K, resp.Probe = ref, req.K, req.Probe
		cand, scanned := ix.nearest(qn, req.K, req.Probe, skip)
		resp.Scanned = scanned
		resp.Neighbors = make([]Neighbor, len(cand))
		for i, cd := range cand {
			e := &ix.entries[cd.row]
			resp.Neighbors[i] = Neighbor{
				Bench: e.bench, Suite: e.suite, Kind: e.kind.String(),
				Index: e.index, Seq: e.seq, Dataset: e.dataset,
				Distance: sqrt(cd.d2),
			}
		}

	case "uniqueness":
		if req.Bench == "" {
			return nil, fmt.Errorf(`corpus: op "uniqueness" needs a bench ("suite/name")`)
		}
		resp.Radius = req.Radius
		u, scanned, err := ix.uniqueness(req.Bench, req.Radius)
		if err != nil {
			return nil, err
		}
		resp.Scanned, resp.Uniqueness = scanned, &u

	case "novelty":
		if req.Suite == "" {
			return nil, fmt.Errorf(`corpus: op "novelty" needs a suite`)
		}
		resp.Radius = req.Radius
		nv, scanned, err := ix.novelty(req.Suite, req.Radius)
		if err != nil {
			return nil, err
		}
		resp.Scanned, resp.Novelty = scanned, &nv

	default:
		return nil, fmt.Errorf("corpus: unknown op %q (want stats, nearest, uniqueness or novelty)", req.Op)
	}

	c.queries.Inc()
	c.scanRows.Add(int64(resp.Scanned))
	c.m.ObserveSince("corpus.query", t0)
	return resp, nil
}

// statsLocked is Stats without re-taking the lock or reloading.
func (c *Corpus) statsLocked(ix *index) Stats {
	st := Stats{
		Records:  len(ix.entries),
		Benches:  len(ix.byBench),
		Suites:   len(ix.bySuite),
		Segments: len(c.man.segments),
		Ingests:  len(c.man.ledger),
		Dim:      int(c.man.dim),
		NextSeq:  c.man.nextSeq,
	}
	for i := range ix.entries {
		if ix.entries[i].kind == KindCentroid {
			st.Centroids++
		} else {
			st.Intervals++
		}
	}
	return st
}

// nearestQueryPoint resolves the "nearest" query point: an inline raw
// vector, or a Ref naming a corpus interval (whose benchmark is then
// excluded from the answer).
func (ix *index) nearestQueryPoint(req QueryRequest) (qn []float64, skip func(int) bool, ref string, err error) {
	switch {
	case req.Ref != "" && len(req.Vector) > 0:
		return nil, nil, "", fmt.Errorf(`corpus: op "nearest" takes a ref or a vector, not both`)
	case len(req.Vector) > 0:
		if len(req.Vector) != ix.dim {
			return nil, nil, "", fmt.Errorf("corpus: query vector has dim %d, corpus holds %d", len(req.Vector), ix.dim)
		}
		return ix.normalize(req.Vector), nil, "", nil
	case req.Ref != "":
		bench, idxStr, ok := strings.Cut(req.Ref, "#")
		if !ok {
			return nil, nil, "", fmt.Errorf(`corpus: ref %q is not "suite/bench#index"`, req.Ref)
		}
		n, err := strconv.Atoi(idxStr)
		if err != nil {
			return nil, nil, "", fmt.Errorf(`corpus: ref %q is not "suite/bench#index"`, req.Ref)
		}
		row := -1
		for _, r := range ix.byBench[bench] {
			if ix.entries[r].index == n {
				row = r
				break
			}
		}
		if row < 0 {
			return nil, nil, "", fmt.Errorf("corpus: no interval %q in the corpus", req.Ref)
		}
		skip = func(i int) bool { return ix.entries[i].bench == bench }
		return ix.norm.Row(row), skip, req.Ref, nil
	default:
		return nil, nil, "", fmt.Errorf(`corpus: op "nearest" needs a ref ("suite/bench#index") or a vector`)
	}
}

// sqrt maps a clamped squared distance to its reported distance.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// WriteResponse renders resp as indented JSON, byte-identical to the
// service's /corpus/query body for the same answer (same encoder, same
// indent, same trailing newline).
func WriteResponse(w io.Writer, resp *QueryResponse) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
