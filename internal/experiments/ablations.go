package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/trace"
)

// AblationAggregate demonstrates section 2.1's motivating example: an
// aggregate characterization can report an "average" behaviour no phase of
// the program actually exhibits. It builds a two-phase workload whose
// phases execute ~10% and ~50% memory-read instructions, characterizes it
// both aggregately and per interval, and shows the aggregate landing in
// between while the intervals form two distinct groups.
func AblationAggregate(e *Env) (string, error) {
	mkPhase := func(name string, loadFrac float64) trace.PhaseBehavior {
		b := trace.BaseMix()
		b[isa.OpLoad] = 0
		var rest float64
		for _, w := range b {
			rest += w
		}
		for i := range b {
			b[i] *= (1 - loadFrac) / rest
		}
		b[isa.OpLoad] = loadFrac
		return trace.PhaseBehavior{
			Name:     name,
			Mix:      b,
			CodeSize: 4000,
			Branch:   trace.BranchSpec{TakenBias: 0.7, PatternPeriod: 12, NoiseLevel: 0.05},
			Reg:      trace.RegDepSpec{MeanDepDist: 6, AvgSrcRegs: 1.6, WriteFraction: 0.75},
			Loads:    []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 20, Stride: 8}},
			Stores:   []trace.AccessPattern{{Kind: trace.PatternStride, Weight: 1, Region: 1 << 19, Stride: 8}},
			Jitter:   0.03,
		}
	}
	phases := []trace.PhaseBehavior{mkPhase("ablation/low-mem", 0.10), mkPhase("ablation/high-mem", 0.50)}

	const intervalsPerPhase = 8
	length := e.Config.IntervalLength
	agg := mica.NewAnalyzer()
	perInterval := make([]float64, 0, 2*intervalsPerPhase)
	for pi := range phases {
		for i := 0; i < intervalsPerPhase; i++ {
			ia := mica.NewAnalyzer()
			seed := trace.HashString(phases[pi].Name) ^ trace.Hash64(uint64(i))
			err := trace.GenerateInterval(&phases[pi], seed, length, func(ins *isa.Instruction) {
				agg.Record(ins)
				ia.Record(ins)
			})
			if err != nil {
				return "", err
			}
			perInterval = append(perInterval, ia.Vector()[mica.IdxMix+int(isa.OpLoad)])
		}
	}
	aggLoad := agg.Vector()[mica.IdxMix+int(isa.OpLoad)]

	var lo, hi []float64
	for _, v := range perInterval {
		if v < aggLoad {
			lo = append(lo, v)
		} else {
			hi = append(hi, v)
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		if len(xs) == 0 {
			return 0
		}
		return s / float64(len(xs))
	}

	var b strings.Builder
	b.WriteString("Ablation (section 2.1): aggregate vs phase-level characterization\n\n")
	fmt.Fprintf(&b, "  aggregate memory-read fraction:         %5.1f%%\n", 100*aggLoad)
	fmt.Fprintf(&b, "  phase-level group 1 (%2d intervals):     %5.1f%%\n", len(lo), 100*mean(lo))
	fmt.Fprintf(&b, "  phase-level group 2 (%2d intervals):     %5.1f%%\n", len(hi), 100*mean(hi))
	b.WriteString("\nThe aggregate number describes neither phase: sizing load/store resources\n")
	b.WriteString("from it would over-provision the first half of the execution and starve the\n")
	b.WriteString("second — the paper's argument for phase-level characterization.\n")
	return b.String(), nil
}

// AblationK reproduces the section 2.6 discussion: selecting the top-N
// prominent phases from a clustering with k = N gives 100% coverage but
// high within-cluster variability; k > N trades coverage for much tighter
// clusters.
func AblationK(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	n := e.Config.NumProminent
	ks := []int{n, 2 * n, 3 * n}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (section 2.6): coverage vs within-cluster variability, top-%d phases\n\n", n)
	fmt.Fprintf(&b, "  %6s  %14s  %22s\n", "k", "top-N coverage", "avg within-cluster dist")
	for _, k := range ks {
		if k >= res.Scores.Rows {
			fmt.Fprintf(&b, "  %6d  (skipped: k >= %d intervals)\n", k, res.Scores.Rows)
			continue
		}
		opts := e.Config.KMeans
		if opts.Seed == 0 {
			opts.Seed = e.Config.Seed
		}
		if opts.Workers == 0 {
			opts.Workers = e.Config.Workers
		}
		cl, err := cluster.KMeans(res.Scores, k, opts)
		if err != nil {
			return "", err
		}
		weights := cl.Weights()
		order := cl.ByWeight()
		var cov float64
		for _, c := range order[:min(n, len(order))] {
			cov += weights[c]
		}
		fmt.Fprintf(&b, "  %6d  %13.1f%%  %22.3f\n", k, 100*cov, cl.AvgWithinClusterDistance(res.Scores))
	}
	b.WriteString("\nLarger k lowers top-N coverage but shrinks within-cluster variability; the\n")
	b.WriteString("paper picks k = 3N as its coverage/accuracy trade-off.\n")
	return b.String(), nil
}

// AblationSampling reproduces the section 2.4 rationale for interval
// sampling: without it, benchmarks with more intervals dominate the
// analysis.
func AblationSampling(e *Env) (string, error) {
	cfgOn := e.Config
	cfgOn.SampleByBenchmark = true
	cfgOff := e.Config
	cfgOff.SampleByBenchmark = false
	if err := cfgOn.Validate(); err != nil {
		return "", err
	}
	if err := cfgOff.Validate(); err != nil {
		return "", err
	}

	share := func(cfg core.Config) (map[string]float64, int) {
		refs := core.SampleRefs(e.Registry, cfg)
		bySuite := map[string]int{}
		for _, r := range refs {
			bySuite[string(r.Bench.Suite)]++
		}
		out := map[string]float64{}
		for s, c := range bySuite {
			out[s] = float64(c) / float64(len(refs))
		}
		return out, len(refs)
	}
	onShare, onTotal := share(cfgOn)
	offShare, offTotal := share(cfgOff)

	var b strings.Builder
	b.WriteString("Ablation (section 2.4): per-benchmark interval sampling\n\n")
	fmt.Fprintf(&b, "  %-14s %18s %18s\n", "suite", "sampled (equal wt)", "raw intervals")
	for _, s := range e.sortedSuites() {
		fmt.Fprintf(&b, "  %-14s %17.1f%% %17.1f%%\n", s, 100*onShare[string(s)], 100*offShare[string(s)])
	}
	fmt.Fprintf(&b, "\n  rows: %d sampled vs %d raw\n", onTotal, offTotal)
	b.WriteString("\nWithout sampling, long-running benchmarks (large interval counts) dominate\n")
	b.WriteString("the workload space; sampling a fixed number of intervals per benchmark gives\n")
	b.WriteString("every benchmark equal weight, the paper's design choice.\n")
	return b.String(), nil
}

// AblationGranularity reproduces the section 2.9 claim that the
// methodology applies at any interval granularity: it re-runs a reduced
// pipeline at three interval lengths and shows the headline orderings
// (SPEC coverage above domain coverage; BioPerf most unique) are stable.
func AblationGranularity(e *Env) (string, error) {
	lengths := []int{e.Config.IntervalLength / 4, e.Config.IntervalLength, e.Config.IntervalLength * 2}
	var b strings.Builder
	b.WriteString("Ablation (section 2.9): interval granularity\n\n")
	fmt.Fprintf(&b, "  %10s %22s %22s\n", "interval", "mean SPEC/domain cov", "BioPerf unique rank")
	for _, n := range lengths {
		cfg := e.Config
		cfg.IntervalLength = n
		// Keep the sweep affordable: fewer samples than the main run.
		if cfg.SamplesPerBenchmark > 40 {
			cfg.SamplesPerBenchmark = 40
		}
		if cfg.NumClusters > 120 {
			cfg.NumClusters = 120
			if cfg.NumProminent > cfg.NumClusters {
				cfg.NumProminent = cfg.NumClusters
			}
		}
		res, err := core.Run(e.Registry, cfg, nil)
		if err != nil {
			return "", err
		}
		cov := res.SuiteCoverage()
		var spec, dom, nSpec, nDom float64
		for s, c := range cov {
			if e.Registry.IsDomainSpecific(s) {
				dom += float64(c)
				nDom++
			} else {
				spec += float64(c)
				nSpec++
			}
		}
		ratio := (spec / nSpec) / (dom / nDom)
		uf := res.UniqueFraction()
		rank := 1
		for s, f := range uf {
			if s != "BioPerf" && f >= uf["BioPerf"] {
				rank++
			}
		}
		fmt.Fprintf(&b, "  %10d %21.2fx %22d\n", n, ratio, rank)
	}
	b.WriteString("\nThe coverage ratio and BioPerf's uniqueness rank hold across granularities,\n")
	b.WriteString("as section 2.9 argues; finer intervals expose more (finer-grained) phases.\n")
	return b.String(), nil
}
