package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mica"
)

// CaseStudies reproduces the individual observations of the paper's
// section 4.2 with measured numbers:
//
//   - astar is partitioned across two prominent behaviours, one
//     benchmark-specific with the worst branch predictability overall,
//     one mixed with far better locality and predictability;
//   - a major part of CPU2006's hmmer resembles a small part of BioPerf's
//     hmmer, while the remainder of the BioPerf version is dissimilar;
//   - grappa's execution is dominated by unique (benchmark-specific)
//     behaviour rich in logic operations with small strides.
func CaseStudies(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Case studies (section 4.2)\n")

	if err := astarStudy(res, &b); err != nil {
		return "", err
	}
	if err := hmmerStudy(res, &b); err != nil {
		return "", err
	}
	if err := grappaStudy(res, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// clusterStats returns, for one benchmark, its two most-populated clusters
// with their kinds and mean metric values over the benchmark's rows there.
func clusterRows(res *core.Result, benchID string) map[int][]int {
	rows := map[int][]int{}
	for i, ref := range res.Dataset.Refs {
		if ref.Bench.ID() == benchID {
			c := res.Clusters.Assignments[i]
			rows[c] = append(rows[c], i)
		}
	}
	return rows
}

func meanMetric(res *core.Result, rows []int, metric string) float64 {
	m, ok := mica.MetricByName(metric)
	if !ok {
		return 0
	}
	var s float64
	for _, i := range rows {
		s += res.Dataset.Raw.At(i, m.Index)
	}
	if len(rows) == 0 {
		return 0
	}
	return s / float64(len(rows))
}

// clusterKind classifies one cluster by provenance.
func clusterKind(res *core.Result, c int) core.PhaseKind {
	benches := map[string]bool{}
	suites := map[string]bool{}
	for i, ref := range res.Dataset.Refs {
		if res.Clusters.Assignments[i] != c {
			continue
		}
		benches[ref.Bench.ID()] = true
		suites[string(ref.Bench.Suite)] = true
	}
	switch {
	case len(benches) == 1:
		return core.BenchmarkSpecific
	case len(suites) == 1:
		return core.SuiteSpecific
	default:
		return core.Mixed
	}
}

func astarStudy(res *core.Result, b *strings.Builder) error {
	const id = "SPECint2006/astar"
	rows := clusterRows(res, id)
	if len(rows) == 0 {
		return fmt.Errorf("experiments: %s not in the dataset", id)
	}
	// The two most-populated clusters.
	var top []int
	for c := range rows {
		top = append(top, c)
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if len(rows[top[j]]) > len(rows[top[i]]) {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	b.WriteString("\nastar (two distinct prominent behaviours):\n")
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	n := 2
	if len(top) < 2 {
		n = len(top)
	}
	for _, c := range top[:n] {
		frac := float64(len(rows[c])) / float64(total)
		fmt.Fprintf(b, "  cluster %3d [%s] %5.1f%% of astar: GAs_12bits miss %.2f, global load stride<=64 %.2f\n",
			c, clusterKind(res, c), 100*frac,
			meanMetric(res, rows[c], "GAs_12bits"),
			meanMetric(res, rows[c], "gls_64"))
	}
	if n == 2 {
		a, c2 := top[0], top[1]
		worse, better := a, c2
		if meanMetric(res, rows[worse], "GAs_12bits") < meanMetric(res, rows[better], "GAs_12bits") {
			worse, better = better, worse
		}
		fmt.Fprintf(b, "  -> the paper's contrast: one phase mispredicts %.0fx more and has far\n",
			safeRatio(meanMetric(res, rows[worse], "GAs_12bits"), meanMetric(res, rows[better], "GAs_12bits")))
		b.WriteString("     worse data locality than the other.\n")
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func hmmerStudy(res *core.Result, b *strings.Builder) error {
	const spec = "SPECint2006/hmmer"
	const bio = "BioPerf/hmmer"
	specRows := clusterRows(res, spec)
	bioRows := clusterRows(res, bio)
	if len(specRows) == 0 || len(bioRows) == 0 {
		return fmt.Errorf("experiments: hmmer benchmarks missing from the dataset")
	}
	shared := func(a, o map[int][]int) float64 {
		totalA, sharedA := 0, 0
		for c, r := range a {
			totalA += len(r)
			if len(o[c]) > 0 {
				sharedA += len(r)
			}
		}
		if totalA == 0 {
			return 0
		}
		return float64(sharedA) / float64(totalA)
	}
	fmt.Fprintf(b, "\nhmmer across suites (paper: 68%% of the CPU2006 version resembles 5%% of BioPerf's):\n")
	fmt.Fprintf(b, "  %5.1f%% of %s shares clusters with %s\n", 100*shared(specRows, bioRows), spec, bio)
	fmt.Fprintf(b, "  %5.1f%% of %s shares clusters with %s\n", 100*shared(bioRows, specRows), bio, spec)
	b.WriteString("  -> the overlap is asymmetric: the BioPerf version has a large dissimilar part.\n")
	return nil
}

func grappaStudy(res *core.Result, b *strings.Builder) error {
	const id = "BioPerf/grappa"
	rows := clusterRows(res, id)
	if len(rows) == 0 {
		return fmt.Errorf("experiments: %s not in the dataset", id)
	}
	total, unique := 0, 0
	var uniqueRows []int
	for c, r := range rows {
		total += len(r)
		if clusterKind(res, c) == core.BenchmarkSpecific {
			unique += len(r)
			uniqueRows = append(uniqueRows, r...)
		}
	}
	fmt.Fprintf(b, "\ngrappa (paper: mostly unique behaviour, many logic ops, small global strides):\n")
	fmt.Fprintf(b, "  %5.1f%% of grappa lives in benchmark-specific clusters\n", 100*float64(unique)/float64(total))
	if len(uniqueRows) > 0 {
		fmt.Fprintf(b, "  those phases: %4.1f%% logic instructions, global load stride<=64 prob %.2f\n",
			100*meanMetric(res, uniqueRows, "mix_logic"),
			meanMetric(res, uniqueRows, "gls_64"))
	}
	return nil
}
