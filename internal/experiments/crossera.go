package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
)

// CrossEra compares the 2008-era standard suites against emerging-era
// suites loaded from workload-model files (e.g. models/bigdata.json):
// per-suite and per-era workload-space coverage, diversity and
// uniqueness — the paper's section 5 questions asked across benchmark
// generations. Suites are classified by name: the paper's five 2008
// suites are "2008", everything else loaded into the registry is
// "emerging".
func CrossEra(e *Env) (string, error) {
	suites := e.sortedSuites()
	var standard, emerging []bench.Suite
	for _, s := range suites {
		if bench.IsStandardSuite(s) {
			standard = append(standard, s)
		} else {
			emerging = append(emerging, s)
		}
	}
	if len(emerging) == 0 {
		return "Cross-era comparison: no emerging-era suites loaded.\n" +
			"Load one with -models, e.g.:\n\n" +
			"  phasechar -models models crossera\n\n" +
			"(models/ ships a big-data suite modelled after Jia et al.,\n" +
			"'Characterizing data analysis workloads in data centers'.)\n", nil
	}

	res, err := e.Result()
	if err != nil {
		return "", err
	}
	cov := res.SuiteCoverage()
	uf := res.UniqueFraction()

	// Era-level aggregates over the raw assignments: coverage is the
	// number of clusters any of the era's suites touch; uniqueness is the
	// fraction of the era's sampled execution living in clusters no suite
	// of the other era reaches.
	isEmerging := map[bench.Suite]bool{}
	for _, s := range emerging {
		isEmerging[s] = true
	}
	clusterEras := map[int][2]bool{} // cluster -> {has 2008 rows, has emerging rows}
	for i, ref := range res.Dataset.Refs {
		c := res.Clusters.Assignments[i]
		eras := clusterEras[c]
		if isEmerging[ref.Bench.Suite] {
			eras[1] = true
		} else {
			eras[0] = true
		}
		clusterEras[c] = eras
	}
	var eraClusters, eraUniqueRows, eraRows [2]int
	for c, eras := range clusterEras {
		_ = c
		if eras[0] {
			eraClusters[0]++
		}
		if eras[1] {
			eraClusters[1]++
		}
	}
	for i, ref := range res.Dataset.Refs {
		era := 0
		if isEmerging[ref.Bench.Suite] {
			era = 1
		}
		eraRows[era]++
		eras := clusterEras[res.Clusters.Assignments[i]]
		if !eras[1-era] {
			eraUniqueRows[era]++
		}
	}

	var csv strings.Builder
	csv.WriteString(csvJoin("suite", "era", "benchmarks", "coverage_clusters", "clusters_for_80pct", "unique_fraction"))
	writeRows := func(era string, list []bench.Suite) {
		for _, s := range list {
			csv.WriteString(csvJoin(string(s), era,
				fmt.Sprint(len(e.Registry.BySuite(s))),
				fmt.Sprint(cov[s]),
				fmt.Sprint(res.ClustersFor(s, 0.8)),
				fmt.Sprintf("%.4f", uf[s])))
		}
	}
	writeRows("2008", standard)
	writeRows("emerging", emerging)
	if _, err := e.WriteArtifact("crossera.csv", csv.String()); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Cross-era comparison: 2008 standard suites vs emerging suites\n")
	b.WriteString(fmt.Sprintf("(%d clusters over %d sampled intervals)\n\n", res.Config.NumClusters, len(res.Dataset.Refs)))
	b.WriteString(fmt.Sprintf("%-16s %-9s %6s %9s %8s %8s\n", "suite", "era", "bench", "coverage", "k(80%)", "unique"))
	printRows := func(era string, list []bench.Suite) {
		for _, s := range list {
			b.WriteString(fmt.Sprintf("%-16s %-9s %6d %9d %8d %7.1f%%\n",
				s, era, len(e.Registry.BySuite(s)), cov[s], res.ClustersFor(s, 0.8), 100*uf[s]))
		}
	}
	printRows("2008", standard)
	printRows("emerging", emerging)
	b.WriteString("\nEra aggregates:\n")
	for era, name := range [2]string{"2008", "emerging"} {
		if eraRows[era] == 0 {
			continue
		}
		b.WriteString(fmt.Sprintf("  %-9s %4d clusters covered, %5.1f%% of execution in era-unique clusters\n",
			name, eraClusters[era], 100*float64(eraUniqueRows[era])/float64(eraRows[era])))
	}
	b.WriteString("\nA high emerging-era unique fraction says what BioPerf said in 2008:\n")
	b.WriteString("the new workloads occupy workload-space regions the incumbent suites\n")
	b.WriteString("do not reach, so they earn their place in a composed suite.\n")
	return b.String(), nil
}
