// Package experiments contains one runner per table and figure of the
// paper's evaluation (Tables 1–3, Figures 1–6) plus the ablations implied
// by the methodology discussion (aggregate-vs-phase characterization,
// coverage/variability k trade-off, interval sampling). Each runner
// produces a textual report and, when an output directory is configured,
// SVG/CSV artifacts.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ga"
)

// Env carries shared state across experiment runners: the benchmark
// registry, the pipeline configuration, and lazily computed results that
// several experiments reuse (the pipeline run, the GA selection).
type Env struct {
	Registry *bench.Registry
	Config   core.Config
	// OutDir receives SVG/CSV artifacts; empty disables file output.
	OutDir string
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	result    *core.Result
	selection *ga.Selection
}

// NewEnv builds an experiment environment.
func NewEnv(reg *bench.Registry, cfg core.Config, outDir string, logf func(string, ...any)) *Env {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Env{Registry: reg, Config: cfg, OutDir: outDir, Logf: logf}
}

// Result runs the pipeline once and caches it.
func (e *Env) Result() (*core.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.result != nil {
		return e.result, nil
	}
	res, err := core.Run(e.Registry, e.Config, e.Logf)
	if err != nil {
		return nil, err
	}
	e.result = res
	return res, nil
}

// KeySelection runs the GA once at the configured cardinality and caches
// the selection.
func (e *Env) KeySelection() (ga.Selection, error) {
	if _, err := e.Result(); err != nil {
		return ga.Selection{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.selection != nil {
		return *e.selection, nil
	}
	count := e.Config.KeyCharacteristics
	e.Logf("GA: selecting %d key characteristics...", count)
	sel, err := e.result.SelectKeyCharacteristics(count)
	if err != nil {
		return ga.Selection{}, err
	}
	e.selection = &sel
	return sel, nil
}

// WriteArtifact stores content under OutDir (no-op when OutDir is empty)
// and returns the written path ("" if disabled).
func (e *Env) WriteArtifact(name, content string) (string, error) {
	if e.OutDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(e.OutDir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: creating %s: %w", e.OutDir, err)
	}
	path := filepath.Join(e.OutDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", fmt.Errorf("experiments: writing %s: %w", path, err)
	}
	e.Logf("wrote %s", path)
	return path, nil
}

// Experiment is one registered runner.
type Experiment struct {
	// ID is the CLI subcommand, e.g. "fig4".
	ID string
	// Title describes the paper artifact it regenerates.
	Title string
	// Run produces the textual report.
	Run func(*Env) (string, error)
}

// All returns the registered experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: the 69 microarchitecture-independent characteristics", Table1},
		{"table2", "Table 2: key characteristics retained by the genetic algorithm", Table2},
		{"table3", "Table 3: benchmarks and interval counts", Table3},
		{"fig1", "Figure 1: distance correlation vs number of retained characteristics", Fig1},
		{"fig23", "Figures 2-3: kiviat plots of the prominent phase behaviors", Fig23},
		{"fig4", "Figure 4: workload space coverage per benchmark suite", Fig4},
		{"fig5", "Figure 5: cumulative coverage per benchmark suite (diversity)", Fig5},
		{"fig6", "Figure 6: fraction of unique behavior per benchmark suite", Fig6},
		{"casestudies", "Section 4.2: the astar / hmmer / grappa case studies", CaseStudies},
		{"ablation-aggregate", "Section 2.1: aggregate vs phase-level characterization", AblationAggregate},
		{"ablation-k", "Section 2.6: coverage vs within-cluster variability trade-off", AblationK},
		{"ablation-sampling", "Section 2.4: effect of per-benchmark interval sampling", AblationSampling},
		{"ablation-granularity", "Section 2.9: stability across interval granularities", AblationGranularity},
		{"ablation-uarch", "Sections 2.3/6.2: dependent metrics change with the machine", AblationUarch},
		{"similarity", "Extension: suite-to-suite shared-coverage matrix", Similarity},
		{"drift", "Extension: benchmark drift between SPEC CPU generations", DriftExperiment},
		{"dendrogram", "Extension: benchmark-similarity dendrogram (average linkage)", Dendrogram},
		{"validation-phases", "Validation: detected phases vs modelled ground truth", ValidationPhases},
		{"validation-generator", "Validation: generator fidelity against the behaviour models", ValidationGenerator},
		{"validation-convergence", "Validation: characteristic convergence vs interval length", ValidationConvergence},
		{"crossera", "Extension: 2008 suites vs emerging suites loaded from -models", CrossEra},
	}
}

// ByID finds an experiment runner.
func ByID(id string) (Experiment, bool) {
	for _, x := range All() {
		if x.ID == id {
			return x, true
		}
	}
	return Experiment{}, false
}

// csvJoin renders one CSV line.
func csvJoin(fields ...string) string { return strings.Join(fields, ",") + "\n" }

// sortedSuites returns the canonical suite order restricted to the
// registry.
func (e *Env) sortedSuites() []bench.Suite {
	return e.Registry.SuiteNames()
}
