package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// testEnv builds one shared Env over the full standard registry at a tiny
// scale; the pipeline result is computed once and reused by every subtest.
func testEnv(t *testing.T) *Env {
	t.Helper()
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.TestConfig()
	cfg.IntervalLength = 1200
	cfg.SamplesPerBenchmark = 6
	cfg.MaxIntervalsPerBenchmark = 10
	cfg.NumClusters = 60
	cfg.NumProminent = 24
	cfg.KeyCharacteristics = 6
	return NewEnv(reg, cfg, t.TempDir(), nil)
}

func TestAllExperimentsRun(t *testing.T) {
	env := testEnv(t)
	wantArtifacts := map[string][]string{
		"table1":     {"table1.csv"},
		"table2":     {"table2.csv"},
		"table3":     {"table3.csv"},
		"fig1":       {"fig1.svg", "fig1.csv"},
		"fig23":      {"fig23.svg"},
		"fig4":       {"fig4.svg", "fig4.csv"},
		"fig5":       {"fig5.svg", "fig5.csv"},
		"fig6":       {"fig6.svg", "fig6.csv"},
		"similarity": {"similarity.svg", "similarity.csv"},
		"drift":      {"drift.csv"},
		"dendrogram": {"dendrogram.svg"},
	}
	for _, x := range All() {
		x := x
		t.Run(x.ID, func(t *testing.T) {
			report, err := x.Run(env)
			if err != nil {
				t.Fatal(err)
			}
			if len(report) < 40 {
				t.Fatalf("report suspiciously short:\n%s", report)
			}
			for _, f := range wantArtifacts[x.ID] {
				path := filepath.Join(env.OutDir, f)
				info, err := os.Stat(path)
				if err != nil {
					t.Fatalf("artifact %s missing: %v", f, err)
				}
				if info.Size() == 0 {
					t.Fatalf("artifact %s empty", f)
				}
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registered %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, x := range all {
		if seen[x.ID] {
			t.Fatalf("duplicate experiment id %q", x.ID)
		}
		seen[x.ID] = true
		if x.Title == "" || x.Run == nil {
			t.Fatalf("experiment %q incomplete", x.ID)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("ByID(fig4) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTable1Content(t *testing.T) {
	env := testEnv(t)
	report, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instruction mix", "ILP", "branch predictability", "69"} {
		if !strings.Contains(report, want) {
			t.Fatalf("table1 missing %q:\n%s", want, report)
		}
	}
}

func TestTable3Content(t *testing.T) {
	env := testEnv(t)
	report, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BioPerf", "grappa", "SPECfp2006", "77 benchmarks"} {
		if !strings.Contains(report, want) {
			t.Fatalf("table3 missing %q", want)
		}
	}
}

func TestAblationAggregateShowsDivergence(t *testing.T) {
	env := testEnv(t)
	report, err := AblationAggregate(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "aggregate memory-read fraction") {
		t.Fatalf("ablation report malformed:\n%s", report)
	}
}

func TestWriteArtifactDisabled(t *testing.T) {
	reg, err := bench.StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(reg, core.TestConfig(), "", nil)
	path, err := env.WriteArtifact("x.txt", "data")
	if err != nil {
		t.Fatal(err)
	}
	if path != "" {
		t.Fatal("artifact written with empty OutDir")
	}
}

func TestEnvCachesResult(t *testing.T) {
	env := testEnv(t)
	a, err := env.Result()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Result()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Result not cached")
	}
}

func TestWriteGallery(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig4.svg"), []byte("<svg xmlns='x'>f4</svg>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fig4.csv"), []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteGallery(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"fig4.svg", "fig4.csv", "<svg"} {
		if !strings.Contains(html, want) {
			t.Fatalf("gallery missing %q", want)
		}
	}
	if err := WriteGallery(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
