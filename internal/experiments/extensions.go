package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/viz"
)

// Similarity computes the directional suite-similarity matrix (an
// extension following the paper's related work on measuring benchmark
// similarity from inherent characteristics): cell (a, b) is the fraction
// of suite a's execution found in clusters shared with suite b.
func Similarity(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	suites := e.sortedSuites()
	m := res.SimilarityMatrix(suites)

	labels := make([]string, len(suites))
	values := make([][]float64, len(suites))
	var csv strings.Builder
	csv.WriteString(csvJoin("suite_a", "suite_b", "shared_coverage"))
	for i, s := range suites {
		labels[i] = string(s)
		values[i] = make([]float64, len(suites))
		for j := range suites {
			values[i][j] = m.At(i, j)
			csv.WriteString(csvJoin(string(suites[i]), string(suites[j]), fmt.Sprintf("%.4f", m.At(i, j))))
		}
	}
	hm := viz.Heatmap{
		Title:     "Suite similarity: fraction of row suite covered by column suite",
		RowLabels: labels,
		ColLabels: labels,
		Values:    values,
	}
	svg, err := hm.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("similarity.svg", svg); err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("similarity.csv", csv.String()); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Extension: suite-to-suite shared coverage\n")
	b.WriteString("(cell = fraction of the row suite's execution in clusters shared with the column suite)\n\n")
	b.WriteString(hm.ASCII())
	b.WriteString("\nHigh row values against SPEC columns mean the row suite adds little new\n")
	b.WriteString("behaviour; BioPerf's row stays low — the paper's uniqueness result from a\n")
	b.WriteString("different angle.\n")
	return b.String(), nil
}

// DriftExperiment quantifies behaviour drift from SPEC CPU2000 to CPU2006
// (an extension following the paper's reference on benchmark drift).
func DriftExperiment(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	pairs := [][2]bench.Suite{
		{bench.SuiteSPECint2000, bench.SuiteSPECint2006},
		{bench.SuiteSPECfp2000, bench.SuiteSPECfp2006},
	}
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("old", "new", "retained", "new_behavior", "centroid_shift"))
	b.WriteString("Extension: benchmark drift between SPEC CPU generations\n\n")
	fmt.Fprintf(&b, "  %-13s %-13s %10s %14s %15s\n", "old", "new", "retained", "new behavior", "centroid shift")
	for _, p := range pairs {
		d, err := res.DriftBetween(p[0], p[1])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-13s %-13s %9.1f%% %13.1f%% %15.3f\n",
			d.Old, d.New, 100*d.Retained, 100*d.NewBehavior, d.CentroidShift)
		csv.WriteString(csvJoin(string(d.Old), string(d.New),
			fmt.Sprintf("%.4f", d.Retained), fmt.Sprintf("%.4f", d.NewBehavior),
			fmt.Sprintf("%.4f", d.CentroidShift)))
	}
	if _, err := e.WriteArtifact("drift.csv", csv.String()); err != nil {
		return "", err
	}
	b.WriteString("\n'retained' = old-suite behaviour still exercised by the new generation;\n")
	b.WriteString("'new behavior' = new-generation behaviour absent from the old one. Designing\n")
	b.WriteString("for yesterday's suite forfeits exactly that new fraction — the drift argument.\n")
	return b.String(), nil
}

// Dendrogram builds the benchmark-similarity tree: each benchmark is
// placed at its centroid in the rescaled-PCA space and clustered
// hierarchically with average linkage — the workload-design methodology of
// the paper's precursor work (reference [9]).
func Dendrogram(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	// Per-benchmark centroids over the sampled rows.
	benches := res.Registry.All()
	idx := map[string]int{}
	labels := make([]string, len(benches))
	for i, b := range benches {
		idx[b.ID()] = i
		labels[i] = b.ID()
	}
	centroids := stats.NewMatrix(len(benches), res.Scores.Cols)
	counts := make([]int, len(benches))
	for i, ref := range res.Dataset.Refs {
		bi := idx[ref.Bench.ID()]
		row := res.Scores.Row(i)
		dst := centroids.Row(bi)
		for j := range row {
			dst[j] += row[j]
		}
		counts[bi]++
	}
	for bi := range benches {
		if counts[bi] == 0 {
			continue
		}
		dst := centroids.Row(bi)
		for j := range dst {
			dst[j] /= float64(counts[bi])
		}
	}

	link, err := cluster.Hierarchical(centroids)
	if err != nil {
		return "", err
	}

	merges := make([]viz.DendroMerge, len(link.Merges))
	for i, m := range link.Merges {
		merges[i] = viz.DendroMerge{A: m.A, B: m.B, Distance: m.Distance}
	}
	dg := viz.Dendrogram{
		Title:     "Benchmark similarity dendrogram (average linkage, rescaled-PCA space)",
		Labels:    labels,
		Merges:    merges,
		LeafOrder: link.LeafOrder(),
	}
	svg, err := dg.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("dendrogram.svg", svg); err != nil {
		return "", err
	}

	// Report: cut into 12 groups and list them.
	k := 12
	if k > len(benches) {
		k = len(benches)
	}
	cutLabels, err := link.CutK(k)
	if err != nil {
		return "", err
	}
	groups := map[int][]string{}
	for bi, c := range cutLabels {
		groups[c] = append(groups[c], labels[bi])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: benchmark dendrogram, cut into %d groups\n\n", k)
	for c := 0; c < k; c++ {
		members := groups[c]
		sort.Strings(members)
		fmt.Fprintf(&b, "  group %2d (%2d): %s\n", c+1, len(members), strings.Join(members, " "))
	}
	// Cophenetic fidelity of the tree.
	coph := link.CopheneticDistances()
	orig := stats.PairwiseDistances(centroids)
	fmt.Fprintf(&b, "\ncophenetic correlation: %.3f\n", stats.Pearson(coph, orig))
	b.WriteString("Programs sharing kernels (the cross-suite twins) land in the same branch;\n")
	b.WriteString("cutting the tree is the paper's precursor method for picking representative\n")
	b.WriteString("benchmarks.\n")
	return b.String(), nil
}

// ValidationPhases exploits what the paper could not have: ground truth.
// Every synthetic benchmark has a known number of modelled phases, so
// SimPoint-style phase detection (core.AnalyzeTimeline) can be scored
// against it — a validation that the methodology recovers real phase
// structure rather than artefacts.
func ValidationPhases(e *Env) (string, error) {
	cfg := e.Config
	// Phase detection needs low measurement noise per interval: keep the
	// configured interval length but few intervals per benchmark.
	cfg.IntervalLength = max(8000, cfg.IntervalLength)
	cfg.MaxIntervalsPerBenchmark = 24
	if err := cfg.Validate(); err != nil {
		return "", err
	}

	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("benchmark", "modeled_phases", "detected_phases", "transitions"))
	b.WriteString("Validation: detected phases vs modelled ground truth\n\n")

	type row struct {
		id       string
		modeled  int
		detected int
		trans    int
	}
	var rows []row
	for _, bm := range e.Registry.All() {
		tl, err := core.AnalyzeTimeline(bm, cfg, 6)
		if err != nil {
			return "", err
		}
		rows = append(rows, row{bm.ID(), len(bm.Phases), tl.NumPhases, tl.Transitions})
		csv.WriteString(csvJoin(bm.ID(), fmt.Sprint(len(bm.Phases)), fmt.Sprint(tl.NumPhases), fmt.Sprint(tl.Transitions)))
	}

	// Score: multi-phase benchmarks should be detected as multi-phase;
	// single-phase ones should not shatter badly.
	multiOK, multiTotal := 0, 0
	singleOK, singleTotal := 0, 0
	for _, r := range rows {
		if r.modeled > 1 {
			multiTotal++
			if r.detected > 1 {
				multiOK++
			}
		} else {
			singleTotal++
			if r.detected <= 3 {
				singleOK++
			}
		}
	}
	fmt.Fprintf(&b, "  multi-phase benchmarks detected as multi-phase: %d/%d\n", multiOK, multiTotal)
	fmt.Fprintf(&b, "  single-phase benchmarks kept compact (<=3):     %d/%d\n", singleOK, singleTotal)
	b.WriteString("\n  benchmark                      modeled detected transitions\n")
	for _, r := range rows {
		marker := " "
		if (r.modeled > 1) != (r.detected > 1) {
			marker = "!"
		}
		fmt.Fprintf(&b, "  %s %-28s %7d %8d %11d\n", marker, r.id, r.modeled, r.detected, r.trans)
	}
	if _, err := e.WriteArtifact("validation_phases.csv", csv.String()); err != nil {
		return "", err
	}
	b.WriteString("\nRows marked '!' disagree with the ground truth. Detection runs at a\n")
	b.WriteString("reduced interval length; BIC may legitimately split jittered single-phase\n")
	b.WriteString("benchmarks into a few sub-phases or merge near-identical modelled phases.\n")
	return b.String(), nil
}

// ValidationGenerator checks the measurement substrate itself: for every
// phase of every benchmark model, it generates one interval and compares
// the realized instruction mix and branch taken rate against the phase's
// specification. Large deviations would mean the synthetic workloads do
// not implement their own models.
func ValidationGenerator(e *Env) (string, error) {
	cfg := e.Config
	length := max(20000, cfg.IntervalLength)

	type worst struct {
		phase string
		value float64
	}
	var (
		phases       int
		mixDevSum    float64
		worstMix     worst
		takenDevSum  float64
		worstTaken   worst
		takenSamples int
	)
	analyzer := mica.NewAnalyzer()
	for _, bm := range e.Registry.All() {
		for pi := range bm.Phases {
			beh := bm.Phases[pi].Behavior
			beh.Jitter = 0 // validate the spec itself, not the jitter
			analyzer.Reset()
			err := trace.GenerateInterval(&beh, 1234, length, func(ins *isa.Instruction) {
				analyzer.Record(ins)
			})
			if err != nil {
				return "", err
			}
			v := analyzer.Vector()
			phases++

			mix, err := beh.Mix.Normalize()
			if err != nil {
				return "", err
			}
			var dev float64
			for c := 0; c < isa.NumOpClasses; c++ {
				d := v[mica.IdxMix+c] - mix[c]
				if d < 0 {
					d = -d
				}
				if d > dev {
					dev = d
				}
			}
			mixDevSum += dev
			if dev > worstMix.value {
				worstMix = worst{beh.Name, dev}
			}

			if v[mica.IdxMix+int(isa.OpBranchCond)] > 0.005 {
				d := v[mica.IdxTakenRate] - beh.Branch.TakenBias
				if d < 0 {
					d = -d
				}
				takenDevSum += d
				takenSamples++
				if d > worstTaken.value {
					worstTaken = worst{beh.Name, d}
				}
			}
		}
	}

	var b strings.Builder
	b.WriteString("Validation: generator fidelity (realized interval vs phase specification)\n\n")
	fmt.Fprintf(&b, "  phases checked:                      %d\n", phases)
	fmt.Fprintf(&b, "  mean worst-class mix deviation:      %.3f (worst %.3f in %s)\n",
		mixDevSum/float64(phases), worstMix.value, worstMix.phase)
	fmt.Fprintf(&b, "  mean branch taken-rate deviation:    %.3f (worst %.3f in %s)\n",
		takenDevSum/float64(max(takenSamples, 1)), worstTaken.value, worstTaken.phase)
	b.WriteString("\nDeviations stem from loop-frequency weighting of the static code and from\n")
	b.WriteString("per-branch period rounding; both are small, so measured characteristics\n")
	b.WriteString("track the behaviour models they were generated from.\n")
	return b.String(), nil
}

// ValidationConvergence measures how quickly the 69-characteristic vector
// stabilizes as the interval length grows, justifying the configured
// granularity (the paper's section 2.9 discussion chooses 100M-instruction
// intervals for simulation practicality; here the same analysis picks the
// synthetic default).
func ValidationConvergence(e *Env) (string, error) {
	bm, err := e.Registry.Lookup("SPECint2006/astar")
	if err != nil {
		return "", err
	}
	lengths := []int{1000, 2000, 5000, 10000, 20000, 50000, 100000}
	ref := lengths[len(lengths)-1]

	measure := func(length int) ([]float64, error) {
		analyzer := mica.NewAnalyzer()
		total := bm.ScaledIntervals(e.Config.MaxIntervalsPerBenchmark)
		err := trace.GenerateInterval(bm.BehaviorAt(0, total), bm.IntervalSeed(0), length,
			func(ins *isa.Instruction) { analyzer.Record(ins) })
		if err != nil {
			return nil, err
		}
		return analyzer.Vector(), nil
	}
	refVec, err := measure(ref)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("interval_length", "mean_abs_deviation"))
	b.WriteString("Validation: characteristic convergence vs interval length\n")
	fmt.Fprintf(&b, "(deviation of bounded metrics from the %d-instruction reference, %s)\n\n", ref, bm.ID())
	for _, n := range lengths[:len(lengths)-1] {
		v, err := measure(n)
		if err != nil {
			return "", err
		}
		// Compare only bounded metrics (fractions/rates); footprints and
		// ILP grow with interval length by definition.
		var dev float64
		var cnt int
		for _, m := range mica.Metrics() {
			if m.Category == mica.CatMemoryFootprint || m.Category == mica.CatILP {
				continue
			}
			d := v[m.Index] - refVec[m.Index]
			if d < 0 {
				d = -d
			}
			dev += d
			cnt++
		}
		dev /= float64(cnt)
		fmt.Fprintf(&b, "  %7d instructions: mean abs deviation %.4f\n", n, dev)
		csv.WriteString(csvJoin(fmt.Sprint(n), fmt.Sprintf("%.5f", dev)))
	}
	if _, err := e.WriteArtifact("validation_convergence.csv", csv.String()); err != nil {
		return "", err
	}
	b.WriteString("\nDistributional characteristics converge within a few thousand instructions;\n")
	b.WriteString("the default interval length sits well past the knee. Footprint and ILP\n")
	b.WriteString("metrics scale with interval length by definition and are excluded here.\n")
	return b.String(), nil
}
