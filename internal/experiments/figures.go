package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mica"
	"repro/internal/viz"
)

// Fig1 sweeps the genetic algorithm over retained-characteristic counts
// and reports the distance correlation at each — the paper's Figure 1.
func Fig1(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	counts := []int{1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 20, 24}
	e.Logf("GA sweep over %d cardinalities...", len(counts))
	sweep, err := res.SweepKeyCharacteristics(counts)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("retained", "correlation"))
	b.WriteString("Figure 1: Pearson correlation of reduced-space vs full-space distances\n")
	b.WriteString("          as a function of the number of GA-retained characteristics\n\n")
	xs := make([]float64, len(sweep))
	ys := make([]float64, len(sweep))
	for i, r := range sweep {
		fmt.Fprintf(&b, "  %3d characteristics: correlation %.3f\n", r.Count, r.Selection.Fitness)
		csv.WriteString(csvJoin(fmt.Sprint(r.Count), fmt.Sprintf("%.4f", r.Selection.Fitness)))
		xs[i] = float64(r.Count)
		ys[i] = r.Selection.Fitness
	}
	chart := viz.LineChart{
		Title:  "Figure 1: distance correlation vs retained characteristics",
		XLabel: "number of retained characteristics",
		YLabel: "Pearson correlation coefficient",
		YMax:   1,
		Series: []viz.Series{{Name: "GA best", X: xs, Y: ys}},
	}
	svg, err := chart.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig1.svg", svg); err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig1.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig23 renders the prominent phases as kiviat plots with composition pies,
// grouped benchmark-specific / suite-specific / mixed — the paper's
// Figures 2 and 3.
func Fig23(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	sel, err := e.KeySelection()
	if err != nil {
		return "", err
	}
	metrics := mica.Metrics()
	names := make([]string, len(sel.Selected))
	for i, idx := range sel.Selected {
		names[i] = metrics[idx].Name
	}

	// Population statistics over the prominent phases' key values.
	rows := make([][]float64, len(res.Prominent))
	for i, p := range res.Prominent {
		row := make([]float64, len(sel.Selected))
		for j, idx := range sel.Selected {
			row[j] = p.RepVector[idx]
		}
		rows[i] = row
	}
	axes, err := viz.AxesFromPopulation(names, rows)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figures 2-3: %d prominent phases (%.1f%% coverage), kiviat axes: %s\n",
		len(res.Prominent), 100*res.ProminentCoverage(), strings.Join(names, " "))

	order := []core.PhaseKind{core.BenchmarkSpecific, core.SuiteSpecific, core.Mixed}
	var cells []viz.Cell
	for _, kind := range order {
		count := 0
		for pi, p := range res.Prominent {
			if p.Kind != kind {
				continue
			}
			count++
			cell := viz.Cell{
				Kiviat: viz.Kiviat{
					Title:  fmt.Sprintf("weight: %.2f%%", 100*p.Weight),
					Axes:   axes,
					Values: rows[pi],
				},
				Pie: viz.Pie{Title: p.Representative.PhaseName()},
			}
			var small float64
			smallCount := 0
			for _, c := range p.Composition {
				if c.ClusterShare < 0.02 && len(p.Composition) > 6 {
					small += c.ClusterShare
					smallCount++
					continue
				}
				cell.Pie.Slices = append(cell.Pie.Slices, viz.Slice{Label: c.BenchID, Fraction: c.ClusterShare})
				cell.Note = append(cell.Note, fmt.Sprintf("%s: %.2f%% of benchmark", c.BenchID, 100*c.BenchmarkFraction))
			}
			if smallCount > 0 {
				cell.Pie.Slices = append(cell.Pie.Slices, viz.Slice{
					Label: fmt.Sprintf("other (%d)", smallCount), Fraction: small})
			}
			cells = append(cells, cell)
		}
		fmt.Fprintf(&b, "  %-19s %3d prominent phases\n", kind.String()+":", count)
	}

	grid := viz.Grid{
		Title:   "Prominent phase behaviors (benchmark-specific, suite-specific, mixed)",
		Columns: 3,
		Cells:   cells,
	}
	svg, err := grid.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig23.svg", svg); err != nil {
		return "", err
	}

	// Also render the heaviest phase as ASCII for terminal users.
	if len(cells) > 0 {
		heavy := 0
		for i := 1; i < len(res.Prominent); i++ {
			if res.Prominent[i].Weight > res.Prominent[heavy].Weight {
				heavy = i
			}
		}
		k := viz.Kiviat{
			Title:  fmt.Sprintf("heaviest phase (%s, weight %.2f%%):", res.Prominent[heavy].Representative.PhaseName(), 100*res.Prominent[heavy].Weight),
			Axes:   axes,
			Values: rows[heavy],
		}
		ascii, err := k.ASCII(44)
		if err != nil {
			return "", err
		}
		b.WriteString("\n" + ascii)
	}
	return b.String(), nil
}

// Fig4 reports the workload-space coverage (clusters touched) per suite.
func Fig4(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	cov := res.SuiteCoverage()
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("suite", "clusters"))
	fmt.Fprintf(&b, "Figure 4: workload space coverage per benchmark suite (of %d clusters)\n\n", res.Clusters.K)
	var labels []string
	var values []float64
	for _, s := range e.sortedSuites() {
		fmt.Fprintf(&b, "  %-14s %4d clusters\n", s, cov[s])
		csv.WriteString(csvJoin(string(s), fmt.Sprint(cov[s])))
		labels = append(labels, string(s))
		values = append(values, float64(cov[s]))
	}
	chart := viz.BarChart{
		Title:  "Figure 4: workload space coverage per suite",
		YLabel: "number of clusters",
		Labels: labels,
		Values: values,
	}
	if ascii, err := chart.ASCII(40); err == nil {
		b.WriteString("\n" + ascii)
	}
	svg, err := chart.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig4.svg", svg); err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig4.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig5 reports the cumulative-coverage (diversity) curves per suite.
func Fig5(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("suite", "clusters", "cumulative_coverage"))
	b.WriteString("Figure 5: cumulative coverage per suite as a function of the number of clusters\n")
	b.WriteString("(lower curves = more clusters needed = higher diversity)\n\n")
	var series []viz.Series
	for _, s := range e.sortedSuites() {
		curve := res.CumulativeCoverage(s)
		xs := make([]float64, len(curve))
		for i := range curve {
			xs[i] = float64(i + 1)
			csv.WriteString(csvJoin(string(s), fmt.Sprint(i+1), fmt.Sprintf("%.4f", curve[i])))
		}
		series = append(series, viz.Series{Name: string(s), X: xs, Y: curve})
		fmt.Fprintf(&b, "  %-14s %3d clusters for 80%%, %3d for 90%%, %3d total\n",
			s, res.ClustersFor(s, 0.8), res.ClustersFor(s, 0.9), len(curve))
	}
	chart := viz.LineChart{
		Title:  "Figure 5: cumulative coverage per suite",
		XLabel: "number of clusters",
		YLabel: "cumulative coverage",
		YMax:   1,
		Series: series,
	}
	if ascii, err := chart.ASCII(48); err == nil {
		b.WriteString("\n" + ascii)
	}
	svg, err := chart.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig5.svg", svg); err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig5.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig6 reports the fraction of unique behaviour per suite.
func Fig6(e *Env) (string, error) {
	res, err := e.Result()
	if err != nil {
		return "", err
	}
	uf := res.UniqueFraction()
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("suite", "unique_fraction"))
	b.WriteString("Figure 6: fraction of each suite representing unique program behavior\n")
	b.WriteString("(behaviour in clusters containing data from that suite only)\n\n")
	var labels []string
	var values []float64
	for _, s := range e.sortedSuites() {
		fmt.Fprintf(&b, "  %-14s %5.1f%%\n", s, 100*uf[s])
		csv.WriteString(csvJoin(string(s), fmt.Sprintf("%.4f", uf[s])))
		labels = append(labels, string(s))
		values = append(values, 100*uf[s])
	}
	chart := viz.BarChart{
		Title:  "Figure 6: fraction unique behavior per suite",
		YLabel: "% unique behavior",
		Labels: labels,
		Values: values,
		YMax:   100,
	}
	if ascii, err := chart.ASCII(40); err == nil {
		b.WriteString("\n" + ascii)
	}
	svg, err := chart.SVG()
	if err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig6.svg", svg); err != nil {
		return "", err
	}
	if _, err := e.WriteArtifact("fig6.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}
