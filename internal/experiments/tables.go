package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mica"
)

// Table1 prints the 69 microarchitecture-independent characteristics by
// category, reproducing the paper's Table 1 inventory.
func Table1(e *Env) (string, error) {
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("index", "name", "category", "description"))

	b.WriteString("Table 1: microarchitecture-independent characteristics\n")
	fmt.Fprintf(&b, "%-22s %4s  %s\n", "category", "#", "characteristics")
	for c := 0; c < mica.NumCategories; c++ {
		cat := mica.Category(c)
		ms := mica.ByCategory(cat)
		names := make([]string, len(ms))
		for i, m := range ms {
			names[i] = m.Name
			csv.WriteString(csvJoin(fmt.Sprint(m.Index), m.Name, cat.String(), m.Description))
		}
		fmt.Fprintf(&b, "%-22s %4d  %s\n", cat, len(ms), strings.Join(names, " "))
	}
	fmt.Fprintf(&b, "%-22s %4d\n", "total", mica.NumMetrics)
	if _, err := e.WriteArtifact("table1.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Table2 runs the genetic algorithm at the configured cardinality
// (default 12) and prints the retained key characteristics, reproducing
// the paper's Table 2.
func Table2(e *Env) (string, error) {
	sel, err := e.KeySelection()
	if err != nil {
		return "", err
	}
	metrics := mica.Metrics()
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("rank", "name", "category", "description"))
	fmt.Fprintf(&b, "Table 2: %d key characteristics retained by the genetic algorithm\n", len(sel.Selected))
	fmt.Fprintf(&b, "(distance correlation vs full 69-characteristic space: %.3f; %d generations, %d evaluations)\n\n",
		sel.Fitness, sel.Generations, sel.Evaluations)
	for i, idx := range sel.Selected {
		m := metrics[idx]
		fmt.Fprintf(&b, "%3d  %-22s %-22s %s\n", i+1, m.Name, m.Category.String(), m.Description)
		csv.WriteString(csvJoin(fmt.Sprint(i+1), m.Name, m.Category.String(), m.Description))
	}
	if _, err := e.WriteArtifact("table2.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Table3 prints the benchmark inventory: the paper's Table 3 interval
// counts alongside this reproduction's scaled interval counts.
func Table3(e *Env) (string, error) {
	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin("suite", "benchmark", "paper_intervals", "scaled_intervals", "phases", "inputs"))

	b.WriteString("Table 3: benchmarks, paper 100M-instruction interval counts, and scaled counts\n")
	totalPaper, totalScaled, totalBench := 0, 0, 0
	for _, s := range e.sortedSuites() {
		fmt.Fprintf(&b, "\n%s\n", s)
		for _, bm := range e.Registry.BySuite(s) {
			scaled := bm.ScaledIntervals(e.Config.MaxIntervalsPerBenchmark)
			fmt.Fprintf(&b, "  %-12s paper=%7d scaled=%4d phases=%d inputs=%d\n",
				bm.Name, bm.PaperIntervals, scaled, len(bm.Phases), len(bm.InputList()))
			csv.WriteString(csvJoin(string(s), bm.Name,
				fmt.Sprint(bm.PaperIntervals), fmt.Sprint(scaled),
				fmt.Sprint(len(bm.Phases)), fmt.Sprint(len(bm.InputList()))))
			totalPaper += bm.PaperIntervals
			totalScaled += scaled
			totalBench++
		}
	}
	fmt.Fprintf(&b, "\ntotal: %d benchmarks, %d paper intervals, %d scaled intervals\n",
		totalBench, totalPaper, totalScaled)
	if _, err := e.WriteArtifact("table3.csv", csv.String()); err != nil {
		return "", err
	}
	return b.String(), nil
}
