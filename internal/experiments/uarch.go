package experiments

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// AblationUarch reproduces the argument behind the paper's methodology
// choice (sections 2.3 and 6.2, citing the authors' IEEE Micro work):
// characterizing workloads with microarchitecture-DEPENDENT metrics (IPC,
// cache and branch-predictor miss rates) is misleading, because the
// characterization changes with the machine it was measured on. The
// experiment measures a set of benchmarks on two machine configurations
// and counts how many benchmarks change their nearest neighbour between
// the two dependent characterizations; the microarchitecture-independent
// MICA characterization is a single, configuration-free reference.
func AblationUarch(e *Env) (string, error) {
	// A manageable, behaviourally diverse subset.
	names := []string{
		"BioPerf/grappa", "BioPerf/fasta", "BMW/face",
		"MediaBenchII/h264", "SPECint2000/twolf", "SPECint2000/gzip",
		"SPECint2006/astar", "SPECint2006/libquantum", "SPECint2006/mcf",
		"SPECfp2000/swim", "SPECfp2006/lbm", "SPECfp2006/povray",
	}
	length := max(50000, e.Config.IntervalLength)

	configs := []uarch.Config{uarch.SmallCore(), uarch.BigCore()}
	vectors := make([]*stats.Matrix, len(configs))
	for ci := range configs {
		vectors[ci] = stats.NewMatrix(len(names), len(uarch.VectorNames()))
	}

	for bi, name := range names {
		bm, err := e.Registry.Lookup(name)
		if err != nil {
			return "", err
		}
		total := bm.ScaledIntervals(e.Config.MaxIntervalsPerBenchmark)
		for ci, cfg := range configs {
			cpu, err := uarch.NewCPU(cfg)
			if err != nil {
				return "", err
			}
			err = trace.GenerateInterval(bm.BehaviorAt(0, total), bm.IntervalSeed(0), length,
				func(ins *isa.Instruction) { cpu.Record(ins) })
			if err != nil {
				return "", err
			}
			copy(vectors[ci].Row(bi), cpu.Metrics().Vector())
		}
	}

	// Nearest neighbour per benchmark under each configuration's
	// normalized dependent characterization.
	nearest := func(m *stats.Matrix) []int {
		norm, _ := m.Normalize()
		out := make([]int, m.Rows)
		for i := 0; i < m.Rows; i++ {
			best, bestD := -1, 0.0
			for j := 0; j < m.Rows; j++ {
				if j == i {
					continue
				}
				d := stats.EuclideanDistance(norm.Row(i), norm.Row(j))
				if best == -1 || d < bestD {
					best, bestD = j, d
				}
			}
			out[i] = best
		}
		return out
	}
	nnSmall := nearest(vectors[0])
	nnBig := nearest(vectors[1])

	var b strings.Builder
	var csv strings.Builder
	csv.WriteString(csvJoin(append([]string{"benchmark", "config"}, uarch.VectorNames()...)...))
	b.WriteString("Ablation (sections 2.3/6.2): microarchitecture-dependent characterization\n\n")
	fmt.Fprintf(&b, "  %-24s %18s %18s\n", "benchmark", "IPC small/big", "nearest small/big")
	changed := 0
	for bi, name := range names {
		for ci, cfg := range configs {
			fields := []string{name, cfg.Name}
			for _, v := range vectors[ci].Row(bi) {
				fields = append(fields, fmt.Sprintf("%.4f", v))
			}
			csv.WriteString(csvJoin(fields...))
		}
		mark := " "
		if nnSmall[bi] != nnBig[bi] {
			changed++
			mark = "!"
		}
		fmt.Fprintf(&b, "  %s %-22s %8.3f /%7.3f  %8s /%8s\n",
			mark, name,
			vectors[0].At(bi, 0), vectors[1].At(bi, 0),
			short(names[nnSmall[bi]]), short(names[nnBig[bi]]))
	}
	if _, err := e.WriteArtifact("ablation_uarch.csv", csv.String()); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\n%d of %d benchmarks change their nearest neighbour when the machine\n", changed, len(names))
	b.WriteString("configuration changes ('!'): a similarity analysis built on dependent metrics\n")
	b.WriteString("depends on the machine it ran on. The MICA characterization used everywhere\n")
	b.WriteString("else in this repository is measured once and holds for any machine — the\n")
	b.WriteString("paper's reason for going microarchitecture-independent.\n")
	return b.String(), nil
}

// short strips the suite prefix for table display.
func short(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}
