package fcache

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/obs"
)

// blob is a minimal BinaryMarshaler/Unmarshaler for exercising the
// structured-artifact entry points. failDecode simulates an artifact whose
// stored payload no longer decodes (a schema drift the version field
// missed, or in-payload corruption the checksum cannot see).
type blob struct {
	data       []byte
	failDecode bool
}

func (b *blob) MarshalBinary() ([]byte, error) {
	return append([]byte(nil), b.data...), nil
}

func (b *blob) UnmarshalBinary(data []byte) error {
	if b.failDecode {
		return errors.New("blob: refusing payload")
	}
	b.data = append([]byte(nil), data...)
	return nil
}

func TestBinaryRoundTrip(t *testing.T) {
	c := testCache(t)
	k := testKey()
	k.Kind = KindPCA
	var got blob
	if c.GetBinary(k, &got) {
		t.Fatal("empty cache returned a binary hit")
	}
	in := &blob{data: []byte("structured artifact payload")}
	if err := c.PutBinary(k, in); err != nil {
		t.Fatal(err)
	}
	if !c.GetBinary(k, &got) {
		t.Fatal("stored artifact missed")
	}
	if !bytes.Equal(got.data, in.data) {
		t.Fatalf("payload = %q, want %q", got.data, in.data)
	}
}

// TestBinaryUndecodableEntryIsDeleted stores a valid entry whose payload
// the unmarshaler rejects: GetBinary must miss AND remove the entry, so
// the producing stage regenerates instead of failing forever.
func TestBinaryUndecodableEntryIsDeleted(t *testing.T) {
	c := testCache(t)
	m := obs.New()
	c.SetMetrics(m)
	k := testKey()
	k.Kind = KindCluster
	if err := c.PutBinary(k, &blob{data: []byte("fine bytes, wrong shape")}); err != nil {
		t.Fatal(err)
	}
	if c.GetBinary(k, &blob{failDecode: true}) {
		t.Fatal("undecodable artifact reported as a hit")
	}
	if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
		t.Fatal("undecodable entry not removed")
	}
	if got := m.Counter("fcache.corrupt_deleted").Value(); got != 1 {
		t.Fatalf("fcache.corrupt_deleted = %d, want 1", got)
	}
	if got := m.Counter("fcache.misses.cluster").Value(); got != 1 {
		t.Fatalf("fcache.misses.cluster = %d, want 1", got)
	}
}

func TestKindNames(t *testing.T) {
	want := map[uint16]string{
		KindVector:   "vector",
		KindTrace:    "trace",
		KindShard:    "shard",
		KindPCA:      "pca",
		KindScores:   "scores",
		KindCluster:  "cluster",
		KindSummary:  "summary",
		KindTimeline: "timeline",
		KindBaseline: "baseline",
		KindRunning:  "running",
	}
	if len(want) != int(maxKind) {
		t.Fatalf("test covers %d kinds, maxKind = %d — update both", len(want), maxKind)
	}
	for kind, name := range want {
		if got := KindName(kind); got != name {
			t.Fatalf("KindName(%d) = %q, want %q", kind, got, name)
		}
	}
	if got := KindName(99); got != "kind99" {
		t.Fatalf("KindName(99) = %q", got)
	}
}

// TestPerKindCounters pins that traffic splits per artifact kind: a shard
// miss and hit must show under fcache.{misses,hits}.shard and also in the
// kind-blind totals.
func TestPerKindCounters(t *testing.T) {
	c := testCache(t)
	m := obs.New()
	c.SetMetrics(m)
	k := testKey()
	k.Kind = KindShard

	var b blob
	if c.GetBinary(k, &b) {
		t.Fatal("unexpected hit")
	}
	if err := c.PutBinary(k, &blob{data: []byte("shard bytes")}); err != nil {
		t.Fatal(err)
	}
	if !c.GetBinary(k, &b) {
		t.Fatal("stored shard missed")
	}

	val := func(name string) int64 { return m.Counter(name).Value() }
	if val("fcache.misses.shard") != 1 || val("fcache.hits.shard") != 1 {
		t.Fatalf("shard counters: hits=%d misses=%d, want 1/1",
			val("fcache.hits.shard"), val("fcache.misses.shard"))
	}
	if val("fcache.misses") != 1 || val("fcache.hits") != 1 {
		t.Fatalf("totals: hits=%d misses=%d, want 1/1", val("fcache.hits"), val("fcache.misses"))
	}
	if val("fcache.hits.vector") != 0 || val("fcache.misses.vector") != 0 {
		t.Fatal("shard traffic leaked into the vector counters")
	}
}
