// Package fcache is a content-addressed on-disk cache for expensive
// derived artifacts of the synthetic-workload pipeline — the 69-element
// MICA interval vectors, whose generation dominates the pipeline's
// runtime, encoded interval traces, and the stage artifacts of the
// pipeline engine (dataset shards, PCA models, score matrices, clustering
// results, stage summaries, per-benchmark timelines).
//
// Entries are keyed by everything that determines the artifact bit for
// bit: the artifact kind, a schema version (bumped whenever the producing
// kernel's observable output changes), the behaviour's full content hash,
// the interval seed, and the interval length. A cache hit therefore
// replaces regeneration exactly; any input or kernel change misses and
// regenerates.
//
// Entries are self-validating: each file stores a magic number, the full
// key, the payload length and an FNV-1a checksum. Get re-verifies all of
// them and treats any mismatch — truncation, corruption, a hash collision
// in the file name, a version bump — as a miss, deleting the bad entry on
// a best-effort basis. A cache can never return wrong data silently; the
// worst failure mode is regenerating.
//
// Writes are atomic (temp file + rename), so concurrent workers and
// processes may share one cache directory: duplicate Puts race benignly,
// with the last rename winning.
package fcache

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
)

// ErrVersionSkew marks an entry that is internally consistent but was
// produced under a different schema version than the reader expects — a
// cache shared between binaries built at different schema revisions, or
// an artifact planted by an out-of-date worker. Version skew is a miss
// like any other corruption (the entry is deleted and the artifact
// regenerated), but it is counted separately (fcache.version_skew) so an
// operator can tell a fleet-wide schema rollout from disk rot.
var ErrVersionSkew = errors.New("fcache: entry schema version mismatch")

// Artifact kinds. The kind participates in the key, so distinct artifact
// types for the same (behavior, seed, length) never collide.
const (
	// KindVector is a 69-element MICA characteristic vector.
	KindVector uint16 = 1
	// KindTrace is an encoded binary instruction trace.
	KindTrace uint16 = 2
	// KindShard is a characterized dataset shard: the unique interval
	// vectors of one deterministic subset of the benchmark registry.
	KindShard uint16 = 3
	// KindPCA is a fitted principal-components model.
	KindPCA uint16 = 4
	// KindScores is a rescaled-PCA score matrix.
	KindScores uint16 = 5
	// KindCluster is a fitted k-means clustering result.
	KindCluster uint16 = 6
	// KindSummary is the prominent-phase summary of a pipeline run.
	KindSummary uint16 = 7
	// KindTimeline is a per-benchmark phase-timeline analysis.
	KindTimeline uint16 = 8
	// KindBaseline is the incremental engine's baseline manifest: the
	// benchmark roster and analysis lineage of the latest cached run
	// under a given set of sampling parameters.
	KindBaseline uint16 = 9
	// KindRunning is a merge-able running-statistics accumulator (a
	// stats.Running plus its fold ledger) for cumulative timeline
	// summaries.
	KindRunning uint16 = 10

	// maxKind bounds the per-kind counter table; bump alongside new kinds.
	maxKind = KindRunning
)

// KindName returns the short lower-case name of an artifact kind, used to
// label the per-kind cache counters (fcache.hits.<name>, ...).
func KindName(kind uint16) string {
	switch kind {
	case KindVector:
		return "vector"
	case KindTrace:
		return "trace"
	case KindShard:
		return "shard"
	case KindPCA:
		return "pca"
	case KindScores:
		return "scores"
	case KindCluster:
		return "cluster"
	case KindSummary:
		return "summary"
	case KindTimeline:
		return "timeline"
	case KindBaseline:
		return "baseline"
	case KindRunning:
		return "running"
	default:
		return fmt.Sprintf("kind%d", kind)
	}
}

// magic identifies fcache entry files ("FCH2"). The v2 format widened
// the header so the payload starts 8-byte aligned; v1 ("FCH1") entries
// miss by magic, are deleted as corrupt, and regenerate under v2.
const magic = 0x46434832

// headerSize is the fixed entry prefix: magic(4) kind(2) pad(2)
// version(4) pad(4) behavior(8) seed(8) length(8) payloadLen(8). The
// payload begins at a multiple of 8, so an aligned float64 block can be
// decoded zero-copy by reinterpreting the entry buffer in place.
const headerSize = 4 + 2 + 2 + 4 + 4 + 8 + 8 + 8 + 8

// Key identifies one cached artifact.
type Key struct {
	// Kind is the artifact type (KindVector, KindTrace).
	Kind uint16
	// Version is the producer's schema version; bump it whenever the
	// producing code's observable output changes.
	Version uint32
	// Behavior is the full content hash of the generating behaviour
	// (trace.PhaseBehavior.BehaviorHash).
	Behavior uint64
	// Seed is the interval seed.
	Seed uint64
	// Length is the interval length in instructions.
	Length int64
}

// hash folds the key into the 64-bit value used for the file name.
func (k Key) hash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range []uint64{uint64(k.Kind), uint64(k.Version), k.Behavior, k.Seed, uint64(k.Length)} {
		h ^= v
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Cache is a handle on one cache directory. The zero value is invalid;
// use Open.
type Cache struct {
	dir string
	// hot is the directory's shared in-memory payload tier (see hot.go);
	// nil unless EnableHotTier was called for dir.
	hot *hotTier

	// Observability sinks, installed by SetMetrics. All are nil (no-op)
	// by default, so the uninstrumented hot path pays only nil checks.
	hits          *obs.Counter
	misses        *obs.Counter
	corrupt       *obs.Counter
	skew          *obs.Counter
	bytesRead     *obs.Counter
	bytesWritten  *obs.Counter
	hotHits       *obs.Counter
	hotMisses     *obs.Counter
	hotEvict      *obs.Counter
	hotBytes      *obs.Counter
	sfLeader      *obs.Counter
	sfShared      *obs.Counter
	claimWait     *obs.Counter
	claimTakeover *obs.Counter
	// kindHits/kindMisses split the traffic per artifact kind
	// (fcache.hits.vector, fcache.misses.shard, ...), indexed by Kind.
	kindHits   [maxKind + 1]*obs.Counter
	kindMisses [maxKind + 1]*obs.Counter

	// swept counts stale temp files removed at Open, held until a
	// collector is installed (SetMetrics flushes it).
	swept int64
}

// tempPrefix marks in-flight Put files; see Put and sweepStaleTemps.
const tempPrefix = ".put-"

// staleTempAge is how old a temp file must be before Open reclaims it. A
// live Put holds its temp file for milliseconds; anything this old is an
// orphan from a process that died between CreateTemp and rename.
const staleTempAge = time.Hour

// sweptDirs remembers which directories this process has already swept
// for stale temp files, so repeated Opens of the same cache (one per
// Characterize call on the hot path) do not re-walk the whole tree. A
// stale temp is by definition at least an hour old; once per process is
// plenty to reclaim it.
var sweptDirs sync.Map // dir string -> struct{}

// Open prepares a cache rooted at dir, creating it if needed. Orphaned
// Put temp files older than an hour are swept best-effort — at most once
// per directory per process — so a crashed writer cannot leak disk
// forever and a hot loop of Opens does not pay a directory walk each
// time.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("fcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fcache: %w", err)
	}
	c := &Cache{dir: dir, hot: hotFor(dir)}
	if _, seen := sweptDirs.LoadOrStore(dir, struct{}{}); !seen {
		c.swept = sweepStaleTemps(dir)
	}
	return c, nil
}

// SetMetrics installs an observability collector: cache traffic is
// recorded under the counters fcache.hits, fcache.misses,
// fcache.corrupt_deleted, fcache.bytes_read, fcache.bytes_written and
// fcache.temps_swept, plus the per-kind splits fcache.hits.<kind> and
// fcache.misses.<kind>. A nil collector (the default) keeps every sink a
// no-op.
func (c *Cache) SetMetrics(m *obs.Metrics) {
	c.hits = m.Counter("fcache.hits")
	c.misses = m.Counter("fcache.misses")
	c.corrupt = m.Counter("fcache.corrupt_deleted")
	c.skew = m.Counter("fcache.version_skew")
	c.bytesRead = m.Counter("fcache.bytes_read")
	c.bytesWritten = m.Counter("fcache.bytes_written")
	c.hotHits = m.Counter("fcache.hot_hits")
	c.hotMisses = m.Counter("fcache.hot_misses")
	c.hotEvict = m.Counter("fcache.hot_evictions")
	c.hotBytes = m.Counter("fcache.hot_bytes")
	c.sfLeader = m.Counter("fcache.sf_leader")
	c.sfShared = m.Counter("fcache.sf_shared")
	c.claimWait = m.Counter("fcache.claim_waits")
	c.claimTakeover = m.Counter("fcache.claim_takeovers")
	for kind := uint16(1); kind <= maxKind; kind++ {
		c.kindHits[kind] = m.Counter("fcache.hits." + KindName(kind))
		c.kindMisses[kind] = m.Counter("fcache.misses." + KindName(kind))
	}
	m.Counter("fcache.temps_swept").Add(c.swept)
}

// countHit/countMiss record one Get outcome on the global and per-kind
// counters (all nil-safe no-ops without a collector).
func (c *Cache) countHit(kind uint16) {
	c.hits.Inc()
	if kind <= maxKind {
		c.kindHits[kind].Inc()
	}
}

func (c *Cache) countMiss(kind uint16) {
	c.misses.Inc()
	if kind <= maxKind {
		c.kindMisses[kind].Inc()
	}
}

// sweepStaleTemps removes orphaned Put temp files and compute claim
// files under dir, best-effort (a cache must never fail a run over
// janitorial work), and returns how many it reclaimed. The sweep is
// age-gated on mtime: fresh temps and claims are left alone, because
// they may belong to a live writer or computing leader in a concurrent
// process — only files old enough that their owner must be dead are
// reclaimed.
func sweepStaleTemps(dir string) int64 {
	cutoff := time.Now().Add(-staleTempAge)
	var swept int64
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() ||
			(!strings.HasPrefix(d.Name(), tempPrefix) && !strings.HasSuffix(d.Name(), claimSuffix)) {
			return nil
		}
		info, err := d.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			return nil
		}
		if os.Remove(path) == nil {
			swept++
		}
		return nil
	})
	return swept
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path returns the entry file for a key: two single-byte hex levels fan
// entries out so no directory grows unboundedly.
func (c *Cache) path(k Key) string {
	h := k.hash()
	return filepath.Join(c.dir,
		fmt.Sprintf("%02x", byte(h>>56)),
		fmt.Sprintf("%02x", byte(h>>48)),
		fmt.Sprintf("%016x.fc", h))
}

// fnv1a is the 64-bit FNV-1a checksum of b.
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// encode renders the full entry file for key + payload.
func encode(k Key, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+8)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], magic)
	le.PutUint16(buf[4:], k.Kind)
	// buf[6:8] and buf[12:16] are zero padding (payload alignment).
	le.PutUint32(buf[8:], k.Version)
	le.PutUint64(buf[16:], k.Behavior)
	le.PutUint64(buf[24:], k.Seed)
	le.PutUint64(buf[32:], uint64(k.Length))
	le.PutUint64(buf[40:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	le.PutUint64(buf[headerSize+len(payload):], fnv1a(buf[:headerSize+len(payload)]))
	return buf
}

// decode validates an entry file against the expected key and returns its
// payload, or an error describing the first mismatch.
func decode(k Key, buf []byte) ([]byte, error) {
	le := binary.LittleEndian
	if len(buf) < headerSize+8 {
		return nil, fmt.Errorf("fcache: entry truncated (%d bytes)", len(buf))
	}
	if le.Uint32(buf[0:]) != magic {
		return nil, fmt.Errorf("fcache: bad magic")
	}
	got := Key{
		Kind:     le.Uint16(buf[4:]),
		Version:  le.Uint32(buf[8:]),
		Behavior: le.Uint64(buf[16:]),
		Seed:     le.Uint64(buf[24:]),
		Length:   int64(le.Uint64(buf[32:])),
	}
	// The version is compared explicitly, not just as part of the whole
	// key: an artifact produced under another schema version must never be
	// decoded as if it were current, and the skew is reported distinctly.
	if got.Version != k.Version {
		return nil, fmt.Errorf("%w (stored %d, want %d)", ErrVersionSkew, got.Version, k.Version)
	}
	if got != k {
		return nil, fmt.Errorf("fcache: key mismatch (stored %+v, want %+v)", got, k)
	}
	n := le.Uint64(buf[40:])
	if n != uint64(len(buf)-headerSize-8) {
		return nil, fmt.Errorf("fcache: payload length %d does not match file size", n)
	}
	body := buf[: headerSize+n : headerSize+n]
	if fnv1a(body) != le.Uint64(buf[headerSize+n:]) {
		return nil, fmt.Errorf("fcache: checksum mismatch")
	}
	return buf[headerSize : headerSize+n], nil
}

// Get returns the cached payload for k, or ok=false on any miss —
// absence, truncation, corruption, or a key/version mismatch. Invalid
// entries are removed best-effort so they are rebuilt cleanly; with a
// collector installed the removal is visible as fcache.corrupt_deleted
// rather than silent.
func (c *Cache) Get(k Key) (payload []byte, ok bool) {
	payload, ok = c.get(k)
	if ok {
		c.countHit(k.Kind)
	} else {
		c.countMiss(k.Kind)
	}
	return payload, ok
}

// get is Get without the hit/miss accounting, shared with GetVector
// (which has its own extra validity check and counts on its own). With a
// hot tier enabled, resident payloads are served from memory; disk hits
// warm the tier on the way out.
func (c *Cache) get(k Key) (payload []byte, ok bool) {
	if p, ok := c.hot.get(k); ok {
		c.hotHits.Inc()
		return p, true
	}
	if c.hot != nil {
		c.hotMisses.Inc()
	}
	p := c.path(k)
	buf, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	c.bytesRead.Add(int64(len(buf)))
	payload, err = decode(k, buf)
	if err != nil {
		os.Remove(p) // never trust it again
		c.hot.drop(k)
		c.corrupt.Inc()
		if errors.Is(err, ErrVersionSkew) {
			c.skew.Inc()
		}
		return nil, false
	}
	c.warmHot(k, payload)
	return payload, true
}

// warmHot populates the hot tier with a just-validated or just-written
// payload and charges the movement to the handle's counters.
func (c *Cache) warmHot(k Key, payload []byte) {
	if c.hot == nil {
		return
	}
	evicted, delta := c.hot.put(k, payload)
	c.hotEvict.Add(int64(evicted))
	c.hotBytes.Add(delta)
}

// Put stores payload under k, atomically: the entry is written to a
// unique temp file and renamed into place, so readers only ever observe
// complete entries. Errors are returned but safe to ignore — a failed Put
// only costs a future regeneration.
func (c *Cache) Put(k Key, payload []byte) error {
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("fcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), tempPrefix+"*")
	if err != nil {
		return fmt.Errorf("fcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encode(k, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("fcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("fcache: %w", err)
	}
	c.bytesWritten.Add(int64(headerSize + len(payload) + 8))
	c.warmHot(k, payload)
	return nil
}

// Discard removes the entry for k — disk and hot tier — and counts it
// as corrupt-deleted. For callers whose decoder rejected a payload that
// passed the cache's own checksum (an artifact-level schema skew): the
// entry must not be trusted again, exactly as if decode had failed.
func (c *Cache) Discard(k Key) {
	os.Remove(c.path(k))
	c.hot.drop(k)
	c.corrupt.Inc()
}

// GetVector fetches a cached float64 vector of exactly want elements.
// A stored vector of any other size is treated as corrupt (miss).
func (c *Cache) GetVector(k Key, want int) ([]float64, bool) {
	payload, ok := c.get(k)
	if !ok {
		c.countMiss(k.Kind)
		return nil, false
	}
	if len(payload) != 8*want {
		os.Remove(c.path(k))
		c.hot.drop(k)
		c.corrupt.Inc()
		c.countMiss(k.Kind)
		return nil, false
	}
	c.countHit(k.Kind)
	v := make([]float64, want)
	kernel.CopyFloats(v, payload)
	return v, true
}

// PutVector stores a float64 vector (bit-exact: values round-trip through
// their IEEE-754 bits, including negative zero and NaN payloads).
func (c *Cache) PutVector(k Key, v []float64) error {
	return c.Put(k, kernel.AppendFloats(make([]byte, 0, 8*len(v)), v))
}

// PutBinary stores a structured artifact (a matrix, a PCA model, a
// clustering result, a stage summary) through its binary marshalling,
// under the same checksummed, atomically-written entry format as every
// other kind.
func (c *Cache) PutBinary(k Key, v encoding.BinaryMarshaler) error {
	payload, err := v.MarshalBinary()
	if err != nil {
		return fmt.Errorf("fcache: encoding %s artifact: %w", KindName(k.Kind), err)
	}
	return c.Put(k, payload)
}

// GetBinary fetches a structured artifact into v. Any failure — absence,
// truncation, checksum or key mismatch, or a payload v refuses to
// unmarshal — is a miss; undecodable entries are deleted (and counted as
// fcache.corrupt_deleted) so the producing stage regenerates them instead
// of failing.
func (c *Cache) GetBinary(k Key, v encoding.BinaryUnmarshaler) bool {
	payload, ok := c.get(k)
	if !ok {
		c.countMiss(k.Kind)
		return false
	}
	if err := v.UnmarshalBinary(payload); err != nil {
		os.Remove(c.path(k))
		c.hot.drop(k)
		c.corrupt.Inc()
		c.countMiss(k.Kind)
		return false
	}
	c.countHit(k.Kind)
	return true
}
