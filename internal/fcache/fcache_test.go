package fcache

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKey() Key {
	return Key{Kind: KindVector, Version: 1, Behavior: 0xdeadbeefcafe, Seed: 42, Length: 20000}
}

func TestRoundTrip(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a hit")
	}
	payload := []byte("hello interval")
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestVectorRoundTripBitExact(t *testing.T) {
	c := testCache(t)
	k := testKey()
	v := []float64{0, 1.5, -0, math.Pi, math.Inf(1), math.NaN(), 1e-308}
	if err := c.PutVector(k, v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetVector(k, len(v))
	if !ok {
		t.Fatal("vector not found")
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(v[i]))
		}
	}
	// A size mismatch is corruption, not a partial answer.
	if _, ok := c.GetVector(k, len(v)+1); ok {
		t.Fatal("wrong-size vector request returned a hit")
	}
	// And the offending entry must have been dropped.
	if _, ok := c.Get(k); ok {
		t.Fatal("size-mismatched entry survived")
	}
}

func TestKeyFieldsDisambiguate(t *testing.T) {
	c := testCache(t)
	base := testKey()
	if err := c.Put(base, []byte("base")); err != nil {
		t.Fatal(err)
	}
	variants := []Key{
		{Kind: KindTrace, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version + 1, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior ^ 1, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed + 1, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length + 1},
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Fatalf("variant %d hit the base entry", i)
		}
	}
}

// TestCorruptEntryDetectedAndRemoved flips single bytes at several offsets
// of a valid entry and verifies each corruption is a miss that deletes the
// file — the acceptance criterion that a damaged cache is regenerated,
// never trusted.
func TestCorruptEntryDetectedAndRemoved(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	for _, offset := range []int{0, 5, 9, 15, 25, 36, headerSize, headerSize + 10, headerSize + len(payload) + 3} {
		c := testCache(t)
		k := testKey()
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		p := c.path(k)
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf[offset] ^= 0x40
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("corruption at offset %d went undetected", offset)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry at offset %d not removed", offset)
		}
		// After removal a fresh Put must succeed again.
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			t.Fatal("regenerated entry not readable")
		}
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.Put(k, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	p := c.path(k)
	buf, _ := os.ReadFile(p)
	for _, n := range []int{0, 3, headerSize - 1, headerSize + 2, len(buf) - 1} {
		if err := os.WriteFile(p, buf[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.PutVector(k, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	k2 := k
	k2.Version++
	if _, ok := c.GetVector(k2, 3); ok {
		t.Fatal("entry survived a schema version bump")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPutIsAtomicallyVisible(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	var stray []string
	filepath.Walk(c.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) != ".fc" {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) != 0 {
		t.Fatalf("stray files after Put: %v", stray)
	}
}
