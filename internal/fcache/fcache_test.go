package fcache

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKey() Key {
	return Key{Kind: KindVector, Version: 1, Behavior: 0xdeadbeefcafe, Seed: 42, Length: 20000}
}

func TestRoundTrip(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a hit")
	}
	payload := []byte("hello interval")
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("stored entry not found")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestVectorRoundTripBitExact(t *testing.T) {
	c := testCache(t)
	k := testKey()
	v := []float64{0, 1.5, -0, math.Pi, math.Inf(1), math.NaN(), 1e-308}
	if err := c.PutVector(k, v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetVector(k, len(v))
	if !ok {
		t.Fatal("vector not found")
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(v[i]))
		}
	}
	// A size mismatch is corruption, not a partial answer.
	if _, ok := c.GetVector(k, len(v)+1); ok {
		t.Fatal("wrong-size vector request returned a hit")
	}
	// And the offending entry must have been dropped.
	if _, ok := c.Get(k); ok {
		t.Fatal("size-mismatched entry survived")
	}
}

func TestKeyFieldsDisambiguate(t *testing.T) {
	c := testCache(t)
	base := testKey()
	if err := c.Put(base, []byte("base")); err != nil {
		t.Fatal(err)
	}
	variants := []Key{
		{Kind: KindTrace, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version + 1, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior ^ 1, Seed: base.Seed, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed + 1, Length: base.Length},
		{Kind: base.Kind, Version: base.Version, Behavior: base.Behavior, Seed: base.Seed, Length: base.Length + 1},
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Fatalf("variant %d hit the base entry", i)
		}
	}
}

// TestCorruptEntryDetectedAndRemoved flips single bytes at several offsets
// of a valid entry and verifies each corruption is a miss that deletes the
// file — the acceptance criterion that a damaged cache is regenerated,
// never trusted.
func TestCorruptEntryDetectedAndRemoved(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	for _, offset := range []int{0, 5, 9, 15, 25, 36, headerSize, headerSize + 10, headerSize + len(payload) + 3} {
		c := testCache(t)
		k := testKey()
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		p := c.path(k)
		buf, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		buf[offset] ^= 0x40
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("corruption at offset %d went undetected", offset)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry at offset %d not removed", offset)
		}
		// After removal a fresh Put must succeed again.
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			t.Fatal("regenerated entry not readable")
		}
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.Put(k, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	p := c.path(k)
	buf, _ := os.ReadFile(p)
	for _, n := range []int{0, 3, headerSize - 1, headerSize + 2, len(buf) - 1} {
		if err := os.WriteFile(p, buf[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.PutVector(k, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	k2 := k
	k2.Version++
	if _, ok := c.GetVector(k2, 3); ok {
		t.Fatal("entry survived a schema version bump")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPutIsAtomicallyVisible(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	var stray []string
	filepath.Walk(c.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(path) != ".fc" {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) != 0 {
		t.Fatalf("stray files after Put: %v", stray)
	}
}

// TestOpenSweepsStaleTemps plants one stale and one fresh orphaned Put
// temp file and verifies Open reclaims exactly the stale one — a crashed
// writer's litter is cleaned up, a live concurrent writer's file is not.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Dir(c.path(testKey()))
	stale := filepath.Join(sub, tempPrefix+"stale123")
	fresh := filepath.Join(sub, tempPrefix+"fresh456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	// Open sweeps each directory at most once per process; drop the memo
	// entry so the second Open behaves like a fresh process.
	sweptDirs.Delete(dir)
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file was swept: %v", err)
	}
	// The real entry is untouched and the sweep is visible once a
	// collector is installed.
	if _, ok := c2.Get(testKey()); !ok {
		t.Fatal("sweep damaged a valid entry")
	}
	m := obs.New()
	c2.SetMetrics(m)
	if got := m.Counter("fcache.temps_swept").Value(); got != 1 {
		t.Fatalf("fcache.temps_swept = %d, want 1", got)
	}
}

// TestMetricsCounters pins the full counter contract: hits, misses,
// corrupt-entry deletions and byte traffic, through both Get and
// GetVector.
func TestMetricsCounters(t *testing.T) {
	c := testCache(t)
	m := obs.New()
	c.SetMetrics(m)
	val := func(name string) int64 { return m.Counter(name).Value() }
	k := testKey()

	if _, ok := c.Get(k); ok {
		t.Fatal("unexpected hit")
	}
	if val("fcache.misses") != 1 || val("fcache.hits") != 0 {
		t.Fatalf("after absent Get: hits=%d misses=%d", val("fcache.hits"), val("fcache.misses"))
	}

	payload := []byte("0123456789abcdef")
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	entrySize := int64(headerSize + len(payload) + 8)
	if got := val("fcache.bytes_written"); got != entrySize {
		t.Fatalf("bytes_written = %d, want %d", got, entrySize)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("stored entry missed")
	}
	if val("fcache.hits") != 1 || val("fcache.bytes_read") != entrySize {
		t.Fatalf("after hit: hits=%d bytes_read=%d", val("fcache.hits"), val("fcache.bytes_read"))
	}

	// Corrupt the entry: the deletion must be counted, not silent.
	p := c.path(k)
	buf, _ := os.ReadFile(p)
	buf[headerSize] ^= 0xff
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt entry hit")
	}
	if val("fcache.corrupt_deleted") != 1 || val("fcache.misses") != 2 {
		t.Fatalf("after corrupt Get: corrupt_deleted=%d misses=%d",
			val("fcache.corrupt_deleted"), val("fcache.misses"))
	}

	// A size-mismatched vector is corruption through the GetVector path.
	kv := k
	kv.Seed++
	if err := c.PutVector(kv, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.GetVector(kv, 3); !ok || len(v) != 3 {
		t.Fatal("vector missed")
	}
	if val("fcache.hits") != 2 {
		t.Fatalf("vector hit not counted: hits=%d", val("fcache.hits"))
	}
	if err := c.PutVector(kv, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetVector(kv, 4); ok {
		t.Fatal("wrong-size vector hit")
	}
	if val("fcache.corrupt_deleted") != 2 {
		t.Fatalf("size-mismatch deletion not counted: corrupt_deleted=%d", val("fcache.corrupt_deleted"))
	}

	// Without a collector, the same paths still work (no-op sinks).
	c2 := testCache(t)
	if err := c2.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(k); !ok {
		t.Fatal("uninstrumented cache broken")
	}
}
