package fcache

// In-memory hot tier: a process-global, per-directory LRU of entry
// payloads with a byte budget, sitting in front of the disk cache. A
// long-lived service answering repeat queries pays a disk read (and a
// checksum pass) per artifact per run without it; with it, cache-warm
// reads are memory-speed. The tier is strictly a read-through/write-
// through copy of the disk cache: it is populated only from bytes that
// were just validated (a successful decode) or just written (a
// successful Put), it is keyed by the full entry Key (so version skew
// can never serve stale bytes), and hits hand out a private copy so no
// caller's zero-copy decode can alias another's.
//
// The tier is off by default — one-shot CLI runs keep their exact
// cold/warm counter semantics — and is enabled per directory by the
// characterization service via EnableHotTier before the first Open.

import (
	"sync"
)

// hotOverhead approximates the per-entry bookkeeping bytes charged
// against the budget on top of the payload itself.
const hotOverhead = 96

// hotEntry is one resident payload in the tier's LRU list.
type hotEntry struct {
	key        Key
	payload    []byte
	prev, next *hotEntry
}

// hotTier is one directory's in-memory payload LRU.
type hotTier struct {
	mu         sync.Mutex
	budget     int64
	total      int64
	entries    map[Key]*hotEntry
	head, tail *hotEntry // head is most recently used
}

// hotTiers maps cache directory -> *hotTier, process-global so every
// Cache handle on a directory shares one tier (and one budget).
var hotTiers sync.Map

// EnableHotTier installs an in-memory hot tier with the given byte
// budget in front of the disk cache rooted at dir. It applies to every
// Cache handle on dir, including ones already open. A budget <= 0
// removes the tier. Enabling is idempotent; re-enabling with a new
// budget resizes (and, if needed, evicts down to) the new budget.
func EnableHotTier(dir string, budget int64) {
	if budget <= 0 {
		hotTiers.Delete(dir)
		return
	}
	t := &hotTier{budget: budget, entries: make(map[Key]*hotEntry)}
	if prev, loaded := hotTiers.LoadOrStore(dir, t); loaded {
		pt := prev.(*hotTier)
		pt.mu.Lock()
		pt.budget = budget
		pt.evictLocked(nil)
		pt.mu.Unlock()
	}
}

// hotFor returns dir's hot tier, or nil when none is enabled.
func hotFor(dir string) *hotTier {
	if t, ok := hotTiers.Load(dir); ok {
		return t.(*hotTier)
	}
	return nil
}

// unlink removes e from the LRU list.
func (t *hotTier) unlink(e *hotEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (t *hotTier) pushFront(e *hotEntry) {
	e.next = t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

// get returns a private copy of the payload cached for k, if resident.
func (t *hotTier) get(k Key) ([]byte, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	e, ok := t.entries[k]
	if !ok {
		t.mu.Unlock()
		return nil, false
	}
	t.unlink(e)
	t.pushFront(e)
	p := append([]byte(nil), e.payload...)
	t.mu.Unlock()
	return p, true
}

// put stores a private copy of payload under k, evicting least recently
// used entries to fit the budget; a payload larger than the whole budget
// is not stored. Returns how many entries were evicted and the net byte
// delta, for the caller's counters.
func (t *hotTier) put(k Key, payload []byte) (evicted int, delta int64) {
	if t == nil {
		return 0, 0
	}
	size := int64(len(payload)) + hotOverhead
	t.mu.Lock()
	defer t.mu.Unlock()
	if size > t.budget {
		return 0, 0
	}
	before := t.total
	if e, ok := t.entries[k]; ok {
		t.total += int64(len(payload)) - int64(len(e.payload))
		e.payload = append([]byte(nil), payload...)
		t.unlink(e)
		t.pushFront(e)
	} else {
		e := &hotEntry{key: k, payload: append([]byte(nil), payload...)}
		t.entries[k] = e
		t.pushFront(e)
		t.total += size
	}
	evicted = t.evictLocked(t.entries[k])
	return evicted, t.total - before
}

// drop removes k from the tier (a corrupt or version-skewed disk entry
// was deleted; the tier must not outlive it).
func (t *hotTier) drop(k Key) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e, ok := t.entries[k]; ok {
		t.unlink(e)
		delete(t.entries, k)
		t.total -= int64(len(e.payload)) + hotOverhead
	}
	t.mu.Unlock()
}

// evictLocked evicts LRU entries (sparing keep) until total <= budget.
// Caller holds t.mu.
func (t *hotTier) evictLocked(keep *hotEntry) int {
	evicted := 0
	for t.total > t.budget && t.tail != nil {
		victim := t.tail
		if victim == keep {
			if victim.prev == nil {
				break
			}
			victim = victim.prev
		}
		t.unlink(victim)
		delete(t.entries, victim.key)
		t.total -= int64(len(victim.payload)) + hotOverhead
		evicted++
	}
	return evicted
}

// bytes returns the tier's current resident byte total.
func (t *hotTier) bytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
