package fcache

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/obs"
)

// hotTestCache opens a cache with a hot tier of the given budget and
// tears the tier down with the test (the tier registry is process
// global; leaking one would bleed into other tests' t.TempDir caches).
func hotTestCache(t *testing.T, budget int64) *Cache {
	t.Helper()
	dir := t.TempDir()
	EnableHotTier(dir, budget)
	t.Cleanup(func() { EnableHotTier(dir, 0) })
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHotTierServesFromMemory: once an entry is resident, the tier
// answers even after the disk entry disappears — proof the read never
// touched disk.
func TestHotTierServesFromMemory(t *testing.T) {
	c := hotTestCache(t, 1<<20)
	m := obs.New()
	c.SetMetrics(m)
	k := testKey()
	want := []byte("resident payload")
	if err := c.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(c.path(k)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("hot tier miss after Put: got (%q, %v)", got, ok)
	}
	rep := m.Snapshot()
	if rep.Counters["fcache.hot_hits"] == 0 {
		t.Fatal("hot hit not counted")
	}
}

// TestHotTierPrivateCopies: bytes handed out by the tier must not alias
// the tier's resident buffer or each other.
func TestHotTierPrivateCopies(t *testing.T) {
	c := hotTestCache(t, 1<<20)
	k := testKey()
	if err := c.Put(k, []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Get(k)
	a[0] = 'X'
	b, ok := c.Get(k)
	if !ok || string(b) != "pristine" {
		t.Fatalf("tier payload corrupted through a caller's buffer: %q", b)
	}
}

// TestHotTierEviction: a byte budget holds — inserting past it evicts
// the least recently used entries, and a recently touched entry is
// spared over a colder one.
func TestHotTierEviction(t *testing.T) {
	payload := make([]byte, 256)
	budget := int64(3) * (int64(len(payload)) + hotOverhead)
	c := hotTestCache(t, budget)
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = testKey()
		keys[i].Seed = uint64(i)
	}
	tier := c.hot

	for i := 0; i < 3; i++ {
		tier.put(keys[i], payload)
	}
	// Touch key 0 so key 1 is now the LRU victim.
	if _, ok := tier.get(keys[0]); !ok {
		t.Fatal("key 0 should be resident")
	}
	evicted, _ := tier.put(keys[3], payload)
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if _, ok := tier.get(keys[1]); ok {
		t.Fatal("key 1 (LRU) should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := tier.get(keys[i]); !ok {
			t.Fatalf("key %d should be resident", i)
		}
	}
	if got := tier.bytes(); got > budget {
		t.Fatalf("resident bytes %d exceed budget %d", got, budget)
	}
}

// TestHotTierOversizedPayload: a payload larger than the whole budget is
// passed through without evicting everything else.
func TestHotTierOversizedPayload(t *testing.T) {
	c := hotTestCache(t, 512)
	small := testKey()
	if err := c.Put(small, []byte("small")); err != nil {
		t.Fatal(err)
	}
	big := testKey()
	big.Seed = 999
	if err := c.Put(big, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.hot.get(big); ok {
		t.Fatal("oversized payload should not be resident")
	}
	if _, ok := c.hot.get(small); !ok {
		t.Fatal("small entry should have survived the oversized Put")
	}
}

// TestHotTierDropOnCorrupt: deleting a corrupt disk entry must also
// purge the hot copy, or the tier would serve bytes the disk disowned.
func TestHotTierDropOnCorrupt(t *testing.T) {
	c := hotTestCache(t, 1<<20)
	k := testKey()
	if err := c.Put(k, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	// A wrong-size vector read deletes the entry as corrupt.
	if _, ok := c.GetVector(k, 7); ok {
		t.Fatal("wrong-size vector should miss")
	}
	if _, ok := c.hot.get(k); ok {
		t.Fatal("hot tier retained a payload whose disk entry was deleted as corrupt")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry should be gone for every reader")
	}
}

// TestHotTierDisabled: budget <= 0 removes the tier; reads fall back to
// disk and Cache handles opened before the disable see it too (shared
// per-dir tier, nil-safe accessors).
func TestHotTierDisabledByDefault(t *testing.T) {
	c := testCache(t) // plain Open, no EnableHotTier
	if c.hot != nil {
		t.Fatal("hot tier should be off by default")
	}
	k := testKey()
	if err := c.Put(k, []byte("disk only")); err != nil {
		t.Fatal(err)
	}
	if p, ok := c.Get(k); !ok || string(p) != "disk only" {
		t.Fatalf("disk path broken without hot tier: (%q, %v)", p, ok)
	}
}

// TestHotTierResize: re-enabling with a smaller budget evicts down.
func TestHotTierResize(t *testing.T) {
	payload := make([]byte, 256)
	per := int64(len(payload)) + hotOverhead
	c := hotTestCache(t, 4*per)
	for i := 0; i < 4; i++ {
		k := testKey()
		k.Seed = uint64(i)
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.hot.bytes(); got != 4*per {
		t.Fatalf("resident bytes = %d, want %d", got, 4*per)
	}
	EnableHotTier(c.Dir(), 2*per)
	if got := c.hot.bytes(); got > 2*per {
		t.Fatalf("resize did not evict: %d bytes resident, budget %d", got, 2*per)
	}
}
