package fcache

// Concurrent-run isolation. The cache's atomic-rename writes make
// concurrent same-key writers *safe* (readers never see a torn entry)
// but not *cheap*: two runs that need the same missing artifact both
// burn a full compute, and only the last rename's bytes survive — which
// is fine for correctness (all writers produce identical bytes) and
// terrible for a multi-tenant service where tenants routinely submit the
// same job. GetOrCompute closes that gap at two levels:
//
//   - per-key in-process singleflight: concurrent goroutines (service
//     jobs) asking for one key elect a leader; the rest wait and read
//     the leader's entry from the cache (memory-speed with the hot tier).
//   - cross-process claim files: the leader stakes a sidecar ".claim"
//     file (O_CREATE|O_EXCL) next to the entry; another process finding
//     a fresh claim polls for the entry instead of computing. Claims are
//     advisory and age-gated — a claim whose holder died goes stale and
//     is taken over, and a waiter bounded out of patience computes
//     anyway. The worst failure mode is a duplicate compute (exactly
//     today's behavior), never a deadlock and never wrong bytes.

import (
	"os"
	"path/filepath"
	"sync"
	"time"
)

// claimSuffix marks in-flight compute claims; claim files live next to
// the entry they cover and are swept with the same age gate as temps.
const claimSuffix = ".claim"

// claimTTL is how long a claim is trusted without its holder refreshing
// the file's mtime. The leader touches its claim at claimTTL/2, so only
// a dead holder's claim ever goes stale. Variable for tests.
var claimTTL = 2 * time.Minute

// claimPoll is how often a claim waiter re-checks for the entry.
// Variable for tests.
var claimPoll = 20 * time.Millisecond

// flight is one in-process leader's in-flight computation.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// flights tracks in-flight computations per (dir, key-hash), process
// global so independent Cache handles on one directory still collapse
// concurrent computes.
var flights struct {
	sync.Mutex
	m map[string]*flight
}

// GetOrCompute returns the payload for k, computing it at most once per
// key across this process's goroutines and — best effort — across
// processes sharing the cache directory. computed reports whether this
// call ran compute itself (false: the payload was served from the cache,
// a concurrent leader, or another process). A compute error is returned
// to the leader and to every in-process waiter.
func (c *Cache) GetOrCompute(k Key, compute func() ([]byte, error)) (payload []byte, computed bool, err error) {
	if p, ok := c.Get(k); ok {
		return p, false, nil
	}
	id := c.path(k)
	for {
		flights.Lock()
		if flights.m == nil {
			flights.m = make(map[string]*flight)
		}
		if f, ok := flights.m[id]; ok {
			flights.Unlock()
			<-f.done
			c.sfShared.Inc()
			if f.err != nil {
				return nil, false, f.err
			}
			// Re-read rather than alias the leader's buffer: the entry is
			// on disk (and in the hot tier), and a fresh payload cannot
			// leak one caller's zero-copy decode into another's.
			if p, ok := c.Get(k); ok {
				return p, false, nil
			}
			// The leader computed but its Put failed; compute ourselves.
			continue
		}
		f := &flight{done: make(chan struct{})}
		flights.m[id] = f
		flights.Unlock()

		payload, computed, err = c.computeAsLeader(k, id, compute)
		f.payload, f.err = payload, err
		flights.Lock()
		delete(flights.m, id)
		flights.Unlock()
		close(f.done)
		return payload, computed, err
	}
}

// computeAsLeader is the in-process leader's path: stake the
// cross-process claim (or wait out another process's), compute, persist,
// release.
func (c *Cache) computeAsLeader(k Key, path string, compute func() ([]byte, error)) ([]byte, bool, error) {
	claim := path + claimSuffix
	deadline := time.Now().Add(claimTTL)
	for {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			break // claims are advisory; compute without one
		}
		cf, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			cf.Close()
			stop := refreshClaim(claim)
			payload, cerr := compute()
			if cerr == nil {
				if perr := c.Put(k, payload); perr == nil {
					c.sfLeader.Inc()
				}
			}
			stop()
			os.Remove(claim)
			return payload, true, cerr
		}
		if !os.IsExist(err) {
			break
		}
		// Another process holds the claim: poll for the entry, take over
		// if the claim goes stale, and give up waiting at the deadline.
		c.claimWait.Inc()
		fresh := true
		for fresh && time.Now().Before(deadline) {
			time.Sleep(claimPoll)
			if p, ok := c.Get(k); ok {
				c.sfShared.Inc()
				return p, false, nil
			}
			info, serr := os.Stat(claim)
			switch {
			case serr != nil:
				// Claim released without an entry appearing (the holder
				// failed); race the other waiters for a fresh claim.
				fresh = false
			case time.Since(info.ModTime()) > claimTTL:
				os.Remove(claim)
				c.claimTakeover.Inc()
				fresh = false
			}
		}
		if time.Now().Before(deadline) {
			continue // re-race for the claim
		}
		break // out of patience: duplicate compute beats a deadlock
	}
	payload, cerr := compute()
	if cerr == nil {
		_ = c.Put(k, payload)
	}
	return payload, true, cerr
}

// refreshClaim keeps a claim's mtime fresh while its holder computes,
// so a legitimately long compute is never mistaken for a dead holder.
// The returned stop func must be called before releasing the claim.
func refreshClaim(claim string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(claimTTL / 2)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := time.Now()
				_ = os.Chtimes(claim, now, now)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
