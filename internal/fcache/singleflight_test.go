package fcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestGetOrComputeSingleflight is the core concurrency contract: K
// goroutines asking for the same missing key run exactly one compute,
// and every caller gets identical bytes.
func TestGetOrComputeSingleflight(t *testing.T) {
	c := testCache(t)
	k := testKey()
	want := []byte("expensive artifact")
	var computes atomic.Int64

	const K = 16
	var wg sync.WaitGroup
	results := make([][]byte, K)
	errs := make([]error, K)
	start := make(chan struct{})
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p, _, err := c.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return append([]byte(nil), want...), nil
			})
			results[i], errs[i] = p, err
		}(i)
	}
	close(start)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("caller %d payload = %q, want %q", i, results[i], want)
		}
	}
	// The claim must be released once the flight lands.
	if _, err := os.Stat(c.path(k) + claimSuffix); !os.IsNotExist(err) {
		t.Fatalf("claim file left behind (stat err = %v)", err)
	}
}

// TestGetOrComputePrivateBuffers checks waiters never alias the leader's
// payload: mutating one caller's result must not corrupt another's.
func TestGetOrComputePrivateBuffers(t *testing.T) {
	c := testCache(t)
	k := testKey()
	const K = 8
	var wg sync.WaitGroup
	results := make([][]byte, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.GetOrCompute(k, func() ([]byte, error) {
				time.Sleep(10 * time.Millisecond)
				return []byte("pristine"), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	wg.Wait()
	results[0][0] = 'X'
	for i := 1; i < K; i++ {
		if string(results[i]) != "pristine" {
			t.Fatalf("caller %d saw mutation through caller 0's buffer: %q", i, results[i])
		}
	}
}

// TestGetOrComputeHit short-circuits entirely when the entry exists.
func TestGetOrComputeHit(t *testing.T) {
	c := testCache(t)
	k := testKey()
	if err := c.Put(k, []byte("cached")); err != nil {
		t.Fatal(err)
	}
	p, computed, err := c.GetOrCompute(k, func() ([]byte, error) {
		t.Fatal("compute ran despite a cache hit")
		return nil, nil
	})
	if err != nil || computed || string(p) != "cached" {
		t.Fatalf("got (%q, computed=%v, %v), want (cached, false, nil)", p, computed, err)
	}
}

// TestGetOrComputeErrorPropagates delivers the leader's compute error to
// every in-process waiter, and a later call retries.
func TestGetOrComputeErrorPropagates(t *testing.T) {
	c := testCache(t)
	k := testKey()
	boom := errors.New("generation failed")
	var computes atomic.Int64

	const K = 6
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond)
				return nil, boom
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d err = %v, want %v", i, err, boom)
		}
	}
	// The failed flight must not wedge the key: a retry computes afresh.
	p, computed, err := c.GetOrCompute(k, func() ([]byte, error) {
		computes.Add(1)
		return []byte("second try"), nil
	})
	if err != nil || !computed || string(p) != "second try" {
		t.Fatalf("retry got (%q, computed=%v, %v)", p, computed, err)
	}
}

// TestGetOrComputeClaimWait exercises the cross-process path: a claim
// planted by "another process" makes this handle poll; when the entry
// appears and the claim lifts, the waiter serves it without computing.
func TestGetOrComputeClaimWait(t *testing.T) {
	c := testCache(t)
	k := testKey()
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	claim := p + claimSuffix
	if err := os.WriteFile(claim, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// The "other process" finishes shortly: entry lands, claim lifts.
	go func() {
		time.Sleep(60 * time.Millisecond)
		if err := c.Put(k, []byte("from the other process")); err != nil {
			t.Error(err)
		}
		os.Remove(claim)
	}()

	payload, computed, err := c.GetOrCompute(k, func() ([]byte, error) {
		return nil, errors.New("should have waited, not computed")
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("waiter computed despite the other process's entry")
	}
	if string(payload) != "from the other process" {
		t.Fatalf("payload = %q", payload)
	}
}

// TestGetOrComputeStaleClaimTakeover: a claim whose holder died (old
// mtime, never refreshed) is taken over instead of waited on forever.
func TestGetOrComputeStaleClaimTakeover(t *testing.T) {
	oldTTL := claimTTL
	claimTTL = 80 * time.Millisecond
	defer func() { claimTTL = oldTTL }()

	c := testCache(t)
	m := obs.New()
	c.SetMetrics(m)
	k := testKey()
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	claim := p + claimSuffix
	if err := os.WriteFile(claim, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	dead := time.Now().Add(-time.Hour)
	if err := os.Chtimes(claim, dead, dead); err != nil {
		t.Fatal(err)
	}

	payload, computed, err := c.GetOrCompute(k, func() ([]byte, error) {
		return []byte("taken over"), nil
	})
	if err != nil || !computed || string(payload) != "taken over" {
		t.Fatalf("got (%q, computed=%v, %v), want takeover compute", payload, computed, err)
	}
	rep := m.Snapshot()
	if rep.Counters["fcache.claim_takeovers"] == 0 {
		t.Fatal("stale-claim takeover not counted")
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("takeover compute did not persist the entry")
	}
}

// TestGetOrComputeDistinctKeys: different keys do not serialize behind
// one another's flights.
func TestGetOrComputeDistinctKeys(t *testing.T) {
	c := testCache(t)
	const K = 8
	var wg sync.WaitGroup
	var computes atomic.Int64
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := testKey()
			k.Seed = uint64(i)
			p, _, err := c.GetOrCompute(k, func() ([]byte, error) {
				computes.Add(1)
				return []byte(fmt.Sprintf("artifact %d", i)), nil
			})
			if err != nil {
				t.Error(err)
			}
			if want := fmt.Sprintf("artifact %d", i); string(p) != want {
				t.Errorf("key %d payload = %q, want %q", i, p, want)
			}
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != K {
		t.Fatalf("computes = %d, want %d (one per distinct key)", n, K)
	}
}

// TestSweepAgeGating: the stale sweep is mtime-gated — a freshly created
// temp (a live Put in another process) and a fresh claim (a live compute)
// survive, while hour-old orphans of both flavors are reclaimed.
func TestSweepAgeGating(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "ab", "cd")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	freshTemp := filepath.Join(sub, tempPrefix+"fresh")
	freshClaim := filepath.Join(sub, "0123456789abcdef.fc"+claimSuffix)
	staleTemp := filepath.Join(sub, tempPrefix+"stale")
	staleClaim := filepath.Join(sub, "fedcba9876543210.fc"+claimSuffix)
	entry := filepath.Join(sub, "0123456789abcdef.fc")
	for _, f := range []string{freshTemp, freshClaim, staleTemp, staleClaim, entry} {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	for _, f := range []string{staleTemp, staleClaim, entry} {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}

	if swept := sweepStaleTemps(dir); swept != 2 {
		t.Fatalf("swept = %d, want 2 (the stale temp and the stale claim)", swept)
	}
	for _, f := range []string{freshTemp, freshClaim, entry} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("%s should have survived the sweep: %v", filepath.Base(f), err)
		}
	}
	for _, f := range []string{staleTemp, staleClaim} {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Fatalf("%s should have been reclaimed (err = %v)", filepath.Base(f), err)
		}
	}
}
