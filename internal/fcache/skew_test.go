package fcache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestVersionSkewIsMissAndCounted plants an entry whose stored header
// carries an older schema version at the current key's path — the shape
// an out-of-date writer (or a hand-copied cache) leaves behind. The read
// must miss, delete the entry, and count the skew distinctly from plain
// corruption.
func TestVersionSkewIsMissAndCounted(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	c.SetMetrics(m)

	k := Key{Kind: KindShard, Version: 3, Behavior: 11, Seed: 22, Length: 33}
	stale := k
	stale.Version = 2
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, encode(stale, []byte("old payload")), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(k); ok {
		t.Fatal("entry with skewed schema version served as a hit")
	}
	if got := m.Counter("fcache.version_skew").Value(); got != 1 {
		t.Errorf("fcache.version_skew = %d, want 1", got)
	}
	if got := m.Counter("fcache.corrupt_deleted").Value(); got != 1 {
		t.Errorf("fcache.corrupt_deleted = %d, want 1", got)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("skewed entry was not deleted")
	}

	// A genuinely corrupt entry must not count as skew.
	if err := c.Put(k, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := m.Counter("fcache.version_skew").Value(); got != 1 {
		t.Errorf("fcache.version_skew after corruption = %d, want still 1", got)
	}
	if got := m.Counter("fcache.corrupt_deleted").Value(); got != 2 {
		t.Errorf("fcache.corrupt_deleted = %d, want 2", got)
	}
}
