package ga

import (
	"fmt"
	"sync"

	"repro/internal/par"
	"repro/internal/stats"
)

// DistanceFitness builds the paper's fitness function: for a candidate
// subset of characteristics, it computes the pairwise Euclidean distances
// between the rows of data (the prominent phases) in the rescaled-PCA
// space of the reduced data set, and scores the subset by the Pearson
// correlation of those distances against the distances in the
// rescaled-PCA space of the full data set. The extra PCA step inside the
// fitness discounts correlation among the raw characteristics, exactly as
// section 2.7 describes.
//
// The returned Fitness is a pure function of its input (it only reads
// data and the precomputed reference distances), so it is safe for the
// concurrent evaluation Run performs when Config.Workers allows it: each
// evaluation borrows a pooled stats.PCAWorkspace, so the select -> PCA
// -> rescale -> distance chain runs on recycled buffers instead of
// allocating ~15k objects per genome.
//
// minPCStd is the retention threshold for principal components (the paper
// keeps components with standard deviation > 1).
func DistanceFitness(data *stats.Matrix, minPCStd float64) (Fitness, error) {
	if data.Rows < 3 {
		return nil, fmt.Errorf("ga: distance fitness needs at least 3 rows, have %d", data.Rows)
	}
	ref, err := rescaledDistances(data, minPCStd)
	if err != nil {
		return nil, fmt.Errorf("ga: reference distances: %w", err)
	}
	var pool sync.Pool // *stats.PCAWorkspace
	return func(selected []int) float64 {
		ws, _ := pool.Get().(*stats.PCAWorkspace)
		if ws == nil {
			ws = new(stats.PCAWorkspace)
		}
		score := evalDistanceFitness(ws, data, ref, selected, minPCStd)
		pool.Put(ws)
		return score
	}, nil
}

// evalDistanceFitness scores one genome on a borrowed workspace. Every
// intermediate result aliases ws and is fully overwritten on the next
// evaluation; the only value that escapes is the Pearson score.
func evalDistanceFitness(ws *stats.PCAWorkspace, data *stats.Matrix, ref []float64, selected []int, minPCStd float64) float64 {
	reduced, err := ws.SelectColumns(data, selected)
	if err != nil {
		return -1
	}
	pca, err := ws.ComputePCA(reduced, true)
	if err != nil {
		return -1
	}
	k := pca.NumRetained(minPCStd)
	scores, err := ws.RescaledScores(pca, reduced, k)
	if err != nil {
		return -1
	}
	return stats.Pearson(ref, ws.PairwiseDistances(scores))
}

// rescaledDistances normalizes the data, runs PCA, retains components with
// standard deviation above minPCStd, rescales the retained scores to unit
// variance, and returns the pairwise distances between the rows. The
// distance kernel stays single-worker here because rescaledDistances is
// itself invoked from Run's concurrent genome evaluations; nesting another
// fan-out per genome would only add scheduling overhead.
func rescaledDistances(data *stats.Matrix, minPCStd float64) ([]float64, error) {
	pca, err := stats.ComputePCA(data, true)
	if err != nil {
		return nil, err
	}
	k := pca.NumRetained(minPCStd)
	scores, err := pca.RescaledScores(data, k)
	if err != nil {
		return nil, err
	}
	return stats.PairwiseDistances(scores), nil
}

// SweepResult is one point of the correlation-vs-cardinality curve
// (Figure 1 of the paper).
type SweepResult struct {
	// Count is the number of retained characteristics.
	Count int
	// Selection is the best subset found at that cardinality.
	Selection Selection
}

// Sweep runs the genetic algorithm once per target cardinality and returns
// the best correlation found at each, reproducing Figure 1. cfg.TargetCount
// is overridden per run; each run's seed is derived from cfg.Seed with a
// SplitMix64-style hash of the cardinality index (so seed 0 is as valid as
// any other). Cardinalities are searched concurrently — the Figure 1 curve
// is embarrassingly parallel — and each slot's result is independent of
// the others, so the sweep is deterministic for any cfg.Workers.
func Sweep(numFeatures int, fitness Fitness, counts []int, cfg Config) ([]SweepResult, error) {
	out := make([]SweepResult, len(counts))
	errs := make([]error, len(counts))
	par.For(par.Workers(cfg.Workers), len(counts), func(i int) {
		runCfg := cfg
		runCfg.TargetCount = counts[i]
		runCfg.Seed = par.DeriveSeed(cfg.Seed, uint64(i))
		sel, err := Run(numFeatures, fitness, runCfg)
		if err != nil {
			errs[i] = fmt.Errorf("ga: sweep at count %d: %w", counts[i], err)
			return
		}
		out[i] = SweepResult{Count: counts[i], Selection: sel}
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
