package ga

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// phaseData builds a matrix shaped like real MICA data: most columns are
// (noisily) correlated views of a shared group structure, so that a small
// column subset can reproduce the full-space distances; the listed noise
// columns carry no structure.
func phaseData(rows, cols int, noise []int, seed int64) *stats.Matrix {
	rng := rand.New(rand.NewSource(seed))
	isNoise := map[int]bool{}
	for _, j := range noise {
		isNoise[j] = true
	}
	m := stats.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		group := float64(i % 4)
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			if isNoise[j] {
				row[j] = rng.NormFloat64()
			} else {
				row[j] = group*float64(1+j%3) + 0.15*rng.NormFloat64()
			}
		}
	}
	return m
}

func TestDistanceFitnessPrefersSpanningSubsets(t *testing.T) {
	// Two independent structure factors, each echoed by six columns. A
	// subset covering both factors reproduces the full-space distances;
	// a same-size subset stuck in one factor cannot.
	rng := rand.New(rand.NewSource(1))
	data := stats.NewMatrix(48, 12)
	for i := 0; i < 48; i++ {
		a := float64(i % 4)
		b := float64((i / 4) % 3)
		row := data.Row(i)
		for j := 0; j < 6; j++ {
			row[j] = a*float64(1+j%2) + 0.1*rng.NormFloat64()
		}
		for j := 6; j < 12; j++ {
			row[j] = b*float64(1+j%3) + 0.1*rng.NormFloat64()
		}
	}
	// A retention threshold of 1.0 would drop the second component of a
	// two-column subset outright (each factor has ~unit variance after
	// normalization); a lower threshold isolates the spanning property.
	fitness, err := DistanceFitness(data, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	spanning := fitness([]int{0, 6})
	oneFactor := fitness([]int{0, 1})
	if spanning <= oneFactor {
		t.Fatalf("spanning subset scored %v, one-factor subset %v", spanning, oneFactor)
	}
	if spanning < 0.9 {
		t.Fatalf("spanning subset correlation only %v", spanning)
	}
}

func TestDistanceFitnessFullSetNearPerfect(t *testing.T) {
	data := phaseData(30, 8, []int{1, 4}, 2)
	fitness, err := DistanceFitness(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	if got := fitness(all); got < 0.999 {
		t.Fatalf("full feature set correlation = %v", got)
	}
}

func TestDistanceFitnessInvalidSelection(t *testing.T) {
	data := phaseData(20, 6, []int{0}, 3)
	fitness, err := DistanceFitness(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fitness([]int{99}); got != -1 {
		t.Fatalf("out-of-range selection scored %v, want -1", got)
	}
}

func TestDistanceFitnessNeedsRows(t *testing.T) {
	if _, err := DistanceFitness(stats.NewMatrix(2, 5), 1.0); err == nil {
		t.Fatal("two-row fitness accepted")
	}
}

func TestGAWithDistanceFitnessEndToEnd(t *testing.T) {
	noise := []int{1, 6, 11}
	data := phaseData(36, 14, noise, 4)
	fitness, err := DistanceFitness(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Run(14, fitness, Config{TargetCount: 3, Seed: 5, MaxGenerations: 30, Patience: 15})
	if err != nil {
		t.Fatal(err)
	}
	// In the rescaled-PCA space every retained component has equal
	// weight, so the best subset mixes structured and noise columns
	// (matching the full space's composition) — the GA must at least
	// beat both naive hand-picked baselines.
	structured := fitness([]int{0, 2, 3})
	allNoise := fitness(noise)
	if sel.Fitness < structured || sel.Fitness < allNoise {
		t.Fatalf("GA fitness %v below baselines (structured %v, noise %v); selected %v",
			sel.Fitness, structured, allNoise, sel.Selected)
	}
	if sel.Fitness < 0.6 {
		t.Fatalf("GA-selected subset correlation %v too low (selected %v)", sel.Fitness, sel.Selected)
	}
}

// The pooled-workspace fitness must stay within a fixed allocation
// budget per evaluation: the select -> PCA -> rescale -> distance chain
// runs entirely on recycled buffers, so steady-state cost is dominated
// by sort.Slice's small fixed overhead inside ComputePCA. The ceiling
// has headroom for an occasional GC-cleared pool, but catches any
// regression back toward the ~15k objects/op the chain used to allocate.
func TestDistanceFitnessAllocBudget(t *testing.T) {
	data := phaseData(40, 20, []int{1, 6, 11}, 9)
	fitness, err := DistanceFitness(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	genomes := [][]int{
		{0, 2, 3, 7},
		{1, 4, 9, 12, 15},
		{0, 5, 6, 11, 17, 19},
		{2, 3, 8, 13},
	}
	for _, g := range genomes { // warm the workspace pool
		fitness(g)
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		fitness(genomes[i%len(genomes)])
		i++
	})
	const budget = 25
	if avg > budget {
		t.Fatalf("fitness evaluation averages %.1f allocs, budget %d", avg, budget)
	}
}
