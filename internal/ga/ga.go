// Package ga implements the genetic algorithm the paper uses to select a
// small set of key microarchitecture-independent characteristics: genomes
// are fixed-cardinality subsets of the 69 characteristics, evolved with
// mutation, crossover and migration across multiple populations; the
// fitness of a subset is the Pearson correlation between inter-phase
// distances in the reduced space and in the full space (both measured in
// rescaled-PCA coordinates).
//
// Fitness evaluation — the cost center of the search — is parallel and
// worker-count deterministic: every generation's offspring are bred
// serially from one rng (breeding never consumes fitness values of the
// offspring being bred), then the generation's distinct uncached genomes
// are evaluated concurrently and memoized in one batch. The evolved
// Selection, including its Evaluations count, is byte-identical for any
// Config.Workers.
package ga

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/par"
)

// Fitness scores a candidate subset of feature indices; higher is better.
// When Config.Workers permits more than one worker, distinct genomes are
// scored concurrently, so a Fitness must be safe for concurrent use (pure
// functions of their input, like DistanceFitness, are).
type Fitness func(selected []int) float64

// Config tunes the evolutionary search.
type Config struct {
	// TargetCount is the exact number of features every genome selects.
	TargetCount int
	// Populations is the number of independent populations (default 4).
	Populations int
	// PopulationSize is individuals per population (default 24).
	PopulationSize int
	// MaxGenerations bounds the search (default 60).
	MaxGenerations int
	// Patience stops the search after this many generations without
	// global improvement (default 12).
	Patience int
	// MutationRate is the per-offspring probability of a swap mutation
	// (default 0.3).
	MutationRate float64
	// MigrationInterval is how often (in generations) the populations
	// exchange their best individuals (default 5).
	MigrationInterval int
	// Elite is how many top individuals survive unchanged per
	// population (default 2).
	Elite int
	// Seed makes the search deterministic. Any value — including 0 — is
	// a valid, distinct seed; Sweep derives per-cardinality sub-seeds
	// from it with a SplitMix64-style hash. (core.Config.Validate treats
	// a zero Config.Seed as "inherit the pipeline seed" before the value
	// reaches this package; that inheritance is documented there.)
	Seed int64
	// Workers bounds fitness-evaluation parallelism; values < 1 mean
	// GOMAXPROCS. The search result is identical for any worker count.
	Workers int
	// Metrics, when non-nil, receives search counters (ga.runs,
	// ga.generations, ga.evaluations). Metrics never influence the
	// search, so determinism is unaffected.
	Metrics *obs.Metrics `json:"-"`
}

func (c *Config) withDefaults(numFeatures int) (Config, error) {
	out := *c
	if out.TargetCount < 1 || out.TargetCount > numFeatures {
		return out, fmt.Errorf("ga: target count %d out of [1,%d]", out.TargetCount, numFeatures)
	}
	if out.Populations <= 0 {
		out.Populations = 4
	}
	if out.PopulationSize <= 0 {
		out.PopulationSize = 24
	}
	if out.MaxGenerations <= 0 {
		out.MaxGenerations = 60
	}
	if out.Patience <= 0 {
		out.Patience = 12
	}
	if out.MutationRate <= 0 {
		out.MutationRate = 0.3
	}
	if out.MigrationInterval <= 0 {
		out.MigrationInterval = 5
	}
	if out.Elite <= 0 {
		out.Elite = 2
	}
	if out.Elite > out.PopulationSize/2 {
		out.Elite = out.PopulationSize / 2
	}
	out.Workers = par.Workers(out.Workers)
	return out, nil
}

// Selection is the result of a search.
type Selection struct {
	// Selected are the chosen feature indices, sorted ascending.
	Selected []int
	// Fitness is the score of the selection.
	Fitness float64
	// Generations is how many generations were evolved.
	Generations int
	// Evaluations counts distinct fitness evaluations performed.
	Evaluations int
}

type individual struct {
	genes   []int // sorted feature indices, exactly TargetCount of them
	fitness float64
}

func genomeKey(genes []int) string {
	b := make([]byte, 0, len(genes)*2)
	for _, g := range genes {
		b = append(b, byte(g), byte(g>>8))
	}
	return string(b)
}

// memo caches genome fitness and evaluates batches of genomes. The cache
// needs no lock: Evaluate dedupes the batch serially, fans out fitness
// calls only for distinct uncached genomes (each writing its own slot),
// and stores the results serially — which also makes the evaluation count
// deterministic, where a racy per-lookup cache could score one genome
// twice under contention.
type memo struct {
	fitness Fitness
	workers int
	cache   map[string]float64
	evals   int
}

// Evaluate returns the fitness of each genome in genes, scoring uncached
// distinct genomes concurrently and memoizing them in first-appearance
// order.
func (m *memo) Evaluate(genes [][]int) []float64 {
	var todoKeys []string
	var todoGenes [][]int
	pending := map[string]bool{}
	for _, g := range genes {
		key := genomeKey(g)
		if _, ok := m.cache[key]; ok || pending[key] {
			continue
		}
		pending[key] = true
		todoKeys = append(todoKeys, key)
		todoGenes = append(todoGenes, g)
	}
	vals := make([]float64, len(todoGenes))
	par.For(m.workers, len(todoGenes), func(i int) {
		vals[i] = m.fitness(todoGenes[i])
	})
	for i, key := range todoKeys {
		m.cache[key] = vals[i]
		m.evals++
	}
	out := make([]float64, len(genes))
	for i, g := range genes {
		out[i] = m.cache[genomeKey(g)]
	}
	return out
}

// Run evolves feature subsets of size cfg.TargetCount drawn from
// [0, numFeatures) to maximize fitness.
func Run(numFeatures int, fitness Fitness, cfg Config) (Selection, error) {
	if numFeatures < 1 {
		return Selection{}, fmt.Errorf("ga: no features to select from")
	}
	if fitness == nil {
		return Selection{}, fmt.Errorf("ga: nil fitness function")
	}
	c, err := cfg.withDefaults(numFeatures)
	if err != nil {
		return Selection{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	mm := &memo{fitness: fitness, workers: c.Workers, cache: map[string]float64{}}

	// Initialize populations with random subsets: breed every genome
	// first (one rng, fixed order), then score them in one batch.
	pops := make([][]individual, c.Populations)
	var initGenes [][]int
	for p := range pops {
		pops[p] = make([]individual, c.PopulationSize)
		for i := range pops[p] {
			genes := randomSubset(numFeatures, c.TargetCount, rng)
			pops[p][i] = individual{genes: genes}
			initGenes = append(initGenes, genes)
		}
	}
	initFit := mm.Evaluate(initGenes)
	for p := range pops {
		for i := range pops[p] {
			pops[p][i].fitness = initFit[p*c.PopulationSize+i]
		}
		sortPop(pops[p])
	}

	best := pops[0][0]
	for _, pop := range pops {
		if pop[0].fitness > best.fitness {
			best = pop[0]
		}
	}

	stale := 0
	gen := 0
	for ; gen < c.MaxGenerations && stale < c.Patience; gen++ {
		// Breed all populations' offspring serially (rng order is the
		// same as a fully serial run: selection reads only the previous
		// generation's fitness), then evaluate the generation's fresh
		// genomes in one concurrent batch.
		nexts := make([][]individual, len(pops))
		var freshGenes [][]int
		for p := range pops {
			next, fresh := breed(pops[p], numFeatures, c, rng)
			nexts[p] = next
			freshGenes = append(freshGenes, fresh...)
		}
		freshFit := mm.Evaluate(freshGenes)

		improved := false
		fi := 0
		for p := range pops {
			next := nexts[p]
			for i := c.Elite; i < len(next); i++ {
				next[i].fitness = freshFit[fi]
				fi++
			}
			sortPop(next)
			pops[p] = next
			if next[0].fitness > best.fitness {
				best = next[0]
				improved = true
			}
		}
		// Migration: ring-exchange of the best individuals.
		if (gen+1)%c.MigrationInterval == 0 && len(pops) > 1 {
			for p := range pops {
				src := pops[p][0]
				dst := pops[(p+1)%len(pops)]
				dst[len(dst)-1] = individual{genes: append([]int(nil), src.genes...), fitness: src.fitness}
				sortPop(dst)
			}
		}
		if improved {
			stale = 0
		} else {
			stale++
		}
	}

	sel := Selection{
		Selected:    append([]int(nil), best.genes...),
		Fitness:     best.fitness,
		Generations: gen,
		Evaluations: mm.evals,
	}
	sort.Ints(sel.Selected)
	c.Metrics.Add("ga.runs", 1)
	c.Metrics.Add("ga.generations", int64(gen))
	c.Metrics.Add("ga.evaluations", int64(mm.evals))
	return sel, nil
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(a, b int) bool { return pop[a].fitness > pop[b].fitness })
}

// breed builds the next generation of one population — elites first, then
// tournament/crossover/mutation offspring — without scoring it. The genes
// of the non-elite offspring are returned for batch evaluation.
func breed(pop []individual, numFeatures int, c Config, rng *rand.Rand) ([]individual, [][]int) {
	next := make([]individual, 0, len(pop))
	// Elitism: fitness already known.
	for i := 0; i < c.Elite; i++ {
		next = append(next, pop[i])
	}
	fresh := make([][]int, 0, len(pop)-c.Elite)
	for len(next) < len(pop) {
		a := tournament(pop, rng)
		b := tournament(pop, rng)
		genes := crossover(a.genes, b.genes, c.TargetCount, numFeatures, rng)
		if rng.Float64() < c.MutationRate {
			mutate(genes, numFeatures, rng)
		}
		sort.Ints(genes)
		next = append(next, individual{genes: genes})
		fresh = append(fresh, genes)
	}
	return next, fresh
}

func tournament(pop []individual, rng *rand.Rand) individual {
	const size = 3
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < size; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fitness > best.fitness {
			best = c
		}
	}
	return best
}

// crossover unions the parents' genes and samples target genes from the
// union, favouring genes present in both parents.
func crossover(a, b []int, target, numFeatures int, rng *rand.Rand) []int {
	inBoth := make([]int, 0, target)
	inOne := make([]int, 0, 2*target)
	seenA := make(map[int]bool, len(a))
	for _, g := range a {
		seenA[g] = true
	}
	seenB := make(map[int]bool, len(b))
	for _, g := range b {
		seenB[g] = true
		if seenA[g] {
			inBoth = append(inBoth, g)
		} else {
			inOne = append(inOne, g)
		}
	}
	for _, g := range a {
		if !seenB[g] {
			inOne = append(inOne, g)
		}
	}
	genes := make([]int, 0, target)
	genes = append(genes, inBoth...)
	rng.Shuffle(len(inOne), func(i, j int) { inOne[i], inOne[j] = inOne[j], inOne[i] })
	for _, g := range inOne {
		if len(genes) >= target {
			break
		}
		genes = append(genes, g)
	}
	// Pad with random unused features if the union was too small.
	used := make(map[int]bool, len(genes))
	for _, g := range genes {
		used[g] = true
	}
	for len(genes) < target {
		g := rng.Intn(numFeatures)
		if !used[g] {
			used[g] = true
			genes = append(genes, g)
		}
	}
	return genes[:target]
}

// mutate swaps one selected gene for an unselected one, preserving
// cardinality.
func mutate(genes []int, numFeatures int, rng *rand.Rand) {
	used := make(map[int]bool, len(genes))
	for _, g := range genes {
		used[g] = true
	}
	if len(genes) == numFeatures {
		return // nothing outside the genome to swap in
	}
	var candidate int
	for {
		candidate = rng.Intn(numFeatures)
		if !used[candidate] {
			break
		}
	}
	genes[rng.Intn(len(genes))] = candidate
}

func randomSubset(n, k int, rng *rand.Rand) []int {
	perm := rng.Perm(n)
	genes := append([]int(nil), perm[:k]...)
	sort.Ints(genes)
	return genes
}
