package ga

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// plantedFitness rewards overlap with a planted target subset.
func plantedFitness(target []int) Fitness {
	set := map[int]bool{}
	for _, g := range target {
		set[g] = true
	}
	return func(selected []int) float64 {
		hits := 0
		for _, g := range selected {
			if set[g] {
				hits++
			}
		}
		return float64(hits) / float64(len(target))
	}
}

func TestRunFindsPlantedSubset(t *testing.T) {
	target := []int{3, 11, 17, 29, 41}
	sel, err := Run(50, plantedFitness(target), Config{TargetCount: 5, Seed: 1, MaxGenerations: 80, Patience: 40})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Fitness < 0.999 {
		t.Fatalf("GA found fitness %v, selected %v", sel.Fitness, sel.Selected)
	}
	if len(sel.Selected) != 5 {
		t.Fatalf("selected %d genes, want 5", len(sel.Selected))
	}
	for i, g := range sel.Selected {
		if g != target[i] {
			t.Fatalf("selected %v, want %v", sel.Selected, target)
		}
	}
}

func TestRunRespectsCardinality(t *testing.T) {
	fitness := func(sel []int) float64 { return float64(len(sel)) }
	for _, count := range []int{1, 7, 20} {
		sel, err := Run(30, fitness, Config{TargetCount: count, Seed: 2, MaxGenerations: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Selected) != count {
			t.Fatalf("cardinality %d not respected: got %d", count, len(sel.Selected))
		}
		seen := map[int]bool{}
		for _, g := range sel.Selected {
			if g < 0 || g >= 30 {
				t.Fatalf("gene %d out of range", g)
			}
			if seen[g] {
				t.Fatalf("duplicate gene %d", g)
			}
			seen[g] = true
		}
		if !sort.IntsAreSorted(sel.Selected) {
			t.Fatalf("selection not sorted: %v", sel.Selected)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	f := plantedFitness([]int{2, 4, 8})
	a, err := Run(20, f, Config{TargetCount: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(20, f, Config{TargetCount: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness || len(a.Selected) != len(b.Selected) {
		t.Fatal("same seed produced different results")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("same seed produced different selections")
		}
	}
}

func TestRunValidation(t *testing.T) {
	f := plantedFitness([]int{0})
	if _, err := Run(0, f, Config{TargetCount: 1}); err == nil {
		t.Fatal("zero features accepted")
	}
	if _, err := Run(10, nil, Config{TargetCount: 1}); err == nil {
		t.Fatal("nil fitness accepted")
	}
	if _, err := Run(10, f, Config{TargetCount: 0}); err == nil {
		t.Fatal("zero cardinality accepted")
	}
	if _, err := Run(10, f, Config{TargetCount: 11}); err == nil {
		t.Fatal("cardinality beyond feature count accepted")
	}
}

func TestRunFullCardinality(t *testing.T) {
	// Selecting all features leaves nothing to mutate; must not hang.
	sel, err := Run(6, func([]int) float64 { return 1 }, Config{TargetCount: 6, Seed: 1, MaxGenerations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 6 {
		t.Fatalf("selected %v", sel.Selected)
	}
}

func TestEvaluationsCounted(t *testing.T) {
	// Fitness functions run concurrently when Workers > 1, so the
	// counter must be atomic (the Fitness contract requires concurrent
	// safety).
	var calls atomic.Int64
	f := func(sel []int) float64 { calls.Add(1); return 0 }
	for _, workers := range []int{1, 4} {
		calls.Store(0)
		sel, err := Run(12, f, Config{TargetCount: 3, Seed: 4, MaxGenerations: 6, Patience: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if int64(sel.Evaluations) != calls.Load() {
			t.Fatalf("workers=%d: Evaluations = %d, fitness called %d times", workers, sel.Evaluations, calls.Load())
		}
		if calls.Load() == 0 {
			t.Fatal("fitness never called")
		}
	}
}

// TestRunWorkerCountInvariance is the tentpole contract: the evolved
// selection — genes, fitness, generation count and even the number of
// distinct evaluations — must be identical for any Config.Workers, because
// breeding is serial and each generation's uncached genomes are deduped
// before the concurrent scoring batch.
func TestRunWorkerCountInvariance(t *testing.T) {
	f := plantedFitness([]int{2, 5, 11, 17})
	ref, err := Run(30, f, Config{TargetCount: 4, Seed: 6, MaxGenerations: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Run(30, f, Config{TargetCount: 4, Seed: 6, MaxGenerations: 20, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Fitness != ref.Fitness || got.Generations != ref.Generations || got.Evaluations != ref.Evaluations {
			t.Fatalf("workers=%d diverged: %+v vs %+v", workers, got, ref)
		}
		for i := range ref.Selected {
			if got.Selected[i] != ref.Selected[i] {
				t.Fatalf("workers=%d selected %v, workers=1 selected %v", workers, got.Selected, ref.Selected)
			}
		}
	}
}

func TestSweepWorkerCountInvariance(t *testing.T) {
	f := plantedFitness([]int{0, 1, 2, 3, 4, 5})
	counts := []int{2, 4, 6}
	ref, err := Sweep(16, f, counts, Config{Seed: 5, MaxGenerations: 15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep(16, f, counts, Config{Seed: 5, MaxGenerations: 15, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i].Count != ref[i].Count || got[i].Selection.Fitness != ref[i].Selection.Fitness {
			t.Fatalf("sweep slot %d diverged across worker counts", i)
		}
		for j := range ref[i].Selection.Selected {
			if got[i].Selection.Selected[j] != ref[i].Selection.Selected[j] {
				t.Fatalf("sweep slot %d selected different genes across worker counts", i)
			}
		}
	}
}

// TestSeedZeroValid pins the Seed == 0 semantics at the ga layer: a valid,
// deterministic seed distinct from seed 1.
func TestSeedZeroValid(t *testing.T) {
	f := plantedFitness([]int{1, 3, 5})
	a, err := Run(40, f, Config{TargetCount: 3, Seed: 0, MaxGenerations: 3, Patience: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(40, f, Config{TargetCount: 3, Seed: 0, MaxGenerations: 3, Patience: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness || a.Evaluations != b.Evaluations {
		t.Fatal("seed 0 not deterministic")
	}
	c, err := Run(40, f, Config{TargetCount: 3, Seed: 1, MaxGenerations: 3, Patience: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluations == c.Evaluations && a.Fitness == c.Fitness && equalInts(a.Selected, c.Selected) {
		t.Fatal("seed 0 and seed 1 ran identical searches; 0 looks like a sentinel")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMutatePreservesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		genes := randomSubset(20, 6, rng)
		mutate(genes, 20, rng)
		seen := map[int]bool{}
		for _, g := range genes {
			if g < 0 || g >= 20 {
				t.Fatalf("mutated gene %d out of range", g)
			}
			if seen[g] {
				t.Fatalf("mutation created duplicate: %v", genes)
			}
			seen[g] = true
		}
		if len(genes) != 6 {
			t.Fatalf("mutation changed cardinality: %v", genes)
		}
	}
}

func TestCrossoverPreservesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(a8, b8 uint8) bool {
		n := 24
		k := 5
		a := randomSubset(n, k, rng)
		b := randomSubset(n, k, rng)
		child := crossover(a, b, k, n, rng)
		if len(child) != k {
			return false
		}
		seen := map[int]bool{}
		for _, g := range child {
			if g < 0 || g >= n || seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverKeepsSharedGenes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := []int{1, 2, 3, 4}
	b := []int{1, 2, 9, 10}
	for trial := 0; trial < 100; trial++ {
		child := crossover(a, b, 4, 20, rng)
		has1, has2 := false, false
		for _, g := range child {
			if g == 1 {
				has1 = true
			}
			if g == 2 {
				has2 = true
			}
		}
		if !has1 || !has2 {
			t.Fatalf("crossover dropped shared genes: %v", child)
		}
	}
}

func TestGenomeKeyDistinguishes(t *testing.T) {
	if genomeKey([]int{1, 2}) == genomeKey([]int{1, 3}) {
		t.Fatal("genome keys collide")
	}
	if genomeKey([]int{1, 2}) != genomeKey([]int{1, 2}) {
		t.Fatal("genome key not deterministic")
	}
}

func TestSweepShape(t *testing.T) {
	f := plantedFitness([]int{0, 1, 2, 3, 4, 5, 6, 7})
	counts := []int{1, 4, 8}
	results, err := Sweep(16, f, counts, Config{Seed: 5, MaxGenerations: 40, Patience: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(counts) {
		t.Fatalf("sweep returned %d results", len(results))
	}
	for i, r := range results {
		if r.Count != counts[i] {
			t.Fatalf("sweep order wrong: %v", r.Count)
		}
		if len(r.Selection.Selected) != counts[i] {
			t.Fatalf("sweep cardinality wrong at %d", counts[i])
		}
	}
	// Bigger budgets can only capture more of the planted set.
	if results[2].Selection.Fitness < results[0].Selection.Fitness {
		t.Fatalf("sweep fitness decreased with budget: %v", results)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{TargetCount: 3}
	c, err := cfg.withDefaults(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Populations == 0 || c.PopulationSize == 0 || c.MaxGenerations == 0 || c.Patience == 0 ||
		c.MutationRate == 0 || c.MigrationInterval == 0 || c.Elite == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if _, err := (&Config{TargetCount: -1}).withDefaults(10); err == nil {
		t.Fatal("negative target accepted")
	}
}
