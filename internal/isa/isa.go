// Package isa defines the abstract instruction-set model that the synthetic
// workload generator emits and the MICA analyzer consumes.
//
// The model is deliberately semantics-free: an instruction carries only the
// information the 69 microarchitecture-independent characteristics of
// Hoste & Eeckhout (ISPASS 2008) depend on — its operation class, its
// register operands, its memory address (for loads/stores), its program
// counter, and its branch outcome (for control instructions).
package isa

import "fmt"

// OpClass identifies the operation class of an instruction. The 20 classes
// back the 20 instruction-mix characteristics of the paper's Table 1
// ("percentage memory reads, memory writes, branches, arithmetic
// operations, multiplies, etc.").
type OpClass uint8

const (
	OpLoad       OpClass = iota // memory read
	OpStore                     // memory write
	OpBranchCond                // conditional branch
	OpBranchJump                // unconditional direct jump
	OpCall                      // function call
	OpReturn                    // function return
	OpIntAdd                    // integer add/subtract
	OpIntMul                    // integer multiply
	OpIntDiv                    // integer divide / modulo
	OpFPAdd                     // floating-point add/subtract
	OpFPMul                     // floating-point multiply
	OpFPDiv                     // floating-point divide
	OpFPSqrt                    // floating-point square root
	OpLogic                     // bitwise logical operation
	OpShift                     // shift / rotate
	OpCompare                   // compare / test
	OpMove                      // register move / load-immediate
	OpConvert                   // int<->fp conversion
	OpNop                       // no-operation
	OpOther                     // anything else (string ops, system, ...)

	// NumOpClasses is the number of distinct operation classes.
	NumOpClasses = int(OpOther) + 1
)

var opClassNames = [NumOpClasses]string{
	"load", "store", "branch", "jump", "call", "return",
	"int_add", "int_mul", "int_div",
	"fp_add", "fp_mul", "fp_div", "fp_sqrt",
	"logic", "shift", "compare", "move", "convert", "nop", "other",
}

// String returns the canonical lower-case name of the operation class.
func (c OpClass) String() string {
	if int(c) < NumOpClasses {
		return opClassNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// OpClassByName resolves a canonical class name (as produced by String)
// back to its OpClass — the inverse mapping declarative workload models
// use for their instruction-mix keys.
func OpClassByName(name string) (OpClass, bool) {
	for i, n := range opClassNames {
		if n == name {
			return OpClass(i), true
		}
	}
	return 0, false
}

// IsMemRead reports whether the class reads memory.
func (c OpClass) IsMemRead() bool { return c == OpLoad }

// IsMemWrite reports whether the class writes memory.
func (c OpClass) IsMemWrite() bool { return c == OpStore }

// IsControl reports whether the class transfers control.
func (c OpClass) IsControl() bool {
	return c == OpBranchCond || c == OpBranchJump || c == OpCall || c == OpReturn
}

// IsConditional reports whether the class is a conditional branch, the only
// kind the branch-predictability characteristics are measured on.
func (c OpClass) IsConditional() bool { return c == OpBranchCond }

// IsFloat reports whether the class performs floating-point arithmetic.
func (c OpClass) IsFloat() bool {
	return c == OpFPAdd || c == OpFPMul || c == OpFPDiv || c == OpFPSqrt
}

// Latency returns the execution latency, in cycles, used by the idealized
// dataflow ILP model. MICA's inherent-ILP characteristic assumes an ideal
// processor — perfect caches, perfect branch prediction, unit execution
// latency — so that the measured IPC reflects only the dependence
// structure and the window size.
func (c OpClass) Latency() int { return 1 }

// Architectural constants of the abstract machine.
const (
	// NumRegs is the number of architectural registers. Register 0 is a
	// hard-wired zero register that never creates dependences.
	NumRegs = 64

	// ZeroReg is the hard-wired zero register.
	ZeroReg = 0

	// BlockSize is the cache-block granularity (bytes) of the memory
	// footprint characteristics.
	BlockSize = 64

	// PageSize is the page granularity (bytes) of the memory footprint
	// characteristics.
	PageSize = 4096

	// InstrBytes is the fixed encoded size of one instruction, used to
	// derive instruction-stream addresses from program counters.
	InstrBytes = 4

	// MaxSrcRegs is the maximum number of register input operands.
	MaxSrcRegs = 3
)

// Instruction is one dynamically executed instruction.
//
// The zero value is a harmless nop at PC 0.
type Instruction struct {
	// PC is the program counter (byte address of the instruction).
	PC uint64

	// Op is the operation class.
	Op OpClass

	// Dst is the destination register, or ZeroReg if the instruction
	// produces no register value.
	Dst uint8

	// Src holds the register input operands; only Src[:NSrc] are valid.
	Src [MaxSrcRegs]uint8

	// NSrc is the number of valid register input operands.
	NSrc uint8

	// Addr is the effective memory address for loads and stores.
	Addr uint64

	// Taken reports the outcome of a conditional branch (and is true for
	// unconditional control transfers).
	Taken bool

	// Target is the control-transfer target address, if IsControl.
	Target uint64
}

// Sources returns the valid register input operands.
func (ins *Instruction) Sources() []uint8 { return ins.Src[:ins.NSrc] }

// WritesReg reports whether the instruction produces a register value.
func (ins *Instruction) WritesReg() bool { return ins.Dst != ZeroReg }

// String renders a compact human-readable form, e.g. for trace dumps.
func (ins *Instruction) String() string {
	s := fmt.Sprintf("%#010x %-8s r%d <-", ins.PC, ins.Op, ins.Dst)
	for _, r := range ins.Sources() {
		s += fmt.Sprintf(" r%d", r)
	}
	switch {
	case ins.Op.IsMemRead() || ins.Op.IsMemWrite():
		s += fmt.Sprintf(" [%#x]", ins.Addr)
	case ins.Op.IsControl():
		s += fmt.Sprintf(" ->%#x taken=%v", ins.Target, ins.Taken)
	}
	return s
}
