package isa

import (
	"strings"
	"testing"
)

func TestOpClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumOpClasses; c++ {
		name := OpClass(c).String()
		if name == "" {
			t.Fatalf("op class %d has empty name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate op class name %q", name)
		}
		seen[name] = true
		if strings.Contains(name, "opclass") {
			t.Fatalf("op class %d fell through to default name %q", c, name)
		}
	}
}

func TestOpClassUnknownString(t *testing.T) {
	if got := OpClass(200).String(); got != "opclass(200)" {
		t.Fatalf("unknown op class string = %q", got)
	}
}

func TestOpClassPredicates(t *testing.T) {
	tests := []struct {
		op                          OpClass
		read, write, ctrl, cond, fp bool
	}{
		{OpLoad, true, false, false, false, false},
		{OpStore, false, true, false, false, false},
		{OpBranchCond, false, false, true, true, false},
		{OpBranchJump, false, false, true, false, false},
		{OpCall, false, false, true, false, false},
		{OpReturn, false, false, true, false, false},
		{OpIntAdd, false, false, false, false, false},
		{OpFPAdd, false, false, false, false, true},
		{OpFPMul, false, false, false, false, true},
		{OpFPDiv, false, false, false, false, true},
		{OpFPSqrt, false, false, false, false, true},
		{OpNop, false, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsMemRead(); got != tt.read {
			t.Errorf("%v.IsMemRead() = %v, want %v", tt.op, got, tt.read)
		}
		if got := tt.op.IsMemWrite(); got != tt.write {
			t.Errorf("%v.IsMemWrite() = %v, want %v", tt.op, got, tt.write)
		}
		if got := tt.op.IsControl(); got != tt.ctrl {
			t.Errorf("%v.IsControl() = %v, want %v", tt.op, got, tt.ctrl)
		}
		if got := tt.op.IsConditional(); got != tt.cond {
			t.Errorf("%v.IsConditional() = %v, want %v", tt.op, got, tt.cond)
		}
		if got := tt.op.IsFloat(); got != tt.fp {
			t.Errorf("%v.IsFloat() = %v, want %v", tt.op, got, tt.fp)
		}
	}
}

func TestUnitLatency(t *testing.T) {
	// The idealized ILP model assumes unit latency for every class.
	for c := 0; c < NumOpClasses; c++ {
		if got := OpClass(c).Latency(); got != 1 {
			t.Fatalf("%v.Latency() = %d, want 1", OpClass(c), got)
		}
	}
}

func TestInstructionSources(t *testing.T) {
	ins := Instruction{Src: [MaxSrcRegs]uint8{3, 7, 9}, NSrc: 2}
	got := ins.Sources()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Sources() = %v, want [3 7]", got)
	}
}

func TestInstructionWritesReg(t *testing.T) {
	if (&Instruction{Dst: ZeroReg}).WritesReg() {
		t.Fatal("zero-register destination should not count as a write")
	}
	if !(&Instruction{Dst: 5}).WritesReg() {
		t.Fatal("non-zero destination should count as a write")
	}
}

func TestInstructionString(t *testing.T) {
	load := Instruction{PC: 0x400000, Op: OpLoad, Dst: 3, Src: [MaxSrcRegs]uint8{1}, NSrc: 1, Addr: 0xbeef}
	s := load.String()
	for _, want := range []string{"load", "r3", "r1", "0xbeef"} {
		if !strings.Contains(s, want) {
			t.Errorf("load string %q missing %q", s, want)
		}
	}
	br := Instruction{PC: 0x400004, Op: OpBranchCond, Taken: true, Target: 0x400010}
	s = br.String()
	for _, want := range []string{"branch", "taken=true", "0x400010"} {
		if !strings.Contains(s, want) {
			t.Errorf("branch string %q missing %q", s, want)
		}
	}
}

func TestZeroValueInstructionIsHarmless(t *testing.T) {
	var ins Instruction
	if ins.Op != OpLoad && ins.Op.String() == "" {
		t.Fatal("zero instruction has invalid op")
	}
	if ins.WritesReg() {
		t.Fatal("zero instruction should not write a register")
	}
	if len(ins.Sources()) != 0 {
		t.Fatal("zero instruction should have no sources")
	}
}

func TestArchConstants(t *testing.T) {
	if BlockSize != 64 || PageSize != 4096 {
		t.Fatalf("footprint granularities = %d/%d, want 64/4096", BlockSize, PageSize)
	}
	if PageSize%BlockSize != 0 {
		t.Fatal("page size must be a multiple of block size")
	}
	if ZeroReg != 0 || NumRegs <= 1 {
		t.Fatalf("register file constants inconsistent: zero=%d num=%d", ZeroReg, NumRegs)
	}
}
