// Float64 block codecs: the byte-level counterparts of the math
// kernels. Artifact payloads store float64 blocks as little-endian
// IEEE-754 bits; on little-endian hosts a block is the in-memory
// representation, so decoding can be a single bulk copy — or, when the
// source bytes are 8-aligned, a zero-copy reinterpretation. Big-endian
// hosts (and misaligned sources) fall back to the per-element scalar
// codec, so the on-disk format is identical everywhere.
package kernel

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the host stores float64 values in
// the same byte order as the on-disk format (little-endian), decided
// once at init.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// AliasFloats reinterprets the first 8*n bytes of b as a []float64
// without copying. It succeeds only when the host is little-endian and
// b's backing storage is 8-byte aligned; otherwise it returns ok=false
// and the caller must fall back to CopyFloats. The returned slice
// aliases b: it is valid exactly as long as b's backing array, and
// writes through either are visible in both.
func AliasFloats(b []byte, n int) ([]float64, bool) {
	if n == 0 {
		return []float64{}, true
	}
	if !hostLittleEndian || n < 0 || len(b) < 8*n {
		return nil, false
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), n), true
}

// CopyFloats decodes len(dst) little-endian float64 values from b into
// dst. On little-endian hosts this is one bulk copy; elsewhere it is
// the scalar per-element decode. b must hold at least 8*len(dst) bytes.
func CopyFloats(dst []float64, b []byte) {
	if len(dst) == 0 {
		return
	}
	if len(b) < 8*len(dst) {
		panic("kernel: float block truncated")
	}
	if hostLittleEndian {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(dst))), 8*len(dst))
		copy(raw, b)
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// AppendFloats appends the little-endian encoding of xs to buf. On
// little-endian hosts this is one bulk append; elsewhere it is the
// scalar per-element encode. Values round-trip bit-exactly (including
// negative zero and NaN payloads).
func AppendFloats(buf []byte, xs []float64) []byte {
	if len(xs) == 0 {
		return buf
	}
	if hostLittleEndian {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), 8*len(xs))
		return append(buf, raw...)
	}
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}
