// Column-blocked center scan. The k-means assignment loop is the one
// place in the repo where scalar code cannot reach the hardware: a
// row-major scan is a chain of short dot products whose 2-loads+1-mul+
// 1-add per element saturate the scalar FP ports at ~1 multiply-add per
// cycle. Storing the centers transposed (column-major, d rows of k
// contiguous values) turns the scan into a rank-1 update — for each
// coordinate j, add x[j]*column_j to a running vector of k partial dots
// — which SIMD units execute four centers at a time.
//
// Determinism contract: out[c] is the strictly serial, ascending-j sum
// of x[j]*ct[j*k+c]. Vector lanes hold *different centers*, never
// partial sums of one center, so the SIMD path performs the exact same
// additions in the exact same order as the scalar path and the results
// are bit-identical on every platform (FMA is not used for the same
// reason). This is unlike the 4-wide lane-split kernels in kernel.go,
// whose documented reduction order is (s0+s1)+(s2+s3).

package kernel

import (
	"fmt"
	"math"
)

// DotCols fills out[c], c in [0,k), with the dot product of x against
// column c of the len(x) x k row-major matrix ct (i.e. ct holds one row
// of k values per coordinate of x — a transposed centers block). The
// per-column sum order is strictly ascending in the coordinate index,
// identical on the SIMD and scalar paths.
func DotCols(x, ct, out []float64, k int) {
	if len(ct) < len(x)*k || len(out) < k {
		panic(fmt.Sprintf("kernel: dotcols of dim %d over %d columns needs %d values and %d slots, have %d and %d",
			len(x), k, len(x)*k, k, len(ct), len(out)))
	}
	dotCols(x, ct, out, k)
}

// dotColsGeneric is the portable implementation and the bit-exact
// reference for the assembly path.
func dotColsGeneric(x, ct, out []float64, k int) {
	out = out[:k]
	for c := range out {
		out[c] = 0
	}
	for j, xj := range x {
		row := ct[j*k : (j+1)*k : (j+1)*k]
		c := 0
		// 4 independent accumulator chains across centers; each
		// center's own sum still grows by exactly one add per j.
		for ; c+4 <= k; c += 4 {
			out[c] += xj * row[c]
			out[c+1] += xj * row[c+1]
			out[c+2] += xj * row[c+2]
			out[c+3] += xj * row[c+3]
		}
		for ; c < k; c++ {
			out[c] += xj * row[c]
		}
	}
}

// NearestCenterCols is NearestCenter over a transposed centers block:
// ct is column-major (len(x) rows of k contiguous values) and dots is a
// k-sized scratch slice. Ties break to the lowest center index, and the
// g values use the serial-sum DotCols order (not the 4-lane order of
// NearestCenter), so the two scans are distinct deterministic functions.
func NearestCenterCols(x, ct, norms, dots []float64) (int, float64) {
	k := len(norms)
	DotCols(x, ct, dots, k)
	best, bestG := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		if g := norms[c] - 2*dots[c]; g < bestG {
			best, bestG = c, g
		}
	}
	return best, bestG
}

// Nearest2CentersCols extends NearestCenterCols with the second-smallest
// g, matching the tie semantics of Nearest2Centers.
func Nearest2CentersCols(x, ct, norms, dots []float64) (int, float64, float64) {
	k := len(norms)
	DotCols(x, ct, dots, k)
	best := 0
	bestG, secondG := math.Inf(1), math.Inf(1)
	for c := 0; c < k; c++ {
		g := norms[c] - 2*dots[c]
		if g < bestG {
			best, secondG, bestG = c, bestG, g
		} else if g < secondG {
			secondG = g
		}
	}
	return best, bestG, secondG
}

// Transpose fills ct (column-major, cols rows of `rows` values) from the
// rows x cols row-major matrix data, the layout DotCols consumes.
func Transpose(data []float64, rows, cols int, ct []float64) {
	if len(data) < rows*cols || len(ct) < rows*cols {
		panic(fmt.Sprintf("kernel: transpose of %dx%d over %d and %d values", rows, cols, len(data), len(ct)))
	}
	for i := 0; i < rows; i++ {
		row := data[i*cols : (i+1)*cols]
		for j, v := range row {
			ct[j*rows+i] = v
		}
	}
}
