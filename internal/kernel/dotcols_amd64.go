//go:build amd64

package kernel

// haveAVX2 gates the assembly column kernel. The fallback produces
// bit-identical results (see the determinism contract in dotcols.go),
// so the gate affects speed only.
var haveAVX2 = detectAVX2()

// detectAVX2 checks CPU support for AVX2 and that the OS has enabled
// saving the YMM register state (OSXSAVE + XCR0 bits 1 and 2).
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func dotColsAVX2(x *float64, d int, ct *float64, k int, out *float64)

func dotCols(x, ct, out []float64, k int) {
	if !haveAVX2 || len(x) == 0 || k < 4 {
		dotColsGeneric(x, ct, out, k)
		return
	}
	dotColsAVX2(&x[0], len(x), &ct[0], k, &out[0])
	// Scalar tail for the last k%4 columns, same serial-j order.
	for c := k &^ 3; c < k; c++ {
		var s float64
		for j, xj := range x {
			s += xj * ct[j*k+c]
		}
		out[c] = s
	}
}
