// AVX2 column-block dot kernel. See dotcols_amd64.go for the contract:
// out[c] = sum over j (ascending) of x[j] * ct[j*k + c], for c in
// [0, k&^3). Each center's sum is accumulated strictly in ascending j
// order (one VADDPD per j per lane group), so the result is
// bit-identical to the scalar column loop in dotcols.go — vector lanes
// hold different centers, never partial sums of one center, so no
// floating-point reassociation happens. FMA is deliberately not used:
// it would round differently from the scalar mul-then-add.

#include "textflag.h"

// func dotColsAVX2(x *float64, d int, ct *float64, k int, out *float64)
TEXT ·dotColsAVX2(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ d+8(FP), DX
	MOVQ ct+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ out+32(FP), DI

	MOVQ CX, R8
	ANDQ $-4, R8       // R8 = k &^ 3, centers handled here
	XORQ R9, R9        // c = 0
	TESTQ DX, DX
	JZ   zerotail      // d == 0: every dot is 0

block16:
	MOVQ R8, R10
	SUBQ R9, R10
	CMPQ R10, $16
	JLT  block4        // fewer than 16 centers left

	LEAQ (BX)(R9*8), R11   // &ct[c], walks down the columns by k
	VXORPD Y0, Y0, Y0      // accumulators: centers c+0..3, 4..7, 8..11, 12..15
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ SI, R12           // &x[0]
	MOVQ DX, R13           // j countdown

j16:
	VBROADCASTSD (R12), Y4
	VMOVUPD (R11), Y5
	VMOVUPD 32(R11), Y6
	VMOVUPD 64(R11), Y7
	VMOVUPD 96(R11), Y8
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VMULPD Y4, Y7, Y7
	VMULPD Y4, Y8, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $8, R12
	LEAQ (R11)(CX*8), R11  // next matrix row of the same columns
	DECQ R13
	JNZ  j16

	LEAQ (DI)(R9*8), AX
	VMOVUPD Y0, (AX)
	VMOVUPD Y1, 32(AX)
	VMOVUPD Y2, 64(AX)
	VMOVUPD Y3, 96(AX)
	ADDQ $16, R9
	JMP  block16

block4:
	CMPQ R9, R8
	JGE  done

	LEAQ (BX)(R9*8), R11
	VXORPD Y0, Y0, Y0
	MOVQ SI, R12
	MOVQ DX, R13

j4:
	VBROADCASTSD (R12), Y4
	VMOVUPD (R11), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	ADDQ $8, R12
	LEAQ (R11)(CX*8), R11
	DECQ R13
	JNZ  j4

	LEAQ (DI)(R9*8), AX
	VMOVUPD Y0, (AX)
	ADDQ $4, R9
	JMP  block4

zerotail:
	CMPQ R9, R8
	JGE  done
	MOVQ $0, (DI)(R9*8)
	INCQ R9
	JMP  zerotail

done:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
