//go:build !amd64

package kernel

func dotCols(x, ct, out []float64, k int) {
	dotColsGeneric(x, ct, out, k)
}
