package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// The active dotCols path (assembly where available) must be
// bit-identical to the generic serial-order reference for every (d, k)
// shape: main blocks, 4-wide blocks, scalar tails and empty inputs.
func TestDotColsBitIdenticalToGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{0, 1, 2, 5, 15, 16, 69} {
		for _, k := range []int{1, 2, 3, 4, 5, 15, 16, 17, 31, 32, 33, 300} {
			x := randVec(rng, d)
			ct := randVec(rng, d*k)
			got := make([]float64, k)
			want := make([]float64, k)
			DotCols(x, ct, got, k)
			dotColsGeneric(x, ct, want, k)
			for c := range want {
				if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
					t.Fatalf("d=%d k=%d col %d: %x vs %x", d, k, c, got[c], want[c])
				}
			}
		}
	}
}

// DotCols must agree with per-column Dot products up to round-off (it
// sums serially, Dot in 4-wide lanes) and exactly with a serial sum.
func TestDotColsMatchesColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, k := 15, 37
	x := randVec(rng, d)
	ct := randVec(rng, d*k)
	out := make([]float64, k)
	DotCols(x, ct, out, k)
	for c := 0; c < k; c++ {
		var want float64
		for j := 0; j < d; j++ {
			want += x[j] * ct[j*k+c]
		}
		if out[c] != want {
			t.Fatalf("col %d: got %v, want serial %v", c, out[c], want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rows, cols := 11, 7
	data := randVec(rng, rows*cols)
	ct := make([]float64, rows*cols)
	Transpose(data, rows, cols, ct)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if ct[j*rows+i] != data[i*cols+j] {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
}

// The transposed scan must agree with the row-major scan on the argmin
// (ties and round-off permitting: the test uses well-separated random
// centers, where the two deterministic sums always agree on the winner).
func TestNearestCenterColsMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const k, d = 23, 15
	centers := randVec(rng, k*d)
	ct := make([]float64, k*d)
	Transpose(centers, k, d, ct)
	norms := make([]float64, k)
	RowSquaredNorms(centers, k, d, norms)
	dots := make([]float64, k)
	for trial := 0; trial < 50; trial++ {
		x := randVec(rng, d)
		wantBest, _ := NearestCenter(x, centers, norms)
		best, bestG := NearestCenterCols(x, ct, norms, dots)
		if best != wantBest {
			t.Fatalf("trial %d: cols scan picked %d, row scan %d", trial, best, wantBest)
		}
		b2, g2, s2 := Nearest2CentersCols(x, ct, norms, dots)
		if b2 != best || g2 != bestG {
			t.Fatalf("trial %d: Nearest2CentersCols best (%d,%v) vs (%d,%v)", trial, b2, g2, best, bestG)
		}
		if s2 < g2 {
			t.Fatalf("trial %d: second %v below best %v", trial, s2, g2)
		}
	}
}

func BenchmarkNearestCenterCols(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const k, d = 300, 15
	centers := randVec(rng, k*d)
	ct := make([]float64, k*d)
	Transpose(centers, k, d, ct)
	norms := make([]float64, k)
	RowSquaredNorms(centers, k, d, norms)
	x := randVec(rng, d)
	dots := make([]float64, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NearestCenterCols(x, ct, norms, dots)
	}
}
