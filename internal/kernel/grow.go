package kernel

// Slice-growth utilities shared by the pooled scratch paths in cluster
// and stats: return s resized to n elements, reusing its backing array
// when it is large enough and allocating a fresh one otherwise. Contents
// are unspecified — every caller fully (re)initializes the buffer before
// reading it, which is what keeps pooled runs bit-identical to
// fresh-allocation runs.

// GrowFloats returns a float64 slice of length n backed by s when
// possible.
func GrowFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// GrowInts returns an int slice of length n backed by s when possible.
func GrowInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
