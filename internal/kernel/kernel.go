// Package kernel holds the shared dense-float64 micro-kernels behind
// every analysis stage: dot products, squared distances, row norms and
// the argmin-over-centers loop at the heart of k-means assignment. It is
// a leaf package (no repo-internal imports), so cluster, stats, ga and
// core can all share exactly one implementation of each primitive.
//
// Every kernel uses the same blocked shape: a main loop over len&^3
// elements with four independent accumulators (breaking the add-latency
// dependency chain that serializes a naive scalar loop), operands
// re-sliced to a common length so the compiler can drop bounds checks,
// and a scalar tail. The lanes are always combined in the fixed order
// (s0+s1)+(s2+s3), so for a given input length the result is a pure
// function of the inputs — deterministic across runs, worker counts and
// call sites — even though it differs in round-off from a serial
// left-to-right sum. Callers that persist derived artifacts version
// them (core.engineSchemaVersion) so cached values from the old
// reduction order miss instead of mixing.
package kernel

import (
	"fmt"
	"math"
)

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kernel: dot of vectors of length %d and %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	n4 := len(a) &^ 3
	b = b[:len(a)]
	j := 0
	for ; j < n4; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	for ; j < len(a); j++ {
		s0 += a[j] * b[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredNorm returns the squared L2 norm of x.
func SquaredNorm(x []float64) float64 {
	var s0, s1, s2, s3 float64
	n4 := len(x) &^ 3
	j := 0
	for ; j < n4; j += 4 {
		s0 += x[j] * x[j]
		s1 += x[j+1] * x[j+1]
		s2 += x[j+2] * x[j+2]
		s3 += x[j+3] * x[j+3]
	}
	for ; j < len(x); j++ {
		s0 += x[j] * x[j]
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredDistance returns the squared Euclidean distance between two
// equal-length vectors.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kernel: distance between vectors of length %d and %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	n4 := len(a) &^ 3
	b = b[:len(a)]
	j := 0
	for ; j < n4; j += 4 {
		d0 := a[j] - b[j]
		d1 := a[j+1] - b[j+1]
		d2 := a[j+2] - b[j+2]
		d3 := a[j+3] - b[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; j < len(a); j++ {
		d := a[j] - b[j]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Distance returns the Euclidean distance between two equal-length
// vectors. This is the repo's one distance implementation; every caller
// (stats.EuclideanDistance, k-means seeding, hierarchical clustering,
// SimPoint accuracy) routes through it.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Axpy computes y[i] += alpha*x[i]. The update is elementwise (each
// slot independent), so the unrolled form is bit-identical to a scalar
// loop.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("kernel: axpy over vectors of length %d and %d", len(x), len(y)))
	}
	n4 := len(x) &^ 3
	y = y[:len(x)]
	j := 0
	for ; j < n4; j += 4 {
		y[j] += alpha * x[j]
		y[j+1] += alpha * x[j+1]
		y[j+2] += alpha * x[j+2]
		y[j+3] += alpha * x[j+3]
	}
	for ; j < len(x); j++ {
		y[j] += alpha * x[j]
	}
}

// Add computes dst[i] += src[i] (Axpy with alpha fixed at 1, without
// the multiply). Elementwise, so bit-identical to a scalar loop.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("kernel: add over vectors of length %d and %d", len(dst), len(src)))
	}
	n4 := len(dst) &^ 3
	src = src[:len(dst)]
	j := 0
	for ; j < n4; j += 4 {
		dst[j] += src[j]
		dst[j+1] += src[j+1]
		dst[j+2] += src[j+2]
		dst[j+3] += src[j+3]
	}
	for ; j < len(dst); j++ {
		dst[j] += src[j]
	}
}

// RowSquaredNorms fills out[i] with the squared L2 norm of row i of the
// rows x cols row-major matrix data — the |x|² term of the expansion
// |x-c|² = |x|² - 2·x·c + |c|² that the assignment kernels cache.
func RowSquaredNorms(data []float64, rows, cols int, out []float64) {
	if len(data) < rows*cols || len(out) < rows {
		panic(fmt.Sprintf("kernel: row norms of %dx%d from %d values into %d slots", rows, cols, len(data), len(out)))
	}
	for i := 0; i < rows; i++ {
		out[i] = SquaredNorm(data[i*cols : (i+1)*cols])
	}
}

// NearestCenter finds the center nearest to x among the k rows of the
// flat k x len(x) row-major centers block, using cached squared center
// norms: it minimizes g(c) = |c|² - 2·x·c, which differs from |x-c|² by
// the constant |x|², so the argmin is identical and the |x|² add is
// deferred to the caller. The first center wins ties. It returns the
// winning index and its g value; the caller recovers the squared
// distance as |x|² + g (clamped at zero — cancellation can push an
// exact zero slightly negative).
//
// The dot product is inlined rather than calling Dot: this loop is the
// single hottest kernel in the repo (k-means assignment is O(n·k·d))
// and the per-center call overhead is measurable at small d.
func NearestCenter(x, centers, norms []float64) (int, float64) {
	d := len(x)
	if len(centers) < len(norms)*d {
		panic(fmt.Sprintf("kernel: %d centers of dim %d need %d values, have %d", len(norms), d, len(norms)*d, len(centers)))
	}
	best, bestG := 0, math.Inf(1)
	n4 := d &^ 3
	off := 0
	for c := range norms {
		row := centers[off : off+d : off+d]
		off += d
		var s0, s1, s2, s3 float64
		j := 0
		for ; j < n4; j += 4 {
			s0 += x[j] * row[j]
			s1 += x[j+1] * row[j+1]
			s2 += x[j+2] * row[j+2]
			s3 += x[j+3] * row[j+3]
		}
		for ; j < d; j++ {
			s0 += x[j] * row[j]
		}
		dot := (s0 + s1) + (s2 + s3)
		if g := norms[c] - 2*dot; g < bestG {
			best, bestG = c, g
		}
	}
	return best, bestG
}

// Nearest2Centers is NearestCenter extended to also return the
// second-smallest g value — the second-closest center's deferred
// distance, which the bounded (triangle-inequality) Lloyd iteration
// needs as its lower bound. Tie semantics match NearestCenter: the
// first center wins the argmin, and a later center equal to the best
// only lowers the second-best.
func Nearest2Centers(x, centers, norms []float64) (int, float64, float64) {
	d := len(x)
	if len(centers) < len(norms)*d {
		panic(fmt.Sprintf("kernel: %d centers of dim %d need %d values, have %d", len(norms), d, len(norms)*d, len(centers)))
	}
	best := 0
	bestG, secondG := math.Inf(1), math.Inf(1)
	n4 := d &^ 3
	off := 0
	for c := range norms {
		row := centers[off : off+d : off+d]
		off += d
		var s0, s1, s2, s3 float64
		j := 0
		for ; j < n4; j += 4 {
			s0 += x[j] * row[j]
			s1 += x[j+1] * row[j+1]
			s2 += x[j+2] * row[j+2]
			s3 += x[j+3] * row[j+3]
		}
		for ; j < d; j++ {
			s0 += x[j] * row[j]
		}
		dot := (s0 + s1) + (s2 + s3)
		g := norms[c] - 2*dot
		if g < bestG {
			best, secondG, bestG = c, bestG, g
		} else if g < secondG {
			secondG = g
		}
	}
	return best, bestG, secondG
}
