package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDot is the serial reference; the blocked kernels must agree with
// it to within round-off reordering (a few ULPs on well-conditioned
// data).
func naiveDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveSquaredDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(1, scale)
}

// Every length from 0 through a few multiples of the 4-wide block, so
// both the main loop and every tail shape are exercised.
func TestKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 67; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		if got, want := Dot(a, b), naiveDot(a, b); !relClose(got, want) {
			t.Fatalf("Dot len %d: got %v, want %v", n, got, want)
		}
		if got, want := SquaredNorm(a), naiveDot(a, a); !relClose(got, want) {
			t.Fatalf("SquaredNorm len %d: got %v, want %v", n, got, want)
		}
		if got, want := SquaredDistance(a, b), naiveSquaredDistance(a, b); !relClose(got, want) {
			t.Fatalf("SquaredDistance len %d: got %v, want %v", n, got, want)
		}
		if got, want := Distance(a, b), math.Sqrt(naiveSquaredDistance(a, b)); !relClose(got, want) {
			t.Fatalf("Distance len %d: got %v, want %v", n, got, want)
		}
	}
}

// Exactly-representable inputs where every summation order gives the
// same float: the classic 3-4-5 triangle.
func TestDistanceExact(t *testing.T) {
	if got := Distance([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("Distance((0,0),(3,4)) = %v, want 5", got)
	}
	if got := SquaredDistance([]float64{1, 2, 3, 4, 5}, []float64{1, 2, 3, 4, 5}); got != 0 {
		t.Fatalf("SquaredDistance(x,x) = %v, want 0", got)
	}
}

func TestKernelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randVec(rng, 69), randVec(rng, 69)
	first := Dot(a, b)
	for i := 0; i < 10; i++ {
		if got := Dot(a, b); got != first {
			t.Fatalf("Dot not deterministic: %v then %v", first, got)
		}
	}
}

func TestAxpyAddMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 19; n++ {
		x := randVec(rng, n)
		y := randVec(rng, n)
		want := make([]float64, n)
		copy(want, y)
		for i := range want {
			want[i] += 2.5 * x[i]
		}
		got := make([]float64, n)
		copy(got, y)
		Axpy(2.5, x, got)
		for i := range want {
			// Elementwise update: must be bit-identical to scalar.
			if got[i] != want[i] {
				t.Fatalf("Axpy len %d slot %d: got %v, want %v", n, i, got[i], want[i])
			}
		}
		sum := make([]float64, n)
		copy(sum, y)
		Add(sum, x)
		for i := range sum {
			if want := y[i] + x[i]; sum[i] != want {
				t.Fatalf("Add len %d slot %d: got %v, want %v", n, i, sum[i], want)
			}
		}
	}
}

func TestRowSquaredNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, cols := 7, 13
	data := randVec(rng, rows*cols)
	out := make([]float64, rows)
	RowSquaredNorms(data, rows, cols, out)
	for i := 0; i < rows; i++ {
		if want := SquaredNorm(data[i*cols : (i+1)*cols]); out[i] != want {
			t.Fatalf("row %d norm: got %v, want %v", i, out[i], want)
		}
	}
}

func TestNearestCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 3, 4, 7, 15, 69} {
		k := 11
		centers := randVec(rng, k*d)
		norms := make([]float64, k)
		RowSquaredNorms(centers, k, d, norms)
		for trial := 0; trial < 20; trial++ {
			x := randVec(rng, d)
			best, bestG := NearestCenter(x, centers, norms)
			// Reference argmin over true squared distances.
			wantBest, wantD2 := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d2 := naiveSquaredDistance(x, centers[c*d:(c+1)*d])
				if d2 < wantD2 {
					wantBest, wantD2 = c, d2
				}
			}
			if best != wantBest {
				t.Fatalf("d=%d: NearestCenter picked %d, want %d", d, best, wantBest)
			}
			if got := SquaredNorm(x) + bestG; !relClose(got, wantD2) {
				t.Fatalf("d=%d: recovered distance² %v, want %v", d, got, wantD2)
			}
		}
	}
}

func TestNearest2Centers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 4, 15} {
		k := 9
		centers := randVec(rng, k*d)
		norms := make([]float64, k)
		RowSquaredNorms(centers, k, d, norms)
		for trial := 0; trial < 20; trial++ {
			x := randVec(rng, d)
			best, bestG, secondG := Nearest2Centers(x, centers, norms)
			wantBest, wantG := NearestCenter(x, centers, norms)
			if best != wantBest || bestG != wantG {
				t.Fatalf("d=%d: Nearest2 best (%d,%v) vs Nearest (%d,%v)", d, best, bestG, wantBest, wantG)
			}
			// Reference: the two smallest g values via the same kernel
			// dot order.
			g1, g2 := math.Inf(1), math.Inf(1)
			for c := 0; c < k; c++ {
				g := norms[c] - 2*Dot(x, centers[c*d:(c+1)*d])
				if g < g1 {
					g1, g2 = g, g1
				} else if g < g2 {
					g2 = g
				}
			}
			if secondG != g2 {
				t.Fatalf("d=%d: second g %v, want %v", d, secondG, g2)
			}
			if secondG < bestG {
				t.Fatalf("d=%d: second %v below best %v", d, secondG, bestG)
			}
		}
	}
}

// Equidistant centers: the first must win, at every worker-independent
// call.
func TestNearestCenterTieBreak(t *testing.T) {
	centers := []float64{1, 0, -1, 0} // both at distance 1 from origin
	norms := []float64{1, 1}
	best, _ := NearestCenter([]float64{0, 0}, centers, norms)
	if best != 0 {
		t.Fatalf("tie broke to %d, want first center", best)
	}
}

func TestKernelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":  func() { Dot([]float64{1}, []float64{1, 2}) },
		"sqd":  func() { SquaredDistance([]float64{1}, []float64{1, 2}) },
		"axpy": func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"add":  func() { Add([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestFloatBlockRoundTrip(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, math.Inf(1), math.Copysign(0, -1), math.NaN(), 1e-308}
	buf := AppendFloats(nil, xs)
	if len(buf) != 8*len(xs) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), 8*len(xs))
	}
	dst := make([]float64, len(xs))
	CopyFloats(dst, buf)
	for i := range xs {
		if math.Float64bits(dst[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("slot %d: bits %x, want %x", i, math.Float64bits(dst[i]), math.Float64bits(xs[i]))
		}
	}
	if alias, ok := AliasFloats(buf, len(xs)); ok {
		for i := range xs {
			if math.Float64bits(alias[i]) != math.Float64bits(xs[i]) {
				t.Fatalf("alias slot %d: bits %x, want %x", i, math.Float64bits(alias[i]), math.Float64bits(xs[i]))
			}
		}
	}
}

// A deliberately misaligned view must refuse the zero-copy path and
// still decode correctly through CopyFloats.
func TestAliasFloatsMisaligned(t *testing.T) {
	xs := []float64{1, 2, 3}
	backing := make([]byte, 8*len(xs)+1)
	copy(backing[1:], AppendFloats(nil, xs))
	views := 0
	for off := 0; off < 2; off++ {
		view := backing[off+0:]
		if _, ok := AliasFloats(view, len(xs)); !ok {
			views++
			dst := make([]float64, len(xs))
			CopyFloats(dst, view)
			// Only the off=1 view holds the real encoding.
			if off == 1 && dst[2] != 3 {
				t.Fatalf("misaligned copy decode got %v", dst)
			}
		}
	}
	if views == 0 {
		t.Skip("both offsets aligned on this platform")
	}
}

func TestAliasFloatsBounds(t *testing.T) {
	if _, ok := AliasFloats(make([]byte, 15), 2); ok {
		t.Fatal("aliased a truncated block")
	}
	if got, ok := AliasFloats(nil, 0); !ok || len(got) != 0 {
		t.Fatal("empty block must alias trivially")
	}
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 69), randVec(rng, 69)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, y)
	}
	_ = s
}

func BenchmarkNearestCenter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const k, d = 300, 15
	centers := randVec(rng, k*d)
	norms := make([]float64, k)
	RowSquaredNorms(centers, k, d, norms)
	x := randVec(rng, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NearestCenter(x, centers, norms)
	}
}
