package mica

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/mica/ilp"
	"repro/internal/mica/ppm"
)

// Analyzer consumes an instruction stream and produces the 69-element MICA
// characteristic vector for it. Feed it one interval (or a whole program,
// for an aggregate characterization), read Vector, then Reset to reuse.
//
// All per-interval state — the footprint sets, the per-PC stride and
// branch-outcome tables, the predictor tables — is cleared in place by
// Reset rather than reallocated, so a long-lived analyzer settles into a
// steady state with no per-interval allocation at all.
type Analyzer struct {
	total    uint64
	opCounts [isa.NumOpClasses]uint64

	ilp *ilp.Analyzer

	// Register traffic.
	srcOperands uint64
	regWrites   uint64
	depBins     [8]uint64 // 7 bounded bins + overflow
	depTotal    uint64
	lastWriter  [isa.NumRegs]uint64
	writerValid [isa.NumRegs]bool

	// Memory footprint.
	instrBlocks u64Set
	instrPages  u64Set
	dataBlocks  u64Set
	dataPages   u64Set

	// Strides.
	lastLoadAddr   uint64
	haveLoad       bool
	lastStoreAddr  uint64
	haveStore      bool
	lastLoadByPC   u64Map   // PC -> last load address
	lastStoreByPC  u64Map   // PC -> last store address
	localLoadBins  []uint64 // len(LocalStrideBounds)+1, last = beyond
	localStoreBins []uint64
	globalLoadBins []uint64 // len(GlobalStrideBounds)+1
	globalStoreBin []uint64
	localLoadCnt   uint64
	localStoreCnt  uint64
	globalLoadCnt  uint64
	globalStoreCnt uint64

	// Branch behaviour.
	condBranches uint64
	condTaken    uint64
	transitions  uint64
	transPairs   uint64
	lastOutcome  u64Map // PC -> 0/1 last outcome
	predictors   []ppm.Group
	outcomes     []ppm.Outcome // batch-mode staging buffer, reused

	// Fast paths: last-seen instruction block/page (instruction fetch is
	// highly sequential, so most table probes can be skipped).
	lastInstrBlock uint64
	lastInstrPage  uint64
	haveInstr      bool
}

// NewAnalyzer returns a ready-to-use analyzer.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{}
	var err error
	a.ilp, err = ilp.NewAnalyzer(ilp.StandardWindows)
	if err != nil {
		panic("mica: standard ILP windows invalid: " + err.Error())
	}
	a.predictors = ppm.StandardGroups()
	a.localLoadBins = make([]uint64, len(LocalStrideBounds)+1)
	a.localStoreBins = make([]uint64, len(LocalStrideBounds)+1)
	a.globalLoadBins = make([]uint64, len(GlobalStrideBounds)+1)
	a.globalStoreBin = make([]uint64, len(GlobalStrideBounds)+1)
	a.instrBlocks.initSet(10)
	a.instrPages.initSet(6)
	a.dataBlocks.initSet(12)
	a.dataPages.initSet(8)
	a.lastLoadByPC.initMap(10)
	a.lastStoreByPC.initMap(10)
	a.lastOutcome.initMap(10)
	return a
}

// Reset clears all measurement state so the analyzer can characterize a
// fresh interval. Every table keeps its capacity.
func (a *Analyzer) Reset() {
	a.total = 0
	clear(a.opCounts[:])
	a.ilp.Reset()
	a.srcOperands = 0
	a.regWrites = 0
	clear(a.depBins[:])
	a.depTotal = 0
	clear(a.lastWriter[:])
	clear(a.writerValid[:])
	a.instrBlocks.Clear()
	a.instrPages.Clear()
	a.dataBlocks.Clear()
	a.dataPages.Clear()
	a.lastLoadByPC.Clear()
	a.lastStoreByPC.Clear()
	a.haveLoad = false
	a.haveStore = false
	clear(a.localLoadBins)
	clear(a.localStoreBins)
	clear(a.globalLoadBins)
	clear(a.globalStoreBin)
	a.localLoadCnt = 0
	a.localStoreCnt = 0
	a.globalLoadCnt = 0
	a.globalStoreCnt = 0
	a.condBranches = 0
	a.condTaken = 0
	a.transitions = 0
	a.transPairs = 0
	a.lastOutcome.Clear()
	for i := range a.predictors {
		a.predictors[i].Reset()
	}
	a.haveInstr = false
}

// RecordBatch accounts a block of dynamically executed instructions, in
// order. It is the hot-path entry point of the batched generate→measure
// kernel and is equivalent to calling Record on each instruction: the
// scalar statistics, the ILP window models and the branch predictors
// observe disjoint state, so running them as separate passes over the
// batch — each with its working set resident — cannot change any result.
func (a *Analyzer) RecordBatch(batch []isa.Instruction) {
	if len(batch) == 0 {
		return
	}
	a.outcomes = a.outcomes[:0]
	for i := range batch {
		ins := &batch[i]
		a.recordScalar(ins)
		if ins.Op.IsConditional() {
			a.outcomes = append(a.outcomes, ppm.Outcome{PC: ins.PC, Taken: ins.Taken})
		}
	}
	if len(a.outcomes) > 0 {
		for i := range a.predictors {
			a.predictors[i].RecordAll(a.outcomes)
		}
	}
	a.ilp.RecordBatch(batch)
}

// Record accounts one dynamically executed instruction.
func (a *Analyzer) Record(ins *isa.Instruction) {
	a.recordScalar(ins)
	if ins.Op.IsConditional() {
		for i := range a.predictors {
			a.predictors[i].Record(ins.PC, ins.Taken)
		}
	}
	a.ilp.Record(ins)
}

// recordScalar accounts everything except the ILP models and the PPM
// predictors: instruction mix, footprints, register traffic, strides and
// raw branch statistics.
func (a *Analyzer) recordScalar(ins *isa.Instruction) {
	a.opCounts[ins.Op]++

	// Instruction-stream footprint (fast path: consecutive PCs share a
	// block most of the time).
	if blk := ins.PC / isa.BlockSize; !a.haveInstr || blk != a.lastInstrBlock {
		a.instrBlocks.Add(blk)
		a.lastInstrBlock = blk
		if pg := ins.PC / isa.PageSize; !a.haveInstr || pg != a.lastInstrPage {
			a.instrPages.Add(pg)
			a.lastInstrPage = pg
		}
		a.haveInstr = true
	}

	// Register traffic: operand counts and dependency distances.
	for _, r := range ins.Sources() {
		if r == isa.ZeroReg {
			continue
		}
		a.srcOperands++
		if a.writerValid[r] {
			d := a.total - a.lastWriter[r]
			a.depTotal++
			a.depBins[depBin(d)]++
		}
	}
	if ins.WritesReg() {
		a.regWrites++
		a.lastWriter[ins.Dst] = a.total
		a.writerValid[ins.Dst] = true
	}

	// Data stream.
	switch {
	case ins.Op.IsMemRead():
		a.recordData(ins.Addr)
		if a.haveLoad {
			a.globalLoadBins[strideBin(ins.Addr, a.lastLoadAddr, GlobalStrideBounds)]++
			a.globalLoadCnt++
		}
		a.lastLoadAddr, a.haveLoad = ins.Addr, true
		if prev, ok := a.lastLoadByPC.Swap(ins.PC, ins.Addr); ok {
			a.localLoadBins[strideBin(ins.Addr, prev, LocalStrideBounds)]++
			a.localLoadCnt++
		}
	case ins.Op.IsMemWrite():
		a.recordData(ins.Addr)
		if a.haveStore {
			a.globalStoreBin[strideBin(ins.Addr, a.lastStoreAddr, GlobalStrideBounds)]++
			a.globalStoreCnt++
		}
		a.lastStoreAddr, a.haveStore = ins.Addr, true
		if prev, ok := a.lastStoreByPC.Swap(ins.PC, ins.Addr); ok {
			a.localStoreBins[strideBin(ins.Addr, prev, LocalStrideBounds)]++
			a.localStoreCnt++
		}
	}

	// Branch behaviour (conditional branches only).
	if ins.Op.IsConditional() {
		a.condBranches++
		var out uint64
		if ins.Taken {
			a.condTaken++
			out = 1
		}
		if prev, ok := a.lastOutcome.Swap(ins.PC, out); ok {
			a.transPairs++
			if prev != out {
				a.transitions++
			}
		}
	}

	a.total++
}

// recordData tracks only the block set online; the page footprint is
// recovered from it in Vector (a page is a fixed group of blocks), which
// saves a second hash insert on every memory access.
func (a *Analyzer) recordData(addr uint64) {
	a.dataBlocks.Add(addr / isa.BlockSize)
}

// depBin maps a dependency distance to its bin: 7 bounded bins plus an
// overflow bin (the overflow bin is not itself a metric; it completes the
// distribution's denominator). DepDistBounds are the powers of two
// 1..64, so the bin of d in (1, 64] is ceil(log2 d); depBinMatchesBounds
// (table_test.go) pins the equivalence.
func depBin(d uint64) int {
	if d <= 1 {
		return 0
	}
	if d > uint64(DepDistBounds[len(DepDistBounds)-1]) {
		return len(DepDistBounds)
	}
	return bits.Len64(d - 1)
}

// strideBin maps an absolute address delta to its cumulative-threshold bin.
func strideBin(a, b uint64, bounds []uint64) int {
	var d uint64
	if a >= b {
		d = a - b
	} else {
		d = b - a
	}
	for i, bound := range bounds {
		if d <= bound {
			return i
		}
	}
	return len(bounds)
}

// Total returns the number of instructions recorded.
func (a *Analyzer) Total() uint64 { return a.total }

// Vector returns the 69-element MICA characteristic vector measured so far.
// Stride-bucket metrics are cumulative probabilities P(|stride| <= bound).
func (a *Analyzer) Vector() []float64 {
	v := make([]float64, NumMetrics)
	if a.total == 0 {
		return v
	}
	ftotal := float64(a.total)

	for c := 0; c < isa.NumOpClasses; c++ {
		v[IdxMix+c] = float64(a.opCounts[c]) / ftotal
	}
	copy(v[IdxILP:IdxILP+4], a.ilp.IPC())

	v[IdxRegAvgSrc] = float64(a.srcOperands) / ftotal
	if a.regWrites > 0 {
		v[IdxRegUse] = float64(a.srcOperands) / float64(a.regWrites)
	}
	if a.depTotal > 0 {
		for i := 0; i < len(DepDistBounds); i++ {
			v[IdxRegDep+i] = float64(a.depBins[i]) / float64(a.depTotal)
		}
	}

	// Data pages are derived from the block set (page = block group of
	// isa.PageSize/isa.BlockSize): identical to tracking them online,
	// without the per-access insert.
	a.dataBlocks.FillShifted(&a.dataPages, uint(bits.TrailingZeros64(isa.PageSize/isa.BlockSize)))
	v[IdxFootprint+0] = float64(a.instrBlocks.Len())
	v[IdxFootprint+1] = float64(a.instrPages.Len())
	v[IdxFootprint+2] = float64(a.dataBlocks.Len())
	v[IdxFootprint+3] = float64(a.dataPages.Len())

	idx := IdxStrides
	idx = fillCumulative(v, idx, a.localLoadBins, a.localLoadCnt, len(LocalStrideBounds))
	idx = fillCumulative(v, idx, a.localStoreBins, a.localStoreCnt, len(LocalStrideBounds))
	idx = fillCumulative(v, idx, a.globalLoadBins, a.globalLoadCnt, len(GlobalStrideBounds))
	fillCumulative(v, idx, a.globalStoreBin, a.globalStoreCnt, len(GlobalStrideBounds))

	if a.condBranches > 0 {
		v[IdxTakenRate] = float64(a.condTaken) / float64(a.condBranches)
	}
	if a.transPairs > 0 {
		v[IdxTransRate] = float64(a.transitions) / float64(a.transPairs)
	}
	idx = IdxPPM
	for i := range a.predictors {
		for _, rate := range a.predictors[i].MissRates() {
			v[idx] = rate
			idx++
		}
	}
	return v
}

// fillCumulative writes the cumulative probabilities of the first n bins of
// a bin-count histogram into v starting at idx, returning the next index.
func fillCumulative(v []float64, idx int, bins []uint64, total uint64, n int) int {
	if total == 0 {
		return idx + n
	}
	var cum uint64
	for i := 0; i < n; i++ {
		cum += bins[i]
		v[idx+i] = float64(cum) / float64(total)
	}
	return idx + n
}
