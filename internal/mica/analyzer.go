package mica

import (
	"repro/internal/isa"
	"repro/internal/mica/ilp"
	"repro/internal/mica/ppm"
)

// Analyzer consumes an instruction stream and produces the 69-element MICA
// characteristic vector for it. Feed it one interval (or a whole program,
// for an aggregate characterization), read Vector, then Reset to reuse.
type Analyzer struct {
	total    uint64
	opCounts [isa.NumOpClasses]uint64

	ilp *ilp.Analyzer

	// Register traffic.
	srcOperands uint64
	regWrites   uint64
	depBins     [8]uint64 // 7 bounded bins + overflow
	depTotal    uint64
	lastWriter  [isa.NumRegs]uint64
	writerValid [isa.NumRegs]bool

	// Memory footprint.
	instrBlocks map[uint64]struct{}
	instrPages  map[uint64]struct{}
	dataBlocks  map[uint64]struct{}
	dataPages   map[uint64]struct{}

	// Strides.
	lastLoadAddr   uint64
	haveLoad       bool
	lastStoreAddr  uint64
	haveStore      bool
	lastLoadByPC   map[uint64]uint64
	lastStoreByPC  map[uint64]uint64
	localLoadBins  []uint64 // len(LocalStrideBounds)+1, last = beyond
	localStoreBins []uint64
	globalLoadBins []uint64 // len(GlobalStrideBounds)+1
	globalStoreBin []uint64
	localLoadCnt   uint64
	localStoreCnt  uint64
	globalLoadCnt  uint64
	globalStoreCnt uint64

	// Branch behaviour.
	condBranches uint64
	condTaken    uint64
	transitions  uint64
	transPairs   uint64
	lastOutcome  map[uint64]bool
	predictors   []*ppm.Group

	// Fast paths: last-seen instruction block/page (instruction fetch is
	// highly sequential, so most map probes can be skipped).
	lastInstrBlock uint64
	lastInstrPage  uint64
	haveInstr      bool
}

// NewAnalyzer returns a ready-to-use analyzer.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{}
	var err error
	a.ilp, err = ilp.NewAnalyzer(ilp.StandardWindows)
	if err != nil {
		panic("mica: standard ILP windows invalid: " + err.Error())
	}
	a.predictors = ppm.StandardGroups()
	a.localLoadBins = make([]uint64, len(LocalStrideBounds)+1)
	a.localStoreBins = make([]uint64, len(LocalStrideBounds)+1)
	a.globalLoadBins = make([]uint64, len(GlobalStrideBounds)+1)
	a.globalStoreBin = make([]uint64, len(GlobalStrideBounds)+1)
	a.resetMaps()
	return a
}

func (a *Analyzer) resetMaps() {
	a.instrBlocks = make(map[uint64]struct{}, 1024)
	a.instrPages = make(map[uint64]struct{}, 64)
	a.dataBlocks = make(map[uint64]struct{}, 4096)
	a.dataPages = make(map[uint64]struct{}, 256)
	a.lastLoadByPC = make(map[uint64]uint64, 1024)
	a.lastStoreByPC = make(map[uint64]uint64, 1024)
	a.lastOutcome = make(map[uint64]bool, 1024)
}

// Reset clears all measurement state so the analyzer can characterize a
// fresh interval.
func (a *Analyzer) Reset() {
	a.total = 0
	a.opCounts = [isa.NumOpClasses]uint64{}
	a.ilp.Reset()
	a.srcOperands = 0
	a.regWrites = 0
	a.depBins = [8]uint64{}
	a.depTotal = 0
	a.lastWriter = [isa.NumRegs]uint64{}
	a.writerValid = [isa.NumRegs]bool{}
	a.resetMaps()
	a.haveLoad = false
	a.haveStore = false
	zero(a.localLoadBins)
	zero(a.localStoreBins)
	zero(a.globalLoadBins)
	zero(a.globalStoreBin)
	a.localLoadCnt = 0
	a.localStoreCnt = 0
	a.globalLoadCnt = 0
	a.globalStoreCnt = 0
	a.condBranches = 0
	a.condTaken = 0
	a.transitions = 0
	a.transPairs = 0
	for _, p := range a.predictors {
		p.Reset()
	}
	a.haveInstr = false
}

func zero(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// Record accounts one dynamically executed instruction.
func (a *Analyzer) Record(ins *isa.Instruction) {
	a.opCounts[ins.Op]++

	// Instruction-stream footprint (fast path: consecutive PCs share a
	// block most of the time).
	if blk := ins.PC / isa.BlockSize; !a.haveInstr || blk != a.lastInstrBlock {
		a.instrBlocks[blk] = struct{}{}
		a.lastInstrBlock = blk
		if pg := ins.PC / isa.PageSize; !a.haveInstr || pg != a.lastInstrPage {
			a.instrPages[pg] = struct{}{}
			a.lastInstrPage = pg
		}
		a.haveInstr = true
	}

	// Register traffic: operand counts and dependency distances.
	for _, r := range ins.Sources() {
		if r == isa.ZeroReg {
			continue
		}
		a.srcOperands++
		if a.writerValid[r] {
			d := a.total - a.lastWriter[r]
			a.depTotal++
			a.depBins[depBin(d)]++
		}
	}
	if ins.WritesReg() {
		a.regWrites++
		a.lastWriter[ins.Dst] = a.total
		a.writerValid[ins.Dst] = true
	}

	// Data stream.
	switch {
	case ins.Op.IsMemRead():
		a.recordData(ins.Addr)
		if a.haveLoad {
			a.globalLoadBins[strideBin(ins.Addr, a.lastLoadAddr, GlobalStrideBounds)]++
			a.globalLoadCnt++
		}
		a.lastLoadAddr, a.haveLoad = ins.Addr, true
		if prev, ok := a.lastLoadByPC[ins.PC]; ok {
			a.localLoadBins[strideBin(ins.Addr, prev, LocalStrideBounds)]++
			a.localLoadCnt++
		}
		a.lastLoadByPC[ins.PC] = ins.Addr
	case ins.Op.IsMemWrite():
		a.recordData(ins.Addr)
		if a.haveStore {
			a.globalStoreBin[strideBin(ins.Addr, a.lastStoreAddr, GlobalStrideBounds)]++
			a.globalStoreCnt++
		}
		a.lastStoreAddr, a.haveStore = ins.Addr, true
		if prev, ok := a.lastStoreByPC[ins.PC]; ok {
			a.localStoreBins[strideBin(ins.Addr, prev, LocalStrideBounds)]++
			a.localStoreCnt++
		}
		a.lastStoreByPC[ins.PC] = ins.Addr
	}

	// Branch behaviour (conditional branches only).
	if ins.Op.IsConditional() {
		a.condBranches++
		if ins.Taken {
			a.condTaken++
		}
		if prev, ok := a.lastOutcome[ins.PC]; ok {
			a.transPairs++
			if prev != ins.Taken {
				a.transitions++
			}
		}
		a.lastOutcome[ins.PC] = ins.Taken
		for _, p := range a.predictors {
			p.Record(ins.PC, ins.Taken)
		}
	}

	a.ilp.Record(ins)
	a.total++
}

func (a *Analyzer) recordData(addr uint64) {
	a.dataBlocks[addr/isa.BlockSize] = struct{}{}
	a.dataPages[addr/isa.PageSize] = struct{}{}
}

// depBin maps a dependency distance to its bin: 7 bounded bins plus an
// overflow bin (the overflow bin is not itself a metric; it completes the
// distribution's denominator).
func depBin(d uint64) int {
	for i, b := range DepDistBounds {
		if d <= uint64(b) {
			return i
		}
	}
	return len(DepDistBounds)
}

// strideBin maps an absolute address delta to its cumulative-threshold bin.
func strideBin(a, b uint64, bounds []uint64) int {
	var d uint64
	if a >= b {
		d = a - b
	} else {
		d = b - a
	}
	for i, bound := range bounds {
		if d <= bound {
			return i
		}
	}
	return len(bounds)
}

// Total returns the number of instructions recorded.
func (a *Analyzer) Total() uint64 { return a.total }

// Vector returns the 69-element MICA characteristic vector measured so far.
// Stride-bucket metrics are cumulative probabilities P(|stride| <= bound).
func (a *Analyzer) Vector() []float64 {
	v := make([]float64, NumMetrics)
	if a.total == 0 {
		return v
	}
	ftotal := float64(a.total)

	for c := 0; c < isa.NumOpClasses; c++ {
		v[IdxMix+c] = float64(a.opCounts[c]) / ftotal
	}
	copy(v[IdxILP:IdxILP+4], a.ilp.IPC())

	v[IdxRegAvgSrc] = float64(a.srcOperands) / ftotal
	if a.regWrites > 0 {
		v[IdxRegUse] = float64(a.srcOperands) / float64(a.regWrites)
	}
	if a.depTotal > 0 {
		for i := 0; i < len(DepDistBounds); i++ {
			v[IdxRegDep+i] = float64(a.depBins[i]) / float64(a.depTotal)
		}
	}

	v[IdxFootprint+0] = float64(len(a.instrBlocks))
	v[IdxFootprint+1] = float64(len(a.instrPages))
	v[IdxFootprint+2] = float64(len(a.dataBlocks))
	v[IdxFootprint+3] = float64(len(a.dataPages))

	idx := IdxStrides
	idx = fillCumulative(v, idx, a.localLoadBins, a.localLoadCnt, len(LocalStrideBounds))
	idx = fillCumulative(v, idx, a.localStoreBins, a.localStoreCnt, len(LocalStrideBounds))
	idx = fillCumulative(v, idx, a.globalLoadBins, a.globalLoadCnt, len(GlobalStrideBounds))
	fillCumulative(v, idx, a.globalStoreBin, a.globalStoreCnt, len(GlobalStrideBounds))

	if a.condBranches > 0 {
		v[IdxTakenRate] = float64(a.condTaken) / float64(a.condBranches)
	}
	if a.transPairs > 0 {
		v[IdxTransRate] = float64(a.transitions) / float64(a.transPairs)
	}
	idx = IdxPPM
	for _, p := range a.predictors {
		for _, rate := range p.MissRates() {
			v[idx] = rate
			idx++
		}
	}
	return v
}

// fillCumulative writes the cumulative probabilities of the first n bins of
// a bin-count histogram into v starting at idx, returning the next index.
func fillCumulative(v []float64, idx int, bins []uint64, total uint64, n int) int {
	if total == 0 {
		return idx + n
	}
	var cum uint64
	for i := 0; i < n; i++ {
		cum += bins[i]
		v[idx+i] = float64(cum) / float64(total)
	}
	return idx + n
}
