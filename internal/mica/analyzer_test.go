package mica

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func TestMetricRegistry(t *testing.T) {
	ms := Metrics()
	if len(ms) != NumMetrics || NumMetrics != 69 {
		t.Fatalf("metric count = %d, want 69", len(ms))
	}
	seen := map[string]bool{}
	for i, m := range ms {
		if m.Index != i {
			t.Fatalf("metric %q at position %d has index %d", m.Name, i, m.Index)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate metric name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Description == "" {
			t.Fatalf("metric %q has no description", m.Name)
		}
	}
}

func TestCategoryCounts(t *testing.T) {
	// The paper's Table 1 category split.
	want := map[Category]int{
		CatInstructionMix:       20,
		CatILP:                  4,
		CatRegisterTraffic:      9,
		CatMemoryFootprint:      4,
		CatDataStrides:          18,
		CatBranchPredictability: 14,
	}
	total := 0
	for cat, n := range want {
		got := len(ByCategory(cat))
		if got != n {
			t.Errorf("category %v has %d metrics, want %d", cat, got, n)
		}
		total += got
	}
	if total != NumMetrics {
		t.Fatalf("categories cover %d metrics, want %d", total, NumMetrics)
	}
}

func TestCategoryString(t *testing.T) {
	if CatILP.String() != "ILP" || CatDataStrides.String() != "data stream strides" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() != "category(99)" {
		t.Fatal("unknown category string wrong")
	}
}

func TestMetricByName(t *testing.T) {
	m, ok := MetricByName("GAs_8bits")
	if !ok || m.Category != CatBranchPredictability {
		t.Fatalf("GAs_8bits lookup failed: %+v ok=%v", m, ok)
	}
	if _, ok := MetricByName("nope"); ok {
		t.Fatal("bogus metric name found")
	}
}

func TestMetricNamesOrder(t *testing.T) {
	names := MetricNames()
	if names[IdxMix] != "mix_load" || names[IdxTakenRate] != "br_taken_rate" {
		t.Fatalf("metric name layout wrong: %q %q", names[IdxMix], names[IdxTakenRate])
	}
}

func TestEmptyVectorIsZero(t *testing.T) {
	a := NewAnalyzer()
	v := a.Vector()
	if len(v) != NumMetrics {
		t.Fatalf("vector length %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("metric %d nonzero on empty analyzer: %v", i, x)
		}
	}
}

// feed records a hand-written instruction sequence.
func feed(a *Analyzer, seq []isa.Instruction) {
	for i := range seq {
		a.Record(&seq[i])
	}
}

func TestInstructionMixExact(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{Op: isa.OpLoad, Addr: 0x1000},
		{Op: isa.OpLoad, Addr: 0x1008},
		{Op: isa.OpStore, Addr: 0x2000},
		{Op: isa.OpIntAdd},
	})
	v := a.Vector()
	if got := v[IdxMix+int(isa.OpLoad)]; got != 0.5 {
		t.Fatalf("load fraction = %v, want 0.5", got)
	}
	if got := v[IdxMix+int(isa.OpStore)]; got != 0.25 {
		t.Fatalf("store fraction = %v, want 0.25", got)
	}
	if got := v[IdxMix+int(isa.OpIntAdd)]; got != 0.25 {
		t.Fatalf("int_add fraction = %v, want 0.25", got)
	}
}

func TestFootprintCounts(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpLoad, Addr: 0x10000},  // block 0x400, page 0x10
		{PC: 0x4, Op: isa.OpLoad, Addr: 0x10008},  // same block
		{PC: 0x40, Op: isa.OpLoad, Addr: 0x20000}, // new PC block, new data block/page
		{PC: 0x2000, Op: isa.OpStore, Addr: 0x20040},
	})
	v := a.Vector()
	if got := v[IdxFootprint+0]; got != 3 { // PC blocks: 0x0, 0x40(=block1), 0x2000
		t.Fatalf("instr blocks = %v, want 3", got)
	}
	if got := v[IdxFootprint+1]; got != 2 { // PC pages: 0x0, 0x2000
		t.Fatalf("instr pages = %v, want 2", got)
	}
	if got := v[IdxFootprint+2]; got != 3 { // data blocks: 0x10000, 0x20000, 0x20040
		t.Fatalf("data blocks = %v, want 3", got)
	}
	if got := v[IdxFootprint+3]; got != 2 { // data pages: 0x10, 0x20
		t.Fatalf("data pages = %v, want 2", got)
	}
}

func TestInstrFootprintFastPathRevisit(t *testing.T) {
	// Returning to a previously seen block after leaving it must not
	// inflate the count.
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpIntAdd},
		{PC: 0x100, Op: isa.OpIntAdd},
		{PC: 0x0, Op: isa.OpIntAdd},
		{PC: 0x4, Op: isa.OpIntAdd},
	})
	if got := a.Vector()[IdxFootprint+0]; got != 2 {
		t.Fatalf("instr blocks = %v, want 2", got)
	}
}

func TestGlobalAndLocalStrides(t *testing.T) {
	a := NewAnalyzer()
	// Two static loads: PC 0x0 strides by 8 (local stride 8); PC 0x4
	// jumps far. Global strides alternate between small and huge.
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpLoad, Addr: 0x1000},
		{PC: 0x4, Op: isa.OpLoad, Addr: 0x50000000},
		{PC: 0x0, Op: isa.OpLoad, Addr: 0x1008},
		{PC: 0x4, Op: isa.OpLoad, Addr: 0x90000000},
		{PC: 0x0, Op: isa.OpLoad, Addr: 0x1010},
	})
	v := a.Vector()
	// Local strides: PC 0x0 gave 8, 8; PC 0x4 gave 0x40000000. So 2 of 3
	// are <= 8.
	if got := v[IdxStrides+1]; math.Abs(got-2.0/3) > 1e-9 { // lls_8
		t.Fatalf("lls_8 = %v, want 2/3", got)
	}
	// Global strides: 4 deltas, all huge except none small.
	if got := v[IdxStrides+10]; got != 0 { // gls_64
		t.Fatalf("gls_64 = %v, want 0", got)
	}
	if got := v[IdxStrides+13]; got != 0 { // gls_16M: all deltas exceed 16M? 0x4FFFF000 > 16M yes
		t.Fatalf("gls_16777216 = %v, want 0", got)
	}
}

func TestStrideCumulativeMonotone(t *testing.T) {
	a := NewAnalyzer()
	// Mixed strides through one PC.
	addrs := []uint64{0x1000, 0x1000, 0x1008, 0x1048, 0x2048, 0x100000, 0x20000000}
	for _, ad := range addrs {
		a.Record(&isa.Instruction{PC: 0x8, Op: isa.OpLoad, Addr: ad})
	}
	v := a.Vector()
	prev := 0.0
	for i := 0; i < len(LocalStrideBounds); i++ {
		cur := v[IdxStrides+i]
		if cur < prev-1e-12 {
			t.Fatalf("local load stride cumulative not monotone at %d: %v < %v", i, cur, prev)
		}
		prev = cur
	}
	if v[IdxStrides+0] != 1.0/6 { // one zero-stride of six deltas
		t.Fatalf("lls_0 = %v, want 1/6", v[IdxStrides+0])
	}
}

func TestStoreStridesSeparateFromLoads(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpStore, Addr: 0x1000},
		{PC: 0x0, Op: isa.OpStore, Addr: 0x1008},
		{PC: 0x4, Op: isa.OpLoad, Addr: 0x9000},
		{PC: 0x4, Op: isa.OpLoad, Addr: 0x90000},
	})
	v := a.Vector()
	if got := v[IdxStrides+len(LocalStrideBounds)+1]; got != 1 { // lss_8
		t.Fatalf("lss_8 = %v, want 1", got)
	}
	if got := v[IdxStrides+1]; got != 0 { // lls_8: the load stride is large
		t.Fatalf("lls_8 = %v, want 0", got)
	}
}

func TestRegisterTraffic(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{Op: isa.OpIntAdd, Dst: 1}, // write r1
		{Op: isa.OpIntAdd, Dst: 2, Src: [isa.MaxSrcRegs]uint8{1}, NSrc: 1},    // dist 1
		{Op: isa.OpIntAdd, Dst: 0, Src: [isa.MaxSrcRegs]uint8{1, 2}, NSrc: 2}, // dists 2,1
		{Op: isa.OpNop},
	})
	v := a.Vector()
	if got := v[IdxRegAvgSrc]; got != 0.75 { // 3 source operands / 4 instructions
		t.Fatalf("avg src operands = %v, want 0.75", got)
	}
	if got := v[IdxRegUse]; got != 1.5 { // 3 reads / 2 writes
		t.Fatalf("degree of use = %v, want 1.5", got)
	}
	if got := v[IdxRegDep+0]; math.Abs(got-2.0/3) > 1e-9 { // two distance-1 deps of three
		t.Fatalf("reg_dep_1 = %v, want 2/3", got)
	}
	if got := v[IdxRegDep+1]; math.Abs(got-1.0/3) > 1e-9 { // one distance-2 dep
		t.Fatalf("reg_dep_2 = %v, want 1/3", got)
	}
}

func TestZeroRegSourceIgnored(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{Op: isa.OpIntAdd, Dst: 1},
		{Op: isa.OpIntAdd, Dst: 2, Src: [isa.MaxSrcRegs]uint8{isa.ZeroReg}, NSrc: 1},
	})
	if got := a.Vector()[IdxRegAvgSrc]; got != 0 {
		t.Fatalf("zero-reg source counted: %v", got)
	}
}

func TestBranchRates(t *testing.T) {
	a := NewAnalyzer()
	// One static branch: T N T N -> taken rate 0.5, transition rate 1.
	for i := 0; i < 4; i++ {
		a.Record(&isa.Instruction{PC: 0x10, Op: isa.OpBranchCond, Taken: i%2 == 0})
	}
	// Another: always taken -> transitions 0.
	for i := 0; i < 4; i++ {
		a.Record(&isa.Instruction{PC: 0x20, Op: isa.OpBranchCond, Taken: true})
	}
	v := a.Vector()
	if got := v[IdxTakenRate]; got != 0.75 { // 6 of 8 taken
		t.Fatalf("taken rate = %v, want 0.75", got)
	}
	if got := v[IdxTransRate]; got != 0.5 { // 3 transitions of 6 eligible pairs
		t.Fatalf("transition rate = %v, want 0.5", got)
	}
}

func TestPPMRatesPopulated(t *testing.T) {
	a := NewAnalyzer()
	// An alternating branch is nearly perfectly predictable for PPM.
	for i := 0; i < 4000; i++ {
		a.Record(&isa.Instruction{PC: 0x10, Op: isa.OpBranchCond, Taken: i%2 == 0})
	}
	v := a.Vector()
	for i := 0; i < 12; i++ {
		if rate := v[IdxPPM+i]; rate > 0.05 {
			t.Fatalf("PPM metric %d = %v on alternating branch", i, rate)
		}
	}
}

func TestUnconditionalBranchesNotCounted(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpBranchJump, Taken: true, Target: 0x100},
		{PC: 0x4, Op: isa.OpCall, Taken: true, Target: 0x200},
	})
	v := a.Vector()
	if v[IdxTakenRate] != 0 {
		t.Fatal("unconditional transfers leaked into taken rate")
	}
}

func TestResetClearsEverything(t *testing.T) {
	a := NewAnalyzer()
	feed(a, []isa.Instruction{
		{PC: 0x0, Op: isa.OpLoad, Addr: 0x1000, Dst: 1},
		{PC: 0x4, Op: isa.OpBranchCond, Taken: true},
		{PC: 0x8, Op: isa.OpStore, Addr: 0x2000, Src: [isa.MaxSrcRegs]uint8{1}, NSrc: 1},
	})
	a.Reset()
	if a.Total() != 0 {
		t.Fatal("Total nonzero after Reset")
	}
	v := a.Vector()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("metric %d = %v after Reset", i, x)
		}
	}
}

func TestTotalCounts(t *testing.T) {
	a := NewAnalyzer()
	for i := 0; i < 57; i++ {
		a.Record(&isa.Instruction{Op: isa.OpNop})
	}
	if a.Total() != 57 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestVectorILPPopulated(t *testing.T) {
	a := NewAnalyzer()
	for i := 0; i < 5000; i++ {
		a.Record(&isa.Instruction{Op: isa.OpIntAdd, Dst: uint8(1 + i%8), Src: [isa.MaxSrcRegs]uint8{uint8(1 + i%8)}, NSrc: 1})
	}
	v := a.Vector()
	if v[IdxILP] <= 0 {
		t.Fatal("ILP metric empty")
	}
	for i := 1; i < 4; i++ {
		if v[IdxILP+i] < v[IdxILP+i-1]-1e-9 {
			t.Fatalf("ILP not monotone in window: %v", v[IdxILP:IdxILP+4])
		}
	}
}

func TestPaperKeyCharacteristics(t *testing.T) {
	ms := PaperKeyCharacteristics()
	if len(ms) != 12 {
		t.Fatalf("paper key set has %d characteristics, want 12", len(ms))
	}
	seen := map[string]bool{}
	cats := map[Category]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate key characteristic %q", m.Name)
		}
		seen[m.Name] = true
		cats[m.Category] = true
	}
	// The paper's Table 2 spans mix, branch predictability, register
	// traffic, footprint and strides.
	for _, want := range []Category{CatInstructionMix, CatBranchPredictability,
		CatRegisterTraffic, CatMemoryFootprint, CatDataStrides} {
		if !cats[want] {
			t.Fatalf("paper key set missing category %v", want)
		}
	}
}
