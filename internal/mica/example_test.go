package mica_test

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/mica"
	"repro/internal/trace"
)

// Example characterizes one interval of a benchmark with the 69 MICA
// characteristics and reads a few of them by name.
func Example() {
	reg := bench.MustStandardRegistry()
	b, err := reg.Lookup("BioPerf/grappa")
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	analyzer := mica.NewAnalyzer()
	total := b.ScaledIntervals(48)
	err = trace.GenerateInterval(b.BehaviorAt(0, total), b.IntervalSeed(0), 20000,
		func(ins *isa.Instruction) { analyzer.Record(ins) })
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	v := analyzer.Vector()
	logic, _ := mica.MetricByName("mix_logic")
	ilp, _ := mica.MetricByName("ilp_64")
	// grappa's bit-vector kernel: logic-saturated and serial.
	fmt.Println(len(v), v[logic.Index] > 0.2, v[ilp.Index] < 5)
	// Output: 69 true true
}
