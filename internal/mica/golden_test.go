package mica

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// The golden-vector fixture pins the measurement kernel: for a few
// (behavior, seed, length) triples it records the exact 69-element vectors
// the kernel produced, bit for bit. Any rewrite of the generator, the
// analyzer, or its sub-models (ILP windows, PPM groups, hash tables) must
// keep reproducing them — at every batch size — or the refactor changed
// observable behaviour. Regenerate deliberately with:
//
//	go test ./internal/mica -run TestGoldenVectors -update
var updateGolden = flag.Bool("update", false, "rewrite the golden-vector fixture from the current kernel")

const goldenPath = "testdata/golden_vectors.json"

// goldenCase is one pinned (behavior, seed, length) triple.
type goldenCase struct {
	Behavior string    `json:"behavior"`
	Seed     uint64    `json:"seed"`
	Length   int       `json:"length"`
	Vector   []float64 `json:"vector"`
}

// goldenBehaviors returns a small set of phases chosen to exercise every
// kernel path: periodic and Bernoulli branches, all three access-pattern
// kinds, short and long dependence distances, int and FP mixes.
func goldenBehaviors() map[string]*trace.PhaseBehavior {
	intBranchy := &trace.PhaseBehavior{
		Name:     "golden/int-branchy",
		Mix:      trace.BaseMix(),
		CodeSize: 4096,
		Branch:   trace.BranchSpec{TakenBias: 0.7, PatternPeriod: 8, NoiseLevel: 0.02},
		Reg:      trace.RegDepSpec{MeanDepDist: 3, AvgSrcRegs: 1.6, WriteFraction: 0.7},
		Loads: []trace.AccessPattern{
			{Kind: trace.PatternStride, Weight: 0.7, Region: 1 << 18, Stride: 8},
			{Kind: trace.PatternRandom, Weight: 0.3, Region: 1 << 22},
		},
		Stores: []trace.AccessPattern{
			{Kind: trace.PatternStride, Weight: 1, Region: 1 << 16, Stride: 16},
		},
		Jitter: 0.1,
	}
	fpStream := &trace.PhaseBehavior{
		Name:     "golden/fp-stream",
		Mix:      trace.FPBaseMix(),
		CodeSize: 1024,
		Branch:   trace.BranchSpec{TakenBias: 0.95, PatternPeriod: 32, NoiseLevel: 0},
		Reg:      trace.RegDepSpec{MeanDepDist: 20, AvgSrcRegs: 2.1, WriteFraction: 0.85},
		Loads: []trace.AccessPattern{
			{Kind: trace.PatternStride, Weight: 1, Region: 1 << 24, Stride: 8},
		},
		Stores: []trace.AccessPattern{
			{Kind: trace.PatternStride, Weight: 1, Region: 1 << 24, Stride: 8},
		},
		Jitter: 0,
	}
	pointerChase := &trace.PhaseBehavior{
		Name:     "golden/pointer-chase",
		Mix:      trace.BaseMix().Set(isa.OpLoad, 0.35).Set(isa.OpBranchCond, 0.18),
		CodeSize: 16384,
		Branch:   trace.BranchSpec{TakenBias: 0.5, PatternPeriod: 0, NoiseLevel: 0},
		Reg:      trace.RegDepSpec{MeanDepDist: 1.5, AvgSrcRegs: 1.2, WriteFraction: 0.55},
		Loads: []trace.AccessPattern{
			{Kind: trace.PatternChase, Weight: 0.8, Region: 1 << 20},
			{Kind: trace.PatternRandom, Weight: 0.2, Region: 1 << 26},
		},
		Stores: []trace.AccessPattern{
			{Kind: trace.PatternRandom, Weight: 1, Region: 1 << 20},
		},
		Jitter: 0.25,
	}
	return map[string]*trace.PhaseBehavior{
		intBranchy.Name:   intBranchy,
		fpStream.Name:     fpStream,
		pointerChase.Name: pointerChase,
	}
}

// goldenTriples enumerates the pinned (behavior, seed, length) triples.
func goldenTriples() []goldenCase {
	var out []goldenCase
	for _, name := range []string{"golden/int-branchy", "golden/fp-stream", "golden/pointer-chase"} {
		for _, sl := range []struct {
			seed   uint64
			length int
		}{{1, 5000}, {42, 20000}, {987654321, 4097}} {
			out = append(out, goldenCase{Behavior: name, Seed: sl.seed, Length: sl.length})
		}
	}
	return out
}

// characterizeGolden runs one triple through the kernel with the given
// batch size (batch <= 0 selects the scalar per-instruction path).
func characterizeGolden(t *testing.T, a *Analyzer, c goldenCase, batch int) []float64 {
	t.Helper()
	beh, ok := goldenBehaviors()[c.Behavior]
	if !ok {
		t.Fatalf("unknown golden behavior %q", c.Behavior)
	}
	a.Reset()
	var err error
	if batch <= 0 {
		err = trace.GenerateInterval(beh, c.Seed, c.Length, func(ins *isa.Instruction) {
			a.Record(ins)
		})
	} else {
		buf := make([]isa.Instruction, batch)
		err = trace.GenerateIntervalBatches(beh, c.Seed, c.Length, buf, func(block []isa.Instruction) {
			a.RecordBatch(block)
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != uint64(c.Length) {
		t.Fatalf("%s seed %d: recorded %d instructions, want %d", c.Behavior, c.Seed, a.Total(), c.Length)
	}
	return a.Vector()
}

func TestGoldenVectors(t *testing.T) {
	cases := goldenTriples()
	if *updateGolden {
		a := NewAnalyzer()
		for i := range cases {
			cases[i].Vector = characterizeGolden(t, a, cases[i], 0)
		}
		blob, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d vectors", goldenPath, len(cases))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("fixture has %d cases, test defines %d (regenerate with -update)", len(want), len(cases))
	}

	// Batch size 0 is the scalar Record path; the rest drive RecordBatch at
	// sizes spanning smaller-than, equal-to, and larger-than the interval's
	// block structure (4097 makes the final block a single instruction).
	batchSizes := []int{0, 1, 7, 64, 4096, 8192}
	a := NewAnalyzer()
	for _, w := range want {
		for _, batch := range batchSizes {
			got := characterizeGolden(t, a, w, batch)
			if len(got) != len(w.Vector) {
				t.Fatalf("%s seed %d batch %d: vector length %d, want %d",
					w.Behavior, w.Seed, batch, len(got), len(w.Vector))
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(w.Vector[j]) {
					t.Errorf("%s seed %d length %d batch %d: metric %d (%s) = %v, want %v (bit-exact)",
						w.Behavior, w.Seed, w.Length, batch, j, MetricNames()[j], got[j], w.Vector[j])
				}
			}
		}
	}
}

// TestGoldenVectorsFreshAnalyzer re-runs one fixture triple on a brand-new
// analyzer per batch size, guarding against Reset-dependent state leaks
// (a reused analyzer that only passes because Reset hides missing init).
func TestGoldenVectorsFreshAnalyzer(t *testing.T) {
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skipf("no golden fixture: %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	w := want[0]
	for _, batch := range []int{0, 1, 4096} {
		got := characterizeGolden(t, NewAnalyzer(), w, batch)
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(w.Vector[j]) {
				t.Fatalf("fresh analyzer, batch %d: metric %d = %v, want %v", batch, j, got[j], w.Vector[j])
			}
		}
	}
}

var benchSinkVec []float64

func BenchmarkAnalyzerRecordBatch(b *testing.B) {
	beh := goldenBehaviors()["golden/int-branchy"]
	const n = 4096
	buf := make([]isa.Instruction, n)
	g, err := trace.NewGenerator(beh, 1)
	if err != nil {
		b.Fatal(err)
	}
	g.NextBatch(buf)
	a := NewAnalyzer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RecordBatch(buf)
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "instr/s")
}
