// Package ilp measures the inherent instruction-level parallelism of an
// instruction stream on an idealized processor: perfect caches, perfect
// branch prediction, unlimited functional units — the only constraints are
// true register data dependences and a finite window of in-flight
// instructions. This matches the four MICA "ILP" characteristics (IPC for
// window sizes 32, 64, 128 and 256).
package ilp

import (
	"fmt"

	"repro/internal/isa"
)

// StandardWindows are the window sizes of the paper's Table 1.
var StandardWindows = []int{32, 64, 128, 256}

// windowModel schedules instructions through one window size.
type windowModel struct {
	size     int
	regReady [isa.NumRegs]int64 // cycle each register value is available
	complete []int64            // ring buffer of completion cycles
	pos      int
	count    uint64
	lastDone int64 // latest completion cycle seen
}

func newWindowModel(size int) windowModel {
	return windowModel{
		size:     size,
		complete: make([]int64, size),
	}
}

func (w *windowModel) record(ins *isa.Instruction) {
	// Issue no earlier than when the instruction leaving the window
	// completed (a full window stalls dispatch), and no earlier than all
	// source operands are ready.
	start := int64(0)
	if w.count >= uint64(w.size) {
		start = w.complete[w.pos]
	}
	for _, r := range ins.Sources() {
		if r == isa.ZeroReg {
			continue
		}
		if t := w.regReady[r]; t > start {
			start = t
		}
	}
	done := start + int64(ins.Op.Latency())
	if ins.WritesReg() {
		w.regReady[ins.Dst] = done
	}
	w.complete[w.pos] = done
	w.pos++
	if w.pos == w.size {
		w.pos = 0
	}
	w.count++
	if done > w.lastDone {
		w.lastDone = done
	}
}

// recordBatch is record unrolled over a block: the window's scalar state
// lives in locals for the whole batch instead of being reloaded per call,
// and the full-window test is hoisted out of the steady-state loop (once
// count reaches the window size it stays there).
func (w *windowModel) recordBatch(batch []isa.Instruction) {
	pos := w.pos
	count := w.count
	lastDone := w.lastDone
	complete := w.complete
	size := len(complete)

	j := 0
	for ; j < len(batch) && count < uint64(size); j++ {
		ins := &batch[j]
		start := int64(0)
		for _, r := range ins.Src[:ins.NSrc] {
			if r == isa.ZeroReg {
				continue
			}
			if t := w.regReady[r]; t > start {
				start = t
			}
		}
		done := start + int64(ins.Op.Latency())
		if ins.Dst != isa.ZeroReg {
			w.regReady[ins.Dst] = done
		}
		complete[pos] = done
		pos++
		if pos == size {
			pos = 0
		}
		count++
		if done > lastDone {
			lastDone = done
		}
	}
	count += uint64(len(batch) - j)
	if size > 0 && size&(size-1) == 0 {
		// Power-of-two ring (all standard window sizes): mask instead of
		// wrap-compare, which also lets the compiler drop the ring bounds
		// checks. Register indices are masked with NumRegs-1 — an identity,
		// since registers are always < NumRegs — for the same reason.
		m := uint64(len(complete) - 1)
		p := uint64(pos)
		for ; j < len(batch); j++ {
			ins := &batch[j]
			start := complete[p&m]
			for _, r := range ins.Src[:ins.NSrc] {
				if r == isa.ZeroReg {
					continue
				}
				if t := w.regReady[r&(isa.NumRegs-1)]; t > start {
					start = t
				}
			}
			done := start + int64(ins.Op.Latency())
			if ins.Dst != isa.ZeroReg {
				w.regReady[ins.Dst&(isa.NumRegs-1)] = done
			}
			complete[p&m] = done
			p = (p + 1) & m
			if done > lastDone {
				lastDone = done
			}
		}
		pos = int(p)
	}
	for ; j < len(batch); j++ {
		ins := &batch[j]
		start := complete[pos]
		for _, r := range ins.Src[:ins.NSrc] {
			if r == isa.ZeroReg {
				continue
			}
			if t := w.regReady[r]; t > start {
				start = t
			}
		}
		done := start + int64(ins.Op.Latency())
		if ins.Dst != isa.ZeroReg {
			w.regReady[ins.Dst] = done
		}
		complete[pos] = done
		pos++
		if pos == size {
			pos = 0
		}
		if done > lastDone {
			lastDone = done
		}
	}
	w.pos, w.count, w.lastDone = pos, count, lastDone
}

func (w *windowModel) ipc() float64 {
	if w.count == 0 || w.lastDone == 0 {
		return 0
	}
	return float64(w.count) / float64(w.lastDone)
}

func (w *windowModel) reset() {
	clear(w.regReady[:])
	clear(w.complete)
	w.pos = 0
	w.count = 0
	w.lastDone = 0
}

// Analyzer measures ideal IPC for a set of window sizes simultaneously.
// The window models are stored by value, contiguously, so walking them on
// the hot path touches one slab rather than chasing pointers.
type Analyzer struct {
	windows []windowModel
}

// NewAnalyzer builds an analyzer for the given window sizes (typically
// StandardWindows).
func NewAnalyzer(windows []int) (*Analyzer, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("ilp: no window sizes")
	}
	a := &Analyzer{}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("ilp: non-positive window size %d", w)
		}
		a.windows = append(a.windows, newWindowModel(w))
	}
	return a, nil
}

// Record schedules one instruction in every window model.
func (a *Analyzer) Record(ins *isa.Instruction) {
	for i := range a.windows {
		a.windows[i].record(ins)
	}
}

// RecordBatch schedules a block of instructions. It runs window-major —
// the whole batch through window 32, then 64, and so on — which keeps
// each model's register scoreboard and completion ring hot for the length
// of the batch. The windows are mutually independent, so the result is
// identical to instruction-major Record calls.
func (a *Analyzer) RecordBatch(batch []isa.Instruction) {
	for i := range a.windows {
		a.windows[i].recordBatch(batch)
	}
}

// IPC returns the achieved ideal IPC per configured window, in the order
// the windows were given.
func (a *Analyzer) IPC() []float64 {
	out := make([]float64, len(a.windows))
	for i := range a.windows {
		out[i] = a.windows[i].ipc()
	}
	return out
}

// Reset clears all scheduling state.
func (a *Analyzer) Reset() {
	for i := range a.windows {
		a.windows[i].reset()
	}
}
