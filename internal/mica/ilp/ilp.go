// Package ilp measures the inherent instruction-level parallelism of an
// instruction stream on an idealized processor: perfect caches, perfect
// branch prediction, unlimited functional units — the only constraints are
// true register data dependences and a finite window of in-flight
// instructions. This matches the four MICA "ILP" characteristics (IPC for
// window sizes 32, 64, 128 and 256).
package ilp

import (
	"fmt"

	"repro/internal/isa"
)

// StandardWindows are the window sizes of the paper's Table 1.
var StandardWindows = []int{32, 64, 128, 256}

// windowModel schedules instructions through one window size.
type windowModel struct {
	size     int
	regReady [isa.NumRegs]int64 // cycle each register value is available
	complete []int64            // ring buffer of completion cycles
	pos      int
	count    uint64
	lastDone int64 // latest completion cycle seen
}

func newWindowModel(size int) *windowModel {
	return &windowModel{
		size:     size,
		complete: make([]int64, size),
	}
}

func (w *windowModel) record(ins *isa.Instruction) {
	// Issue no earlier than when the instruction leaving the window
	// completed (a full window stalls dispatch), and no earlier than all
	// source operands are ready.
	start := int64(0)
	if w.count >= uint64(w.size) {
		start = w.complete[w.pos]
	}
	for _, r := range ins.Sources() {
		if r == isa.ZeroReg {
			continue
		}
		if t := w.regReady[r]; t > start {
			start = t
		}
	}
	done := start + int64(ins.Op.Latency())
	if ins.WritesReg() {
		w.regReady[ins.Dst] = done
	}
	w.complete[w.pos] = done
	w.pos++
	if w.pos == w.size {
		w.pos = 0
	}
	w.count++
	if done > w.lastDone {
		w.lastDone = done
	}
}

func (w *windowModel) ipc() float64 {
	if w.count == 0 || w.lastDone == 0 {
		return 0
	}
	return float64(w.count) / float64(w.lastDone)
}

func (w *windowModel) reset() {
	w.regReady = [isa.NumRegs]int64{}
	for i := range w.complete {
		w.complete[i] = 0
	}
	w.pos = 0
	w.count = 0
	w.lastDone = 0
}

// Analyzer measures ideal IPC for a set of window sizes simultaneously.
type Analyzer struct {
	windows []*windowModel
}

// NewAnalyzer builds an analyzer for the given window sizes (typically
// StandardWindows).
func NewAnalyzer(windows []int) (*Analyzer, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("ilp: no window sizes")
	}
	a := &Analyzer{}
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("ilp: non-positive window size %d", w)
		}
		a.windows = append(a.windows, newWindowModel(w))
	}
	return a, nil
}

// Record schedules one instruction in every window model.
func (a *Analyzer) Record(ins *isa.Instruction) {
	for _, w := range a.windows {
		w.record(ins)
	}
}

// IPC returns the achieved ideal IPC per configured window, in the order
// the windows were given.
func (a *Analyzer) IPC() []float64 {
	out := make([]float64, len(a.windows))
	for i, w := range a.windows {
		out[i] = w.ipc()
	}
	return out
}

// Reset clears all scheduling state.
func (a *Analyzer) Reset() {
	for _, w := range a.windows {
		w.reset()
	}
}
