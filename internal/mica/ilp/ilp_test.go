package ilp

import (
	"math"
	"testing"

	"repro/internal/isa"
)

func mustAnalyzer(t *testing.T, windows []int) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(windows)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnalyzerRejectsBadWindows(t *testing.T) {
	if _, err := NewAnalyzer(nil); err == nil {
		t.Fatal("empty window list accepted")
	}
	if _, err := NewAnalyzer([]int{0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewAnalyzer([]int{-4}); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestSerialChainIPCIsOne(t *testing.T) {
	a := mustAnalyzer(t, []int{32, 256})
	// Every instruction reads the register the previous one wrote.
	for i := 0; i < 10000; i++ {
		ins := isa.Instruction{Op: isa.OpIntAdd, Dst: 1, Src: [isa.MaxSrcRegs]uint8{1}, NSrc: 1}
		a.Record(&ins)
	}
	for _, ipc := range a.IPC() {
		if math.Abs(ipc-1) > 0.01 {
			t.Fatalf("serial chain IPC = %v, want ~1", ipc)
		}
	}
}

func TestIndependentStreamIPCEqualsWindow(t *testing.T) {
	// With no dependences and unit latency, dispatch is limited only by
	// the window: IPC converges to the window size.
	a := mustAnalyzer(t, []int{32, 64})
	for i := 0; i < 64000; i++ {
		ins := isa.Instruction{Op: isa.OpIntAdd, Dst: 0} // no dst: no deps ever
		a.Record(&ins)
	}
	ipcs := a.IPC()
	if math.Abs(ipcs[0]-32) > 1 {
		t.Fatalf("window-32 IPC = %v, want ~32", ipcs[0])
	}
	if math.Abs(ipcs[1]-64) > 2 {
		t.Fatalf("window-64 IPC = %v, want ~64", ipcs[1])
	}
}

func TestDistanceLimitedChain(t *testing.T) {
	// A dependence spacing of d with unit latency yields IPC ~ d when d
	// is far below the window size.
	const d = 8
	a := mustAnalyzer(t, []int{256})
	for i := 0; i < 80000; i++ {
		reg := uint8(1 + i%d)
		ins := isa.Instruction{Op: isa.OpIntAdd, Dst: reg, Src: [isa.MaxSrcRegs]uint8{reg}, NSrc: 1}
		a.Record(&ins)
	}
	ipc := a.IPC()[0]
	if math.Abs(ipc-d) > 0.5 {
		t.Fatalf("distance-%d chain IPC = %v, want ~%d", d, ipc, d)
	}
}

func TestWindowMonotonicity(t *testing.T) {
	// IPC can never decrease with a larger window on the same stream.
	a := mustAnalyzer(t, []int{32, 64, 128, 256})
	x := uint64(7)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1
		reg := uint8(1 + x%60)
		src := uint8(1 + (x>>8)%60)
		ins := isa.Instruction{Op: isa.OpIntAdd, Dst: reg, Src: [isa.MaxSrcRegs]uint8{src}, NSrc: 1}
		a.Record(&ins)
	}
	ipcs := a.IPC()
	for i := 1; i < len(ipcs); i++ {
		if ipcs[i] < ipcs[i-1]-1e-9 {
			t.Fatalf("IPC not monotone in window size: %v", ipcs)
		}
	}
}

func TestZeroRegNeverCreatesDependence(t *testing.T) {
	a := mustAnalyzer(t, []int{32})
	for i := 0; i < 32000; i++ {
		ins := isa.Instruction{Op: isa.OpIntAdd, Dst: 0, Src: [isa.MaxSrcRegs]uint8{isa.ZeroReg}, NSrc: 1}
		a.Record(&ins)
	}
	if ipc := a.IPC()[0]; math.Abs(ipc-32) > 1 {
		t.Fatalf("zero-reg stream IPC = %v, want window-limited ~32", ipc)
	}
}

func TestEmptyIPCIsZero(t *testing.T) {
	a := mustAnalyzer(t, []int{32})
	if got := a.IPC()[0]; got != 0 {
		t.Fatalf("empty analyzer IPC = %v", got)
	}
}

func TestReset(t *testing.T) {
	a := mustAnalyzer(t, []int{32})
	ins := isa.Instruction{Op: isa.OpIntAdd, Dst: 1, Src: [isa.MaxSrcRegs]uint8{1}, NSrc: 1}
	for i := 0; i < 100; i++ {
		a.Record(&ins)
	}
	a.Reset()
	if got := a.IPC()[0]; got != 0 {
		t.Fatalf("IPC after Reset = %v", got)
	}
	// Post-reset behaviour identical to a fresh analyzer.
	for i := 0; i < 1000; i++ {
		a.Record(&isa.Instruction{Op: isa.OpIntAdd, Dst: 0})
	}
	if got := a.IPC()[0]; math.Abs(got-32) > 2 {
		t.Fatalf("IPC after Reset and refill = %v", got)
	}
}

func TestStandardWindows(t *testing.T) {
	want := []int{32, 64, 128, 256}
	if len(StandardWindows) != len(want) {
		t.Fatalf("StandardWindows = %v", StandardWindows)
	}
	for i, w := range want {
		if StandardWindows[i] != w {
			t.Fatalf("StandardWindows = %v, want %v", StandardWindows, want)
		}
	}
}
