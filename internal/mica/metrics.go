// Package mica implements the MICA (Microarchitecture-Independent
// Characterization of Applications) characteristic set of Hoste & Eeckhout:
// 69 microarchitecture-independent program characteristics measured per
// instruction interval, spanning instruction mix, inherent ILP, register
// traffic, memory footprint, data-stream strides and branch predictability
// (the paper's Table 1).
package mica

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mica/ppm"
)

// Category groups related characteristics, mirroring Table 1 of the paper.
type Category uint8

const (
	CatInstructionMix Category = iota
	CatILP
	CatRegisterTraffic
	CatMemoryFootprint
	CatDataStrides
	CatBranchPredictability

	// NumCategories is the number of characteristic categories.
	NumCategories = int(CatBranchPredictability) + 1
)

var categoryNames = [NumCategories]string{
	"instruction mix",
	"ILP",
	"register traffic",
	"memory footprint",
	"data stream strides",
	"branch predictability",
}

// String returns the category's Table 1 name.
func (c Category) String() string {
	if int(c) < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Stride bucket thresholds (bytes). Local strides (per static instruction)
// use finer buckets than global strides (consecutive accesses overall),
// following the MICA definitions.
var (
	// LocalStrideBounds are cumulative |stride| <= bound thresholds for
	// the per-static-instruction stride distributions.
	LocalStrideBounds = []uint64{0, 8, 64, 1024, 65536}
	// GlobalStrideBounds are cumulative |stride| <= bound thresholds for
	// the consecutive-access stride distributions.
	GlobalStrideBounds = []uint64{64, 4096, 262144, 16777216}
)

// DepDistBounds are the register dependency distance bucket upper bounds
// (inclusive); bucket i counts distances in (bounds[i-1], bounds[i]].
var DepDistBounds = []int{1, 2, 4, 8, 16, 32, 64}

// Metric index layout. The 69 characteristics are a fixed vector; these
// constants give the offset of each group.
const (
	IdxMix       = 0                         // 20 metrics: fraction of each isa.OpClass
	IdxILP       = IdxMix + isa.NumOpClasses // 4 metrics: ideal IPC, windows 32/64/128/256
	IdxRegAvgSrc = IdxILP + 4                // average register input operands per instruction
	IdxRegUse    = IdxRegAvgSrc + 1          // average degree of use (reads per write)
	IdxRegDep    = IdxRegUse + 1             // 7 metrics: dependency-distance distribution
	IdxFootprint = IdxRegDep + 7             // 4 metrics: instr/data x 64B-block/4KB-page counts
	IdxStrides   = IdxFootprint + 4          // 18 metrics: local/global x load/store buckets
	IdxTakenRate = IdxStrides + 18           // average branch taken rate
	IdxTransRate = IdxTakenRate + 1          // average branch transition rate
	IdxPPM       = IdxTransRate + 1          // 12 metrics: {GAg,GAs,PAg,PAs} x history {4,8,12}
	NumMetrics   = IdxPPM + 12               // 69
)

// SchemaVersion identifies the observable output of the measurement
// kernel: the metric layout above AND the exact values the generator and
// analyzer produce for a given (behavior, seed, length). It is the
// version component of the interval-vector cache key, so bump it whenever
// either changes observably — stale cached vectors then miss instead of
// silently polluting new runs. The golden-vector fixture
// (testdata/golden_vectors.json) pins the current version's output.
const SchemaVersion = 1

// Metric describes one of the 69 characteristics.
type Metric struct {
	// Index is the metric's position in a characteristic vector.
	Index int
	// Name is a short machine-friendly identifier, e.g. "gls_64".
	Name string
	// Description is the human-readable definition.
	Description string
	// Category is the Table 1 group.
	Category Category
}

var metrics []Metric

func addMetric(idx int, name, desc string, cat Category) {
	if idx != len(metrics) {
		panic(fmt.Sprintf("mica: metric %q registered at %d, expected %d", name, idx, len(metrics)))
	}
	metrics = append(metrics, Metric{Index: idx, Name: name, Description: desc, Category: cat})
}

func init() {
	for c := 0; c < isa.NumOpClasses; c++ {
		op := isa.OpClass(c)
		addMetric(IdxMix+c, "mix_"+op.String(),
			fmt.Sprintf("fraction of %s instructions", op), CatInstructionMix)
	}
	for i, w := range []int{32, 64, 128, 256} {
		addMetric(IdxILP+i, fmt.Sprintf("ilp_%d", w),
			fmt.Sprintf("ideal IPC with a %d-entry instruction window (perfect caches and branch prediction)", w), CatILP)
	}
	addMetric(IdxRegAvgSrc, "reg_src_cnt", "average number of register input operands per instruction", CatRegisterTraffic)
	addMetric(IdxRegUse, "reg_use_deg", "average degree of use of register values (reads per write)", CatRegisterTraffic)
	for i, b := range DepDistBounds {
		lo := 1
		if i > 0 {
			lo = DepDistBounds[i-1] + 1
		}
		name := fmt.Sprintf("reg_dep_%d", b)
		desc := fmt.Sprintf("probability register dependency distance in [%d,%d] instructions", lo, b)
		addMetric(IdxRegDep+i, name, desc, CatRegisterTraffic)
	}
	addMetric(IdxFootprint+0, "instr_footprint_64B", "unique 64-byte blocks touched by the instruction stream", CatMemoryFootprint)
	addMetric(IdxFootprint+1, "instr_footprint_4KB", "unique 4KB pages touched by the instruction stream", CatMemoryFootprint)
	addMetric(IdxFootprint+2, "data_footprint_64B", "unique 64-byte blocks touched by the data stream", CatMemoryFootprint)
	addMetric(IdxFootprint+3, "data_footprint_4KB", "unique 4KB pages touched by the data stream", CatMemoryFootprint)
	idx := IdxStrides
	for _, b := range LocalStrideBounds {
		addMetric(idx, fmt.Sprintf("lls_%d", b), fmt.Sprintf("probability local load stride <= %d bytes", b), CatDataStrides)
		idx++
	}
	for _, b := range LocalStrideBounds {
		addMetric(idx, fmt.Sprintf("lss_%d", b), fmt.Sprintf("probability local store stride <= %d bytes", b), CatDataStrides)
		idx++
	}
	for _, b := range GlobalStrideBounds {
		addMetric(idx, fmt.Sprintf("gls_%d", b), fmt.Sprintf("probability global load stride <= %d bytes", b), CatDataStrides)
		idx++
	}
	for _, b := range GlobalStrideBounds {
		addMetric(idx, fmt.Sprintf("gss_%d", b), fmt.Sprintf("probability global store stride <= %d bytes", b), CatDataStrides)
		idx++
	}
	addMetric(IdxTakenRate, "br_taken_rate", "average branch taken rate", CatBranchPredictability)
	addMetric(IdxTransRate, "br_trans_rate", "average branch transition rate", CatBranchPredictability)
	for i, cfg := range ppm.StandardConfigs() {
		addMetric(IdxPPM+i, fmt.Sprintf("%s_%dbits", cfg.Name(), cfg.MaxHistory),
			fmt.Sprintf("misprediction rate of the theoretical PPM %s predictor with %d-bit history", cfg.Name(), cfg.MaxHistory),
			CatBranchPredictability)
	}
	if len(metrics) != NumMetrics {
		panic(fmt.Sprintf("mica: registered %d metrics, want %d", len(metrics), NumMetrics))
	}
}

// Metrics returns descriptors for all 69 characteristics, in vector order.
func Metrics() []Metric {
	out := make([]Metric, len(metrics))
	copy(out, metrics)
	return out
}

// MetricNames returns the 69 short names, in vector order.
func MetricNames() []string {
	out := make([]string, len(metrics))
	for i, m := range metrics {
		out[i] = m.Name
	}
	return out
}

// MetricByName returns the descriptor with the given short name.
func MetricByName(name string) (Metric, bool) {
	for _, m := range metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// ByCategory returns the metrics of one Table 1 category, in vector order.
func ByCategory(c Category) []Metric {
	var out []Metric
	for _, m := range metrics {
		if m.Category == c {
			out = append(out, m)
		}
	}
	return out
}

// PaperKeyCharacteristics returns the 12 key characteristics the paper's
// own genetic algorithm retained (its Table 2), mapped to this
// implementation's metric names. Two instruction-mix entries are garbled
// in the available copy of the paper and are approximated by the multiply
// and shift fractions. This fixed set is useful for paper-comparable
// kiviat plots without re-running the GA.
func PaperKeyCharacteristics() []Metric {
	names := []string{
		"br_trans_rate",       // average branch transition rate
		"GAs_4bits",           // PPM GAs misprediction, 4-bit history
		"mix_int_mul",         // percentage ... instructions (garbled in source)
		"mix_shift",           // percentage ... instructions (garbled in source)
		"instr_footprint_64B", // instruction footprint, 64-byte blocks
		"data_footprint_64B",  // data footprint, 64-byte blocks
		"lss_1024",            // prob local store stride <= 1K
		"lss_64",              // prob local store stride <= 64
		"gls_262144",          // prob global load stride <= 256K
		"gls_64",              // prob global load stride <= 64
		"reg_use_deg",         // average degree of use
		"reg_src_cnt",         // average number of register operands
	}
	out := make([]Metric, 0, len(names))
	for _, n := range names {
		m, ok := MetricByName(n)
		if !ok {
			panic("mica: paper key characteristic " + n + " not registered")
		}
		out = append(out, m)
	}
	return out
}
