package ppm

import (
	"fmt"
	"sort"
)

// Outcome is one resolved conditional branch, the unit of work for
// RecordAll: collecting a batch of outcomes and replaying it through each
// group in turn keeps that group's tables hot in cache for the whole
// batch instead of cycling every group's working set per instruction.
type Outcome struct {
	PC    uint64
	Taken bool
}

// Group evaluates one predictor variant (history scope x table scope) at
// several maximum history lengths simultaneously. Because a PPM predictor
// with maximum history H uses exactly the order-0..H frequency tables of
// the H'-history predictor (H' >= H) of the same variant, the group
// maintains one set of tables at the longest history and answers every
// configured length from it — identical results to independent Predictor
// instances at a fraction of the cost.
//
// Entry storage is a small open-addressing hash map keyed by the
// direct-mapped table index (order << tableBits | hashed context), not the
// multi-megabyte direct-mapped slab itself. One interval touches a few
// thousand distinct entries out of ~200K slots, so the slab's cache
// behavior is dreadful: every access lands on its own cache line (4 live
// bytes out of 64). The map packs the same entries 8 bytes apiece into a
// contiguous table that fits in L2. Aliasing is untouched — two contexts
// collide if and only if they produce the same direct-mapped index, which
// is the map key — so the results are bit-identical to the slab. If an
// interval overflows maxSlots the group spills the map into a real slab
// and finishes the interval there, preserving exactness at any scale.
type Group struct {
	histScope  Scope
	tableScope Scope
	lengths    []int // sorted ascending
	maxHist    int

	mask      uint64
	tableBits uint

	// Map mode: slot = idx<<32 | entry. A slot is empty iff it is zero —
	// every stored entry has total >= 1, and a zero entry is semantically
	// identical to an absent one. Grown by doubling at 50% load.
	slots  []uint64
	nslots int
	// maxSlots caps map growth; exceeding it spills to the slab. A field
	// (not a constant) so tests can force the spill path cheaply.
	maxSlots int

	// Spill mode: the direct-mapped slab, allocated on first spill and
	// kept for later spilling intervals. inSlab marks the current
	// interval as spilled.
	slab   []uint32
	inSlab bool

	globalHist uint64
	localHist  []uint64
	localMask  uint64

	predictions uint64
	misses      []uint64 // per length

	// RecordAll staging (reused across batches): per-outcome history, pc
	// hash term and taken bit (pre-widened to the counter increment so the
	// order passes never re-derive it), and the per-outcome index of the
	// longest history length whose prediction is still unresolved.
	histBuf  []uint64
	pcBuf    []uint64
	takenBuf []uint16
	pending  []int8
}

// NewGroup builds a grouped predictor for the given history lengths
// (typically {4, 8, 12}).
func NewGroup(histScope, tableScope Scope, lengths []int, tableBits int) (*Group, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("ppm: group with no history lengths")
	}
	ls := append([]int(nil), lengths...)
	sort.Ints(ls)
	if ls[0] < 0 || ls[len(ls)-1] > 32 {
		return nil, fmt.Errorf("ppm: history lengths %v out of [0,32]", ls)
	}
	if tableBits == 0 {
		tableBits = 14
	}
	if tableBits < 4 || tableBits > 24 {
		return nil, fmt.Errorf("ppm: table bits %d out of [4,24]", tableBits)
	}
	g := &Group{
		histScope:  histScope,
		tableScope: tableScope,
		lengths:    ls,
		maxHist:    ls[len(ls)-1],
		mask:       1<<uint(tableBits) - 1,
		tableBits:  uint(tableBits),
		misses:     make([]uint64, len(ls)),
		slots:      make([]uint64, 1<<12),
		maxSlots:   1 << 16,
	}
	if histScope == PerAddress {
		const localBits = 10
		g.localHist = make([]uint64, 1<<localBits)
		g.localMask = 1<<localBits - 1
	}
	return g, nil
}

// Lengths returns the configured history lengths, ascending.
func (g *Group) Lengths() []int { return append([]int(nil), g.lengths...) }

// Name returns the variant name, e.g. "PAs".
func (g *Group) Name() string {
	return Config{HistoryScope: g.histScope, TableScope: g.tableScope}.Name()
}

// Reset clears all predictor state and counters. The entry map keeps its
// grown capacity; the slab (if any) was cleared when it was entered, so
// dropping back to map mode is all a spilled interval needs.
func (g *Group) Reset() {
	clear(g.slots)
	g.nslots = 0
	g.inSlab = false
	clear(g.localHist)
	g.globalHist = 0
	g.predictions = 0
	clear(g.misses)
}

// slotHash spreads a table index over the slot array. Multiply-shift:
// idx's low bits are already a mix64 output, the multiply folds the order
// bits in.
func slotHash(idx uint64) uint64 { return idx * 0x9e3779b97f4a7c15 }

// loadEntry returns the packed counters for idx, zero if unseen this
// interval.
func (g *Group) loadEntry(idx uint64) uint32 {
	if g.inSlab {
		return g.slab[idx]
	}
	slots := g.slots
	if len(slots) == 0 {
		return 0
	}
	m := uint64(len(slots) - 1)
	for h := slotHash(idx); ; h++ {
		s := slots[h&m]
		if s == 0 {
			return 0
		}
		if s>>32 == idx {
			return uint32(s)
		}
	}
}

// storeEntry writes the updated counters for idx. wasZero marks a first
// touch (a map insert).
func (g *Group) storeEntry(idx uint64, e uint32, wasZero bool) {
	if g.inSlab {
		g.slab[idx] = e
		return
	}
	slots := g.slots
	if len(slots) == 0 {
		return
	}
	m := uint64(len(slots) - 1)
	for h := slotHash(idx); ; h++ {
		s := slots[h&m]
		if s == 0 || s>>32 == idx {
			slots[h&m] = idx<<32 | uint64(e)
			break
		}
	}
	if wasZero {
		g.nslots++
		if 2*g.nslots >= len(slots) {
			g.growOrSpill()
		}
	}
}

// growOrSpill doubles the slot array, or migrates to the direct-mapped
// slab once the map would outgrow maxSlots.
func (g *Group) growOrSpill() {
	if 2*len(g.slots) <= g.maxSlots {
		old := g.slots
		g.slots = make([]uint64, 2*len(old))
		m := uint64(len(g.slots) - 1)
		for _, s := range old {
			if s == 0 {
				continue
			}
			h := slotHash(s >> 32)
			for g.slots[h&m] != 0 {
				h++
			}
			g.slots[h&m] = s
		}
		return
	}
	// Spill: move every live entry to its direct-mapped slot. The slab
	// may hold a previous spilled interval's counters, so clear it first.
	if g.slab == nil {
		// Padded to a power of two so the hot loop can index it as
		// slab[idx&(len-1)]: a no-op mask (idx is already in range) that
		// lets the compiler drop the bounds checks.
		n := 1
		for n < (g.maxHist+1)<<g.tableBits {
			n <<= 1
		}
		g.slab = make([]uint32, n)
	} else {
		clear(g.slab)
	}
	for _, s := range g.slots {
		if s != 0 {
			g.slab[s>>32] = uint32(s)
		}
	}
	g.inSlab = true
}

// Record predicts the branch at pc at every configured history length,
// then updates the shared tables with the outcome.
func (g *Group) Record(pc uint64, taken bool) {
	hist := &g.globalHist
	var pcTerm uint64
	if g.histScope == PerAddress || g.tableScope == PerAddress {
		h := mix64(pc)
		if g.histScope == PerAddress {
			hist = &g.localHist[h&g.localMask]
		}
		if g.tableScope == PerAddress {
			pcTerm = h << 1
		}
	}
	g.record(*hist, pcTerm, taken)

	*hist = *hist << 1
	if taken {
		*hist |= 1
	}
	g.predictions++
}

// record runs the fused predict+update pass for one branch. A single
// descending sweep is equivalent to the predict-then-update split: each
// order's entries are disjoint (the order is part of the index), so when
// order o is visited only orders above it have been updated and its entry
// still holds the pre-update counts every prediction must read.
func (g *Group) record(hist, pcTerm uint64, taken bool) {
	lengths := g.lengths
	misses := g.misses
	pending := len(lengths) - 1
	for o := g.maxHist; o >= 0; o-- {
		ctx := hist & (1<<uint(o) - 1)
		idx := uint64(o)<<g.tableBits + (mix64(ctx<<6^uint64(o)^pcTerm) & g.mask)
		e := g.loadEntry(idx)
		taken16, total16 := uint16(e>>16), uint16(e)

		if total16 != 0 {
			pred := 2*uint32(taken16) >= uint32(total16)
			for pending >= 0 && lengths[pending] >= o {
				if pred != taken {
					misses[pending]++
				}
				pending--
			}
		}

		if total16 == entryMax {
			taken16 /= 2
			total16 /= 2
		}
		total16++
		if taken {
			taken16++
		}
		g.storeEntry(idx, uint32(taken16)<<16|uint32(total16), total16 == 1)
	}
	// Cutoffs that found no seen context at any order default to taken.
	for ; pending >= 0; pending-- {
		if !taken {
			misses[pending]++
		}
	}
}

// RecordAll replays a batch of branch outcomes in order, equivalent to
// calling Record on each outcome but restructured order-major: the
// per-outcome history and pc term are staged once, then the whole batch
// sweeps the orders one at a time. The reordering is invisible: within an
// order, outcomes are replayed in stream order (so every read sees
// exactly the updates scalar processing would have applied), and
// different orders index disjoint entries.
func (g *Group) RecordAll(outcomes []Outcome) {
	n := len(outcomes)
	if n == 0 {
		return
	}
	if cap(g.histBuf) < n {
		g.histBuf = make([]uint64, n)
		g.pcBuf = make([]uint64, n)
		g.takenBuf = make([]uint16, n)
		g.pending = make([]int8, n)
	}
	hists := g.histBuf[:n]
	pcs := g.pcBuf[:n]
	takens := g.takenBuf[:n]
	pending := g.pending[:n]

	// Stage each outcome's pre-update history and pc hash term, advancing
	// the history state exactly as scalar Record would.
	switch {
	case g.histScope == PerAddress:
		perAddrTables := g.tableScope == PerAddress
		for i := range outcomes {
			o := &outcomes[i]
			h := mix64(o.PC)
			slot := &g.localHist[h&g.localMask]
			hists[i] = *slot
			if perAddrTables {
				pcs[i] = h << 1
			} else {
				pcs[i] = 0
			}
			t := uint16(0)
			if o.Taken {
				t = 1
			}
			takens[i] = t
			*slot = *slot<<1 | uint64(t)
		}
	case g.tableScope == PerAddress:
		hist := g.globalHist
		for i := range outcomes {
			o := &outcomes[i]
			hists[i] = hist
			pcs[i] = mix64(o.PC) << 1
			t := uint16(0)
			if o.Taken {
				t = 1
			}
			takens[i] = t
			hist = hist<<1 | uint64(t)
		}
		g.globalHist = hist
	default: // GAg
		hist := g.globalHist
		for i := range outcomes {
			hists[i] = hist
			pcs[i] = 0
			t := uint16(0)
			if outcomes[i].Taken {
				t = 1
			}
			takens[i] = t
			hist = hist<<1 | uint64(t)
		}
		g.globalHist = hist
	}

	top := int8(len(g.lengths) - 1)
	for i := range pending {
		pending[i] = top
	}
	for o := g.maxHist; o >= 0; o-- {
		g.recordOrder(o, takens, hists, pcs, pending)
	}
	// Outcomes whose short cutoffs found no seen context at any order
	// default to predicted-taken.
	for i := range takens {
		if takens[i] == 0 {
			for p := pending[i]; p >= 0; p-- {
				g.misses[p]++
			}
		}
	}
	g.predictions += uint64(n)
}

// recordOrder runs one order's predict+update pass over a staged batch.
func (g *Group) recordOrder(o int, takens []uint16, hists, pcs []uint64, pending []int8) {
	i := 0
	if !g.inSlab {
		i = g.recordOrderMap(o, takens, hists, pcs, pending)
	}
	if i < len(takens) {
		g.recordOrderSlab(o, takens[i:], hists[i:], pcs[i:], pending[i:])
	}
}

// recordOrderMap is the map-mode pass. It returns the index of the first
// unprocessed outcome — len(takens) normally, earlier if the map
// spilled to the slab mid-pass.
func (g *Group) recordOrderMap(o int, takens []uint16, hists, pcs []uint64, pending []int8) int {
	lengths := g.lengths
	misses := g.misses
	base := uint64(o) << g.tableBits
	ctxMask := uint64(1)<<uint(o) - 1
	oTerm := uint64(o)
	tblMask := g.mask
	// The table pointer and probe mask only change on growth, so they live
	// in locals and are reloaded after growOrSpill rather than per outcome.
	slots := g.slots
	if len(slots) == 0 {
		return 0
	}
	m := uint64(len(slots) - 1)
	for i := range takens {
		takenInc := takens[i]
		taken := takenInc != 0
		idx := base + (mix64((hists[i]&ctxMask)<<6^oTerm^pcs[i]) & tblMask)

		// Fused lookup+update probe: remember the slot so the store does
		// not probe again.
		h := slotHash(idx)
		var e uint32
		for {
			s := slots[h&m]
			if s == 0 {
				e = 0
				break
			}
			if s>>32 == idx {
				e = uint32(s)
				break
			}
			h++
		}
		taken16, total16 := uint16(e>>16), uint16(e)

		if total16 != 0 {
			p := pending[i]
			if p >= 0 && lengths[p] >= o {
				pred := 2*uint32(taken16) >= uint32(total16)
				for {
					var mi uint64
					if pred != taken {
						mi = 1
					}
					misses[p] += mi
					p--
					if p < 0 || lengths[p] < o {
						break
					}
				}
				pending[i] = p
			}
		}

		if total16 == entryMax {
			taken16 /= 2
			total16 /= 2
		}
		total16++
		taken16 += takenInc
		slots[h&m] = idx<<32 | uint64(uint32(taken16)<<16|uint32(total16))
		if e == 0 {
			g.nslots++
			if 2*g.nslots >= len(slots) {
				g.growOrSpill()
				if g.inSlab {
					return i + 1
				}
				slots = g.slots
				if len(slots) == 0 {
					return i + 1
				}
				m = uint64(len(slots) - 1)
			}
		}
	}
	return len(takens)
}

// recordOrderSlab is the spilled pass over the direct-mapped slab.
func (g *Group) recordOrderSlab(o int, takens []uint16, hists, pcs []uint64, pending []int8) {
	slab := g.slab
	if len(slab) == 0 {
		return
	}
	lenMask := uint64(len(slab) - 1) // no-op mask proving accesses in bounds
	lengths := g.lengths
	misses := g.misses
	base := uint64(o) << g.tableBits
	ctxMask := uint64(1)<<uint(o) - 1
	oTerm := uint64(o)
	for i := range takens {
		takenInc := takens[i]
		taken := takenInc != 0
		idx := base + (mix64((hists[i]&ctxMask)<<6^oTerm^pcs[i]) & g.mask)
		e := slab[idx&lenMask]
		taken16, total16 := uint16(e>>16), uint16(e)

		if total16 != 0 {
			p := pending[i]
			if p >= 0 && lengths[p] >= o {
				pred := 2*uint32(taken16) >= uint32(total16)
				for {
					var mi uint64
					if pred != taken {
						mi = 1
					}
					misses[p] += mi
					p--
					if p < 0 || lengths[p] < o {
						break
					}
				}
				pending[i] = p
			}
		}

		if total16 == entryMax {
			taken16 /= 2
			total16 /= 2
		}
		total16++
		taken16 += takenInc
		slab[idx&lenMask] = uint32(taken16)<<16 | uint32(total16)
	}
}

// MissRates returns the misprediction rate per configured history length,
// ascending by length.
func (g *Group) MissRates() []float64 {
	out := make([]float64, len(g.lengths))
	if g.predictions == 0 {
		return out
	}
	for i, m := range g.misses {
		out[i] = float64(m) / float64(g.predictions)
	}
	return out
}

// Predictions returns the number of branches recorded.
func (g *Group) Predictions() uint64 { return g.predictions }

// StandardGroups returns the four variant groups covering the twelve
// standard configurations, in the same variant order as StandardConfigs
// (GAg, GAs, PAg, PAs; each at histories 4, 8, 12). The groups are
// returned by value, contiguous, so a caller iterating predictors touches
// one slab of headers instead of four scattered allocations.
func StandardGroups() []Group {
	scopes := []struct{ h, t Scope }{
		{Global, Global},
		{Global, PerAddress},
		{PerAddress, Global},
		{PerAddress, PerAddress},
	}
	out := make([]Group, 0, len(scopes))
	for _, s := range scopes {
		g, err := NewGroup(s.h, s.t, []int{4, 8, 12}, 0)
		if err != nil {
			panic("ppm: standard group invalid: " + err.Error())
		}
		out = append(out, *g)
	}
	return out
}
