package ppm

import (
	"fmt"
	"sort"
)

// Group evaluates one predictor variant (history scope x table scope) at
// several maximum history lengths simultaneously. Because a PPM predictor
// with maximum history H uses exactly the order-0..H frequency tables of
// the H'-history predictor (H' >= H) of the same variant, the group
// maintains one set of tables at the longest history and answers every
// configured length from it — identical results to independent Predictor
// instances at a fraction of the cost.
type Group struct {
	histScope  Scope
	tableScope Scope
	lengths    []int // sorted ascending
	maxHist    int

	mask   uint64
	tables [][]entry

	globalHist uint64
	localHist  []uint64
	localMask  uint64

	predictions uint64
	misses      []uint64 // per length
}

// NewGroup builds a grouped predictor for the given history lengths
// (typically {4, 8, 12}).
func NewGroup(histScope, tableScope Scope, lengths []int, tableBits int) (*Group, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("ppm: group with no history lengths")
	}
	ls := append([]int(nil), lengths...)
	sort.Ints(ls)
	if ls[0] < 0 || ls[len(ls)-1] > 32 {
		return nil, fmt.Errorf("ppm: history lengths %v out of [0,32]", ls)
	}
	if tableBits == 0 {
		tableBits = 14
	}
	if tableBits < 4 || tableBits > 24 {
		return nil, fmt.Errorf("ppm: table bits %d out of [4,24]", tableBits)
	}
	g := &Group{
		histScope:  histScope,
		tableScope: tableScope,
		lengths:    ls,
		maxHist:    ls[len(ls)-1],
		mask:       1<<uint(tableBits) - 1,
		misses:     make([]uint64, len(ls)),
	}
	g.tables = make([][]entry, g.maxHist+1)
	for o := range g.tables {
		g.tables[o] = make([]entry, 1<<uint(tableBits))
	}
	if histScope == PerAddress {
		const localBits = 10
		g.localHist = make([]uint64, 1<<localBits)
		g.localMask = 1<<localBits - 1
	}
	return g, nil
}

// Lengths returns the configured history lengths, ascending.
func (g *Group) Lengths() []int { return append([]int(nil), g.lengths...) }

// Name returns the variant name, e.g. "PAs".
func (g *Group) Name() string {
	return Config{HistoryScope: g.histScope, TableScope: g.tableScope}.Name()
}

// Reset clears all predictor state and counters.
func (g *Group) Reset() {
	for o := range g.tables {
		t := g.tables[o]
		for i := range t {
			t[i] = entry{}
		}
	}
	for i := range g.localHist {
		g.localHist[i] = 0
	}
	g.globalHist = 0
	g.predictions = 0
	for i := range g.misses {
		g.misses[i] = 0
	}
}

func (g *Group) index(order int, hist, pc uint64) uint64 {
	ctx := hist & (1<<uint(order) - 1)
	key := ctx<<6 ^ uint64(order)
	if g.tableScope == PerAddress {
		key ^= mix64(pc) << 1
	}
	return mix64(key) & g.mask
}

// Record predicts the branch at pc at every configured history length,
// then updates the shared tables with the outcome.
func (g *Group) Record(pc uint64, taken bool) {
	hist := &g.globalHist
	if g.histScope == PerAddress {
		hist = &g.localHist[mix64(pc)&g.localMask]
	}

	// One pass from the longest order down: whenever a seen context is
	// crossed, it becomes the prediction for every cutoff >= that order
	// that has not found a longer context yet.
	pending := len(g.lengths) - 1
	for o := g.maxHist; o >= 0 && pending >= 0; o-- {
		if g.lengths[pending] < o {
			continue // no unresolved cutoff can use a context this long
		}
		e := &g.tables[o][g.index(o, *hist, pc)]
		if e.total == 0 {
			continue
		}
		pred := 2*uint32(e.taken) >= uint32(e.total)
		for pending >= 0 && g.lengths[pending] >= o {
			if pred != taken {
				g.misses[pending]++
			}
			pending--
		}
	}
	// Cutoffs that found no seen context at any order default to taken.
	for pending >= 0 {
		if !taken {
			g.misses[pending]++
		}
		pending--
	}

	for o := 0; o <= g.maxHist; o++ {
		e := &g.tables[o][g.index(o, *hist, pc)]
		if e.total == entryMax {
			e.taken /= 2
			e.total /= 2
		}
		e.total++
		if taken {
			e.taken++
		}
	}

	*hist = *hist << 1
	if taken {
		*hist |= 1
	}
	g.predictions++
}

// MissRates returns the misprediction rate per configured history length,
// ascending by length.
func (g *Group) MissRates() []float64 {
	out := make([]float64, len(g.lengths))
	if g.predictions == 0 {
		return out
	}
	for i, m := range g.misses {
		out[i] = float64(m) / float64(g.predictions)
	}
	return out
}

// Predictions returns the number of branches recorded.
func (g *Group) Predictions() uint64 { return g.predictions }

// StandardGroups returns the four variant groups covering the twelve
// standard configurations, in the same variant order as StandardConfigs
// (GAg, GAs, PAg, PAs; each at histories 4, 8, 12).
func StandardGroups() []*Group {
	scopes := []struct{ h, t Scope }{
		{Global, Global},
		{Global, PerAddress},
		{PerAddress, Global},
		{PerAddress, PerAddress},
	}
	out := make([]*Group, 0, len(scopes))
	for _, s := range scopes {
		g, err := NewGroup(s.h, s.t, []int{4, 8, 12}, 0)
		if err != nil {
			panic("ppm: standard group invalid: " + err.Error())
		}
		out = append(out, g)
	}
	return out
}
