// Package ppm implements the theoretical PPM (prediction by partial
// matching) conditional-branch predictor of Chen, Coffey & Mudge (ASPLOS
// 1996), as used by the MICA branch-predictability characteristics: the
// predictor keeps frequency tables for every context order up to a maximum
// history length and predicts with the longest context it has seen,
// escaping to shorter contexts otherwise.
//
// Four variants are supported, crossing the history scope with the table
// scope:
//
//	GAg — global history, global pattern tables
//	GAs — global history, per-address (per-branch) pattern tables
//	PAg — per-address history, global pattern tables
//	PAs — per-address history, per-address pattern tables
package ppm

import "fmt"

// Scope selects global or per-address for a predictor dimension.
type Scope uint8

const (
	// Global shares one history register or pattern table across all
	// branches.
	Global Scope = iota
	// PerAddress keys the history register or pattern table by branch
	// address.
	PerAddress
)

func (s Scope) String() string {
	if s == Global {
		return "G"
	}
	return "P"
}

// Config describes one PPM predictor variant.
type Config struct {
	// HistoryScope selects a global history register (G) or per-branch
	// history registers (P).
	HistoryScope Scope
	// TableScope selects globally shared pattern tables (g) or
	// per-address tables (s, i.e. the branch address participates in the
	// table index).
	TableScope Scope
	// MaxHistory is the maximum context length in branch outcomes
	// (bits); the paper uses 4, 8 and 12.
	MaxHistory int
	// TableBits sizes each order's hashed table at 1<<TableBits entries;
	// 0 selects a default of 14.
	TableBits int
}

// Name returns the conventional two-level-predictor name, e.g. "GAs".
func (c Config) Name() string {
	table := "g"
	if c.TableScope == PerAddress {
		table = "s"
	}
	return fmt.Sprintf("%sA%s", c.HistoryScope, table)
}

// entry is one frequency-table cell: outcomes observed and how many were
// taken, saturating.
type entry struct {
	taken uint16
	total uint16
}

const entryMax = 1<<16 - 1

// Predictor is a PPM predictor instance. The zero value is not usable; use
// New.
type Predictor struct {
	cfg    Config
	mask   uint64
	tables [][]entry // one hashed table per order 0..MaxHistory

	globalHist uint64
	localHist  []uint64 // per-address history registers (hashed by PC)
	localMask  uint64

	predictions uint64
	misses      uint64
}

// New builds a predictor for the given configuration.
func New(cfg Config) (*Predictor, error) {
	if cfg.MaxHistory < 0 || cfg.MaxHistory > 32 {
		return nil, fmt.Errorf("ppm: max history %d out of [0,32]", cfg.MaxHistory)
	}
	if cfg.TableBits == 0 {
		cfg.TableBits = 14
	}
	if cfg.TableBits < 4 || cfg.TableBits > 24 {
		return nil, fmt.Errorf("ppm: table bits %d out of [4,24]", cfg.TableBits)
	}
	p := &Predictor{
		cfg:  cfg,
		mask: 1<<uint(cfg.TableBits) - 1,
	}
	p.tables = make([][]entry, cfg.MaxHistory+1)
	for o := range p.tables {
		p.tables[o] = make([]entry, 1<<uint(cfg.TableBits))
	}
	if cfg.HistoryScope == PerAddress {
		const localBits = 10
		p.localHist = make([]uint64, 1<<localBits)
		p.localMask = 1<<localBits - 1
	}
	return p, nil
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Reset clears all state, including the accuracy counters.
func (p *Predictor) Reset() {
	for o := range p.tables {
		clear(p.tables[o])
	}
	clear(p.localHist)
	p.globalHist = 0
	p.predictions = 0
	p.misses = 0
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// index hashes an order-o context (and the PC, for per-address tables)
// into the order's table.
func (p *Predictor) index(order int, hist, pc uint64) uint64 {
	ctx := hist & (1<<uint(order) - 1)
	key := ctx<<6 ^ uint64(order)
	if p.cfg.TableScope == PerAddress {
		key ^= mix64(pc) << 1
	}
	return mix64(key) & p.mask
}

// history returns the active history register for a branch.
func (p *Predictor) history(pc uint64) *uint64 {
	if p.cfg.HistoryScope == Global {
		return &p.globalHist
	}
	return &p.localHist[mix64(pc)&p.localMask]
}

// Record predicts the branch at pc, then updates the predictor with the
// actual outcome. It returns the prediction that was made.
func (p *Predictor) Record(pc uint64, taken bool) (predicted bool) {
	hist := p.history(pc)

	// Predict with the longest matching (seen) context; default taken.
	predicted = true
	for o := p.cfg.MaxHistory; o >= 0; o-- {
		e := &p.tables[o][p.index(o, *hist, pc)]
		if e.total > 0 {
			predicted = 2*uint32(e.taken) >= uint32(e.total)
			break
		}
	}

	// Update every order's frequency table.
	for o := 0; o <= p.cfg.MaxHistory; o++ {
		e := &p.tables[o][p.index(o, *hist, pc)]
		if e.total == entryMax {
			e.taken /= 2
			e.total /= 2
		}
		e.total++
		if taken {
			e.taken++
		}
	}

	// Shift the outcome into the history register.
	*hist = *hist << 1
	if taken {
		*hist |= 1
	}

	p.predictions++
	if predicted != taken {
		p.misses++
	}
	return predicted
}

// Predictions returns how many branches have been recorded.
func (p *Predictor) Predictions() uint64 { return p.predictions }

// Misses returns how many recorded branches were mispredicted.
func (p *Predictor) Misses() uint64 { return p.misses }

// MissRate returns the misprediction rate, or 0 before any branch.
func (p *Predictor) MissRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.misses) / float64(p.predictions)
}

// StandardConfigs returns the twelve predictor variants measured by the
// MICA branch-predictability characteristics: {GAg, GAs, PAg, PAs} crossed
// with maximum history lengths {4, 8, 12}.
func StandardConfigs() []Config {
	scopes := []struct{ h, t Scope }{
		{Global, Global},
		{Global, PerAddress},
		{PerAddress, Global},
		{PerAddress, PerAddress},
	}
	lengths := []int{4, 8, 12}
	cfgs := make([]Config, 0, len(scopes)*len(lengths))
	for _, s := range scopes {
		for _, h := range lengths {
			cfgs = append(cfgs, Config{HistoryScope: s.h, TableScope: s.t, MaxHistory: h})
		}
	}
	return cfgs
}
