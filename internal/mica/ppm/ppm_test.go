package ppm

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigNames(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{Config{Global, Global, 8, 0}, "GAg"},
		{Config{Global, PerAddress, 8, 0}, "GAs"},
		{Config{PerAddress, Global, 8, 0}, "PAg"},
		{Config{PerAddress, PerAddress, 8, 0}, "PAs"},
	}
	for _, tt := range tests {
		if got := tt.cfg.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{MaxHistory: -1}); err == nil {
		t.Fatal("negative history accepted")
	}
	if _, err := New(Config{MaxHistory: 40}); err == nil {
		t.Fatal("oversized history accepted")
	}
	if _, err := New(Config{MaxHistory: 8, TableBits: 2}); err == nil {
		t.Fatal("tiny table accepted")
	}
	if _, err := New(Config{MaxHistory: 8, TableBits: 30}); err == nil {
		t.Fatal("huge table accepted")
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := mustNew(t, Config{Global, Global, 8, 0})
	for i := 0; i < 1000; i++ {
		p.Record(0x400, true)
	}
	if rate := p.MissRate(); rate > 0.01 {
		t.Fatalf("always-taken miss rate = %v", rate)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	for _, cfg := range StandardConfigs() {
		p := mustNew(t, cfg)
		for i := 0; i < 2000; i++ {
			p.Record(0x400, i%2 == 0)
		}
		if rate := p.MissRate(); rate > 0.05 {
			t.Fatalf("%s_%d: alternating pattern miss rate %v", cfg.Name(), cfg.MaxHistory, rate)
		}
	}
}

func TestPeriodicPatternNeedsHistory(t *testing.T) {
	// A period-6 pattern (5 taken, 1 not) is learnable with history >= 5
	// but not with history 4 contexts alone (the all-taken context is
	// ambiguous), so longer histories must do strictly better.
	run := func(hist int) float64 {
		p := mustNew(t, Config{Global, Global, hist, 0})
		for i := 0; i < 6000; i++ {
			p.Record(0x400, i%6 != 5)
		}
		return p.MissRate()
	}
	short := run(4)
	long := run(12)
	if long >= short {
		t.Fatalf("12-bit history (%v) not better than 4-bit (%v) on period-6 pattern", long, short)
	}
	if long > 0.02 {
		t.Fatalf("period-6 pattern not learned by 12-bit PPM: %v", long)
	}
}

func TestRandomOutcomesNearHalf(t *testing.T) {
	p := mustNew(t, Config{Global, PerAddress, 8, 0})
	x := uint64(12345)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p.Record(0x400, x>>63 == 1)
	}
	if rate := p.MissRate(); math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("random-outcome miss rate = %v, want ~0.5", rate)
	}
}

func TestPerAddressHistorySeparatesBranches(t *testing.T) {
	// Two interleaved branches with opposite constant outcomes: trivial
	// for per-address history, also learnable globally, but per-address
	// tables must not confuse them.
	p := mustNew(t, Config{PerAddress, PerAddress, 8, 0})
	for i := 0; i < 4000; i++ {
		p.Record(0x100, true)
		p.Record(0x200, false)
	}
	if rate := p.MissRate(); rate > 0.01 {
		t.Fatalf("two-constant-branch miss rate = %v", rate)
	}
}

func TestReset(t *testing.T) {
	p := mustNew(t, Config{Global, Global, 4, 0})
	for i := 0; i < 100; i++ {
		p.Record(0x400, true)
	}
	p.Reset()
	if p.Predictions() != 0 || p.Misses() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if p.MissRate() != 0 {
		t.Fatal("MissRate after Reset should be 0")
	}
}

func TestStandardConfigs(t *testing.T) {
	cfgs := StandardConfigs()
	if len(cfgs) != 12 {
		t.Fatalf("got %d standard configs, want 12", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		key := c.Name() + string(rune(c.MaxHistory))
		if seen[key] {
			t.Fatalf("duplicate config %s/%d", c.Name(), c.MaxHistory)
		}
		seen[key] = true
		if c.MaxHistory != 4 && c.MaxHistory != 8 && c.MaxHistory != 12 {
			t.Fatalf("unexpected history length %d", c.MaxHistory)
		}
	}
}

// TestGroupMatchesIndividualPredictors is the equivalence property backing
// the analyzer's use of Group: for any outcome stream, the grouped
// predictor must report exactly the miss rates of the twelve independent
// PPM predictors.
func TestGroupMatchesIndividualPredictors(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		groups := StandardGroups()
		var preds []*Predictor
		for _, cfg := range StandardConfigs() {
			p, err := New(cfg)
			if err != nil {
				return false
			}
			preds = append(preds, p)
		}
		x := seed
		for _, b := range raw {
			// A handful of branch PCs with data-dependent outcomes.
			pc := uint64(0x400000 + int(b%7)*4)
			x = x*6364136223846793005 + 1442695040888963407
			taken := (x>>62)&1 == 1 || b%3 == 0
			for gi := range groups {
				groups[gi].Record(pc, taken)
			}
			for _, p := range preds {
				p.Record(pc, taken)
			}
		}
		i := 0
		for gi := range groups {
			for _, rate := range groups[gi].MissRates() {
				if math.Abs(rate-preds[i].MissRate()) > 1e-12 {
					return false
				}
				i++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// outcomeStream produces a deterministic mixed-PC branch stream.
func outcomeStream(seed uint64, n int) []Outcome {
	out := make([]Outcome, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = Outcome{
			PC:    uint64(0x400000 + int(x>>59&7)*4),
			Taken: (x>>62)&1 == 1 || x%5 == 0,
		}
	}
	return out
}

// TestGroupRecordAllMatchesRecord pins RecordAll to the scalar path for
// every variant: same outcomes, same miss rates, same prediction count.
func TestGroupRecordAllMatchesRecord(t *testing.T) {
	stream := outcomeStream(99, 5000)
	scalar := StandardGroups()
	batched := StandardGroups()
	for i := range scalar {
		for _, o := range stream {
			scalar[i].Record(o.PC, o.Taken)
		}
		// Feed in uneven chunks to cross batch boundaries mid-history.
		for lo := 0; lo < len(stream); {
			hi := lo + 1 + (lo % 613)
			if hi > len(stream) {
				hi = len(stream)
			}
			batched[i].RecordAll(stream[lo:hi])
			lo = hi
		}
		if scalar[i].Predictions() != batched[i].Predictions() {
			t.Fatalf("%s: predictions %d vs %d", scalar[i].Name(),
				scalar[i].Predictions(), batched[i].Predictions())
		}
		sr, br := scalar[i].MissRates(), batched[i].MissRates()
		for j := range sr {
			if sr[j] != br[j] {
				t.Fatalf("%s length %d: RecordAll miss rate %v, Record %v",
					scalar[i].Name(), scalar[i].Lengths()[j], br[j], sr[j])
			}
		}
	}
}

// TestGroupResetIsolation verifies the epoch-based Reset: a group reused
// across many Reset cycles must produce exactly the results of a fresh
// group on every interval, i.e. no state can leak through the epoch
// stamps.
func TestGroupResetIsolation(t *testing.T) {
	reused := StandardGroups()
	for round := 0; round < 5; round++ {
		stream := outcomeStream(uint64(round)*77+1, 3000)
		fresh := StandardGroups()
		for i := range reused {
			reused[i].Reset()
			reused[i].RecordAll(stream)
			fresh[i].RecordAll(stream)
			rr, fr := reused[i].MissRates(), fresh[i].MissRates()
			for j := range rr {
				if rr[j] != fr[j] {
					t.Fatalf("round %d %s length %d: reused %v, fresh %v",
						round, reused[i].Name(), reused[i].Lengths()[j], rr[j], fr[j])
				}
			}
		}
	}
}

func TestGroupReset(t *testing.T) {
	g, err := NewGroup(Global, Global, []int{4, 8, 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		g.Record(0x4, i%2 == 0)
	}
	g.Reset()
	if g.Predictions() != 0 {
		t.Fatal("Reset did not clear predictions")
	}
	for _, r := range g.MissRates() {
		if r != 0 {
			t.Fatal("Reset did not clear miss counters")
		}
	}
}

func TestGroupRejectsBadConfig(t *testing.T) {
	if _, err := NewGroup(Global, Global, nil, 0); err == nil {
		t.Fatal("empty lengths accepted")
	}
	if _, err := NewGroup(Global, Global, []int{40}, 0); err == nil {
		t.Fatal("oversized history accepted")
	}
	if _, err := NewGroup(Global, Global, []int{4}, 2); err == nil {
		t.Fatal("tiny tables accepted")
	}
}

func TestGroupLengthsSortedCopy(t *testing.T) {
	g, err := NewGroup(Global, Global, []int{12, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls := g.Lengths()
	if ls[0] != 4 || ls[1] != 8 || ls[2] != 12 {
		t.Fatalf("Lengths() = %v, want ascending", ls)
	}
	ls[0] = 99
	if g.Lengths()[0] != 4 {
		t.Fatal("Lengths() exposed internal slice")
	}
}

func TestScopeString(t *testing.T) {
	if Global.String() != "G" || PerAddress.String() != "P" {
		t.Fatal("scope strings wrong")
	}
}

func TestGroupName(t *testing.T) {
	g, err := NewGroup(PerAddress, Global, []int{4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "PAg" {
		t.Fatalf("group name = %q", g.Name())
	}
}

// TestGroupSpillMatchesReference forces the entry map to spill into the
// direct-mapped slab mid-interval and checks the results stay identical
// to the reference predictors, including across a Reset and a second
// spilled interval.
func TestGroupSpillMatchesReference(t *testing.T) {
	// A wide PC range accumulates distinct entries quickly.
	n := 6000
	outs := make([]Outcome, n)
	x := uint64(7)
	for i := range outs {
		x = x*6364136223846793005 + 1442695040888963407
		outs[i] = Outcome{
			PC:    0x400000 + (x>>40)%4096*4,
			Taken: (x>>62)&1 == 1 || x%3 == 0,
		}
	}
	newPreds := func() []*Predictor {
		var preds []*Predictor
		for _, cfg := range StandardConfigs() {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			preds = append(preds, p)
		}
		return preds
	}
	groups := StandardGroups()
	for gi := range groups {
		groups[gi].slots = make([]uint64, 1<<8)
		groups[gi].maxSlots = 1 << 9
	}
	for round := 0; round < 2; round++ {
		preds := newPreds()
		for gi := range groups {
			if round > 0 {
				groups[gi].Reset()
			}
			groups[gi].RecordAll(outs)
		}
		for _, o := range outs {
			for _, p := range preds {
				p.Record(o.PC, o.Taken)
			}
		}
		spilled := 0
		i := 0
		for gi := range groups {
			if groups[gi].inSlab {
				spilled++
			}
			for _, rate := range groups[gi].MissRates() {
				if rate != preds[i].MissRate() {
					t.Fatalf("round %d %s: miss rate %v, reference %v",
						round, groups[gi].Name(), rate, preds[i].MissRate())
				}
				i++
			}
		}
		if spilled == 0 {
			t.Fatalf("round %d: no group spilled; test is vacuous", round)
		}
	}
}
