package mica

// Open-addressing uint64 hash structures for the analyzer hot path. The
// seven Go maps the analyzer previously kept (footprint sets, per-PC stride
// tables, per-branch outcome table) cost a hash-function call, bucket
// walk and write barrier per touch; these replace them with linear-probe
// tables over power-of-two []uint64 slabs that are cleared in place on
// Reset — capacity survives across intervals, so a long-running worker
// stops allocating entirely once its tables have grown to the workload's
// footprint.
//
// Key 0 is a legal key (instruction block 0, PC 0) and is tracked out of
// band, so slot value 0 can mean "empty".

// tableHash mixes a key before probing (splitmix64 finalizer, the same
// mixer the trace package uses for its deterministic parameters).
func tableHash(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// maxLoad is the numerator of the grow threshold: tables double when
// n >= cap*maxLoad/maxLoadDen, keeping probe chains short.
const (
	maxLoad    = 3
	maxLoadDen = 4
)

// u64Set is an open-addressing set of uint64 keys.
type u64Set struct {
	slots []uint64 // 0 = empty
	mask  uint64
	n     int // stored non-zero keys
	zero  bool
	limit int // grow when n reaches this
}

// initSet readies the set with capacity 1<<logCap.
func (s *u64Set) initSet(logCap uint) {
	s.slots = make([]uint64, 1<<logCap)
	s.mask = uint64(len(s.slots) - 1)
	s.limit = len(s.slots) * maxLoad / maxLoadDen
	s.n = 0
	s.zero = false
}

// Add inserts k if absent.
func (s *u64Set) Add(k uint64) {
	if k == 0 {
		s.zero = true
		return
	}
	i := tableHash(k) & s.mask
	for {
		v := s.slots[i]
		if v == k {
			return
		}
		if v == 0 {
			s.slots[i] = k
			s.n++
			if s.n >= s.limit {
				s.grow()
			}
			return
		}
		i = (i + 1) & s.mask
	}
}

func (s *u64Set) grow() {
	old := s.slots
	s.slots = make([]uint64, 2*len(old))
	s.mask = uint64(len(s.slots) - 1)
	s.limit = len(s.slots) * maxLoad / maxLoadDen
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := tableHash(k) & s.mask
		for s.slots[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.slots[i] = k
	}
}

// Len returns the number of distinct keys added.
func (s *u64Set) Len() int {
	if s.zero {
		return s.n + 1
	}
	return s.n
}

// Clear empties the set in place, keeping its capacity.
func (s *u64Set) Clear() {
	clear(s.slots)
	s.n = 0
	s.zero = false
}

// FillShifted rebuilds dst as the set of this set's keys right-shifted by
// shift bits. It is how the analyzer derives the page footprint from the
// block footprint at Vector time instead of maintaining both online.
func (s *u64Set) FillShifted(dst *u64Set, shift uint) {
	dst.Clear()
	if s.zero {
		dst.Add(0)
	}
	for _, k := range s.slots {
		if k != 0 {
			dst.Add(k >> shift)
		}
	}
}

// u64Map is an open-addressing uint64 → uint64 table.
type u64Map struct {
	keys    []uint64 // 0 = empty
	vals    []uint64
	mask    uint64
	n       int
	zero    bool
	zeroVal uint64
	limit   int
}

// initMap readies the map with capacity 1<<logCap.
func (m *u64Map) initMap(logCap uint) {
	m.keys = make([]uint64, 1<<logCap)
	m.vals = make([]uint64, 1<<logCap)
	m.mask = uint64(len(m.keys) - 1)
	m.limit = len(m.keys) * maxLoad / maxLoadDen
	m.n = 0
	m.zero = false
}

// Swap stores k → v and returns the previous value, if any. It is the
// fused Get+Put the stride and branch-outcome paths need: one probe chain
// instead of two.
func (m *u64Map) Swap(k, v uint64) (prev uint64, ok bool) {
	if k == 0 {
		prev, ok = m.zeroVal, m.zero
		m.zero, m.zeroVal = true, v
		return prev, ok
	}
	i := tableHash(k) & m.mask
	for {
		kk := m.keys[i]
		if kk == k {
			prev = m.vals[i]
			m.vals[i] = v
			return prev, true
		}
		if kk == 0 {
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			if m.n >= m.limit {
				m.grow()
			}
			return 0, false
		}
		i = (i + 1) & m.mask
	}
}

func (m *u64Map) grow() {
	oldK, oldV := m.keys, m.vals
	m.keys = make([]uint64, 2*len(oldK))
	m.vals = make([]uint64, 2*len(oldV))
	m.mask = uint64(len(m.keys) - 1)
	m.limit = len(m.keys) * maxLoad / maxLoadDen
	for j, k := range oldK {
		if k == 0 {
			continue
		}
		i := tableHash(k) & m.mask
		for m.keys[i] != 0 {
			i = (i + 1) & m.mask
		}
		m.keys[i] = k
		m.vals[i] = oldV[j]
	}
}

// Len returns the number of stored keys.
func (m *u64Map) Len() int {
	if m.zero {
		return m.n + 1
	}
	return m.n
}

// Clear empties the map in place, keeping its capacity. Values need no
// clearing: a slot is only read after its key matches, and any insert
// overwrites the value first.
func (m *u64Map) Clear() {
	clear(m.keys)
	m.n = 0
	m.zero = false
}
