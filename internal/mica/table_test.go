package mica

import (
	"testing"
	"testing/quick"
)

// TestU64SetMatchesMap drives the open-addressing set and a Go map with
// the same key stream — including key 0 and enough distinct keys to force
// several growths — and requires identical membership counts.
func TestU64SetMatchesMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		var s u64Set
		s.initSet(3) // tiny, so growth paths are exercised
		ref := make(map[uint64]struct{})
		x := seed
		for i := 0; i < int(n); i++ {
			x = x*6364136223846793005 + 1442695040888963407
			k := x >> 48 // narrow range: lots of duplicates
			if i%97 == 0 {
				k = 0
			}
			s.Add(k)
			ref[k] = struct{}{}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestU64MapMatchesMap drives Swap against a Go map reference model.
func TestU64MapMatchesMap(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		var m u64Map
		m.initMap(3)
		ref := make(map[uint64]uint64)
		x := seed
		for i := 0; i < int(n); i++ {
			x = x*6364136223846793005 + 1442695040888963407
			k := x >> 50
			if i%89 == 0 {
				k = 0
			}
			v := x
			prev, ok := m.Swap(k, v)
			refPrev, refOK := ref[k]
			ref[k] = v
			if ok != refOK || (ok && prev != refPrev) {
				return false
			}
			if m.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDepBinMatchesBounds pins the closed-form depBin to the linear scan
// over DepDistBounds it replaced.
func TestDepBinMatchesBounds(t *testing.T) {
	ref := func(d uint64) int {
		for i, b := range DepDistBounds {
			if d <= uint64(b) {
				return i
			}
		}
		return len(DepDistBounds)
	}
	for d := uint64(0); d < 300; d++ {
		if got, want := depBin(d), ref(d); got != want {
			t.Fatalf("depBin(%d) = %d, want %d", d, got, want)
		}
	}
	for _, d := range []uint64{1 << 20, 1 << 40, ^uint64(0)} {
		if got, want := depBin(d), ref(d); got != want {
			t.Fatalf("depBin(%d) = %d, want %d", d, got, want)
		}
	}
}

// TestTableClearKeepsCapacity verifies Clear empties in place without
// shrinking, and that a cleared table behaves like a fresh one.
func TestTableClearKeepsCapacity(t *testing.T) {
	var s u64Set
	s.initSet(3)
	for k := uint64(0); k < 100; k++ {
		s.Add(k)
	}
	if s.Len() != 100 {
		t.Fatalf("set len = %d, want 100", s.Len())
	}
	capBefore := len(s.slots)
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("cleared set len = %d", s.Len())
	}
	if len(s.slots) != capBefore {
		t.Fatalf("Clear changed capacity: %d -> %d", capBefore, len(s.slots))
	}
	s.Add(7)
	s.Add(7)
	if s.Len() != 1 {
		t.Fatalf("set len after re-add = %d, want 1", s.Len())
	}

	var m u64Map
	m.initMap(3)
	for k := uint64(0); k < 100; k++ {
		m.Swap(k, k*3)
	}
	capBefore = len(m.keys)
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("cleared map len = %d", m.Len())
	}
	if len(m.keys) != capBefore {
		t.Fatalf("Clear changed capacity: %d -> %d", capBefore, len(m.keys))
	}
	if _, ok := m.Swap(42, 1); ok {
		t.Fatal("cleared map still holds key 42")
	}
	if prev, ok := m.Swap(42, 2); !ok || prev != 1 {
		t.Fatalf("Swap after Clear: prev=%d ok=%v, want 1 true", prev, ok)
	}
}
