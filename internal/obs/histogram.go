package obs

// Latency histograms for the long-lived service endpoints: lock-free
// log-linear buckets (4 sub-buckets per power of two, so any quantile
// estimate is within ~25% of the true value) recording durations in
// nanoseconds. Like counters, histograms are nil-receiver-safe no-ops
// when observability is disabled, and their values never feed back into
// any computation.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histSub is the number of sub-buckets per power-of-two octave; with 4,
// a bucket spans a 1.25x range and quantiles are ~12-25% accurate.
const histSub = 4

// histBuckets covers durations from 1ns to ~2^55ns (over a year — far
// past any request this service will ever serve); longer observations
// clamp into the last bucket.
const histBuckets = 54 * histSub

// Histogram is a fixed-bucket latency histogram. The zero value is ready
// to use; a nil *Histogram ignores every call.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histIndex maps a nanosecond duration to its bucket.
func histIndex(ns int64) int {
	if ns < histSub {
		return 0
	}
	v := uint64(ns)
	octave := bits.Len64(v) - 1 // >= 2 because ns >= histSub
	sub := int((v >> (uint(octave) - 2)) & (histSub - 1))
	i := (octave-2)*histSub + sub
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histLower returns the lower bound (ns) of bucket i; the bucket spans
// [histLower(i), histLower(i+1)).
func histLower(i int) int64 {
	octave := i/histSub + 2
	sub := i % histSub
	return (int64(histSub) + int64(sub)) << (uint(octave) - 2)
}

// Observe records one duration. Safe for concurrent use; no-op on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[histIndex(ns)].Add(1)
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds, linearly
// interpolated within the winning bucket. Returns 0 with no
// observations. Concurrent Observes make the estimate a point-in-time
// best effort, exactly like counter snapshots.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := histLower(i), histLower(i+1)
			frac := (rank - cum) / n
			est := float64(lo) + frac*float64(hi-lo)
			// Interpolation can overshoot the largest observation in the
			// bucket; the true quantile never exceeds the observed max.
			if mx := float64(h.maxNs.Load()); est > mx {
				est = mx
			}
			return est / 1e9
		}
		cum += n
	}
	return float64(h.maxNs.Load()) / 1e9
}

// HistogramStats is one histogram's summary as it appears in a Report.
type HistogramStats struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// MeanSeconds is the arithmetic mean latency.
	MeanSeconds float64 `json:"mean_seconds"`
	// P50Seconds / P95Seconds / P99Seconds are estimated quantiles
	// (log-linear buckets, ~25% resolution).
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// MaxSeconds is the largest observation.
	MaxSeconds float64 `json:"max_seconds"`
}

// Stats summarizes the histogram. Nil receiver returns the zero stats.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	n := h.count.Load()
	s := HistogramStats{
		Count:      n,
		P50Seconds: h.Quantile(0.50),
		P95Seconds: h.Quantile(0.95),
		P99Seconds: h.Quantile(0.99),
		MaxSeconds: float64(h.maxNs.Load()) / 1e9,
	}
	if n > 0 {
		s.MeanSeconds = float64(h.sumNs.Load()) / float64(n) / 1e9
	}
	return s
}

// Histogram returns the named histogram, creating it on first use. On a
// nil *Metrics it returns a nil *Histogram, a valid no-op sink; fetch it
// once and Observe unconditionally, like counters.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.histograms == nil {
		m.histograms = map[string]*Histogram{}
	}
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// ObserveSince records time.Since(t0) on the named histogram — the
// per-request convenience for HTTP handlers. No-op on nil.
func (m *Metrics) ObserveSince(name string, t0 time.Time) {
	if m == nil {
		return
	}
	m.Histogram(name).Observe(time.Since(t0))
}
