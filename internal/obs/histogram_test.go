package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	m := New()
	h := m.Histogram("http.request")
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	// Log-linear buckets resolve quantiles to ~25%; check the estimates
	// land in a generous window around the true values.
	checks := []struct {
		q, want float64
	}{{0.50, 0.500}, {0.95, 0.950}, {0.99, 0.990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want*0.70 || got > c.want*1.40 {
			t.Errorf("Quantile(%v) = %v, want within 30%%/40%% of %v", c.q, got, c.want)
		}
	}
	s := h.Stats()
	if s.P50Seconds > s.P95Seconds || s.P95Seconds > s.P99Seconds || s.P99Seconds > s.MaxSeconds {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.MaxSeconds != 1.0 {
		t.Fatalf("max = %v, want 1.0", s.MaxSeconds)
	}
	if s.MeanSeconds < 0.4 || s.MeanSeconds > 0.6 {
		t.Fatalf("mean = %v, want ~0.5", s.MeanSeconds)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var m *Metrics
	h := m.Histogram("nope")
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must be a no-op sink")
	}
	if s := h.Stats(); s != (HistogramStats{}) {
		t.Fatalf("nil stats = %+v, want zero", s)
	}
	real := New().Histogram("empty")
	if real.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Histogram("shared")
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Histogram("shared").Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHistogramInReport(t *testing.T) {
	m := New()
	m.Histogram("http.jobs").Observe(10 * time.Millisecond)
	m.ObserveSince("http.jobs", time.Now().Add(-20*time.Millisecond))
	r := m.Snapshot()
	hs, ok := r.Histograms["http.jobs"]
	if !ok {
		t.Fatalf("report has no http.jobs histogram: %+v", r.Histograms)
	}
	if hs.Count != 2 {
		t.Fatalf("count = %d, want 2", hs.Count)
	}
	if !strings.Contains(m.Summary(), "latency http.jobs") {
		t.Fatalf("summary lacks latency line:\n%s", m.Summary())
	}
	// A collector with no histograms must omit the field entirely.
	if r2 := New().Snapshot(); r2.Histograms != nil {
		t.Fatalf("empty collector has histograms: %+v", r2.Histograms)
	}
}

func TestHistogramBucketsMonotone(t *testing.T) {
	last := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo := histLower(i)
		if lo <= last {
			t.Fatalf("bucket %d lower bound %d not increasing past %d", i, lo, last)
		}
		if got := histIndex(lo); got != i {
			t.Fatalf("histIndex(histLower(%d)) = %d", i, got)
		}
		last = lo
	}
	if histIndex(0) != 0 || histIndex(1) != 0 {
		t.Fatal("tiny durations must land in bucket 0")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	m := New()
	m.Counter("x").Add(7)
	addr, shutdown, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"x": 7`) {
		t.Fatalf("metrics body lacks counter: %s", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("endpoint still serving after shutdown")
	}
}
