package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve exposes the collector on an HTTP endpoint for long runs:
//
//	/metrics      the live run report (Snapshot) as JSON
//	/debug/vars   the process's expvar variables
//	/debug/pprof  the standard pprof index (profile, heap, trace, ...)
//
// It listens on addr (e.g. "localhost:6060"; ":0" picks a free port),
// serves in a background goroutine for the life of the process, and
// returns the bound address. Nil receiver is an error — the caller asked
// for an endpoint.
func (m *Metrics) Serve(addr string) (string, error) {
	if m == nil {
		return "", fmt.Errorf("obs: no metrics collector to serve (observability disabled)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // endpoint dies with the process
	return ln.Addr().String(), nil
}
