package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// MetricsHandler returns an http.Handler that serves the collector's
// live Snapshot as indented JSON — the /metrics endpoint of both the
// standalone obs.Serve listener and the characterization service's
// front-door mux. Nil receiver serves 503 (observability disabled).
func (m *Metrics) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if m == nil {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}

// Serve exposes the collector on an HTTP endpoint for long runs:
//
//	/metrics      the live run report (Snapshot) as JSON
//	/debug/vars   the process's expvar variables
//	/debug/pprof  the standard pprof index (profile, heap, trace, ...)
//
// It listens on addr (e.g. "localhost:6060"; ":0" picks a free port),
// serves in a background goroutine, and returns the bound address plus a
// shutdown func that drains in-flight requests (bounded by the passed
// context) instead of killing them mid-response; calling it more than
// once is safe. Nil receiver is an error — the caller asked for an
// endpoint.
func (m *Metrics) Serve(addr string) (string, func(context.Context) error, error) {
	if m == nil {
		return "", nil, fmt.Errorf("obs: no metrics collector to serve (observability disabled)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	var shutErr error
	shutdown := func(ctx context.Context) error {
		once.Do(func() {
			shutErr = srv.Shutdown(ctx)
			if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) && shutErr == nil {
				shutErr = err
			}
		})
		return shutErr
	}
	return ln.Addr().String(), shutdown, nil
}
