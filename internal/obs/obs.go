// Package obs is the pipeline's observability layer: named atomic
// counters, per-stage spans, and a machine-readable run report, designed
// so that instrumented code pays (close to) nothing when observability is
// off.
//
// The disabled path is a nil *Metrics. Every method on *Metrics, *Counter
// and *Span is nil-receiver safe and collapses to a no-op, so call sites
// thread a possibly-nil *Metrics through unconditionally:
//
//	span := cfg.Metrics.StartSpan("characterize").SetRows(n)
//	...
//	span.End()
//
// costs two nil checks when cfg.Metrics is nil. Hot loops hold a *Counter
// (obtained once via Metrics.Counter) rather than calling Metrics.Add per
// event: Counter.Add is a single atomic add, and a nil *Counter is itself
// a valid no-op sink.
//
// When enabled, counters are lock-free (sync/atomic); the Metrics mutex
// guards only the name->counter registry and the completed-span list,
// which are touched per stage, not per event. Metrics values never feed
// back into any computation, so instrumenting a stage cannot perturb the
// pipeline's worker-count-independent determinism guarantee.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonic (or signed) event counter. The zero value
// is ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter. Safe for concurrent use; no-op on nil.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// SpanRecord is one completed stage span as it appears in a Report.
type SpanRecord struct {
	// Stage names the pipeline stage (e.g. "characterize", "kmeans").
	Stage string `json:"stage"`
	// StartSeconds is the span's start offset from the run's start.
	StartSeconds float64 `json:"start_seconds"`
	// WallSeconds is the span's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// Rows is how many data rows the stage processed (0 if untracked).
	Rows int `json:"rows,omitempty"`
	// Workers is the stage's resolved worker count (0 if untracked).
	Workers int `json:"workers,omitempty"`
	// Bytes is how many payload bytes the stage moved (0 if untracked) —
	// the network volume for RPC stages like shardnet's distribute.
	Bytes int64 `json:"bytes,omitempty"`
	// Resumed marks a stage that was served from a persisted artifact
	// instead of being computed (the pipeline engine's resume path).
	Resumed bool `json:"resumed,omitempty"`
	// Delta marks a stage that took the incremental engine's delta path:
	// computed against cached baseline artifacts rather than from scratch
	// (and not a straight artifact load, which is Resumed).
	Delta bool `json:"delta,omitempty"`
}

// Metrics collects one run's counters and spans. Use New; a nil *Metrics
// is the disabled observability layer and every method on it is a no-op.
type Metrics struct {
	start time.Time

	mu         sync.Mutex
	tool       string
	counters   map[string]*Counter
	histograms map[string]*Histogram
	spans      []SpanRecord
}

// New returns an enabled metrics collector; the run's clock starts now.
func New() *Metrics {
	return &Metrics{start: time.Now(), counters: map[string]*Counter{}}
}

// Enabled reports whether the collector is live (non-nil).
func (m *Metrics) Enabled() bool { return m != nil }

// SetTool labels the report with the producing command's name.
func (m *Metrics) SetTool(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.tool = name
	m.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. On a nil
// *Metrics it returns a nil *Counter, which is a valid no-op sink — hot
// paths fetch their counters once and Add unconditionally.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Add adds delta to the named counter (registry lookup per call — fine
// per stage, too slow per event; see Counter).
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.Counter(name).Add(delta)
}

// Span is an in-progress stage timing started by StartSpan. A nil *Span
// (from a nil *Metrics) ignores every call.
type Span struct {
	m       *Metrics
	stage   string
	t0      time.Time
	rows    int
	workers int
	bytes   int64
	resumed bool
	delta   bool
}

// StartSpan begins timing a named stage. End records it.
func (m *Metrics) StartSpan(stage string) *Span {
	if m == nil {
		return nil
	}
	return &Span{m: m, stage: stage, t0: time.Now()}
}

// SetRows annotates the span with the stage's row count. Returns s for
// chaining.
func (s *Span) SetRows(n int) *Span {
	if s != nil {
		s.rows = n
	}
	return s
}

// SetWorkers annotates the span with the stage's resolved worker count.
func (s *Span) SetWorkers(n int) *Span {
	if s != nil {
		s.workers = n
	}
	return s
}

// SetBytes annotates the span with the payload bytes the stage moved.
func (s *Span) SetBytes(n int64) *Span {
	if s != nil {
		s.bytes = n
	}
	return s
}

// SetResumed marks the span's stage as served from a persisted artifact
// rather than computed.
func (s *Span) SetResumed(resumed bool) *Span {
	if s != nil {
		s.resumed = resumed
	}
	return s
}

// SetDelta marks the span's stage as computed on the incremental delta
// path (from cached baseline artifacts plus only the new rows).
func (s *Span) SetDelta(delta bool) *Span {
	if s != nil {
		s.delta = delta
	}
	return s
}

// End completes the span and appends it to the run's span list. Calling
// End more than once records the span more than once; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		Stage:        s.stage,
		StartSeconds: s.t0.Sub(s.m.start).Seconds(),
		WallSeconds:  now.Sub(s.t0).Seconds(),
		Rows:         s.rows,
		Workers:      s.workers,
		Bytes:        s.bytes,
		Resumed:      s.resumed,
		Delta:        s.delta,
	}
	s.m.mu.Lock()
	s.m.spans = append(s.m.spans, rec)
	s.m.mu.Unlock()
}

// Report is the machine-readable run report: everything the collector
// observed, in one JSON-stable document (map keys marshal sorted).
type Report struct {
	// Tool is the producing command, when labelled via SetTool.
	Tool string `json:"tool,omitempty"`
	// Started is the collector's creation time (RFC 3339, with zone).
	Started string `json:"started"`
	// WallSeconds is the collector's age at snapshot time — the run's
	// total wall clock when the report is written at exit.
	WallSeconds float64 `json:"wall_seconds"`
	// Spans lists completed stage spans in completion order.
	Spans []SpanRecord `json:"spans"`
	// Counters holds every registered counter's final value.
	Counters map[string]int64 `json:"counters"`
	// Histograms holds every registered latency histogram's summary
	// (present only when at least one histogram was observed).
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures the collector's current state as a Report. Counters
// still being written concurrently are read atomically (each value is
// internally consistent; the set is a point-in-time best effort). Nil
// receiver returns nil.
func (m *Metrics) Snapshot() *Report {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &Report{
		Tool:        m.tool,
		Started:     m.start.Format(time.RFC3339),
		WallSeconds: time.Since(m.start).Seconds(),
		Spans:       append([]SpanRecord(nil), m.spans...),
		Counters:    make(map[string]int64, len(m.counters)),
	}
	for name, c := range m.counters {
		r.Counters[name] = c.Value()
	}
	if len(m.histograms) > 0 {
		r.Histograms = make(map[string]HistogramStats, len(m.histograms))
		for name, h := range m.histograms {
			r.Histograms[name] = h.Stats()
		}
	}
	return r
}

// WriteReport snapshots the collector and writes the report as indented
// JSON to path. Nil receiver is an error: a caller that asked for a
// report file must not get silence instead.
func (m *Metrics) WriteReport(path string) error {
	if m == nil {
		return fmt.Errorf("obs: no metrics collector to report (observability disabled)")
	}
	buf, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding report: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	return nil
}

// Summary renders the report as human-readable text (for -metrics):
// spans in completion order, then counters sorted by name.
func (m *Metrics) Summary() string {
	if m == nil {
		return ""
	}
	r := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "run: %.3fs wall\n", r.WallSeconds)
	for _, s := range r.Spans {
		fmt.Fprintf(&b, "  span %-24s %9.3fs", s.Stage, s.WallSeconds)
		if s.Rows > 0 {
			fmt.Fprintf(&b, "  rows=%d", s.Rows)
		}
		if s.Workers > 0 {
			fmt.Fprintf(&b, "  workers=%d", s.Workers)
		}
		if s.Bytes > 0 {
			fmt.Fprintf(&b, "  bytes=%d", s.Bytes)
		}
		if s.Resumed {
			b.WriteString("  (resumed)")
		}
		if s.Delta {
			b.WriteString("  (delta)")
		}
		b.WriteByte('\n')
	}
	names := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  counter %-21s %12d\n", name, r.Counters[name])
	}
	names = names[:0]
	for name := range r.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.Histograms[name]
		fmt.Fprintf(&b, "  latency %-21s n=%-6d p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
			name, h.Count, h.P50Seconds, h.P95Seconds, h.P99Seconds, h.MaxSeconds)
	}
	return b.String()
}
