package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledPathNoOps exercises every exported method through a nil
// *Metrics — the disabled observability layer — and requires silent
// no-ops (except the report/serve entry points, which must error rather
// than silently drop an explicitly requested artifact).
func TestDisabledPathNoOps(t *testing.T) {
	var m *Metrics
	if m.Enabled() {
		t.Fatal("nil Metrics reports Enabled")
	}
	m.SetTool("x")
	m.Add("a", 3)
	c := m.Counter("a")
	if c != nil {
		t.Fatalf("nil Metrics returned non-nil counter %v", c)
	}
	c.Add(5)
	c.Inc()
	if v := c.Value(); v != 0 {
		t.Fatalf("nil counter holds %d", v)
	}
	s := m.StartSpan("stage")
	if s != nil {
		t.Fatalf("nil Metrics returned non-nil span %v", s)
	}
	s.SetRows(10).SetWorkers(2)
	s.End()
	if r := m.Snapshot(); r != nil {
		t.Fatalf("nil Metrics snapshot = %+v", r)
	}
	if got := m.Summary(); got != "" {
		t.Fatalf("nil Metrics summary = %q", got)
	}
	if err := m.WriteReport(filepath.Join(t.TempDir(), "r.json")); err == nil {
		t.Fatal("nil Metrics WriteReport succeeded — a requested report was dropped silently")
	}
	if _, _, err := m.Serve("localhost:0"); err == nil {
		t.Fatal("nil Metrics Serve succeeded")
	}
}

// TestConcurrentCounters hammers one counter from many goroutines (run
// under -race via scripts/verify.sh) and checks the exact total.
func TestConcurrentCounters(t *testing.T) {
	m := New()
	const goroutines, perG = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared")
			for i := 0; i < perG; i++ {
				c.Inc()
				m.Add("via-add", 2)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := m.Counter("via-add").Value(); got != 2*goroutines*perG {
		t.Fatalf("via-add = %d, want %d", got, 2*goroutines*perG)
	}
}

// TestConcurrentSpans records spans from several goroutines while a
// snapshotter reads — the mutex protecting the span list must hold up
// under -race.
func TestConcurrentSpans(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.StartSpan("stage").SetRows(i).SetWorkers(g).End()
				_ = m.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := len(m.Snapshot().Spans); got != 8*50 {
		t.Fatalf("recorded %d spans, want %d", got, 8*50)
	}
}

// TestReportRoundTrip writes a populated report and reads it back through
// encoding/json, requiring every field to survive.
func TestReportRoundTrip(t *testing.T) {
	m := New()
	m.SetTool("obs-test")
	m.Add("fcache.hits", 42)
	m.Add("par.tasks", 1000)
	sp := m.StartSpan("characterize").SetRows(900).SetWorkers(8)
	time.Sleep(time.Millisecond)
	sp.End()

	path := filepath.Join(t.TempDir(), "report.json")
	if err := m.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	want := m.Snapshot()
	if got.Tool != "obs-test" || got.Started != want.Started {
		t.Fatalf("header fields lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Counters, map[string]int64{"fcache.hits": 42, "par.tasks": 1000}) {
		t.Fatalf("counters = %v", got.Counters)
	}
	if len(got.Spans) != 1 {
		t.Fatalf("spans = %+v", got.Spans)
	}
	s := got.Spans[0]
	if s.Stage != "characterize" || s.Rows != 900 || s.Workers != 8 || s.WallSeconds <= 0 {
		t.Fatalf("span lost fields: %+v", s)
	}
	if got.WallSeconds < s.StartSeconds+s.WallSeconds {
		t.Fatalf("report wall %.6fs shorter than its own span (%.6fs)", got.WallSeconds, s.StartSeconds+s.WallSeconds)
	}
}

// TestSummary checks the human-readable rendering carries spans and
// counters.
func TestSummary(t *testing.T) {
	m := New()
	m.Add("fcache.hits", 7)
	m.StartSpan("pca").SetRows(12).End()
	out := m.Summary()
	for _, want := range []string{"span pca", "rows=12", "counter fcache.hits", "7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestServeMetricsEndpoint starts the HTTP endpoint on an ephemeral port
// and fetches the live report.
func TestServeMetricsEndpoint(t *testing.T) {
	m := New()
	m.Add("fcache.hits", 3)
	addr, _, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("/metrics body is not a report: %v\n%s", err, body)
	}
	if r.Counters["fcache.hits"] != 3 {
		t.Fatalf("live report counters = %v", r.Counters)
	}
}
