// Package par is the shared worker-pool substrate of the analysis stages.
// Every parallel hot path in the repository (k-means restarts and Lloyd
// assignment passes, BIC SelectK sweeps, GA fitness evaluation, pairwise
// distance kernels, interval characterization) funnels through these
// helpers so that one invariant is enforced in one place:
//
//	results are byte-identical for any worker count.
//
// The helpers guarantee that by construction:
//
//   - Work is identified by index, never by worker. Each index writes only
//     its own output slot, so completion order cannot reorder results.
//   - Chunk boundaries depend only on the problem size and a fixed grain,
//     never on the worker count, so a caller that reduces per-chunk
//     partial sums in chunk order gets one fixed floating-point reduction
//     order no matter how many goroutines ran.
//   - Sub-seeds are derived with a SplitMix64-style hash (DeriveSeed), not
//     by sharing one *rand.Rand across tasks, so task r consumes the same
//     random stream whether it runs first, last, or alone — and seed 0 is
//     an ordinary, valid seed rather than an "unseeded" sentinel.
//
// A panic in any task is captured and re-raised on the calling goroutine
// once all workers have drained, matching the behavior of a serial loop
// closely enough for the callers here.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers resolves a worker-count knob: values < 1 mean GOMAXPROCS.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// sink is the process-wide observability hook. Pool metrics are global
// rather than per-call because every parallel stage in the repository
// funnels through these helpers with a plain (workers, n, fn) signature;
// threading a collector through each call site would put an obs parameter
// on every hot kernel for the benefit of exactly one consumer (the CLIs'
// -report/-metrics flags).
var sink atomic.Pointer[obs.Metrics]

// Instrument installs m as the process-wide pool-metrics sink and returns
// the previous one (nil disables). While installed, every dispatch adds to
// the counters
//
//	par.dispatches      parallel loops entered
//	par.tasks           individual fn invocations completed
//	par.worker_busy_ns  summed per-worker busy wall time, in nanoseconds
//
// Counting is per worker, not per task: one timestamp pair and three
// atomic adds per worker lifetime, so instrumentation cannot slow the
// task loop. The disabled path costs one atomic pointer load per
// dispatch. Metrics never influence scheduling, so results stay
// worker-count deterministic with or without a sink.
func Instrument(m *obs.Metrics) *obs.Metrics {
	return sink.Swap(m)
}

// For runs fn(i) for every i in [0, n), spread over up to workers
// goroutines. Each index must write only to its own output slot(s);
// under that contract the result is identical for any worker count.
// workers < 1 means GOMAXPROCS. With one worker (or n <= 1) it runs
// inline with no goroutines.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's identity passed to fn, for callers
// that keep per-worker scratch state (e.g. one mica.Analyzer per worker).
// Worker identities are in [0, w) where w is the resolved worker count;
// fn must not let the worker index influence the *value* written for an
// index, only which scratch buffer computes it.
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	m := sink.Load()
	if w == 1 {
		if m == nil {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			return
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		m.Add("par.dispatches", 1)
		m.Add("par.tasks", int64(n))
		m.Add("par.worker_busy_ns", time.Since(t0).Nanoseconds())
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[panicValue]
	var wg sync.WaitGroup
	for id := 0; id < w; id++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer capturePanic(&panicked)
			var t0 time.Time
			if m != nil {
				t0 = time.Now()
			}
			tasks := int64(0)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(worker, i)
				tasks++
			}
			if m != nil {
				m.Add("par.tasks", tasks)
				m.Add("par.worker_busy_ns", time.Since(t0).Nanoseconds())
			}
		}(id)
	}
	wg.Wait()
	if m != nil {
		m.Add("par.dispatches", 1)
	}
	rethrow(&panicked)
}

// Grain is the default rows-per-chunk granularity of the chunked kernels:
// coarse enough to amortize scheduling, fine enough to load-balance the
// row counts seen in this pipeline (hundreds to a few thousand).
const Grain = 128

// Chunks returns how many chunks ForChunks will produce for n items at
// the given grain (grain < 1 means the default Grain). The count depends
// only on n and grain — never on the worker count — so callers can
// preallocate one partial-result slot per chunk and reduce them in chunk
// order for a fixed, worker-count-independent reduction order.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = Grain
	}
	return (n + grain - 1) / grain
}

// ForChunks splits [0, n) into Chunks(n, grain) contiguous chunks and
// runs fn(chunk, lo, hi) for each, spread over up to workers goroutines.
// Chunk boundaries are a pure function of n and grain, so per-chunk
// partials reduced in chunk order are identical for any worker count.
func ForChunks(workers, n, grain int, fn func(chunk, lo, hi int)) {
	if grain < 1 {
		grain = Grain
	}
	nchunks := Chunks(n, grain)
	For(workers, nchunks, func(c int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	})
}

// FirstError returns the first non-nil error in errs (index order), the
// deterministic analogue of "return the error the serial loop would have
// hit first". Parallel loops record per-index errors and pass them here.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeriveSeed hashes a base seed and a stream index into an independent
// sub-seed with the SplitMix64 finalizer. Adjacent streams land far apart
// in seed space, and no base seed (including 0) collapses to a sentinel,
// which is what makes "Seed: 0" a valid configuration everywhere sub-seeds
// are used.
func DeriveSeed(seed int64, stream uint64) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	z += (stream + 1) * 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// panicValue boxes a recovered panic for transport across goroutines.
type panicValue struct{ v any }

func capturePanic(slot *atomic.Pointer[panicValue]) {
	if r := recover(); r != nil {
		slot.CompareAndSwap(nil, &panicValue{v: r})
	}
}

func rethrow(slot *atomic.Pointer[panicValue]) {
	if p := slot.Load(); p != nil {
		panic(p.v)
	}
}
