package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", Workers(0))
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative worker count not defaulted")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit worker count not respected")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		n := 1000
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	For(4, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 called %d times", calls)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	var bad atomic.Int32
	ForWorker(3, 100, func(worker, i int) {
		if worker < 0 || worker >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestChunksIndependentOfWorkers(t *testing.T) {
	if got := Chunks(0, 10); got != 0 {
		t.Fatalf("Chunks(0) = %d", got)
	}
	if got := Chunks(1, 10); got != 1 {
		t.Fatalf("Chunks(1,10) = %d", got)
	}
	if got := Chunks(25, 10); got != 3 {
		t.Fatalf("Chunks(25,10) = %d", got)
	}
	if got := Chunks(300, 0); got != Chunks(300, Grain) {
		t.Fatal("default grain not applied")
	}
}

func TestForChunksPartitions(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, grain := 137, 16
		seen := make([]int32, n)
		chunks := make([]int32, Chunks(n, grain))
		ForChunks(workers, n, grain, func(chunk, lo, hi int) {
			atomic.AddInt32(&chunks[chunk], 1)
			if hi <= lo {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("workers=%d: index %d in %d chunks", workers, i, s)
			}
		}
		for c, s := range chunks {
			if s != 1 {
				t.Fatalf("workers=%d: chunk %d ran %d times", workers, c, s)
			}
		}
	}
}

// TestChunkedReductionWorkerInvariant is the contract the analysis kernels
// rely on: summing per-chunk partials in chunk order gives bit-identical
// floating-point results for any worker count.
func TestChunkedReductionWorkerInvariant(t *testing.T) {
	n := 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	sum := func(workers int) float64 {
		parts := make([]float64, Chunks(n, 0))
		ForChunks(workers, n, 0, func(chunk, lo, hi int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			parts[chunk] = s
		})
		var total float64
		for _, p := range parts {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, got, ref)
		}
	}
}

func TestFirstError(t *testing.T) {
	if FirstError(nil) != nil {
		t.Fatal("nil slice produced an error")
	}
	errs := make([]error, 3)
	if FirstError(errs) != nil {
		t.Fatal("all-nil slice produced an error")
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	// Distinct streams from one base must differ.
	seen := map[int64]uint64{}
	for s := uint64(0); s < 1000; s++ {
		d := DeriveSeed(7, s)
		if prev, ok := seen[d]; ok {
			t.Fatalf("streams %d and %d collide", prev, s)
		}
		seen[d] = s
	}
	// Seed 0 is a real seed, not a sentinel: it derives nonzero,
	// stream-distinct sub-seeds like any other.
	if DeriveSeed(0, 0) == 0 || DeriveSeed(0, 0) == DeriveSeed(0, 1) {
		t.Fatal("seed 0 degenerate")
	}
	// Deterministic.
	if DeriveSeed(42, 9) != DeriveSeed(42, 9) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Nearby base seeds must not produce the same stream-0 sub-seed.
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("adjacent base seeds collide")
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in worker not propagated")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

// TestInstrumentCountsTasks installs a metrics sink, runs loops at
// several worker counts, and checks the task/dispatch accounting; it then
// removes the sink and confirms the uninstrumented path still works.
func TestInstrumentCountsTasks(t *testing.T) {
	m := obs.New()
	prev := Instrument(m)
	defer Instrument(prev)

	const n = 100
	total := 0
	var mu sync.Mutex
	for _, w := range []int{1, 4} {
		For(w, n, func(i int) {
			mu.Lock()
			total++
			mu.Unlock()
		})
	}
	if total != 2*n {
		t.Fatalf("ran %d tasks, want %d", total, 2*n)
	}
	if got := m.Counter("par.tasks").Value(); got != 2*n {
		t.Fatalf("par.tasks = %d, want %d", got, 2*n)
	}
	if got := m.Counter("par.dispatches").Value(); got != 2 {
		t.Fatalf("par.dispatches = %d, want 2", got)
	}
	if got := m.Counter("par.worker_busy_ns").Value(); got <= 0 {
		t.Fatalf("par.worker_busy_ns = %d, want > 0", got)
	}

	Instrument(nil)
	For(4, n, func(i int) {})
	if got := m.Counter("par.tasks").Value(); got != 2*n {
		t.Fatalf("uninstrumented loop still counted: par.tasks = %d", got)
	}
}
