// Package prof wires the standard pprof file profiles into the CLIs, so
// perf work can profile the measurement kernel without code edits.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the -cpuprofile/-memprofile flag
// values (an empty path disables that profile). The returned stop function
// finishes both and must run before exit for the files to be valid.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle transient allocations; profile live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
