package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/corpus"
)

// Client talks to a characterization service — the `phasechar submit`
// side of the front door, and the loopback half of the verify gate.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8430".
	Base string
	// Tenant goes out as the X-Tenant header; empty shares the
	// anonymous bucket.
	Tenant string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// StatusError is a non-2xx service reply.
type StatusError struct {
	Code int
	// RetryAfter is the Retry-After header (seconds), 0 if absent.
	RetryAfter int
	Body       string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// do runs one request and decodes error replies into StatusError.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		se := &StatusError{Code: resp.StatusCode, Body: string(body)}
		fmt.Sscan(resp.Header.Get("Retry-After"), &se.RetryAfter)
		return nil, se
	}
	return resp, nil
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(spec JobSpec) (Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Status{}, err
	}
	req, err := http.NewRequest(http.MethodPost, c.url("/jobs"), bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("serve: decoding submit reply: %w", err)
	}
	return st, nil
}

// Status fetches a job's snapshot.
func (c *Client) Status(id string) (Status, error) {
	req, err := http.NewRequest(http.MethodGet, c.url("/jobs/"+id), nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Cancel cancels a queued job.
func (c *Client) Cancel(id string) (Status, error) {
	req, err := http.NewRequest(http.MethodPost, c.url("/jobs/"+id+"/cancel"), nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Result fetches a job's exported run JSON, blocking server-side until
// the job is terminal when wait is set. A failed job surfaces as a
// StatusError carrying the job's error text.
func (c *Client) Result(id string, wait bool) ([]byte, error) {
	u := c.url("/jobs/" + id + "/result")
	if wait {
		u += "?wait=1"
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Events follows a job's SSE stream, calling fn with each Status until
// the terminal one (after which the stream closes) or a transport
// error. It returns the last status seen.
func (c *Client) Events(id string, fn func(Status)) (Status, error) {
	req, err := http.NewRequest(http.MethodGet, c.url("/jobs/"+id+"/events"), nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var last Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st Status
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			return last, fmt.Errorf("serve: bad event frame: %w", err)
		}
		last = st
		if fn != nil {
			fn(st)
		}
	}
	return last, sc.Err()
}

// CorpusQuery posts one phase-corpus query and returns the raw answer
// JSON — the exact bytes `phasechar query` prints for the same
// question. A service without a corpus replies 404 (a StatusError).
func (c *Client) CorpusQuery(q corpus.QueryRequest) ([]byte, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.url("/corpus/query"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Metrics fetches the service's live /metrics report (raw JSON).
func (c *Client) Metrics() ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
