package serve

// The corpus front door: POST /corpus/query serves the phase database's
// online similarity/uniqueness queries, and (opt-in) every completed
// job's result is ingested, so tenants' submitted workloads accumulate
// into the corpus their later queries run against. The response body is
// byte-identical to `phasechar query` for the same question — both ends
// marshal the same corpus.QueryResponse with the same encoder.

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/corpus"
)

// maxQueryBytes bounds POST /corpus/query bodies: an op, a few scalar
// knobs and at most one inline query vector.
const maxQueryBytes = 64 << 10

// corpusError is the JSON error body for corpus endpoints.
type corpusError struct {
	Error string `json:"error"`
}

// handleCorpusQuery answers one corpus query. A service started without
// a corpus directory has no corpus resource at all — 404 with a clear
// body, not a 500 — and a malformed or unanswerable request is the
// client's error: 400 with the reason.
func (s *Server) handleCorpusQuery(w http.ResponseWriter, r *http.Request) {
	if s.corpus == nil {
		writeJSON(w, http.StatusNotFound, corpusError{
			Error: "no corpus on this service (start it with -corpus <dir>)",
		})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, corpusError{Error: "read: " + err.Error()})
		return
	}
	if len(body) > maxQueryBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, corpusError{Error: "corpus query too large"})
		return
	}
	var req corpus.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, corpusError{Error: "corpus query: " + err.Error()})
		return
	}
	resp, err := s.corpus.Query(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, corpusError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
