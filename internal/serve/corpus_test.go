package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
)

// seedCorpus fills dir with a small two-suite corpus and returns a
// direct handle to it — the "CLI side" of the byte-identity checks.
func seedCorpus(t *testing.T, dir string) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := corpus.Batch{Dataset: 0xD1, Params: 0xE2, Seed: 3}
	for bench := 0; bench < 3; bench++ {
		suite := "SuiteA"
		if bench == 2 {
			suite = "SuiteB"
		}
		for i := 0; i < 4; i++ {
			v := float64(bench*10 + i)
			b.Entries = append(b.Entries, corpus.Entry{
				Bench: fmt.Sprintf("%s/b%d", suite, bench), Suite: suite,
				Kind: corpus.KindInterval, Index: i,
				Vector: []float64{v, v * 0.5, 3 - v, v * v * 0.01},
			})
		}
	}
	if _, err := c.IngestBatch(b); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCorpusQueryDisabled: a service started without -corpus has no
// corpus resource — 404 with a clear JSON error body, not a 500.
func TestCorpusQueryDisabled(t *testing.T) {
	_, c := testServer(t, Config{
		execute: func(JobSpec) ([]byte, error) { return []byte("{}"), nil },
	})
	_, err := c.CorpusQuery(corpus.QueryRequest{Op: "stats"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("corpus query on corpus-less service: err = %v, want HTTP 404", err)
	}
	var ce corpusError
	if jerr := json.Unmarshal([]byte(se.Body), &ce); jerr != nil || !strings.Contains(ce.Error, "-corpus") {
		t.Fatalf("404 body = %q, want a JSON error pointing at -corpus", se.Body)
	}
}

// TestCorpusQueryBadRequests: malformed bodies, unknown ops and
// oversized payloads are the client's fault — 400/413 with a JSON
// reason, never a 500.
func TestCorpusQueryBadRequests(t *testing.T) {
	dir := t.TempDir()
	seedCorpus(t, dir)
	_, c := testServer(t, Config{
		CorpusDir: dir,
		execute:   func(JobSpec) ([]byte, error) { return []byte("{}"), nil },
	})

	post := func(body []byte) (int, string) {
		t.Helper()
		resp, err := http.Post(c.url("/corpus/query"), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	for name, tc := range map[string]struct {
		body []byte
		want int
	}{
		"malformed json": {[]byte(`{"op": "near`), http.StatusBadRequest},
		"unknown op":     {[]byte(`{"op":"frobnicate"}`), http.StatusBadRequest},
		"bad ref":        {[]byte(`{"op":"nearest","ref":"not-a-ref"}`), http.StatusBadRequest},
		"oversized":      {bytes.Repeat([]byte("x"), maxQueryBytes+1), http.StatusRequestEntityTooLarge},
	} {
		code, body := post(tc.body)
		if code != tc.want {
			t.Fatalf("%s: HTTP %d (%s), want %d", name, code, body, tc.want)
		}
		var ce corpusError
		if err := json.Unmarshal([]byte(body), &ce); err != nil || ce.Error == "" {
			t.Fatalf("%s: body %q is not a JSON corpus error", name, body)
		}
	}

	// And the method is pinned: GET has no corpus route.
	resp, err := http.Get(c.url("/corpus/query"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /corpus/query = HTTP %d, want it refused", resp.StatusCode)
	}
}

// TestCorpusQueryMatchesCLI: the service answer is byte-identical to
// what `phasechar query` prints for the same question — both ends
// marshal the same corpus.QueryResponse with the same encoder.
func TestCorpusQueryMatchesCLI(t *testing.T) {
	dir := t.TempDir()
	direct := seedCorpus(t, dir)
	_, c := testServer(t, Config{
		CorpusDir: dir,
		execute:   func(JobSpec) ([]byte, error) { return []byte("{}"), nil },
	})

	for _, q := range []corpus.QueryRequest{
		{Op: "stats"},
		{Op: "nearest", Ref: "SuiteA/b0#1", K: 4},
		{Op: "nearest", Vector: []float64{5, 2.5, -2, 0.25}, K: 3},
		{Op: "uniqueness", Bench: "SuiteB/b2", Radius: 2},
		{Op: "novelty", Suite: "SuiteA"},
	} {
		resp, err := direct.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var cli bytes.Buffer
		if err := corpus.WriteResponse(&cli, resp); err != nil {
			t.Fatal(err)
		}
		served, err := c.CorpusQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cli.Bytes(), served) {
			t.Fatalf("query %+v: service bytes differ from CLI bytes:\n%s\nvs\n%s", q, served, cli.Bytes())
		}
	}
}

// TestIngestOnJobCompletion: with -corpus-ingest, a completed job's
// phases land in the corpus, and an equivalent job (even at a different
// worker count) adds nothing — the ledger keys on the dataset hash.
func TestIngestOnJobCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	dir := t.TempDir()
	_, c := testServer(t, Config{CorpusDir: dir, IngestJobs: true, Workers: 2})

	corpusStats := func() corpus.Stats {
		t.Helper()
		body, err := c.CorpusQuery(corpus.QueryRequest{Op: "stats"})
		if err != nil {
			t.Fatal(err)
		}
		var resp struct {
			Stats corpus.Stats `json:"stats"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Stats
	}

	spec := JobSpec{Suites: "BioPerf", Interval: 2000, Samples: 8, Clusters: 20, Prominent: 10}
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, st.ID, StateDone)
	after := corpusStats()
	if after.Ingests != 1 || after.Records == 0 {
		t.Fatalf("corpus stats after first job = %+v, want one real ingest", after)
	}

	// The same characterization at another worker count is the same
	// dataset: ingest is skipped, the corpus does not grow.
	again := spec
	again.Workers = 2
	st2, err := c.Submit(again)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, st2.ID, StateDone)
	if got := corpusStats(); got != after {
		t.Fatalf("corpus grew on an equivalent job: %+v -> %+v", after, got)
	}
}

// TestEventsOrderingUnderConcurrentCompletion: with several jobs
// finishing at once, every SSE stream individually stays in order —
// states never move backwards, the terminal event arrives exactly once
// and closes the stream.
func TestEventsOrderingUnderConcurrentCompletion(t *testing.T) {
	const jobs = 6
	release := make(chan struct{})
	_, c := testServer(t, Config{
		Workers: 4,
		execute: func(JobSpec) ([]byte, error) {
			<-release
			return []byte("{}"), nil
		},
	})

	ids := make([]string, jobs)
	for i := range ids {
		st, err := c.Submit(JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	rank := map[State]int{StateQueued: 0, StateRunning: 1, StateDone: 2, StateFailed: 2, StateCancelled: 2}
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var states []State
			last, err := c.Events(id, func(s Status) { states = append(states, s.State) })
			if err != nil {
				errs <- fmt.Errorf("job %s: events: %w", id, err)
				return
			}
			if !last.State.Terminal() {
				errs <- fmt.Errorf("job %s: stream ended on non-terminal %q", id, last.State)
				return
			}
			terminals := 0
			for i, s := range states {
				if _, ok := rank[s]; !ok {
					errs <- fmt.Errorf("job %s: unknown state %q", id, s)
					return
				}
				if i > 0 && rank[s] < rank[states[i-1]] {
					errs <- fmt.Errorf("job %s: state went backwards: %v", id, states)
					return
				}
				if s.Terminal() {
					terminals++
				}
			}
			if terminals != 1 {
				errs <- fmt.Errorf("job %s: %d terminal events in %v, want exactly 1", id, terminals, states)
			}
		}(id)
	}

	// Release every worker at once: completions race the streams.
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
