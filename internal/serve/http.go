package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/bench"
)

// maxSpecBytes bounds POST /jobs bodies: a handful of scalar knobs plus
// an optional inline workload-model payload (itself capped at
// bench.MaxModelBytes by the spec validator).
const maxSpecBytes = bench.MaxModelBytes + 64<<10

// Handler returns the service's front-door HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.timed("serve.http.post_jobs", s.handleSubmit))
	mux.HandleFunc("GET /jobs/{id}", s.timed("serve.http.get_job", s.handleStatus))
	mux.HandleFunc("GET /jobs/{id}/result", s.timed("serve.http.get_result", s.handleResult))
	mux.HandleFunc("POST /jobs/{id}/cancel", s.timed("serve.http.cancel_job", s.handleCancel))
	// The events stream lives as long as the job does; timing it would
	// record job durations into an endpoint-latency histogram.
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /corpus/query", s.timed("serve.http.corpus_query", s.handleCorpusQuery))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", s.m.MetricsHandler())
	return mux
}

// timed wraps a handler with its endpoint's latency histogram.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.m.ObserveSince(name, t0)
	}
}

// tenant extracts the submitting tenant; absent headers share one
// anonymous bucket rather than each minting their own.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit admits one job: 202 with its Status, 400 on a bad spec,
// 429 (+ Retry-After, in seconds) when the queue or the tenant's token
// bucket rejects it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxSpecBytes {
		http.Error(w, "job spec too large", http.StatusRequestEntityTooLarge)
		return
	}
	var spec JobSpec
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			http.Error(w, "job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	j, err := s.submit(tenant(r), spec)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				secs := int(se.retryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", fmt.Sprint(secs))
			}
			http.Error(w, se.Error(), se.status)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st, _ := j.status()
	writeJSON(w, http.StatusAccepted, st)
}

// handleStatus serves a job's Status snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	st, _ := j.status()
	writeJSON(w, http.StatusOK, st)
}

// handleResult serves a finished job's exported run JSON. ?wait=1
// blocks (bounded by the request context) until the job is terminal.
// A failed job is 500 with its error, a cancelled one 409, an
// unfinished one without wait 202 with the Status snapshot.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	st, ch := j.status()
	if r.URL.Query().Get("wait") != "" {
		for !st.State.Terminal() {
			select {
			case <-r.Context().Done():
				return
			case <-ch:
			}
			st, ch = j.status()
		}
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.payload())
	case StateFailed:
		http.Error(w, st.Error, http.StatusInternalServerError)
	case StateCancelled:
		http.Error(w, "job was cancelled", http.StatusConflict)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleCancel cancels a still-queued job; a running or finished one is
// 409 (the pipeline has no safe preemption points).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if !j.cancelQueued() {
		st, _ := j.status()
		http.Error(w, fmt.Sprintf("job is %s; only queued jobs can be cancelled", st.State), http.StatusConflict)
		return
	}
	s.jobsCancel.Inc()
	st, _ := j.status()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the job's Status as server-sent events: the
// current snapshot immediately, then one event per transition, closing
// after the terminal state (or when the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	for {
		st, ch := j.status()
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}
