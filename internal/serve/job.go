package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// JobSpec is the JSON body of POST /jobs: the analysis-shaping knobs of
// the phasechar CLI, by the same names and with the same semantics, so a
// job submitted over HTTP selects exactly the run the equivalent
// one-shot command would — that equivalence is what the loopback gate
// pins byte-for-byte.
type JobSpec struct {
	// Preset mirrors the CLI's parameter presets: "" (defaults),
	// "quick" (-quick) or "paper-scale" (-paper-scale).
	Preset string `json:"preset,omitempty"`
	// Suites is the -suites comma-separated roster filter (empty: all).
	Suites string `json:"suites,omitempty"`
	// Seed is the pipeline seed; 0 means the CLI default (1).
	Seed int64 `json:"seed,omitempty"`
	// Interval / Samples / Clusters / Prominent / Key override the
	// preset the way the -interval / -samples / -clusters / -prominent /
	// -key flags do (0: keep the preset's value).
	Interval  int `json:"interval,omitempty"`
	Samples   int `json:"samples,omitempty"`
	Clusters  int `json:"clusters,omitempty"`
	Prominent int `json:"prominent,omitempty"`
	Key       int `json:"key,omitempty"`
	// Workers is the compute parallelism for this job's stages (0:
	// GOMAXPROCS). Results are worker-count independent.
	Workers int `json:"workers,omitempty"`
	// Incremental enables -incremental: reuse the cached baseline and
	// process only what it lacks.
	Incremental bool `json:"incremental,omitempty"`
	// MaxPCADrift / MaxCentroidShift are the incremental fast-path
	// gates; nil means the CLI defaults (0.05 and 0.25).
	MaxPCADrift      *float64 `json:"max_pca_drift,omitempty"`
	MaxCentroidShift *float64 `json:"max_centroid_shift,omitempty"`
	// Models is an optional inline workload-model file (the -models
	// payload): its suites replace same-named built-in suites and append
	// otherwise, before Suites filters the roster. Capped at
	// bench.MaxModelBytes and fully validated at submit time — a bad
	// model is a 400, never a failed job.
	Models json.RawMessage `json:"models,omitempty"`
}

// build materializes the spec into the registry and config the
// equivalent CLI invocation would run — the preset switch and override
// ladder mirror cmd/phasechar exactly. The cache directory, resume mode
// and metrics sink are the service's to fill in afterwards.
func (sp JobSpec) build() (*bench.Registry, core.Config, error) {
	cfg := core.DefaultConfig()
	switch sp.Preset {
	case "":
	case "paper-scale":
		cfg.IntervalLength = 100000
		cfg.SamplesPerBenchmark = 150
		cfg.MaxIntervalsPerBenchmark = 160
	case "quick":
		cfg = core.TestConfig()
		cfg.IntervalLength = 5000
		cfg.SamplesPerBenchmark = 20
		cfg.MaxIntervalsPerBenchmark = 40
		cfg.NumClusters = 150
		cfg.NumProminent = 50
	default:
		return nil, cfg, fmt.Errorf("serve: unknown preset %q (want \"\", \"quick\" or \"paper-scale\")", sp.Preset)
	}
	if sp.Interval > 0 {
		cfg.IntervalLength = sp.Interval
	}
	if sp.Samples > 0 {
		cfg.SamplesPerBenchmark = sp.Samples
	}
	if sp.Clusters > 0 {
		cfg.NumClusters = sp.Clusters
	}
	if sp.Prominent > 0 {
		cfg.NumProminent = sp.Prominent
	}
	if sp.Key > 0 {
		cfg.KeyCharacteristics = sp.Key
	}
	cfg.Seed = sp.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1 // the CLI flag default
	}
	cfg.Workers = sp.Workers
	if sp.Incremental {
		drift, shift := 0.05, 0.25 // the CLI flag defaults
		if sp.MaxPCADrift != nil {
			drift = *sp.MaxPCADrift
		}
		if sp.MaxCentroidShift != nil {
			shift = *sp.MaxCentroidShift
		}
		cfg.Incremental = core.IncrementalSpec{Enabled: true, MaxPCADrift: drift, MaxCentroidShift: shift}
	}

	reg, err := bench.StandardRegistry()
	if err != nil {
		return nil, cfg, err
	}
	if len(sp.Models) > 0 {
		if len(sp.Models) > bench.MaxModelBytes {
			return nil, cfg, fmt.Errorf("serve: inline models are %d bytes (cap %d)", len(sp.Models), bench.MaxModelBytes)
		}
		mf, err := bench.DecodeModels(sp.Models)
		if err != nil {
			return nil, cfg, err
		}
		if reg, err = reg.WithModels(mf); err != nil {
			return nil, cfg, err
		}
	}
	if sp.Suites != "" {
		if reg, err = reg.FilterSuites(sp.Suites); err != nil {
			return nil, cfg, err
		}
	}
	cfg.Registry = reg
	return reg, cfg, nil
}

// State is a job's lifecycle position. queued and running are live;
// done, failed and cancelled are terminal — a job reaches exactly one
// terminal state and never leaves it.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Status is a job's externally visible snapshot, as served by
// GET /jobs/{id} and streamed by /events.
type Status struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Error carries the failure cause in state "failed".
	Error string `json:"error,omitempty"`
	// Submitted/Started/Finished are RFC3339Nano wall-clock marks; the
	// zero ones are omitted.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

// job is one submitted analysis run.
type job struct {
	id     string
	tenant string
	spec   JobSpec

	mu        sync.Mutex
	state     State
	errText   string
	result    []byte // exported run JSON, set in StateDone
	submitted time.Time
	started   time.Time
	finished  time.Time
	// changed is closed and replaced on every state transition, so
	// watchers (the /events stream, result ?wait) block without polling.
	changed chan struct{}
}

func newJob(id, tenant string, spec JobSpec) *job {
	return &job{
		id: id, tenant: tenant, spec: spec,
		state:     StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
}

// status returns the job's snapshot plus the channel that signals its
// next transition — take both under one lock so a watcher can never
// miss the transition between reading the state and starting to wait.
func (j *job) status() (Status, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.id, Tenant: j.tenant, State: j.state, Error: j.errText,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}, j.changed
}

// signalLocked wakes every watcher. Caller holds j.mu.
func (j *job) signalLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// start moves queued → running. It refuses (false) if the job left the
// queue another way — a cancel that won the race.
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.signalLocked()
	return true
}

// finish lands the job in a terminal state with its result or error.
// A job that is already terminal is left untouched: terminal states are
// write-once, so a failure path racing a cancel cannot flap the state.
func (j *job) finish(state State, result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	if err != nil {
		j.errText = err.Error()
	}
	j.finished = time.Now()
	j.signalLocked()
}

// cancelQueued moves queued → cancelled; a running or finished job is
// not cancellable (the analysis has no safe preemption points) and
// returns false.
func (j *job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.finished = time.Now()
	j.signalLocked()
	return true
}

// payload returns the result bytes; valid only in StateDone.
func (j *job) payload() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}
