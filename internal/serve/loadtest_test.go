package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// loadSpec is the job the load harness drives: the quick preset over
// one suite, small enough to run many times in a test.
func loadSpec() JobSpec {
	return JobSpec{Preset: "quick", Suites: "BioPerf", Clusters: 8, Prominent: 5, Seed: 1}
}

// oneShotExport computes the spec's result the way the one-shot CLI
// would — no cache, no service, fresh process state — giving the
// reference bytes every service answer must match.
func oneShotExport(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	reg, cfg, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadConcurrentTenants is the service's load harness and its
// load-bearing invariant in one: N tenants submit concurrently (cold
// cache, then a warm repeat each), and
//
//   - every result is byte-identical to the one-shot CLI export,
//   - the warm round is served with hot-tier hits,
//   - the per-endpoint latency histograms come out with monotone
//     p50 <= p95 <= p99 <= max and the right observation counts.
func TestLoadConcurrentTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness runs the real pipeline")
	}
	want := oneShotExport(t, loadSpec())

	m := obs.New()
	_, c := testServer(t, Config{
		QueueDepth: 32,
		Workers:    4,
		HotBytes:   64 << 20,
		Metrics:    m,
	})

	const tenants = 4
	const rounds = 2 // round 0 cold, round 1 hot-warm
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, tenants)
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tc := &Client{Base: c.Base, Tenant: fmt.Sprintf("tenant-%d", i)}
				st, err := tc.Submit(loadSpec())
				if err != nil {
					errs[i] = fmt.Errorf("submit: %w", err)
					return
				}
				got, err := tc.Result(st.ID, true)
				if err != nil {
					errs[i] = fmt.Errorf("result: %w", err)
					return
				}
				if !bytes.Equal(got, want) {
					errs[i] = fmt.Errorf("round %d: result differs from one-shot export (%d vs %d bytes)", round, len(got), len(want))
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("tenant %d: %v", i, err)
			}
		}
	}

	var rep obs.Report
	raw, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if got := rep.Counters["serve.jobs_done"]; got != tenants*rounds {
		t.Fatalf("serve.jobs_done = %d, want %d", got, tenants*rounds)
	}
	if rep.Counters["serve.jobs_failed"] != 0 {
		t.Fatalf("serve.jobs_failed = %d", rep.Counters["serve.jobs_failed"])
	}
	// The warm round must have been answered out of the in-memory tier:
	// identical jobs share artifacts, and artifacts re-read in-process
	// hit hot before disk.
	if got := rep.Counters["fcache.hot_hits"]; got == 0 {
		t.Fatal("no fcache.hot_hits after a warm round — hot tier not in the read path")
	}

	for _, name := range []string{"serve.http.post_jobs", "serve.job_runtime"} {
		h, ok := rep.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q missing from /metrics (have %v)", name, keysOf(rep.Histograms))
		}
		if name == "serve.job_runtime" && h.Count != tenants*rounds {
			t.Fatalf("%s count = %d, want %d", name, h.Count, tenants*rounds)
		}
		if h.Count <= 0 {
			t.Fatalf("%s has no observations", name)
		}
		if !(h.P50Seconds <= h.P95Seconds && h.P95Seconds <= h.P99Seconds && h.P99Seconds <= h.MaxSeconds+1e-12) {
			t.Fatalf("%s percentiles not monotone: p50=%g p95=%g p99=%g max=%g",
				name, h.P50Seconds, h.P95Seconds, h.P99Seconds, h.MaxSeconds)
		}
		if h.MaxSeconds <= 0 {
			t.Fatalf("%s max = %g, want > 0", name, h.MaxSeconds)
		}
	}
}

func keysOf(m map[string]obs.HistogramStats) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestServiceMatchesIncrementalAppend drives the PR-7 incremental path
// through the front door: a baseline job over a sub-roster, then an
// incremental append over a larger one, each byte-identical to its
// one-shot equivalent.
func TestServiceMatchesIncrementalAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real pipeline")
	}
	base := JobSpec{Preset: "quick", Suites: "BioPerf", Clusters: 8, Prominent: 5, Incremental: true}
	grown := JobSpec{Preset: "quick", Suites: "BioPerf,BMW", Clusters: 8, Prominent: 5, Incremental: true}
	// The reference is the PLAIN one-shot export of the grown roster:
	// the incremental engine's invariant is that the delta path changes
	// where the work happens, never the bytes.
	plain := grown
	plain.Incremental = false
	wantGrown := oneShotExport(t, plain)

	m := obs.New()
	_, c := testServer(t, Config{Workers: 1, HotBytes: 64 << 20, Metrics: m})

	st, err := c.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(st.ID, true); err != nil {
		t.Fatalf("baseline job: %v", err)
	}
	st, err = c.Submit(grown)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(st.ID, true)
	if err != nil {
		t.Fatalf("append job: %v", err)
	}
	if !bytes.Equal(got, wantGrown) {
		t.Fatalf("incremental append via service differs from one-shot export (%d vs %d bytes)", len(got), len(wantGrown))
	}
	var rep obs.Report
	raw, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Counters["engine.delta.characterize"] == 0 {
		t.Fatal("append job did not take the delta characterize path")
	}
}
