package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// inlineSuiteJSON is a small custom suite shipped inline with a job —
// the tenant-brings-their-own-workload path.
const inlineSuiteJSON = `{
  "version": 1,
  "suites": [{
    "name": "Tenant",
    "domain_specific": true,
    "benchmarks": [
      {
        "name": "kvprobe",
        "paper_intervals": 8,
        "phases": [{
          "name": "kvprobe/lookup",
          "weight": 1,
          "mix": {"load": 0.32, "store": 0.08, "branch": 0.12, "int_add": 0.25, "compare": 0.13, "logic": 0.06, "move": 0.04},
          "code_size": 2000,
          "branch": {"taken_bias": 0.55, "noise_level": 0.3},
          "reg": {"mean_dep_dist": 2.5, "avg_src_regs": 1.5, "write_fraction": 0.55},
          "loads": [{"kind": "chase", "weight": 0.6, "region": 8388608}, {"kind": "random", "weight": 0.4, "region": 8388608}],
          "stores": [{"kind": "random", "weight": 1, "region": 1048576}]
        }]
      },
      {
        "name": "logflush",
        "paper_intervals": 6,
        "phases": [{
          "name": "logflush/append",
          "weight": 1,
          "mix": {"load": 0.2, "store": 0.24, "branch": 0.08, "int_add": 0.28, "logic": 0.08, "shift": 0.06, "move": 0.06},
          "code_size": 900,
          "branch": {"taken_bias": 0.92, "pattern_period": 16, "noise_level": 0.05},
          "reg": {"mean_dep_dist": 5, "avg_src_regs": 1.6, "write_fraction": 0.7},
          "loads": [{"kind": "stride", "weight": 1, "region": 2097152, "stride": 64}],
          "stores": [{"kind": "stride", "weight": 1, "region": 16777216, "stride": 64}]
        }]
      }
    ]
  }]
}`

// TestInlineModelJob pins the tenant-model contract end to end with the
// real pipeline: a job carrying inline suite models runs against the
// shared cache and returns bytes identical to the equivalent local run
// over the same loaded roster.
func TestInlineModelJob(t *testing.T) {
	spec := JobSpec{
		Preset:   "quick",
		Suites:   "Tenant",
		Clusters: 8, Prominent: 4,
		Models: json.RawMessage(inlineSuiteJSON),
	}

	// The reference: the same spec materialized and run in-process,
	// cache-free — byte equality proves the service adds nothing and
	// loses nothing.
	reg, cfg, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("inline roster has %d benchmarks, want 2", reg.Len())
	}
	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	_, c := testServer(t, Config{Workers: 1})
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, st.ID, StateDone)
	got, err := c.Result(st.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("service result (%d bytes) differs from local run (%d bytes)", len(got), want.Len())
	}
}

// TestInlineModelValidation: bad inline models are 400 at submit time —
// never admitted to fail later — and a valid shadowing model restricts
// the roster exactly like -models does.
func TestInlineModelValidation(t *testing.T) {
	executed := make(chan struct{}, 16)
	_, c := testServer(t, Config{
		execute: func(JobSpec) ([]byte, error) {
			executed <- struct{}{}
			return []byte("{}"), nil
		},
	})
	// A syntactically valid JSON string over the model byte cap: the
	// size check must fire before any parsing.
	oversized := append(append([]byte(`"`), bytes.Repeat([]byte("a"), bench.MaxModelBytes)...), '"')
	for name, models := range map[string]json.RawMessage{
		"garbage":        json.RawMessage(`"not a model"`),
		"wrong version":  json.RawMessage(`{"version":99,"suites":[]}`),
		"unknown field":  json.RawMessage(`{"version":1,"sweets":[]}`),
		"empty suites":   json.RawMessage(`{"version":1,"suites":[]}`),
		"invalid phases": json.RawMessage(`{"version":1,"suites":[{"name":"X","benchmarks":[{"name":"b","paper_intervals":1,"phases":[]}]}]}`),
		"oversized":      json.RawMessage(oversized),
	} {
		_, err := c.Submit(JobSpec{Models: models})
		var se *StatusError
		if !errors.As(err, &se) || se.Code != 400 {
			t.Fatalf("%s models: err = %v, want HTTP 400", name, err)
		}
	}
	// An unknown suite name over a valid inline roster is equally a 400:
	// the filter runs over the merged registry at submit time.
	_, err := c.Submit(JobSpec{Models: json.RawMessage(inlineSuiteJSON), Suites: "NoSuchSuite"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("unknown suite over inline models: err = %v, want HTTP 400", err)
	}
	// And selecting the inline suite is accepted.
	if _, err := c.Submit(JobSpec{Models: json.RawMessage(inlineSuiteJSON), Suites: "Tenant"}); err != nil {
		t.Fatalf("valid inline-model job refused: %v", err)
	}
	select {
	case <-executed:
	default:
		// The valid job may still be queued; that is fine — submission
		// succeeded, which is what this test pins.
	}
}
