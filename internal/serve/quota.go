package serve

import (
	"math"
	"sync"
	"time"
)

// quotaTable holds one token bucket per tenant (keyed by the X-Tenant
// header). Buckets refill continuously at perSec tokens per second up to
// burst; a submission costs one token. Every tenant gets the same rate —
// the point is isolation (one chatty tenant cannot starve the queue for
// everyone), not billing tiers.
type quotaTable struct {
	perSec float64
	burst  float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotaTable builds the table; burst <= 0 disables quotas entirely
// (admit always succeeds).
func newQuotaTable(perSec, burst float64) *quotaTable {
	if burst <= 0 {
		return nil
	}
	return &quotaTable{perSec: perSec, burst: burst, buckets: make(map[string]*bucket)}
}

// admit spends one token from tenant's bucket. When the bucket is dry it
// returns false plus how long until a token accrues — the Retry-After
// value. A nil table admits everything.
func (q *quotaTable) admit(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.perSec)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.perSec <= 0 {
		// No refill: the tenant burned its burst for this process's
		// lifetime. Report a long, finite backoff rather than lying.
		return false, time.Hour
	}
	need := 1 - b.tokens
	return false, time.Duration(math.Ceil(need/q.perSec)) * time.Second
}
