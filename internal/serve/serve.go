// Package serve is the characterization service: a long-lived HTTP
// front door that accepts analysis jobs as JSON, runs them through the
// core pipeline against a shared artifact cache, and streams status and
// results back. One process serves many tenants; what makes that safe
// and fast is layered below this package — admission control and
// per-tenant quotas here, the in-memory hot tier and per-key
// singleflight in fcache, stage artifacts and the incremental delta
// path in core. A job's result is byte-identical to the one-shot CLI
// export for the same spec: the service changes where the pipeline
// runs, never what it computes.
//
// Endpoints:
//
//	POST /jobs               submit a JobSpec; 202 + {"id": ...}, or 429
//	                         (+ Retry-After) when the queue or the
//	                         tenant's token bucket is full
//	GET  /jobs/{id}          the job's Status snapshot
//	GET  /jobs/{id}/result   the result JSON; ?wait=1 blocks until done
//	GET  /jobs/{id}/events   server-sent events: one Status per change
//	POST /jobs/{id}/cancel   cancel a still-queued job
//	POST /corpus/query       phase-corpus similarity/uniqueness queries
//	                         (404 unless the service has a corpus dir)
//	GET  /healthz            liveness
//	GET  /metrics            the live obs run report (queue depth,
//	                         admission rejects, cache traffic,
//	                         per-endpoint latency histograms)
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fcache"
	"repro/internal/obs"
)

// Config shapes one service instance.
type Config struct {
	// CacheDir is the shared fcache directory every job runs against.
	// Required: the service's whole point is reusing work across jobs.
	CacheDir string
	// QueueDepth bounds how many jobs may wait beyond the ones running;
	// a submission past the bound is rejected with 429 (0: default 16).
	QueueDepth int
	// Workers is how many jobs run concurrently (0: default 2).
	Workers int
	// HotBytes is the byte budget of the in-memory hot tier in front of
	// CacheDir (0: no hot tier).
	HotBytes int64
	// QuotaPerSec / QuotaBurst configure the per-tenant token buckets:
	// QuotaBurst submissions up front, refilled at QuotaPerSec. A
	// QuotaBurst of 0 disables quotas.
	QuotaPerSec float64
	QuotaBurst  float64
	// Metrics receives the service counters and latency histograms and
	// backs /metrics. Nil disables instrumentation (and /metrics).
	Metrics *obs.Metrics
	// Logf receives job-level logging. Nil disables it.
	Logf func(string, ...any)
	// CorpusDir, when set, opens the phase corpus at that directory and
	// serves POST /corpus/query from it. Empty: the endpoint is 404.
	CorpusDir string
	// IngestJobs, with CorpusDir set, ingests every completed job's
	// result into the corpus (idempotently — a job equivalent to one
	// already ingested adds nothing), so tenants' submitted workloads
	// accumulate into the database their later queries run against.
	IngestJobs bool

	// execute, when non-nil, replaces the pipeline execution — the
	// concurrency tests' way to get arbitrarily slow, failing or
	// panicking jobs without running the real pipeline. Unexported:
	// only in-package tests can reach it.
	execute func(spec JobSpec) ([]byte, error)
}

// Server is one running characterization service.
type Server struct {
	cfg    Config
	m      *obs.Metrics
	quotas *quotaTable
	queue  chan *job
	corpus *corpus.Corpus

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int64

	workers  sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	depth        *obs.Counter
	admRejects   *obs.Counter
	quotaRejects *obs.Counter
	submitted    *obs.Counter
	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	jobsCancel   *obs.Counter
}

// drainTimeout bounds the HTTP drain after Serve's context is
// cancelled. Result downloads and event streams are fast; jobs running
// in workers are not part of the HTTP drain.
const drainTimeout = 30 * time.Second

// New builds the service and starts its worker pool. Callers must Close
// it (Serve does so on the way out).
func New(cfg Config) (*Server, error) {
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("serve: a cache directory is required (jobs share artifacts through it)")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.IngestJobs && cfg.CorpusDir == "" {
		return nil, fmt.Errorf("serve: IngestJobs needs a corpus directory")
	}
	if cfg.HotBytes > 0 {
		fcache.EnableHotTier(cfg.CacheDir, cfg.HotBytes)
	}
	var corp *corpus.Corpus
	if cfg.CorpusDir != "" {
		var err error
		if corp, err = corpus.Open(cfg.CorpusDir, cfg.Metrics); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:    cfg,
		m:      cfg.Metrics,
		corpus: corp,
		quotas: newQuotaTable(cfg.QuotaPerSec, cfg.QuotaBurst),
		queue:  make(chan *job, cfg.QueueDepth),
		jobs:   make(map[string]*job),
		stop:   make(chan struct{}),

		depth:        cfg.Metrics.Counter("serve.queue_depth"),
		admRejects:   cfg.Metrics.Counter("serve.admission_rejects"),
		quotaRejects: cfg.Metrics.Counter("serve.quota_rejects"),
		submitted:    cfg.Metrics.Counter("serve.jobs_submitted"),
		jobsDone:     cfg.Metrics.Counter("serve.jobs_done"),
		jobsFailed:   cfg.Metrics.Counter("serve.jobs_failed"),
		jobsCancel:   cfg.Metrics.Counter("serve.jobs_cancelled"),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop()
	}
	return s, nil
}

// Close stops the worker pool: queued jobs stop being picked up, and
// Close returns once the jobs already running have finished. Idempotent.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.workers.Wait()
}

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// submit validates, admits and enqueues a job. The error carries an
// HTTP status via submitError.
func (s *Server) submit(tenant string, spec JobSpec) (*job, error) {
	// Validate up front: a spec that cannot build must 400 at
	// submission, not park in the queue to fail minutes later.
	if _, _, err := spec.build(); err != nil {
		return nil, &submitError{status: http.StatusBadRequest, err: err}
	}
	if ok, retry := s.quotas.admit(tenant, time.Now()); !ok {
		s.quotaRejects.Inc()
		return nil, &submitError{status: http.StatusTooManyRequests, retryAfter: retry,
			err: fmt.Errorf("serve: tenant %q is over its submission quota", tenant)}
	}

	s.mu.Lock()
	s.nextID++
	j := newJob(fmt.Sprintf("j%08d", s.nextID), tenant, spec)
	s.jobs[j.id] = j
	s.mu.Unlock()

	select {
	case s.queue <- j:
		s.depth.Inc()
		s.submitted.Inc()
		s.logf("serve: %s accepted job %s (suites=%q preset=%q)", tenant, j.id, spec.Suites, spec.Preset)
		return j, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.admRejects.Inc()
		return nil, &submitError{status: http.StatusTooManyRequests, retryAfter: time.Second,
			err: fmt.Errorf("serve: job queue is full (%d waiting)", cap(s.queue))}
	}
}

// submitError is a submission refusal with its HTTP representation.
type submitError struct {
	status     int
	retryAfter time.Duration
	err        error
}

func (e *submitError) Error() string { return e.err.Error() }

// lookup finds a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// workerLoop pulls queued jobs until the server closes.
func (s *Server) workerLoop() {
	defer s.workers.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.depth.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob executes one job start to terminal state. Every exit lands the
// job in done, failed or cancelled — a panic inside the pipeline
// becomes a failed job with the panic text, never a job wedged in
// "running" with a dead worker under it.
func (s *Server) runJob(j *job) {
	if !j.start() {
		// A cancel won the race while the job was queued.
		return
	}
	defer func() {
		if r := recover(); r != nil {
			j.finish(StateFailed, nil, fmt.Errorf("serve: job panicked: %v", r))
			s.jobsFailed.Inc()
			s.logf("serve: job %s panicked: %v", j.id, r)
		}
	}()
	t0 := time.Now()
	payload, err := s.executeJob(j.spec)
	if err != nil {
		j.finish(StateFailed, nil, err)
		s.jobsFailed.Inc()
		s.logf("serve: job %s failed: %v", j.id, err)
		return
	}
	j.finish(StateDone, payload, nil)
	s.jobsDone.Inc()
	s.m.ObserveSince("serve.job_runtime", t0)
	s.logf("serve: job %s done in %v (%d result bytes)", j.id, time.Since(t0).Round(time.Millisecond), len(payload))
}

// executeJob runs one spec through the pipeline and exports its JSON.
func (s *Server) executeJob(spec JobSpec) ([]byte, error) {
	if s.cfg.execute != nil {
		return s.cfg.execute(spec)
	}
	reg, cfg, err := spec.build()
	if err != nil {
		return nil, err
	}
	// The service fills in what the spec must not control: every job
	// shares the service cache (resume mode, so stage artifacts of
	// earlier identical jobs — and the hot tier holding them — answer
	// repeat queries), and reports into the service collector.
	cfg.CacheDir = s.cfg.CacheDir
	cfg.Resume = true
	cfg.Metrics = s.m
	res, err := core.Run(reg, cfg, nil)
	if err != nil {
		return nil, err
	}
	// Opt-in accumulation: the finished run's phases join the corpus.
	// The job already succeeded — its payload is what the tenant asked
	// for — so an ingest failure is logged, never propagated.
	if s.corpus != nil && s.cfg.IngestJobs {
		if info, ierr := s.corpus.IngestResult(res); ierr != nil {
			s.logf("serve: corpus ingest failed: %v", ierr)
		} else if !info.Skipped {
			s.logf("serve: corpus ingest: +%d records (%d intervals, %d centroids) in %s",
				info.Records, info.Intervals, info.Centroids, info.Segment)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Serve binds addr, reports the bound address through ready (may be
// nil), and serves the front door until ctx is cancelled or the
// listener fails. Cancellation shuts down gracefully — in-flight
// requests drain (bounded by drainTimeout), the worker pool finishes
// the jobs it is running — and returns nil; a listener failure returns
// its error so the caller can exit nonzero.
func (s *Server) Serve(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		s.logf("serve: shutting down, draining requests and running jobs")
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := srv.Shutdown(dctx)
		if serr := <-done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		s.Close()
		return err
	case err := <-done:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
