package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// testServer builds a service with the given config defaults filled in,
// wraps it in an httptest front door, and tears both down with the test.
func testServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{Base: ts.URL, Tenant: "test"}
}

// awaitState polls a job until it reaches want (or the deadline).
func awaitState(t *testing.T, c *Client, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %q, want %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionAtCapacity pins the backpressure contract: with one
// worker busy and the queue full, the next submission is 429 with a
// Retry-After, counted as an admission reject — and the queue recovers
// once the running job finishes.
func TestAdmissionAtCapacity(t *testing.T) {
	release := make(chan struct{})
	m := obs.New()
	s, c := testServer(t, Config{
		QueueDepth: 1, Workers: 1, Metrics: m,
		execute: func(JobSpec) ([]byte, error) {
			<-release
			return []byte("{}"), nil
		},
	})

	running, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, running.ID, StateRunning) // worker is now occupied
	queued, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Queue slot taken, worker busy: the third submission must bounce.
	_, err = c.Submit(JobSpec{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("over-capacity submit: err = %v, want HTTP 429", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("429 without a usable Retry-After (%d)", se.RetryAfter)
	}
	if got := m.Counter("serve.admission_rejects").Value(); got != 1 {
		t.Fatalf("serve.admission_rejects = %d, want 1", got)
	}
	if got := m.Counter("serve.queue_depth").Value(); got != 1 {
		t.Fatalf("serve.queue_depth = %d, want 1", got)
	}

	close(release)
	awaitState(t, c, running.ID, StateDone)
	awaitState(t, c, queued.ID, StateDone)
	if got := m.Counter("serve.queue_depth").Value(); got != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", got)
	}

	// Capacity is back: a new submission is admitted again.
	relaunched, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatalf("post-drain submit refused: %v", err)
	}
	awaitState(t, c, relaunched.ID, StateDone)
	_ = s
}

// TestQuotaExhaustion pins per-tenant isolation: a tenant that burns
// its burst is 429'd while another tenant sails through.
func TestQuotaExhaustion(t *testing.T) {
	m := obs.New()
	_, c := testServer(t, Config{
		QueueDepth: 16, Workers: 1, Metrics: m,
		QuotaBurst: 2, QuotaPerSec: 0.0001, // effectively no refill in-test
		execute: func(JobSpec) ([]byte, error) { return []byte("{}"), nil },
	})

	for i := 0; i < 2; i++ {
		if _, err := c.Submit(JobSpec{}); err != nil {
			t.Fatalf("submit %d inside burst refused: %v", i, err)
		}
	}
	_, err := c.Submit(JobSpec{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("over-quota submit: err = %v, want HTTP 429", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("quota 429 without Retry-After (%d)", se.RetryAfter)
	}
	if got := m.Counter("serve.quota_rejects").Value(); got != 1 {
		t.Fatalf("serve.quota_rejects = %d, want 1", got)
	}

	other := &Client{Base: c.Base, Tenant: "other-tenant"}
	if _, err := other.Submit(JobSpec{}); err != nil {
		t.Fatalf("an exhausted tenant must not starve another: %v", err)
	}
}

// TestCancelQueuedJob: a queued job cancels cleanly (and its worker
// never runs it); a running one refuses with 409.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan string, 16)
	m := obs.New()
	_, c := testServer(t, Config{
		QueueDepth: 4, Workers: 1, Metrics: m,
		execute: func(spec JobSpec) ([]byte, error) {
			ran <- spec.Suites
			<-release
			return []byte("{}"), nil
		},
	})

	running, err := c.Submit(JobSpec{Suites: ""})
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, running.ID, StateRunning)
	queued, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled job state = %q", st.State)
	}
	if _, err := c.Result(queued.ID, false); err == nil {
		t.Fatal("result of a cancelled job should error")
	}
	if _, err := c.Cancel(running.ID); err == nil {
		t.Fatal("cancelling a running job should refuse")
	}
	if got := m.Counter("serve.jobs_cancelled").Value(); got != 1 {
		t.Fatalf("serve.jobs_cancelled = %d, want 1", got)
	}

	close(release)
	awaitState(t, c, running.ID, StateDone)
	// The cancelled job must never have reached the executor.
	close(ran)
	count := 0
	for range ran {
		count++
	}
	if count != 1 {
		t.Fatalf("executor ran %d jobs, want 1 (the cancelled one must be skipped)", count)
	}
}

// TestFailurePaths pins the failure contract: a job whose pipeline
// errors or panics lands in terminal "failed" with the cause — never
// wedged in "running" — and the result endpoint surfaces it as 500.
func TestFailurePaths(t *testing.T) {
	m := obs.New()
	_, c := testServer(t, Config{
		Workers: 1, Metrics: m,
		execute: func(spec JobSpec) ([]byte, error) {
			if spec.Seed == 666 {
				panic("stage blew up")
			}
			return nil, fmt.Errorf("mid-stage failure: disk on fire")
		},
	})

	// Plain error: terminal failed with the error string.
	st, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitState(t, c, st.ID, StateFailed)
	if !strings.Contains(final.Error, "disk on fire") {
		t.Fatalf("failed job error = %q", final.Error)
	}
	_, err = c.Result(st.ID, true)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 500 || !strings.Contains(se.Body, "disk on fire") {
		t.Fatalf("result of failed job: %v, want 500 with the cause", err)
	}

	// Panic: recovered into terminal failed, worker survives.
	st2, err := c.Submit(JobSpec{Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	final2 := awaitState(t, c, st2.ID, StateFailed)
	if !strings.Contains(final2.Error, "stage blew up") {
		t.Fatalf("panicked job error = %q", final2.Error)
	}
	if got := m.Counter("serve.jobs_failed").Value(); got != 2 {
		t.Fatalf("serve.jobs_failed = %d, want 2", got)
	}

	// The worker pool survived both: a well-behaved job still runs.
	// (Its executor fails by construction here, so just check it is
	// picked up and terminates.)
	st3, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, c, st3.ID, StateFailed)
}

// TestSubmitValidation: a spec that cannot build is refused at POST
// time with 400, not parked to fail later.
func TestSubmitValidation(t *testing.T) {
	_, c := testServer(t, Config{
		execute: func(JobSpec) ([]byte, error) { return []byte("{}"), nil },
	})
	for _, spec := range []JobSpec{
		{Preset: "warp-speed"},
		{Suites: "NoSuchSuite"},
	} {
		_, err := c.Submit(spec)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != 400 {
			t.Fatalf("submit %+v: err = %v, want HTTP 400", spec, err)
		}
	}
	if _, err := c.Status("j99999999"); err == nil {
		t.Fatal("unknown job id should 404")
	}
}

// TestEventsStream follows a job's SSE stream through queued → running
// → done and checks the stream closes after the terminal event.
func TestEventsStream(t *testing.T) {
	release := make(chan struct{})
	_, c := testServer(t, Config{
		Workers: 1,
		execute: func(JobSpec) ([]byte, error) {
			<-release
			return []byte("{}"), nil
		},
	})
	st, err := c.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var states []State
	firstEvent := make(chan struct{}, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Events(st.ID, func(s Status) {
			states = append(states, s.State)
			select {
			case firstEvent <- struct{}{}:
			default:
			}
		})
		done <- err
	}()
	// The job is pinned on release, so the stream is guaranteed a
	// non-terminal event — but only once it has actually connected.
	select {
	case <-firstEvent:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream produced nothing")
	}
	awaitState(t, c, st.ID, StateRunning)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("stream saw %d events, want >= 2 (got %v)", len(states), states)
	}
	if last := states[len(states)-1]; last != StateDone {
		t.Fatalf("stream ended on %q, want %q", last, StateDone)
	}
	for _, s := range states[:len(states)-1] {
		if s.Terminal() {
			t.Fatalf("terminal state %q before the end of the stream (%v)", s, states)
		}
	}
}

// TestServeGracefulShutdown: cancelling the service context returns nil
// (clean exit) and leaves no request hanging; a dead listener address
// errors instead.
func TestServeGracefulShutdown(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir(),
		execute: func(JobSpec) ([]byte, error) { return []byte("{}"), nil }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.Serve(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	select {
	case <-addrCh:
	case err := <-serveErr:
		t.Fatalf("Serve exited before ready: %v", err)
	}
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}

	s2, err := New(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Serve(context.Background(), "256.0.0.1:bogus", nil); err == nil {
		t.Fatal("bogus address should fail to bind")
	}
}
